# WedgeChain build/test entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets, so a green local `make ci` means a green pipeline.

GO ?= go

.PHONY: build test race bench bench-micro bench-pipeline bench-pr3 bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 metrics-smoke chaos fmt fmt-check vet doc-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: every benchmark once (N=1 is exact for the deterministic
# virtual-time experiments), short mode to skip the heavy preload suites.
bench:
	$(GO) test -bench . -benchtime 1x -short -run '^$$' .

# Quick-scale paper tables as a machine-readable CI artifact.
bench-json:
	$(GO) run ./cmd/wedge-bench -run all -quick -json BENCH_quick.json

# Micro-benchmarks for the crypto/wire/merkle hot paths (allocation
# counts included; the *Legacy benchmarks reproduce the pre-pipeline
# implementations for comparison, and the BlockAck* benchmarks sweep
# block sizes to show the digest-signed ack's flat cost).
bench-micro:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/wcrypto ./internal/wire ./internal/merkle

# P1 crypto-pipeline experiment (wall-clock serial vs pipelined put hot
# path) as a machine-readable artifact. Not part of `ci`: bench-pr3 runs
# the same P1 binary as part of its P1,P2,D1 sweep, so chaining both
# would measure P1 twice; BENCH_pr2.json stays the committed PR-2 record.
bench-pipeline:
	$(GO) run ./cmd/wedge-bench -run P1 -json BENCH_pr2.json

# PR-3 artifact: put hot path (P1) + block-ack size sweep (P2, flat
# digest signing) + durable SyncEvery sweep (D1, fsync amortization).
# Not part of `ci`: bench-pr4 runs the same P1 binary, so chaining both
# would measure P1 twice; BENCH_pr3.json stays the committed PR-3 record.
bench-pr3:
	$(GO) run ./cmd/wedge-bench -run P1,P2,D1 -json BENCH_pr3.json

# PR-4 artifact: put hot path (P1, regression guard) + verified range
# scans (R1, latency/row throughput vs range width vs shard count).
# Not part of `ci`: bench-pr5 runs the same P1 binary, so chaining both
# would measure P1 twice; BENCH_pr4.json stays the committed PR-4 record.
bench-pr4:
	$(GO) run ./cmd/wedge-bench -run P1,R1 -json BENCH_pr4.json

# PR-5 artifact: put hot path (P1, regression guard) + read-evidence
# pruning (E1, bytes/read and get throughput vs L0 window, pruned vs
# full-window before/after). Not part of `ci`: bench-pr6 runs the same P1
# binary, so chaining both would measure P1 twice; BENCH_pr5.json stays
# the committed PR-5 record.
bench-pr5:
	$(GO) run ./cmd/wedge-bench -run P1,E1 -json BENCH_pr5.json

# PR-6 artifact: put hot path (P1, regression guard) + replica-group
# availability (AV1, wall-clock throughput through a killed-leader
# transition, plus a stale-serving promoted follower convicted end to
# end). Not part of `ci`: bench-pr7 runs the same P1 binary, so chaining
# both would measure P1 twice; BENCH_pr6.json stays the committed PR-6
# record.
bench-pr6:
	$(GO) run ./cmd/wedge-bench -run P1,AV1 -json BENCH_pr6.json

# PR-7 artifact: put hot path (P1, regression guard) + chaos soak (CH1,
# wall-clock healing under seeded drop/dup/delay and a mid-run leader
# partition; asserts no certified write lost and no honest conviction).
# Not part of `ci`: bench-pr9 runs the same P1 binary, so chaining both
# would measure P1 twice; BENCH_pr7.json stays the committed PR-7 record.
bench-pr7:
	$(GO) run ./cmd/wedge-bench -run P1,CH1 -json BENCH_pr7.json

# PR-8 artifact: put hot path (P1, regression guard) + front door (C1,
# wall-clock session multiplexing at flat goroutine count, admission-
# control shedding with zero lost certified writes, and the light
# client's sampled-verification CPU savings).
bench-pr8:
	$(GO) run ./cmd/wedge-bench -run P1,C1 -json BENCH_pr8.json

# PR-9 artifact: put hot path (P1, regression guard) + observability
# (OB1: instrumentation overhead on the put hot path with the registry
# on vs off, and end-to-end trust-lag p50/p99 on a live cluster, clean
# vs seeded chaos — the headline wedge_trust_lag_seconds series).
# Not part of `ci`: bench-pr10 runs the same P1 binary, so chaining both
# would measure P1 twice; BENCH_pr9.json stays the committed PR-9 record.
bench-pr9:
	$(GO) run ./cmd/wedge-bench -run P1,OB1 -json BENCH_pr9.json

# PR-10 artifact: put hot path (P1, regression guard) + certification at
# scale (CL1: batched-certificate throughput per-block vs batched across
# 1/4 chains, dispute-flood cost with the verdict cache on vs off, and
# full-stack trust lag with batching + precheck workers + the
# anti-entropy auditor, asserting zero honest convictions and zero audit
# mismatches).
bench-pr10:
	$(GO) run ./cmd/wedge-bench -run P1,CL1 -json BENCH_pr10.json

# Live-deployment telemetry check: boot a TCP cloud + edge pair with
# -metrics-addr, push a certified write, scrape both /metrics endpoints
# for the required series, and pull a short pprof CPU profile.
metrics-smoke:
	sh scripts/metrics-smoke.sh

# Long chaos soak: several seeds, long schedules, double partition
# windows, full invariant audit per seed. Deterministic — a failing seed
# reproduces with `go test -run 'ChaosSoak/seed-N' ./internal/integration`
# under WEDGE_CHAOS_SOAK=1.
chaos:
	WEDGE_CHAOS_SOAK=1 $(GO) test -v -run 'TestChaosSoak' -timeout 20m ./internal/integration/

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Every package must carry a package-level doc comment: at least one .go
# file per package with a comment line directly above its package clause.
doc-check:
	@missing=""; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		ok=0; \
		for f in $$d/*.go; do \
			if awk 'prev ~ /^\/\// && /^package / {found=1} {prev=$$0} END {exit found?0:1}' $$f; then ok=1; break; fi; \
		done; \
		if [ $$ok -eq 0 ]; then missing="$$missing $$d"; fi; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "doc-check: missing package doc comment in:"; \
		for d in $$missing; do echo "  $$d"; done; exit 1; \
	fi; \
	echo "doc-check: all packages documented"

ci: fmt-check vet doc-check build test race bench bench-micro bench-json bench-pr10 metrics-smoke
