// Benchmarks regenerating the paper's evaluation, one per table/figure
// (DESIGN.md §3 maps each to its experiment). Each benchmark executes the
// corresponding experiment at reduced (Quick) scale and reports the
// summary rows as benchmark metrics; `cmd/wedge-bench -run <id>` produces
// the full-scale tables.
//
// The b.N loop re-runs the whole experiment; experiments are deterministic
// virtual-time simulations, so N=1 already yields exact numbers.
package wedgechain_test

import (
	"io"
	"strconv"
	"testing"

	"wedgechain/internal/bench"
)

// runExperiment executes one experiment per b.N and reports headline
// metrics extracted from the result table.
func runExperiment(b *testing.B, id string, metrics func(t *bench.Table, b *testing.B)) {
	fn, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		last = fn(bench.Quick)
	}
	if last != nil && metrics != nil {
		metrics(last, b)
	}
	if last != nil && testing.Verbose() {
		last.Print(io.Discard)
	}
}

// cell parses table cell (row, col) as a float, handling the "12.3K"
// (thousands) and "1.28x" (ratio) suffixes the tables use.
func cell(t *bench.Table, row, col int) float64 {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return -1
	}
	s := t.Rows[row][col]
	mult := 1.0
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'K':
			mult = 1000
			s = s[:n-1]
		case 'x':
			s = s[:n-1]
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return -1
	}
	return v * mult
}

// BenchmarkTable1RTT regenerates Table I (datacenter RTT matrix).
func BenchmarkTable1RTT(b *testing.B) {
	runExperiment(b, "T1", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 3), "rtt_C_V_ms")
		b.ReportMetric(cell(t, 0, 5), "rtt_C_M_ms")
	})
}

// BenchmarkFig4aLatency regenerates Figure 4(a): put latency vs batch size.
func BenchmarkFig4aLatency(b *testing.B) {
	runExperiment(b, "F4a", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_B100_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_B2000_ms")
		b.ReportMetric(cell(t, 0, 2), "cloudonly_B100_ms")
		b.ReportMetric(cell(t, 0, 3), "edgebase_B100_ms")
	})
}

// BenchmarkFig4bThroughput regenerates Figure 4(b): throughput vs batch.
func BenchmarkFig4bThroughput(b *testing.B) {
	runExperiment(b, "F4b", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_B100_ops")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_B2000_ops")
	})
}

// BenchmarkFig5aWrites regenerates Figure 5(a): all-write scaling.
func BenchmarkFig5aWrites(b *testing.B) {
	runExperiment(b, "F5a", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_1c_ops")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_9c_ops")
		b.ReportMetric(cell(t, len(t.Rows)-1, 2), "cloudonly_9c_ops")
	})
}

// BenchmarkFig5bMixed regenerates Figure 5(b): 50/50 mixed workload.
func BenchmarkFig5bMixed(b *testing.B) {
	if testing.Short() {
		b.Skip("mixed workload preloads 3x5 worlds; skipped in -short")
	}
	runExperiment(b, "F5b", func(t *bench.Table, b *testing.B) {
		last := len(t.Rows) - 1
		b.ReportMetric(cell(t, last, 1), "wedge_9c_ops")
		b.ReportMetric(cell(t, last, 2), "cloudonly_9c_ops")
		b.ReportMetric(cell(t, last, 3), "edgebase_9c_ops")
	})
}

// BenchmarkFig5cReads regenerates Figure 5(c): all-read workload.
func BenchmarkFig5cReads(b *testing.B) {
	if testing.Short() {
		b.Skip("read workload preloads 3x5 worlds; skipped in -short")
	}
	runExperiment(b, "F5c", func(t *bench.Table, b *testing.B) {
		last := len(t.Rows) - 1
		b.ReportMetric(cell(t, last, 1), "wedge_9c_ops")
		b.ReportMetric(cell(t, last, 2), "cloudonly_9c_ops")
	})
}

// BenchmarkFig5dReadPath regenerates Figure 5(d): best-case read latency
// and verification overhead, measured with real crypto on this host.
func BenchmarkFig5dReadPath(b *testing.B) {
	runExperiment(b, "F5d", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_serve_ms")
		b.ReportMetric(cell(t, 0, 2), "wedge_verify_ms")
		b.ReportMetric(cell(t, 1, 1), "cloudonly_serve_ms")
	})
}

// BenchmarkFig6Phases regenerates Figure 6: Phase I vs Phase II rates.
func BenchmarkFig6Phases(b *testing.B) {
	runExperiment(b, "F6", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 4), "lag_B100_x")
		b.ReportMetric(cell(t, len(t.Rows)-1, 4), "lag_B1000_x")
	})
}

// BenchmarkFig7aCloudLoc regenerates Figure 7(a): cloud location sweep.
func BenchmarkFig7aCloudLoc(b *testing.B) {
	runExperiment(b, "F7a", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_cloudO_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_cloudM_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 2), "cloudonly_cloudM_ms")
	})
}

// BenchmarkFig7bEdgeLoc regenerates Figure 7(b): edge location sweep.
func BenchmarkFig7bEdgeLoc(b *testing.B) {
	runExperiment(b, "F7b", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_edgeC_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_edgeM_ms")
	})
}

// BenchmarkShardScaling regenerates S1: aggregate put throughput vs
// shard (edge) count — the multi-edge scaling curve.
func BenchmarkShardScaling(b *testing.B) {
	runExperiment(b, "S1", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_1shard_ops")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_8shard_ops")
		b.ReportMetric(cell(t, len(t.Rows)-1, 2), "speedup_8shard_x")
	})
}

// BenchmarkReadScan regenerates R1: verified range scans, latency and
// row throughput vs range width vs shard count.
func BenchmarkReadScan(b *testing.B) {
	runExperiment(b, "R1", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 2), "narrow_1shard_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 4), "wide_4shard_rows_per_s")
	})
}

// BenchmarkSecVIEDataset regenerates Section VI-E: dataset size sweep.
func BenchmarkSecVIEDataset(b *testing.B) {
	runExperiment(b, "DS1", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "wedge_100K_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "wedge_max_ms")
	})
}

// BenchmarkEvidencePruning regenerates E1: read-evidence bytes and get
// throughput vs uncompacted L0 window depth, pruned vs full window.
func BenchmarkEvidencePruning(b *testing.B) {
	runExperiment(b, "E1", func(t *bench.Table, b *testing.B) {
		last := len(t.Rows) - 1
		b.ReportMetric(cell(t, last-1, 3), "deep_miss_pruned_B")
		b.ReportMetric(cell(t, last, 3), "deep_miss_full_B")
		b.ReportMetric(cell(t, last-1, 5), "deep_pruned_gets_per_s")
		b.ReportMetric(cell(t, last, 5), "deep_full_gets_per_s")
	})
}

// BenchmarkAblationDataFree regenerates ablation A1: data-free vs
// full-data certification.
func BenchmarkAblationDataFree(b *testing.B) {
	runExperiment(b, "A1", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "datafree_bytes_per_batch")
		b.ReportMetric(cell(t, 1, 1), "fulldata_bytes_per_batch")
	})
}

// BenchmarkAblationGossip regenerates ablation A2: gossip period vs
// omission detection latency.
func BenchmarkAblationGossip(b *testing.B) {
	runExperiment(b, "A2", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "detect_50ms_gossip_ms")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "detect_1s_gossip_ms")
	})
}

// BenchmarkAblationBaselineIndex regenerates ablation A3: Edge-baseline
// index maintenance policy.
func BenchmarkAblationBaselineIndex(b *testing.B) {
	runExperiment(b, "A3", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "mlsm_ms")
		b.ReportMetric(cell(t, 1, 1), "eager_ms")
	})
}

// BenchmarkAblationFreshness regenerates ablation A4: freshness window vs
// a stale-snapshot edge.
func BenchmarkAblationFreshness(b *testing.B) {
	runExperiment(b, "A4", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 1), "rejected_100ms_window")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "rejected_2s_window")
	})
}

// BenchmarkBlockAckSizeSweep regenerates P2: block-ack signature cost vs
// block size (digest-signed vs legacy full-body).
func BenchmarkBlockAckSizeSweep(b *testing.B) {
	runExperiment(b, "P2", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 3), "digest_sign_1KB_us")
		b.ReportMetric(cell(t, len(t.Rows)-1, 3), "digest_sign_100KB_us")
		b.ReportMetric(cell(t, len(t.Rows)-1, 1), "legacy_sign_100KB_us")
	})
}

// BenchmarkDurableSyncSweep regenerates D1: the durable put path across
// the group-commit (SyncEvery) dimension, with real fsyncs.
func BenchmarkDurableSyncSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("real-fsync sweep; skipped in -short")
	}
	runExperiment(b, "D1", func(t *bench.Table, b *testing.B) {
		b.ReportMetric(cell(t, 0, 2), "perblock_kops")
		b.ReportMetric(cell(t, len(t.Rows)-1, 2), "window10ms_kops")
	})
}
