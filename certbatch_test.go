package wedgechain

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// sampleValue sums one series family across children from the cluster
// registry snapshot.
func sampleValue(c *Cluster, name string) float64 {
	total := 0.0
	for _, s := range c.Metrics().Samples() {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// TestClusterBatchedCertification runs the full stack with every PR-10
// knob on — batched certificates both directions, precheck workers, the
// verdict cache default, and a fast anti-entropy auditor — and checks
// that Phase II completes for every write, reads round-trip, certificate
// batches actually flowed, the auditor swept cleanly, and nobody honest
// was convicted.
func TestClusterBatchedCertification(t *testing.T) {
	c := newTestCluster(t, Config{
		Edges:       1,
		BatchSize:   2,
		CertBatch:   4,
		CertWorkers: 2,
		AuditEvery:  20 * time.Millisecond,
		FlushEvery:  5 * time.Millisecond,
	})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	const writes = 24
	receipts := make([]*Receipt, 0, writes)
	for i := 0; i < writes; i++ {
		r, err := cl.Add([]byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	for i, r := range receipts {
		if err := r.WaitPhaseII(15 * time.Second); err != nil {
			t.Fatalf("write %d WaitPhaseII: %v", i, err)
		}
	}
	blk, phase, err := cl.Read(receipts[0].BID(), 10*time.Second)
	if err != nil {
		t.Fatalf("read of batch-certified block: %v", err)
	}
	if phase != PhaseII {
		t.Fatalf("read phase = %v, want PhaseII (batch must upgrade the read)", phase)
	}
	if !bytes.Equal(blk.Entries[0].Value, []byte("entry-0")) {
		t.Fatalf("read value = %q", blk.Entries[0].Value)
	}
	if got := sampleValue(c, "wedge_cert_batch_entries_count"); got == 0 {
		t.Fatal("no certificate batches were signed")
	}
	// Let the paced auditor sweep the merge checkpoints at least once.
	deadline := time.Now().Add(5 * time.Second)
	for sampleValue(c, "wedge_audit_rounds_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auditor never swept")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := sampleValue(c, "wedge_audit_mismatches_total"); got != 0 {
		t.Fatalf("audit mismatches = %v on an honest cluster", got)
	}
	if vs := c.Verdicts(); len(vs) != 0 {
		t.Fatalf("honest cluster produced verdicts: %v", vs)
	}
}
