package wedgechain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wedgechain/internal/client"
	"wedgechain/internal/wire"
)

// Errors surfaced by the synchronous client. ErrEdgeLied means the
// operation's evidence convicted the edge — the lazy-trust guarantee in
// action.
var (
	ErrTimeout     = errors.New("wedgechain: operation timed out")
	ErrEdgeLied    = client.ErrEdgeLied
	ErrStale       = client.ErrStale
	ErrUnavailable = client.ErrUnavailable
)

// Receipt tracks a write through its two commitments. It is returned once
// the operation is Phase I committed (the paper's client-perceived commit);
// WaitPhaseII blocks until the cloud's certification lands.
//
// Receipts are safe for concurrent use: accessors read a snapshot the
// protocol goroutine publishes at each state change.
type Receipt struct {
	mu      sync.Mutex
	bid     uint64
	phase   Phase
	err     error
	verdict *Verdict
	block   *wire.Block
	found   bool
	value   []byte
	ver     uint64

	phase1  chan struct{}
	phase2  chan struct{}
	settled chan struct{}
}

func newReceipt() *Receipt {
	return &Receipt{
		phase1:  make(chan struct{}),
		phase2:  make(chan struct{}),
		settled: make(chan struct{}),
	}
}

// snapshot publishes the op's current state. Runs on the protocol
// goroutine, before the corresponding channel close.
func (r *Receipt) snapshot(op *client.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bid = op.BID
	r.phase = op.Phase
	r.err = op.Err
	r.verdict = op.Verdict
	r.block = op.Block
	r.found = op.Found
	r.value = op.GotValue
	r.ver = op.GotVer
}

// BID returns the block id the entry committed into.
func (r *Receipt) BID() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bid
}

// Phase returns the last published commit phase.
func (r *Receipt) Phase() Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase
}

// Err returns the terminal error, if the operation settled with one.
func (r *Receipt) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Verdict returns the cloud's ruling when the operation was disputed.
func (r *Receipt) Verdict() *Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.verdict
}

// WaitPhaseII blocks until the cloud certifies the block (Phase II), the
// operation fails terminally, or the timeout expires.
func (r *Receipt) WaitPhaseII(timeout time.Duration) error {
	select {
	case <-r.phase2:
		return nil
	case <-r.settled:
		return r.Err()
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// Client is the synchronous application-facing client. All verification
// (signatures, digests, Merkle proofs, freshness) happens internally; a
// returned value is a verified value.
type Client struct {
	id      NodeID
	cluster *Cluster
	core    *client.Core

	// waiters is touched only on the client's transport goroutine.
	waiters map[*client.Op]*Receipt
}

func newClient(cluster *Cluster, id NodeID, core *client.Core) *Client {
	return &Client{
		id:      id,
		cluster: cluster,
		core:    core,
		waiters: make(map[*client.Op]*Receipt),
	}
}

// ID returns the client identity.
func (c *Client) ID() NodeID { return c.id }

// do runs fn on the client's transport goroutine.
func (c *Client) do(fn func(now int64) []wire.Envelope) error {
	if !c.cluster.net.Do(c.id, fn) {
		return fmt.Errorf("wedgechain: cluster closed")
	}
	return nil
}

func (c *Client) register(op *client.Op) *Receipt {
	r := newReceipt()
	c.waiters[op] = r
	return r
}

// Callbacks run on the client's transport goroutine; each publishes a
// snapshot before signalling.
func (c *Client) onPhaseI(op *client.Op) {
	if r, ok := c.waiters[op]; ok {
		r.snapshot(op)
		close(r.phase1)
	}
}

func (c *Client) onPhaseII(op *client.Op) {
	if r, ok := c.waiters[op]; ok {
		r.snapshot(op)
		close(r.phase2)
	}
}

func (c *Client) onDone(op *client.Op) {
	if r, ok := c.waiters[op]; ok {
		r.snapshot(op)
		close(r.settled)
		delete(c.waiters, op)
	}
}

// startWrite launches a write and blocks until Phase I commit (or
// terminal failure / timeout).
func (c *Client) startWrite(launch func(now int64) (*client.Op, []wire.Envelope), timeout time.Duration) (*Receipt, error) {
	ch := make(chan *Receipt, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		op, envs := launch(now)
		ch <- c.register(op)
		return envs
	}); err != nil {
		return nil, err
	}
	r := <-ch
	select {
	case <-r.phase1:
		return r, nil
	case <-r.settled:
		return r, r.Err()
	case <-time.After(timeout):
		return r, ErrTimeout
	}
}

// Add appends a payload to the edge log, returning after Phase I commit.
func (c *Client) Add(payload []byte) (*Receipt, error) {
	return c.startWrite(func(now int64) (*client.Op, []wire.Envelope) {
		return c.core.Add(now, payload)
	}, 30*time.Second)
}

// Put writes a key-value pair through the LSMerkle index, returning after
// Phase I commit.
func (c *Client) Put(key, value []byte) (*Receipt, error) {
	return c.startWrite(func(now int64) (*client.Op, []wire.Envelope) {
		return c.core.Put(now, key, value)
	}, 30*time.Second)
}

// AddAt appends a payload signed for a previously reserved position.
func (c *Client) AddAt(payload []byte, pos uint64) (*Receipt, error) {
	return c.startWrite(func(now int64) (*client.Op, []wire.Envelope) {
		return c.core.AddAt(now, payload, pos)
	}, 30*time.Second)
}

// Reserve grants count consecutive log positions for idempotent adds
// (Section IV-E).
func (c *Client) Reserve(count uint32, timeout time.Duration) (uint64, error) {
	ch := make(chan uint64, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		c.core.SetReserveHandler(func(start uint64, n uint32) {
			select {
			case ch <- start:
			default:
			}
		})
		return c.core.Reserve(now, count)
	}); err != nil {
		return 0, err
	}
	select {
	case start := <-ch:
		return start, nil
	case <-time.After(timeout):
		return 0, ErrTimeout
	}
}

// Read fetches block bid with its proof, blocking until the read settles
// (Phase II, a verified denial, or a terminal error).
func (c *Client) Read(bid uint64, timeout time.Duration) (*Block, Phase, error) {
	ch := make(chan *Receipt, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		op, envs := c.core.Read(now, bid)
		ch <- c.register(op)
		return envs
	}); err != nil {
		return nil, PhaseNone, err
	}
	r := <-ch
	select {
	case <-r.settled:
	case <-time.After(timeout):
		return nil, PhaseNone, ErrTimeout
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.block, r.phase, r.err
}

// Get looks a key up with full proof verification. found=false with a nil
// error is a *verified* absence. The returned phase distinguishes gets
// that relied on not-yet-certified blocks (Phase I) from fully certified
// ones (Phase II).
func (c *Client) Get(key []byte) (value []byte, found bool, phase Phase, err error) {
	ch := make(chan *Receipt, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		op, envs := c.core.Get(now, key)
		ch <- c.register(op)
		return envs
	}); err != nil {
		return nil, false, PhaseNone, err
	}
	r := <-ch
	select {
	case <-r.settled:
	case <-time.After(30 * time.Second):
		return nil, false, PhaseNone, ErrTimeout
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.value, r.found, r.phase, r.err
}
