package wedgechain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wedgechain/internal/client"
	"wedgechain/internal/wire"
)

// Errors surfaced by the synchronous client. ErrEdgeLied means the
// operation's evidence convicted the edge — the lazy-trust guarantee in
// action.
var (
	ErrTimeout     = errors.New("wedgechain: operation timed out")
	ErrEdgeLied    = client.ErrEdgeLied
	ErrEdgeBanned  = client.ErrEdgeBanned
	ErrStale       = client.ErrStale
	ErrUnavailable = client.ErrUnavailable
	ErrOverloaded  = client.ErrOverloaded
)

// Receipt tracks a write through its two commitments. It is returned once
// the operation is Phase I committed (the paper's client-perceived commit);
// WaitPhaseII blocks until the cloud's certification lands.
//
// Receipts are safe for concurrent use: accessors read a snapshot the
// protocol goroutine publishes at each state change.
type Receipt struct {
	mu      sync.Mutex
	bid     uint64
	edge    NodeID
	phase   Phase
	err     error
	verdict *Verdict
	block   *wire.Block
	found   bool
	value   []byte
	ver     uint64
	scanKVs []wire.KV

	phase1  chan struct{}
	phase2  chan struct{}
	settled chan struct{}
}

func newReceipt() *Receipt {
	return &Receipt{
		phase1:  make(chan struct{}),
		phase2:  make(chan struct{}),
		settled: make(chan struct{}),
	}
}

// snapshot publishes the op's current state. Runs on the protocol
// goroutine, before the corresponding channel close.
func (r *Receipt) snapshot(op *client.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bid = op.BID
	r.edge = op.Edge
	r.phase = op.Phase
	r.err = op.Err
	r.verdict = op.Verdict
	r.block = op.Block
	r.found = op.Found
	r.value = op.GotValue
	r.ver = op.GotVer
	r.scanKVs = op.ScanKVs
}

// BID returns the block id the entry committed into.
func (r *Receipt) BID() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bid
}

// Edge returns the shard edge the operation was routed to — the edge
// whose log holds BID. Pass it to ReadFrom to audit the entry's block.
func (r *Receipt) Edge() NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.edge
}

// Phase returns the last published commit phase.
func (r *Receipt) Phase() Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase
}

// Err returns the terminal error, if the operation settled with one.
func (r *Receipt) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Verdict returns the cloud's ruling when the operation was disputed.
func (r *Receipt) Verdict() *Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.verdict
}

// WaitPhaseII blocks until the cloud certifies the block (Phase II), the
// operation fails terminally, or the timeout expires.
func (r *Receipt) WaitPhaseII(timeout time.Duration) error {
	select {
	case <-r.phase2:
		return nil
	case <-r.settled:
		return r.Err()
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// Client is the synchronous application-facing client. All verification
// (signatures, digests, Merkle proofs, freshness) happens internally; a
// returned value is a verified value.
//
// In a sharded cluster one Client session spans every shard: Put and Get
// route by key through the cloud-signed shard map, while the
// position-based log API (Add, AddAt, Reserve, Read) binds to the
// session's home shard. Each shard's lazy-verify pipeline is independent;
// Pending exposes the per-shard backlog.
type Client struct {
	id      NodeID
	cluster *Cluster
	session *client.Sharded

	// waiters is touched only on the client's transport goroutine.
	waiters map[*client.Op]*Receipt
}

func newClient(cluster *Cluster, id NodeID, session *client.Sharded) *Client {
	return &Client{
		id:      id,
		cluster: cluster,
		session: session,
		waiters: make(map[*client.Op]*Receipt),
	}
}

// ID returns the client identity.
func (c *Client) ID() NodeID { return c.id }

// Shards returns the number of shards this session multiplexes.
func (c *Client) Shards() int { return c.session.Shards() }

// EdgeFor returns the edge that serves key under the session's shard map.
func (c *Client) EdgeFor(key []byte) NodeID { return c.session.EdgeFor(key) }

// HomeEdge returns the edge serving this session's position-based log API.
func (c *Client) HomeEdge() NodeID { return c.session.Home().Edge() }

// Pending reports the number of unsettled operations per shard edge —
// one shard's backlog (or conviction) is visible without conflating it
// with its siblings.
func (c *Client) Pending() (map[NodeID]int, error) {
	ch := make(chan map[NodeID]int, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		ch <- c.session.Pending()
		return nil
	}); err != nil {
		return nil, err
	}
	return <-ch, nil
}

// ClientStats re-exports the per-shard protocol counters (verifications,
// retries, transport re-sends, failovers, …).
type ClientStats = client.Stats

// Stats returns this client's protocol counters per shard edge. Chaos
// harnesses read Resends to confirm the retry machinery absorbed the
// injected faults.
func (c *Client) Stats() (map[NodeID]ClientStats, error) {
	ch := make(chan map[NodeID]ClientStats, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		ch <- c.session.StatsByEdge()
		return nil
	}); err != nil {
		return nil, err
	}
	return <-ch, nil
}

// do runs fn on the client's transport goroutine.
func (c *Client) do(fn func(now int64) []wire.Envelope) error {
	if !c.cluster.net.Do(c.id, fn) {
		return fmt.Errorf("wedgechain: cluster closed")
	}
	return nil
}

func (c *Client) register(op *client.Op) *Receipt {
	r := newReceipt()
	if op.Done {
		// The op settled during launch — e.g. it was routed to a shard
		// whose edge is already convicted. Signal the receipt directly;
		// the callbacks fired before registration.
		r.snapshot(op)
		if op.Phase >= PhaseI {
			close(r.phase1)
		}
		if op.Phase >= PhaseII {
			close(r.phase2)
		}
		close(r.settled)
		return r
	}
	c.waiters[op] = r
	return r
}

// Callbacks run on the client's transport goroutine; each publishes a
// snapshot before signalling.
func (c *Client) onPhaseI(op *client.Op) {
	if r, ok := c.waiters[op]; ok {
		r.snapshot(op)
		close(r.phase1)
	}
}

func (c *Client) onPhaseII(op *client.Op) {
	if r, ok := c.waiters[op]; ok {
		r.snapshot(op)
		close(r.phase2)
	}
}

func (c *Client) onDone(op *client.Op) {
	if r, ok := c.waiters[op]; ok {
		r.snapshot(op)
		close(r.settled)
		delete(c.waiters, op)
	}
}

// startWrite launches a write and blocks until Phase I commit (or
// terminal failure / timeout).
func (c *Client) startWrite(launch func(now int64) (*client.Op, []wire.Envelope), timeout time.Duration) (*Receipt, error) {
	ch := make(chan *Receipt, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		op, envs := launch(now)
		ch <- c.register(op)
		return envs
	}); err != nil {
		return nil, err
	}
	r := <-ch
	select {
	case <-r.phase1:
		return r, nil
	case <-r.settled:
		return r, r.Err()
	case <-time.After(timeout):
		return r, ErrTimeout
	}
}

// Add appends a payload to the edge log, returning after Phase I commit.
func (c *Client) Add(payload []byte) (*Receipt, error) {
	return c.startWrite(func(now int64) (*client.Op, []wire.Envelope) {
		return c.session.Add(now, payload)
	}, 30*time.Second)
}

// Put writes a key-value pair through the LSMerkle index, returning after
// Phase I commit.
func (c *Client) Put(key, value []byte) (*Receipt, error) {
	return c.startWrite(func(now int64) (*client.Op, []wire.Envelope) {
		return c.session.Put(now, key, value)
	}, 30*time.Second)
}

// AddAt appends a payload signed for a previously reserved position.
func (c *Client) AddAt(payload []byte, pos uint64) (*Receipt, error) {
	return c.startWrite(func(now int64) (*client.Op, []wire.Envelope) {
		return c.session.AddAt(now, payload, pos)
	}, 30*time.Second)
}

// Reserve grants count consecutive log positions for idempotent adds
// (Section IV-E).
func (c *Client) Reserve(count uint32, timeout time.Duration) (uint64, error) {
	ch := make(chan uint64, 1)
	banned := make(chan struct{}, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		if c.session.Home().Banned() != nil {
			banned <- struct{}{}
			return nil
		}
		c.session.SetReserveHandler(func(start uint64, n uint32) {
			select {
			case ch <- start:
			default:
			}
		})
		return c.session.Reserve(now, count)
	}); err != nil {
		return 0, err
	}
	select {
	case start := <-ch:
		return start, nil
	case <-banned:
		return 0, ErrEdgeBanned
	case <-time.After(timeout):
		return 0, ErrTimeout
	}
}

// Read fetches block bid from the session's home-shard log with its
// proof, blocking until the read settles (Phase II, a verified denial,
// or a terminal error).
func (c *Client) Read(bid uint64, timeout time.Duration) (*Block, Phase, error) {
	return c.ReadFrom(c.HomeEdge(), bid, timeout)
}

// ReadFrom fetches block bid from a specific shard's log. Read addresses
// the session's home shard; ReadFrom lets auditors walk any shard's
// chain.
func (c *Client) ReadFrom(edgeID NodeID, bid uint64, timeout time.Duration) (*Block, Phase, error) {
	ch := make(chan *Receipt, 1)
	errCh := make(chan error, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		op, envs, err := c.session.ReadFrom(now, edgeID, bid)
		if err != nil {
			errCh <- err
			return nil
		}
		ch <- c.register(op)
		return envs
	}); err != nil {
		return nil, PhaseNone, err
	}
	var r *Receipt
	select {
	case err := <-errCh:
		return nil, PhaseNone, err
	case r = <-ch:
	}
	select {
	case <-r.settled:
	case <-time.After(timeout):
		return nil, PhaseNone, ErrTimeout
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.block, r.phase, r.err
}

// Scan returns every key-value pair in the half-open range [start, end)
// — nil bounds mean ±infinity — globally ordered by key and truncated to
// limit (0 = unlimited). The scan scatter-gathers across every shard:
// each shard's edge returns a Merkle completeness proof for its slice of
// the range, the per-shard results are verified independently (omission,
// injection and boundary truncation all fail verification and convict
// the lying edge), and the merge preserves newest-wins semantics. A
// returned slice is therefore a *verified* result: nothing certified was
// omitted, nothing uncertified was injected.
func (c *Client) Scan(start, end []byte, limit int) ([]KV, Phase, error) {
	ch := make(chan []*Receipt, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		ops, envs := c.session.Scan(now, start, end, limit)
		rs := make([]*Receipt, len(ops))
		for i, op := range ops {
			rs[i] = c.register(op)
		}
		ch <- rs
		return envs
	}); err != nil {
		return nil, PhaseNone, err
	}
	rs := <-ch
	deadline := time.After(30 * time.Second)
	for _, r := range rs {
		select {
		case <-r.settled:
		case <-deadline:
			return nil, PhaseNone, ErrTimeout
		}
	}
	phase := PhaseII
	perShard := make([][]KV, len(rs))
	for i, r := range rs {
		r.mu.Lock()
		err, ph, kvs := r.err, r.phase, r.scanKVs
		r.mu.Unlock()
		if err != nil {
			return nil, PhaseNone, err
		}
		if ph < phase {
			phase = ph
		}
		perShard[i] = kvs
	}
	return client.MergeScanKVs(perShard, limit), phase, nil
}

// Get looks a key up with full proof verification. found=false with a nil
// error is a *verified* absence. The returned phase distinguishes gets
// that relied on not-yet-certified blocks (Phase I) from fully certified
// ones (Phase II).
func (c *Client) Get(key []byte) (value []byte, found bool, phase Phase, err error) {
	ch := make(chan *Receipt, 1)
	if err := c.do(func(now int64) []wire.Envelope {
		op, envs := c.session.Get(now, key)
		ch <- c.register(op)
		return envs
	}); err != nil {
		return nil, false, PhaseNone, err
	}
	r := <-ch
	select {
	case <-r.settled:
	case <-time.After(30 * time.Second):
		return nil, false, PhaseNone, ErrTimeout
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.value, r.found, r.phase, r.err
}
