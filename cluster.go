package wedgechain

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"wedgechain/internal/client"
	"wedgechain/internal/cloud"
	"wedgechain/internal/edge"
	"wedgechain/internal/obs"
	"wedgechain/internal/shard"
	"wedgechain/internal/transport"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// CloudID is the trusted cloud node's identity in façade clusters.
const CloudID = NodeID("cloud")

// EdgeID returns the identity of the i-th edge node (1-based).
func EdgeID(i int) NodeID { return NodeID(fmt.Sprintf("edge-%d", i)) }

// FollowerID returns the identity of the k-th follower replica (1-based)
// of the i-th edge's chain.
func FollowerID(i, k int) NodeID { return NodeID(fmt.Sprintf("edge-%d.r%d", i, k)) }

// Cluster is an in-process WedgeChain deployment: one trusted cloud node,
// one or more untrusted edge nodes, and any number of clients, connected
// by the channel transport (optionally with injected WAN latency).
type Cluster struct {
	cfg Config
	reg *wcrypto.Registry
	net *transport.Local

	// shardMap routes keys across the first cfg.Shards edges; wireMap is
	// its cloud-signed serialization, verified by every client session.
	shardMap *shard.Map
	wireMap  *wire.ShardMap

	mu      sync.Mutex
	keys    map[NodeID]wcrypto.KeyPair
	cloud   *cloud.Node
	edges   map[NodeID]*edge.Node
	clients map[NodeID]*Client
	closed  bool
}

// NewCluster assembles and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	c := &Cluster{
		cfg:     cfg,
		reg:     wcrypto.NewRegistry(),
		keys:    make(map[NodeID]wcrypto.KeyPair),
		edges:   make(map[NodeID]*edge.Node),
		clients: make(map[NodeID]*Client),
	}
	c.net = transport.NewLocal(transport.LocalConfig{
		TickEvery: 5 * time.Millisecond,
		Latency:   cfg.Latency,
		Fault:     cfg.Chaos,
		// Pre-verify signatures in parallel in front of every node so
		// the single-threaded state machines spend their time on
		// protocol work, not Ed25519.
		Registry:      c.reg,
		VerifyWorkers: -1, // negative = GOMAXPROCS, sized by the pool
	})
	// The chaos net shapes every link of the shared in-process transport,
	// so its counters carry the cluster-wide label rather than a node's.
	cfg.Chaos.AttachMetrics(cfg.Metrics, "cluster")

	ck, err := wcrypto.GenerateKey(CloudID)
	if err != nil {
		return nil, err
	}
	c.keys[CloudID] = ck
	c.reg.Register(CloudID, ck.Pub)

	edgeIDs := make([]NodeID, 0, cfg.Edges)
	for i := 1; i <= cfg.Edges; i++ {
		id := EdgeID(i)
		k, err := wcrypto.GenerateKey(id)
		if err != nil {
			return nil, err
		}
		c.keys[id] = k
		c.reg.Register(id, k.Pub)
		edgeIDs = append(edgeIDs, id)
	}

	// Replica groups: each edge's chain gets ReplicasPerShard-1 follower
	// nodes with their own identities and keys. The chain identity stays
	// the initial leader's id; followers mirror its log and stand by for
	// a cloud-signed promotion.
	followers := make(map[NodeID][]NodeID)
	if cfg.ReplicasPerShard > 1 {
		for i := 1; i <= cfg.Edges; i++ {
			lid := EdgeID(i)
			for k := 1; k < cfg.ReplicasPerShard; k++ {
				fid := FollowerID(i, k)
				fk, err := wcrypto.GenerateKey(fid)
				if err != nil {
					return nil, err
				}
				c.keys[fid] = fk
				c.reg.Register(fid, fk.Pub)
				followers[lid] = append(followers[lid], fid)
			}
		}
	}

	// The shard map spans the first cfg.Shards edges. The cloud signs it
	// so clients can verify their routing table came from the trusted
	// party, not from an edge steering traffic toward itself.
	sm, err := shard.New(edgeIDs[:cfg.Shards])
	if err != nil {
		return nil, err
	}
	c.shardMap = sm
	c.wireMap = sm.Wire(1)
	if cfg.ReplicasPerShard > 1 {
		c.wireMap.Followers = make([][]NodeID, len(c.wireMap.Edges))
		for i, e := range c.wireMap.Edges {
			c.wireMap.Followers[i] = append([]NodeID(nil), followers[e]...)
		}
	}
	c.wireMap.CloudSig = wcrypto.SignMsg(ck, c.wireMap)

	c.cloud = cloud.New(cloud.Config{
		ID:           CloudID,
		Levels:       len(cfg.LevelThresholds),
		PageCap:      cfg.PageCap,
		GossipEvery:  cfg.GossipEvery.Nanoseconds(),
		LeaseTimeout: cfg.LeaseTimeout.Nanoseconds(),
		CertTimeout:  cfg.CertTimeout.Nanoseconds(),
		CertWorkers:  cfg.CertWorkers,
		CertBatch:    cfg.CertBatch,
		AuditEvery:   cfg.AuditEvery.Nanoseconds(),
		Metrics:      cfg.Metrics,
		// Gossip recipients are added as clients join; the cloud config
		// is static, so gossip goes to edges and clients pull via their
		// edge. For direct gossip, clients are registered below.
	}, ck, c.reg)
	if cfg.ReplicasPerShard > 1 {
		// Declare the groups and hand over the signed map before the
		// transport starts, so the failure detectors and map re-signing
		// know every chain from the first tick.
		for _, lid := range edgeIDs {
			c.cloud.RegisterGroup(lid, lid, followers[lid])
		}
		c.cloud.InstallShardMap(c.wireMap)
	}
	c.net.Add(c.cloud)

	// Heartbeat at a quarter of the lease so a live leader can never be
	// mistaken for a dead one by scheduling jitter alone.
	var heartbeatEvery int64
	if cfg.ReplicasPerShard > 1 {
		heartbeatEvery = (cfg.LeaseTimeout / 4).Nanoseconds()
		if cfg.HeartbeatEvery > 0 {
			heartbeatEvery = cfg.HeartbeatEvery.Nanoseconds()
		}
	}
	for _, id := range edgeIDs {
		ecfg := edge.Config{
			ID:              id,
			Cloud:           CloudID,
			BatchSize:       cfg.BatchSize,
			FlushEvery:      cfg.FlushEvery.Nanoseconds(),
			L0Threshold:     cfg.L0Threshold,
			LevelThresholds: cfg.LevelThresholds,
			PageCap:         cfg.PageCap,
			Fault:           cfg.EdgeFaults[id],
			Followers:       followers[id],
			HeartbeatEvery:  heartbeatEvery,
			MaxUncertified:  cfg.MaxUncertified,
			CertBatch:       cfg.CertBatch,
			Metrics:         cfg.Metrics,
		}
		if err := ecfg.Validate(); err != nil {
			return nil, err
		}
		en := edge.New(ecfg, c.keys[id], c.reg)
		c.edges[id] = en
		c.net.Add(en)
		for _, fid := range followers[id] {
			fcfg := edge.Config{
				ID:              fid,
				Chain:           id,
				Follower:        true,
				Cloud:           CloudID,
				BatchSize:       cfg.BatchSize,
				FlushEvery:      cfg.FlushEvery.Nanoseconds(),
				L0Threshold:     cfg.L0Threshold,
				LevelThresholds: cfg.LevelThresholds,
				PageCap:         cfg.PageCap,
				Fault:           cfg.EdgeFaults[fid],
				HeartbeatEvery:  heartbeatEvery,
				MaxUncertified:  cfg.MaxUncertified,
				Metrics:         cfg.Metrics,
			}
			if err := fcfg.Validate(); err != nil {
				return nil, err
			}
			fn := edge.New(fcfg, c.keys[fid], c.reg)
			c.edges[fid] = fn
			c.net.Add(fn)
		}
	}
	return c, nil
}

// Close stops the cluster's goroutines.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.net.Close()
	// The cloud may own goroutines (certification precheck workers, the
	// anti-entropy auditor); stop them after the transport so no Receive
	// or Tick races the shutdown.
	c.cloud.Close()
}

// Punished reports whether the cloud has convicted and banned edgeID,
// with the conviction reason.
func (c *Cluster) Punished(edgeID NodeID) (string, bool) {
	type result struct {
		reason string
		ok     bool
	}
	ch := make(chan result, 1)
	ok := c.net.Do(CloudID, func(now int64) []wire.Envelope {
		r, banned := c.cloud.Flagged(edgeID)
		ch <- result{r, banned}
		return nil
	})
	if !ok {
		return "", false
	}
	r := <-ch
	return r.reason, r.ok
}

// Verdicts returns all guilty verdicts the cloud has issued.
func (c *Cluster) Verdicts() []Verdict {
	ch := make(chan []Verdict, 1)
	if !c.net.Do(CloudID, func(now int64) []wire.Envelope {
		ch <- append([]Verdict(nil), c.cloud.Punishments().Verdicts()...)
		return nil
	}) {
		return nil
	}
	return <-ch
}

// VerdictsFor returns the guilty verdicts issued against one edge — in a
// sharded cluster, the conviction history of that shard alone.
func (c *Cluster) VerdictsFor(edgeID NodeID) []Verdict {
	ch := make(chan []Verdict, 1)
	if !c.net.Do(CloudID, func(now int64) []wire.Envelope {
		ch <- c.cloud.VerdictsFor(edgeID)
		return nil
	}) {
		return nil
	}
	return <-ch
}

// Metrics returns the registry holding every node's wedge_* series —
// pass it to obs.StartServer to scrape the cluster, or read quantiles
// (e.g. the wedge_trust_lag_seconds histogram) directly. Always non-nil.
func (c *Cluster) Metrics() *obs.Registry { return c.cfg.Metrics }

// Shards returns the cluster's shard count.
func (c *Cluster) Shards() int { return c.shardMap.Shards() }

// ShardMap returns the cloud-signed shard map distributed to clients.
func (c *Cluster) ShardMap() *wire.ShardMap { return c.wireMap }

// EdgeStats returns one edge node's operational counters, read on that
// edge's own goroutine. In a sharded cluster this is the per-shard view:
// writes, blocks cut, certifications, reads, and merges for that shard
// alone.
func (c *Cluster) EdgeStats(edgeID NodeID) (edge.Stats, error) {
	c.mu.Lock()
	en, ok := c.edges[edgeID]
	c.mu.Unlock()
	if !ok {
		return edge.Stats{}, fmt.Errorf("wedgechain: unknown edge %q (have edge-1..edge-%d)", edgeID, c.cfg.Edges)
	}
	ch := make(chan edge.Stats, 1)
	if !c.net.Do(edgeID, func(now int64) []wire.Envelope {
		ch <- en.Stats()
		return nil
	}) {
		return edge.Stats{}, fmt.Errorf("wedgechain: cluster closed")
	}
	return <-ch, nil
}

// KillEdge simulates a process crash of one node — leader or follower:
// the node stops answering anything, including its heartbeats. In a
// replicated cluster the cloud notices the silence (or the certification
// stall) and transfers leadership to the best surviving follower; clients
// re-route on the signed transfer without failing their in-flight
// operations.
func (c *Cluster) KillEdge(id NodeID) error {
	c.mu.Lock()
	en, ok := c.edges[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("wedgechain: unknown node %q", id)
	}
	if !c.net.Do(id, func(now int64) []wire.Envelope {
		en.Kill()
		return nil
	}) {
		return fmt.Errorf("wedgechain: cluster closed")
	}
	return nil
}

// RestartEdge revives a killed node as a blank follower — the simulated
// process restart that lost its in-memory state. The node heartbeats, the
// cloud re-admits it with a signed GroupJoin naming the current leader,
// and certified catch-up rebuilds its mirror; once caught up it is again
// a promotion candidate.
func (c *Cluster) RestartEdge(id NodeID) error {
	c.mu.Lock()
	en, ok := c.edges[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("wedgechain: unknown node %q", id)
	}
	if !c.net.Do(id, func(now int64) []wire.Envelope {
		en.Restart(now)
		return nil
	}) {
		return fmt.Errorf("wedgechain: cluster closed")
	}
	return nil
}

// ReplicaFrontier reports a node's local block frontier and contiguous
// certified prefix — served blocks on a leader, mirrored blocks on a
// follower. Chaos harnesses poll it to observe catch-up convergence.
func (c *Cluster) ReplicaFrontier(id NodeID) (blocks, certified uint64, err error) {
	c.mu.Lock()
	en, ok := c.edges[id]
	c.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("wedgechain: unknown node %q", id)
	}
	type frontier struct{ blocks, certified uint64 }
	ch := make(chan frontier, 1)
	if !c.net.Do(id, func(now int64) []wire.Envelope {
		ch <- frontier{en.LogBlocks(), en.CertifiedBlocks()}
		return nil
	}) {
		return 0, 0, fmt.Errorf("wedgechain: cluster closed")
	}
	f := <-ch
	return f.blocks, f.certified, nil
}

// ChainLeader reports which node the cloud currently recognizes as the
// leader of chain (the chain id is the initial leader's id, e.g.
// "edge-1"). Unreplicated chains lead themselves.
func (c *Cluster) ChainLeader(chain NodeID) NodeID {
	ch := make(chan NodeID, 1)
	if !c.net.Do(CloudID, func(now int64) []wire.Envelope {
		ch <- c.cloud.ChainLeader(chain)
		return nil
	}) {
		return ""
	}
	return <-ch
}

// ChainEpoch reports the chain's current leadership epoch (0 until the
// first transfer).
func (c *Cluster) ChainEpoch(chain NodeID) uint64 {
	ch := make(chan uint64, 1)
	if !c.net.Do(CloudID, func(now int64) []wire.Envelope {
		ch <- c.cloud.ChainEpoch(chain)
		return nil
	}) {
		return 0
	}
	return <-ch
}

// SessionHub groups many client sessions behind one transport node: every
// attached session shares the hub's single goroutine and inbox instead of
// owning its own, so a front door can multiplex thousands of sessions at a
// flat goroutine count. Build one with NewSessionHub and attach sessions
// by passing it in ClientOptions. The synchronous Client API is unchanged
// — per-session work is serialized on the hub goroutine, trading a shared
// lane for the per-session goroutine.
type SessionHub struct {
	hub *transport.Hub
}

// Sessions returns the number of sessions attached to the hub.
func (h *SessionHub) Sessions() int { return h.hub.Len() }

// NewSessionHub registers a named session hub with the cluster transport.
func (c *Cluster) NewSessionHub(name string) (*SessionHub, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("wedgechain: cluster closed")
	}
	h := transport.NewHub(NodeID(name))
	c.net.Add(h)
	return &SessionHub{hub: h}, nil
}

// ClientOptions tunes a session created by NewClientWith beyond the
// cluster-level defaults.
type ClientOptions struct {
	// Hub attaches the session to a shared SessionHub instead of giving
	// it a dedicated transport goroutine. Nil keeps the one-goroutine-
	// per-client default.
	Hub *SessionHub
	// Light switches this session into light verification even when the
	// cluster's LightVerify default is off.
	Light bool
	// Sample overrides the light-mode audit denominator (1 in Sample
	// responses fully verified; 1 audits everything). 0 inherits the
	// cluster's VerifySample (or 16).
	Sample int
	// Seed fixes the light-mode sampling seed. 0 derives one from the
	// session name, so distinct sessions audit distinct request subsets
	// while any single run stays reproducible.
	Seed uint64
}

// NewClient creates an authenticated client session.
//
// With Shards <= 1 the session binds to edgeID's partition exactly as in
// the paper (an empty edgeID defaults to edge-1). With Shards > 1 the
// session ignores the binding and routes through the shard map instead:
// one session multiplexes every shard, with Put/Get routed by key and the
// log API bound to the session's home shard. A non-empty edgeID must name
// an existing edge in either mode.
func (c *Cluster) NewClient(name string, edgeID NodeID) (*Client, error) {
	return c.NewClientWith(name, edgeID, ClientOptions{})
}

// NewClientWith creates a client session with explicit options: hub
// multiplexing and/or light verification. NewClient is the zero-options
// shorthand.
func (c *Cluster) NewClientWith(name string, edgeID NodeID, opts ClientOptions) (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("wedgechain: cluster closed")
	}
	if edgeID == "" {
		edgeID = EdgeID(1)
	}
	if _, ok := c.edges[edgeID]; !ok {
		return nil, fmt.Errorf("wedgechain: unknown edge %q (have edge-1..edge-%d)", edgeID, c.cfg.Edges)
	}
	id := NodeID(name)
	if _, dup := c.clients[id]; dup {
		return nil, fmt.Errorf("wedgechain: duplicate client %q", name)
	}

	// Trust the routing table only after checking the cloud's signature
	// on the shard map — an edge must not be able to steer keys.
	var ring *shard.Map
	if c.cfg.Shards > 1 {
		if err := wcrypto.VerifyMsg(c.reg, CloudID, c.wireMap, c.wireMap.CloudSig); err != nil {
			return nil, fmt.Errorf("wedgechain: shard map signature: %w", err)
		}
		var err error
		ring, err = shard.FromWire(c.wireMap)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		ring, err = shard.New([]NodeID{edgeID})
		if err != nil {
			return nil, err
		}
	}

	k, err := wcrypto.GenerateKey(id)
	if err != nil {
		return nil, err
	}
	c.keys[id] = k
	c.reg.Register(id, k.Pub)

	light := opts.Light || c.cfg.LightVerify
	sample := opts.Sample
	if sample <= 0 {
		sample = c.cfg.VerifySample
	}
	seed := opts.Seed
	if light && seed == 0 {
		// Deterministic per-name seed: each session audits its own
		// request subset, and re-running the same program replays the
		// same audits.
		h := fnv.New64a()
		h.Write([]byte(name))
		seed = h.Sum64()
	}
	session := client.NewSharded(client.Config{
		ID:              id,
		Cloud:           CloudID,
		ProofTimeout:    c.cfg.ProofTimeout.Nanoseconds(),
		FreshnessWindow: c.cfg.FreshnessWindow.Nanoseconds(),
		Session:         c.cfg.SessionConsistency,
		RetryEvery:      c.cfg.RetryEvery.Nanoseconds(),
		MaxAttempts:     c.cfg.MaxAttempts,
		Light:           light,
		SampleEvery:     sample,
		SampleSeed:      seed,
		Metrics:         c.cfg.Metrics,
	}, ring, k, c.reg)
	cl := newClient(c, id, session)
	for _, core := range session.Cores() {
		core.OnPhaseI = cl.onPhaseI
		core.OnPhaseII = cl.onPhaseII
		core.OnDone = cl.onDone
	}
	c.clients[id] = cl
	if opts.Hub != nil {
		if !c.net.AddSession(opts.Hub.hub.ID(), &clientHandler{cl}) {
			delete(c.clients, id)
			return nil, fmt.Errorf("wedgechain: session hub %q is not registered with this cluster", opts.Hub.hub.ID())
		}
	} else {
		c.net.Add(&clientHandler{cl})
	}
	c.net.Do(CloudID, func(now int64) []wire.Envelope {
		c.cloud.AddGossipTarget(id)
		// Replay existing convictions to the new session: the verdict
		// broadcast at conviction time predates this client, and banned
		// edges are excluded from gossip, so without this a late joiner
		// would keep trusting an already-frozen shard.
		var out []wire.Envelope
		for _, v := range c.cloud.Punishments().Verdicts() {
			v := v
			out = append(out, wire.Envelope{From: CloudID, To: id, Msg: &v})
		}
		return out
	})
	return cl, nil
}

// clientHandler adapts the façade client for transport registration,
// keeping the sync API off the Handler surface.
type clientHandler struct{ c *Client }

func (h *clientHandler) ID() wire.NodeID { return h.c.id }
func (h *clientHandler) Receive(now int64, env wire.Envelope) []wire.Envelope {
	return h.c.session.Receive(now, env)
}
func (h *clientHandler) Tick(now int64) []wire.Envelope { return h.c.session.Tick(now) }
