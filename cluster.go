package wedgechain

import (
	"fmt"
	"sync"
	"time"

	"wedgechain/internal/client"
	"wedgechain/internal/cloud"
	"wedgechain/internal/edge"
	"wedgechain/internal/transport"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// CloudID is the trusted cloud node's identity in façade clusters.
const CloudID = NodeID("cloud")

// EdgeID returns the identity of the i-th edge node (1-based).
func EdgeID(i int) NodeID { return NodeID(fmt.Sprintf("edge-%d", i)) }

// Cluster is an in-process WedgeChain deployment: one trusted cloud node,
// one or more untrusted edge nodes, and any number of clients, connected
// by the channel transport (optionally with injected WAN latency).
type Cluster struct {
	cfg Config
	reg *wcrypto.Registry
	net *transport.Local

	mu      sync.Mutex
	keys    map[NodeID]wcrypto.KeyPair
	cloud   *cloud.Node
	edges   map[NodeID]*edge.Node
	clients map[NodeID]*Client
	closed  bool
}

// NewCluster assembles and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.fill()
	c := &Cluster{
		cfg:     cfg,
		reg:     wcrypto.NewRegistry(),
		keys:    make(map[NodeID]wcrypto.KeyPair),
		edges:   make(map[NodeID]*edge.Node),
		clients: make(map[NodeID]*Client),
	}
	c.net = transport.NewLocal(transport.LocalConfig{
		TickEvery: 5 * time.Millisecond,
		Latency:   cfg.Latency,
	})

	ck, err := wcrypto.GenerateKey(CloudID)
	if err != nil {
		return nil, err
	}
	c.keys[CloudID] = ck
	c.reg.Register(CloudID, ck.Pub)

	edgeIDs := make([]NodeID, 0, cfg.Edges)
	for i := 1; i <= cfg.Edges; i++ {
		id := EdgeID(i)
		k, err := wcrypto.GenerateKey(id)
		if err != nil {
			return nil, err
		}
		c.keys[id] = k
		c.reg.Register(id, k.Pub)
		edgeIDs = append(edgeIDs, id)
	}

	c.cloud = cloud.New(cloud.Config{
		ID:          CloudID,
		Levels:      len(cfg.LevelThresholds),
		PageCap:     cfg.PageCap,
		GossipEvery: cfg.GossipEvery.Nanoseconds(),
		// Gossip recipients are added as clients join; the cloud config
		// is static, so gossip goes to edges and clients pull via their
		// edge. For direct gossip, clients are registered below.
	}, ck, c.reg)
	c.net.Add(c.cloud)

	for _, id := range edgeIDs {
		en := edge.New(edge.Config{
			ID:              id,
			Cloud:           CloudID,
			BatchSize:       cfg.BatchSize,
			FlushEvery:      cfg.FlushEvery.Nanoseconds(),
			L0Threshold:     cfg.L0Threshold,
			LevelThresholds: cfg.LevelThresholds,
			PageCap:         cfg.PageCap,
			Fault:           cfg.EdgeFaults[id],
		}, c.keys[id], c.reg)
		c.edges[id] = en
		c.net.Add(en)
	}
	return c, nil
}

// Close stops the cluster's goroutines.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.net.Close()
}

// Punished reports whether the cloud has convicted and banned edgeID,
// with the conviction reason.
func (c *Cluster) Punished(edgeID NodeID) (string, bool) {
	type result struct {
		reason string
		ok     bool
	}
	ch := make(chan result, 1)
	ok := c.net.Do(CloudID, func(now int64) []wire.Envelope {
		r, banned := c.cloud.Flagged(edgeID)
		ch <- result{r, banned}
		return nil
	})
	if !ok {
		return "", false
	}
	r := <-ch
	return r.reason, r.ok
}

// Verdicts returns all guilty verdicts the cloud has issued.
func (c *Cluster) Verdicts() []Verdict {
	ch := make(chan []Verdict, 1)
	if !c.net.Do(CloudID, func(now int64) []wire.Envelope {
		ch <- append([]Verdict(nil), c.cloud.Punishments().Verdicts()...)
		return nil
	}) {
		return nil
	}
	return <-ch
}

// NewClient creates an authenticated client bound to edgeID's partition.
func (c *Cluster) NewClient(name string, edgeID NodeID) (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("wedgechain: cluster closed")
	}
	if _, ok := c.edges[edgeID]; !ok {
		return nil, fmt.Errorf("wedgechain: unknown edge %q", edgeID)
	}
	id := NodeID(name)
	if _, dup := c.clients[id]; dup {
		return nil, fmt.Errorf("wedgechain: duplicate client %q", name)
	}
	k, err := wcrypto.GenerateKey(id)
	if err != nil {
		return nil, err
	}
	c.keys[id] = k
	c.reg.Register(id, k.Pub)

	core := client.New(client.Config{
		ID:              id,
		Edge:            edgeID,
		Cloud:           CloudID,
		ProofTimeout:    c.cfg.ProofTimeout.Nanoseconds(),
		FreshnessWindow: c.cfg.FreshnessWindow.Nanoseconds(),
		Session:         c.cfg.SessionConsistency,
	}, k, c.reg)
	cl := newClient(c, id, core)
	core.OnPhaseI = cl.onPhaseI
	core.OnPhaseII = cl.onPhaseII
	core.OnDone = cl.onDone
	c.clients[id] = cl
	c.net.Add(&clientHandler{cl})
	c.net.Do(CloudID, func(now int64) []wire.Envelope {
		c.cloud.AddGossipTarget(id)
		return nil
	})
	return cl, nil
}

// clientHandler adapts the façade client for transport registration,
// keeping the sync API off the Handler surface.
type clientHandler struct{ c *Client }

func (h *clientHandler) ID() wire.NodeID { return h.c.id }
func (h *clientHandler) Receive(now int64, env wire.Envelope) []wire.Envelope {
	return h.c.core.Receive(now, env)
}
func (h *clientHandler) Tick(now int64) []wire.Envelope { return h.c.core.Tick(now) }
