// Package cli holds shared helpers for the wedge-* binaries: peer-map
// parsing and the demo key scheme.
//
// Keying: the binaries derive each node's Ed25519 key deterministically
// from its identity so that a multi-process demo cluster needs no key
// exchange. A production deployment would generate keys with
// wcrypto.GenerateKey and distribute the registry out of band; everything
// else is unchanged.
package cli

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"wedgechain/internal/faultnet"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// ParsePeers parses "id=host:port,id2=host:port" into a peer map.
func ParsePeers(s string) (map[wire.NodeID]string, error) {
	peers := make(map[wire.NodeID]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		peers[wire.NodeID(kv[0])] = kv[1]
	}
	return peers, nil
}

// Registry builds a key registry covering self plus all peers using the
// demo key scheme, returning self's key pair.
func Registry(self wire.NodeID, peers map[wire.NodeID]string) (wcrypto.KeyPair, *wcrypto.Registry) {
	reg := wcrypto.NewRegistry()
	selfKey := wcrypto.DeterministicKey(self)
	reg.Register(self, selfKey.Pub)
	for id := range peers {
		k := wcrypto.DeterministicKey(id)
		reg.Register(id, k.Pub)
	}
	return selfKey, reg
}

// ParseSample parses a light-mode audit rate: "16" or "1/16" both mean
// one in 16 responses is fully verified.
func ParseSample(s string) (int, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "1/"); ok {
		s = rest
	}
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v < 1 {
		return 0, fmt.Errorf(`bad sample rate %q (want "N" or "1/N", N >= 1)`, s)
	}
	return v, nil
}

// ParseInts parses "10,100,1000" into level thresholds.
func ParseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad threshold %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ChaosFlags is the shared chaos-injection flag set: every wedge binary
// that owns a transport can subject its *outbound* frames to a seeded
// fault schedule, so a multi-process demo cluster degrades exactly like
// the in-process chaos tests (see docs/RUNBOOK.md "Chaos recipes").
type ChaosFlags struct {
	Seed     *int64
	Drop     *float64
	Dup      *float64
	DelayMax *time.Duration
}

// RegisterChaos installs the chaos flags on the default flag set.
func RegisterChaos() *ChaosFlags {
	return &ChaosFlags{
		Seed:     flag.Int64("chaos-seed", 1, "seed for the deterministic chaos schedule"),
		Drop:     flag.Float64("chaos-drop", 0, "probability an outbound frame is dropped"),
		Dup:      flag.Float64("chaos-dup", 0, "probability an outbound frame is duplicated"),
		DelayMax: flag.Duration("chaos-delay-max", 0, "max extra latency injected per outbound frame"),
	}
}

// Net builds the fault injector the flags describe, or nil when no fault
// rate is set (the common, chaos-free case).
func (c *ChaosFlags) Net() (*faultnet.Net, error) {
	if *c.Drop == 0 && *c.Dup == 0 && *c.DelayMax == 0 {
		return nil, nil
	}
	if *c.Drop < 0 || *c.Drop > 1 || *c.Dup < 0 || *c.Dup > 1 || *c.DelayMax < 0 {
		return nil, fmt.Errorf("chaos flags out of range: drop=%v dup=%v delay-max=%v", *c.Drop, *c.Dup, *c.DelayMax)
	}
	n := faultnet.New(*c.Seed)
	n.Add(faultnet.Rule{Faults: faultnet.LinkFaults{
		Drop:     *c.Drop,
		Dup:      *c.Dup,
		DelayMax: c.DelayMax.Nanoseconds(),
	}})
	return n, nil
}
