// Command wedge-bench regenerates the paper's evaluation: every table and
// figure of Section VI plus the ablations in DESIGN.md.
//
// Usage:
//
//	wedge-bench -list
//	wedge-bench -run F4a            # one experiment, full scale
//	wedge-bench -run all -quick     # everything, reduced rounds
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wedgechain/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id (see -list) or 'all'")
		quick = flag.Bool("quick", false, "reduced rounds for a fast pass")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-4s %s\n", e.ID, e.Doc)
		}
		return
	}
	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}

	runOne := func(id string, fn func(bench.Scale) *bench.Table) {
		start := time.Now()
		t := fn(scale)
		t.Print(os.Stdout)
		fmt.Printf("  [%s completed in %.1fs wall time]\n", id, time.Since(start).Seconds())
	}

	if *run == "all" {
		for _, e := range bench.Experiments {
			runOne(e.ID, e.Fn)
		}
		return
	}
	fn, ok := bench.Lookup(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
		os.Exit(1)
	}
	runOne(*run, fn)
}
