// Command wedge-bench regenerates the paper's evaluation: every table and
// figure of Section VI plus the ablations in DESIGN.md and the shard
// scaling curve (S1).
//
// Usage:
//
//	wedge-bench -list
//	wedge-bench -run F4a            # one experiment, full scale
//	wedge-bench -run all -quick     # everything, reduced rounds
//	wedge-bench -run S1 -json -     # machine-readable results on stdout
//	wedge-bench -run P1,P2,D1 -json BENCH_pr3.json   # several ids, one report
//	wedge-bench -run all -quick -json bench.json   # CI artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wedgechain/internal/bench"
	"wedgechain/internal/obs"
)

// jsonResult is one experiment's machine-readable output.
type jsonResult struct {
	ID          string             `json:"id"`
	Title       string             `json:"title"`
	Header      []string           `json:"header"`
	Rows        [][]string         `json:"rows"`
	Notes       []string           `json:"notes,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	WallSeconds float64            `json:"wall_seconds"`
}

// jsonReport is the top-level -json document, a stable schema suitable
// for CI artifacts and trajectory files.
type jsonReport struct {
	Schema     string       `json:"schema"`
	Scale      string       `json:"scale"`
	StartedAt  string       `json:"started_at"`
	Experiment string       `json:"experiment"`
	Results    []jsonResult `json:"results"`
}

func main() {
	var (
		run         = flag.String("run", "all", "experiment id(s), comma-separated (see -list), or 'all'")
		quick       = flag.Bool("quick", false, "reduced rounds for a fast pass")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath    = flag.String("json", "", "write machine-readable results to this file ('-' = stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof while experiments run (empty = disabled)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		bench.LiveMetrics = obs.Default()
		ms, err := obs.StartServer(*metricsAddr, bench.LiveMetrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "wedge-bench metrics on http://%s/metrics (pprof at /debug/pprof/)\n", ms.Addr)
	}

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-4s %s\n", e.ID, e.Doc)
		}
		return
	}
	scale := bench.Full
	scaleName := "full"
	if *quick {
		scale = bench.Quick
		scaleName = "quick"
	}

	report := jsonReport{
		Schema:     "wedge-bench/v1",
		Scale:      scaleName,
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
		Experiment: *run,
	}
	// Human-readable tables go to stdout unless stdout is the JSON sink.
	tablesOut := os.Stdout
	if *jsonPath == "-" {
		tablesOut = os.Stderr
	}

	runOne := func(id string, fn func(bench.Scale) *bench.Table) {
		start := time.Now()
		t := fn(scale)
		wall := time.Since(start).Seconds()
		t.Print(tablesOut)
		fmt.Fprintf(tablesOut, "  [%s completed in %.1fs wall time]\n", id, wall)
		report.Results = append(report.Results, jsonResult{
			ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
			Notes: t.Notes, Metrics: t.Metrics, WallSeconds: wall,
		})
	}

	if *run == "all" {
		for _, e := range bench.Experiments {
			runOne(e.ID, e.Fn)
		}
	} else {
		// A comma-separated list runs several experiments into one
		// report (e.g. -run P1,P2,D1 for the PR-3 artifact).
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			fn, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(1)
			}
			runOne(id, fn)
		}
	}

	if *jsonPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encoding results: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *jsonPath == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
		os.Exit(1)
	}
	fmt.Fprintf(tablesOut, "wrote %s (%d experiments)\n", *jsonPath, len(report.Results))
}
