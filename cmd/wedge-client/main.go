// Command wedge-client performs WedgeChain operations against a TCP
// cluster: add, read, put, get. It runs a full verifying protocol client —
// a returned value is a verified value; a detected lie is reported with
// the cloud's verdict.
//
// Usage:
//
//	wedge-client -id c1 -listen :9003 \
//	  -peers cloud=localhost:9001,edge-1=localhost:9002 \
//	  -edge edge-1 [-chain edge-1] [-wait2] <op> [args]
//
// -chain names the chain identity when -edge is a promoted follower
// serving another chain's log (see docs/RUNBOOK.md).
//
// Operations: add <payload> | read <bid> | put <key> <value> | get <key> |
// scan <start> <end> [limit] ("-" = unbounded). Scans verify a Merkle
// completeness proof: the printed rows are provably every certified entry
// in the range.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"wedgechain/cmd/internal/cli"
	"wedgechain/internal/client"
	"wedgechain/internal/core"
	"wedgechain/internal/transport"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

func main() {
	var (
		id      = flag.String("id", "c1", "client identity")
		listen  = flag.String("listen", ":9003", "listen address for responses")
		peers   = flag.String("peers", "", "peer map: id=host:port,...")
		edgeID  = flag.String("edge", "edge-1", "edge node owning this client's partition")
		chain   = flag.String("chain", "", "chain identity the edge serves (defaults to -edge; set when -edge names a promoted follower)")
		cloudID = flag.String("cloud", "cloud", "cloud node identity")
		wait2   = flag.Bool("wait2", false, "also wait for Phase II certification")
		timeout = flag.Duration("timeout", 30*time.Second, "operation timeout")

		// Transport retry (see docs/RUNBOOK.md "Chaos recipes"): re-send
		// unacknowledged ops with backoff+jitter instead of hanging; after
		// -max-attempts total sends the op fails with a typed unavailable
		// error.
		retryEvery  = flag.Duration("retry-every", 0, "re-send an unacknowledged op after this long (0 disables retry)")
		maxAttempts = flag.Int("max-attempts", 0, "total sends per op when -retry-every is set (0 = default 4)")

		// Front door (see docs/RUNBOOK.md "Front door"): frame-scheduler
		// sizing, session multiplexing, and light verification.
		schedLanes  = flag.Int("sched-lanes", 0, "writer lanes in the shared frame scheduler (0 = default 4)")
		maxInflight = flag.Int("max-inflight", 0, "max frames queued per writer lane before shedding (0 = default 4096)")
		sessions    = flag.Int("sessions-per-conn", 1, "run a get from this many sessions multiplexed over one connection (session ids <id>.s2.. must appear in every node's -peers, mapped to this client's address)")
		lightMode   = flag.Bool("light", false, "light verification: trust the gossiped certified frontier and fully verify only a sample of responses")
		sampleRate  = flag.String("sample", "1/16", `light-mode audit rate: "1/N" or "N" fully verifies one in N responses`)
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing operation: add|read|put|get|scan")
	}
	sampleEvery, err := cli.ParseSample(*sampleRate)
	if err != nil {
		log.Fatal(err)
	}
	if *sessions < 1 {
		log.Fatal("-sessions-per-conn must be >= 1")
	}
	if *sessions > 1 && args[0] != "get" {
		log.Fatal("-sessions-per-conn > 1 supports only get: other operations sign as the session identity, which must be provisioned at the edge")
	}

	peerMap, err := cli.ParsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	key, reg := cli.Registry(wire.NodeID(*id), peerMap)
	ccfg := client.Config{
		ID:          wire.NodeID(*id),
		Edge:        wire.NodeID(*edgeID),
		Chain:       wire.NodeID(*chain),
		Cloud:       wire.NodeID(*cloudID),
		RetryEvery:  retryEvery.Nanoseconds(),
		MaxAttempts: *maxAttempts,
		Light:       *lightMode,
		SampleEvery: sampleEvery,
	}
	cc := client.New(ccfg, key, reg)

	t := transport.NewTCP(cc, transport.TCPConfig{
		Listen: *listen, Peers: peerMap,
		Lanes: *schedLanes, LaneDepth: *maxInflight,
	})

	// Extra sessions share the primary's socket: the transport routes
	// inbound frames to them by envelope address, and every remote node
	// dials them at this client's address, so N sessions ride one
	// connection end to end.
	extras := make([]*client.Core, 0, *sessions-1)
	for i := 2; i <= *sessions; i++ {
		scfg := ccfg
		scfg.ID = wire.NodeID(fmt.Sprintf("%s.s%d", *id, i))
		skey := wcrypto.DeterministicKey(scfg.ID)
		reg.Register(scfg.ID, skey.Pub)
		sc := client.New(scfg, skey, reg)
		t.AddSession(sc)
		extras = append(extras, sc)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := t.Serve(ctx); err != nil {
			log.Fatal(err)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the listener come up

	var op *client.Op
	launch := func(fn func(now int64) (*client.Op, []wire.Envelope)) {
		t.Do(func(now int64) []wire.Envelope {
			var envs []wire.Envelope
			op, envs = fn(now)
			return envs
		})
	}

	switch args[0] {
	case "add":
		if len(args) != 2 {
			log.Fatal("usage: add <payload>")
		}
		launch(func(now int64) (*client.Op, []wire.Envelope) { return cc.Add(now, []byte(args[1])) })
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put <key> <value>")
		}
		launch(func(now int64) (*client.Op, []wire.Envelope) {
			return cc.Put(now, []byte(args[1]), []byte(args[2]))
		})
	case "read":
		if len(args) != 2 {
			log.Fatal("usage: read <bid>")
		}
		bid, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			log.Fatal(err)
		}
		launch(func(now int64) (*client.Op, []wire.Envelope) { return cc.Read(now, bid) })
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get <key>")
		}
		launch(func(now int64) (*client.Op, []wire.Envelope) { return cc.Get(now, []byte(args[1])) })
	case "scan":
		if len(args) != 3 && len(args) != 4 {
			log.Fatal(`usage: scan <start> <end> [limit]  ("-" = unbounded)`)
		}
		var start, end []byte
		if args[1] != "-" {
			start = []byte(args[1])
		}
		if args[2] != "-" {
			end = []byte(args[2])
		}
		limit := 0
		if len(args) == 4 {
			n, err := strconv.Atoi(args[3])
			if err != nil {
				log.Fatal(err)
			}
			limit = n
		}
		launch(func(now int64) (*client.Op, []wire.Envelope) { return cc.Scan(now, start, end, limit) })
	default:
		log.Fatalf("unknown operation %q", args[0])
	}

	// Launch the same get from every extra multiplexed session.
	extraOps := make([]*client.Op, len(extras))
	for i, sc := range extras {
		i, sc := i, sc
		t.DoSession(sc.ID(), func(now int64) []wire.Envelope {
			var envs []wire.Envelope
			extraOps[i], envs = sc.Get(now, []byte(args[1]))
			return envs
		})
	}

	// Poll the op under the transport mutex until it reaches the desired
	// state.
	deadline := time.Now().Add(*timeout)
	for {
		var phase core.Phase
		var done bool
		var errOp error
		t.Do(func(now int64) []wire.Envelope {
			phase, done, errOp = op.Phase, op.Done, op.Err
			return nil
		})
		if errOp != nil {
			// Verification failures that accuse the edge (get and scan
			// evidence defects) settle before the cloud's verdict arrives;
			// wait briefly for it so the conviction is reported, not just
			// "operation failed".
			var disputed bool
			var verdict *wire.Verdict
			t.Do(func(now int64) []wire.Envelope {
				disputed, verdict = op.DisputeFiled(), op.Verdict
				return nil
			})
			verdictWait := time.Now().Add(5 * time.Second)
			for disputed && verdict == nil && time.Now().Before(verdictWait) {
				time.Sleep(10 * time.Millisecond)
				t.Do(func(now int64) []wire.Envelope {
					verdict = op.Verdict
					return nil
				})
			}
			if verdict != nil {
				status := "NOT GUILTY"
				if verdict.Guilty {
					status = "EDGE CONVICTED"
				}
				fmt.Printf("%s (%s dispute, block %d): %s\n", status, args[0], verdict.BID, verdict.Reason)
			}
			log.Fatalf("operation failed: %v", errOp)
		}
		target := core.PhaseI
		if *wait2 {
			target = core.PhaseII
		}
		if phase >= target || done {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("operation timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Wait for the extra sessions' gets — all multiplexed over the same
	// connection as the primary — before reporting.
	for waiting := len(extras) > 0; waiting; {
		done := 0
		for i, sc := range extras {
			i := i
			t.DoSession(sc.ID(), func(now int64) []wire.Envelope {
				if op := extraOps[i]; op != nil && op.Done {
					if op.Err != nil {
						log.Fatalf("session %s: %v", sc.ID(), op.Err)
					}
					done++
				}
				return nil
			})
		}
		if done == len(extras) {
			fmt.Printf("%d sessions settled over one multiplexed connection\n", len(extras)+1)
			waiting = false
		} else if time.Now().After(deadline) {
			log.Fatal("multiplexed sessions timed out")
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	t.Do(func(now int64) []wire.Envelope {
		switch args[0] {
		case "add", "put":
			fmt.Printf("%s committed: block=%d phase=%s\n", args[0], op.BID, op.Phase)
		case "read":
			if op.Block != nil {
				fmt.Printf("block %d: %d entries, phase=%s\n", op.BID, len(op.Block.Entries), op.Phase)
				for i := range op.Block.Entries {
					e := &op.Block.Entries[i]
					fmt.Printf("  [%d] client=%s key=%q value=%q\n", i, e.Client, e.Key, e.Value)
				}
			} else {
				fmt.Println("block not available")
			}
		case "get":
			if op.Found {
				fmt.Printf("%q = %q (ver %d, phase=%s, proof verified)\n", args[1], op.GotValue, op.GotVer, op.Phase)
			} else {
				fmt.Printf("%q not found (verified absence)\n", args[1])
			}
		case "scan":
			fmt.Printf("scan [%s, %s): %d rows (phase=%s, completeness proof verified)\n",
				args[1], args[2], len(op.ScanKVs), op.Phase)
			for _, kv := range op.ScanKVs {
				fmt.Printf("  %q = %q (ver %d)\n", kv.Key, kv.Value, kv.Ver)
			}
		}
		return nil
	})
	_ = os.Stdout.Sync()
}
