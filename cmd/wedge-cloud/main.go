// Command wedge-cloud runs the trusted WedgeChain cloud node over TCP:
// digest certification, LSMerkle merge service, gossip, and dispute
// adjudication.
//
// Example (three terminals):
//
//	wedge-cloud  -listen :9001 -peers edge-1=localhost:9002,c1=localhost:9003
//	wedge-edge   -id edge-1 -listen :9002 -peers cloud=localhost:9001,c1=localhost:9003
//	wedge-client -id c1 -listen :9003 -peers cloud=localhost:9001,edge-1=localhost:9002 \
//	             -edge edge-1 put mykey myvalue
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wedgechain/cmd/internal/cli"
	"wedgechain/internal/cloud"
	"wedgechain/internal/obs"
	"wedgechain/internal/obs/olog"
	"wedgechain/internal/transport"
	"wedgechain/internal/wire"
)

func main() {
	var (
		id      = flag.String("id", "cloud", "node identity")
		listen  = flag.String("listen", ":9001", "listen address")
		peers   = flag.String("peers", "", "peer map: id=host:port,...")
		levels  = flag.Int("levels", 3, "LSMerkle levels (excluding L0)")
		pageCap = flag.Int("pagecap", 100, "records per merged page")
		gossip  = flag.Duration("gossip", time.Second, "gossip period (0 disables)")

		// Replica-group failover (see docs/RUNBOOK.md "Replication & failover").
		groups = flag.String("groups", "", "replica groups: leader=f1,f2[;leader2=...] (chain id = initial leader id)")
		lease  = flag.Duration("lease", time.Second, "leader lease: heartbeat silence beyond this transfers leadership")
		certTO = flag.Duration("cert-timeout", 3*time.Second, "certification-stall bound before leadership transfer")

		// Certification at scale (see docs/RUNBOOK.md).
		certWorkers = flag.Int("cert-workers", 0, "certification precheck workers (0 = inline prechecks)")
		certBatch   = flag.Int("cert-batch", 1, "blocks covered per batched certificate signature (<=1 = per-block proofs)")
		auditEvery  = flag.Duration("audit-every", 0, "anti-entropy audit sweep period (0 disables)")

		schedLanes  = flag.Int("sched-lanes", 0, "writer lanes in the shared frame scheduler (0 = default 4)")
		maxInflight = flag.Int("max-inflight", 0, "max frames queued per writer lane before shedding (0 = default 4096)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")

		// Outbound chaos injection (see docs/RUNBOOK.md "Chaos recipes").
		chaos = cli.RegisterChaos()
	)
	flag.Parse()

	peerMap, err := cli.ParsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	key, reg := cli.Registry(wire.NodeID(*id), peerMap)

	var gossipTo []wire.NodeID
	for p := range peerMap {
		gossipTo = append(gossipTo, p)
	}
	logger := olog.New(os.Stderr, olog.LevelInfo)
	metrics := obs.Default()
	ccfg := cloud.Config{
		ID:           wire.NodeID(*id),
		Levels:       *levels,
		PageCap:      *pageCap,
		GossipEvery:  gossip.Nanoseconds(),
		GossipTo:     gossipTo,
		LeaseTimeout: lease.Nanoseconds(),
		CertTimeout:  certTO.Nanoseconds(),
		CertWorkers:  *certWorkers,
		CertBatch:    *certBatch,
		AuditEvery:   auditEvery.Nanoseconds(),
		Logger:       logger,
		Metrics:      metrics,
	}
	if err := ccfg.Validate(); err != nil {
		log.Fatal(err)
	}
	node := cloud.New(ccfg, key, reg)
	defer node.Close()
	if err := registerGroups(node, *groups); err != nil {
		log.Fatal(err)
	}

	faultNet, err := chaos.Net()
	if err != nil {
		log.Fatal(err)
	}
	faultNet.AttachMetrics(metrics, *id)
	t := transport.NewTCP(node, transport.TCPConfig{
		Listen: *listen, Peers: peerMap, Fault: faultNet,
		Lanes: *schedLanes, LaneDepth: *maxInflight,
		Registry: reg, VerifyWorkers: -1, // negative = GOMAXPROCS
		Obs: metrics, Log: logger,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *metricsAddr != "" {
		ms, err := obs.StartServer(*metricsAddr, metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer ms.Close()
		log.Printf("wedge-cloud %s metrics on http://%s/metrics (pprof at /debug/pprof/)", *id, ms.Addr)
	}
	log.Printf("wedge-cloud %s listening on %s", *id, *listen)
	if err := t.Serve(ctx); err != nil {
		log.Fatal(err)
	}
	// Graceful shutdown (SIGINT/SIGTERM): accepted conns are closed by
	// Serve's exit path; an exit status of 0 marks an orderly stop.
	log.Printf("wedge-cloud %s: graceful shutdown (conns closed)", *id)
}

// registerGroups parses "leader=f1,f2[;leader2=...]" and declares each
// replica group before the transport starts. The chain identity is the
// initial leader's id, matching the façade's convention.
func registerGroups(node *cloud.Node, spec string) error {
	if spec == "" {
		return nil
	}
	for _, g := range strings.Split(spec, ";") {
		leader, rest, ok := strings.Cut(strings.TrimSpace(g), "=")
		if !ok || leader == "" {
			return fmt.Errorf("bad -groups entry %q (want leader=f1,f2)", g)
		}
		var fs []wire.NodeID
		for _, f := range strings.Split(rest, ",") {
			if f = strings.TrimSpace(f); f != "" {
				fs = append(fs, wire.NodeID(f))
			}
		}
		if len(fs) == 0 {
			return fmt.Errorf("bad -groups entry %q: no followers", g)
		}
		node.RegisterGroup(wire.NodeID(leader), wire.NodeID(leader), fs)
	}
	return nil
}
