// Command wedge-edge runs an (untrusted) WedgeChain edge node over TCP:
// block ingestion, lazy certification against the cloud, LSMerkle serving,
// and — for demonstrations — optional byzantine behaviour.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wedgechain/cmd/internal/cli"
	"wedgechain/internal/edge"
	"wedgechain/internal/obs"
	"wedgechain/internal/obs/olog"
	"wedgechain/internal/transport"
	"wedgechain/internal/wire"
)

func main() {
	var (
		id      = flag.String("id", "edge-1", "node identity")
		listen  = flag.String("listen", ":9002", "listen address")
		peers   = flag.String("peers", "", "peer map: id=host:port,...")
		cloudID = flag.String("cloud", "cloud", "cloud node identity")
		batch   = flag.Int("batch", 100, "entries per block")
		flush   = flag.Duration("flush", 100*time.Millisecond, "partial block flush interval")
		l0      = flag.Int("l0", 10, "L0 blocks before compaction")
		levels  = flag.String("levels", "10,100,1000", "level page thresholds")
		evil    = flag.String("evil", "", "byzantine mode: tamper-add=<victim>|omit=<bid>|double-certify|drop-certify|false-exclude=<key>|tamper-summary=<key>|equivocate-repl|promote-stale=<bid>")
		dataDir = flag.String("data", "", "directory for the durable log segment (empty = in-memory)")
		syncWin = flag.Duration("group-commit", 0, "group-commit fsync window: blocks persisted within it share one fsync (0 = fsync per block)")

		// Replica-group role (see docs/RUNBOOK.md "Replication & failover").
		chain     = flag.String("chain", "", "chain identity this node serves (defaults to -id; set together with -follower)")
		follower  = flag.Bool("follower", false, "start as a mirroring follower of -chain's leader instead of serving clients")
		followers = flag.String("followers", "", "comma-separated follower ids this leader replicates cut blocks to")
		heartbeat = flag.Duration("heartbeat", 0, "replica liveness heartbeat period (0 = 200ms default when part of a group)")

		// Robustness knobs (see docs/RUNBOOK.md "Chaos recipes").
		maxUncert = flag.Int("max-uncertified", 0, "shed writes while more than this many blocks await certification (0 = no cap)")

		// Certification at scale (see docs/RUNBOOK.md): group contiguous
		// certify digests into one signed BlockCertifyBatch to the cloud.
		certBatch = flag.Int("cert-batch", 1, "blocks per batched certification request (<=1 = per-block; ignored with -group-commit, -evil or full-data certification)")

		// Frame scheduler (see docs/RUNBOOK.md "Front door"): outbound
		// frames share a bounded pool of writer lanes instead of one
		// goroutine per peer.
		schedLanes  = flag.Int("sched-lanes", 0, "writer lanes in the shared frame scheduler (0 = default 4)")
		maxInflight = flag.Int("max-inflight", 0, "max frames queued per writer lane before shedding (0 = default 4096)")
		certRetry   = flag.Duration("cert-retry", 0, "re-submit certification after the frontier stalls this long (0 = 1s default in groups, negative disables)")
		catchUp     = flag.Duration("catchup-every", 0, "follower gap-driven catch-up period (0 = 500ms default in groups, negative disables)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")
		chaos       = cli.RegisterChaos()
	)
	flag.Parse()

	peerMap, err := cli.ParsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	key, reg := cli.Registry(wire.NodeID(*id), peerMap)
	thresholds, err := cli.ParseInts(*levels)
	if err != nil {
		log.Fatal(err)
	}

	fault, err := parseFault(*evil)
	if err != nil {
		log.Fatal(err)
	}
	logger := olog.New(os.Stderr, olog.LevelInfo)
	metrics := obs.Default()
	cfg := edge.Config{
		ID:              wire.NodeID(*id),
		Chain:           wire.NodeID(*chain),
		Cloud:           wire.NodeID(*cloudID),
		BatchSize:       *batch,
		FlushEvery:      flush.Nanoseconds(),
		L0Threshold:     *l0,
		LevelThresholds: thresholds,
		SyncEvery:       syncWin.Nanoseconds(),
		Follower:        *follower,
		HeartbeatEvery:  heartbeat.Nanoseconds(),
		MaxUncertified:  *maxUncert,
		CertBatch:       *certBatch,
		CertRetryEvery:  certRetry.Nanoseconds(),
		CatchUpEvery:    catchUp.Nanoseconds(),
		Fault:           fault,
		Logger:          logger,
		Metrics:         metrics,
	}
	for _, f := range strings.Split(*followers, ",") {
		if f = strings.TrimSpace(f); f != "" {
			cfg.Followers = append(cfg.Followers, wire.NodeID(f))
		}
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	var node *edge.Node
	if *dataDir != "" {
		var recovered int
		node, recovered, err = edge.NewPersistent(cfg, key, reg, *dataDir, true)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("recovered %d blocks from %s", recovered, *dataDir)
	} else {
		node = edge.New(cfg, key, reg)
	}

	faultNet, err := chaos.Net()
	if err != nil {
		log.Fatal(err)
	}
	faultNet.AttachMetrics(metrics, *id)
	t := transport.NewTCP(node, transport.TCPConfig{
		Listen: *listen, Peers: peerMap, Fault: faultNet,
		Lanes: *schedLanes, LaneDepth: *maxInflight,
		Registry: reg, VerifyWorkers: -1, // negative = GOMAXPROCS
		Obs: metrics, Log: logger,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *metricsAddr != "" {
		ms, err := obs.StartServer(*metricsAddr, metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer ms.Close()
		log.Printf("wedge-edge %s metrics on http://%s/metrics (pprof at /debug/pprof/)", *id, ms.Addr)
	}
	mode := "honest"
	if fault != nil {
		mode = "BYZANTINE(" + *evil + ")"
	}
	role := "leader"
	if *follower {
		role = fmt.Sprintf("follower of chain %s", node.Chain())
	} else if len(cfg.Followers) > 0 {
		role = fmt.Sprintf("leader replicating to %d followers", len(cfg.Followers))
	}
	log.Printf("wedge-edge %s listening on %s (%s, %s)", *id, *listen, mode, role)
	if err := t.Serve(ctx); err != nil {
		node.CloseStore()
		log.Fatal(err)
	}
	// Graceful shutdown (SIGINT/SIGTERM): Serve has closed the accepted
	// conns; flush the group-commit wlog buffer so every block the node
	// holds is durable, then exit 0 — an orderly restart, distinguishable
	// in the logs (and by exit status) from a chaos kill.
	if err := node.CloseStore(); err != nil {
		log.Fatalf("wedge-edge %s: flushing durable log on shutdown: %v", *id, err)
	}
	log.Printf("wedge-edge %s: graceful shutdown (wlog flushed, conns closed)", *id)
}

func parseFault(s string) (*edge.Fault, error) {
	if s == "" {
		return nil, nil
	}
	f := &edge.Fault{}
	switch {
	case strings.HasPrefix(s, "tamper-add="):
		f.TamperAddVictim = wire.NodeID(strings.TrimPrefix(s, "tamper-add="))
	case strings.HasPrefix(s, "omit="):
		bid, err := strconv.ParseUint(strings.TrimPrefix(s, "omit="), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -evil value %q: %v", s, err)
		}
		f.OmitBlocks = map[uint64]bool{bid: true}
	case s == "double-certify":
		f.DoubleCertify = true
	case s == "drop-certify":
		f.DropCertify = true
	case strings.HasPrefix(s, "false-exclude="):
		f.SummaryFalseExclude = []byte(strings.TrimPrefix(s, "false-exclude="))
	case strings.HasPrefix(s, "tamper-summary="):
		f.SummaryTamperKey = []byte(strings.TrimPrefix(s, "tamper-summary="))
	case s == "equivocate-repl":
		f.EquivocateReplication = true
	case strings.HasPrefix(s, "promote-stale="):
		bid, err := strconv.ParseUint(strings.TrimPrefix(s, "promote-stale="), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -evil value %q: %v", s, err)
		}
		f.PromoteStale = true
		f.PromoteStaleFrom = bid
	default:
		return nil, fmt.Errorf("bad -evil value %q", s)
	}
	return f, nil
}
