// LSMerkle key-value store walkthrough: high-velocity ingestion through
// the log-structured levels, cloud-coordinated compaction, verified reads
// including proofs of absence, and the reservation extension for
// idempotent writes.
package main

import (
	"fmt"
	"log"
	"time"

	"wedgechain"
)

func main() {
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Edges:           1,
		BatchSize:       4,
		FlushEvery:      20 * time.Millisecond,
		L0Threshold:     2,              // compact after 2 certified blocks
		LevelThresholds: []int{2, 4, 8}, // small levels so merges cascade
		FreshnessWindow: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.NewClient("writer", wedgechain.EdgeID(1))
	if err != nil {
		log.Fatal(err)
	}

	// Ingest several versions of a working set: enough blocks to trigger
	// L0 -> L1 merges and at least one cascade.
	fmt.Println("ingesting 48 writes over 12 keys (multiple versions each)...")
	var last *wedgechain.Receipt
	for i := 0; i < 48; i++ {
		key := fmt.Sprintf("device/%02d", i%12)
		val := fmt.Sprintf("state-v%d", i/12)
		r, err := c.Put([]byte(key), []byte(val))
		if err != nil {
			log.Fatalf("put %d: %v", i, err)
		}
		last = r
	}
	if err := last.WaitPhaseII(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	// Give compaction a moment to run in the background.
	time.Sleep(500 * time.Millisecond)

	// Latest-version reads: every key must resolve to its newest value
	// regardless of which level it lives in now.
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("device/%02d", i)
		val, found, phase, err := c.Get([]byte(key))
		if err != nil {
			log.Fatalf("get %s: %v", key, err)
		}
		if !found || string(val) != "state-v3" {
			log.Fatalf("get %s = %q (found=%v), want state-v3", key, val, found)
		}
		if i < 3 {
			fmt.Printf("  get(%s) = %s [%s]\n", key, val, phase)
		}
	}
	fmt.Println("  ... all 12 keys at their newest version, proofs verified")

	// Proof of absence: the response carries the intersecting page of
	// each level; the client checks range coverage, not just trust.
	_, found, _, err := c.Get([]byte("device/99"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(device/99) found=%v — absence proven by level range coverage\n", found)

	// Reservation extension: reserve a log position, sign the entry for
	// it; replays of the position are rejected by construction.
	start, err := c.Reserve(1, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	r, err := c.AddAt([]byte("exactly-once-command"), start)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.WaitPhaseII(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reserved position %d committed exactly-once in block %d\n", start, r.BID())
}
