// Malicious-edge demonstration: the paper's central claim is that an edge
// node *can* lie but every lie is eventually detected and punished. This
// example makes the edge byzantine in three ways — tampered add responses,
// omitted blocks, and conflicting certifications — and shows each lie
// convicted.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"wedgechain"
)

func main() {
	demoTamperedAdd()
	demoOmission()
}

// demoTamperedAdd: the edge returns the victim a block whose other entries
// were altered. The victim's own entry is intact, so Phase I verification
// passes — the lie is only caught when the cloud-certified digest
// contradicts the signed response the victim holds.
func demoTamperedAdd() {
	fmt.Println("== Lie #1: tampered add-response ==")
	fault := &wedgechain.Fault{TamperAddVictim: "victim"}
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Edges:        1,
		BatchSize:    2,
		ProofTimeout: 300 * time.Millisecond,
		EdgeFaults:   map[wedgechain.NodeID]*wedgechain.Fault{wedgechain.EdgeID(1): fault},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	victim, _ := cluster.NewClient("victim", wedgechain.EdgeID(1))
	bystander, _ := cluster.NewClient("bystander", wedgechain.EdgeID(1))

	errCh := make(chan error, 1)
	go func() {
		r, err := victim.Add([]byte("victim-data"))
		if err != nil {
			errCh <- err
			return
		}
		// Phase I succeeded: the edge's signed response looked fine.
		fmt.Printf("  victim: Phase I commit accepted (block %d) — lie not yet visible\n", r.BID())
		errCh <- r.WaitPhaseII(15 * time.Second)
	}()
	if _, err := bystander.Add([]byte("bystander-data")); err != nil {
		log.Fatal(err)
	}

	err = <-errCh
	if errors.Is(err, wedgechain.ErrEdgeLied) {
		fmt.Println("  victim: certified digest contradicted the signed response -> dispute filed")
	} else {
		log.Fatalf("expected ErrEdgeLied, got %v", err)
	}
	waitPunished(cluster)
}

// demoOmission: the edge denies a block exists. Cloud gossip proves it
// does; the signed denial becomes the conviction evidence.
func demoOmission() {
	fmt.Println("== Lie #2: omission (denying a committed block) ==")
	fault := &wedgechain.Fault{OmitBlocks: map[uint64]bool{0: true}}
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Edges:       1,
		BatchSize:   2,
		GossipEvery: 50 * time.Millisecond,
		EdgeFaults:  map[wedgechain.NodeID]*wedgechain.Fault{wedgechain.EdgeID(1): fault},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	writer, _ := cluster.NewClient("writer", wedgechain.EdgeID(1))
	reader, _ := cluster.NewClient("reader", wedgechain.EdgeID(1))

	done := make(chan struct{})
	go func() {
		r, err := writer.Add([]byte("entry-0"))
		if err == nil {
			r.WaitPhaseII(10 * time.Second)
		}
		close(done)
	}()
	if _, err := writer.Add([]byte("entry-1")); err != nil {
		log.Fatal(err)
	}
	<-done
	fmt.Println("  block 0 committed and certified; waiting for gossip to reach the reader")
	time.Sleep(300 * time.Millisecond)

	_, _, err = reader.Read(0, 15*time.Second)
	if errors.Is(err, wedgechain.ErrEdgeLied) {
		fmt.Println("  reader: denial contradicted cloud gossip -> omission dispute filed")
	} else {
		log.Fatalf("expected ErrEdgeLied, got %v", err)
	}
	waitPunished(cluster)
}

func waitPunished(cluster *wedgechain.Cluster) {
	deadline := time.After(10 * time.Second)
	for {
		if reason, ok := cluster.Punished(wedgechain.EdgeID(1)); ok {
			fmt.Printf("  cloud: edge-1 PUNISHED — %s\n\n", reason)
			return
		}
		select {
		case <-deadline:
			log.Fatal("edge was never punished")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
