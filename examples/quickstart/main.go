// Quickstart: bring up a WedgeChain cluster in-process, log entries with
// Phase I / Phase II commitment, write and read key-value pairs with
// verified proofs.
package main

import (
	"fmt"
	"log"
	"time"

	"wedgechain"
)

func main() {
	// One untrusted edge node, one trusted cloud node, small blocks so
	// everything commits quickly. A 30ms simulated WAN separates edge
	// and cloud — Phase I never pays it, Phase II always does.
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Edges:      1,
		BatchSize:  2,
		FlushEvery: 25 * time.Millisecond,
		Latency: func(from, to wedgechain.NodeID) time.Duration {
			if from == wedgechain.CloudID || to == wedgechain.CloudID {
				return 30 * time.Millisecond
			}
			return time.Millisecond
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient("sensor-1", wedgechain.EdgeID(1))
	if err != nil {
		log.Fatal(err)
	}

	// --- Logging interface: add() / read().
	start := time.Now()
	receipt, err := client.Add([]byte("temperature=21.7C ts=1718100000"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Phase I  commit in %v (block %d) — committed at the edge, cloud not involved\n",
		time.Since(start).Round(time.Millisecond), receipt.BID())

	if err := receipt.WaitPhaseII(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Phase II commit in %v — cloud certified the block digest (data-free)\n",
		time.Since(start).Round(time.Millisecond))

	blk, phase, err := client.Read(receipt.BID(), 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read(block %d): %d entries, %s\n", receipt.BID(), len(blk.Entries), phase)

	// --- Key-value interface: put() / get() through LSMerkle.
	if _, err := client.Put([]byte("door/42"), []byte("locked")); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Put([]byte("door/42"), []byte("open")); err != nil {
		log.Fatal(err)
	}
	val, found, phase, err := client.Get([]byte("door/42"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(door/42) = %q (found=%v, %s) — value verified against certified blocks\n",
		val, found, phase)

	_, found, _, err = client.Get([]byte("door/99"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(door/99) found=%v — a *verified* absence, not a trusted one\n", found)
}
