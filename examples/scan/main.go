// Verified range scans: an untrusted edge must prove not only that every
// returned row is authentic but that *no certified row was omitted*. This
// example stands up a 4-shard cluster, loads a time-series keyspace,
// scans a key range with a completeness proof verified client-side (the
// scatter-gather spans every shard), and then shows the guarantee's
// teeth: an edge that omits a row mid-range fails verification and is
// convicted by the cloud.
//
// The conviction is reported as a cloud-signed dispute verdict: the
// failed scan's error names the defect, and the verdict carries the
// accused edge, the disputed block, and the judge's reason (printed
// below via Cluster.VerdictsFor). The wedge-client binary surfaces the
// same ruling on the command line — a disputed operation prints a line
// like
//
//	EDGE CONVICTED (scan dispute, block 3): scan proof page contradicts certified digest
//
// before exiting, so detection is visible in scripted deployments too.
package main

import (
	"fmt"
	"log"
	"time"

	"wedgechain"
)

func main() {
	demoVerifiedScan()
	demoOmissionConviction()
}

// demoVerifiedScan: one Scan call returns a globally ordered, verified
// slice of the keyspace, merged newest-wins across all four shards.
func demoVerifiedScan() {
	fmt.Println("== Verified range scan across 4 shards ==")
	cluster, err := wedgechain.NewCluster(wedgechain.Config{Shards: 4, BatchSize: 2, L0Threshold: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.NewClient("dashboard", "")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("sensor/%02d", i)
		if _, err := c.Put([]byte(key), []byte(fmt.Sprintf("21.%dC", i%10))); err != nil {
			log.Fatal(err)
		}
	}
	// Overwrite one reading so newest-wins is visible.
	if _, err := c.Put([]byte("sensor/07"), []byte("re-calibrated")); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let certification and compaction settle

	kvs, phase, err := c.Scan([]byte("sensor/05"), []byte("sensor/12"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scan [sensor/05, sensor/12): %d rows, phase=%s\n", len(kvs), phase)
	for _, kv := range kvs {
		fmt.Printf("    %s = %s\n", kv.Key, kv.Value)
	}
	fmt.Println("  every row verified; completeness proven by per-shard Merkle range proofs")
	fmt.Println()
}

// demoOmissionConviction: a byzantine edge drops one row from a scan. The
// tampered page no longer hashes to its certified Merkle leaf, the client
// rejects the scan, and the edge's own signed response convicts it.
func demoOmissionConviction() {
	fmt.Println("== Omission attack: detected and punished ==")
	evil := wedgechain.EdgeID(1)
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Shards:      1,
		BatchSize:   2,
		L0Threshold: 2,
		EdgeFaults: map[wedgechain.NodeID]*wedgechain.Fault{
			evil: {ScanOmitKey: []byte("ledger/03")},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.NewClient("auditor", "")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Put([]byte(fmt.Sprintf("ledger/%02d", i)), []byte(fmt.Sprintf("tx-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	_, _, err = c.Scan([]byte("ledger/00"), []byte("ledger/08"), 0)
	fmt.Printf("  scan over the byzantine edge: %v\n", err)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reason, banned := cluster.Punished(evil); banned {
			fmt.Printf("  cloud verdict: GUILTY — %s\n", reason)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("edge was not convicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The full signed verdict (what wedge-client prints as "EDGE
	// CONVICTED (scan dispute, block N): reason").
	for _, v := range cluster.VerdictsFor(evil) {
		fmt.Printf("  verdict record: edge=%s block=%d guilty=%v reason=%q\n", v.Edge, v.BID, v.Guilty, v.Reason)
	}
	fmt.Println("  the omitted row could not be hidden: the signed proof convicted the edge")
}
