// Sharded-keyspace demonstration: WedgeChain keeps the cloud off the
// write critical path, so throughput scales by adding edge nodes. This
// example stands up a 4-shard cluster, shows keys routing
// deterministically across all four edges, and then convicts one
// tampering shard while its siblings keep committing — the per-shard
// isolation the lazy-trust design makes natural.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"wedgechain"
)

func main() {
	demoRouting()
	demoConvictionIsolation()
}

// demoRouting: one client session spans all four shards; puts spread by
// key hash and every edge ends up owning part of the keyspace.
func demoRouting() {
	fmt.Println("== Sharded routing across 4 edges ==")
	cluster, err := wedgechain.NewCluster(wedgechain.Config{Shards: 4, BatchSize: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.NewClient("sensor-1", "") // shard-routed session
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  session spans %d shards; home shard for log ops: %s\n", c.Shards(), c.HomeEdge())

	var receipts []*wedgechain.Receipt
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("reading/%d", i)
		r, err := c.Put([]byte(key), []byte(fmt.Sprintf("21.%dC", i)))
		if err != nil {
			log.Fatal(err)
		}
		receipts = append(receipts, r)
		if i < 4 {
			fmt.Printf("  %-12s -> %s\n", key, c.EdgeFor([]byte(key)))
		}
	}
	for _, r := range receipts {
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i <= 4; i++ {
		st, err := cluster.EdgeStats(wedgechain.EdgeID(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d writes, %d blocks cut\n", wedgechain.EdgeID(i), st.Writes, st.BlocksCut)
	}
}

// demoConvictionIsolation: shard edge-2 tampers; its client write is
// convicted by its own evidence, while the three sibling shards keep
// committing through Phase II.
func demoConvictionIsolation() {
	fmt.Println("== One shard convicted, siblings live ==")
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Shards:       4,
		BatchSize:    2,
		ProofTimeout: 300 * time.Millisecond,
		EdgeFaults: map[wedgechain.NodeID]*wedgechain.Fault{
			wedgechain.EdgeID(2): {TamperAddVictim: "victim"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.NewClient("victim", "")
	if err != nil {
		log.Fatal(err)
	}

	// Find a key owned by the tampering shard and one per honest shard.
	keyFor := func(edge wedgechain.NodeID) []byte {
		for i := 0; ; i++ {
			k := []byte(fmt.Sprintf("key-%d", i))
			if c.EdgeFor(k) == edge {
				return k
			}
		}
	}

	r, err := c.Put(keyFor(wedgechain.EdgeID(2)), []byte("precious"))
	if err != nil {
		log.Fatal(err)
	}
	if err := r.WaitPhaseII(15 * time.Second); errors.Is(err, wedgechain.ErrEdgeLied) {
		fmt.Println("  edge-2 lied; evidence convicted it")
	} else {
		log.Fatalf("expected ErrEdgeLied, got %v", err)
	}
	for {
		if reason, punished := cluster.Punished(wedgechain.EdgeID(2)); punished {
			fmt.Printf("  verdict: %s banned (%s)\n", wedgechain.EdgeID(2), reason)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	for _, i := range []int{1, 3, 4} {
		edge := wedgechain.EdgeID(i)
		r, err := c.Put(keyFor(edge), []byte("business-as-usual"))
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: Phase II commit after sibling conviction\n", edge)
	}
	// The session saw the guilty verdict: operations routed to the
	// convicted shard now fail immediately instead of waiting out a
	// proof timeout.
	if _, err := c.Put(keyFor(wedgechain.EdgeID(2)), []byte("late")); errors.Is(err, wedgechain.ErrEdgeBanned) {
		fmt.Println("  edge-2: further writes fail fast with ErrEdgeBanned")
	} else {
		log.Fatalf("expected ErrEdgeBanned, got %v", err)
	}
	fmt.Printf("  verdicts against edge-2: %d; against siblings: %d\n",
		len(cluster.VerdictsFor(wedgechain.EdgeID(2))),
		len(cluster.VerdictsFor(wedgechain.EdgeID(1)))+
			len(cluster.VerdictsFor(wedgechain.EdgeID(3)))+
			len(cluster.VerdictsFor(wedgechain.EdgeID(4))))
}
