// Smart-traffic scenario from the paper's introduction: a state government
// monitors city traffic through sensors (clients) that stream readings to
// third-party edge nodes it does not trust, while its own trusted data
// center (the cloud) certifies lazily. Multiple edge partitions serve
// different districts; a control application reads verified recent state.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"wedgechain"
)

const (
	districts      = 2 // one edge partition per district
	sensorsPerEdge = 3
	readingsPerMin = 20
)

func main() {
	// Edge nodes are ~2ms from sensors; the government data center is
	// 80ms away — exactly the asymmetry WedgeChain exploits.
	cluster, err := wedgechain.NewCluster(wedgechain.Config{
		Edges:      districts,
		BatchSize:  10,
		FlushEvery: 50 * time.Millisecond,
		Latency: func(from, to wedgechain.NodeID) time.Duration {
			if from == wedgechain.CloudID || to == wedgechain.CloudID {
				return 40 * time.Millisecond // one-way to the data center
			}
			return time.Millisecond
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var phase1Lat, phase2Lat []time.Duration

	// Sensors stream speed readings into their district's partition.
	for d := 1; d <= districts; d++ {
		for s := 0; s < sensorsPerEdge; s++ {
			name := fmt.Sprintf("sensor-d%d-%d", d, s)
			client, err := cluster.NewClient(name, wedgechain.EdgeID(d))
			if err != nil {
				log.Fatal(err)
			}
			wg.Add(1)
			go func(d, s int, c *wedgechain.Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(d*100 + s)))
				for i := 0; i < readingsPerMin; i++ {
					road := fmt.Sprintf("district-%d/road-%d", d, rng.Intn(4))
					speed := fmt.Sprintf("%d km/h", 20+rng.Intn(80))
					start := time.Now()
					r, err := c.Put([]byte(road), []byte(speed))
					if err != nil {
						log.Printf("%s: put failed: %v", c.ID(), err)
						continue
					}
					p1 := time.Since(start)
					if err := r.WaitPhaseII(15 * time.Second); err != nil {
						log.Printf("%s: certification failed: %v", c.ID(), err)
						continue
					}
					p2 := time.Since(start)
					mu.Lock()
					phase1Lat = append(phase1Lat, p1)
					phase2Lat = append(phase2Lat, p2)
					mu.Unlock()
				}
			}(d, s, client)
		}
	}
	wg.Wait()

	fmt.Printf("ingested %d readings across %d districts\n", len(phase1Lat), districts)
	fmt.Printf("  Phase I  (actionable at the edge): mean %v\n", mean(phase1Lat))
	fmt.Printf("  Phase II (certified by the cloud): mean %v\n", mean(phase2Lat))

	// The traffic-control application reads verified current state from
	// each district — from the untrusted edge, without asking the cloud.
	for d := 1; d <= districts; d++ {
		controller, err := cluster.NewClient(fmt.Sprintf("controller-%d", d), wedgechain.EdgeID(d))
		if err != nil {
			log.Fatal(err)
		}
		for road := 0; road < 4; road++ {
			key := fmt.Sprintf("district-%d/road-%d", d, road)
			val, found, phase, err := controller.Get([]byte(key))
			if err != nil {
				log.Fatalf("controller get %s: %v", key, err)
			}
			if found {
				fmt.Printf("  %s = %s (%s, proof verified)\n", key, val, phase)
			}
		}
	}
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return (sum / time.Duration(len(ds))).Round(time.Millisecond)
}
