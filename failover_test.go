package wedgechain

import (
	"fmt"
	"testing"
	"time"
)

// A replicated façade cluster survives its leader being killed: the cloud
// notices the heartbeat silence, promotes a follower, and the client's
// in-flight and subsequent writes complete against the new leader with no
// failed operations — the tentpole availability property, exercised over
// the real concurrent transport (run under -race).
func TestClusterFailoverKillLeader(t *testing.T) {
	cluster, err := NewCluster(Config{
		Edges:            1,
		ReplicasPerShard: 3,
		BatchSize:        4,
		FlushEvery:       10 * time.Millisecond,
		LeaseTimeout:     400 * time.Millisecond,
		GossipEvery:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.NewClient("writer", "")
	if err != nil {
		t.Fatal(err)
	}

	write := func(i int) {
		t.Helper()
		r, err := c.Add([]byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := r.WaitPhaseII(15 * time.Second); err != nil {
			t.Fatalf("write %d phase-II: %v", i, err)
		}
	}

	for i := 0; i < 8; i++ {
		write(i)
	}
	if got := cluster.ChainLeader(EdgeID(1)); got != EdgeID(1) {
		t.Fatalf("pre-kill leader = %q", got)
	}

	if err := cluster.KillEdge(EdgeID(1)); err != nil {
		t.Fatal(err)
	}

	// Writes launched into the outage stall until the lease expires and a
	// follower is promoted, then complete — none may fail.
	for i := 8; i < 16; i++ {
		write(i)
	}

	newLeader := cluster.ChainLeader(EdgeID(1))
	if newLeader == EdgeID(1) {
		t.Fatal("leadership did not transfer off the killed leader")
	}
	if epoch := cluster.ChainEpoch(EdgeID(1)); epoch == 0 {
		t.Fatalf("chain epoch = %d, want > 0", epoch)
	}
	if c.HomeEdge() != newLeader {
		t.Fatalf("client bound to %q, want %q", c.HomeEdge(), newLeader)
	}
	// An honest crash convicts no one.
	if reason, banned := cluster.Punished(EdgeID(1)); banned {
		t.Fatalf("crashed leader wrongly convicted: %s", reason)
	}

	// The promoted follower serves the pre-kill history it mirrored.
	blk, phase, err := c.Read(0, 10*time.Second)
	if err != nil {
		t.Fatalf("read mirrored block: %v", err)
	}
	if phase != PhaseII {
		t.Fatalf("mirrored read phase = %v, want phase-II", phase)
	}
	if len(blk.Entries) == 0 {
		t.Fatal("mirrored block is empty")
	}
}
