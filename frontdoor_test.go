package wedgechain

import (
	"fmt"
	"testing"
	"time"
)

// TestFacadeLightForcedSampleConvicts is the light-client conviction
// guarantee with the sample forced to hit: Sample 1 audits every
// response, so the lying edge's falsely-excluding summary fails full
// verification on the first read and the signed response convicts it at
// the cloud — the same detect-and-punish outcome a heavyweight client
// gets, through the light-client code path.
func TestFacadeLightForcedSampleConvicts(t *testing.T) {
	victim := []byte("pk-victim")
	c := newTestCluster(t, Config{
		Edges: 1, BatchSize: 2, L0Threshold: 1000,
		EdgeFaults: map[NodeID]*Fault{EdgeID(1): {SummaryFalseExclude: victim}},
	})
	cl, err := c.NewClientWith("c1", EdgeID(1), ClientOptions{Light: true, Sample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(victim, []byte("precious")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := cl.Put([]byte("pk-other"), []byte("w")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, _, _, err := cl.Get(victim); err == nil {
		t.Fatal("light client with forced sampling accepted a falsely excluded key")
	}
	t.Logf("convicted: %s", waitPunished(t, c, EdgeID(1)))
}

// TestFacadeLightClientSkipsAndStaysCorrect drives the light fast path
// end to end: once the cloud's certified frontier has gossiped in, a
// reader sampling at 1/2^20 skips structural verification on essentially
// every read — and an honest edge's answers remain correct.
func TestFacadeLightClientSkipsAndStaysCorrect(t *testing.T) {
	c := newTestCluster(t, Config{
		Edges: 1, BatchSize: 2, L0Threshold: 1000,
		GossipEvery: 20 * time.Millisecond,
	})
	writer, err := c.NewClient("w1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := writer.Put([]byte(fmt.Sprintf("lk-%03d", i)), []byte(fmt.Sprintf("lv-%03d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	reader, err := c.NewClientWith("r1", EdgeID(1), ClientOptions{Light: true, Sample: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	// Reads before the first gossip arrives fall back to full
	// verification; keep reading until the frontier lands and the skip
	// counter moves.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < n; i++ {
			v, found, _, err := reader.Get([]byte(fmt.Sprintf("lk-%03d", i)))
			if err != nil || !found || string(v) != fmt.Sprintf("lv-%03d", i) {
				t.Fatalf("light get %d: v=%q found=%v err=%v", i, v, found, err)
			}
		}
		var skips uint64
		byEdge, err := reader.Stats()
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range byEdge {
			skips += cs.SampledSkips
		}
		if skips > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("light reader never skipped a verification: gossip frontier missing?")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFacadeSessionHubMux hosts several clients behind one SessionHub —
// one transport endpoint, one goroutine — and runs each through a full
// certified write and verified read.
func TestFacadeSessionHubMux(t *testing.T) {
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 2, L0Threshold: 1000})
	hub, err := c.NewSessionHub("hub-1")
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	clients := make([]*Client, k)
	for i := range clients {
		cl, err := c.NewClientWith(fmt.Sprintf("h%d", i), EdgeID(1), ClientOptions{Hub: hub})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		clients[i] = cl
	}
	receipts := make([]*Receipt, k)
	for i, cl := range clients {
		r, err := cl.Put([]byte(fmt.Sprintf("hk-%d", i)), []byte(fmt.Sprintf("hv-%d", i)))
		if err != nil {
			t.Fatalf("hub put %d: %v", i, err)
		}
		receipts[i] = r
	}
	for i, r := range receipts {
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			t.Fatalf("hub session %d never certified: %v", i, err)
		}
	}
	// Cross-read: every session verifies every other session's write
	// through the shared endpoint.
	for i, cl := range clients {
		j := (i + 1) % k
		v, found, _, err := cl.Get([]byte(fmt.Sprintf("hk-%d", j)))
		if err != nil || !found || string(v) != fmt.Sprintf("hv-%d", j) {
			t.Fatalf("hub cross-get %d->%d: v=%q found=%v err=%v", i, j, v, found, err)
		}
	}
}
