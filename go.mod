module wedgechain

go 1.22
