// Package cloudonly implements the Cloud-only baseline of the paper's
// evaluation (Section VI): every request — write or read — is served by
// the trusted cloud node. Clients fully trust results (no proofs, no
// verification overhead), but every operation pays the wide-area round
// trip to the cloud.
package cloudonly

import (
	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Server implements core.Handler so all transports can drive it.
var _ core.Handler = (*Server)(nil)

// Client implements core.Handler so all transports can drive it.
var _ core.Handler = (*Client)(nil)

// ServerConfig parameterizes the Cloud-only server.
type ServerConfig struct {
	ID wire.NodeID
	// BatchSize groups writes into blocks before acknowledging, matching
	// the batching used across all systems in the evaluation.
	BatchSize int
}

type pendingWrite struct {
	client wire.NodeID
	seq    uint64
}

// Server is the trusted cloud serving the whole workload. Not safe for
// concurrent use.
type Server struct {
	cfg ServerConfig
	reg *wcrypto.Registry

	buf     []wire.Entry
	pending []pendingWrite
	blocks  uint64
	kv      map[string]kvRec
	stats   Stats
}

type kvRec struct {
	value []byte
	ver   uint64
}

// Stats are server counters.
type Stats struct {
	Writes uint64
	Reads  uint64
	Blocks uint64
}

// NewServer constructs the Cloud-only server.
func NewServer(cfg ServerConfig, reg *wcrypto.Registry) *Server {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 100
	}
	return &Server{cfg: cfg, reg: reg, kv: make(map[string]kvRec)}
}

// ID implements core.Handler.
func (s *Server) ID() wire.NodeID { return s.cfg.ID }

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Len reports the number of stored keys.
func (s *Server) Len() int { return len(s.kv) }

// GetLocal looks a key up directly — the trusted, proof-free read path
// whose best-case cost Figure 5(d) measures.
func (s *Server) GetLocal(key []byte) ([]byte, bool) {
	rec, ok := s.kv[string(key)]
	return rec.value, ok
}

// Receive implements core.Handler.
func (s *Server) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.CloudPutRequest:
		return s.handlePut(now, env.From, m)
	case *wire.CloudPutBatch:
		var out []wire.Envelope
		for i := range m.Entries {
			out = append(out, s.handlePut(now, env.From, &wire.CloudPutRequest{Entry: m.Entries[i]})...)
		}
		return out
	case *wire.CloudGetRequest:
		return s.handleGet(now, env.From, m)
	case *wire.Ping:
		return []wire.Envelope{{From: s.cfg.ID, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	default:
		return nil
	}
}

// Tick implements core.Handler.
func (s *Server) Tick(now int64) []wire.Envelope { return nil }

func (s *Server) handlePut(now int64, from wire.NodeID, m *wire.CloudPutRequest) []wire.Envelope {
	e := m.Entry
	if e.Client != from {
		return nil
	}
	if err := wcrypto.VerifyMsg(s.reg, e.Client, &e, e.Sig); err != nil {
		return nil
	}
	s.stats.Writes++
	s.buf = append(s.buf, e)
	s.pending = append(s.pending, pendingWrite{client: e.Client, seq: e.Seq})
	if len(s.buf) < s.cfg.BatchSize {
		return nil
	}
	return s.cutBatch(now)
}

func (s *Server) cutBatch(now int64) []wire.Envelope {
	bid := s.blocks
	s.blocks++
	s.stats.Blocks++
	for i, e := range s.buf {
		if len(e.Key) > 0 {
			ver := bid*uint64(s.cfg.BatchSize) + uint64(i) + 1
			s.kv[string(e.Key)] = kvRec{value: e.Value, ver: ver}
		}
	}
	out := make([]wire.Envelope, 0, len(s.pending))
	for _, p := range s.pending {
		out = append(out, wire.Envelope{
			From: s.cfg.ID, To: p.client,
			Msg: &wire.CloudPutResponse{Seq: p.seq, BID: bid, OK: true},
		})
	}
	s.buf = s.buf[:0]
	s.pending = s.pending[:0]
	return out
}

// Flush force-commits a partial batch (used by drivers at workload end).
func (s *Server) Flush(now int64) []wire.Envelope {
	if len(s.buf) == 0 {
		return nil
	}
	return s.cutBatch(now)
}

func (s *Server) handleGet(now int64, from wire.NodeID, m *wire.CloudGetRequest) []wire.Envelope {
	s.stats.Reads++
	rec, ok := s.kv[string(m.Key)]
	resp := &wire.CloudGetResponse{ReqID: m.ReqID, Found: ok}
	if ok {
		resp.Value = rec.value
		resp.Ver = rec.ver
	}
	return []wire.Envelope{{From: s.cfg.ID, To: from, Msg: resp}}
}

// Op is a pending Cloud-only operation.
type Op struct {
	Seq      uint64
	ReqID    uint64
	Done     bool
	Found    bool
	GotValue []byte
	GotVer   uint64
	DoneAt   int64
}

// Client is the trivially trusting Cloud-only client.
type Client struct {
	id    wire.NodeID
	cloud wire.NodeID
	key   wcrypto.KeyPair

	seq   uint64
	reqID uint64
	puts  map[uint64]*Op
	gets  map[uint64]*Op

	// OnDone fires as operations complete.
	OnDone func(*Op)
}

// NewClient constructs a Cloud-only client.
func NewClient(id, cloud wire.NodeID, key wcrypto.KeyPair) *Client {
	return &Client{
		id: id, cloud: cloud, key: key,
		puts: make(map[uint64]*Op),
		gets: make(map[uint64]*Op),
	}
}

// ID implements core.Handler.
func (c *Client) ID() wire.NodeID { return c.id }

// Put starts a write.
func (c *Client) Put(now int64, key, value []byte) (*Op, []wire.Envelope) {
	c.seq++
	e := wire.Entry{Client: c.id, Seq: c.seq, Key: key, Value: value, Ts: now}
	e.Sig = wcrypto.SignMsg(c.key, &e)
	op := &Op{Seq: c.seq}
	c.puts[c.seq] = op
	return op, []wire.Envelope{{From: c.id, To: c.cloud, Msg: &wire.CloudPutRequest{Entry: e}}}
}

// PutBatch starts a batch of writes carried in one request.
func (c *Client) PutBatch(now int64, keys, values [][]byte) ([]*Op, []wire.Envelope) {
	batch := &wire.CloudPutBatch{Entries: make([]wire.Entry, 0, len(keys))}
	ops := make([]*Op, 0, len(keys))
	for i := range keys {
		c.seq++
		e := wire.Entry{Client: c.id, Seq: c.seq, Key: keys[i], Value: values[i], Ts: now}
		e.Sig = wcrypto.SignMsg(c.key, &e)
		op := &Op{Seq: c.seq}
		c.puts[c.seq] = op
		ops = append(ops, op)
		batch.Entries = append(batch.Entries, e)
	}
	return ops, []wire.Envelope{{From: c.id, To: c.cloud, Msg: batch}}
}

// Get starts a read.
func (c *Client) Get(now int64, key []byte) (*Op, []wire.Envelope) {
	c.reqID++
	op := &Op{ReqID: c.reqID}
	c.gets[c.reqID] = op
	return op, []wire.Envelope{{From: c.id, To: c.cloud, Msg: &wire.CloudGetRequest{Key: key, ReqID: c.reqID}}}
}

// Receive implements core.Handler.
func (c *Client) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.CloudPutResponse:
		if op, ok := c.puts[m.Seq]; ok && !op.Done {
			op.Done = true
			op.DoneAt = now
			delete(c.puts, m.Seq)
			if c.OnDone != nil {
				c.OnDone(op)
			}
		}
	case *wire.CloudGetResponse:
		if op, ok := c.gets[m.ReqID]; ok && !op.Done {
			op.Done = true
			op.DoneAt = now
			op.Found = m.Found
			op.GotValue = m.Value
			op.GotVer = m.Ver
			delete(c.gets, m.ReqID)
			if c.OnDone != nil {
				c.OnDone(op)
			}
		}
	}
	return nil
}

// Tick implements core.Handler.
func (c *Client) Tick(now int64) []wire.Envelope { return nil }
