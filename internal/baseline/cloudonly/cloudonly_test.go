package cloudonly

import (
	"bytes"
	"testing"

	"wedgechain/internal/sim"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

func newWorld(t *testing.T, batch int) (*sim.Sim, *Server, *Client) {
	t.Helper()
	reg := wcrypto.NewRegistry()
	ck := wcrypto.DeterministicKey("c1")
	reg.Register("c1", ck.Pub)
	srv := NewServer(ServerConfig{ID: "cloud", BatchSize: batch}, reg)
	cl := NewClient("c1", "cloud", ck)
	s := sim.New(sim.Config{TickEvery: 1e6, DefaultLink: sim.Link{Latency: 1e6}})
	s.Add(srv)
	s.Add(cl)
	return s, srv, cl
}

func TestBatchedWritesAcknowledged(t *testing.T) {
	s, srv, cl := newWorld(t, 2)
	op1, envs := cl.Put(s.Now(), []byte("k1"), []byte("v1"))
	s.Inject(envs)
	op2, envs := cl.Put(s.Now(), []byte("k2"), []byte("v2"))
	s.Inject(envs)
	s.Drain(s.Now() + int64(10e9))
	if !op1.Done || !op2.Done {
		t.Fatalf("ops done = %v/%v", op1.Done, op2.Done)
	}
	if srv.Stats().Blocks != 1 {
		t.Fatalf("blocks = %d", srv.Stats().Blocks)
	}
}

func TestGetLatestVersionWins(t *testing.T) {
	s, _, cl := newWorld(t, 1)
	for _, v := range []string{"old", "mid", "new"} {
		_, envs := cl.Put(s.Now(), []byte("k"), []byte(v))
		s.Inject(envs)
		s.Drain(s.Now() + int64(10e9))
	}
	op, envs := cl.Get(s.Now(), []byte("k"))
	s.Inject(envs)
	s.Drain(s.Now() + int64(10e9))
	if !op.Done || !op.Found || !bytes.Equal(op.GotValue, []byte("new")) {
		t.Fatalf("get = %q found=%v done=%v", op.GotValue, op.Found, op.Done)
	}
}

func TestGetMissingKey(t *testing.T) {
	s, _, cl := newWorld(t, 1)
	op, envs := cl.Get(s.Now(), []byte("ghost"))
	s.Inject(envs)
	s.Drain(s.Now() + int64(10e9))
	if !op.Done || op.Found {
		t.Fatalf("missing key: done=%v found=%v", op.Done, op.Found)
	}
}

func TestServerRejectsForgedEntries(t *testing.T) {
	reg := wcrypto.NewRegistry()
	ck := wcrypto.DeterministicKey("c1")
	reg.Register("c1", ck.Pub)
	srv := NewServer(ServerConfig{ID: "cloud", BatchSize: 1}, reg)

	e := wire.Entry{Client: "c1", Seq: 1, Key: []byte("k"), Value: []byte("v")}
	e.Sig = wcrypto.SignMsg(ck, &e)
	e.Value = []byte("tampered-after-signing")
	out := srv.Receive(1, wire.Envelope{From: "c1", To: "cloud", Msg: &wire.CloudPutRequest{Entry: e}})
	if out != nil || srv.Stats().Writes != 0 {
		t.Fatal("forged entry accepted")
	}
}

func TestFlushCommitsPartialBatch(t *testing.T) {
	s, srv, cl := newWorld(t, 100)
	op, envs := cl.Put(s.Now(), []byte("k"), []byte("v"))
	s.Inject(envs)
	s.Drain(s.Now() + int64(5e9))
	if op.Done {
		t.Fatal("partial batch acknowledged early")
	}
	s.Inject(srv.Flush(s.Now()))
	s.Drain(s.Now() + int64(5e9))
	if !op.Done {
		t.Fatal("flush did not acknowledge")
	}
}

func TestGetLocal(t *testing.T) {
	s, srv, cl := newWorld(t, 1)
	_, envs := cl.Put(s.Now(), []byte("k"), []byte("v"))
	s.Inject(envs)
	s.Drain(s.Now() + int64(5e9))
	v, ok := srv.GetLocal([]byte("k"))
	if !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("GetLocal = %q,%v", v, ok)
	}
}
