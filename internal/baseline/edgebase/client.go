package edgebase

import (
	"wedgechain/internal/client"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Op is a pending Edge-baseline operation.
type Op struct {
	Seq      uint64
	Done     bool
	DoneAt   int64
	Err      error
	Found    bool
	GotValue []byte
	GotVer   uint64
}

// Client is the Edge-baseline client: writes to the cloud, verified reads
// from the edge. Get verification is byte-identical to WedgeChain's (the
// proofs have the same shape), so it delegates to the WedgeChain client
// core.
type Client struct {
	id    wire.NodeID
	edge  wire.NodeID
	cloud wire.NodeID
	key   wcrypto.KeyPair

	inner *client.Core
	seq   uint64
	puts  map[uint64]*Op
	gets  map[*client.Op]*Op

	// OnDone fires as operations complete.
	OnDone func(*Op)
}

// NewClient constructs an Edge-baseline client reading from edge and
// writing through cloud.
func NewClient(id, edge, cloud wire.NodeID, key wcrypto.KeyPair, reg *wcrypto.Registry, freshness int64) *Client {
	c := &Client{
		id:    id,
		edge:  edge,
		cloud: cloud,
		key:   key,
		puts:  make(map[uint64]*Op),
		gets:  make(map[*client.Op]*Op),
	}
	c.inner = client.New(client.Config{
		ID:              id,
		Edge:            edge,
		Cloud:           cloud,
		FreshnessWindow: freshness,
	}, key, reg)
	c.inner.OnDone = c.innerDone
	return c
}

// ID implements core.Handler.
func (c *Client) ID() wire.NodeID { return c.id }

// Put starts a write through the cloud.
func (c *Client) Put(now int64, key, value []byte) (*Op, []wire.Envelope) {
	c.seq++
	e := wire.Entry{Client: c.id, Seq: c.seq, Key: key, Value: value, Ts: now}
	e.Sig = wcrypto.SignMsg(c.key, &e)
	op := &Op{Seq: c.seq}
	c.puts[c.seq] = op
	return op, []wire.Envelope{{From: c.id, To: c.cloud, Msg: &wire.EBPutRequest{Entry: e, Edge: c.edge}}}
}

// PutBatch starts a batch of writes carried in one request.
func (c *Client) PutBatch(now int64, keys, values [][]byte) ([]*Op, []wire.Envelope) {
	batch := &wire.EBPutBatch{Edge: c.edge, Entries: make([]wire.Entry, 0, len(keys))}
	ops := make([]*Op, 0, len(keys))
	for i := range keys {
		c.seq++
		e := wire.Entry{Client: c.id, Seq: c.seq, Key: keys[i], Value: values[i], Ts: now}
		e.Sig = wcrypto.SignMsg(c.key, &e)
		op := &Op{Seq: c.seq}
		c.puts[c.seq] = op
		ops = append(ops, op)
		batch.Entries = append(batch.Entries, e)
	}
	return ops, []wire.Envelope{{From: c.id, To: c.cloud, Msg: batch}}
}

// Get starts a verified read from the edge.
func (c *Client) Get(now int64, key []byte) (*Op, []wire.Envelope) {
	iop, envs := c.inner.Get(now, key)
	op := &Op{}
	c.gets[iop] = op
	return op, envs
}

func (c *Client) innerDone(iop *client.Op) {
	op, ok := c.gets[iop]
	if !ok {
		return
	}
	delete(c.gets, iop)
	op.Done = true
	op.DoneAt = iop.PhaseIIAt
	if op.DoneAt == 0 {
		op.DoneAt = iop.PhaseIAt
	}
	op.Err = iop.Err
	op.Found = iop.Found
	op.GotValue = iop.GotValue
	op.GotVer = iop.GotVer
	if c.OnDone != nil {
		c.OnDone(op)
	}
}

// Receive implements core.Handler.
func (c *Client) Receive(now int64, env wire.Envelope) []wire.Envelope {
	if m, ok := env.Msg.(*wire.EBPutResponse); ok {
		if op, found := c.puts[m.Seq]; found && !op.Done {
			op.Done = true
			op.DoneAt = now
			delete(c.puts, m.Seq)
			if c.OnDone != nil {
				c.OnDone(op)
			}
		}
		return nil
	}
	return c.inner.Receive(now, env)
}

// Tick implements core.Handler.
func (c *Client) Tick(now int64) []wire.Envelope { return c.inner.Tick(now) }
