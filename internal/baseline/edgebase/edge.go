package edgebase

import (
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// EdgeConfig parameterizes the Edge-baseline edge node.
type EdgeConfig struct {
	ID    wire.NodeID
	Cloud wire.NodeID
	// LevelThresholds must match the cloud's configuration.
	LevelThresholds []int
}

// Edge is the Edge-baseline edge: a passive, untrusted replica that
// installs cloud state pushes and serves reads with proofs. It has no way
// to commit writes on its own — the property that keeps it trustless but
// also keeps the cloud on the write path.
type Edge struct {
	cfg EdgeConfig
	key wcrypto.KeyPair
	reg *wcrypto.Registry

	blocks []wire.Block
	certs  []wire.BlockProof
	l0From uint64
	idx    *mlsm.Index

	stats EdgeStats
}

// EdgeStats are counters for the Edge-baseline edge.
type EdgeStats struct {
	Pushes uint64
	Gets   uint64
	Reads  uint64
}

// NewEdge constructs the Edge-baseline edge node.
func NewEdge(cfg EdgeConfig, key wcrypto.KeyPair, reg *wcrypto.Registry) *Edge {
	if len(cfg.LevelThresholds) == 0 {
		cfg.LevelThresholds = []int{10, 100, 1000}
	}
	return &Edge{cfg: cfg, key: key, reg: reg, idx: mlsm.NewIndex(cfg.LevelThresholds)}
}

// ID implements core.Handler.
func (e *Edge) ID() wire.NodeID { return e.cfg.ID }

// Stats returns a copy of the counters.
func (e *Edge) Stats() EdgeStats { return e.stats }

// Blocks returns the number of installed blocks.
func (e *Edge) Blocks() uint64 { return uint64(len(e.blocks)) }

// Receive implements core.Handler.
func (e *Edge) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.EBStatePush:
		return e.handlePush(now, env.From, m)
	case *wire.GetRequest:
		return e.handleGet(now, env.From, m)
	case *wire.ReadRequest:
		return e.handleRead(now, env.From, m)
	case *wire.Ping:
		return []wire.Envelope{{From: e.cfg.ID, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	default:
		return nil
	}
}

// Tick implements core.Handler.
func (e *Edge) Tick(now int64) []wire.Envelope { return nil }

func (e *Edge) handlePush(now int64, from wire.NodeID, m *wire.EBStatePush) []wire.Envelope {
	if from != e.cfg.Cloud {
		return nil
	}
	if err := wcrypto.VerifyMsg(e.reg, e.cfg.Cloud, m, m.CloudSig); err != nil {
		return nil
	}
	if m.Block.ID == uint64(len(e.blocks)) {
		e.blocks = append(e.blocks, m.Block)
		e.certs = append(e.certs, m.Proof)
	}
	e.l0From = m.L0From
	if len(m.Pages) > 0 || len(m.Roots) > 0 {
		// Whole-index replacement on compaction; roots-only refresh
		// otherwise. InstallAll validates against the signed roots.
		if len(m.Pages) > 0 {
			if err := e.idx.InstallAll(m.Pages, m.Roots, m.Global); err != nil {
				return nil // refuse inconsistent state; no ack, cloud stalls
			}
		} else if e.idx.Levels() > 0 {
			// Roots unchanged; adopt the re-signed (fresher) global.
			if err := e.idx.InstallAll(e.flatPages(), m.Roots, m.Global); err != nil {
				return nil
			}
		}
	}
	e.stats.Pushes++
	ack := &wire.EBStateAck{Epoch: m.Epoch}
	ack.EdgeSig = wcrypto.SignMsg(e.key, ack)
	return []wire.Envelope{{From: e.cfg.ID, To: e.cfg.Cloud, Msg: ack}}
}

func (e *Edge) flatPages() []wire.Page {
	var out []wire.Page
	for lvl := 1; lvl <= e.idx.Levels(); lvl++ {
		out = append(out, e.idx.Pages(lvl)...)
	}
	return out
}

// handleGet serves the same proof-carrying get protocol as the WedgeChain
// edge; every L0 block here is already certified, so responses are always
// Phase II equivalents.
func (e *Edge) handleGet(now int64, from wire.NodeID, m *wire.GetRequest) []wire.Envelope {
	e.stats.Gets++
	var src mlsm.L0Source
	for bid := e.l0From; bid < uint64(len(e.blocks)); bid++ {
		src.Blocks = append(src.Blocks, e.blocks[bid])
		src.Certs = append(src.Certs, e.certs[bid])
	}
	// No pruning: the Edge-baseline is the paper-calibrated comparison
	// arm, and its committed benchmark records price the pre-PR-5
	// evidence shape (every L0 block in full). Pruning is a WedgeChain
	// optimization; giving it to the baseline would silently shift the
	// comparison.
	resp, _ := mlsm.AssembleGet(m.Key, m.ReqID, src, e.idx, false)
	resp.EdgeSig = wcrypto.SignMsg(e.key, resp)
	return []wire.Envelope{{From: e.cfg.ID, To: from, Msg: resp}}
}

func (e *Edge) handleRead(now int64, from wire.NodeID, m *wire.ReadRequest) []wire.Envelope {
	e.stats.Reads++
	resp := &wire.ReadResponse{ReqID: m.ReqID, BID: m.BID, Ts: now}
	if m.BID < uint64(len(e.blocks)) {
		resp.OK = true
		resp.Block = e.blocks[m.BID]
		resp.HasProof = true
		resp.Proof = e.certs[m.BID]
	}
	resp.EdgeSig = wcrypto.SignMsg(e.key, resp)
	return []wire.Envelope{{From: e.cfg.ID, To: from, Msg: resp}}
}
