// Package edgebase implements the Edge-baseline of Section II-C: the
// straightforward way to use an untrusted edge node. Writes go to the
// trusted cloud, which certifies them, updates the authoritative mLSM
// index, and synchronously pushes the new state — full data, not digests —
// to the edge before acknowledging the client. Reads are then served at
// the edge with Merkle proofs exactly as in WedgeChain.
//
// The synchronous cloud-then-edge write path is what WedgeChain's lazy
// certification removes; the full-data push is what data-free
// certification removes. The benchmarks quantify both.
package edgebase

import (
	"wedgechain/internal/core"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// All three roles implement core.Handler.
var (
	_ core.Handler = (*Cloud)(nil)
	_ core.Handler = (*Edge)(nil)
	_ core.Handler = (*Client)(nil)
)

// CloudConfig parameterizes the Edge-baseline cloud.
type CloudConfig struct {
	ID   wire.NodeID
	Edge wire.NodeID
	// BatchSize groups writes into blocks (the evaluation's batch size).
	BatchSize int
	// L0Threshold triggers cloud-side compaction of L0 blocks into L1.
	L0Threshold int
	// LevelThresholds are the page budgets of levels 1..n.
	LevelThresholds []int
	// PageCap is the records-per-page target.
	PageCap int
}

func (c *CloudConfig) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.L0Threshold <= 0 {
		c.L0Threshold = 10
	}
	if len(c.LevelThresholds) == 0 {
		c.LevelThresholds = []int{10, 100, 1000}
	}
	if c.PageCap <= 0 {
		c.PageCap = c.BatchSize
	}
}

type pendingWrite struct {
	client wire.NodeID
	seq    uint64
}

type queuedPush struct {
	push    *wire.EBStatePush
	writers []pendingWrite
	bid     uint64
}

// Cloud is the Edge-baseline cloud: authoritative owner of the index.
// Not safe for concurrent use.
type Cloud struct {
	cfg CloudConfig
	key wcrypto.KeyPair
	reg *wcrypto.Registry

	buf     []wire.Entry
	writers []pendingWrite

	blocks  []wire.Block
	l0From  uint64
	levels  [][]wire.Page // levels[i] = pages of level i+1
	epoch   uint64
	pageSeq uint64

	queue    []queuedPush
	inFlight bool

	stats CloudStats
}

// CloudStats are counters for the Edge-baseline cloud.
type CloudStats struct {
	Writes      uint64
	Blocks      uint64
	Compactions uint64
	PushBytes   uint64
}

// NewCloud constructs the Edge-baseline cloud.
func NewCloud(cfg CloudConfig, key wcrypto.KeyPair, reg *wcrypto.Registry) *Cloud {
	cfg.fill()
	return &Cloud{
		cfg:    cfg,
		key:    key,
		reg:    reg,
		levels: make([][]wire.Page, len(cfg.LevelThresholds)),
	}
}

// ID implements core.Handler.
func (c *Cloud) ID() wire.NodeID { return c.cfg.ID }

// Stats returns a copy of the counters.
func (c *Cloud) Stats() CloudStats { return c.stats }

// Receive implements core.Handler.
func (c *Cloud) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.EBPutRequest:
		return c.handlePut(now, env.From, m)
	case *wire.EBPutBatch:
		var out []wire.Envelope
		for i := range m.Entries {
			out = append(out, c.handlePut(now, env.From, &wire.EBPutRequest{Entry: m.Entries[i], Edge: m.Edge})...)
		}
		return out
	case *wire.EBStateAck:
		return c.handleAck(now, env.From, m)
	case *wire.Ping:
		return []wire.Envelope{{From: c.cfg.ID, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	default:
		return nil
	}
}

// Tick implements core.Handler.
func (c *Cloud) Tick(now int64) []wire.Envelope { return nil }

func (c *Cloud) handlePut(now int64, from wire.NodeID, m *wire.EBPutRequest) []wire.Envelope {
	e := m.Entry
	if e.Client != from {
		return nil
	}
	if err := wcrypto.VerifyMsg(c.reg, e.Client, &e, e.Sig); err != nil {
		return nil
	}
	c.stats.Writes++
	c.buf = append(c.buf, e)
	c.writers = append(c.writers, pendingWrite{client: e.Client, seq: e.Seq})
	if len(c.buf) < c.cfg.BatchSize {
		return nil
	}
	return c.cutAndPush(now)
}

// cutAndPush certifies a block, compacts if needed, and enqueues the state
// push to the edge. Clients are acknowledged only after the edge acks —
// the synchronous coordination the paper's Figure 4 measures.
func (c *Cloud) cutAndPush(now int64) []wire.Envelope {
	var start uint64
	if n := len(c.blocks); n > 0 {
		last := &c.blocks[n-1]
		start = last.StartPos + uint64(len(last.Entries))
	}
	blk := wire.Block{
		Edge:     c.cfg.Edge,
		ID:       uint64(len(c.blocks)),
		StartPos: start,
		Ts:       now,
		Entries:  c.buf,
	}
	c.buf = nil
	c.blocks = append(c.blocks, blk)
	c.stats.Blocks++

	proof := wire.BlockProof{Edge: c.cfg.Edge, BID: blk.ID, Digest: wcrypto.BlockDigest(&blk)}
	proof.CloudSig = wcrypto.SignMsg(c.key, &proof)

	// Cloud-side compaction, cascading like an LSM tree.
	compacted := c.maybeCompact(now)

	c.epoch++
	roots := c.roots()
	global := wire.SignedRoot{Edge: c.cfg.Edge, Epoch: c.epoch, Root: mlsm.GlobalRoot(roots), Ts: now, L0From: c.l0From}
	global.CloudSig = wcrypto.SignMsg(c.key, &global)

	push := &wire.EBStatePush{
		Epoch:  c.epoch,
		Block:  blk,
		Proof:  proof,
		L0From: c.l0From,
		Roots:  roots,
		Global: global,
	}
	if compacted {
		// Ship the full level state; pages carry their level numbers.
		for _, lvl := range c.levels {
			push.Pages = append(push.Pages, lvl...)
		}
	}
	push.CloudSig = wcrypto.SignMsg(c.key, push)

	writers := c.writers
	c.writers = nil
	c.queue = append(c.queue, queuedPush{push: push, writers: writers, bid: blk.ID})
	return c.pump()
}

// maybeCompact merges L0 into L1 (and cascades) when thresholds trip.
func (c *Cloud) maybeCompact(now int64) bool {
	did := false
	if uint64(len(c.blocks))-c.l0From > uint64(c.cfg.L0Threshold) {
		var kvs []wire.KV
		for bid := c.l0From; bid < uint64(len(c.blocks)); bid++ {
			kvs = append(kvs, mlsm.BlockKVs(&c.blocks[bid])...)
		}
		c.levels[0] = mlsm.Merge(kvs, c.levels[0], 1, c.cfg.PageCap, c.pageSeq, now)
		c.pageSeq += uint64(len(c.levels[0]))
		c.l0From = uint64(len(c.blocks))
		did = true
	}
	for i := 0; i+1 < len(c.levels); i++ {
		if len(c.levels[i]) <= c.cfg.LevelThresholds[i] {
			continue
		}
		c.levels[i+1] = mlsm.Merge(mlsm.PagesKVs(c.levels[i]), c.levels[i+1], uint32(i+2), c.cfg.PageCap, c.pageSeq, now)
		c.pageSeq += uint64(len(c.levels[i+1]))
		c.levels[i] = nil
		did = true
	}
	return did
}

func (c *Cloud) roots() [][]byte {
	roots := make([][]byte, len(c.levels))
	for i := range c.levels {
		roots[i] = mlsm.LevelTree(c.levels[i]).Root()
	}
	return roots
}

// pump sends the next queued push when none is in flight.
func (c *Cloud) pump() []wire.Envelope {
	if c.inFlight || len(c.queue) == 0 {
		return nil
	}
	c.inFlight = true
	env := wire.Envelope{From: c.cfg.ID, To: c.cfg.Edge, Msg: c.queue[0].push}
	c.stats.PushBytes += uint64(wire.EncodedSize(env))
	return []wire.Envelope{env}
}

func (c *Cloud) handleAck(now int64, from wire.NodeID, m *wire.EBStateAck) []wire.Envelope {
	if from != c.cfg.Edge || !c.inFlight || len(c.queue) == 0 {
		return nil
	}
	head := c.queue[0]
	if m.Epoch != head.push.Epoch {
		return nil
	}
	if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
		return nil
	}
	c.queue = c.queue[1:]
	c.inFlight = false
	out := make([]wire.Envelope, 0, len(head.writers)+1)
	for _, w := range head.writers {
		out = append(out, wire.Envelope{
			From: c.cfg.ID, To: w.client,
			Msg: &wire.EBPutResponse{Seq: w.seq, BID: head.bid, OK: true},
		})
	}
	return append(out, c.pump()...)
}

// Flush force-commits a partial batch (used by drivers at workload end).
func (c *Cloud) Flush(now int64) []wire.Envelope {
	if len(c.buf) == 0 {
		return nil
	}
	return c.cutAndPush(now)
}
