package edgebase

import (
	"bytes"
	"testing"

	"wedgechain/internal/sim"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

type world struct {
	sim    *sim.Sim
	cloud  *Cloud
	edge   *Edge
	client *Client
}

func newWorld(t *testing.T, batch int) *world {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	w := &world{}
	w.cloud = NewCloud(CloudConfig{
		ID: "cloud", Edge: "edge-1",
		BatchSize: batch, L0Threshold: 2,
		LevelThresholds: []int{2, 4, 8}, PageCap: 4,
	}, keys["cloud"], reg)
	w.edge = NewEdge(EdgeConfig{ID: "edge-1", Cloud: "cloud", LevelThresholds: []int{2, 4, 8}}, keys["edge-1"], reg)
	w.client = NewClient("c1", "edge-1", "cloud", keys["c1"], reg, 0)
	w.sim = sim.New(sim.Config{TickEvery: 1e6, DefaultLink: sim.Link{Latency: 1e6}})
	w.sim.Add(w.cloud)
	w.sim.Add(w.edge)
	w.sim.Add(w.client)
	return w
}

func (w *world) put(t *testing.T, key, value string) *Op {
	t.Helper()
	op, envs := w.client.Put(w.sim.Now(), []byte(key), []byte(value))
	w.sim.Inject(envs)
	return op
}

func (w *world) settle(t *testing.T) {
	t.Helper()
	w.sim.Drain(w.sim.Now() + int64(60e9))
}

func TestWriteWaitsForEdgeAck(t *testing.T) {
	w := newWorld(t, 2)
	op1 := w.put(t, "a", "1")
	op2 := w.put(t, "b", "2")
	w.settle(t)
	if !op1.Done || !op2.Done {
		t.Fatalf("puts not acknowledged: %v %v", op1.Done, op2.Done)
	}
	if w.edge.Blocks() != 1 {
		t.Fatalf("edge blocks = %d — ack must follow the state push", w.edge.Blocks())
	}
}

func TestVerifiedGetsFromEdge(t *testing.T) {
	w := newWorld(t, 2)
	// Enough writes to force cloud-side compaction (L0Threshold 2).
	kvs := map[string]string{}
	for i, k := range []string{"a", "b", "c", "d", "e", "f", "a", "b"} {
		v := string(rune('0' + i))
		kvs[k] = v
		w.put(t, k, v)
	}
	w.settle(t)
	if w.cloud.Stats().Compactions == 0 {
		_ = kvs // compaction counter optional; assert via lookups below
	}
	for k, v := range kvs {
		op, envs := w.client.Get(w.sim.Now(), []byte(k))
		w.sim.Inject(envs)
		w.settle(t)
		if op.Err != nil {
			t.Fatalf("get %s: %v", k, op.Err)
		}
		if !op.Found || !bytes.Equal(op.GotValue, []byte(v)) {
			t.Fatalf("get %s = %q (found=%v), want %q", k, op.GotValue, op.Found, v)
		}
	}
	// Verified absence.
	op, envs := w.client.Get(w.sim.Now(), []byte("zz"))
	w.sim.Inject(envs)
	w.settle(t)
	if op.Err != nil || op.Found {
		t.Fatalf("get zz: found=%v err=%v", op.Found, op.Err)
	}
}

func TestPushBytesCounted(t *testing.T) {
	w := newWorld(t, 2)
	w.put(t, "a", "1")
	w.put(t, "b", "2")
	w.settle(t)
	if w.cloud.Stats().PushBytes == 0 {
		t.Fatal("push bytes not accounted")
	}
	if w.cloud.Stats().Blocks != 1 {
		t.Fatalf("blocks = %d", w.cloud.Stats().Blocks)
	}
}

func TestBatchMessagePath(t *testing.T) {
	w := newWorld(t, 3)
	ops, envs := w.client.PutBatch(w.sim.Now(),
		[][]byte{[]byte("x"), []byte("y"), []byte("z")},
		[][]byte{[]byte("1"), []byte("2"), []byte("3")})
	w.sim.Inject(envs)
	w.settle(t)
	for i, op := range ops {
		if !op.Done {
			t.Fatalf("batch op %d not done", i)
		}
	}
}
