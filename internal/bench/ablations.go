package bench

import (
	"fmt"

	"wedgechain/internal/baseline/cloudonly"
	"wedgechain/internal/client"
	"wedgechain/internal/cloud"
	"wedgechain/internal/edge"
	"wedgechain/internal/sim"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
	"wedgechain/internal/workload"
)

// buildCloudOnlyLocal returns a preloaded Cloud-only server for local
// measurement (Figure 5(d)).
func buildCloudOnlyLocal(keys int) *cloudonly.Server {
	reg := wcrypto.NewRegistry()
	ck := wcrypto.DeterministicKey("c1")
	reg.Register("c1", ck.Pub)
	srv := cloudonly.NewServer(cloudonly.ServerConfig{ID: cloudID, BatchSize: 100}, reg)
	val := make([]byte, 100)
	seq := uint64(0)
	for i := 0; i < keys; i++ {
		seq++
		e := wire.Entry{Client: "c1", Seq: seq, Key: workload.KeyName(i), Value: val}
		e.Sig = wcrypto.SignMsg(ck, &e)
		srv.Receive(0, wire.Envelope{From: "c1", To: cloudID, Msg: &wire.CloudPutRequest{Entry: e}})
	}
	srv.Flush(0)
	return srv
}

// faultWorld builds a two-client WedgeChain world with a byzantine edge,
// the paper topology, and the calibrated cost model.
type faultWorld struct {
	sim    *sim.Sim
	cloud  *cloud.Node
	edge   *edge.Node
	victim *client.Core
	writer *client.Core
}

func buildFaultWorld(fault *edge.Fault, gossipEvery, freshness int64) *faultWorld {
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{cloudID, edgeID, "c1", "c2"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	roles := map[wire.NodeID]Role{cloudID: RCloud, edgeID: REdge, "c1": RClient, "c2": RClient}
	costs := DefaultCosts(100)

	links := map[[2]wire.NodeID]sim.Link{}
	add := func(a, b wire.NodeID, da, db DC, bw float64) {
		links[[2]wire.NodeID{a, b}] = linkFor(da, db, bw)
		links[[2]wire.NodeID{b, a}] = linkFor(db, da, bw)
	}
	add(edgeID, cloudID, California, Virginia, coordBW)
	for _, c := range []wire.NodeID{"c1", "c2"} {
		add(c, edgeID, California, California, lanBW)
		add(c, cloudID, California, Virginia, wanBW)
	}

	fw := &faultWorld{}
	fw.sim = sim.New(sim.Config{
		TickEvery:   int64(1e6),
		DefaultLink: sim.Link{Latency: int64(5e5), Bandwidth: lanBW},
		Links:       links,
		Cost:        costs.Fn(roles),
	})
	fw.cloud = cloud.New(cloud.Config{
		ID: cloudID, Levels: 3, PageCap: 100,
		GossipEvery: gossipEvery,
		GossipTo:    []wire.NodeID{"c1", "c2"},
	}, keys[cloudID], reg)
	fw.edge = edge.New(edge.Config{
		ID: edgeID, Cloud: cloudID,
		BatchSize: 100, L0Threshold: 2,
		LevelThresholds: []int{2, 4, 8}, PageCap: 100,
		Fault: fault,
	}, keys[edgeID], reg)
	mk := func(id wire.NodeID) *client.Core {
		return client.New(client.Config{
			ID: id, Edge: edgeID, Cloud: cloudID,
			ProofTimeout:    int64(2e9),
			FreshnessWindow: freshness,
		}, keys[id], reg)
	}
	fw.writer = mk("c1")
	fw.victim = mk("c2")
	fw.sim.Add(fw.cloud)
	fw.sim.Add(fw.edge)
	fw.sim.Add(fw.writer)
	fw.sim.Add(fw.victim)
	return fw
}

// writeBatch pushes one full batch of adds from the writer and settles.
func (fw *faultWorld) writeBatch() {
	var last *client.Op
	for i := 0; i < 100; i++ {
		op, envs := fw.writer.Add(fw.sim.Now(), []byte(fmt.Sprintf("payload-%d", i)))
		fw.sim.Inject(envs)
		last = op
	}
	ok := fw.sim.RunWhile(func() bool { return !last.Done }, fw.sim.Now()+int64(600e9))
	if !ok {
		panic("bench: fault world write stalled")
	}
}

// runOmission measures omission-attack detection latency for a gossip
// period: the virtual time from the block's commit until the guilty
// verdict reaches the victim. The gossip period dominates this window —
// the paper's "time-window of this threat is a function of the frequency
// of gossip messages" (Section IV-E).
func runOmission(gossipEvery int64) (detection int64, gossipMsgs uint64) {
	fault := &edge.Fault{OmitBlocks: map[uint64]bool{0: true}}
	fw := buildFaultWorld(fault, gossipEvery, 0)
	fw.writeBatch()
	start := fw.sim.Now() // block 0 is committed and certified
	// The victim learns of the block through gossip, then reads it.
	ok := fw.sim.RunWhile(func() bool {
		g := fw.victim.Gossip()
		return g == nil || g.Blocks < 1
	}, fw.sim.Now()+int64(600e9))
	if !ok {
		panic("bench: gossip never arrived")
	}
	op, envs := fw.victim.Read(fw.sim.Now(), 0)
	fw.sim.Inject(envs)
	ok = fw.sim.RunWhile(func() bool { return !op.Done }, fw.sim.Now()+int64(600e9))
	if !ok || op.Verdict == nil || !op.Verdict.Guilty {
		panic("bench: omission not convicted")
	}
	return fw.sim.Now() - start, fw.cloud.Stats().GossipsSent
}

// runFreshness counts stale rejections against a frozen edge for a given
// freshness window. The edge's snapshot is ~1s old when gets are issued.
func runFreshness(window int64) (rejected, accepted int) {
	fault := &edge.Fault{}
	fw := buildFaultWorld(fault, 0, window)
	// Build merged state honestly: 3 batches trip the L0 threshold (2).
	for i := 0; i < 3; i++ {
		fw.writeBatch()
		fw.sim.Drain(fw.sim.Now() + int64(10e9))
	}
	if fw.edge.Stats().Merges == 0 {
		panic("bench: freshness world never merged")
	}
	// Freeze and age the snapshot ~1 second.
	fault.FreezeIndex = true
	fw.sim.RunUntil(fw.sim.Now() + int64(1e9))

	for i := 0; i < 10; i++ {
		op, envs := fw.victim.Get(fw.sim.Now(), []byte(fmt.Sprintf("missing-%d", i)))
		fw.sim.Inject(envs)
		ok := fw.sim.RunWhile(func() bool { return !op.Done }, fw.sim.Now()+int64(600e9))
		if !ok {
			panic("bench: freshness get stalled")
		}
		if op.Err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	return rejected, accepted
}
