package bench

import (
	"wedgechain/internal/wire"

	"testing"
)

func TestRTTMatrixMatchesTableI(t *testing.T) {
	// The C row is the paper's Table I verbatim.
	want := map[DC]float64{California: 0.5, Oregon: 19, Virginia: 61, Ireland: 141, Mumbai: 238}
	for dc, ms := range want {
		if got := float64(RTT(California, dc)) / 1e6; got != ms {
			t.Errorf("RTT(C,%s) = %v ms, want %v", dc, got, ms)
		}
		// Symmetry.
		if RTT(California, dc) != RTT(dc, California) {
			t.Errorf("RTT(C,%s) asymmetric", dc)
		}
	}
}

func TestTriangleSumInvariant(t *testing.T) {
	// Figure 7(b)'s explanation requires client->edge->cloud sums to be
	// similar for edges C,O,V,I with client=C, cloud=M.
	var sums []float64
	for _, edge := range []DC{California, Oregon, Virginia, Ireland} {
		sum := float64(RTT(California, edge)+RTT(edge, Mumbai)) / 1e6
		sums = append(sums, sum)
	}
	min, max := sums[0], sums[0]
	for _, s := range sums {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max/min > 1.25 {
		t.Fatalf("triangle sums diverge: %v", sums)
	}
}

func TestMeasuredRTTMatchesConfig(t *testing.T) {
	got := measureRTT(California, Virginia)
	if got < 60.9 || got > 61.5 {
		t.Fatalf("measured RTT C-V = %v ms, want ~61", got)
	}
}

func TestCostModelChargesBatchCommit(t *testing.T) {
	p := DefaultCosts(100)
	roles := map[wire.NodeID]Role{"edge-1": REdge, "cloud": RCloud, "c1": RClient}
	fn := p.Fn(roles)

	write := wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.PutBatch{}}
	// A buffered write (no outputs) costs only the base.
	if got := fn("edge-1", write, nil); got != p.Base {
		t.Fatalf("buffered write cost = %d, want %d", got, p.Base)
	}
	// A write that cut a block (certify in outputs) pays commit cost.
	outs := []wire.Envelope{{From: "edge-1", To: "cloud", Msg: &wire.BlockCertify{}}}
	got := fn("edge-1", write, outs)
	want := p.Base + p.CutBaseEdge + p.CutPerOp*int64(p.Batch)
	if got != want {
		t.Fatalf("cut cost = %d, want %d", got, want)
	}
	// Certification at the cloud scales with batch size.
	cert := wire.Envelope{From: "edge-1", To: "cloud", Msg: &wire.BlockCertify{}}
	c100 := fn("cloud", cert, nil)
	p2 := DefaultCosts(1000)
	c1000 := p2.Fn(roles)("cloud", cert, nil)
	if c1000 <= c100 {
		t.Fatalf("cert cost not increasing with batch: %d vs %d", c100, c1000)
	}
	// Clients pay verification on block responses.
	resp := wire.Envelope{From: "edge-1", To: "c1", Msg: &wire.PutResponse{}}
	if got := fn("c1", resp, nil); got != p.Base+p.VerifyBatch {
		t.Fatalf("client verify cost = %d", got)
	}
}

func TestBuildWorldSystems(t *testing.T) {
	for _, sys := range AllSystems {
		w := BuildWorld(WorldCfg{
			System:         sys,
			Clients:        2,
			Batch:          10,
			Place:          defaultPlace,
			WritesPerRound: 10,
			Rounds:         3,
		})
		w.Run(int64(600e9))
		m := w.AggMetrics()
		if m.Writes != 2*3*10 {
			t.Fatalf("%s: writes = %d", sys, m.Writes)
		}
		if w.Throughput() <= 0 {
			t.Fatalf("%s: no throughput", sys)
		}
		if m.MeanBurstLatency() <= 0 {
			t.Fatalf("%s: no latency", sys)
		}
	}
}

func TestWedgeLatencyBelowBaselines(t *testing.T) {
	// The paper's headline: WedgeChain commits at edge speed.
	lat := map[System]float64{}
	for _, sys := range AllSystems {
		w := writeWorld(sys, 1, 100, 5, defaultPlace)
		lat[sys] = w.AggMetrics().MeanBurstLatency()
	}
	if !(lat[Wedge] < lat[CloudOnly] && lat[CloudOnly] < lat[EdgeBase]) {
		t.Fatalf("latency ordering violated: %v", lat)
	}
}

func TestDataFreeSavesCoordinationBytes(t *testing.T) {
	small := BuildWorld(WorldCfg{
		System: Wedge, Clients: 1, Batch: 100, Place: defaultPlace,
		WritesPerRound: 100, Rounds: 5,
	})
	small.Run(int64(600e9))
	full := BuildWorld(WorldCfg{
		System: Wedge, Clients: 1, Batch: 100, Place: defaultPlace,
		WritesPerRound: 100, Rounds: 5, FullDataCert: true,
	})
	full.Run(int64(600e9))
	if small.EdgeCloudBytes() >= full.EdgeCloudBytes() {
		t.Fatalf("data-free (%d B) not smaller than full-data (%d B)",
			small.EdgeCloudBytes(), full.EdgeCloudBytes())
	}
}
