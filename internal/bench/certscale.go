package bench

import (
	"fmt"
	"runtime"
	"time"

	wedge "wedgechain"
	"wedgechain/internal/cloud"
	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// CertScale (CL1) measures the cloud's certification hot paths at scale
// — the PR-10 tentpole. Three wall-clock arms:
//
//  1. Aggregate certification throughput across concurrent chains,
//     per-block (pre-PR) vs batched: the per-block arm pays one Ed25519
//     verify per certify and one sign per proof; the batched arm ships
//     wire.BlockCertifyBatch runs in and signs one wire.BlockCertBatch
//     per run out, cutting the signature work per certified block by
//     ~the batch factor. The acceptance bar is >= 2x at 4 chains.
//
//  2. Dispute flood: the same well-signed lie re-filed N times, verdict
//     cache on vs off. With the cache every re-filing past the first is
//     answered from the memoized signed verdict — one Judge decode per
//     distinct lie, however long the flood.
//
//  3. Full-stack trust lag through the façade with every PR-10 knob on
//     (batched certificates, precheck workers, anti-entropy auditor)
//     against the per-block baseline, asserting the chaos-suite
//     invariants: zero lost certified writes, zero honest convictions,
//     zero audit mismatches.
func CertScale(scale Scale) *Table {
	t := &Table{
		ID: "CL1",
		Title: fmt.Sprintf("Cloud certification at scale: per-block vs batched (batch=%d, %d CPUs)",
			certScaleBatch, runtime.GOMAXPROCS(0)),
		Header:  []string{"Arm", "Work", "Wall (ms)", "Kops/s", "Speedup", "Notes"},
		Metrics: map[string]float64{},
	}

	total := 24_000 / int(scale)
	if total < 4_000 {
		total = 4_000
	}
	total -= total % (4 * certScaleBatch) // divisible by chains x batch

	// Arm 1: certification throughput, 1 and 4 chains.
	var speedup4 float64
	for _, chains := range []int{1, 4} {
		base := runCertThroughputArm(chains, total, 1)
		batched := runCertThroughputArm(chains, total, certScaleBatch)
		sp := batched / base
		if chains == 4 {
			speedup4 = sp
		}
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("certify %d-chain per-block", chains), fmt.Sprint(total),
				f1(float64(total) / base * 1e3), f1(base / 1e3), "1.00x", "1 verify + 1 sign per block"},
			[]string{fmt.Sprintf("certify %d-chain batched", chains), fmt.Sprint(total),
				f1(float64(total) / batched * 1e3), f1(batched / 1e3), fmt.Sprintf("%.2fx", sp),
				fmt.Sprintf("1 verify + 1 sign per %d blocks", certScaleBatch)},
		)
	}
	t.Metrics["cert_speedup_4chain"] = speedup4

	// Arm 2: dispute flood.
	flood := 2_000 / int(scale)
	if flood < 500 {
		flood = 500
	}
	offRate, offDecodes := runDisputeFloodArm(flood, false)
	onRate, onDecodes := runDisputeFloodArm(flood, true)
	t.Rows = append(t.Rows,
		[]string{"dispute flood, cache off", fmt.Sprint(flood),
			f1(float64(flood) / offRate * 1e3), f1(offRate / 1e3), "1.00x",
			fmt.Sprintf("%d Judge decodes", offDecodes)},
		[]string{"dispute flood, cache on", fmt.Sprint(flood),
			f1(float64(flood) / onRate * 1e3), f1(onRate / 1e3), fmt.Sprintf("%.2fx", onRate/offRate),
			fmt.Sprintf("%d Judge decode (1 per distinct lie)", onDecodes)},
	)
	t.Metrics["dispute_cache_speedup"] = onRate / offRate
	t.Metrics["dispute_judge_decodes_cached"] = float64(onDecodes)

	// Arm 3: full-stack trust lag, baseline vs all PR-10 knobs.
	writes := 120 / int(scale)
	if writes < 30 {
		writes = 30
	}
	for _, batched := range []bool{false, true} {
		label := "facade trust lag, per-block"
		if batched {
			label = "facade trust lag, batched+workers+audit"
		}
		p50, p99, err := runCertScaleCluster(writes, batched)
		if err != nil {
			t.Rows = append(t.Rows, []string{label, fmt.Sprint(writes), "-", "-", "-", "ERROR: " + err.Error()})
			continue
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(writes), "-", "-", "-",
			fmt.Sprintf("trust-lag p50 %s ms, p99 %s ms", f2(p50*1e3), f2(p99*1e3))})
		if batched {
			t.Metrics["trust_lag_p99_batched_ms"] = p99 * 1e3
		}
	}

	t.Notes = append(t.Notes,
		"arm 1 drives raw cloud.Node state machines wall-clock: unverified envelopes (inline Ed25519) pumped round-robin across chains until Stats().Certifies reaches the target; Kops/s = certified blocks per second",
		fmt.Sprintf("arm 1 per-block arm = pre-PR wire shape (BlockCertify/BlockProof); batched arm = BlockCertifyBatch in, one signed BlockCertBatch per %d blocks out", certScaleBatch),
		"arm 2 re-files one well-signed lying dispute; cache-off re-decodes evidence per filing, cache-on answers re-filings from the memoized signed verdict after one decode",
		"arm 3 runs the façade with CertBatch=8, CertWorkers=2, AuditEvery=20ms vs defaults: every write reaches Phase II, zero verdicts, zero audit mismatches (checked, run fails otherwise)",
	)
	return t
}

const certScaleBatch = 16

// certWorld is the shared identity set for the raw cloud arms.
type certWorld struct {
	reg   *wcrypto.Registry
	cloud wcrypto.KeyPair
	edges []wcrypto.KeyPair
}

func newCertWorld(chains int) *certWorld {
	w := &certWorld{reg: wcrypto.NewRegistry(), cloud: wcrypto.DeterministicKey("cloud")}
	w.reg.Register("cloud", w.cloud.Pub)
	for i := 0; i < chains; i++ {
		k := wcrypto.DeterministicKey(wire.NodeID(fmt.Sprintf("edge-%d", i+1)))
		w.edges = append(w.edges, k)
		w.reg.Register(k.ID, k.Pub)
	}
	return w
}

// runCertThroughputArm certifies total blocks spread evenly over chains
// and returns certified blocks per second. batch == 1 pre-builds the
// per-block wire shape; batch > 1 pre-builds BlockCertifyBatch runs.
// Envelopes are delivered unverified, so the cloud pays the inline
// signature check — the cost the batch amortizes.
func runCertThroughputArm(chains, total, batch int) float64 {
	w := newCertWorld(chains)
	per := total / chains
	envs := make([][]wire.Envelope, chains)
	for c := 0; c < chains; c++ {
		ek := w.edges[c]
		for bid := 0; bid < per; bid += batch {
			if batch == 1 {
				m := &wire.BlockCertify{Edge: ek.ID, BID: uint64(bid), Digest: wcrypto.Digest([]byte{byte(c), byte(bid), byte(bid >> 8)})}
				m.EdgeSig = wcrypto.SignMsg(ek, m)
				envs[c] = append(envs[c], wire.Envelope{From: ek.ID, To: "cloud", Msg: m})
			} else {
				m := &wire.BlockCertifyBatch{Edge: ek.ID, Start: uint64(bid)}
				for i := 0; i < batch; i++ {
					m.Digests = append(m.Digests, wcrypto.Digest([]byte{byte(c), byte(bid + i), byte((bid + i) >> 8)}))
				}
				m.EdgeSig = wcrypto.SignMsg(ek, m)
				envs[c] = append(envs[c], wire.Envelope{From: ek.ID, To: "cloud", Msg: m})
			}
		}
	}
	cn := cloud.New(cloud.Config{ID: "cloud", CertBatch: batch}, w.cloud, w.reg)
	defer cn.Close()

	start := time.Now()
	for i := 0; i < len(envs[0]); i++ {
		for c := 0; c < chains; c++ {
			now := time.Now().UnixNano()
			cn.Receive(now, envs[c][i])
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for cn.Stats().Certifies < uint64(total) {
		cn.Tick(time.Now().UnixNano())
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("CL1: certification stalled at %d/%d", cn.Stats().Certifies, total))
		}
	}
	cn.Tick(time.Now().UnixNano()) // flush trailing partial runs
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds()
}

// runDisputeFloodArm certifies one block, then re-files the same
// well-signed lying dispute flood times. Returns disputes per second and
// the Judge decode count.
func runDisputeFloodArm(flood int, cached bool) (float64, uint64) {
	w := newCertWorld(1)
	client := wcrypto.DeterministicKey("c1")
	w.reg.Register("c1", client.Pub)
	vc := 0 // default cache
	if !cached {
		vc = -1
	}
	cn := cloud.New(cloud.Config{ID: "cloud", VerdictCache: vc}, w.cloud, w.reg)
	defer cn.Close()

	honest := wire.Block{Edge: "edge-1", ID: 0, Entries: []wire.Entry{{Client: "c1", Seq: 1, Value: []byte("honest")}}}
	cert := &wire.BlockCertify{Edge: "edge-1", BID: 0, Digest: wcrypto.BlockDigest(&honest)}
	cert.EdgeSig = wcrypto.SignMsg(w.edges[0], cert)
	cn.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: cert})

	lied := honest
	lied.Entries = append([]wire.Entry(nil), honest.Entries...)
	lied.Entries[0].Value = []byte("tampered")
	ev := &wire.AddResponse{BID: 0, Block: lied}
	ev.EdgeSig = wcrypto.SignMsg(w.edges[0], ev)
	d := core.BuildAddLieDispute(client, "edge-1", ev)
	env := wire.Envelope{From: "c1", To: "cloud", Msg: d}

	start := time.Now()
	for i := 0; i < flood; i++ {
		cn.Receive(2, env)
	}
	elapsed := time.Since(start)
	return float64(flood) / elapsed.Seconds(), cn.Stats().JudgeDecodes
}

// runCertScaleCluster drives writes through the façade and returns trust
// lag percentiles, failing on any lost write, verdict, or audit
// mismatch.
func runCertScaleCluster(writes int, batched bool) (p50, p99 float64, err error) {
	cfg := wedge.Config{
		Edges:      1,
		BatchSize:  4,
		FlushEvery: 5 * time.Millisecond,
	}
	if batched {
		cfg.CertBatch = 8
		cfg.CertWorkers = 2
		cfg.AuditEvery = 20 * time.Millisecond
	}
	cluster, err := wedge.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()
	c, err := cluster.NewClient("cl1-writer", "")
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < writes; i++ {
		rc, err := c.Add([]byte(fmt.Sprintf("cl1-%d", i)))
		if err == nil {
			err = rc.WaitPhaseII(20 * time.Second)
		}
		if err != nil {
			return 0, 0, fmt.Errorf("write %d: %w", i, err)
		}
	}
	reg := cluster.Metrics()
	if vs := cluster.Verdicts(); len(vs) != 0 {
		return 0, 0, fmt.Errorf("honest cluster produced %d verdicts", len(vs))
	}
	if batched {
		if m := reg.CounterValue("wedge_audit_mismatches_total"); m != 0 {
			return 0, 0, fmt.Errorf("audit mismatches = %d", m)
		}
		if obsCount(reg, "wedge_cert_batch_entries") == 0 {
			return 0, 0, fmt.Errorf("no certificate batches signed")
		}
	}
	return reg.Quantile("wedge_trust_lag_seconds", 0.50), reg.Quantile("wedge_trust_lag_seconds", 0.99), nil
}
