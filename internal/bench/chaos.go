package bench

import (
	"fmt"
	"time"

	wedge "wedgechain"
)

// ChaosSoak (CH1) runs a 3-replica shard under the deterministic chaos
// network — wall-clock over the façade's real concurrent transport — and
// measures what the healing machinery costs and guarantees. Arm one is
// the clean baseline. Arm two adds seeded background faults (drop,
// duplicate, delay) on every link: client transport retries and the
// leader's stall-gated certification retries absorb them. Arm three
// additionally partitions the leader from the cloud mid-run: the lease
// expires, a follower is promoted, the clients rebind, and — once the
// partition heals — the demoted ex-leader truncates its abandoned tail,
// catches up through certified blocks, and converges back to the live
// frontier. Every arm asserts the two soak invariants: no
// acked-then-certified write is lost (each one reads back Phase II at
// the end) and no honest node is convicted.
func ChaosSoak(scale Scale) *Table {
	t := &Table{
		ID:     "CH1",
		Title:  "Chaos soak: 3-replica shard under seeded drop/dup/delay + partition (wall-clock)",
		Header: []string{"Scenario", "Writes", "Lost", "Unavail", "ops/s", "Transfers", "Drops", "Dups", "Resends", "CatchUps", "Convicted"},
	}
	writes := scale.rounds(60)
	if writes < 12 {
		writes = 12
	}
	for _, arm := range []chaosArm{chaosClean, chaosNoise, chaosPartition} {
		row, err := runChaosArm(writes, arm)
		if err != nil {
			row = []string{arm.String(), "-", "-", "-", "-", "-", "-", "-", "-", "-", "error: " + err.Error()}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"seed 42; background faults: 3% drop, 5% duplicate, <=10ms delay on every link; partition arm cuts leader<->cloud mid-run and heals it",
		"closed-loop writer; Unavail counts typed unavailable failures surfaced by bounded retry (re-issued by the app, never silent hangs)",
		"Lost = acked-then-certified writes that failed to read back Phase II after the run (invariant: 0); Convicted must stay '-' (all nodes honest)",
		"partition arm waits for the demoted ex-leader to truncate, certified-catch-up, and converge to the live frontier before the final audit",
	)
	return t
}

type chaosArm int

const (
	chaosClean chaosArm = iota
	chaosNoise
	chaosPartition
)

func (a chaosArm) String() string {
	switch a {
	case chaosClean:
		return "clean baseline"
	case chaosNoise:
		return "drop+dup+delay"
	default:
		return "noise + leader partition"
	}
}

func runChaosArm(writes int, arm chaosArm) ([]string, error) {
	var net *wedge.ChaosNet
	if arm != chaosClean {
		net = wedge.NewChaos(42)
		net.Add(wedge.ChaosRule{Faults: wedge.LinkFaults{
			Drop:     0.03,
			Dup:      0.05,
			DelayMax: (10 * time.Millisecond).Nanoseconds(),
		}})
	}
	cluster, err := wedge.NewCluster(wedge.Config{
		Edges:            1,
		ReplicasPerShard: 3,
		BatchSize:        4,
		FlushEvery:       5 * time.Millisecond,
		LeaseTimeout:     300 * time.Millisecond,
		GossipEvery:      100 * time.Millisecond,
		RetryEvery:       100 * time.Millisecond,
		MaxAttempts:      8,
		Chaos:            net,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	w, err := cluster.NewClient("ch1-writer", "")
	if err != nil {
		return nil, err
	}
	reader, err := cluster.NewClient("ch1-reader", "")
	if err != nil {
		return nil, err
	}

	leaderID, cloudID := wedge.EdgeID(1), wedge.NodeID("cloud")
	type acked struct {
		payload string
		bid     uint64
	}
	var certified []acked
	unavailable := 0
	write := func(i int) error {
		payload := fmt.Sprintf("ch1-%d", i)
		// Bounded retry surfaces typed unavailable errors instead of
		// hanging; the closed loop re-issues like an application would.
		for attempt := 0; ; attempt++ {
			rc, err := w.Add([]byte(payload))
			if err == nil {
				err = rc.WaitPhaseII(20 * time.Second)
			}
			if err == nil {
				certified = append(certified, acked{payload, rc.BID()})
				return nil
			}
			unavailable++
			if attempt == 4 {
				return fmt.Errorf("write %d exhausted app-level retries: %w", i, err)
			}
		}
	}

	start := time.Now()
	third := writes / 3
	for i := 0; i < third; i++ {
		if err := write(i); err != nil {
			return nil, err
		}
	}
	if arm == chaosPartition {
		net.Partition(leaderID, cloudID, 0, 0)
	}
	for i := third; i < 2*third; i++ {
		if err := write(i); err != nil {
			return nil, err
		}
	}
	if arm == chaosPartition {
		net.Heal(leaderID)
	}
	for i := 2 * third; i < writes; i++ {
		if err := write(i); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	if arm == chaosPartition {
		// The healed ex-leader must rejoin and converge: truncate the
		// uncertified tail it acked into the void, refetch certified
		// history, and mirror the live frontier.
		if cluster.ChainEpoch(leaderID) == 0 {
			return nil, fmt.Errorf("partition never forced a leadership transfer")
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			lb, lc, err := cluster.ReplicaFrontier(cluster.ChainLeader(leaderID))
			if err != nil {
				return nil, err
			}
			xb, xc, err := cluster.ReplicaFrontier(leaderID)
			if err != nil {
				return nil, err
			}
			if cluster.ChainLeader(leaderID) != leaderID && xb == lb && xc == lc && lb > 0 {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("ex-leader never converged: has %d/%d, leader %d/%d", xb, xc, lb, lc)
			}
			time.Sleep(20 * time.Millisecond)
		}
		st, err := cluster.EdgeStats(leaderID)
		if err != nil {
			return nil, err
		}
		if st.CatchUps == 0 {
			return nil, fmt.Errorf("ex-leader rejoined without certified catch-up")
		}
	}

	// Invariant 1: nothing acked-then-certified is lost.
	lost := 0
	for _, a := range certified {
		blk, phase, err := reader.Read(a.bid, 20*time.Second)
		ok := err == nil && phase == wedge.PhaseII && blk != nil
		if ok {
			found := false
			for _, e := range blk.Entries {
				if string(e.Value) == a.payload {
					found = true
				}
			}
			ok = found
		}
		if !ok {
			lost++
		}
	}
	if lost > 0 {
		return nil, fmt.Errorf("%d certified writes lost", lost)
	}
	// Invariant 2: no honest node convicted.
	for _, id := range []wedge.NodeID{leaderID, wedge.FollowerID(1, 1), wedge.FollowerID(1, 2)} {
		if why, banned := cluster.Punished(id); banned {
			return nil, fmt.Errorf("honest node %s convicted: %s", id, why)
		}
	}

	var drops, dups uint64
	if net != nil {
		snap := net.Snapshot()
		drops, dups = snap.Drops, snap.Dups
		if arm != chaosClean && drops == 0 {
			return nil, fmt.Errorf("chaos schedule injected nothing")
		}
	}
	var resends, catchups uint64
	for _, id := range []wedge.NodeID{leaderID, wedge.FollowerID(1, 1), wedge.FollowerID(1, 2)} {
		if st, err := cluster.EdgeStats(id); err == nil {
			catchups += st.CatchUps
		}
	}
	if byEdge, err := w.Stats(); err == nil {
		for _, cs := range byEdge {
			resends += cs.Resends
		}
	}

	return []string{
		arm.String(),
		fmt.Sprint(len(certified)),
		"0",
		fmt.Sprint(unavailable),
		f1(float64(len(certified)) / elapsed.Seconds()),
		fmt.Sprint(cluster.ChainEpoch(leaderID)),
		fmt.Sprint(drops),
		fmt.Sprint(dups),
		fmt.Sprint(resends),
		fmt.Sprint(catchups),
		"-",
	}, nil
}
