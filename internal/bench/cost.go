package bench

import (
	"wedgechain/internal/sim"
	"wedgechain/internal/wire"
)

// Role classifies nodes for the compute-cost model.
type Role uint8

// Node roles.
const (
	RClient Role = iota
	REdge
	RCloud
)

// CostParams are the calibrated service-time constants (nanoseconds
// unless noted). The paper reports only end-to-end numbers; these
// constants were calibrated once against the paper's WedgeChain B=100
// latency (~15 ms), Cloud-only latency (~78 ms), and Figure 6's Phase II
// rates, then held fixed across every experiment and every system — so
// all comparative shapes are produced by the protocols, not by
// per-experiment tuning. See EXPERIMENTS.md for the calibration record.
type CostParams struct {
	// Base is the per-message handling cost at any node.
	Base int64
	// CutBaseEdge is the batch-commit cost at the edge (durably
	// appending a block, hashing and signing it).
	CutBaseEdge int64
	// CutBaseCloud is the same work at the trusted cloud, which also
	// maintains the authoritative index (Cloud-only / Edge-baseline).
	CutBaseCloud int64
	// CutPerOp is the per-entry share of batch commit.
	CutPerOp int64
	// CertBase and CertPerOp model the cloud's certification pipeline
	// (digest record durability, dispute-log indexing). The per-op term
	// reproduces the Phase II throughput drop of Figure 6.
	CertBase  int64
	CertPerOp int64
	// ReadServe is the edge/cloud cost to serve a read or get.
	ReadServe int64
	// VerifyClient is the client-side proof verification cost for reads
	// and gets (Figure 5(d)'s 0.19 ms).
	VerifyClient int64
	// VerifyBatch is the client-side cost of verifying a signed block
	// response covering a whole write batch: hash the block once and
	// check the O(1) digest signature (the block-ack signature covers
	// the 32-byte digest, so Ed25519 no longer re-hashes the body).
	VerifyBatch int64
	// MergeBase and MergePerByte model the cloud-side compaction.
	MergeBase    int64
	MergePerByte float64
	// ApplyBase and ApplyPerByte model the Edge-baseline edge applying
	// a state push.
	ApplyBase    int64
	ApplyPerByte float64
	// Batch is the experiment's batch size B (certification cost is
	// proportional to it; the digest itself hides B from the cloud, so
	// the model closes over the experiment's configuration).
	Batch int
}

// DefaultCosts returns the calibrated model for batch size B.
func DefaultCosts(batch int) CostParams {
	return CostParams{
		Base:         2_000,      // 2 us
		CutBaseEdge:  12_000_000, // 12 ms
		CutBaseCloud: 14_500_000, // 14.5 ms
		CutPerOp:     1_000,      // 1 us
		CertBase:     8_000_000,  // 8 ms
		CertPerOp:    34_000,     // 34 us
		ReadServe:    500_000,    // 0.5 ms
		VerifyClient: 200_000,    // 0.2 ms
		VerifyBatch:  2_400_000,  // 2.4 ms (one hash pass; digest-signed ack)
		MergeBase:    5_000_000,  // 5 ms
		MergePerByte: 10,         // 10 ns/byte
		ApplyBase:    1_000_000,  // 1 ms
		ApplyPerByte: 5,          // 5 ns/byte
		Batch:        batch,
	}
}

// Fn builds the simulator cost function for the given role assignment.
func (p CostParams) Fn(roles map[wire.NodeID]Role) sim.CostFn {
	return func(node wire.NodeID, in wire.Envelope, outs []wire.Envelope) int64 {
		role := roles[node]
		cost := p.Base

		switch m := in.Msg.(type) {
		case *wire.GetRequest, *wire.ReadRequest, *wire.CloudGetRequest:
			cost += p.ReadServe
		case *wire.ScanRequest:
			// Scan assembly walks the L0 window and per-level page
			// ranges; the base serve cost covers it (proof material is
			// hashes already cached by the index).
			cost += p.ReadServe
		case *wire.ScanResponse:
			if role == RClient {
				// Verification hashes every proven page and block and
				// merges the derived records, so it scales with the
				// evidence shipped, not just a flat check.
				cost += p.VerifyClient + int64(p.ApplyPerByte*float64(wire.EncodedSize(in)))
			}
		case *wire.BlockCertify:
			if role == RCloud {
				cost += p.CertBase + p.CertPerOp*int64(p.Batch)
			}
		case *wire.MergeRequest:
			if role == RCloud {
				cost += p.MergeBase + int64(p.MergePerByte*float64(wire.EncodedSize(in)))
			}
		case *wire.EBStatePush:
			if role == REdge {
				cost += p.ApplyBase + int64(p.ApplyPerByte*float64(wire.EncodedSize(in)))
			}
		case *wire.GetResponse, *wire.ReadResponse:
			if role == RClient {
				cost += p.VerifyClient
			}
		case *wire.AddResponse:
			if role == RClient {
				cost += p.VerifyBatch
			}
		case *wire.PutResponse:
			if role == RClient {
				cost += p.VerifyBatch
			}
		case *wire.MergeResponse:
			if role == REdge && m.OK {
				cost += p.ApplyBase + int64(p.ApplyPerByte*float64(wire.EncodedSize(in)))
			}
		}

		// Batch-commit work, identified by the outputs of the request
		// that cut the block.
		for _, out := range outs {
			switch m := out.Msg.(type) {
			case *wire.BlockCertify:
				// WedgeChain edge cut a block.
				cost += p.CutBaseEdge + p.CutPerOp*int64(p.Batch)
			case *wire.EBStatePush:
				// Edge-baseline cloud committed a batch (and possibly
				// compacted: pages ride along and cost per byte).
				cost += p.CutBaseCloud + p.CutPerOp*int64(len(m.Block.Entries))
				if len(m.Pages) > 0 {
					cost += int64(p.MergePerByte * float64(wire.EncodedSize(out)))
				}
			case *wire.CloudPutResponse:
				// Cloud-only server committed a batch: one response per
				// buffered write; charge the batch cost once.
				cost += p.CutBaseCloud/int64(len(outs)) + p.CutPerOp
			}
		}
		return cost
	}
}
