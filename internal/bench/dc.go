// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI) plus the ablations called out in DESIGN.md. Each
// experiment builds the three systems (WedgeChain, Cloud-only,
// Edge-baseline) on the discrete-event simulator configured with the
// paper's datacenter topology, runs the paper's workload, and prints the
// same rows/series the paper reports.
package bench

import "wedgechain/internal/sim"

// DC identifies one of the five Amazon AWS regions of the evaluation.
type DC int

// The evaluation's datacenters.
const (
	California DC = iota // C: client/edge home
	Oregon               // O
	Virginia             // V: default cloud location
	Ireland              // I
	Mumbai               // M
)

var dcNames = [...]string{"C", "O", "V", "I", "M"}

// String returns the paper's single-letter datacenter name.
func (d DC) String() string { return dcNames[d] }

// AllDCs lists the five datacenters in the paper's order.
var AllDCs = []DC{California, Oregon, Virginia, Ireland, Mumbai}

// rttMS is the symmetric round-trip-time matrix in milliseconds. The C row
// is Table I of the paper; the remaining pairs are public-internet
// approximations chosen to satisfy the triangle-sum invariant the paper
// observes in Figure 7(b) (see DESIGN.md §4).
var rttMS = [5][5]float64{
	//          C     O     V     I     M
	/* C */ {0.5, 19, 61, 141, 238},
	/* O */ {19, 0.5, 65, 130, 220},
	/* V */ {61, 65, 0.5, 75, 185},
	/* I */ {141, 130, 75, 0.5, 120},
	/* M */ {238, 220, 185, 120, 0.5},
}

// RTT returns the round trip time between two datacenters in nanoseconds.
func RTT(a, b DC) int64 { return int64(rttMS[a][b] * 1e6) }

// Link bandwidth classes (bytes/second). The edge-cloud coordination
// channel is the expensive one — the paper's motivation for data-free
// certification — and is modeled tighter than the general WAN path.
const (
	lanBW   = 1e9 / 8  // 1 Gb/s within a datacenter
	wanBW   = 1e9 / 8  // client <-> cloud WAN (not bandwidth-stressed in the paper)
	coordBW = 25e6 / 8 // 25 Mb/s edge <-> cloud coordination channel
)

// Placement assigns roles to datacenters for one experiment.
type Placement struct {
	Client DC
	Edge   DC
	Cloud  DC
}

// linkFor returns the simulated link between two placed roles.
func linkFor(a, b DC, bw float64) sim.Link {
	lat := RTT(a, b) / 2
	if a == b {
		return sim.Link{Latency: lat, Bandwidth: lanBW}
	}
	return sim.Link{Latency: lat, Bandwidth: bw}
}
