package bench

import (
	"fmt"
	"os"
	"time"

	"wedgechain/internal/edge"
	"wedgechain/internal/wire"
)

// SyncPerBlock is the explicit "no group commit" setting for durable bench
// worlds: every block pays its own fsync. Durable configurations must pick
// it (or a positive group-commit window) deliberately — a zero SyncEvery in
// a durable bench config is rejected loudly, because it used to mean
// "silently measure per-block fsync and call it the durable number".
const SyncPerBlock = int64(-1)

// durableSyncEvery validates and maps a bench-world SyncEvery to the
// edge.Config value. It is the single gate every durable bench world goes
// through; an unset window panics instead of producing numbers that
// silently omit the fsync-amortization dimension.
func durableSyncEvery(syncEvery int64) int64 {
	switch {
	case syncEvery == SyncPerBlock:
		return 0 // edge.Config: 0 = inline fsync per block
	case syncEvery > 0:
		return syncEvery
	default:
		panic("bench: durable world without an explicit SyncEvery; " +
			"set SyncPerBlock or a group-commit window so durable numbers state their fsync discipline")
	}
}

// DurableSyncSweep (D1) measures the durable put hot path (wall-clock, real
// fsyncs) across the SyncEvery dimension: per-block fsync versus
// group-commit windows of increasing width. Acknowledgements are withheld
// until the covering fsync in every mode, so each row is a correct
// durability discipline — the sweep shows what the shared fsync buys, and
// the fsync counter proves the amortization is real rather than deferred.
func DurableSyncSweep(scale Scale) *Table {
	t := &Table{
		ID:    "D1",
		Title: "Durable put path: group-commit (SyncEvery) sweep, wall-clock (B=100)",
		Header: []string{"SyncEvery", "Puts", "Throughput (Kops/s)",
			"fsyncs", "Blocks/fsync", "Speedup"},
	}
	total := 30_000 / int(scale)
	if total < 3_000 {
		total = 3_000
	}
	total -= total % pipeBatch
	w := buildPipelineWorkload(total)

	sweep := []struct {
		name string
		win  int64
	}{
		{"per-block fsync", SyncPerBlock},
		{"500us window", int64(500e3)},
		{"2ms window", int64(2e6)},
		{"10ms window", int64(10e6)},
	}
	var base float64
	for i, s := range sweep {
		tput, syncs := runDurable(w, total, s.win)
		if i == 0 {
			base = tput
		}
		blocks := float64(total / pipeBatch)
		t.Rows = append(t.Rows, []string{
			s.name,
			fmt.Sprint(total),
			f1(tput / 1e3),
			fmt.Sprint(syncs),
			f1(blocks / float64(syncs)),
			fmt.Sprintf("%.2fx", tput/base),
		})
	}
	t.Notes = append(t.Notes,
		"every mode withholds Phase I acknowledgements until the covering fsync returns (group commit batches blocks into one)",
		"single-threaded submission; throughput isolates the durability discipline, not client parallelism",
	)
	return t
}

// runDurable drives the session-signed put workload through a persistent
// edge with the given group-commit window and reports measured throughput
// and the fsync count.
func runDurable(w *pipelineWorkload, total int, syncEvery int64) (tput float64, syncs uint64) {
	dir, err := os.MkdirTemp("", "wedge-durable-bench-*")
	if err != nil {
		panic(fmt.Sprintf("bench: durable temp dir: %v", err))
	}
	defer os.RemoveAll(dir)

	en, _, err := edge.NewPersistent(edge.Config{
		ID:          "edge-1",
		Cloud:       "cloud",
		BatchSize:   pipeBatch,
		L0Threshold: 1 << 30, // no compaction: isolate the durable write path
		SyncEvery:   durableSyncEvery(syncEvery),
	}, w.edgeKey, w.reg, dir, true)
	if err != nil {
		panic(fmt.Sprintf("bench: durable edge: %v", err))
	}
	defer en.CloseStore()

	acked := 0
	countAcks := func(outs []wire.Envelope) {
		for _, out := range outs {
			if m, ok := out.Msg.(*wire.PutResponse); ok {
				for i := range m.Block.Entries {
					if m.Block.Entries[i].Client == out.To {
						acked++
					}
				}
			}
		}
	}

	start := time.Now()
	for _, b := range w.session {
		now := time.Now().UnixNano()
		countAcks(en.Receive(now, b.env))
		countAcks(en.Tick(now))
	}
	// Drain the final group-commit window.
	deadline := time.Now().Add(30 * time.Second)
	for acked < total {
		countAcks(en.Tick(time.Now().UnixNano()))
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("bench: durable sweep stalled at %d/%d acks", acked, total))
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds(), en.StoreSyncs()
}
