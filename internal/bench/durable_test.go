package bench

import (
	"strings"
	"testing"
)

// TestDurableWorldRequiresSyncEvery pins the loud-failure contract: a
// durable bench world with the group-commit dimension unset must refuse to
// build rather than silently produce durable numbers without a stated
// fsync discipline.
func TestDurableWorldRequiresSyncEvery(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("durable world with SyncEvery unset built silently")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "SyncEvery") {
			t.Fatalf("panic does not name the missing dimension: %v", r)
		}
	}()
	BuildWorld(WorldCfg{
		System:         Wedge,
		Clients:        1,
		Batch:          10,
		Place:          defaultPlace,
		WritesPerRound: 10,
		Rounds:         3,
		Durable:        true, // SyncEvery deliberately unset
	})
}

// TestDurableWorldGroupCommits runs a small durable world end to end and
// checks the group-commit window actually amortizes: fewer fsyncs than
// blocks, while every write still completes.
func TestDurableWorldGroupCommits(t *testing.T) {
	w := BuildWorld(WorldCfg{
		System:         Wedge,
		Clients:        2,
		Batch:          10,
		Place:          defaultPlace,
		WritesPerRound: 10,
		Rounds:         3,
		Durable:        true,
		SyncEvery:      int64(50e6), // 50ms virtual window
	})
	defer w.Close()
	w.Run(int64(600e9))
	if got := w.AggMetrics().Writes; got != 2*3*10 {
		t.Fatalf("writes = %d", got)
	}
	st := w.EdgeNode.Stats()
	syncs := w.EdgeNode.StoreSyncs()
	if syncs == 0 {
		t.Fatal("durable world issued no fsyncs")
	}
	if syncs >= st.BlocksCut {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d blocks", syncs, st.BlocksCut)
	}
}

// TestDurableWorldPerBlockFsync checks the explicit per-block discipline
// maps through: one fsync per block (certificates ride their own).
func TestDurableWorldPerBlockFsync(t *testing.T) {
	w := BuildWorld(WorldCfg{
		System:         Wedge,
		Clients:        1,
		Batch:          10,
		Place:          defaultPlace,
		WritesPerRound: 10,
		Rounds:         3,
		Durable:        true,
		SyncEvery:      SyncPerBlock,
	})
	defer w.Close()
	w.Run(int64(600e9))
	st := w.EdgeNode.Stats()
	if st.BlocksCut == 0 {
		t.Fatal("no blocks cut")
	}
	if syncs := w.EdgeNode.StoreSyncs(); syncs < st.BlocksCut {
		t.Fatalf("per-block mode issued %d fsyncs for %d blocks", syncs, st.BlocksCut)
	}
}
