package bench

import (
	"fmt"
	"math/rand"

	"wedgechain/internal/wire"
	"wedgechain/internal/workload"
)

// evidenceWindows is the E1 x axis: uncompacted L0 blocks at serve time.
var evidenceWindows = []int{1, 16, 64}

// EvidencePruning (E1) prices the pruned-read-evidence refactor: point
// gets and range scans served under controlled uncompacted L0 windows of
// 1/16/64 blocks, measured with pruning on (each window block whose
// digest-committed key summary excludes the request ships as a ~60-byte
// pruned reference) and off (the pre-PR-5 shape: the whole window
// re-ships in full on every read).
//
// Three read shapes per window:
//
//   - get hit: the key's freshest version is in one window block — that
//     block ships full, the rest of the window prunes;
//   - get miss: the key resolves in the merged levels — the entire
//     window prunes to summaries;
//   - scan miss: a 100-key range over compacted keyspace disjoint from
//     the window's key band — the window prunes via its [Min,Max]
//     intervals.
//
// Every sampled response is fully verified client-side (signature,
// window binding, exclusion soundness, level proofs), so the byte counts
// are for real, accepted evidence. Throughput drives a closed-loop
// 90%-miss/10%-hit get mix through the simulator.
func EvidencePruning(scale Scale) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Read evidence pruning: bytes/read and get throughput vs uncompacted L0 window (B=100, 1 shard)",
		Header: []string{"L0 window", "Mode", "Get hit (B)", "Get miss (B)",
			"Scan 100 (B)", "Gets/s (90% miss)"},
	}
	for _, window := range evidenceWindows {
		for _, noPrune := range []bool{false, true} {
			r := runEvidence(scale, window, noPrune)
			mode := "pruned"
			if noPrune {
				mode = "full window"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(window),
				mode,
				fmt.Sprint(r.getHitBytes),
				fmt.Sprint(r.getMissBytes),
				fmt.Sprint(r.scanBytes),
				f1(r.getsPerSec),
			})
		}
	}
	t.Notes = append(t.Notes,
		"window blocks certified but uncompacted; each block writes one 100-key band, so summaries prune by interval and fingerprint",
		"every sampled response verified end-to-end before being counted; pruned and full modes return identical results",
	)
	return t
}

type evidenceResult struct {
	getHitBytes  int
	getMissBytes int
	scanBytes    int
	getsPerSec   float64
}

// runEvidence builds one world with a compacted preload plus a controlled
// uncompacted window of `window` blocks, then measures evidence sizes and
// closed-loop get throughput.
func runEvidence(scale Scale, window int, noPrune bool) evidenceResult {
	const batch = 100
	const l0Threshold = 10
	// The window overwrites bands [0, window*batch). The preload's own
	// tail can leave up to l0Threshold blocks (1000 keys) uncompacted —
	// they ride along as extra pruned window positions — so misses and
	// scans must address the compacted middle: above the window bands,
	// below the possibly-uncompacted tail, with room for the scan range.
	preload := scale.preload(20_000)
	if min := window*batch + 2*l0Threshold*batch; preload < min {
		preload = min
	}
	w := BuildWorld(WorldCfg{
		System:     Wedge,
		Clients:    1,
		Batch:      batch,
		KeySpace:   preload,
		Preload:    preload,
		Place:      defaultPlace,
		Rounds:     1,
		FlushEvery: int64(10e6),
		NoL0Prune:  noPrune,
	})
	w.Preload()

	// Freeze compaction, then grow the window: block j overwrites the
	// 100-key band [j*batch, (j+1)*batch), so each block's key summary
	// covers one narrow interval of the preloaded keyspace.
	w.EdgeNode.SetL0Threshold(1 << 30)
	session := w.WedgeSessions[0]
	val := make([]byte, 100)
	for j := 0; j < window; j++ {
		keys := make([][]byte, batch)
		values := make([][]byte, batch)
		for i := 0; i < batch; i++ {
			keys[i] = workload.KeyName(j*batch + i)
			values[i] = val
		}
		ops, envs := session.PutBatch(w.Sim.Now(), keys, values)
		w.Sim.Inject(envs)
		ok := w.Sim.RunWhile(func() bool {
			for _, op := range ops {
				if !op.Done {
					return true
				}
			}
			return false
		}, w.Sim.Now()+int64(600e9))
		if !ok {
			panic("bench: E1 window write stalled")
		}
	}
	w.Sim.Drain(w.Sim.Now() + int64(10e9))
	if got := w.EdgeNode.Log().NumBlocks() - w.EdgeNode.L0From(); got < uint64(window) {
		panic(fmt.Sprintf("bench: E1 window is %d blocks, want >= %d", got, window))
	}

	cc := w.WedgeClients[0]
	now := w.Sim.Now()
	size := func(m wire.Message) int {
		return wire.EncodedSize(wire.Envelope{From: w.EdgeNode.ID(), To: cc.ID(), Msg: m})
	}

	// Keys: hits live in the window's bands; misses and the scan range in
	// the compacted middle, clear of the preload's uncompacted tail.
	compactedLo, compactedHi := window*batch, preload-l0Threshold*batch
	mid := (compactedLo + compactedHi) / 2
	hitKey := workload.KeyName(window*batch/2 + 3)
	missKey := workload.KeyName(mid)
	scanLo := mid + 200

	res := evidenceResult{}
	hit := w.EdgeNode.AssembleGet(hitKey, 1)
	if err := cc.VerifyGetResponse(now, hitKey, hit); err != nil {
		panic(fmt.Sprintf("bench: E1 hit get failed verification: %v", err))
	}
	if !hit.Found || len(hit.Proof.L0Blocks) == 0 {
		panic("bench: E1 hit key did not resolve in the L0 window")
	}
	res.getHitBytes = size(hit)

	miss := w.EdgeNode.AssembleGet(missKey, 2)
	if err := cc.VerifyGetResponse(now, missKey, miss); err != nil {
		panic(fmt.Sprintf("bench: E1 miss get failed verification: %v", err))
	}
	if len(miss.Proof.Levels) == 0 {
		panic("bench: E1 miss key did not resolve in the merged levels")
	}
	res.getMissBytes = size(miss)

	start, end := workload.KeyName(scanLo), workload.KeyName(scanLo+100)
	scanResp := w.EdgeNode.AssembleScan(start, end, 3)
	if err := cc.VerifyScanResponse(now, start, end, scanResp); err != nil {
		panic(fmt.Sprintf("bench: E1 scan failed verification: %v", err))
	}
	res.scanBytes = size(scanResp)

	// Closed-loop gets, 90% miss / 10% hit, through the simulator.
	rounds := scale.rounds(300)
	rng := rand.New(rand.NewSource(7))
	started := w.Sim.Now()
	for i := 0; i < rounds; i++ {
		var key []byte
		if rng.Intn(10) == 0 {
			key = workload.KeyName(rng.Intn(window * batch))
		} else {
			key = workload.KeyName(window*batch + rng.Intn(preload-window*batch))
		}
		op, envs := session.Get(w.Sim.Now(), key)
		w.Sim.Inject(envs)
		ok := w.Sim.RunWhile(func() bool { return !op.Done }, w.Sim.Now()+int64(600e9))
		if !ok || op.Err != nil {
			panic(fmt.Sprintf("bench: E1 get failed: ok=%v err=%v", ok, op.Err))
		}
	}
	res.getsPerSec = float64(rounds) / (float64(w.Sim.Now()-started) / 1e9)
	return res
}
