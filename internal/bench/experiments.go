package bench

import (
	"fmt"

	"wedgechain/internal/sim"
	"wedgechain/internal/wire"
)

// Scale shrinks experiment volume for quick runs (tests, CI): 1 = paper
// scale, larger values divide round counts.
type Scale int

// Scales.
const (
	Full  Scale = 1
	Quick Scale = 10
)

func (s Scale) rounds(full int) int {
	r := full / int(s)
	if r < 3 {
		r = 3
	}
	return r
}

func (s Scale) preload(full int) int {
	p := full / int(s)
	if p < 1000 {
		p = 1000
	}
	return p
}

// defaultPlace is the evaluation's standard placement: clients and edge in
// California, cloud in Virginia.
var defaultPlace = Placement{Client: California, Edge: California, Cloud: Virginia}

// batchSweep is Figure 4's x axis.
var batchSweep = []int{100, 500, 1000, 1500, 2000}

// clientSweep is Figure 5's x axis.
var clientSweep = []int{1, 3, 5, 7, 9}

// Table1RTT reproduces Table I: measured RTTs between California and the
// other datacenters, via Ping/Pong over the simulated topology.
func Table1RTT(scale Scale) *Table {
	t := &Table{
		ID:     "T1",
		Title:  "Average RTT from California (ms) — paper: C=0 O=19 V=61 I=141 M=238",
		Header: []string{"", "C", "O", "V", "I", "M"},
	}
	row := []string{"C"}
	for _, to := range AllDCs {
		row = append(row, f1(measureRTT(California, to)))
	}
	t.Rows = append(t.Rows, row)
	return t
}

// pinger is a minimal handler that answers pings.
type pinger struct{ id wire.NodeID }

func (p *pinger) ID() wire.NodeID { return p.id }
func (p *pinger) Receive(now int64, env wire.Envelope) []wire.Envelope {
	if m, ok := env.Msg.(*wire.Ping); ok {
		return []wire.Envelope{{From: p.id, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	}
	return nil
}
func (p *pinger) Tick(now int64) []wire.Envelope { return nil }

// ponger records round trips.
type ponger struct {
	id wire.NodeID

	rtts []int64
}

func (p *ponger) ID() wire.NodeID { return p.id }
func (p *ponger) Receive(now int64, env wire.Envelope) []wire.Envelope {
	if m, ok := env.Msg.(*wire.Pong); ok {
		p.rtts = append(p.rtts, now-m.Ts)
	}
	return nil
}
func (p *ponger) Tick(now int64) []wire.Envelope { return nil }

func measureRTT(a, b DC) float64 {
	src := &ponger{id: "src"}
	dst := &pinger{id: "dst"}
	s := sim.New(sim.Config{
		TickEvery: int64(1e6),
		Links: map[[2]wire.NodeID]sim.Link{
			{"src", "dst"}: linkFor(a, b, wanBW),
			{"dst", "src"}: linkFor(b, a, wanBW),
		},
	})
	s.Add(src)
	s.Add(dst)
	const probes = 5
	for i := 0; i < probes; i++ {
		s.Inject([]wire.Envelope{{From: "src", To: "dst", Msg: &wire.Ping{Seq: uint64(i), Ts: s.Now()}}})
		s.Drain(s.Now() + int64(5e9))
	}
	var sum int64
	for _, r := range src.rtts {
		sum += r
	}
	if len(src.rtts) == 0 {
		return -1
	}
	return float64(sum) / float64(len(src.rtts)) / 1e6
}

// writeWorld runs a pure write workload and returns the world.
func writeWorld(system System, clients, batch, rounds int, place Placement) *World {
	w := BuildWorld(WorldCfg{
		System:         system,
		Clients:        clients,
		Batch:          batch,
		Place:          place,
		WritesPerRound: batch,
		Rounds:         rounds,
		WarmupRounds:   2,
	})
	w.Run(int64(3600e9))
	return w
}

// Fig4aLatency reproduces Figure 4(a): put latency vs batch size,
// 1 client, edge=C, cloud=V.
func Fig4aLatency(scale Scale) *Table {
	t := &Table{
		ID:     "F4a",
		Title:  "Put latency (ms) vs batch size — paper: Wedge 15-20, Cloud-only 78-83, Edge-baseline 109-213",
		Header: []string{"Batch", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(30)
	for _, b := range batchSweep {
		row := []string{fmt.Sprint(b)}
		for _, sys := range AllSystems {
			w := writeWorld(sys, 1, b, rounds, defaultPlace)
			row = append(row, f1(w.AggMetrics().MeanBurstLatency()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig4bThroughput reproduces Figure 4(b): put throughput vs batch size.
func Fig4bThroughput(scale Scale) *Table {
	t := &Table{
		ID:     "F4b",
		Title:  "Put throughput (ops/s) vs batch size — paper: Wedge 6.6K->100K (15x), Cloud-only 18.5x, Edge-baseline ~2x",
		Header: []string{"Batch", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(30)
	for _, b := range batchSweep {
		row := []string{fmt.Sprint(b)}
		for _, sys := range AllSystems {
			w := writeWorld(sys, 1, b, rounds, defaultPlace)
			row = append(row, kops(w.Throughput()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// mixWorld runs a mixed workload with preloaded data.
func mixWorld(system System, clients, writes, reads, rounds, preload int) *World {
	w := BuildWorld(WorldCfg{
		System:         system,
		Clients:        clients,
		Batch:          100,
		Place:          defaultPlace,
		WritesPerRound: writes,
		ReadsPerRound:  reads,
		Rounds:         rounds,
		WarmupRounds:   1,
		Preload:        preload,
	})
	w.Preload()
	w.Run(int64(3600e9 * 4))
	return w
}

// Fig5aWrites reproduces Figure 5(a): all-write throughput vs clients.
func Fig5aWrites(scale Scale) *Table {
	t := &Table{
		ID:     "F5a",
		Title:  "All-write throughput (ops/s) vs clients, B=100 — paper: Wedge +22-30%, Cloud-only +433% (to within 7% of Wedge)",
		Header: []string{"Clients", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(40)
	for _, n := range clientSweep {
		row := []string{fmt.Sprint(n)}
		for _, sys := range AllSystems {
			w := writeWorld(sys, n, 100, rounds, defaultPlace)
			row = append(row, kops(w.Throughput()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5bMixed reproduces Figure 5(b): 50% reads / 50% writes; writes
// buffered, reads interactive.
func Fig5bMixed(scale Scale) *Table {
	t := &Table{
		ID:     "F5b",
		Title:  "Mixed 50/50 throughput (ops/s) vs clients — paper at 9 clients: Wedge 4K, Edge-baseline 1.3K, Cloud-only 270",
		Header: []string{"Clients", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(10)
	preload := scale.preload(100_000)
	for _, n := range clientSweep {
		row := []string{fmt.Sprint(n)}
		for _, sys := range AllSystems {
			w := mixWorld(sys, n, 100, 100, rounds, preload)
			row = append(row, kops(w.Throughput()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5cReads reproduces Figure 5(c): all-read throughput vs clients.
func Fig5cReads(scale Scale) *Table {
	t := &Table{
		ID:     "F5c",
		Title:  "All-read throughput (ops/s) vs clients — paper: Wedge ~ Edge-baseline >> Cloud-only",
		Header: []string{"Clients", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(6)
	preload := scale.preload(100_000)
	for _, n := range clientSweep {
		row := []string{fmt.Sprint(n)}
		for _, sys := range AllSystems {
			w := mixWorld(sys, n, 0, 100, rounds, preload)
			row = append(row, kops(w.Throughput()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6Phases reproduces Figure 6: cumulative Phase I vs Phase II commits
// over time for batch sizes 100, 500, 1000 (4000 batches at full scale).
func Fig6Phases(scale Scale) *Table {
	t := &Table{
		ID:     "F6",
		Title:  "Phase I vs Phase II commit progress — paper: P1 finishes ~60s for all B; P2 lags at B>=500",
		Header: []string{"Batch", "Batches", "P1 done (s)", "P2 done (s)", "P2/P1 lag"},
	}
	batches := 4000 / int(scale)
	if batches < 200 {
		batches = 200
	}
	for _, b := range []int{100, 500, 1000} {
		p1, p2 := runPhases(b, batches)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(b), fmt.Sprint(batches),
			f1(float64(p1) / 1e9), f1(float64(p2) / 1e9),
			fmt.Sprintf("%.2fx", float64(p2)/float64(p1)),
		})
	}
	t.Notes = append(t.Notes,
		"P1/P2 done = virtual time at which the last batch reached that phase")
	return t
}

// runPhases runs one Figure 6 series and returns the virtual times at
// which the final batch reached Phase I and Phase II.
func runPhases(batch, batches int) (p1done, p2done int64) {
	w := BuildWorld(WorldCfg{
		System:         Wedge,
		Clients:        1,
		Batch:          batch,
		Place:          defaultPlace,
		WritesPerRound: batch,
		Rounds:         batches,
		WarmupRounds:   0,
	})
	var p1, p2 int
	cc := w.WedgeClients[0]
	cc.OnPhaseI = func(op *clientOp) {
		p1++
		if p1 == batches*batch {
			p1done = op.PhaseIAt
		}
	}
	cc.OnPhaseII = func(op *clientOp) {
		p2++
		if p2 == batches*batch {
			p2done = op.PhaseIIAt
		}
	}
	w.Run(int64(3600e9 * 8))
	// Let outstanding Phase II certifications finish.
	w.Sim.RunWhile(func() bool { return p2 < batches*batch }, w.Sim.Now()+int64(3600e9*8))
	return p1done, p2done
}

// Fig7aCloudLoc reproduces Figure 7(a): put latency while varying the
// cloud's datacenter, client and edge fixed in California.
func Fig7aCloudLoc(scale Scale) *Table {
	t := &Table{
		ID:     "F7a",
		Title:  "Put latency (ms) vs cloud DC (client+edge=C) — paper: Wedge 15-17 flat, Cloud-only 37-247, Edge-baseline 59-321",
		Header: []string{"Cloud DC", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(20)
	for _, dc := range []DC{Oregon, Virginia, Ireland, Mumbai} {
		place := Placement{Client: California, Edge: California, Cloud: dc}
		row := []string{dc.String()}
		for _, sys := range AllSystems {
			w := writeWorld(sys, 1, 100, rounds, place)
			row = append(row, f1(w.AggMetrics().MeanBurstLatency()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7bEdgeLoc reproduces Figure 7(b): put latency while varying the
// edge's datacenter, client in California, cloud in Mumbai.
func Fig7bEdgeLoc(scale Scale) *Table {
	t := &Table{
		ID:     "F7b",
		Title:  "Put latency (ms) vs edge DC (client=C, cloud=M) — paper: Wedge 17-247 tracks edge RTT, Cloud-only flat, Edge-baseline similar except edge=M",
		Header: []string{"Edge DC", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(20)
	for _, dc := range AllDCs {
		place := Placement{Client: California, Edge: dc, Cloud: Mumbai}
		row := []string{dc.String()}
		for _, sys := range AllSystems {
			w := writeWorld(sys, 1, 100, rounds, place)
			row = append(row, f1(w.AggMetrics().MeanBurstLatency()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SecVIEDataset reproduces Section VI-E: write latency vs dataset size.
// The paper sweeps 100K..100M keys and sees no significant effect; 100M
// in-memory keys exceed this host, so we sweep 100K..10M (DESIGN.md §3).
func SecVIEDataset(scale Scale) *Table {
	t := &Table{
		ID:     "DS1",
		Title:  "Put latency (ms) vs key-space size — paper: Wedge 15-16, Edge-baseline 88-95, Cloud-only 78-79 (flat)",
		Header: []string{"Keys", "WedgeChain", "Cloud-only", "Edge-baseline"},
	}
	rounds := scale.rounds(20)
	sizes := []int{100_000, 1_000_000, 10_000_000}
	if scale != Full {
		sizes = []int{100_000, 1_000_000}
	}
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for _, sys := range AllSystems {
			w := BuildWorld(WorldCfg{
				System:         sys,
				Clients:        1,
				Batch:          100,
				KeySpace:       n,
				Place:          defaultPlace,
				WritesPerRound: 100,
				Rounds:         rounds,
				WarmupRounds:   2,
			})
			w.Run(int64(3600e9))
			row = append(row, f1(w.AggMetrics().MeanBurstLatency()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "write-path cost is independent of dataset size by construction; see EXPERIMENTS.md")
	return t
}

// AblationDataFree (A1) quantifies data-free certification: edge-cloud
// bytes and Phase II completion with digests only vs full block bodies.
func AblationDataFree(scale Scale) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: data-free vs full-data certification (B=1000)",
		Header: []string{"Mode", "Edge->cloud bytes/batch", "P2 done (s)", "Mean put latency (ms)"},
	}
	batches := scale.rounds(200)
	for _, full := range []bool{false, true} {
		w := BuildWorld(WorldCfg{
			System:         Wedge,
			Clients:        1,
			Batch:          1000,
			Place:          defaultPlace,
			WritesPerRound: 1000,
			Rounds:         batches,
			WarmupRounds:   0,
			FullDataCert:   full,
		})
		var p2 int
		var p2done int64
		cc := w.WedgeClients[0]
		total := batches * 1000
		cc.OnPhaseII = func(op *clientOp) {
			p2++
			if p2 == total {
				p2done = op.PhaseIIAt
			}
		}
		w.Run(int64(3600e9 * 4))
		w.Sim.RunWhile(func() bool { return p2 < total }, w.Sim.Now()+int64(3600e9*4))
		mode := "data-free (digests)"
		if full {
			mode = "full-data (blocks)"
		}
		t.Rows = append(t.Rows, []string{
			mode,
			fmt.Sprint(w.EdgeCloudBytes() / uint64(batches)),
			f1(float64(p2done) / 1e9),
			f1(w.AggMetrics().MeanBurstLatency()),
		})
	}
	return t
}

// AblationGossip (A2) sweeps the gossip period against omission-attack
// detection latency and gossip overhead.
func AblationGossip(scale Scale) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: gossip period vs omission detection",
		Header: []string{"Gossip period (ms)", "Detection latency (ms)", "Gossip msgs"},
	}
	for _, period := range []int64{50e6, 200e6, 1000e6} {
		det, msgs := runOmission(period)
		t.Rows = append(t.Rows, []string{
			f1(float64(period) / 1e6),
			f1(float64(det) / 1e6),
			fmt.Sprint(msgs),
		})
	}
	t.Notes = append(t.Notes, "detection latency = read denial to guilty verdict at the victim")
	return t
}

// AblationBaselineIndex (A3) compares the Edge-baseline's index
// maintenance policy: paper-style mLSM thresholds vs eager per-batch
// compaction approximating vanilla Merkle tree maintenance.
func AblationBaselineIndex(scale Scale) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: Edge-baseline index policy (paper: index choice had no significant effect)",
		Header: []string{"Index policy", "Mean put latency (ms)", "Cloud->edge bytes/batch"},
	}
	rounds := scale.rounds(30)
	for _, eager := range []bool{false, true} {
		cfg := WorldCfg{
			System:         EdgeBase,
			Clients:        1,
			Batch:          100,
			Place:          defaultPlace,
			WritesPerRound: 100,
			Rounds:         rounds,
			WarmupRounds:   2,
		}
		if eager {
			cfg.L0Threshold = 1
		}
		w := BuildWorld(cfg)
		w.Run(int64(3600e9))
		name := "mLSM (thresholds 10/10/100/1000)"
		if eager {
			name = "eager rebuild (vanilla-Merkle-like)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			f1(w.AggMetrics().MeanBurstLatency()),
			fmt.Sprint(w.EdgeCloudBytes() / uint64(rounds+2)),
		})
	}
	return t
}

// AblationFreshness (A4) sweeps the client freshness window against a
// frozen (stale-snapshot) edge.
func AblationFreshness(scale Scale) *Table {
	t := &Table{
		ID:     "A4",
		Title:  "Ablation: freshness window vs stale-snapshot edge",
		Header: []string{"Window (ms)", "Stale gets rejected", "Gets accepted"},
	}
	for _, window := range []int64{100e6, 500e6, 2000e6} {
		rejected, accepted := runFreshness(window)
		t.Rows = append(t.Rows, []string{
			f1(float64(window) / 1e6),
			fmt.Sprint(rejected),
			fmt.Sprint(accepted),
		})
	}
	t.Notes = append(t.Notes, "frozen edge serves a validly signed snapshot ~1s old; tighter windows reject it")
	return t
}

// Experiments is the registry mapping experiment ids to runners.
var Experiments = []struct {
	ID  string
	Fn  func(Scale) *Table
	Doc string
}{
	{"T1", Table1RTT, "Table I: datacenter RTT matrix"},
	{"F4a", Fig4aLatency, "Figure 4(a): put latency vs batch size"},
	{"F4b", Fig4bThroughput, "Figure 4(b): put throughput vs batch size"},
	{"F5a", Fig5aWrites, "Figure 5(a): all-write throughput vs clients"},
	{"F5b", Fig5bMixed, "Figure 5(b): mixed 50/50 throughput vs clients"},
	{"F5c", Fig5cReads, "Figure 5(c): all-read throughput vs clients"},
	{"F5d", Fig5dReadPath, "Figure 5(d): best-case read latency and verification overhead (measured)"},
	{"F6", Fig6Phases, "Figure 6: Phase I vs Phase II commit rates"},
	{"F7a", Fig7aCloudLoc, "Figure 7(a): latency vs cloud location"},
	{"F7b", Fig7bEdgeLoc, "Figure 7(b): latency vs edge location"},
	{"DS1", SecVIEDataset, "Section VI-E: dataset size sweep"},
	{"E1", EvidencePruning, "Read evidence pruning: bytes/read and throughput vs L0 window, pruned vs full"},
	{"S1", ShardScaling, "Shard scaling: put throughput vs edge count"},
	{"R1", ReadScanBench, "Verified range scans: latency/row throughput vs range width vs shard count"},
	{"P1", CryptoPipeline, "Crypto pipeline: wall-clock put hot path, serial vs pipelined"},
	{"P2", BlockAckSizeSweep, "Block-ack signature cost vs block size (digest vs legacy body signing)"},
	{"D1", DurableSyncSweep, "Durable put path: group-commit (SyncEvery) fsync-amortization sweep"},
	{"AV1", AvailabilityFailover, "Availability: 3-replica shard through killed-leader / convicted-follower transitions"},
	{"CH1", ChaosSoak, "Chaos soak: seeded drop/dup/delay + leader partition, healing cost and invariants"},
	{"C1", FrontDoor, "Front door: session multiplexing, admission control, light-client sampling"},
	{"OB1", Observability, "Observability: instrumentation overhead on the put hot path, trust-lag p50/p99 clean vs chaos"},
	{"CL1", CertScale, "Certification at scale: batched certificates, verdict cache under dispute flood, auditor-on trust lag"},
	{"A1", AblationDataFree, "Ablation: data-free certification"},
	{"A2", AblationGossip, "Ablation: gossip period vs omission detection"},
	{"A3", AblationBaselineIndex, "Ablation: Edge-baseline index policy"},
	{"A4", AblationFreshness, "Ablation: freshness window"},
}

// Lookup finds an experiment by id.
func Lookup(id string) (func(Scale) *Table, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Fn, true
		}
	}
	return nil, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, len(Experiments))
	for i, e := range Experiments {
		out[i] = e.ID
	}
	return out
}
