package bench

import (
	"fmt"
	"time"

	wedge "wedgechain"
)

// AvailabilityFailover (AV1) measures a 3-replica shard's write
// availability across leadership transitions, wall-clock over the real
// concurrent transport (the façade cluster; safe to import here because
// the façade never imports bench). Arm one kills an honest leader
// mid-stream: the cloud's lease expires, a follower is promoted, and the
// closed-loop writer resumes after a bounded stall with zero failed
// operations. Arm two plants a stale-serving fault on the follower that
// will be promoted: after the same crash-driven transfer it hides part of
// the certified history, a gossip-contradicted read denial convicts it
// end to end, and a second transfer lands on the remaining honest
// replica — writes keep completing throughout.
func AvailabilityFailover(scale Scale) *Table {
	t := &Table{
		ID:     "AV1",
		Title:  "Availability: 3-replica shard across killed-leader transitions (wall-clock)",
		Header: []string{"Scenario", "Writes", "Failed", "Stall (ms)", "Before (ops/s)", "After (ops/s)", "Transfers", "Convicted"},
	}
	writes := scale.rounds(60)
	if writes < 12 {
		writes = 12
	}
	for _, stale := range []bool{false, true} {
		row, err := runFailoverArm(writes, stale)
		if err != nil {
			row = []string{failoverScenario(stale), "-", "-", "-", "-", "-", "-", "error: " + err.Error()}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"closed-loop writer, Phase II (certified) completion per write; stall = longest gap between consecutive completions from the kill onward",
		"no write ever fails: in-flight operations are re-sent to the promoted replica on the cloud-signed transfer and deduplicated by (client, seq)",
		"arm 2: the promoted follower denies a certified, gossip-covered block; the omission dispute convicts it (second transfer), after which the hidden block reads back Phase II from the survivor",
	)
	return t
}

func failoverScenario(stale bool) string {
	if stale {
		return "stale-serving follower promoted"
	}
	return "honest leader killed"
}

func runFailoverArm(writes int, stale bool) ([]string, error) {
	cfg := wedge.Config{
		Edges:            1,
		ReplicasPerShard: 3,
		BatchSize:        4,
		FlushEvery:       5 * time.Millisecond,
		LeaseTimeout:     300 * time.Millisecond,
		GossipEvery:      100 * time.Millisecond,
	}
	if stale {
		cfg.EdgeFaults = map[wedge.NodeID]*wedge.Fault{
			wedge.FollowerID(1, 1): {PromoteStale: true, PromoteStaleFrom: 2},
		}
	}
	cluster, err := wedge.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	w, err := cluster.NewClient("av1-writer", "")
	if err != nil {
		return nil, err
	}
	reader, err := cluster.NewClient("av1-reader", "")
	if err != nil {
		return nil, err
	}

	var done []time.Time
	failed := 0
	write := func(i int) {
		rc, err := w.Add([]byte(fmt.Sprintf("av1-%d", i)))
		if err != nil {
			failed++
			return
		}
		if err := rc.WaitPhaseII(15 * time.Second); err != nil {
			failed++
			return
		}
		done = append(done, time.Now())
	}

	half := writes / 2
	start := time.Now()
	for i := 0; i < half; i++ {
		write(i)
	}
	killAt := time.Now()
	if err := cluster.KillEdge(wedge.EdgeID(1)); err != nil {
		return nil, err
	}
	for i := half; i < writes; i++ {
		write(i)
	}
	end := time.Now()

	before := float64(half) / killAt.Sub(start).Seconds()
	// The stall is the longest silence from the kill onward; the recovery
	// rate is measured from the completion that ends it.
	stall := time.Duration(0)
	afterStart := killAt
	prev := killAt
	remaining := 0
	for _, ts := range done {
		if ts.Before(killAt) {
			continue
		}
		if gap := ts.Sub(prev); gap > stall {
			stall = gap
			afterStart = ts
			remaining = 0
		}
		prev = ts
		remaining++
	}
	after := 0.0
	if d := end.Sub(afterStart).Seconds(); d > 0 {
		after = float64(remaining) / d
	}

	convicted := "-"
	if stale {
		// The promoted follower hides block 2 even though the cloud
		// certified and gossips it: the signed denial is a provable
		// omission.
		if _, _, rerr := reader.Read(2, 10*time.Second); rerr == nil {
			return nil, fmt.Errorf("stale follower served the block it was told to hide")
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			_, banned := cluster.Punished(wedge.FollowerID(1, 1))
			if banned && cluster.ChainLeader(wedge.EdgeID(1)) == wedge.FollowerID(1, 2) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, banned := cluster.Punished(wedge.FollowerID(1, 1)); !banned {
			return nil, fmt.Errorf("stale-serving follower was not convicted")
		}
		convicted = string(wedge.FollowerID(1, 1))
		time.Sleep(250 * time.Millisecond) // let the second transfer reach the clients
		for i := writes; i < writes+6; i++ {
			write(i)
		}
		writes += 6
		if _, phase, rerr := reader.Read(2, 10*time.Second); rerr != nil || phase != wedge.PhaseII {
			return nil, fmt.Errorf("hidden block did not recover on the surviving replica (phase=%v err=%v)", phase, rerr)
		}
	}

	return []string{
		failoverScenario(stale),
		fmt.Sprint(writes),
		fmt.Sprint(failed),
		f1(float64(stall.Nanoseconds()) / 1e6),
		f1(before),
		f1(after),
		fmt.Sprint(cluster.ChainEpoch(wedge.EdgeID(1))),
		convicted,
	}, nil
}
