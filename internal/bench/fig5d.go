package bench

import (
	"fmt"
	"time"

	"wedgechain/internal/client"
	"wedgechain/internal/workload"
)

// Fig5dReadPath reproduces Figure 5(d): the best-case read latency
// measured directly at the serving node, and the client-side verification
// overhead. Unlike the other experiments this one measures real wall-clock
// time on this host — the figure is about CPU cost (hashing, signatures,
// proof checking), not WAN structure, so it must not be simulated.
//
// Paper: WedgeChain/Edge-baseline 0.71 ms total of which 0.19 ms is client
// verification; Cloud-only 0.5 ms with no verification.
func Fig5dReadPath(scale Scale) *Table {
	t := &Table{
		ID:     "F5d",
		Title:  "Best-case read path (wall-clock, this host) — paper: Wedge/EB 0.71ms total, 0.19ms verify; Cloud-only 0.50ms",
		Header: []string{"System", "Serve (ms)", "Verify (ms)", "Total (ms)"},
	}
	iters := 2000 / int(scale)
	if iters < 100 {
		iters = 100
	}

	// --- WedgeChain / Edge-baseline path: proof assembly + verification.
	// Build real edge state: preloaded keys, certified blocks, merged
	// levels — over a zero-latency local world.
	w := BuildWorld(WorldCfg{
		System:         Wedge,
		Clients:        1,
		Batch:          100,
		Preload:        5000,
		Place:          Placement{Client: California, Edge: California, Cloud: California},
		Rounds:         3,
		WritesPerRound: 100,
	})
	w.Preload()

	cc := w.WedgeClients[0]
	edgeNode := w.EdgeNode
	keys := make([][]byte, iters)
	for i := range keys {
		keys[i] = workload.KeyName(i % 5000)
	}

	var serveDur, verifyDur time.Duration
	now := w.Sim.Now()
	for i, key := range keys {
		start := time.Now()
		resp := edgeNode.AssembleGet(key, uint64(i))
		serveDur += time.Since(start)

		start = time.Now()
		if err := cc.VerifyGetResponse(now, key, resp); err != nil {
			panic(fmt.Sprintf("bench: F5d verification failed: %v", err))
		}
		verifyDur += time.Since(start)
	}
	serveMS := float64(serveDur.Nanoseconds()) / float64(iters) / 1e6
	verifyMS := float64(verifyDur.Nanoseconds()) / float64(iters) / 1e6
	t.Rows = append(t.Rows, []string{
		"WedgeChain / Edge-baseline", f2(serveMS), f2(verifyMS), f2(serveMS + verifyMS),
	})

	// --- Cloud-only path: trusted map lookup, no proofs.
	co := buildCloudOnlyLocal(5000)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, ok := co.GetLocal(workload.KeyName(i % 5000)); !ok {
			panic("bench: F5d cloud-only key missing")
		}
	}
	coMS := float64(time.Since(start).Nanoseconds()) / float64(iters) / 1e6
	t.Rows = append(t.Rows, []string{"Cloud-only", f2(coMS), "0.00", f2(coMS)})

	t.Notes = append(t.Notes,
		"measured with real SHA-256/Ed25519 on this host; absolute values depend on the CPU, the ordering matches the paper")
	return t
}

// clientOp aliases the protocol client's operation type for callbacks.
type clientOp = client.Op
