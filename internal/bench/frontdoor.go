package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	wedge "wedgechain"
	"wedgechain/internal/workload"
)

// FrontDoor (C1) measures the million-session front door — wall-clock over
// the façade's real concurrent transport. Arm one is the per-goroutine
// baseline: every session owns a transport goroutine, the pre-refactor
// shape. Arm two multiplexes 10-25x as many sessions over a handful of
// session hubs: goroutine growth must stay flat (hubs, not sessions) while
// every session still commits its write. Arm three drives writers into an
// edge with a tiny uncertified cap over a slow cloud link: admission
// control sheds load with signed overload signals, and the invariant is
// that every write the edge *acked* still certifies — shedding loses
// nothing that was promised. Arms four and five compare a full-verification
// reader against a light client (1-in-16 sampled audits) over a Zipf key
// population: same verified-or-convicted guarantee in expectation, with the
// structural verification CPU paid only on the sample.
func FrontDoor(scale Scale) *Table {
	t := &Table{
		ID:     "C1",
		Title:  "Front door: session multiplexing, admission control, light-client sampling (wall-clock)",
		Header: []string{"Scenario", "Sessions", "Goroutines+", "Ops", "ops/s", "FullVerify", "Skips", "VerifyMs", "Shed", "Lost"},
	}
	base := scale.rounds(400)
	mux := base * 25
	shedWrites := scale.rounds(240)
	gets := scale.rounds(2000)
	preload := scale.preload(2000)

	type arm struct {
		name string
		run  func() ([]string, error)
	}
	for _, a := range []arm{
		{"goroutine per session", func() ([]string, error) { return runSessionArm(base, 0) }},
		{"hub mux 25x sessions", func() ([]string, error) { return runSessionArm(mux, 8) }},
		{"admission control shed", func() ([]string, error) { return runShedArm(shedWrites) }},
		{"full-verify reader", func() ([]string, error) { return runGetArm(false, gets, preload) }},
		{"light reader (1/16)", func() ([]string, error) { return runGetArm(true, gets, preload) }},
	} {
		row, err := a.run()
		if err != nil {
			row = []string{a.name, "-", "-", "-", "-", "-", "-", "-", "-", "error: " + err.Error()}
		} else {
			row = append([]string{a.name}, row...)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Goroutines+ is runtime.NumGoroutine growth from creating the sessions: ~1 per session in the baseline, ~hub count under the mux",
		"shed arm: MaxUncertified=2 over a 5ms cloud link; Shed counts signed overload rejections, Lost counts acked writes that failed to certify (invariant: 0)",
		"reader arms serve the same Zipf(1.1) key population; VerifyMs is wall-clock spent inside structural get verification (client Stats.VerifyNanos)",
		"light reader trusts the gossiped certified frontier and fully verifies a seeded 1-in-16 sample; a sampled lie convicts exactly as in full mode",
	)
	return t
}

// runSessionArm creates `sessions` client sessions — each with its own
// transport goroutine when hubs == 0, multiplexed over `hubs` session hubs
// otherwise — and commits one put per session through a bounded worker
// pool.
func runSessionArm(sessions, hubs int) ([]string, error) {
	cluster, err := wedge.NewCluster(wedge.Config{
		Edges:      1,
		BatchSize:  100,
		FlushEvery: 2 * time.Millisecond,
		NoGossip:   true,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var hubPool []*wedge.SessionHub
	for h := 0; h < hubs; h++ {
		hub, err := cluster.NewSessionHub(fmt.Sprintf("c1-hub-%d", h))
		if err != nil {
			return nil, err
		}
		hubPool = append(hubPool, hub)
	}
	gBefore := runtime.NumGoroutine()
	clients := make([]*wedge.Client, sessions)
	for i := range clients {
		name := fmt.Sprintf("c1-s%d", i)
		var opts wedge.ClientOptions
		if hubs > 0 {
			opts.Hub = hubPool[i%hubs]
		}
		if clients[i], err = cluster.NewClientWith(name, "", opts); err != nil {
			return nil, err
		}
	}
	gDelta := runtime.NumGoroutine() - gBefore
	if hubs > 0 && gDelta > sessions/10 {
		return nil, fmt.Errorf("session mux leaked goroutines: %d sessions grew goroutines by %d", sessions, gDelta)
	}

	start := time.Now()
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= sessions {
					return
				}
				key := workload.KeyName(i)
				if _, err := clients[i].Put(key, key); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("%d of %d session puts failed", n, sessions)
	}
	return []string{
		fmt.Sprint(sessions),
		fmt.Sprint(gDelta),
		fmt.Sprint(sessions),
		f1(float64(sessions) / elapsed.Seconds()),
		"-", "-", "-", "-", "0",
	}, nil
}

// runShedArm hammers an edge whose uncertified backlog is capped at 2
// blocks while certification crawls over an injected 5ms cloud link. The
// edge sheds with signed overload signals; writers absorb them with
// app-level retries. Every write that ever received a Phase I receipt must
// still certify — load shedding may reject, never lose.
func runShedArm(writes int) ([]string, error) {
	cloudID := wedge.NodeID("cloud")
	cluster, err := wedge.NewCluster(wedge.Config{
		Edges:          1,
		BatchSize:      1,
		FlushEvery:     time.Millisecond,
		NoGossip:       true,
		MaxUncertified: 2,
		RetryEvery:     20 * time.Millisecond,
		MaxAttempts:    6,
		Latency: func(from, to wedge.NodeID) time.Duration {
			if from == cloudID || to == cloudID {
				return 5 * time.Millisecond
			}
			return 0
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	hub, err := cluster.NewSessionHub("c1-shed-hub")
	if err != nil {
		return nil, err
	}
	const writers = 16
	clients := make([]*wedge.Client, writers)
	for i := range clients {
		if clients[i], err = cluster.NewClientWith(fmt.Sprintf("c1-w%d", i), "", wedge.ClientOptions{Hub: hub}); err != nil {
			return nil, err
		}
	}

	var mu sync.Mutex
	var acked []*wedge.Receipt
	var shed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < writes; i += writers {
				key := workload.KeyName(i)
				for attempt := 0; ; attempt++ {
					rc, err := clients[w].Put(key, key)
					if err == nil {
						mu.Lock()
						acked = append(acked, rc)
						mu.Unlock()
						break
					}
					if !errors.Is(err, wedge.ErrOverloaded) && !errors.Is(err, wedge.ErrUnavailable) {
						errs <- fmt.Errorf("write %d: %w", i, err)
						return
					}
					shed.Add(1)
					if attempt == 19 {
						errs <- fmt.Errorf("write %d still shed after %d app retries", i, attempt+1)
						return
					}
					time.Sleep(25 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	lost := 0
	for _, rc := range acked {
		if err := rc.WaitPhaseII(30 * time.Second); err != nil {
			lost++
		}
	}
	if lost > 0 {
		return nil, fmt.Errorf("%d acked writes never certified", lost)
	}
	return []string{
		fmt.Sprint(writers),
		"-",
		fmt.Sprint(len(acked)),
		f1(float64(len(acked)) / elapsed.Seconds()),
		"-", "-", "-",
		fmt.Sprint(shed.Load()),
		"0",
	}, nil
}

// runGetArm preloads a key population, then serves Zipf-distributed
// verified gets from one reader — full verification or light-client
// sampling — and reports throughput plus the verification CPU actually
// burned.
func runGetArm(light bool, gets, preload int) ([]string, error) {
	cluster, err := wedge.NewCluster(wedge.Config{
		Edges:       1,
		BatchSize:   100,
		FlushEvery:  2 * time.Millisecond,
		GossipEvery: 50 * time.Millisecond,
		RetryEvery:  100 * time.Millisecond,
		MaxAttempts: 4,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	loader, err := cluster.NewClient("c1-loader", "")
	if err != nil {
		return nil, err
	}
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= preload {
					return
				}
				key := workload.KeyName(i)
				rc, err := loader.Put(key, key)
				if err == nil {
					err = rc.WaitPhaseII(20 * time.Second)
				}
				if err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("%d of %d preload puts failed", n, preload)
	}

	reader, err := cluster.NewClientWith("c1-reader", "", wedge.ClientOptions{Light: light, Sample: 16, Seed: 7})
	if err != nil {
		return nil, err
	}
	// Let a gossip round land so the light reader holds a certified
	// frontier; without one it falls back to full verification.
	time.Sleep(200 * time.Millisecond)

	z := workload.NewZipfKeys(preload, 1.1, 99)
	start := time.Now()
	for i := 0; i < gets; i++ {
		_, found, _, err := reader.Get(z.Next())
		if err != nil {
			return nil, fmt.Errorf("get %d: %w", i, err)
		}
		if !found {
			return nil, fmt.Errorf("get %d: preloaded key missing", i)
		}
	}
	elapsed := time.Since(start)

	var full, skips, nanos uint64
	byEdge, err := reader.Stats()
	if err != nil {
		return nil, err
	}
	for _, cs := range byEdge {
		full += cs.FullVerifies
		skips += cs.SampledSkips
		nanos += cs.VerifyNanos
	}
	if light && skips == 0 {
		return nil, fmt.Errorf("light reader never skipped: gossip frontier missing?")
	}
	return []string{
		"1",
		"-",
		fmt.Sprint(gets),
		f1(float64(gets) / elapsed.Seconds()),
		fmt.Sprint(full),
		fmt.Sprint(skips),
		f1(float64(nanos) / 1e6),
		"-", "0",
	}, nil
}
