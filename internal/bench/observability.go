package bench

import (
	"fmt"
	"time"

	wedge "wedgechain"
	"wedgechain/internal/obs"
)

// Observability (OB1) measures what the trust-lag telemetry itself costs
// and reports the headline SLO it produces.
//
// Arm one re-runs the P1 pipelined put hot path twice — registry off
// (nil: counters on throwaway atomics, no histograms, no clock reads)
// and registry on (every serve/certify/trust-lag histogram live) — and
// reports the throughput delta. The hot path is allocation-free by
// construction (see BenchmarkHistogramObserve), so the overhead must
// stay within run-to-run noise (~5%).
//
// Arm two runs a façade cluster wall-clock and reads the
// wedge_trust_lag_seconds histogram off Cluster.Metrics(): the
// client-observed Phase I → Phase II lag, clean versus under seeded
// chaos noise (CH1's 3% drop / 5% dup / ≤10ms delay mix, seed 42).
// Lazy trust's pitch is that faults move the trust lag, not the ack
// latency — this is the experiment that shows the lag moving.
func Observability(scale Scale) *Table {
	t := &Table{
		ID:      "OB1",
		Title:   "Observability: instrumentation overhead and the trust-lag SLO",
		Header:  []string{"Arm", "Ops", "Throughput (Kops/s)", "Overhead", "trust-lag p50 (ms)", "trust-lag p99 (ms)"},
		Metrics: map[string]float64{},
	}

	// Arm one: P1's pipelined hot path, registry off vs on.
	total := 60_000 / int(scale)
	if total < 10_000 {
		total = 10_000
	}
	total -= total % pipeBatch
	w := buildPipelineWorkload(total)
	// Best of two runs per mode: the hot path is deterministic, so the
	// faster run is the less-perturbed one and the delta isolates the
	// instrumentation from scheduler noise.
	best := func(reg *obs.Registry) pipelineResult {
		r := runPipeline(w, total, true, reg)
		if again := runPipeline(w, total, true, reg); again.throughput > r.throughput {
			r = again
		}
		return r
	}
	off := best(nil)
	reg := obs.NewRegistry()
	on := best(reg)
	overhead := (off.throughput - on.throughput) / off.throughput
	t.Rows = append(t.Rows,
		[]string{"P1 put hot path, registry off", fmt.Sprint(total), f1(off.throughput / 1e3), "-", "-", "-"},
		[]string{"P1 put hot path, registry on", fmt.Sprint(total), f1(on.throughput / 1e3),
			fmt.Sprintf("%.1f%%", overhead*100), "-", "-"})
	t.Metrics["p1_registry_off_ops_per_sec"] = off.throughput
	t.Metrics["p1_registry_on_ops_per_sec"] = on.throughput
	t.Metrics["p1_overhead_frac"] = overhead
	// Sanity: the instrumented edge actually fed the registry.
	t.Metrics["p1_on_trust_lag_count"] = obsCount(reg, "wedge_trust_lag_seconds")

	// Arm two: client-observed trust lag, clean vs chaos noise.
	writes := scale.rounds(60)
	if writes < 12 {
		writes = 12
	}
	for _, noisy := range []bool{false, true} {
		arm := "cluster trust lag, clean"
		key := "clean"
		if noisy {
			arm = "cluster trust lag, chaos noise"
			key = "noise"
		}
		row, p50, p99, n, err := runTrustLagArm(writes, noisy)
		if err != nil {
			t.Rows = append(t.Rows, []string{arm, "-", "-", "-", "-", "error: " + err.Error()})
			continue
		}
		t.Rows = append(t.Rows, append([]string{arm}, row...))
		t.Metrics["trust_lag_p50_ms_"+key] = p50 * 1e3
		t.Metrics["trust_lag_p99_ms_"+key] = p99 * 1e3
		t.Metrics["trust_lag_samples_"+key] = n
	}
	t.Notes = append(t.Notes,
		"arm one replays P1's pre-signed pipelined traffic; 'registry on' adds every histogram the edge and cloud register (acceptance: within ~5%, i.e. run-to-run noise)",
		"arm two reads the wedge_trust_lag_seconds histogram off Cluster.Metrics() (edge and client stages merged) on CH1's 3-replica shard; noise arm injects 3% drop / 5% dup / <=10ms delay on every link (seed 42)",
	)
	return t
}

// obsCount sums a histogram family's sample count across children.
func obsCount(reg *obs.Registry, name string) float64 {
	total := 0.0
	for _, s := range reg.Samples() {
		if s.Name == name+"_count" {
			total += s.Value
		}
	}
	return total
}

// runTrustLagArm drives writes through a façade cluster (wall-clock) and
// reads the trust-lag histogram from the cluster registry.
func runTrustLagArm(writes int, noisy bool) (row []string, p50, p99, samples float64, err error) {
	var net *wedge.ChaosNet
	if noisy {
		net = wedge.NewChaos(42)
		net.Add(wedge.ChaosRule{Faults: wedge.LinkFaults{
			Drop:     0.03,
			Dup:      0.05,
			DelayMax: (10 * time.Millisecond).Nanoseconds(),
		}})
	}
	// ReplicasPerShard: 3 matches CH1's shard shape and — load-bearing
	// under chaos — makes the edge "grouped", which turns on its default
	// 1s certification re-submit: without it a single dropped certify
	// frame stalls Phase II forever on a drop-prone link.
	cluster, err := wedge.NewCluster(wedge.Config{
		Edges:            1,
		ReplicasPerShard: 3,
		BatchSize:        4,
		FlushEvery:       5 * time.Millisecond,
		GossipEvery:      100 * time.Millisecond,
		RetryEvery:       100 * time.Millisecond,
		MaxAttempts:      8,
		Chaos:            net,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer cluster.Close()
	c, err := cluster.NewClient("ob1-writer", "")
	if err != nil {
		return nil, 0, 0, 0, err
	}
	for i := 0; i < writes; i++ {
		rc, err := c.Add([]byte(fmt.Sprintf("ob1-%d", i)))
		if err == nil {
			err = rc.WaitPhaseII(20 * time.Second)
		}
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("write %d: %w", i, err)
		}
	}
	reg := cluster.Metrics()
	p50 = reg.Quantile("wedge_trust_lag_seconds", 0.50)
	p99 = reg.Quantile("wedge_trust_lag_seconds", 0.99)
	samples = obsCount(reg, "wedge_trust_lag_seconds")
	if samples == 0 {
		return nil, 0, 0, 0, fmt.Errorf("no trust-lag samples recorded")
	}
	return []string{fmt.Sprint(writes), "-", "-", f2(p50 * 1e3), f2(p99 * 1e3)}, p50, p99, samples, nil
}
