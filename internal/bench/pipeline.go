package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"wedgechain/internal/cloud"
	"wedgechain/internal/edge"
	"wedgechain/internal/obs"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
	"wedgechain/internal/workload"
)

// CryptoPipeline (P1) measures the crypto pipeline's effect on the real
// (wall-clock) single-shard put hot path — unlike the virtual-time
// experiments, this one runs the actual state machines as fast as the
// host allows and reports measured throughput and latency percentiles.
//
// Two configurations process the same put traffic, submitted in the
// paper's batched mode (one PutBatch of B entries per client burst):
//
//   - "serial (pre-pipeline)": the pre-PR hot path — every entry carries
//     its own Ed25519 signature, verified inline on the handler
//     goroutine, and each block cut signs one acknowledgement per
//     (client, kind) responder (edge.Config.SerialCrypto).
//   - "pipelined": session-signed batches (one signature authenticates
//     the whole batch) checked by a wcrypto.VerifyPool in front of the
//     handler, which then does only ring/log work; the block
//     acknowledgement is signed once over the cached 32-byte block digest
//     (size-independent) and shared across all responders.
//
// The cloud node rides along: certification requests and block proofs
// flow exactly as in deployment, so Phase II work is included in both
// configurations. Compaction is disabled (huge L0 threshold) to keep the
// measurement on the write path.
func CryptoPipeline(scale Scale) *Table {
	t := &Table{
		ID: "P1",
		Title: fmt.Sprintf("Crypto pipeline: single-shard put hot path, wall-clock (B=100, %d clients, %d CPUs)",
			pipeClients, runtime.GOMAXPROCS(0)),
		Header: []string{"Mode", "Puts", "Throughput (Kops/s)", "p50 (us)", "p99 (us)", "Speedup"},
	}
	total := 60_000 / int(scale)
	if total < 10_000 {
		total = 10_000
	}
	total -= total % pipeBatch // full blocks only, so every put is acknowledged
	w := buildPipelineWorkload(total)

	var base float64
	for _, pipelined := range []bool{false, true} {
		r := runPipeline(w, total, pipelined, nil)
		if !pipelined {
			base = r.throughput
		}
		mode := "serial (pre-PR: per-entry verify, per-responder full-body sign)"
		if pipelined {
			mode = "pipelined (session batch sig + VerifyPool + shared digest-signed ack)"
		}
		t.Rows = append(t.Rows, []string{
			mode,
			fmt.Sprint(total),
			f1(r.throughput / 1e3),
			f1(r.p50.Seconds() * 1e6),
			f1(r.p99.Seconds() * 1e6),
			fmt.Sprintf("%.2fx", r.throughput/base),
		})
	}
	t.Notes = append(t.Notes,
		"wall-clock measurement on the host CPU; both modes process the same pre-generated put traffic in B-sized bursts, closed loop (one outstanding burst per client)",
		"latency = put submission to Phase I acknowledgement (block cut + persist-free edge)",
	)
	return t
}

const (
	pipeClients = 12
	pipeBatch   = 100
)

// pipeBatchEnv is one pre-built client burst and the submission indices
// of the puts it carries.
type pipeBatchEnv struct {
	env  wire.Envelope
	idxs []int
}

// pipelineWorkload is the shared pre-generated input: identities plus two
// renderings of the same put traffic — per-entry-signed batches for the
// pre-PR serial baseline and session-signed batches for the pipelined
// mode — so signing cost never pollutes the measured window.
type pipelineWorkload struct {
	reg      *wcrypto.Registry
	edgeKey  wcrypto.KeyPair
	cloudKey wcrypto.KeyPair
	serial   []pipeBatchEnv // per-entry signatures (pre-PR wire format)
	session  []pipeBatchEnv // one batch signature per burst
	// index resolves (client, seq) back to the submission index.
	index map[wire.NodeID]map[uint64]int
}

func buildPipelineWorkload(total int) *pipelineWorkload {
	w := &pipelineWorkload{
		reg:      wcrypto.NewRegistry(),
		edgeKey:  wcrypto.DeterministicKey("edge-1"),
		cloudKey: wcrypto.DeterministicKey("cloud"),
		index:    make(map[wire.NodeID]map[uint64]int),
	}
	w.reg.Register("edge-1", w.edgeKey.Pub)
	w.reg.Register("cloud", w.cloudKey.Pub)

	clients := make([]wcrypto.KeyPair, pipeClients)
	seqs := make([]uint64, pipeClients)
	for i := range clients {
		id := wire.NodeID(fmt.Sprintf("c%d", i+1))
		clients[i] = wcrypto.DeterministicKey(id)
		w.reg.Register(id, clients[i].Pub)
		w.index[id] = make(map[uint64]int)
	}

	val := make([]byte, 100)
	for start := 0; start < total; start += pipeBatch {
		ck := clients[(start/pipeBatch)%pipeClients]
		ci := (start / pipeBatch) % pipeClients
		idxs := make([]int, 0, pipeBatch)
		entries := make([]wire.Entry, 0, pipeBatch)
		for i := start; i < start+pipeBatch && i < total; i++ {
			seqs[ci]++
			e := wire.Entry{
				Client: ck.ID,
				Seq:    seqs[ci],
				Key:    workload.KeyName(i),
				Value:  val,
				Ts:     int64(i),
			}
			w.index[ck.ID][e.Seq] = i
			idxs = append(idxs, i)
			entries = append(entries, e)
		}
		// Pre-PR rendering: every entry individually signed.
		signed := make([]wire.Entry, len(entries))
		copy(signed, entries)
		for i := range signed {
			signed[i].Sig = wcrypto.SignMsg(ck, &signed[i])
		}
		w.serial = append(w.serial, pipeBatchEnv{
			env:  wire.Envelope{From: ck.ID, To: "edge-1", Msg: &wire.PutBatch{Entries: signed}},
			idxs: idxs,
		})
		// Pipelined rendering: one session signature per batch.
		sb := &wire.PutBatch{Client: ck.ID, Entries: entries}
		sb.BatchSig = wcrypto.SignMsg(ck, sb)
		w.session = append(w.session, pipeBatchEnv{
			env:  wire.Envelope{From: ck.ID, To: "edge-1", Msg: sb},
			idxs: idxs,
		})
	}
	return w
}

type pipelineResult struct {
	throughput float64
	p50, p99   time.Duration
}

// runPipeline drives one configuration over the workload and reports
// measured throughput and put-to-Phase-I latency percentiles. A non-nil
// metrics registry turns on the nodes' timing histograms — the OB1
// instrumentation-overhead experiment's "on" arm; P1 passes nil.
func runPipeline(w *pipelineWorkload, total int, pipelined bool, metrics *obs.Registry) pipelineResult {
	en := edge.New(edge.Config{
		ID:           "edge-1",
		Cloud:        "cloud",
		BatchSize:    pipeBatch,
		L0Threshold:  1 << 30, // no compaction: isolate the write path
		SerialCrypto: !pipelined,
		Metrics:      metrics,
	}, w.edgeKey, w.reg)
	cn := cloud.New(cloud.Config{ID: "cloud", Metrics: metrics}, w.cloudKey, w.reg)

	batches := w.serial
	if pipelined {
		batches = w.session
	}
	submitted := make([]time.Time, total)
	finished := make([]time.Duration, total)
	remaining := make([]int, (total+pipeBatch-1)/pipeBatch)
	for i := range remaining {
		remaining[i] = pipeBatch
	}
	// Closed loop: each client keeps one burst outstanding, so the
	// latency columns measure service latency, not submission queueing.
	// Tokens are fully built before the run — the sink goroutine only
	// ever reads the map.
	tokens := make(map[wire.NodeID]chan struct{}, pipeClients)
	for i := range batches {
		if tokens[batches[i].env.From] == nil {
			tok := make(chan struct{}, 1)
			tok <- struct{}{}
			tokens[batches[i].env.From] = tok
		}
	}
	acked := 0
	done := make(chan struct{})

	// sink runs single-threaded (the caller in serial mode, the pool's
	// dispatcher in pipelined mode) and owns both state machines.
	var sink func(env wire.Envelope)
	handleOuts := func(outs []wire.Envelope) {
		now := time.Now()
		for _, out := range outs {
			switch m := out.Msg.(type) {
			case *wire.PutResponse:
				for i := range m.Block.Entries {
					ent := &m.Block.Entries[i]
					if ent.Client != out.To {
						continue
					}
					idx := w.index[ent.Client][ent.Seq]
					finished[idx] = now.Sub(submitted[idx])
					acked++
					b := idx / pipeBatch
					if remaining[b]--; remaining[b] == 0 {
						select {
						case tokens[ent.Client] <- struct{}{}:
						default:
						}
					}
				}
			case *wire.BlockCertify:
				proofs := cn.Receive(now.UnixNano(), wire.Envelope{From: out.From, To: "cloud", Msg: m})
				for _, p := range proofs {
					sink(wire.Envelope{From: "cloud", To: "edge-1", Msg: p.Msg})
				}
			}
		}
		if acked >= total {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	}
	sink = func(env wire.Envelope) {
		handleOuts(en.Receive(time.Now().UnixNano(), env))
	}

	submit := func(send func(wire.Envelope)) {
		for i := range batches {
			<-tokens[batches[i].env.From]
			now := time.Now()
			for _, idx := range batches[i].idxs {
				submitted[idx] = now
			}
			send(batches[i].env)
		}
		<-done
	}

	start := time.Now()
	if pipelined {
		pool := wcrypto.NewVerifyPool(w.reg, -1, 0, sink)
		submit(pool.Submit)
		elapsed := time.Since(start)
		pool.Close()
		return summarize(finished, total, elapsed)
	}
	submit(sink)
	return summarize(finished, total, time.Since(start))
}

func summarize(lat []time.Duration, total int, elapsed time.Duration) pipelineResult {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return pipelineResult{
		throughput: float64(total) / elapsed.Seconds(),
		p50:        pct(0.50),
		p99:        pct(0.99),
	}
}
