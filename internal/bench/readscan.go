package bench

import (
	"fmt"
	"math/rand"

	"wedgechain/internal/client"
	"wedgechain/internal/workload"
)

// scanWidths is the R1 x axis: keys per scanned range.
var scanWidths = []int{10, 100, 1000}

// scanShards is the R1 series axis: shard edges the scan scatter-gathers
// across.
var scanShards = []int{1, 2, 4}

// ReadScanBench (R1) measures the verified-scan read workload: a
// preloaded, compacted keyspace served by 1..N shard edges, scanned
// closed-loop with uniformly placed ranges of increasing width. Every
// scan is fully verified — per-shard Merkle range proofs, boundary
// coverage, k-way newest-wins merge — so the numbers price the proof
// machinery, not a trusting read. Wider ranges amortize the fixed
// per-scan cost (request RTT, signature, L0 evidence) over more rows;
// more shards split the proof work but add scatter-gather fan-out, which
// is the trade-off the table exposes.
func ReadScanBench(scale Scale) *Table {
	t := &Table{
		ID:     "R1",
		Title:  "Verified range scans: latency and row throughput vs range width vs shards (1 client, closed loop)",
		Header: []string{"Shards", "Width (keys)", "Mean latency (ms)", "Scans/s", "Rows/s", "Rows/scan"},
	}
	preload := scale.preload(20_000)
	rounds := scale.rounds(60)
	for _, shards := range scanShards {
		for _, width := range scanWidths {
			if width >= preload {
				continue
			}
			mean, scansPerSec, rowsPerSec, rowsPerScan := runScans(shards, preload, width, rounds)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(shards),
				fmt.Sprint(width),
				f1(mean),
				f1(scansPerSec),
				f1(rowsPerSec),
				f1(rowsPerScan),
			})
		}
	}
	t.Notes = append(t.Notes,
		"every scan is verified end-to-end: per-shard Merkle page-range proofs, boundary completeness, newest-wins merge",
		"closed loop, scatter-gather: a scan settles only when every shard's proof verified (Phase II)",
	)
	return t
}

// runScans builds one world, preloads and compacts it, then drives
// closed-loop verified scans through the sharded session, returning mean
// latency (ms), scans/s, rows/s and rows per scan.
func runScans(shards, preload, width, rounds int) (mean, scansPerSec, rowsPerSec, rowsPerScan float64) {
	w := BuildWorld(WorldCfg{
		System:     Wedge,
		Shards:     shards,
		Clients:    1,
		Batch:      100,
		KeySpace:   preload,
		Preload:    preload,
		Place:      defaultPlace,
		Rounds:     1,
		FlushEvery: int64(10e6),
	})
	w.Preload()
	session := w.WedgeSessions[0]
	rng := rand.New(rand.NewSource(42))

	var totalLat int64
	rows := 0
	started := w.Sim.Now()
	for r := 0; r < rounds; r++ {
		lo := rng.Intn(preload - width)
		start := workload.KeyName(lo)
		end := workload.KeyName(lo + width)
		t0 := w.Sim.Now()
		ops, envs := session.Scan(t0, start, end, 0)
		w.Sim.Inject(envs)
		ok := w.Sim.RunWhile(func() bool {
			for _, op := range ops {
				if !op.Done {
					return true
				}
			}
			return false
		}, t0+int64(600e9))
		if !ok {
			panic(fmt.Sprintf("bench: scan stalled (shards=%d width=%d)", shards, width))
		}
		for _, op := range ops {
			if op.Err != nil {
				panic(fmt.Sprintf("bench: scan failed: %v", op.Err))
			}
		}
		rows += len(client.MergeScanResults(ops, 0))
		totalLat += w.Sim.Now() - t0
	}
	elapsed := float64(w.Sim.Now()-started) / 1e9
	mean = float64(totalLat) / float64(rounds) / 1e6
	scansPerSec = float64(rounds) / elapsed
	rowsPerSec = float64(rows) / elapsed
	rowsPerScan = float64(rows) / float64(rounds)
	return mean, scansPerSec, rowsPerSec, rowsPerScan
}
