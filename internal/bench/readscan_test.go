package bench

import (
	"testing"

	"wedgechain/internal/client"
	"wedgechain/internal/workload"
)

// TestVerifiedScansOverPreloadedWorld pins the R1 machinery: a preloaded,
// compacted, sharded world serves verified scans whose derived results
// are exactly the preloaded key range — completeness and injection
// resistance as an exact regression gate (the simulation is
// deterministic).
func TestVerifiedScansOverPreloadedWorld(t *testing.T) {
	const preload = 2000
	w := BuildWorld(WorldCfg{
		System:     Wedge,
		Shards:     2,
		Clients:    1,
		Batch:      100,
		KeySpace:   preload,
		Preload:    preload,
		Place:      defaultPlace,
		Rounds:     1,
		FlushEvery: int64(10e6),
	})
	w.Preload()
	session := w.WedgeSessions[0]
	for _, c := range []struct{ lo, width int }{{0, 10}, {995, 10}, {500, 600}} {
		t0 := w.Sim.Now()
		ops, envs := session.Scan(t0, workload.KeyName(c.lo), workload.KeyName(c.lo+c.width), 0)
		w.Sim.Inject(envs)
		ok := w.Sim.RunWhile(func() bool {
			for _, op := range ops {
				if !op.Done {
					return true
				}
			}
			return false
		}, t0+int64(600e9))
		if !ok {
			t.Fatal("scan stalled")
		}
		kvs := client.MergeScanResults(ops, 0)
		if len(kvs) != c.width {
			t.Fatalf("scan [%d,+%d): %d rows, want %d", c.lo, c.width, len(kvs), c.width)
		}
		for i, kv := range kvs {
			if want := string(workload.KeyName(c.lo + i)); string(kv.Key) != want {
				t.Fatalf("row %d = %q, want %q", i, kv.Key, want)
			}
		}
	}
	// At least one shard edge must have served scan traffic, and every
	// edge merged (the proofs covered real level pages, not just L0).
	scans := uint64(0)
	for _, en := range w.EdgeNodes {
		st := en.Stats()
		scans += st.Scans
		if st.Merges == 0 {
			t.Fatal("an edge never merged; scans did not exercise level proofs")
		}
	}
	if scans == 0 {
		t.Fatal("no edge recorded scan traffic")
	}
}
