package bench

import "fmt"

// shardSweep is the S1 x axis: the edge counts of the scaling curve.
var shardSweep = []int{1, 2, 4, 8}

// ShardScaling (S1) measures the scaling lever the paper's design makes
// possible: because the cloud is off the write critical path (Phase I
// commits entirely at the edge), aggregate put throughput should grow by
// adding edge nodes and sharding the keyspace across them. Eight clients
// drive write bursts whose keys hash-route across 1, 2, 4, and 8 shard
// edges; with one edge every block cut serializes on a single node, with
// N edges the cuts proceed in parallel. Partial blocks are flush-cut
// (10 ms) since a burst's per-shard sub-batch no longer fills a whole
// block by itself — the same config is applied to every point of the
// sweep so the curve isolates the shard count.
func ShardScaling(scale Scale) *Table {
	t := &Table{
		ID:     "S1",
		Title:  "Shard scaling: aggregate put throughput vs edge count (8 clients, B=100)",
		Header: []string{"Shards", "Throughput (ops/s)", "Speedup", "Blocks/edge"},
	}
	rounds := scale.rounds(30)
	var base float64
	for _, shards := range shardSweep {
		w := BuildWorld(WorldCfg{
			System:         Wedge,
			Shards:         shards,
			Clients:        8,
			Batch:          100,
			Place:          defaultPlace,
			WritesPerRound: 100,
			Rounds:         rounds,
			WarmupRounds:   1,
			FlushEvery:     int64(10e6),
		})
		w.Run(int64(3600e9))
		tput := w.Throughput()
		if shards == 1 {
			base = tput
		}
		var blocks uint64
		for _, en := range w.EdgeNodes {
			blocks += en.Stats().BlocksCut
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(shards),
			kops(tput),
			fmt.Sprintf("%.2fx", tput/base),
			fmt.Sprint(blocks / uint64(len(w.EdgeNodes))),
		})
	}
	t.Notes = append(t.Notes,
		"speedup is relative to the 1-shard row; every point uses the same flush-cut config")
	return t
}
