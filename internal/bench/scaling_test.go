package bench

import "testing"

// TestShardScalingRaisesThroughput pins the tentpole property: the same
// write workload sustains higher aggregate put throughput on 4 shard
// edges than on 1, and the keyspace actually spreads — every shard edge
// cuts blocks. The simulation is deterministic, so this is an exact
// regression gate, not a flaky performance assertion.
func TestShardScalingRaisesThroughput(t *testing.T) {
	run := func(shards int) *World {
		w := BuildWorld(WorldCfg{
			System:         Wedge,
			Shards:         shards,
			Clients:        8,
			Batch:          100,
			Place:          defaultPlace,
			WritesPerRound: 100,
			Rounds:         3,
			WarmupRounds:   1,
			FlushEvery:     int64(10e6),
		})
		w.Run(int64(3600e9))
		return w
	}
	w1 := run(1)
	w4 := run(4)
	t1, t4 := w1.Throughput(), w4.Throughput()
	if t4 <= t1 {
		t.Fatalf("4-shard throughput %.0f <= 1-shard %.0f ops/s; sharding must scale writes", t4, t1)
	}
	if len(w4.EdgeNodes) != 4 {
		t.Fatalf("4-shard world built %d edges", len(w4.EdgeNodes))
	}
	for i, en := range w4.EdgeNodes {
		st := en.Stats()
		if st.Writes == 0 || st.BlocksCut == 0 {
			t.Errorf("shard edge %d idle: %+v", i, st)
		}
	}
	if agg := w4.AggMetrics(); agg.Failed != 0 {
		t.Fatalf("sharded workload had %d failed ops", agg.Failed)
	}
}
