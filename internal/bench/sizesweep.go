package bench

import (
	"fmt"
	"time"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// BlockAckSizeSweep (P2) measures the cost of one block-ack signature and
// its verification across block sizes, for both wire-format generations:
//
//   - "legacy": the pre-PR3 format — the edge signs BID plus the block's
//     full re-encoded body, and the verifier runs Ed25519 over the same
//     bytes. Both operations hash the entire block inside Ed25519, so
//     cost grows linearly with block size.
//   - "digest": the current format — the signature covers BID plus the
//     32-byte block digest. The edge signs the digest it already cached
//     at block cut; the client folds the digest it must recompute anyway
//     (for the Phase II certification match) into the check. The
//     signature operations are O(1) in block size.
//
// The sweep pins the tentpole property: digest-mode sign and verify stay
// flat (spread < 2x) from 1 KB to 100 KB while legacy cost climbs roughly
// linearly.
func BlockAckSizeSweep(scale Scale) *Table {
	t := &Table{
		ID:    "P2",
		Title: "Block-ack signature cost vs block size (wall-clock)",
		Header: []string{"Block size", "Legacy sign (us)", "Legacy verify (us)",
			"Digest sign (us)", "Digest verify (us)"},
	}
	iters := 400 / int(scale)
	if iters < 20 {
		iters = 20
	}

	key := wcrypto.DeterministicKey("edge-1")
	reg := wcrypto.NewRegistry()
	reg.Register(key.ID, key.Pub)

	var digestSigns, digestVerifies []float64
	for _, target := range []int{1 << 10, 20 << 10, 100 << 10} {
		blk := AckSweepBlock(target)
		blk.Freeze()
		digest := wcrypto.BlockDigest(&blk)

		// Legacy: signature over BID + full body.
		legacyBody := func() []byte {
			var e wire.Encoder
			e.U64(blk.ID)
			blk.EncodeTo(&e)
			return e.Bytes()
		}()
		legacySig := key.Sign(legacyBody)
		legacySign := timeOp(iters, func() {
			wcrypto.SignLegacyBlockAck(key, blk.ID, &blk)
		})
		legacyVerify := timeOp(iters, func() {
			if err := reg.Verify(key.ID, legacyBody, legacySig); err != nil {
				panic(err)
			}
		})

		// Digest: signature over BID + 32-byte digest. The verify column
		// is the signature check alone — the digest itself is computed
		// once per block by both schemes (certification match), so it is
		// not a cost the new format adds.
		digestSig := wcrypto.SignBlockAck(key, blk.ID, digest)
		digestSign := timeOp(iters, func() {
			wcrypto.SignBlockAck(key, blk.ID, digest)
		})
		digestVerify := timeOp(iters, func() {
			if err := wcrypto.VerifyBlockAck(reg, key.ID, blk.ID, digest, digestSig); err != nil {
				panic(err)
			}
		})
		digestSigns = append(digestSigns, digestSign)
		digestVerifies = append(digestVerifies, digestVerify)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f KB", float64(len(blk.Canonical()))/1024),
			f1(legacySign), f1(legacyVerify), f1(digestSign), f1(digestVerify),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("digest sign spread max/min = %.2fx, digest verify spread = %.2fx (flat target < 2x)",
			spread(digestSigns), spread(digestVerifies)),
		"digest verify is the signature check given the block digest; both formats compute that digest once per block for the certification match",
	)
	return t
}

// AckSweepBlock builds a frozen-ready block whose canonical encoding is
// approximately target bytes. Entry count scales down for small targets —
// the per-entry framing (identity, key, signature) would otherwise put a
// 100-entry block past 11 KB. The framing overhead is measured from the
// wire encoding rather than hardcoded, so the sweep tracks format changes.
// Exported because the wcrypto BlockAck* micro-benchmarks sweep the same
// axis and must measure the same block shape.
func AckSweepBlock(target int) wire.Block {
	entries := target / 256
	if entries < 4 {
		entries = 4
	}
	if entries > 100 {
		entries = 100
	}
	probe := wire.Entry{Client: "c1", Seq: 1, Key: []byte("k00000000"), Ts: 1, Sig: make([]byte, 64)}
	var pe wire.Encoder
	probe.EncodeTo(&pe)
	valSize := target/entries - pe.Len()
	if valSize < 1 {
		valSize = 1
	}
	blk := wire.Block{Edge: "edge-1", ID: 7, StartPos: 700, Ts: 1}
	for i := 0; i < entries; i++ {
		blk.Entries = append(blk.Entries, wire.Entry{
			Client: "c1",
			Seq:    uint64(i + 1),
			Key:    []byte(fmt.Sprintf("k%08d", i)),
			Value:  make([]byte, valSize),
			Ts:     int64(i),
			Sig:    make([]byte, 64),
		})
	}
	return blk
}

// timeOp reports the mean wall-clock microseconds of one call to fn.
func timeOp(iters int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Seconds() * 1e6 / float64(iters)
}

func spread(vs []float64) float64 {
	min, max := vs[0], vs[0]
	for _, v := range vs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max / min
}
