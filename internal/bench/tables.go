package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's printable result: the rows/series the paper's
// corresponding table or figure reports.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics carries registry-derived scalars (e.g. trust-lag quantiles)
	// into the -json artifact alongside the printable rows.
	Metrics map[string]float64
}

// Print renders the table in aligned plain text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// kops formats operations/second as thousands.
func kops(v float64) string { return fmt.Sprintf("%.2fK", v/1000) }
