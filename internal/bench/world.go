package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"wedgechain/internal/baseline/cloudonly"
	"wedgechain/internal/baseline/edgebase"
	"wedgechain/internal/client"
	"wedgechain/internal/cloud"
	"wedgechain/internal/edge"
	"wedgechain/internal/obs"
	"wedgechain/internal/shard"
	"wedgechain/internal/sim"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
	"wedgechain/internal/workload"
)

// System selects which of the three evaluated systems to build.
type System int

// The three systems of the evaluation.
const (
	Wedge System = iota
	CloudOnly
	EdgeBase
)

var systemNames = [...]string{"WedgeChain", "Cloud-only", "Edge-baseline"}

// String returns the paper's system name.
func (s System) String() string { return systemNames[s] }

// AllSystems lists the systems in the paper's plotting order.
var AllSystems = []System{Wedge, CloudOnly, EdgeBase}

// WorldCfg describes one experimental setup.
type WorldCfg struct {
	System System
	// Shards spreads the keyspace across this many edge nodes
	// (WedgeChain only; the baselines have no sharding story). Each
	// client session multiplexes every shard, routing puts and gets by
	// key. 0 or 1 reproduces the paper's single-edge deployment.
	Shards    int
	Clients   int
	Batch     int
	ValueSize int
	// KeySpace is the partition's key range; Preload keys are written
	// before measurement (reads address the preloaded range).
	KeySpace int
	Preload  int
	Place    Placement
	// Workload shape per client (see workload.Config).
	WritesPerRound int
	ReadsPerRound  int
	Rounds         int
	WarmupRounds   int
	// L0Threshold and LevelThresholds configure LSMerkle; zero values
	// use the paper's configuration (10, 10, 100, 1000).
	L0Threshold     int
	LevelThresholds []int
	// FlushEvery force-cuts partial edge blocks after this idle period
	// (virtual ns; 0 disables). Sharded worlds need it: a burst of B
	// writes splits into sub-batches of roughly B/Shards entries, which
	// would otherwise never fill a block.
	FlushEvery int64
	// Gossip and Freshness configure the cloud gossip period and the
	// client freshness window (0 = off).
	Gossip    int64
	Freshness int64
	// DataFreeCert disables full-block certification; default (false
	// meaning "unset") maps to data-free on. Set FullDataCert for the
	// A1 ablation.
	FullDataCert bool
	// NoL0Prune disables exclusion-summary pruning of read evidence —
	// the E1 experiment's "before" arm.
	NoL0Prune bool
	// Durable gives every edge a persistent store (real segment files,
	// real fsyncs). A durable world must state its fsync discipline:
	// SyncEvery is either SyncPerBlock or a positive group-commit window
	// (virtual ns). Leaving it zero panics — durable numbers measured
	// with the group-commit dimension silently unset are not numbers.
	Durable   bool
	SyncEvery int64
	// DataDir roots the durable stores; empty uses a fresh temp dir.
	DataDir string
	Seed    int64
	// Metrics threads an observability registry into every node of the
	// world (WedgeChain systems only). Nil falls back to LiveMetrics;
	// nil again keeps the timing histograms off — the default for the
	// virtual-time experiments, whose clocks are simulated anyway.
	Metrics *obs.Registry
}

// LiveMetrics is the registry worlds fall back to when WorldCfg.Metrics
// is nil. wedge-bench sets it when -metrics-addr is given, so a running
// experiment's nodes are scrapeable without every call site threading a
// registry.
var LiveMetrics *obs.Registry

func (c *WorldCfg) fill() {
	if c.Metrics == nil {
		c.Metrics = LiveMetrics
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Batch <= 0 {
		c.Batch = 100
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 100_000
	}
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.L0Threshold <= 0 {
		c.L0Threshold = 10
	}
	if len(c.LevelThresholds) == 0 {
		c.LevelThresholds = []int{10, 100, 1000}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// World is a built, ready-to-run experiment.
type World struct {
	Cfg     WorldCfg
	Sim     *sim.Sim
	Drivers []*workload.Driver
	// WedgeClients exposes the protocol client cores (WedgeChain only)
	// for Phase I/II instrumentation — one per client per shard, in
	// client-major order.
	WedgeClients []*client.Core
	// WedgeSessions exposes the per-client sharded sessions.
	WedgeSessions []*client.Sharded
	// EdgeNode / CloudNode are set for the WedgeChain system. EdgeNode
	// is the first shard's edge; EdgeNodes lists all of them.
	EdgeNode  *edge.Node
	EdgeNodes []*edge.Node
	CloudNode *cloud.Node

	roles       map[wire.NodeID]Role
	preloadConn workload.Conn
	ownDataDir  string // temp dir backing a durable world, removed on Close
}

// Close releases a durable world's resources: edge stores are synced and
// closed, and a temp data dir owned by the world is removed. In-memory
// worlds are no-ops.
func (w *World) Close() {
	for _, en := range w.EdgeNodes {
		en.CloseStore()
	}
	if w.ownDataDir != "" {
		os.RemoveAll(w.ownDataDir)
	}
}

const (
	cloudID = wire.NodeID("cloud")
	edgeID  = wire.NodeID("edge-1")
)

func clientID(i int) wire.NodeID { return wire.NodeID(fmt.Sprintf("c%d", i+1)) }

func shardEdgeID(i int) wire.NodeID { return wire.NodeID(fmt.Sprintf("edge-%d", i+1)) }

// BuildWorld constructs the system, topology and drivers for cfg.
func BuildWorld(cfg WorldCfg) *World {
	cfg.fill()
	if cfg.System != Wedge {
		// The baselines have no sharding story; they keep one edge.
		cfg.Shards = 1
	}
	w := &World{Cfg: cfg, roles: map[wire.NodeID]Role{cloudID: RCloud}}

	edgeIDs := make([]wire.NodeID, cfg.Shards)
	for i := range edgeIDs {
		edgeIDs[i] = shardEdgeID(i)
		w.roles[edgeIDs[i]] = REdge
	}

	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	ids := append([]wire.NodeID{cloudID}, edgeIDs...)
	for i := 0; i < cfg.Clients; i++ {
		ids = append(ids, clientID(i))
	}
	for _, id := range ids {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	for i := 0; i < cfg.Clients; i++ {
		w.roles[clientID(i)] = RClient
	}

	// Topology: directional links per role pair. Every shard edge sits
	// in the same datacenter as the paper's single edge; clients reach
	// all of them and the cloud coordinates with each over the tight
	// edge-cloud channel.
	links := map[[2]wire.NodeID]sim.Link{}
	addPair := func(a, b wire.NodeID, da, db DC, bw float64) {
		links[[2]wire.NodeID{a, b}] = linkFor(da, db, bw)
		links[[2]wire.NodeID{b, a}] = linkFor(db, da, bw)
	}
	for _, eid := range edgeIDs {
		addPair(eid, cloudID, cfg.Place.Edge, cfg.Place.Cloud, coordBW)
	}
	for i := 0; i < cfg.Clients; i++ {
		cid := clientID(i)
		for _, eid := range edgeIDs {
			addPair(cid, eid, cfg.Place.Client, cfg.Place.Edge, wanBW)
		}
		addPair(cid, cloudID, cfg.Place.Client, cfg.Place.Cloud, wanBW)
	}

	costs := DefaultCosts(cfg.Batch)
	w.Sim = sim.New(sim.Config{
		TickEvery:   int64(1e6),
		DefaultLink: sim.Link{Latency: int64(5e5), Bandwidth: lanBW},
		Links:       links,
		Cost:        costs.Fn(w.roles),
	})

	var gossipTo []wire.NodeID
	for i := 0; i < cfg.Clients; i++ {
		gossipTo = append(gossipTo, clientID(i))
	}

	ring, err := shard.New(edgeIDs)
	if err != nil {
		panic(err) // unreachable: ids are distinct by construction
	}

	mkConn := func(i int) workload.Conn {
		cid := clientID(i)
		switch cfg.System {
		case Wedge:
			s := client.NewSharded(client.Config{
				ID: cid, Cloud: cloudID,
				FreshnessWindow: cfg.Freshness,
				Metrics:         cfg.Metrics,
			}, ring, keys[cid], reg)
			w.WedgeSessions = append(w.WedgeSessions, s)
			w.WedgeClients = append(w.WedgeClients, s.Cores()...)
			return workload.ShardedConn{Sharded: s}
		case CloudOnly:
			return workload.CloudOnlyConn{Client: cloudonly.NewClient(cid, cloudID, keys[cid])}
		default:
			return workload.EBConn{Client: edgebase.NewClient(cid, edgeID, cloudID, keys[cid], reg, cfg.Freshness)}
		}
	}

	switch cfg.System {
	case Wedge:
		w.CloudNode = cloud.New(cloud.Config{
			ID:          cloudID,
			Levels:      len(cfg.LevelThresholds),
			PageCap:     cfg.Batch,
			GossipEvery: cfg.Gossip,
			GossipTo:    gossipTo,
			Metrics:     cfg.Metrics,
		}, keys[cloudID], reg)
		var syncEvery int64
		var dataDir string
		if cfg.Durable {
			// Validated up front: a durable world with SyncEvery unset
			// panics here rather than producing misleading numbers.
			syncEvery = durableSyncEvery(cfg.SyncEvery)
			dataDir = cfg.DataDir
			if dataDir == "" {
				d, err := os.MkdirTemp("", "wedge-durable-world-*")
				if err != nil {
					panic(fmt.Sprintf("bench: durable world temp dir: %v", err))
				}
				dataDir = d
				w.ownDataDir = d
			}
		}
		for _, eid := range edgeIDs {
			ecfg := edge.Config{
				ID:              eid,
				Cloud:           cloudID,
				BatchSize:       cfg.Batch,
				FlushEvery:      cfg.FlushEvery,
				L0Threshold:     cfg.L0Threshold,
				LevelThresholds: cfg.LevelThresholds,
				PageCap:         cfg.Batch,
				FullDataCert:    cfg.FullDataCert,
				NoL0Prune:       cfg.NoL0Prune,
				SyncEvery:       syncEvery,
				Metrics:         cfg.Metrics,
			}
			var en *edge.Node
			if cfg.Durable {
				var err error
				en, _, err = edge.NewPersistent(ecfg, keys[eid], reg, filepath.Join(dataDir, string(eid)), true)
				if err != nil {
					panic(fmt.Sprintf("bench: durable edge %s: %v", eid, err))
				}
			} else {
				en = edge.New(ecfg, keys[eid], reg)
			}
			w.EdgeNodes = append(w.EdgeNodes, en)
			w.Sim.Add(en)
		}
		w.EdgeNode = w.EdgeNodes[0]
		w.Sim.Add(w.CloudNode)
	case CloudOnly:
		w.Sim.Add(cloudonly.NewServer(cloudonly.ServerConfig{ID: cloudID, BatchSize: cfg.Batch}, reg))
	case EdgeBase:
		w.Sim.Add(edgebase.NewCloud(edgebase.CloudConfig{
			ID: cloudID, Edge: edgeID,
			BatchSize:       cfg.Batch,
			L0Threshold:     cfg.L0Threshold,
			LevelThresholds: cfg.LevelThresholds,
			PageCap:         cfg.Batch,
		}, keys[cloudID], reg))
		w.Sim.Add(edgebase.NewEdge(edgebase.EdgeConfig{
			ID: edgeID, Cloud: cloudID,
			LevelThresholds: cfg.LevelThresholds,
		}, keys[edgeID], reg))
	}

	readSpace := cfg.KeySpace
	if cfg.Preload > 0 && cfg.Preload < readSpace {
		readSpace = cfg.Preload
	}
	for i := 0; i < cfg.Clients; i++ {
		conn := mkConn(i)
		if i == 0 {
			w.preloadConn = conn
		}
		d := workload.NewDriver(workload.Config{
			WritesPerRound: cfg.WritesPerRound,
			ReadsPerRound:  cfg.ReadsPerRound,
			Rounds:         cfg.Rounds,
			WarmupRounds:   cfg.WarmupRounds,
			Keys:           workload.NewUniformKeys(readSpace, cfg.Seed+int64(i)*7919),
			ValueSize:      cfg.ValueSize,
			Seed:           cfg.Seed + int64(i),
		}, conn)
		w.Drivers = append(w.Drivers, d)
		w.Sim.Add(d)
	}
	return w
}

// Preload writes cfg.Preload sequential keys through the protocol before
// the measured workload starts, so read experiments address real data.
func (w *World) Preload() {
	if w.Cfg.Preload == 0 {
		return
	}
	gen := &workload.SeqKeys{}
	val := make([]byte, w.Cfg.ValueSize)
	written := 0
	for written < w.Cfg.Preload {
		n := w.Cfg.Batch
		if written+n > w.Cfg.Preload {
			n = w.Cfg.Preload - written
		}
		keys := make([][]byte, n)
		values := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i] = gen.Next()
			values[i] = val
		}
		stats, envs := w.preloadConn.PutBurst(w.Sim.Now(), keys, values)
		w.Sim.Inject(envs)
		ok := w.Sim.RunWhile(func() bool {
			for _, st := range stats {
				if !st.Settled() {
					return true
				}
			}
			return false
		}, w.Sim.Now()+int64(600e9))
		if !ok {
			panic("bench: preload stalled")
		}
		written += n
	}
	// Let background certification and compaction settle.
	w.Sim.Drain(w.Sim.Now() + int64(60e9))
}

// Run starts every driver and runs the workload to completion (bounded by
// limit nanoseconds of additional virtual time).
func (w *World) Run(limit int64) {
	for _, d := range w.Drivers {
		d.Start()
	}
	deadline := w.Sim.Now() + limit
	done := func() bool {
		for _, d := range w.Drivers {
			if !d.Done() {
				return true
			}
		}
		return false
	}
	if !w.Sim.RunWhile(done, deadline) {
		panic(fmt.Sprintf("bench: workload did not finish within limit (%s, %d clients, B=%d)",
			w.Cfg.System, w.Cfg.Clients, w.Cfg.Batch))
	}
}

// AggMetrics merges all drivers' metrics.
func (w *World) AggMetrics() *workload.Metrics {
	agg := &workload.Metrics{}
	for i, d := range w.Drivers {
		m := d.Metrics()
		agg.BurstLat = append(agg.BurstLat, m.BurstLat...)
		agg.ReadLat = append(agg.ReadLat, m.ReadLat...)
		agg.Writes += m.Writes
		agg.Reads += m.Reads
		agg.Failed += m.Failed
		if i == 0 || m.StartAt < agg.StartAt {
			agg.StartAt = m.StartAt
		}
		if m.EndAt > agg.EndAt {
			agg.EndAt = m.EndAt
		}
	}
	return agg
}

// Throughput sums per-driver throughput, each computed over that driver's
// own measurement window — unbiased under staggered starts, unlike a
// global min-start/max-end window.
func (w *World) Throughput() float64 {
	var total float64
	for _, d := range w.Drivers {
		total += d.Metrics().Throughput()
	}
	return total
}

// EdgeCloudBytes reports bytes moved on the edge-cloud coordination
// channel in both directions (the data-free certification savings
// metric), summed over every shard's edge.
func (w *World) EdgeCloudBytes() uint64 {
	lb := w.Sim.Stats().LinkBytes
	var total uint64
	for i := 0; i < w.Cfg.Shards; i++ {
		eid := shardEdgeID(i)
		total += lb[[2]wire.NodeID{eid, cloudID}] + lb[[2]wire.NodeID{cloudID, eid}]
	}
	return total
}
