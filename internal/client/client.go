// Package client implements the WedgeChain client: the authenticated node
// that produces signed entries, tracks every operation through Phase I and
// Phase II commitment, verifies all evidence and proofs, and files
// disputes when the edge lies (Section IV-D Algorithm 1 and Section V-B).
//
// Core is a message-driven state machine with no I/O of its own: every API
// returns the envelopes to send, and Receive/Tick consume deliveries. The
// simulator drives it for experiments; the synchronous wrapper in the
// public façade drives it for applications.
package client

import (
	"bytes"
	"errors"

	"wedgechain/internal/core"
	"wedgechain/internal/obs"
	"wedgechain/internal/scan"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Core implements core.Handler so all transports can drive it.
var _ core.Handler = (*Core)(nil)

// Operation outcomes beyond success.
var (
	// ErrStale reports a get whose global root timestamp fell outside
	// the freshness window.
	ErrStale = errors.New("client: response outside freshness window")
	// ErrUnavailable reports an operation the edge would not or could
	// not serve: a read denied with no gossip contradicting the denial,
	// or (with Config.RetryEvery) an op still unacknowledged after
	// MaxAttempts jittered re-sends — the load-shed/partition case.
	ErrUnavailable = errors.New("client: block not available")
	// ErrEdgeLied reports an operation whose evidence contradicts the
	// certified state; a dispute was filed.
	ErrEdgeLied = errors.New("client: edge served content contradicting certification")
	// ErrEdgeBanned reports an operation routed to an edge the cloud has
	// convicted. Once a guilty verdict for the edge reaches the client,
	// in-flight and subsequent operations on that edge fail immediately
	// instead of waiting out a proof that can never arrive.
	ErrEdgeBanned = errors.New("client: edge was convicted and banned")
	// ErrBadResponse reports a response that failed local verification.
	ErrBadResponse = errors.New("client: response failed verification")
	// ErrRegression reports a get served from a snapshot older than one
	// this session has already observed (session consistency violation).
	ErrRegression = errors.New("client: response regressed behind session state")
	// ErrOverloaded reports a write the edge explicitly shed under
	// admission control (uncertified backlog at cap), with a signed
	// retry-after hint. The retry machinery paces re-sends by the hint;
	// exhaustion surfaces this instead of ErrUnavailable so callers can
	// tell "come back later" from "gone".
	ErrOverloaded = errors.New("client: edge overloaded; retry later")
)

// Kind identifies an operation type.
type Kind uint8

// Operation kinds.
const (
	KindAdd Kind = iota + 1
	KindPut
	KindRead
	KindGet
	KindScan
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindAdd:
		return "add"
	case KindPut:
		return "put"
	case KindRead:
		return "read"
	case KindGet:
		return "get"
	case KindScan:
		return "scan"
	default:
		return "unknown"
	}
}

// Op tracks one operation through its lifecycle. PhaseIAt and PhaseIIAt
// are virtual-time stamps used by the benchmarks to reproduce the paper's
// Figure 6 commit-rate curves.
type Op struct {
	Kind  Kind
	Seq   uint64      // entry seq for writes
	ReqID uint64      // correlation id for reads/gets
	Edge  wire.NodeID // edge the operation was routed to
	Key   []byte
	Value []byte

	BID       uint64
	Phase     core.Phase
	StartedAt int64
	PhaseIAt  int64
	PhaseIIAt int64
	Done      bool
	Err       error

	// Read/get results.
	Block    *wire.Block
	Found    bool
	GotValue []byte
	GotVer   uint64

	// Scan parameters and the verified, derived, limit-truncated result.
	ScanStart []byte
	ScanEnd   []byte
	ScanLimit int
	ScanKVs   []wire.KV

	// Evidence held for dispute filing.
	digest      []byte // digest of the block accepted at Phase I
	addEvidence *wire.AddResponse
	putEvidence *wire.PutResponse
	readEv      *wire.ReadResponse
	getEv       *wire.GetResponse
	scanEv      *wire.ScanResponse
	pendingBIDs map[uint64][]byte // get/scan: uncertified bid -> expected digest
	disputed    bool
	retries     int
	Verdict     *wire.Verdict

	// Transport-retry state (Config.RetryEvery): sends so far and the
	// deadline for the next re-send. overloaded marks an op the edge
	// explicitly shed (signed Overloaded), so exhaustion settles with
	// ErrOverloaded instead of ErrUnavailable.
	attempts   int
	nextResend int64
	overloaded bool
}

// DisputeFiled reports whether this operation accused its edge with the
// cloud. The cloud's verdict arrives asynchronously and is attached to
// Verdict — possibly after the operation already settled with an error,
// which is why callers that want to report the conviction (wedge-client,
// examples) poll for Verdict briefly instead of giving up at Done.
func (op *Op) DisputeFiled() bool { return op.disputed }

// Config parameterizes a client.
type Config struct {
	ID    wire.NodeID
	Edge  wire.NodeID
	Cloud wire.NodeID
	// Chain is the chain identity this session verifies against — the
	// shard's initial leader, stamped into every block, certificate,
	// gossip and signed root no matter which replica currently serves the
	// chain. Edge is the node requests go to and may be rebound by a
	// cloud-signed leadership transfer; Chain never changes. Defaults to
	// Edge, which is always right for unreplicated deployments.
	Chain wire.NodeID
	// ProofTimeout is how long a Phase I operation waits for its block
	// proof before filing a dispute with the cloud (ns).
	ProofTimeout int64
	// FreshnessWindow bounds get staleness (Section V-D); 0 disables.
	FreshnessWindow int64
	// Session enables client-side session consistency — the paper's
	// Section V-D alternative to clock-based freshness: the client
	// remembers the newest (epoch, L0 frontier) it has observed and
	// rejects any get served from an older snapshot, giving monotonic
	// reads without synchronized clocks.
	Session bool
	// MaxRetries bounds automatic retries of stale gets and
	// gossip-contradicted read denials.
	MaxRetries int
	// RetryEvery enables transparent re-send of operations the edge never
	// acknowledged: an op still short of Phase I after RetryEvery ns is
	// re-sent with exponential backoff and jitter (see retry.go), and
	// after MaxAttempts total sends settles with ErrUnavailable. 0
	// disables — the legacy behaviour, where an unanswered op waits out
	// the proof timeout.
	RetryEvery int64
	// MaxAttempts bounds total sends per op when RetryEvery > 0
	// (default 4, counting the initial send).
	MaxAttempts int
	// Light enables the sampling light-client mode: once a cloud-signed
	// gossiped frontier is held, only a seeded 1-in-SampleEvery sample of
	// get responses is fully structurally verified; the rest are accepted
	// on the edge's signature alone and settle immediately. A sampled
	// defect escalates through the ordinary dispute path, so the edge's
	// expected conviction guarantee is unchanged — it merely cannot
	// predict which response will be audited. Until the first gossip
	// arrives every response is fully verified.
	Light bool
	// SampleEvery is the light-mode sampling denominator (default 16 —
	// roughly 1/16 of responses audited). 1 forces every response to be
	// audited (used by conviction tests).
	SampleEvery int
	// SampleSeed seeds the deterministic per-request sampling decision.
	SampleSeed uint64
	// Metrics, when set, is the registry this core's counters and
	// op-tracing histograms (trust lag, ack latency, verify CPU) register
	// into. The counters behind Stats() are atomic either way; a nil
	// registry only disables the histograms.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Chain == "" {
		c.Chain = c.Edge
	}
	if c.ProofTimeout <= 0 {
		c.ProofTimeout = int64(10e9)
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.RetryEvery > 0 && c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Light && c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
}

// Core is the client state machine. Not safe for concurrent use.
type Core struct {
	cfg Config
	key wcrypto.KeyPair
	reg *wcrypto.Registry

	seq   uint64
	reqID uint64
	// Per-op indexes: write ops by entry seq, read/get/scan ops by
	// request id, Phase I ops by the block id whose proof they await.
	// Monotonic keys in flat position-indexed rings (see keyRing) — the
	// former maps never shrank and hashed on the hot path.
	bySeq   keyRing[*Op]
	byReq   keyRing[*Op]
	byBID   keyRing[[]*Op]
	accused []*Op        // ops with a filed dispute awaiting a verdict
	gossip  *wire.Gossip // latest gossip for my edge

	// Session-consistency watermarks: newest index epoch and L0
	// frontier (one past the highest block id) observed in verified
	// responses.
	sessEpoch uint64
	sessL0End uint64

	// leafCache memoizes proven scan page leaves per (level root, page
	// seq), so repeated scans over a stable index skip re-hashing pages
	// that have not changed (see scan.LeafCache for why a hit is sound).
	leafCache *scan.LeafCache

	// OnDone, when set, fires once per op as it fully settles.
	OnDone func(*Op)
	// OnPhaseI fires when an op reaches Phase I.
	OnPhaseI func(*Op)
	// OnPhaseII fires when an op reaches Phase II.
	OnPhaseII func(*Op)

	onReserve Reservations

	// Failover state: the highest leadership-transfer epoch applied and
	// the demoted nodes this session used to talk to (their verdicts must
	// still settle the disputes they answer, without banning the chain).
	epoch   uint64
	formers map[wire.NodeID]bool

	pending int           // started ops not yet settled
	banned  *wire.Verdict // guilty verdict against my edge, once known
	m       *metrics
}

// Stats are client counters.
type Stats struct {
	Disputes       uint64
	LiesDetected   uint64
	StaleRejected  uint64
	Retries        uint64
	VerifyFailures uint64
	Failovers      uint64
	// Resends counts transport-level retry re-sends (Config.RetryEvery);
	// Retries above counts verification-driven retries (stale gets,
	// contradicted denials) — different layers, kept separate.
	Resends uint64
	// Overloads counts signed Overloaded shed signals accepted from the
	// edge (admission control).
	Overloads uint64
	// Light-client accounting: get responses fully structurally verified
	// vs accepted on the sampling fast path, and the wall-clock cost of
	// the full verifications — the C1 experiment's CPU-reduction metric.
	FullVerifies uint64
	SampledSkips uint64
	VerifyNanos  uint64
}

// New constructs a client core.
func New(cfg Config, key wcrypto.KeyPair, reg *wcrypto.Registry) *Core {
	cfg.fill()
	return &Core{
		cfg:       cfg,
		key:       key,
		reg:       reg,
		leafCache: scan.NewLeafCache(),
		m:         newMetrics(cfg.Metrics, string(cfg.ID), string(cfg.Chain)),
	}
}

// ID returns the client identity.
func (c *Core) ID() wire.NodeID { return c.cfg.ID }

// Stats returns a snapshot of the client's counters. Every field is an
// atomic load, so polling mid-run from another goroutine is race-free.
func (c *Core) Stats() Stats {
	return Stats{
		Disputes:       c.m.disputes.Value(),
		LiesDetected:   c.m.liesDetected.Value(),
		StaleRejected:  c.m.staleRejected.Value(),
		Retries:        c.m.retries.Value(),
		VerifyFailures: c.m.verifyFailures.Value(),
		Failovers:      c.m.failovers.Value(),
		Resends:        c.m.resends.Value(),
		Overloads:      c.m.overloads.Value(),
		FullVerifies:   c.m.fullVerifies.Value(),
		SampledSkips:   c.m.sampledSkips.Value(),
		VerifyNanos:    c.m.verifyNanos.Value(),
	}
}

// Edge returns the node this core currently sends requests to; a
// leadership transfer rebinds it to the promoted replica.
func (c *Core) Edge() wire.NodeID { return c.cfg.Edge }

// Chain returns the chain identity this core verifies against. It never
// changes over the session's lifetime.
func (c *Core) Chain() wire.NodeID { return c.cfg.Chain }

// Epoch returns the highest leadership epoch this core has applied.
func (c *Core) Epoch() uint64 { return c.epoch }

// Pending reports the number of started operations that have not yet
// settled (reached Phase II, a verified result, or a terminal error).
func (c *Core) Pending() int { return c.pending }

// Gossip returns the latest cloud gossip seen for this client's edge.
func (c *Core) Gossip() *wire.Gossip { return c.gossip }

// Banned returns the guilty verdict against this core's edge, or nil
// while the edge is in good standing.
func (c *Core) Banned() *wire.Verdict { return c.banned }

// launchBanned settles a would-be operation immediately: the edge is
// convicted, so no entry is signed, no request is sent, and no tracking
// state is kept.
func (c *Core) launchBanned(op *Op) (*Op, []wire.Envelope) {
	c.pending++
	op.Verdict = c.banned
	c.settle(op, ErrEdgeBanned)
	return op, nil
}

// makeEntry builds and signs an entry.
func (c *Core) makeEntry(now int64, key, value []byte, pos uint64) wire.Entry {
	e := c.makeEntryUnsigned(now, key, value, pos)
	e.Sig = wcrypto.SignMsg(c.key, &e)
	return e
}

// makeEntryUnsigned builds an entry without its individual signature —
// session-signed batches authenticate entries with one batch signature
// instead (amortized client signing).
func (c *Core) makeEntryUnsigned(now int64, key, value []byte, pos uint64) wire.Entry {
	c.seq++
	e := wire.Entry{
		Client: c.cfg.ID,
		Seq:    c.seq,
		Key:    key,
		Value:  value,
		Ts:     now,
		Pos:    pos,
	}
	return e
}

// Add starts a log append. The returned op reaches Phase I when the edge's
// signed block arrives and Phase II when the cloud's proof does.
func (c *Core) Add(now int64, payload []byte) (*Op, []wire.Envelope) {
	return c.addAt(now, payload, 0)
}

// AddAt starts a log append signed for a reserved absolute position
// (pos is the value returned by Reserve).
func (c *Core) AddAt(now int64, payload []byte, pos uint64) (*Op, []wire.Envelope) {
	return c.addAt(now, payload, pos+1)
}

func (c *Core) addAt(now int64, payload []byte, pos uint64) (*Op, []wire.Envelope) {
	if c.banned != nil {
		return c.launchBanned(&Op{Kind: KindAdd, Edge: c.cfg.Edge, Value: payload, StartedAt: now})
	}
	e := c.makeEntry(now, nil, payload, pos)
	op := &Op{Kind: KindAdd, Seq: e.Seq, Edge: c.cfg.Edge, Value: payload, StartedAt: now}
	c.bySeq.set(e.Seq, op)
	c.pending++
	return op, []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: &wire.AddRequest{Entry: e, WantBlock: true}}}
}

// Put starts a key-value write through the LSMerkle index.
func (c *Core) Put(now int64, key, value []byte) (*Op, []wire.Envelope) {
	if c.banned != nil {
		return c.launchBanned(&Op{Kind: KindPut, Edge: c.cfg.Edge, Key: key, Value: value, StartedAt: now})
	}
	e := c.makeEntry(now, key, value, 0)
	op := &Op{Kind: KindPut, Seq: e.Seq, Edge: c.cfg.Edge, Key: key, Value: value, StartedAt: now}
	c.bySeq.set(e.Seq, op)
	c.pending++
	return op, []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: &wire.PutRequest{Entry: e}}}
}

// PutBatch starts a batch of key-value writes carried in one request —
// the paper's batched submission mode. One Op is returned per pair.
func (c *Core) PutBatch(now int64, keys, values [][]byte) ([]*Op, []wire.Envelope) {
	ops := make([]*Op, 0, len(keys))
	if c.banned != nil {
		for i := range keys {
			op, _ := c.launchBanned(&Op{Kind: KindPut, Edge: c.cfg.Edge, Key: keys[i], Value: values[i], StartedAt: now})
			ops = append(ops, op)
		}
		return ops, nil
	}
	batch := &wire.PutBatch{Client: c.cfg.ID, Entries: make([]wire.Entry, 0, len(keys))}
	for i := range keys {
		// Session-signed batch: entries carry no individual signature;
		// one batch signature below authenticates them all, replacing
		// len(keys) Ed25519 operations with one on both sides.
		e := c.makeEntryUnsigned(now, keys[i], values[i], 0)
		op := &Op{Kind: KindPut, Seq: e.Seq, Edge: c.cfg.Edge, Key: keys[i], Value: values[i], StartedAt: now}
		c.bySeq.set(e.Seq, op)
		c.pending++
		ops = append(ops, op)
		batch.Entries = append(batch.Entries, e)
	}
	batch.BatchSig = wcrypto.SignMsg(c.key, batch)
	return ops, []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: batch}}
}

// Read starts a block read.
func (c *Core) Read(now int64, bid uint64) (*Op, []wire.Envelope) {
	if c.banned != nil {
		return c.launchBanned(&Op{Kind: KindRead, Edge: c.cfg.Edge, BID: bid, StartedAt: now})
	}
	c.reqID++
	op := &Op{Kind: KindRead, ReqID: c.reqID, Edge: c.cfg.Edge, BID: bid, StartedAt: now}
	c.byReq.set(c.reqID, op)
	c.pending++
	return op, []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: &wire.ReadRequest{BID: bid, ReqID: c.reqID}}}
}

// Get starts a key-value lookup.
func (c *Core) Get(now int64, key []byte) (*Op, []wire.Envelope) {
	if c.banned != nil {
		return c.launchBanned(&Op{Kind: KindGet, Edge: c.cfg.Edge, Key: key, StartedAt: now})
	}
	c.reqID++
	op := &Op{Kind: KindGet, ReqID: c.reqID, Edge: c.cfg.Edge, Key: key, StartedAt: now}
	c.byReq.set(c.reqID, op)
	c.pending++
	return op, []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: &wire.GetRequest{Key: key, ReqID: c.reqID}}}
}

// Scan starts a verified range scan over [start, end) on this core's
// edge (nil start/end mean ±infinity). The op settles with ScanKVs
// holding every certified record of the range, newest version per key,
// ordered and truncated to limit (0 = unlimited) — or with an error when
// the edge's completeness proof fails verification, in which case the
// signed proof is filed as dispute evidence.
func (c *Core) Scan(now int64, start, end []byte, limit int) (*Op, []wire.Envelope) {
	op := &Op{Kind: KindScan, Edge: c.cfg.Edge, ScanStart: start, ScanEnd: end, ScanLimit: limit, StartedAt: now}
	if c.banned != nil {
		return c.launchBanned(op)
	}
	if start != nil && end != nil && bytes.Compare(start, end) >= 0 {
		// Degenerate range: verifiably empty without touching the network.
		c.pending++
		op.Phase = core.PhaseII
		c.settle(op, nil)
		return op, nil
	}
	c.reqID++
	op.ReqID = c.reqID
	c.byReq.set(c.reqID, op)
	c.pending++
	req := &wire.ScanRequest{Start: start, End: end, Limit: uint32(limit), ReqID: c.reqID}
	return op, []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: req}}
}

// Reserve asks the edge for count reserved log positions. The response is
// surfaced through OnReserve. A convicted edge's chain is frozen, so no
// request is sent once the edge is banned — callers should check Banned
// rather than wait out the reservation timeout.
func (c *Core) Reserve(now int64, count uint32) []wire.Envelope {
	if c.banned != nil {
		return nil
	}
	c.reqID++
	m := &wire.ReserveRequest{Client: c.cfg.ID, Count: count, ReqID: c.reqID}
	m.ClientSig = wcrypto.SignMsg(c.key, m)
	return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: m}}
}

// Reservations delivers granted reservations to the application.
type Reservations func(start uint64, count uint32)

// SetReserveHandler registers the callback invoked for each reservation
// grant.
func (c *Core) SetReserveHandler(f Reservations) { c.onReserve = f }

// Receive implements the message-driven half of the state machine.
func (c *Core) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.AddResponse:
		return c.handleAddResponse(now, env.From, m, env.Verified)
	case *wire.PutResponse:
		return c.handlePutResponse(now, env.From, m, env.Verified)
	case *wire.BlockProof:
		return c.handleProof(now, env.From, m, env.Verified)
	case *wire.BlockCertBatch:
		return c.handleCertBatch(now, env.From, m, env.Verified)
	case *wire.ReadResponse:
		return c.handleReadResponse(now, env.From, m, env.Verified)
	case *wire.GetResponse:
		return c.handleGetResponse(now, env.From, m, env.Verified)
	case *wire.ScanResponse:
		return c.handleScanResponse(now, env.From, m, env.Verified)
	case *wire.Gossip:
		return c.handleGossip(now, m)
	case *wire.Overloaded:
		return c.handleOverloaded(now, env.From, m, env.Verified)
	case *wire.Verdict:
		return c.handleVerdict(now, m)
	case *wire.LeadershipTransfer:
		return c.handleTransfer(now, env.From, m, env.Verified)
	case *wire.ReserveResponse:
		// A convicted edge's reservations are positions on a frozen
		// chain; drop them.
		if c.banned != nil {
			return nil
		}
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err == nil && c.onReserve != nil {
			c.onReserve(m.Start, m.Count)
		}
		return nil
	default:
		return nil
	}
}

// Tick files disputes for Phase I operations whose proof timed out, and
// runs the transport-retry pass for ops the edge never acknowledged.
func (c *Core) Tick(now int64) []wire.Envelope {
	var out []wire.Envelope
	c.byBID.each(func(_ uint64, ops []*Op) {
		for _, op := range ops {
			if op.Done || op.disputed || op.Phase != core.PhaseI {
				continue
			}
			if now-op.PhaseIAt < c.cfg.ProofTimeout {
				continue
			}
			out = append(out, c.fileDispute(op)...)
		}
	})
	if c.cfg.RetryEvery > 0 && c.banned == nil {
		out = append(out, c.tickRetry(now)...)
	}
	return out
}

func (c *Core) settle(op *Op, err error) {
	if op.Done {
		return
	}
	op.Done = true
	op.Err = err
	c.pending--
	// Settled ops leave the key-indexed rings so their bases can chase
	// the live window (late duplicate responses then simply miss).
	if op.Seq != 0 {
		c.bySeq.delete(op.Seq)
	}
	if op.ReqID != 0 {
		c.byReq.delete(op.ReqID)
	}
	if c.OnDone != nil {
		c.OnDone(op)
	}
}

// addByBID registers op as awaiting the proof of bid.
func (c *Core) addByBID(bid uint64, op *Op) {
	ops, _ := c.byBID.get(bid)
	c.byBID.set(bid, append(ops, op))
}

func (c *Core) phaseI(now int64, op *Op, bid uint64, digest []byte) {
	if op.Phase >= core.PhaseI {
		return
	}
	op.Phase = core.PhaseI
	op.PhaseIAt = now
	c.m.markPhaseI(op)
	if digest != nil {
		op.BID = bid
		op.digest = digest
		c.addByBID(bid, op)
	}
	if c.OnPhaseI != nil {
		c.OnPhaseI(op)
	}
}

func (c *Core) phaseII(now int64, op *Op) {
	if op.Phase >= core.PhaseII {
		return
	}
	op.Phase = core.PhaseII
	op.PhaseIIAt = now
	c.m.markPhaseII(op)
	if c.OnPhaseII != nil {
		c.OnPhaseII(op)
	}
	c.settle(op, nil)
}

// handleAddResponse implements Algorithm 1 lines 3-5: verify the edge's
// signature, verify my entry is in the block, mark Phase I.
func (c *Core) handleAddResponse(now int64, from wire.NodeID, m *wire.AddResponse, verified bool) []wire.Envelope {
	if from != c.cfg.Edge {
		return nil
	}
	if m.Block.ID != m.BID || m.Block.Edge != c.cfg.Chain {
		c.m.verifyFailures.Inc()
		return nil
	}
	// One hash serves both checks: the recomputed digest is the signable
	// body of the block-ack signature AND the value compared against the
	// cloud's certification later, so the signature check costs O(1) on
	// top of the digest the client needs anyway.
	digest := wcrypto.RecomputedBlockDigest(&m.Block)
	if !verified {
		if err := wcrypto.VerifyBlockAck(c.reg, c.cfg.Edge, m.BID, digest, m.EdgeSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	for i := range m.Block.Entries {
		e := &m.Block.Entries[i]
		if e.Client != c.cfg.ID {
			continue
		}
		op, ok := c.bySeq.get(e.Seq)
		if !ok || op.Kind != KindAdd || op.Phase >= core.PhaseI {
			continue
		}
		if !bytes.Equal(e.Value, op.Value) {
			// The block misrepresents my entry: reject outright.
			c.m.verifyFailures.Inc()
			c.settle(op, ErrBadResponse)
			continue
		}
		op.addEvidence = m
		op.Edge = from // the node whose signature backs the evidence
		c.phaseI(now, op, m.BID, digest)
	}
	return nil
}

func (c *Core) handlePutResponse(now int64, from wire.NodeID, m *wire.PutResponse, verified bool) []wire.Envelope {
	if from != c.cfg.Edge {
		return nil
	}
	if m.Block.ID != m.BID || m.Block.Edge != c.cfg.Chain {
		c.m.verifyFailures.Inc()
		return nil
	}
	// As in handleAddResponse: the recomputed digest doubles as the
	// signable body, so signature verification is size-independent.
	digest := wcrypto.RecomputedBlockDigest(&m.Block)
	if !verified {
		if err := wcrypto.VerifyBlockAck(c.reg, c.cfg.Edge, m.BID, digest, m.EdgeSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	for i := range m.Block.Entries {
		e := &m.Block.Entries[i]
		if e.Client != c.cfg.ID {
			continue
		}
		op, ok := c.bySeq.get(e.Seq)
		if !ok || op.Kind != KindPut || op.Phase >= core.PhaseI {
			continue
		}
		if !bytes.Equal(e.Value, op.Value) || !bytes.Equal(e.Key, op.Key) {
			c.m.verifyFailures.Inc()
			c.settle(op, ErrBadResponse)
			continue
		}
		op.putEvidence = m
		op.Edge = from
		c.phaseI(now, op, m.BID, digest)
	}
	return nil
}

// handleProof upgrades every Phase I operation on the block to Phase II —
// or detects the lie when the certified digest contradicts the evidence.
// The pre-verified flag is only trusted when the proof came straight from
// the cloud (the pool checks signatures against the envelope sender);
// edge-forwarded proofs are verified inline.
func (c *Core) handleProof(now int64, from wire.NodeID, p *wire.BlockProof, verified bool) []wire.Envelope {
	if p.Edge != c.cfg.Chain {
		return nil
	}
	if !verified || from != c.cfg.Cloud {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, p, p.CloudSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	return c.applyCertified(now, p.BID, p.Digest)
}

// handleCertBatch applies a batched cloud certificate: one cloud
// signature covering a contiguous run of (bid, digest) pairs, each of
// which upgrades (or contradicts) pending operations exactly as an
// individual proof would. Like proofs, batches may arrive straight from
// the cloud or forwarded by the edge; the forwarded copy is verified
// inline.
func (c *Core) handleCertBatch(now int64, from wire.NodeID, b *wire.BlockCertBatch, verified bool) []wire.Envelope {
	if b.Edge != c.cfg.Chain || len(b.Digests) == 0 {
		return nil
	}
	if !verified || from != c.cfg.Cloud {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, b, b.CloudSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	var out []wire.Envelope
	for i, d := range b.Digests {
		out = append(out, c.applyCertified(now, b.Start+uint64(i), d)...)
	}
	return out
}

// applyCertified settles every pending operation on one certified
// (bid, digest) pair — the shared core of handleProof and
// handleCertBatch, running after the caller has verified the cloud's
// signature over the pair.
func (c *Core) applyCertified(now int64, bid uint64, digest []byte) []wire.Envelope {
	var out []wire.Envelope
	ops, _ := c.byBID.get(bid)
	remaining := ops[:0]
	for _, op := range ops {
		if op.Done {
			continue
		}
		if op.Kind == KindGet || op.Kind == KindScan {
			if more := c.resolveProofDep(now, op, bid, digest); more != nil {
				out = append(out, more...)
			}
			// Re-register only while the op still pends on THIS bid (a
			// contradiction dispute keeps the pin for re-delivery); a
			// resolved dependency must release the slot, or a Done op
			// would pin the ring's base forever.
			if _, still := op.pendingBIDs[bid]; still && !op.Done && op.Phase != core.PhaseII {
				remaining = append(remaining, op)
			}
			continue
		}
		if bytes.Equal(op.digest, digest) {
			c.phaseII(now, op)
			continue
		}
		// The certified block differs from what I was promised/served.
		c.m.liesDetected.Inc()
		out = append(out, c.fileDispute(op)...)
		remaining = append(remaining, op)
	}
	if len(remaining) == 0 {
		c.byBID.delete(bid)
	} else {
		c.byBID.set(bid, remaining)
	}
	return out
}

// resolveProofDep settles one uncertified L0 dependency of a Phase I get
// or scan. A certified digest contradicting the pinned one is the lazy
// catch for content the edge promised before certification.
func (c *Core) resolveProofDep(now int64, op *Op, bid uint64, digest []byte) []wire.Envelope {
	want, ok := op.pendingBIDs[bid]
	if !ok {
		return nil
	}
	if !bytes.Equal(want, digest) {
		c.m.liesDetected.Inc()
		if op.Kind == KindScan {
			return c.fileScanDispute(op, bid)
		}
		return c.fileGetDispute(op, bid)
	}
	delete(op.pendingBIDs, bid)
	if len(op.pendingBIDs) == 0 {
		c.phaseII(now, op)
	}
	return nil
}

// lowestPending returns the smallest uncertified block id a get or scan
// still waits on (falling back to op.BID): the right block to dispute on
// proof timeout, since the cloud either holds a contradicting certificate
// for it or never saw it at all.
func lowestPending(op *Op) uint64 {
	bid, first := op.BID, true
	for b := range op.pendingBIDs {
		if first || b < bid {
			bid, first = b, false
		}
	}
	return bid
}

// fileDispute packages the op's evidence and accuses the node that
// signed it — op.Edge, which may be a since-demoted leader rather than
// the replica the session currently talks to. Get and scan evidence
// delegates to the dedicated filers BEFORE any dispute bookkeeping —
// they check op.disputed themselves, and marking the op first would make
// the delegation a silent no-op (the bug that used to swallow get/scan
// proof-timeout disputes entirely).
func (c *Core) fileDispute(op *Op) []wire.Envelope {
	if op.disputed {
		return nil
	}
	var d *wire.Dispute
	switch {
	case op.addEvidence != nil:
		d = core.BuildAddLieDispute(c.key, op.Edge, op.addEvidence)
	case op.putEvidence != nil:
		// Put evidence shares the add-lie shape: promised block content.
		ar := &wire.AddResponse{BID: op.putEvidence.BID, Block: op.putEvidence.Block, EdgeSig: op.putEvidence.EdgeSig}
		// A PutResponse signature covers the same body encoding as an
		// AddResponse (BID + Block), so the evidence transfers.
		d = core.BuildAddLieDispute(c.key, op.Edge, ar)
	case op.readEv != nil && op.readEv.OK:
		d = core.BuildReadLieDispute(c.key, op.Edge, op.readEv)
	case op.readEv != nil && !op.readEv.OK && c.gossip != nil:
		d = core.BuildOmissionDispute(c.key, op.Edge, op.readEv, c.gossip)
	case op.getEv != nil:
		// Dispute the lowest still-pending block (gets never set op.BID):
		// the cloud either holds a contradicting certificate or never saw
		// the block at all.
		return c.fileGetDispute(op, lowestPending(op))
	case op.scanEv != nil:
		return c.fileScanDispute(op, lowestPending(op))
	default:
		return nil
	}
	op.disputed = true
	c.accused = append(c.accused, op)
	c.m.disputes.Inc()
	return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Cloud, Msg: d}}
}

func (c *Core) fileGetDispute(op *Op, bid uint64) []wire.Envelope {
	if op.disputed {
		return nil
	}
	return c.accuse(op, bid, core.BuildGetLieDispute(c.key, op.Edge, bid, op.getEv))
}

// accuse records op as disputed over bid and returns the accusation for
// the cloud — the dispute bookkeeping shared by every evidence-backed
// dispute kind. Callers check op.disputed first.
func (c *Core) accuse(op *Op, bid uint64, d *wire.Dispute) []wire.Envelope {
	op.disputed = true
	op.BID = bid
	c.accused = append(c.accused, op)
	c.m.disputes.Inc()
	return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Cloud, Msg: d}}
}

// handleVerdict settles disputed operations. Verdicts are node-scoped:
// one may convict a since-demoted leader whose evidence this session
// still holds, which settles those disputes without touching the chain's
// current replica.
func (c *Core) handleVerdict(now int64, v *wire.Verdict) []wire.Envelope {
	if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, v, v.CloudSig); err != nil {
		c.m.verifyFailures.Inc()
		return nil
	}
	if v.Edge != c.cfg.Edge && !c.formers[v.Edge] {
		return nil
	}
	remaining := c.accused[:0]
	for _, op := range c.accused {
		if op.Edge != v.Edge {
			remaining = append(remaining, op)
			continue
		}
		if op.Done {
			// Structural-defect disputes (scan and get evidence defects)
			// settle at filing time; attach the verdict anyway so callers
			// can report WHY the operation failed, not just that it did.
			// An op whose verdict has not arrived yet stays accused — a
			// verdict for a different block must not purge it.
			if op.BID == v.BID && op.Verdict == nil {
				op.Verdict = v
			} else if op.Verdict == nil {
				remaining = append(remaining, op)
			}
			continue
		}
		if op.BID != v.BID {
			remaining = append(remaining, op)
			continue
		}
		op.Verdict = v
		if v.Guilty {
			c.settle(op, ErrEdgeLied)
			continue
		}
		// Not-guilty verdicts are followed by the attached block proof
		// when one exists; handleProof completes Phase II.
		remaining = append(remaining, op)
	}
	c.accused = remaining
	if v.Guilty && v.Edge != c.cfg.Edge {
		// A former leader was convicted. The chain already failed over —
		// its disputes are settled above, the promoted replica keeps
		// serving, nothing is banned.
		return nil
	}
	if v.Guilty {
		// The edge is convicted: the cloud ignores it from here on, so
		// no outstanding operation can ever complete. Record the ban
		// (future ops fail at launch) and fail everything in flight —
		// this is how clients that were not party to the dispute learn
		// of a conviction from the cloud's verdict broadcast. Settled
		// disputed ops still awaiting their own verdict get this one:
		// their accusation stands against an edge now proven guilty.
		c.banned = v
		for _, op := range c.accused {
			if op.Verdict == nil {
				op.Verdict = v
			}
		}
		c.accused = nil
		c.bySeq.each(func(_ uint64, op *Op) {
			if !op.Done {
				op.Verdict = v
				c.settle(op, ErrEdgeBanned)
			}
		})
		c.byReq.each(func(_ uint64, op *Op) {
			if !op.Done {
				op.Verdict = v
				c.settle(op, ErrEdgeBanned)
			}
		})
	}
	return nil
}

func (c *Core) handleGossip(now int64, g *wire.Gossip) []wire.Envelope {
	if g.Edge != c.cfg.Chain {
		return nil
	}
	if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, g, g.CloudSig); err != nil {
		c.m.verifyFailures.Inc()
		return nil
	}
	if c.gossip == nil || g.Ts > c.gossip.Ts {
		c.gossip = g
	}
	return nil
}
