package client

import (
	"bytes"
	"errors"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

type fixture struct {
	c    *Core
	keys map[wire.NodeID]wcrypto.KeyPair
	reg  *wcrypto.Registry
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	c := New(Config{
		ID: "c1", Edge: "edge-1", Cloud: "cloud",
		ProofTimeout: 1000,
	}, keys["c1"], reg)
	return &fixture{c: c, keys: keys, reg: reg}
}

// blockWith packages the entry from an AddRequest envelope into a block.
func blockWith(bid uint64, entries ...wire.Entry) wire.Block {
	return wire.Block{Edge: "edge-1", ID: bid, StartPos: 0, Entries: entries}
}

// entryOf extracts the signed entry from the envelopes an Add produced.
func entryOf(t *testing.T, envs []wire.Envelope) wire.Entry {
	t.Helper()
	if len(envs) != 1 {
		t.Fatalf("envelopes = %d", len(envs))
	}
	switch m := envs[0].Msg.(type) {
	case *wire.AddRequest:
		return m.Entry
	case *wire.PutRequest:
		return m.Entry
	default:
		t.Fatalf("unexpected message %T", m)
		return wire.Entry{}
	}
}

func (f *fixture) signedAddResponse(blk wire.Block) *wire.AddResponse {
	resp := &wire.AddResponse{BID: blk.ID, Block: blk}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	return resp
}

func (f *fixture) signedProof(blk *wire.Block) *wire.BlockProof {
	p := &wire.BlockProof{Edge: "edge-1", BID: blk.ID, Digest: wcrypto.BlockDigest(blk)}
	p.CloudSig = wcrypto.SignMsg(f.keys["cloud"], p)
	return p
}

func TestAddPhaseLifecycle(t *testing.T) {
	f := newFixture(t)
	op, envs := f.c.Add(10, []byte("payload"))
	blk := blockWith(0, entryOf(t, envs))

	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedAddResponse(blk)})
	if op.Phase != core.PhaseI || op.BID != 0 {
		t.Fatalf("after response: phase=%v bid=%d", op.Phase, op.BID)
	}
	f.c.Receive(30, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedProof(&blk)})
	if op.Phase != core.PhaseII || !op.Done || op.Err != nil {
		t.Fatalf("after proof: %+v", op)
	}
	if op.PhaseIAt != 20 || op.PhaseIIAt != 30 {
		t.Fatalf("timestamps = %d/%d", op.PhaseIAt, op.PhaseIIAt)
	}
}

func TestAddResponseBadSignatureIgnored(t *testing.T) {
	f := newFixture(t)
	op, envs := f.c.Add(10, []byte("payload"))
	blk := blockWith(0, entryOf(t, envs))
	resp := f.signedAddResponse(blk)
	resp.EdgeSig[0] ^= 1
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	if op.Phase != core.PhaseNone {
		t.Fatal("forged response advanced the op")
	}
	if f.c.Stats().VerifyFailures == 0 {
		t.Fatal("verify failure not counted")
	}
}

func TestAddResponseMisrepresentingEntryFailsOp(t *testing.T) {
	f := newFixture(t)
	op, envs := f.c.Add(10, []byte("payload"))
	e := entryOf(t, envs)
	e.Value = []byte("swapped") // edge altered MY entry: detectable immediately
	blk := blockWith(0, e)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedAddResponse(blk)})
	if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
		t.Fatalf("op = %+v", op)
	}
}

func TestProofDigestMismatchFilesDispute(t *testing.T) {
	f := newFixture(t)
	op, envs := f.c.Add(10, []byte("payload"))
	blk := blockWith(0, entryOf(t, envs))
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedAddResponse(blk)})

	// Cloud certified a different block for the same bid.
	other := blockWith(0, entryOf(t, mustEnvs(f.c.Add(11, []byte("other")))))
	out := f.c.Receive(30, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedProof(&other)})
	if len(out) != 1 {
		t.Fatalf("outputs = %d, want dispute", len(out))
	}
	d, ok := out[0].Msg.(*wire.Dispute)
	if !ok || d.Kind != wire.DisputeAddLie {
		t.Fatalf("output = %+v", out[0].Msg)
	}
	if out[0].To != "cloud" {
		t.Fatalf("dispute sent to %s", out[0].To)
	}
	if op.Done {
		t.Fatal("op settled before verdict")
	}

	// Guilty verdict settles the op with ErrEdgeLied.
	v := &wire.Verdict{Edge: "edge-1", BID: 0, Kind: wire.DisputeAddLie, Guilty: true, Reason: "lied"}
	v.CloudSig = wcrypto.SignMsg(f.keys["cloud"], v)
	f.c.Receive(40, wire.Envelope{From: "cloud", To: "c1", Msg: v})
	if !errors.Is(op.Err, ErrEdgeLied) || op.Verdict == nil {
		t.Fatalf("op = %+v", op)
	}
}

func mustEnvs(op *Op, envs []wire.Envelope) []wire.Envelope { return envs }

func TestTickFilesTimeoutDispute(t *testing.T) {
	f := newFixture(t)
	op, envs := f.c.Add(10, []byte("payload"))
	blk := blockWith(0, entryOf(t, envs))
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedAddResponse(blk)})

	if out := f.c.Tick(500); out != nil {
		t.Fatal("dispute filed before timeout")
	}
	out := f.c.Tick(2000) // ProofTimeout is 1000
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	if _, ok := out[0].Msg.(*wire.Dispute); !ok {
		t.Fatalf("output = %T", out[0].Msg)
	}
	// No duplicate dispute on the next tick.
	if out := f.c.Tick(3000); out != nil {
		t.Fatal("dispute filed twice")
	}
	_ = op
}

func TestReadPhaseIICompletesInline(t *testing.T) {
	f := newFixture(t)
	op, _ := f.c.Read(10, 0)
	blk := blockWith(0)
	resp := &wire.ReadResponse{ReqID: op.ReqID, BID: 0, OK: true, Ts: 15, Block: blk,
		HasProof: true, Proof: *f.signedProof(&blk)}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	if op.Phase != core.PhaseII || op.Block == nil {
		t.Fatalf("op = %+v", op)
	}
}

func TestReadDenialWithoutGossipSettlesUnavailable(t *testing.T) {
	f := newFixture(t)
	op, _ := f.c.Read(10, 5)
	resp := &wire.ReadResponse{ReqID: op.ReqID, BID: 5, OK: false, Ts: 15}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	if !errors.Is(op.Err, ErrUnavailable) {
		t.Fatalf("op.Err = %v", op.Err)
	}
}

func TestReadDenialAgainstGossipDisputes(t *testing.T) {
	f := newFixture(t)
	g := &wire.Gossip{Edge: "edge-1", Ts: 12, LogSize: 10, Blocks: 2}
	g.CloudSig = wcrypto.SignMsg(f.keys["cloud"], g)
	f.c.Receive(13, wire.Envelope{From: "cloud", To: "c1", Msg: g})

	op, _ := f.c.Read(14, 1)
	denial := &wire.ReadResponse{ReqID: op.ReqID, BID: 1, OK: false, Ts: 15}
	denial.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], denial)
	out := f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: denial})
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	d, ok := out[0].Msg.(*wire.Dispute)
	if !ok || d.Kind != wire.DisputeOmission {
		t.Fatalf("output = %+v", out[0].Msg)
	}
}

func TestReadDenialPredatingGossipRetries(t *testing.T) {
	f := newFixture(t)
	g := &wire.Gossip{Edge: "edge-1", Ts: 100, LogSize: 10, Blocks: 2}
	g.CloudSig = wcrypto.SignMsg(f.keys["cloud"], g)
	f.c.Receive(101, wire.Envelope{From: "cloud", To: "c1", Msg: g})

	op, _ := f.c.Read(102, 1)
	denial := &wire.ReadResponse{ReqID: op.ReqID, BID: 1, OK: false, Ts: 50} // backdated
	denial.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], denial)
	out := f.c.Receive(110, wire.Envelope{From: "edge-1", To: "c1", Msg: denial})
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	if _, ok := out[0].Msg.(*wire.ReadRequest); !ok {
		t.Fatalf("output = %T, want retry ReadRequest", out[0].Msg)
	}
	if f.c.Stats().Retries != 1 {
		t.Fatalf("retries = %d", f.c.Stats().Retries)
	}
}

func TestGossipTracksNewest(t *testing.T) {
	f := newFixture(t)
	for _, ts := range []int64{100, 50, 200} {
		g := &wire.Gossip{Edge: "edge-1", Ts: ts, Blocks: uint64(ts)}
		g.CloudSig = wcrypto.SignMsg(f.keys["cloud"], g)
		f.c.Receive(ts+1, wire.Envelope{From: "cloud", To: "c1", Msg: g})
	}
	if f.c.Gossip().Ts != 200 {
		t.Fatalf("gossip ts = %d", f.c.Gossip().Ts)
	}
}

func TestGossipBadSignatureIgnored(t *testing.T) {
	f := newFixture(t)
	g := &wire.Gossip{Edge: "edge-1", Ts: 100, Blocks: 5}
	g.CloudSig = wcrypto.SignMsg(f.keys["edge-1"], g) // edge forging gossip
	f.c.Receive(101, wire.Envelope{From: "cloud", To: "c1", Msg: g})
	if f.c.Gossip() != nil {
		t.Fatal("forged gossip accepted")
	}
}

func TestPutBatchCreatesOnePerPair(t *testing.T) {
	f := newFixture(t)
	keys := [][]byte{[]byte("a"), []byte("b")}
	vals := [][]byte{[]byte("1"), []byte("2")}
	ops, envs := f.c.PutBatch(10, keys, vals)
	if len(ops) != 2 || len(envs) != 1 {
		t.Fatalf("ops=%d envs=%d", len(ops), len(envs))
	}
	batch := envs[0].Msg.(*wire.PutBatch)
	if len(batch.Entries) != 2 {
		t.Fatalf("batch entries = %d", len(batch.Entries))
	}
	// One signed response covering the whole block advances both ops.
	blk := blockWith(0, batch.Entries...)
	resp := &wire.PutResponse{BID: 0, Block: blk}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	for i, op := range ops {
		if op.Phase != core.PhaseI {
			t.Fatalf("op %d phase = %v", i, op.Phase)
		}
	}
}

func TestVerifyGetResponseL0Value(t *testing.T) {
	f := newFixture(t)
	e := wire.Entry{Client: "c1", Seq: 9, Key: []byte("k"), Value: []byte("v")}
	e.Sig = wcrypto.SignMsg(f.keys["c1"], &e)
	blk := wire.Block{Edge: "edge-1", ID: 0, StartPos: 0, Entries: []wire.Entry{e}}
	proof := f.signedProof(&blk)

	resp := &wire.GetResponse{
		ReqID: 1, Key: []byte("k"), Found: true, Value: []byte("v"), Ver: 1,
		Proof: wire.GetProof{L0Blocks: []wire.Block{blk}, L0Certs: []wire.BlockProof{*proof}},
	}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	if err := f.c.VerifyGetResponse(100, []byte("k"), resp); err != nil {
		t.Fatalf("honest get rejected: %v", err)
	}

	// Value contradicting L0 contents must fail.
	lied := *resp
	lied.Value = []byte("forged")
	lied.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], &lied)
	if err := f.c.VerifyGetResponse(100, []byte("k"), &lied); err == nil {
		t.Fatal("contradicting value accepted")
	}
}

func TestVerifyGetResponseRejectsNonConsecutiveL0(t *testing.T) {
	f := newFixture(t)
	b0 := wire.Block{Edge: "edge-1", ID: 0}
	b2 := wire.Block{Edge: "edge-1", ID: 2} // gap hides block 1
	resp := &wire.GetResponse{
		ReqID: 1,
		Proof: wire.GetProof{
			L0Blocks: []wire.Block{b0, b2},
			L0Certs:  []wire.BlockProof{*f.signedProof(&b0), *f.signedProof(&b2)},
		},
	}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	if err := f.c.VerifyGetResponse(100, []byte("k"), resp); err == nil {
		t.Fatal("L0 gap accepted")
	}
}

func TestVerifyGetResponseRejectsForeignBlocks(t *testing.T) {
	f := newFixture(t)
	blk := wire.Block{Edge: "edge-other", ID: 0}
	resp := &wire.GetResponse{
		ReqID: 1,
		Proof: wire.GetProof{L0Blocks: []wire.Block{blk}, L0Certs: []wire.BlockProof{{}}},
	}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	if err := f.c.VerifyGetResponse(100, []byte("k"), resp); err == nil {
		t.Fatal("foreign block accepted")
	}
}

func TestVerifyGetResponseUncertifiedIsPhaseI(t *testing.T) {
	f := newFixture(t)
	e := wire.Entry{Client: "c1", Seq: 9, Key: []byte("k"), Value: []byte("v")}
	e.Sig = wcrypto.SignMsg(f.keys["c1"], &e)
	blk := wire.Block{Edge: "edge-1", ID: 0, Entries: []wire.Entry{e}}

	op, _ := f.c.Get(10, []byte("k"))
	resp := &wire.GetResponse{
		ReqID: op.ReqID, Key: []byte("k"), Found: true, Value: []byte("v"), Ver: 1,
		Proof: wire.GetProof{L0Blocks: []wire.Block{blk}, L0Certs: []wire.BlockProof{{}}},
	}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	if op.Phase != core.PhaseI || op.Done {
		t.Fatalf("op = phase %v done %v", op.Phase, op.Done)
	}
	// The forwarded proof completes Phase II.
	f.c.Receive(30, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedProof(&blk)})
	if op.Phase != core.PhaseII {
		t.Fatalf("op phase = %v after proof", op.Phase)
	}
	if !bytes.Equal(op.GotValue, []byte("v")) {
		t.Fatalf("value = %q", op.GotValue)
	}
}

func TestDuplicateSeqDistinctClientsIndependent(t *testing.T) {
	// Regression guard: ops are keyed by seq per client core; two
	// different cores never interact.
	f1, f2 := newFixture(t), newFixture(t)
	op1, _ := f1.c.Add(10, []byte("a"))
	op2, _ := f2.c.Add(10, []byte("b"))
	if op1.Seq != op2.Seq {
		t.Fatal("expected identical seqs on distinct cores")
	}
}
