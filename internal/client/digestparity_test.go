package client

import (
	"bytes"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Digest-signing adversarial parity, client leg (extends the PR-2 bad-sig
// parity tests): the block-ack signature covers the block digest, and the
// client recomputes that digest from the block it received. A block whose
// frozen cache still holds the honest digest but whose fields were
// tampered — cache poisoning, possible only for in-process delivery by
// reference — must be rejected identically on the inline verify path and
// through the concurrent VerifyPool (whose PreVerify also recomputes).

// poisonedAck builds an honest digest-signed PutResponse for the client's
// put, then returns both the honest response and a cache-poisoned twin:
// same signature, same cached digest, tampered foreign entry.
func poisonedAck(t *testing.T, f *fixture) (op *Op, honest, poisoned *wire.PutResponse) {
	t.Helper()
	op, envs := f.c.Put(10, []byte("k"), []byte("v"))
	mine := entryOf(t, envs)
	foreign := wire.Entry{Client: "c2", Seq: 1, Key: []byte("k2"), Value: []byte("w")}
	blk := wire.Block{Edge: "edge-1", ID: 0, StartPos: 0, Entries: []wire.Entry{mine, foreign}}
	blk.Freeze()
	digest := wcrypto.BlockDigest(&blk)
	sig := wcrypto.SignBlockAck(f.keys["edge-1"], blk.ID, digest)
	honest = &wire.PutResponse{BID: blk.ID, Block: blk, EdgeSig: sig}

	bad := blk // shares the frozen cache: digest still reads as honest
	bad.Entries = append([]wire.Entry(nil), blk.Entries...)
	bad.Entries[1].Value = []byte("evil") // victim's own entry left intact
	if !bytes.Equal(bad.CachedDigest(), digest) {
		t.Fatal("test setup: cache should still serve the honest digest")
	}
	poisoned = &wire.PutResponse{BID: blk.ID, Block: bad, EdgeSig: sig}
	return op, honest, poisoned
}

func TestCachePoisonedAckRejectedInline(t *testing.T) {
	f := newFixture(t)
	op, _, poisoned := poisonedAck(t, f)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: poisoned})
	if op.Phase != core.PhaseNone {
		t.Fatal("cache-poisoned ack advanced the op")
	}
	if f.c.Stats().VerifyFailures == 0 {
		t.Fatal("verify failure not counted")
	}
}

func TestCachePoisonedAckRejectedThroughPool(t *testing.T) {
	deliver := func(t *testing.T, msg func(*fixture) (*Op, *wire.PutResponse)) (*Op, Stats) {
		f := newFixture(t)
		op, resp := msg(f)
		done := make(chan struct{})
		pool := wcrypto.NewVerifyPool(f.reg, 4, 4, func(env wire.Envelope) {
			f.c.Receive(20, env)
			close(done)
		})
		pool.Submit(wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
		<-done
		pool.Close()
		return op, f.c.Stats()
	}

	// Honest frozen block sails through the pool to Phase I.
	op, stats := deliver(t, func(f *fixture) (*Op, *wire.PutResponse) {
		op, honest, _ := poisonedAck(t, f)
		return op, honest
	})
	if op.Phase != core.PhaseI || stats.VerifyFailures != 0 {
		t.Fatalf("honest ack through pool: phase=%v stats=%+v", op.Phase, stats)
	}

	// The poisoned twin is rejected with the same observable outcome as
	// the inline path: no phase advance, one verify failure.
	op, stats = deliver(t, func(f *fixture) (*Op, *wire.PutResponse) {
		op, _, poisoned := poisonedAck(t, f)
		return op, poisoned
	})
	if op.Phase != core.PhaseNone {
		t.Fatal("cache-poisoned ack advanced the op through the pool")
	}
	if stats.VerifyFailures == 0 {
		t.Fatal("pool path did not count the verify failure")
	}
}
