package client

import (
	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Failover (client side): the cloud's signed LeadershipTransfer rebinds
// the session from a demoted or dead leader to the promoted replica of
// the same chain. Verification state carries over untouched — blocks,
// certificates and gossip are chain-scoped, so everything the session
// pinned under the old leader still binds under the new one. What needs
// work is the in-flight window: requests parked on the old node would
// otherwise wait out their proof timeout, so the client re-sends them.
// The promoted leader's replay defence recognises writes that already
// live in a mirrored block and re-acknowledges from that block, which
// makes the re-send idempotent; reads, gets and scans are simply served
// again from the new node's identical chain state.

// handleTransfer applies a cloud-signed leadership transfer for this
// session's chain: newer epochs rebind cfg.Edge to the promoted replica,
// remember the demoted node (its conviction must settle old disputes
// without freezing the chain), lift any ban recorded against it, and
// re-send every unsettled operation to the new leader.
func (c *Core) handleTransfer(now int64, from wire.NodeID, m *wire.LeadershipTransfer, verified bool) []wire.Envelope {
	if m.Chain != c.cfg.Chain {
		return nil
	}
	// The pool pre-verifies transfers against the envelope sender; trust
	// that only when the sender is the cloud itself.
	if !verified || from != c.cfg.Cloud {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, m, m.CloudSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	if m.Epoch <= c.epoch {
		return nil // stale or replayed transfer
	}
	c.epoch = m.Epoch
	if m.NewLeader == c.cfg.Edge {
		return nil
	}
	if c.formers == nil {
		c.formers = make(map[wire.NodeID]bool)
	}
	c.formers[c.cfg.Edge] = true
	delete(c.formers, m.NewLeader)
	c.cfg.Edge = m.NewLeader
	c.m.failovers.Inc()
	// A ban against the demoted node no longer blocks the chain: the
	// cloud vouched for the successor by signing the transfer.
	if c.banned != nil && c.banned.Edge != c.cfg.Edge {
		c.banned = nil
	}
	return c.rebind(now)
}

// rebind re-sends every unsettled operation to the (new) current edge.
//
//   - Writes are re-signed and re-submitted. If the entry already sits in
//     a block the new leader inherited, the replay defence re-acks from
//     that block (and re-attaches or re-subscribes its proof); otherwise
//     the entry is appended fresh. Reserved positions from the old leader
//     are not carried over: an AddAt whose reservation died with the old
//     leader re-submits as a plain append.
//   - Phase I ops get their proof clock restarted, so time lost to the
//     outage does not count against the proof timeout.
//   - Reads, gets and scans are re-requested under their original request
//     id. A read that already holds Phase I evidence only harvests the
//     certificate from the re-serve (see handleReadResponse); gets and
//     scans re-verify the fresh response from scratch.
//
// Disputed ops are left alone — their accusation is already with the
// cloud and the verdict, not the new leader, settles them.
func (c *Core) rebind(now int64) []wire.Envelope {
	var out []wire.Envelope
	resend := func(_ uint64, op *Op) {
		if op.Done || op.disputed {
			return
		}
		if op.Phase == core.PhaseI {
			op.PhaseIAt = now
		}
		if c.cfg.RetryEvery > 0 {
			// New edge, fresh retry budget: the old attempts were spent
			// against a leader that no longer serves.
			op.attempts = 1
			op.nextResend = now + c.retryDelay(op, 1)
		}
		if env, ok := c.resendOp(now, op); ok {
			out = append(out, env)
		}
	}
	c.bySeq.each(resend)
	c.byReq.each(resend)
	return out
}
