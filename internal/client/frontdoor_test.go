package client

import (
	"errors"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// overloadFixture builds a core with explicit front-door config.
func overloadFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	cfg.ID, cfg.Edge, cfg.Cloud = "c1", "edge-1", "cloud"
	if cfg.ProofTimeout == 0 {
		cfg.ProofTimeout = int64(1e12)
	}
	return &fixture{c: New(cfg, keys["c1"], reg), keys: keys, reg: reg}
}

func (f *fixture) signedOverload(seq uint64, hint int64) *wire.Overloaded {
	m := &wire.Overloaded{Seq: seq, RetryAfter: hint, Backlog: 3}
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	return m
}

func TestOverloadedPacesRetryThenSettlesTyped(t *testing.T) {
	f := overloadFixture(t, Config{RetryEvery: 100, MaxAttempts: 2})
	op, _ := f.c.Put(10, []byte("k"), []byte("v"))

	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedOverload(op.Seq, 1000)})
	if f.c.Stats().Overloads != 1 {
		t.Fatalf("Overloads = %d, want 1", f.c.Stats().Overloads)
	}
	if !op.overloaded {
		t.Fatal("op not marked overloaded")
	}
	if op.nextResend < 20+1000 {
		t.Fatalf("nextResend = %d, want pushed past the hint (>= 1020)", op.nextResend)
	}

	// The hinted deadline passes: one more re-send is allowed...
	f.c.Tick(op.nextResend + 1)
	if op.Done {
		t.Fatal("op settled with an attempt left")
	}
	if f.c.Stats().Resends != 1 {
		t.Fatalf("Resends = %d, want 1", f.c.Stats().Resends)
	}
	// ...and exhaustion surfaces the typed overload error, not the
	// generic unavailable.
	f.c.Tick(op.nextResend + 1)
	if !op.Done || !errors.Is(op.Err, ErrOverloaded) {
		t.Fatalf("exhausted op: done=%v err=%v, want ErrOverloaded", op.Done, op.Err)
	}
}

func TestOverloadedWithoutRetrySettlesImmediately(t *testing.T) {
	f := overloadFixture(t, Config{})
	op, _ := f.c.Put(10, []byte("k"), []byte("v"))
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedOverload(op.Seq, 1000)})
	if !op.Done || !errors.Is(op.Err, ErrOverloaded) {
		t.Fatalf("op without retry machinery: done=%v err=%v, want immediate ErrOverloaded", op.Done, op.Err)
	}
}

func TestOverloadedForgedOrForeignIgnored(t *testing.T) {
	f := overloadFixture(t, Config{RetryEvery: 100, MaxAttempts: 4})
	op, _ := f.c.Put(10, []byte("k"), []byte("v"))

	forged := f.signedOverload(op.Seq, 1000)
	forged.EdgeSig[0] ^= 1
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: forged})
	if op.overloaded || f.c.Stats().Overloads != 0 {
		t.Fatal("forged overload signal applied")
	}
	if f.c.Stats().VerifyFailures == 0 {
		t.Fatal("forged signal not counted as verify failure")
	}
	// A signal claiming to come from a different node is not this edge's
	// admission state.
	f.c.Receive(30, wire.Envelope{From: "edge-2", To: "c1", Msg: f.signedOverload(op.Seq, 1000)})
	if op.overloaded || f.c.Stats().Overloads != 0 {
		t.Fatal("foreign overload signal applied")
	}
}

// lightGossip arms the core with a cloud-signed frontier — the light
// client's precondition for skipping structural verification.
func (f *fixture) lightGossip(ts int64) {
	g := &wire.Gossip{Edge: "edge-1", Ts: ts, LogSize: 10, Blocks: 2}
	g.CloudSig = wcrypto.SignMsg(f.keys["cloud"], g)
	f.c.Receive(ts, wire.Envelope{From: "cloud", To: "c1", Msg: g})
}

// garbageGetResponse is edge-signed but structurally worthless: only a
// full verification pass can tell.
func (f *fixture) garbageGetResponse(reqID uint64, key []byte) *wire.GetResponse {
	resp := &wire.GetResponse{ReqID: reqID, Key: key, Found: true, Value: []byte("v"), Ver: 3}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	return resp
}

func TestLightClientSkipsUnsampledResponse(t *testing.T) {
	f := overloadFixture(t, Config{Light: true, SampleEvery: 8})
	f.lightGossip(5)
	key := []byte("k1")
	op, _ := f.c.Get(10, key)
	// Steer the seed so this request is NOT in the audit sample; the
	// sampler is deterministic, so the test is too.
	for f.c.sampleHit(op.ReqID) {
		f.c.cfg.SampleSeed++
	}

	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.garbageGetResponse(op.ReqID, key)})
	if !op.Done || op.Err != nil {
		t.Fatalf("skip path: done=%v err=%v", op.Done, op.Err)
	}
	if op.Phase != core.PhaseII || !op.Found || string(op.GotValue) != "v" || op.GotVer != 3 {
		t.Fatalf("skip path result: %+v", op)
	}
	st := f.c.Stats()
	if st.SampledSkips != 1 || st.FullVerifies != 0 {
		t.Fatalf("stats = skips %d / full %d, want 1 / 0", st.SampledSkips, st.FullVerifies)
	}
}

func TestLightClientForcedSampleStillVerifies(t *testing.T) {
	// SampleEvery 1 audits everything — the forced-hit mode conviction
	// tests use. The same garbage the skip path would have accepted must
	// fail full verification.
	f := overloadFixture(t, Config{Light: true, SampleEvery: 1})
	f.lightGossip(5)
	key := []byte("k1")
	op, _ := f.c.Get(10, key)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.garbageGetResponse(op.ReqID, key)})
	if !op.Done || op.Err == nil {
		t.Fatalf("audited garbage: done=%v err=%v, want failure", op.Done, op.Err)
	}
	st := f.c.Stats()
	if st.FullVerifies != 1 || st.SampledSkips != 0 {
		t.Fatalf("stats = full %d / skips %d, want 1 / 0", st.FullVerifies, st.SampledSkips)
	}
	if st.VerifyNanos == 0 {
		t.Fatal("full verification burned no measured time")
	}
}

func TestLightClientWithoutFrontierFallsBackToFullVerify(t *testing.T) {
	f := overloadFixture(t, Config{Light: true, SampleEvery: 1 << 20})
	key := []byte("k1")
	op, _ := f.c.Get(10, key)
	for f.c.sampleHit(op.ReqID) {
		f.c.cfg.SampleSeed++
	}
	// No gossiped frontier: even an unsampled response must be verified.
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.garbageGetResponse(op.ReqID, key)})
	if op.Err == nil {
		t.Fatal("frontier-less light client accepted garbage")
	}
	if f.c.Stats().SampledSkips != 0 {
		t.Fatal("frontier-less light client skipped verification")
	}
}

func TestSampleHitDeterministicAndDense(t *testing.T) {
	f := overloadFixture(t, Config{Light: true, SampleEvery: 16, SampleSeed: 7})
	g := overloadFixture(t, Config{Light: true, SampleEvery: 16, SampleSeed: 7})
	hits := 0
	const n = 4096
	for req := uint64(1); req <= n; req++ {
		a, b := f.c.sampleHit(req), g.c.sampleHit(req)
		if a != b {
			t.Fatalf("sampler not deterministic at req %d", req)
		}
		if a {
			hits++
		}
	}
	// Expected n/16 = 256; allow wide slack — the property that matters
	// is "a constant fraction is audited", not the exact binomial tail.
	if hits < n/32 || hits > n/8 {
		t.Fatalf("sampler audited %d of %d, want around %d", hits, n, n/16)
	}
	if one := overloadFixture(t, Config{Light: true, SampleEvery: 1}); !one.c.sampleHit(99) {
		t.Fatal("SampleEvery=1 must audit everything")
	}
}
