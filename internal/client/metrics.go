package client

import (
	"wedgechain/internal/obs"
)

// metrics is the client core's registry-backed instrumentation. One
// instance per Core: families are labeled {node, chain}, so a sharded
// session's cores (same client id, one chain per shard) keep distinct
// series and per-core Stats() snapshots stay per-core. Counters are
// always live (they are the storage behind Stats()); the op-tracing
// histograms — trust lag, ack latency, verify CPU — exist only when
// Config.Metrics names a real registry.
type metrics struct {
	enabled bool

	disputes       *obs.Counter
	liesDetected   *obs.Counter
	staleRejected  *obs.Counter
	retries        *obs.Counter
	verifyFailures *obs.Counter
	failovers      *obs.Counter
	resends        *obs.Counter
	overloads      *obs.Counter
	fullVerifies   *obs.Counter
	sampledSkips   *obs.Counter
	verifyNanos    *obs.Counter

	// Per-phase op tracing: send -> Phase I ack -> Phase II certificate.
	// trustLag (PhaseII - PhaseI) is the headline lazy-trust SLO; ack is
	// the client-observed Phase I latency; verifyFull/verifyLight time
	// the read-verification CPU split the light client trades on.
	trustLag    *obs.Histogram
	ack         *obs.Histogram
	verifyFull  *obs.Histogram
	verifyLight *obs.Histogram
}

func newMetrics(reg *obs.Registry, node, chain string) *metrics {
	m := &metrics{enabled: reg != nil}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := func(name, help string) *obs.Counter {
		return reg.CounterVec(name, help, "node", "chain").With(node, chain)
	}
	m.disputes = c("wedge_client_disputes_total", "disputes filed with the cloud")
	m.liesDetected = c("wedge_client_lies_detected_total", "edge lies detected by verification")
	m.staleRejected = c("wedge_client_stale_rejected_total", "reads rejected as stale")
	m.retries = c("wedge_client_retries_total", "verification-driven retries (stale gets, contradicted denials)")
	m.verifyFailures = c("wedge_client_verify_failures_total", "responses failing verification")
	m.failovers = c("wedge_client_failovers_total", "leadership transfers applied")
	m.resends = c("wedge_client_resends_total", "transport-level retry re-sends")
	m.overloads = c("wedge_client_overloads_total", "signed Overloaded shed signals accepted")
	m.fullVerifies = c("wedge_client_full_verifies_total", "get responses fully structurally verified")
	m.sampledSkips = c("wedge_client_sampled_skips_total", "get responses accepted on the light-client sampling fast path")
	m.verifyNanos = c("wedge_client_verify_cpu_nanos_total", "wall-clock nanoseconds spent in full verification")
	if !m.enabled {
		return m
	}
	m.trustLag = reg.HistogramVec("wedge_trust_lag_seconds",
		"time an acked write spent uncertified (stage=edge: block cut to certificate; stage=client: Phase I ack to Phase II proof)",
		obs.LatencyBuckets, "node", "stage").With(node, "client")
	h := func(name, help string) *obs.Histogram {
		return reg.HistogramVec(name, help, obs.LatencyBuckets, "node", "chain").With(node, chain)
	}
	m.ack = h("wedge_client_ack_seconds", "client-observed Phase I ack latency for writes")
	vv := reg.HistogramVec("wedge_client_verify_seconds",
		"per-read verification CPU", obs.LatencyBuckets, "node", "chain", "mode")
	m.verifyFull = vv.With(node, chain, "full")
	m.verifyLight = vv.With(node, chain, "light")
	return m
}

// isWrite reports whether k is a Phase I/II write op (trust-lag bearing).
func isWrite(k Kind) bool { return k == KindAdd || k == KindPut }

// markPhaseI records the ack latency of a write reaching Phase I. The
// timestamps are handler time (virtual ns in the sim, wall ns on
// Local/TCP), consistent within one world.
func (m *metrics) markPhaseI(op *Op) {
	if !m.enabled || !isWrite(op.Kind) {
		return
	}
	m.ack.Observe(float64(op.PhaseIAt-op.StartedAt) / 1e9)
}

// markPhaseII records the trust lag of a write reaching Phase II.
func (m *metrics) markPhaseII(op *Op) {
	if !m.enabled || !isWrite(op.Kind) {
		return
	}
	m.trustLag.Observe(float64(op.PhaseIIAt-op.PhaseIAt) / 1e9)
}
