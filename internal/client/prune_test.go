package client

import (
	"errors"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/scan"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// pruneBlocks builds two certified single-entry blocks: block 0 writes
// "hidden", block 1 writes "other". Returns blocks and certs.
func pruneBlocks(f *fixture) ([]wire.Block, []wire.BlockProof) {
	var blocks []wire.Block
	var certs []wire.BlockProof
	for i, k := range []string{"hidden", "other"} {
		e := wire.Entry{Client: "c2", Seq: uint64(i + 1), Key: []byte(k), Value: []byte("v" + k)}
		blk := wire.Block{Edge: "edge-1", ID: uint64(i), StartPos: uint64(i), Entries: []wire.Entry{e}}
		blk.Freeze()
		cert := wire.BlockProof{Edge: "edge-1", BID: blk.ID, Digest: wcrypto.BlockDigest(&blk)}
		cert.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &cert)
		blocks = append(blocks, blk)
		certs = append(certs, cert)
	}
	return blocks, certs
}

// deliverGet pushes one get response inline or through a VerifyPool.
func deliverGet(t *testing.T, f *fixture, pooled bool, m *wire.GetResponse) []wire.Envelope {
	t.Helper()
	env := wire.Envelope{From: "edge-1", To: "c1", Msg: m}
	if !pooled {
		return f.c.Receive(20, env)
	}
	var outs []wire.Envelope
	done := make(chan struct{})
	pool := wcrypto.NewVerifyPool(f.reg, 4, 4, func(e wire.Envelope) {
		outs = f.c.Receive(20, e)
		close(done)
	})
	pool.Submit(env)
	<-done
	pool.Close()
	return outs
}

// judgeWith adjudicates a dispute with the named block certified in the
// table, mirroring what the real cloud would hold.
func judgeWith(f *fixture, d *wire.Dispute, certified ...*wire.Block) wire.Verdict {
	certs := core.NewCertTable()
	for _, b := range certified {
		certs.Certify("edge-1", b.ID, wcrypto.RecomputedBlockDigest(b), 0)
	}
	return core.Judge(f.reg, certs, "cloud", "c1", d)
}

// TestGetHonestPruningVerifies pins the honest pruned get end to end,
// inline and pooled: the edge prunes the irrelevant block, the client
// verifies the exclusion and settles with the right answer.
func TestGetHonestPruningVerifies(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newFixture(t)
		blocks, certs := pruneBlocks(f)
		op, envs := f.c.Get(10, []byte("other"))
		req := envs[0].Msg.(*wire.GetRequest)
		resp, _ := mlsm.AssembleGet(req.Key, req.ReqID, mlsm.L0Source{Blocks: blocks, Certs: certs},
			mlsm.NewIndex([]int{10}), true)
		if len(resp.Proof.L0Pruned) != 1 || resp.Proof.L0Pruned[0].ID != 0 {
			t.Fatalf("pooled=%v: block 0 not pruned: %+v", pooled, resp.Proof)
		}
		if len(resp.Proof.L0Blocks) != 1 {
			t.Fatalf("pooled=%v: block 1 should ship full", pooled)
		}
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
		deliverGet(t, f, pooled, resp)
		if !op.Done || op.Err != nil || !op.Found || string(op.GotValue) != "vother" {
			t.Fatalf("pooled=%v: honest pruned get rejected: %+v err=%v", pooled, op, op.Err)
		}
		if op.Phase != core.PhaseII {
			t.Fatalf("pooled=%v: phase = %v", pooled, op.Phase)
		}
	}
}

// TestGetFalseExclusionConvictsInlineAndPooled: the edge hides the block
// holding the requested key behind its honest (digest-bound) summary.
// The exclusion-soundness check refutes it inline, the signed response
// is filed, and the Judge — holding the certified digests — convicts.
func TestGetFalseExclusionConvictsInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newFixture(t)
		blocks, certs := pruneBlocks(f)
		op, envs := f.c.Get(10, []byte("hidden"))
		req := envs[0].Msg.(*wire.GetRequest)
		// The lie: prune block 0 (which holds "hidden") with its honest
		// summary and claim the key does not exist.
		resp := &wire.GetResponse{ReqID: req.ReqID, Key: req.Key}
		resp.Proof.L0Blocks = blocks[1:]
		resp.Proof.L0Certs = certs[1:]
		resp.Proof.L0Pruned = []wire.PrunedBlock{wire.PruneBlock(&blocks[0])}
		resp.Proof.L0PrunedCerts = certs[:1]
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)

		outs := deliverGet(t, f, pooled, resp)
		if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
			t.Fatalf("pooled=%v: false exclusion not rejected: %+v err=%v", pooled, op, op.Err)
		}
		st := f.c.Stats()
		if st.VerifyFailures == 0 || st.LiesDetected == 0 || st.Disputes != 1 {
			t.Fatalf("pooled=%v: stats = %+v", pooled, st)
		}
		if len(outs) != 1 || outs[0].To != "cloud" {
			t.Fatalf("pooled=%v: dispute not sent to cloud: %v", pooled, outs)
		}
		d, ok := outs[0].Msg.(*wire.Dispute)
		if !ok || d.Kind != wire.DisputeGetLie {
			t.Fatalf("pooled=%v: wrong dispute: %+v", pooled, outs[0].Msg)
		}
		verdict := judgeWith(f, d, &blocks[0], &blocks[1])
		if !verdict.Guilty {
			t.Fatalf("pooled=%v: judge acquitted: %s", pooled, verdict.Reason)
		}
	}
}

// TestGetTamperedSummaryConvictsInlineAndPooled: the edge doctors the
// pruned summary so the key looks excluded. The claimed digest then
// contradicts the shipped certificate — detected inline, convicted by
// the Judge re-running the same binding check.
func TestGetTamperedSummaryConvictsInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newFixture(t)
		blocks, certs := pruneBlocks(f)
		op, envs := f.c.Get(10, []byte("hidden"))
		req := envs[0].Msg.(*wire.GetRequest)
		pb := wire.PruneBlock(&blocks[0])
		pb.Summary = wire.BlockSummary{} // "writes no keys at all"
		resp := &wire.GetResponse{ReqID: req.ReqID, Key: req.Key}
		resp.Proof.L0Blocks = blocks[1:]
		resp.Proof.L0Certs = certs[1:]
		resp.Proof.L0Pruned = []wire.PrunedBlock{pb}
		resp.Proof.L0PrunedCerts = certs[:1]
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)

		outs := deliverGet(t, f, pooled, resp)
		if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
			t.Fatalf("pooled=%v: tampered summary not rejected: %+v err=%v", pooled, op, op.Err)
		}
		if len(outs) != 1 {
			t.Fatalf("pooled=%v: no dispute filed", pooled)
		}
		d := outs[0].Msg.(*wire.Dispute)
		verdict := judgeWith(f, d, &blocks[0], &blocks[1])
		if !verdict.Guilty {
			t.Fatalf("pooled=%v: judge acquitted: %s", pooled, verdict.Reason)
		}
	}
}

// TestGetTamperedUncertifiedSummaryPinsAndConvicts: with no certificate
// to bind against, a tampered pruned summary passes structural checks but
// pins its claimed digest; the honest block proof contradicts the pin,
// the dispute names the block, and the Judge convicts against the
// certification table.
func TestGetTamperedUncertifiedSummaryPinsAndConvicts(t *testing.T) {
	f := newFixture(t)
	blocks, _ := pruneBlocks(f)
	op, envs := f.c.Get(10, []byte("hidden"))
	req := envs[0].Msg.(*wire.GetRequest)
	pb := wire.PruneBlock(&blocks[0])
	pb.Summary = wire.BlockSummary{}
	resp := &wire.GetResponse{ReqID: req.ReqID, Key: req.Key}
	resp.Proof.L0Blocks = blocks[1:]
	resp.Proof.L0Certs = []wire.BlockProof{{}} // block 1 uncertified too
	resp.Proof.L0Pruned = []wire.PrunedBlock{pb}
	resp.Proof.L0PrunedCerts = []wire.BlockProof{{}}
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)

	deliverGet(t, f, false, resp)
	if op.Done || op.Phase != core.PhaseI {
		t.Fatalf("uncertified tampered summary should park in Phase I: %+v", op)
	}
	// The honest proof for block 0 contradicts the pinned claimed digest.
	outs := f.c.Receive(30, wire.Envelope{From: "cloud", To: "c1", Msg: f.signedProof(&blocks[0])})
	if len(outs) != 1 {
		t.Fatalf("proof contradiction filed no dispute: %v", outs)
	}
	d, ok := outs[0].Msg.(*wire.Dispute)
	if !ok || d.Kind != wire.DisputeGetLie || d.BID != 0 {
		t.Fatalf("wrong dispute: %+v", outs[0].Msg)
	}
	verdict := judgeWith(f, d, &blocks[0], &blocks[1])
	if !verdict.Guilty {
		t.Fatalf("judge acquitted: %s", verdict.Reason)
	}
}

// TestScanFalseExclusionConvictsInlineAndPooled mirrors the get case on
// the scan path: a pruned block whose honest summary overlaps the
// scanned range is an unsound prune, detected and convicted.
func TestScanFalseExclusionConvictsInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newScanFixture(t)
		op, req := f.launchScan(t, []byte("h"), []byte("p")) // covers "hidden" and "other"
		blocks, certs := pruneBlocks(f.fixture)
		resp, _ := scan.Assemble(req.Start, req.End, req.ReqID,
			mlsm.L0Source{Blocks: blocks[1:], Certs: certs[1:]}, f.idx, false)
		resp.Proof.L0Pruned = []wire.PrunedBlock{wire.PruneBlock(&blocks[0])}
		resp.Proof.L0PrunedCerts = certs[:1]
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)

		outs := f.deliver(t, pooled, resp)
		if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
			t.Fatalf("pooled=%v: false scan exclusion not rejected: %+v err=%v", pooled, op, op.Err)
		}
		if len(outs) != 1 {
			t.Fatalf("pooled=%v: no dispute filed", pooled)
		}
		d := outs[0].Msg.(*wire.Dispute)
		if d.Kind != wire.DisputeScanLie {
			t.Fatalf("pooled=%v: wrong dispute kind %v", pooled, d.Kind)
		}
		certTable := core.NewCertTable()
		for i := range blocks {
			certTable.Certify("edge-1", blocks[i].ID, wcrypto.RecomputedBlockDigest(&blocks[i]), 0)
		}
		verdict := core.Judge(f.reg, certTable, "cloud", "c1", d)
		if !verdict.Guilty {
			t.Fatalf("pooled=%v: judge acquitted: %s", pooled, verdict.Reason)
		}
	}
}

// TestScanTamperedSummaryConvictsInlineAndPooled: the scan twin of the
// tampered-summary get — the doctored summary breaks the cert binding.
func TestScanTamperedSummaryConvictsInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newScanFixture(t)
		op, req := f.launchScan(t, []byte("h"), []byte("p"))
		blocks, certs := pruneBlocks(f.fixture)
		pb := wire.PruneBlock(&blocks[0])
		pb.Summary = wire.BlockSummary{}
		resp, _ := scan.Assemble(req.Start, req.End, req.ReqID,
			mlsm.L0Source{Blocks: blocks[1:], Certs: certs[1:]}, f.idx, false)
		resp.Proof.L0Pruned = []wire.PrunedBlock{pb}
		resp.Proof.L0PrunedCerts = certs[:1]
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)

		outs := f.deliver(t, pooled, resp)
		if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
			t.Fatalf("pooled=%v: tampered scan summary not rejected: %+v err=%v", pooled, op, op.Err)
		}
		if len(outs) != 1 {
			t.Fatalf("pooled=%v: no dispute filed", pooled)
		}
		verdict := judgeWith(f.fixture, outs[0].Msg.(*wire.Dispute), &blocks[0], &blocks[1])
		if !verdict.Guilty {
			t.Fatalf("pooled=%v: judge acquitted: %s", pooled, verdict.Reason)
		}
	}
}

// TestGetProofTimeoutDisputesPendingBid: a get stranded in Phase I past
// the proof timeout must accuse the block it is actually waiting on —
// not op.BID, which gets never set — so the Judge finds the bid in the
// evidence and can convict the certification-dropping edge.
func TestGetProofTimeoutDisputesPendingBid(t *testing.T) {
	f := newFixture(t)
	e := wire.Entry{Client: "c2", Seq: 1, Key: []byte("hidden"), Value: []byte("v")}
	blk := wire.Block{Edge: "edge-1", ID: 5, StartPos: 5, Entries: []wire.Entry{e}}
	blk.Freeze()
	// A signed index state whose compaction frontier starts the window at
	// block 5, so the pending bid is distinguishable from the zero value.
	pages := mlsm.Merge([]wire.KV{{Key: []byte("aaa"), Value: []byte("w"), Ver: 1}}, nil, 1, 4, 0, 5)
	roots := [][]byte{mlsm.LevelTree(pages).Root()}
	global := wire.SignedRoot{Edge: "edge-1", Epoch: 1, Root: mlsm.GlobalRoot(roots), Ts: 5, L0From: 5}
	global.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &global)
	idx := mlsm.NewIndex([]int{10})
	if err := idx.InstallLevel(1, pages, roots, global); err != nil {
		t.Fatal(err)
	}

	op, envs := f.c.Get(10, []byte("hidden"))
	req := envs[0].Msg.(*wire.GetRequest)
	resp, _ := mlsm.AssembleGet(req.Key, req.ReqID,
		mlsm.L0Source{Blocks: []wire.Block{blk}, Certs: []wire.BlockProof{{}}}, idx, true)
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	deliverGet(t, f, false, resp)
	if op.Done || op.Phase != core.PhaseI {
		t.Fatalf("get not parked in Phase I: %+v err=%v", op, op.Err)
	}
	outs := f.c.Tick(20 + f.c.cfg.ProofTimeout + 1) // past PhaseIAt (20) + timeout
	if len(outs) != 1 {
		t.Fatalf("timeout filed %d disputes", len(outs))
	}
	d := outs[0].Msg.(*wire.Dispute)
	if d.Kind != wire.DisputeGetLie || d.BID != 5 {
		t.Fatalf("dispute names bid %d, want 5", d.BID)
	}
	// The Judge never saw block 5 certified: promised-but-never-certified.
	verdict := core.Judge(f.reg, core.NewCertTable(), "cloud", "c1", d)
	if !verdict.Guilty {
		t.Fatalf("judge acquitted: %s", verdict.Reason)
	}
}

// TestGetVerdictAttachesToSettledDispute pins the reporting path the CLI
// relies on: a structural-defect dispute settles the op immediately, and
// the verdict arriving later is still attached to the op.
func TestGetVerdictAttachesToSettledDispute(t *testing.T) {
	f := newFixture(t)
	blocks, certs := pruneBlocks(f)
	op, envs := f.c.Get(10, []byte("hidden"))
	req := envs[0].Msg.(*wire.GetRequest)
	resp := &wire.GetResponse{ReqID: req.ReqID, Key: req.Key}
	resp.Proof.L0Blocks = blocks[1:]
	resp.Proof.L0Certs = certs[1:]
	resp.Proof.L0Pruned = []wire.PrunedBlock{wire.PruneBlock(&blocks[0])}
	resp.Proof.L0PrunedCerts = certs[:1]
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	outs := deliverGet(t, f, false, resp)
	if !op.Done || !op.DisputeFiled() || op.Verdict != nil {
		t.Fatalf("setup: %+v", op)
	}
	d := outs[0].Msg.(*wire.Dispute)
	v := judgeWith(f, d, &blocks[0], &blocks[1])
	v.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &v)
	f.c.Receive(40, wire.Envelope{From: "cloud", To: "c1", Msg: &v})
	if op.Verdict == nil || !op.Verdict.Guilty {
		t.Fatalf("verdict not attached to settled disputed op: %+v", op.Verdict)
	}
}
