package client

import (
	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Retry: bounded, jittered re-sends of operations the edge never answered.
// Under a lossy or partitioned network a request (or its response) frame
// can simply vanish; without retry the op hangs until the proof timeout
// and surfaces as a dispute against an innocent edge. With RetryEvery set,
// an op that has not reached Phase I by its deadline is re-signed and
// re-sent with exponential backoff plus deterministic jitter, up to
// MaxAttempts sends in total; exhaustion settles the op with
// ErrUnavailable — a typed, bounded failure the application can act on.
// Phase I ops are NOT retried here: they hold a signed acknowledgement,
// and the proof-timeout dispute machinery is their escalation path.
//
// Re-sends are idempotent end to end: the edge's replay defence re-acks a
// write whose entry already sits in the log byte-identically, and reads
// re-serve under their original request id.

// tickRetry runs the retry pass: collect due ops first, then settle or
// re-send — settling mutates the rings being iterated.
func (c *Core) tickRetry(now int64) []wire.Envelope {
	var due []*Op
	collect := func(_ uint64, op *Op) {
		if op.Done || op.disputed || op.Phase != core.PhaseNone {
			return
		}
		if op.nextResend == 0 {
			// First sight of this op: its initial send at StartedAt was
			// attempt one; arm the first deadline.
			op.attempts = 1
			op.nextResend = op.StartedAt + c.retryDelay(op, 1)
		}
		if now >= op.nextResend {
			due = append(due, op)
		}
	}
	c.bySeq.each(collect)
	c.byReq.each(collect)
	var out []wire.Envelope
	for _, op := range due {
		if op.attempts >= c.cfg.MaxAttempts {
			// An op the edge explicitly shed fails as "overloaded, come
			// back later"; silence stays the generic unavailable.
			if op.overloaded {
				c.settle(op, ErrOverloaded)
			} else {
				c.settle(op, ErrUnavailable)
			}
			continue
		}
		op.attempts++
		op.nextResend = now + c.retryDelay(op, op.attempts)
		if env, ok := c.resendOp(now, op); ok {
			c.m.resends.Inc()
			out = append(out, env)
		}
	}
	return out
}

// retryDelay is the wait before attempt+1: RetryEvery doubled per prior
// attempt (capped at 32x) plus deterministic jitter in [0, base/2), so a
// fleet of clients cut off by the same partition does not thunder back in
// lockstep — while the same run under the same seed stays reproducible.
func (c *Core) retryDelay(op *Op, attempt int) int64 {
	base := c.cfg.RetryEvery
	for i := 1; i < attempt && i < 6; i++ {
		base <<= 1
	}
	key := op.Seq
	if key == 0 {
		key = op.ReqID
	}
	return base + retryJitter(key, uint64(attempt), base/2)
}

// retryJitter hashes (op key, attempt) through a splitmix64 finalizer to a
// value in [0, span) — random-looking across ops and attempts, identical
// across runs.
func retryJitter(key, attempt uint64, span int64) int64 {
	if span <= 0 {
		return 0
	}
	x := key*0x9e3779b97f4a7c15 + attempt*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x % uint64(span))
}

// handleOverloaded applies an edge's signed admission signal. The edge
// sheds writes while its uncertified backlog is at cap and — instead of
// silent loss — names the triggering operation (Seq/ReqID echo) and hints
// when certification progress should reopen admission. The signal is
// edge-scoped: every still-unacknowledged op at this edge is backing up
// behind the same backlog, so all of them are marked overloaded and have
// their next re-send pushed past the hint (plus jitter). Marked ops that
// exhaust their retries settle with ErrOverloaded; ops the edge accepts
// on a later re-send proceed normally.
func (c *Core) handleOverloaded(now int64, from wire.NodeID, m *wire.Overloaded, verified bool) []wire.Envelope {
	if from != c.cfg.Edge || c.banned != nil {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	c.m.overloads.Inc()
	hint := m.RetryAfter
	if hint <= 0 {
		hint = c.cfg.RetryEvery
	}
	// Collect first: settling mutates the rings being iterated.
	var hit []*Op
	collect := func(_ uint64, op *Op) {
		if op.Done || op.disputed || op.Phase != core.PhaseNone {
			return
		}
		hit = append(hit, op)
	}
	c.bySeq.each(collect)
	c.byReq.each(collect)
	for _, op := range hit {
		op.overloaded = true
		if c.cfg.RetryEvery <= 0 {
			// No retry machinery: the shed is terminal for this op —
			// surface the typed failure now instead of hanging forever.
			c.settle(op, ErrOverloaded)
			continue
		}
		if op.attempts == 0 {
			op.attempts = 1
		}
		key := op.Seq
		if key == 0 {
			key = op.ReqID
		}
		next := now + hint + retryJitter(key, uint64(op.attempts), hint/2)
		if next > op.nextResend {
			op.nextResend = next
		}
	}
	return nil
}

// resendOp rebuilds the wire request for an unsettled op and aims it at
// the current edge. Writes are re-signed with a fresh timestamp (the seq
// is what the replay defence keys on); reads keep their original request
// id so a late first response and the re-serve settle the same op. Shared
// by the retry pass and post-failover rebind.
func (c *Core) resendOp(now int64, op *Op) (wire.Envelope, bool) {
	var msg wire.Message
	switch op.Kind {
	case KindAdd, KindPut:
		e := wire.Entry{Client: c.cfg.ID, Seq: op.Seq, Key: op.Key, Value: op.Value, Ts: now}
		e.Sig = wcrypto.SignMsg(c.key, &e)
		if op.Kind == KindPut {
			msg = &wire.PutRequest{Entry: e}
		} else {
			msg = &wire.AddRequest{Entry: e, WantBlock: true}
		}
	case KindRead:
		msg = &wire.ReadRequest{BID: op.BID, ReqID: op.ReqID}
	case KindGet:
		msg = &wire.GetRequest{Key: op.Key, ReqID: op.ReqID}
	case KindScan:
		msg = &wire.ScanRequest{Start: op.ScanStart, End: op.ScanEnd, Limit: uint32(op.ScanLimit), ReqID: op.ReqID}
	default:
		return wire.Envelope{}, false
	}
	return wire.Envelope{From: c.cfg.ID, To: c.cfg.Edge, Msg: msg}, true
}
