package client

// keyRing maps monotonically assigned uint64 keys — entry sequence
// numbers, request ids, block ids — to values, giving the client's former
// bySeq/byReq/byBID maps the flat position-indexed treatment the edge's
// reqRing and bid rings received in PRs 3-4: every lookup is an index
// into a power-of-two slice, no hashing, no per-op map churn, and settled
// operations actually leave the structure (the maps never shrank).
//
// Keys live in a window starting at base; the base chases the smallest
// live key as entries are deleted. Unlike the edge's rings the base can
// also move backward (rebase): a late-delivered read response may pin an
// uncertified block whose id the window has already passed, and dropping
// that registration would strand the operation without its dispute
// timeout. Capacity is bounded: one stuck key (an op whose response
// never arrives) must not make the ring grow with the live key SPAN, so
// keys that would stretch the window past keyRingMaxCap live in a small
// overflow map instead — the worst case degrades to exactly the old map
// behavior, never beyond it.
type keyRing[T any] struct {
	base     uint64 // key of slots[head]
	top      uint64 // one past the highest used key while live > 0
	head     int    // ring index of base
	live     int    // used slots
	slots    []keySlot[T]
	overflow map[uint64]T // keys outside the bounded window
}

type keySlot[T any] struct {
	val  T
	used bool
}

const (
	keyRingMinCap = 64
	// keyRingMaxCap bounds the windowed span (slots are a couple dozen
	// bytes; 1<<16 keeps the worst-case ring around a megabyte).
	keyRingMaxCap = 1 << 16
)

func (r *keyRing[T]) slot(off uint64) *keySlot[T] {
	return &r.slots[(r.head+int(off))&(len(r.slots)-1)]
}

// len returns the number of live entries.
func (r *keyRing[T]) len() int { return r.live + len(r.overflow) }

// get returns the value stored at k.
func (r *keyRing[T]) get(k uint64) (T, bool) {
	if r.live > 0 && k >= r.base && k-r.base < uint64(len(r.slots)) {
		if s := r.slot(k - r.base); s.used {
			return s.val, true
		}
	}
	if v, ok := r.overflow[k]; ok {
		return v, true
	}
	var zero T
	return zero, false
}

// set stores v at k, growing or rebasing the window as needed; keys that
// would stretch the window past its capacity bound go to the overflow
// map.
func (r *keyRing[T]) set(k uint64, v T) {
	if _, ok := r.overflow[k]; ok {
		r.overflow[k] = v // update in place; never duplicate a key
		return
	}
	if len(r.slots) == 0 {
		r.slots = make([]keySlot[T], keyRingMinCap)
	}
	switch {
	case r.live == 0:
		// Empty window: restart it wherever k lands.
		r.base, r.top, r.head = k, k, 0
	case k < r.base:
		if r.top-k > keyRingMaxCap {
			r.setOverflow(k, v)
			return
		}
		r.rebase(k)
	case k-r.base >= uint64(len(r.slots)):
		if k-r.base+1 > keyRingMaxCap {
			r.setOverflow(k, v)
			return
		}
		r.grow(k - r.base + 1)
	}
	if k+1 > r.top {
		r.top = k + 1
	}
	s := r.slot(k - r.base)
	if !s.used {
		r.live++
	}
	s.val = v
	s.used = true
}

func (r *keyRing[T]) setOverflow(k uint64, v T) {
	if r.overflow == nil {
		r.overflow = make(map[uint64]T)
	}
	r.overflow[k] = v
}

// delete clears k and lets the base chase the remaining live prefix.
func (r *keyRing[T]) delete(k uint64) {
	if _, ok := r.overflow[k]; ok {
		delete(r.overflow, k)
		return
	}
	if r.live == 0 || k < r.base || k-r.base >= uint64(len(r.slots)) {
		return
	}
	s := r.slot(k - r.base)
	if !s.used {
		return
	}
	*s = keySlot[T]{}
	r.live--
	if r.live == 0 {
		return // next set restarts the window
	}
	for !r.slots[r.head].used && r.base < r.top {
		r.slots[r.head] = keySlot[T]{}
		r.head = (r.head + 1) & (len(r.slots) - 1)
		r.base++
	}
}

// each calls fn for every live entry — windowed entries in key order,
// then any overflow entries (unordered; callers iterate for effect, not
// order). The set is snapshotted first, so fn may get, set or delete
// freely (the verdict ban path settles — and thereby deletes —
// operations mid-iteration).
func (r *keyRing[T]) each(fn func(k uint64, v T)) {
	if r.len() == 0 {
		return
	}
	type kv struct {
		k uint64
		v T
	}
	snap := make([]kv, 0, r.len())
	if r.live > 0 {
		for off := uint64(0); off < r.top-r.base && off < uint64(len(r.slots)); off++ {
			if s := r.slot(off); s.used {
				snap = append(snap, kv{r.base + off, s.val})
			}
		}
	}
	for k, v := range r.overflow {
		snap = append(snap, kv{k, v})
	}
	for _, e := range snap {
		fn(e.k, e.v)
	}
}

// rebase moves the window start backward to k — the straggler case. The
// freed slots behind the old base are unused by construction, so only
// capacity needs checking.
func (r *keyRing[T]) rebase(k uint64) {
	if span := r.top - k; span > uint64(len(r.slots)) {
		r.grow(span)
	}
	off := int(r.base - k)
	r.head = (r.head - off) & (len(r.slots) - 1)
	r.base = k
}

// grow resizes the ring to hold at least need keys, unwrapping the live
// window to the front of the new slice.
func (r *keyRing[T]) grow(need uint64) {
	newCap := keyRingMinCap
	for uint64(newCap) < need {
		newCap <<= 1
	}
	slots := make([]keySlot[T], newCap)
	for i := range r.slots {
		slots[i] = r.slots[(r.head+i)&(len(r.slots)-1)]
	}
	r.slots = slots
	r.head = 0
}
