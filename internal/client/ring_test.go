package client

import (
	"fmt"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// TestKeyRingWrap is the ring-wrap regression test: keys are set and
// deleted in a sliding window far wider than the initial capacity, so
// the base chases through several wraparounds and at least one grow,
// and every lookup must stay exact.
func TestKeyRingWrap(t *testing.T) {
	var r keyRing[int]
	const span = 1000
	const window = 100 // > keyRingMinCap, forces a grow
	for k := uint64(1); k <= span; k++ {
		r.set(k, int(k)*3)
		if k > window {
			r.delete(k - window)
		}
		// Spot-check the whole live window after each step.
		lo := uint64(1)
		if k > window {
			lo = k - window + 1
		}
		for q := lo; q <= k; q++ {
			v, ok := r.get(q)
			if !ok || v != int(q)*3 {
				t.Fatalf("k=%d: get(%d) = (%d, %v)", k, q, v, ok)
			}
		}
		if _, ok := r.get(lo - 1); ok && lo > 1 {
			t.Fatalf("k=%d: deleted key %d still present", k, lo-1)
		}
	}
	if r.len() != window {
		t.Fatalf("live = %d, want %d", r.len(), window)
	}
}

// TestKeyRingOutOfOrderDelete deletes from the middle first: the base
// must not advance past live keys, and must catch up once the prefix
// clears.
func TestKeyRingOutOfOrderDelete(t *testing.T) {
	var r keyRing[string]
	for k := uint64(10); k < 20; k++ {
		r.set(k, fmt.Sprint(k))
	}
	for k := uint64(15); k < 20; k++ {
		r.delete(k)
	}
	if v, ok := r.get(10); !ok || v != "10" {
		t.Fatalf("leading key lost: %q %v", v, ok)
	}
	for k := uint64(10); k < 15; k++ {
		r.delete(k)
	}
	if r.len() != 0 {
		t.Fatalf("live = %d", r.len())
	}
	// Window restarts cleanly far away.
	r.set(1_000_000, "far")
	if v, ok := r.get(1_000_000); !ok || v != "far" {
		t.Fatal("window restart failed")
	}
}

// TestKeyRingRebase covers the straggler path: after the window has
// advanced, a set at an older key must rebase backward instead of being
// dropped (a late-delivered read response pinning an old block id).
func TestKeyRingRebase(t *testing.T) {
	var r keyRing[int]
	for k := uint64(100); k < 140; k++ {
		r.set(k, int(k))
	}
	for k := uint64(100); k < 120; k++ {
		r.delete(k) // base advances to 120
	}
	r.set(50, 555) // straggler far behind the base
	if v, ok := r.get(50); !ok || v != 555 {
		t.Fatalf("straggler lost: %d %v", v, ok)
	}
	for k := uint64(120); k < 140; k++ {
		if v, ok := r.get(k); !ok || v != int(k) {
			t.Fatalf("rebase corrupted key %d: %d %v", k, v, ok)
		}
	}
	seen := map[uint64]bool{}
	r.each(func(k uint64, v int) { seen[k] = true })
	if len(seen) != 21 || !seen[50] || !seen[139] {
		t.Fatalf("each saw %d keys: %v", len(seen), seen)
	}
}

// TestKeyRingSpanBounded: one stuck low key plus ever-growing high keys
// must not grow the ring with the span — far keys spill to the overflow
// map and stay fully functional, bounding worst-case memory at the old
// map behavior.
func TestKeyRingSpanBounded(t *testing.T) {
	var r keyRing[int]
	r.set(1, 111) // stuck op: never deleted
	far := uint64(keyRingMaxCap) * 40
	for k := far; k < far+100; k++ {
		r.set(k, int(k))
	}
	if len(r.slots) > keyRingMaxCap {
		t.Fatalf("ring grew to %d slots chasing the span", len(r.slots))
	}
	if v, ok := r.get(1); !ok || v != 111 {
		t.Fatal("stuck key lost")
	}
	for k := far; k < far+100; k++ {
		if v, ok := r.get(k); !ok || v != int(k) {
			t.Fatalf("overflowed key %d lost: %d %v", k, v, ok)
		}
	}
	if r.len() != 101 {
		t.Fatalf("live = %d", r.len())
	}
	seen := 0
	r.each(func(k uint64, v int) { seen++ })
	if seen != 101 {
		t.Fatalf("each visited %d", seen)
	}
	// Updates and deletes reach overflow entries; the stuck key too.
	r.set(far, -1)
	if v, _ := r.get(far); v != -1 {
		t.Fatal("overflow update lost")
	}
	for k := far; k < far+100; k++ {
		r.delete(k)
	}
	r.delete(1)
	if r.len() != 0 {
		t.Fatalf("live = %d after deletes", r.len())
	}
}

// TestByBIDReleasesResolvedDependency: a proof that resolves one of a
// read's pinned bids must release that bid's waiter slot even while the
// op still pends on other bids — otherwise the Done op would pin the
// byBID ring base forever.
func TestByBIDReleasesResolvedDependency(t *testing.T) {
	f := newFixture(t)
	mk := func(id uint64, key string) wire.Block {
		e := wire.Entry{Client: "c2", Seq: id + 1, Key: []byte(key), Value: []byte("v")}
		blk := wire.Block{Edge: "edge-1", ID: id, StartPos: id, Entries: []wire.Entry{e}}
		blk.Freeze()
		return blk
	}
	b0, b1 := mk(0, "k"), mk(1, "other")
	op, envs := f.c.Get(10, []byte("k"))
	req := envs[0].Msg.(*wire.GetRequest)
	resp, _ := mlsm.AssembleGet(req.Key, req.ReqID,
		mlsm.L0Source{Blocks: []wire.Block{b0, b1}, Certs: []wire.BlockProof{{}, {}}},
		mlsm.NewIndex([]int{10}), false)
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	if op.Phase != core.PhaseI || f.c.byBID.len() != 2 {
		t.Fatalf("setup: phase=%v bids=%d", op.Phase, f.c.byBID.len())
	}
	f.c.Receive(30, wire.Envelope{From: "cloud", To: "c1", Msg: f.signedProof(&b0)})
	if op.Done {
		t.Fatal("op settled with a dependency outstanding")
	}
	if f.c.byBID.len() != 1 {
		t.Fatalf("resolved bid still registered: %d live", f.c.byBID.len())
	}
	f.c.Receive(40, wire.Envelope{From: "cloud", To: "c1", Msg: f.signedProof(&b1)})
	if !op.Done || op.Err != nil || op.Phase != core.PhaseII {
		t.Fatalf("op did not settle: %+v", op)
	}
	if f.c.byBID.len() != 0 {
		t.Fatalf("byBID not empty after settlement: %d", f.c.byBID.len())
	}
}

// TestClientRingsSurviveDeepPipeline drives the real client through a
// window of operations far wider than the initial ring capacity — the
// end-to-end version of the wrap test: many puts acknowledged out of
// lockstep, each settled by its proof, with correctness asserted per op.
func TestClientRingsSurviveDeepPipeline(t *testing.T) {
	f := newFixture(t)
	const n = 300 // >> keyRingMinCap
	type launched struct {
		op  *Op
		blk wire.Block
	}
	var ops []launched
	for i := 0; i < n; i++ {
		op, envs := f.c.Put(10, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
		e := entryOf(t, envs)
		blk := wire.Block{Edge: "edge-1", ID: uint64(i), StartPos: uint64(i), Entries: []wire.Entry{e}}
		ops = append(ops, launched{op, blk})
	}
	// Acknowledge and certify in an interleaved pattern so the byBID and
	// bySeq windows wrap while earlier ops settle.
	for i := range ops {
		resp := &wire.PutResponse{BID: ops[i].blk.ID, Block: ops[i].blk}
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
		f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
		if ops[i].op.Phase != core.PhaseI {
			t.Fatalf("op %d not Phase I after ack", i)
		}
		if i >= 7 {
			j := i - 7
			f.c.Receive(30, wire.Envelope{From: "cloud", To: "c1", Msg: f.signedProof(&ops[j].blk)})
			if ops[j].op.Phase != core.PhaseII || !ops[j].op.Done {
				t.Fatalf("op %d not settled by its proof", j)
			}
		}
	}
	for i := n - 7; i < n; i++ {
		f.c.Receive(40, wire.Envelope{From: "cloud", To: "c1", Msg: f.signedProof(&ops[i].blk)})
	}
	for i, l := range ops {
		if !l.op.Done || l.op.Err != nil || l.op.Phase != core.PhaseII {
			t.Fatalf("op %d: %+v", i, l.op)
		}
	}
	if f.c.Pending() != 0 {
		t.Fatalf("pending = %d", f.c.Pending())
	}
}
