package client

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/scan"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// scanFixture extends the client fixture with a merged single-level index
// (8 keys in 2-record pages) under a cloud-signed root, so honest scan
// responses can be assembled and tampered locally.
type scanFixture struct {
	*fixture
	idx *mlsm.Index
}

func newScanFixture(t *testing.T) *scanFixture {
	t.Helper()
	f := newFixture(t)
	var kvs []wire.KV
	for i := 0; i < 8; i++ {
		kvs = append(kvs, wire.KV{Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte(fmt.Sprintf("v%02d", i)), Ver: uint64(i + 1)})
	}
	pages := mlsm.Merge(kvs, nil, 1, 2, 0, 50)
	idx := mlsm.NewIndex([]int{10, 100})
	roots := [][]byte{mlsm.LevelTree(pages).Root(), mlsm.LevelTree(nil).Root()}
	global := wire.SignedRoot{Edge: "edge-1", Epoch: 1, Root: mlsm.GlobalRoot(roots), Ts: 5}
	global.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &global)
	if err := idx.InstallLevel(1, pages, roots, global); err != nil {
		t.Fatal(err)
	}
	return &scanFixture{fixture: f, idx: idx}
}

// launchScan starts a scan op and returns it with the request it emitted.
func (f *scanFixture) launchScan(t *testing.T, start, end []byte) (*Op, *wire.ScanRequest) {
	t.Helper()
	op, envs := f.c.Scan(10, start, end, 0)
	if len(envs) != 1 {
		t.Fatalf("scan emitted %d envelopes", len(envs))
	}
	return op, envs[0].Msg.(*wire.ScanRequest)
}

// honestScanResponse assembles and signs the edge's answer to req.
func (f *scanFixture) honestScanResponse(req *wire.ScanRequest) *wire.ScanResponse {
	resp, _ := scan.Assemble(req.Start, req.End, req.ReqID, mlsm.L0Source{}, f.idx, true)
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	return resp
}

// deliver pushes one envelope to the client either inline or through a
// concurrent VerifyPool, returning after the client processed it and
// collecting anything the client sent in response.
func (f *scanFixture) deliver(t *testing.T, pooled bool, msg wire.Message) []wire.Envelope {
	t.Helper()
	env := wire.Envelope{From: "edge-1", To: "c1", Msg: msg}
	if !pooled {
		return f.c.Receive(20, env)
	}
	var outs []wire.Envelope
	done := make(chan struct{})
	pool := wcrypto.NewVerifyPool(f.reg, 4, 4, func(e wire.Envelope) {
		outs = f.c.Receive(20, e)
		close(done)
	})
	pool.Submit(env)
	<-done
	pool.Close()
	return outs
}

// TestScanVerifiedInlineAndPooled pins the honest path through both
// delivery modes: the derived result is complete and ordered, and the op
// reaches Phase II with no uncertified dependencies.
func TestScanVerifiedInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newScanFixture(t)
		op, req := f.launchScan(t, []byte("k02"), []byte("k06"))
		f.deliver(t, pooled, f.honestScanResponse(req))
		if !op.Done || op.Err != nil || op.Phase != core.PhaseII {
			t.Fatalf("pooled=%v: op did not settle cleanly: %+v", pooled, op)
		}
		if len(op.ScanKVs) != 4 || string(op.ScanKVs[0].Key) != "k02" || string(op.ScanKVs[3].Key) != "k05" {
			t.Fatalf("pooled=%v: result = %v", pooled, op.ScanKVs)
		}
	}
}

// TestScanOmissionParityAndConviction drives a mid-range omission through
// the inline and pooled paths: both must reject identically, file the
// signed response as dispute evidence, and that evidence must convict the
// edge when adjudicated by the cloud's own Judge.
func TestScanOmissionParityAndConviction(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		f := newScanFixture(t)
		op, req := f.launchScan(t, []byte("k01"), []byte("k07"))
		resp := f.honestScanResponse(req)
		// Omit one record mid-range, then re-sign: the lie must pass the
		// signature check and fail only the completeness proof.
		p := &resp.Proof.Levels[0].Pages[1]
		p.KVs = append([]wire.KV(nil), p.KVs[:1]...)
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)

		outs := f.deliver(t, pooled, resp)
		if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
			t.Fatalf("pooled=%v: omission not rejected: %+v", pooled, op)
		}
		st := f.c.Stats()
		if st.VerifyFailures == 0 || st.LiesDetected == 0 || st.Disputes != 1 {
			t.Fatalf("pooled=%v: stats = %+v", pooled, st)
		}
		if len(outs) != 1 || outs[0].To != "cloud" {
			t.Fatalf("pooled=%v: dispute not sent to cloud: %v", pooled, outs)
		}
		d, ok := outs[0].Msg.(*wire.Dispute)
		if !ok || d.Kind != wire.DisputeScanLie {
			t.Fatalf("pooled=%v: wrong dispute: %+v", pooled, outs[0].Msg)
		}
		verdict := core.Judge(f.reg, core.NewCertTable(), "cloud", "c1", d)
		if !verdict.Guilty {
			t.Fatalf("pooled=%v: judge acquitted: %s", pooled, verdict.Reason)
		}
	}
}

// TestScanWrongRangeEchoRejectedWithoutDispute: a Merkle-valid proof of a
// narrower range than requested is rejected, but not disputed — the cloud
// cannot know what was asked, so it is not provable evidence.
func TestScanWrongRangeEchoRejectedWithoutDispute(t *testing.T) {
	f := newScanFixture(t)
	op, req := f.launchScan(t, []byte("k01"), []byte("k07"))
	narrower := *req
	narrower.End = []byte("k04")
	resp := f.honestScanResponse(&narrower)
	if outs := f.deliver(t, false, resp); len(outs) != 0 {
		t.Fatalf("unexpected output: %v", outs)
	}
	if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
		t.Fatalf("wrong-range response accepted: %+v", op)
	}
	if f.c.Stats().Disputes != 0 {
		t.Fatal("unprovable range mismatch was disputed")
	}
}

// poisonedScan builds an honest digest-signed scan response over one L0
// block, then a cache-poisoned twin: same signature, same cached digest,
// tampered entry — deliverable only by reference (in-process transports).
func poisonedScan(t *testing.T, f *scanFixture) (op *Op, honest, poisoned *wire.ScanResponse) {
	t.Helper()
	op, req := f.launchScan(t, nil, nil)
	blk := wire.Block{Edge: "edge-1", ID: 0, StartPos: 0, Entries: []wire.Entry{
		{Client: "c2", Seq: 1, Key: []byte("zz"), Value: []byte("w")},
	}}
	blk.Freeze()
	digest := wcrypto.BlockDigest(&blk)
	cert := wire.BlockProof{Edge: "edge-1", BID: 0, Digest: digest}
	cert.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &cert)

	honest, _ = scan.Assemble(req.Start, req.End, req.ReqID, mlsm.L0Source{Blocks: []wire.Block{blk}, Certs: []wire.BlockProof{cert}}, f.idx, true)
	honest.EdgeSig = wcrypto.SignScanResponse(f.keys["edge-1"], honest, [][]byte{digest})

	bad := *honest
	bad.Proof.L0Blocks = append([]wire.Block(nil), honest.Proof.L0Blocks...)
	pb := &bad.Proof.L0Blocks[0]
	pb.Entries = append([]wire.Entry(nil), pb.Entries...)
	pb.Entries[0].Value = []byte("evil") // cache still serves the honest bytes
	if !bytes.Equal(pb.CachedDigest(), digest) {
		t.Fatal("test setup: cache should still serve the honest digest")
	}
	return op, honest, &bad
}

// TestCachePoisonedScanRejectedInlineAndPooled extends the PR-3 parity
// suite to the scan path: the scan signature covers recomputed L0 digests,
// so a tampered block behind a poisoned frozen cache must fail the
// signature check identically inline and through the pool.
func TestCachePoisonedScanRejectedInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		// Honest digest-signed response sails through.
		f := newScanFixture(t)
		op, honest, _ := poisonedScan(t, f)
		f.deliver(t, pooled, honest)
		if !op.Done || op.Err != nil {
			t.Fatalf("pooled=%v: honest digest-signed scan rejected: %+v", pooled, op)
		}
		if f.c.Stats().VerifyFailures != 0 {
			t.Fatalf("pooled=%v: spurious verify failure", pooled)
		}
		// The poisoned twin is rejected before any state advances.
		f = newScanFixture(t)
		op, _, poisoned := poisonedScan(t, f)
		f.deliver(t, pooled, poisoned)
		if op.Done || op.Phase != core.PhaseNone {
			t.Fatalf("pooled=%v: cache-poisoned scan advanced the op: %+v", pooled, op)
		}
		if f.c.Stats().VerifyFailures == 0 {
			t.Fatalf("pooled=%v: verify failure not counted", pooled)
		}
	}
}

// poisonedGet mirrors poisonedScan for the get path, whose signable body
// now also represents L0 blocks by their digests.
func poisonedGet(t *testing.T, f *fixture) (op *Op, honest, poisoned *wire.GetResponse) {
	t.Helper()
	op, envs := f.c.Get(10, []byte("k"))
	req := envs[0].Msg.(*wire.GetRequest)
	blk := wire.Block{Edge: "edge-1", ID: 0, StartPos: 0, Entries: []wire.Entry{
		{Client: "c2", Seq: 1, Key: []byte("k"), Value: []byte("v")},
	}}
	blk.Freeze()
	digest := wcrypto.BlockDigest(&blk)
	cert := wire.BlockProof{Edge: "edge-1", BID: 0, Digest: digest}
	cert.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &cert)
	honest, _ = mlsm.AssembleGet(req.Key, req.ReqID, mlsm.L0Source{Blocks: []wire.Block{blk}, Certs: []wire.BlockProof{cert}}, mlsm.NewIndex([]int{10}), true)
	honest.EdgeSig = wcrypto.SignGetResponse(f.keys["edge-1"], honest, [][]byte{digest})

	bad := *honest
	bad.Proof.L0Blocks = append([]wire.Block(nil), honest.Proof.L0Blocks...)
	pb := &bad.Proof.L0Blocks[0]
	pb.Entries = append([]wire.Entry(nil), pb.Entries...)
	pb.Entries[0].Value = []byte("evil")
	if !bytes.Equal(pb.CachedDigest(), digest) {
		t.Fatal("test setup: cache should still serve the honest digest")
	}
	return op, honest, &bad
}

// TestCachePoisonedGetRejectedInlineAndPooled: same parity for gets.
func TestCachePoisonedGetRejectedInlineAndPooled(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		deliver := func(f *fixture, m *wire.GetResponse) {
			env := wire.Envelope{From: "edge-1", To: "c1", Msg: m}
			if !pooled {
				f.c.Receive(20, env)
				return
			}
			done := make(chan struct{})
			pool := wcrypto.NewVerifyPool(f.reg, 4, 4, func(e wire.Envelope) {
				f.c.Receive(20, e)
				close(done)
			})
			pool.Submit(env)
			<-done
			pool.Close()
		}
		f := newFixture(t)
		op, honest, _ := poisonedGet(t, f)
		deliver(f, honest)
		if !op.Done || op.Err != nil || !op.Found || string(op.GotValue) != "v" {
			t.Fatalf("pooled=%v: honest digest-signed get rejected: %+v", pooled, op)
		}
		f = newFixture(t)
		op, _, poisoned := poisonedGet(t, f)
		deliver(f, poisoned)
		if op.Done || op.Phase != core.PhaseNone {
			t.Fatalf("pooled=%v: cache-poisoned get advanced the op: %+v", pooled, op)
		}
		if f.c.Stats().VerifyFailures == 0 {
			t.Fatalf("pooled=%v: verify failure not counted", pooled)
		}
	}
}

// TestGetRejectsDroppedLeadingL0Block pins the compaction-frontier rule
// on the get path: an edge that omits its oldest uncompacted block —
// which could hold the key's freshest (or only) version — fails
// verification even though the remaining window is consecutive and
// certified.
func TestGetRejectsDroppedLeadingL0Block(t *testing.T) {
	f := newFixture(t)
	op, envs := f.c.Get(10, []byte("victim"))
	req := envs[0].Msg.(*wire.GetRequest)
	mkBlock := func(id uint64, key string) (wire.Block, wire.BlockProof) {
		blk := wire.Block{Edge: "edge-1", ID: id, StartPos: id, Entries: []wire.Entry{
			{Client: "c2", Seq: id + 1, Key: []byte(key), Value: []byte("v")},
		}}
		blk.Freeze()
		cert := wire.BlockProof{Edge: "edge-1", BID: id, Digest: wcrypto.BlockDigest(&blk)}
		cert.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &cert)
		return blk, cert
	}
	b0, c0 := mkBlock(0, "victim")
	b1, c1 := mkBlock(1, "other")
	_, _ = b0, c0
	// The edge serves only block 1, hiding block 0's write of "victim".
	resp, _ := mlsm.AssembleGet(req.Key, req.ReqID, mlsm.L0Source{
		Blocks: []wire.Block{b1}, Certs: []wire.BlockProof{c1},
	}, mlsm.NewIndex([]int{10}), true)
	resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
	f.c.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: resp})
	if !op.Done || !errors.Is(op.Err, ErrBadResponse) {
		t.Fatalf("get over a truncated L0 window accepted: %+v", op)
	}
}
