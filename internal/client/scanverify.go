package client

import (
	"errors"
	"fmt"

	"wedgechain/internal/core"
	"wedgechain/internal/scan"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// sameBound compares two range bounds preserving the nil/non-nil
// distinction: nil means ±infinity, which an empty (but present) bound
// must never be conflated with.
func sameBound(a, b []byte) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return string(a) == string(b)
}

// handleScanResponse runs the full verification of a range scan: the
// edge's signature, the echoed range, and the completeness proof (package
// scan). A structurally defective proof is a provable lie — unlike gets,
// whose bad responses are merely rejected, the signed scan proof is filed
// with the cloud and convicts the edge. Stale or session-regressing
// snapshots retry instead, exactly like gets.
func (c *Core) handleScanResponse(now int64, from wire.NodeID, m *wire.ScanResponse, verified bool) []wire.Envelope {
	if from != c.cfg.Edge {
		return nil
	}
	op, ok := c.byReq.get(m.ReqID)
	if !ok || op.Done || op.Kind != KindScan {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	op.scanEv = m
	op.Edge = from // the node whose signature backs the evidence

	if !sameBound(m.Start, op.ScanStart) || !sameBound(m.End, op.ScanEnd) {
		// A valid proof of a different range than requested is worthless
		// — but not cloud-provable, since requests are unsigned and the
		// cloud cannot know what was asked. Reject without a dispute.
		c.m.verifyFailures.Inc()
		c.settle(op, fmt.Errorf("%w: response covers a different range than requested", ErrBadResponse))
		return nil
	}
	res, err := scan.Verify(scan.Params{
		Reg:             c.reg,
		Edge:            c.cfg.Chain, // blocks, certs and roots carry the chain identity
		Cloud:           c.cfg.Cloud,
		Now:             now,
		FreshnessWindow: c.cfg.FreshnessWindow,
		// The session-owned leaf cache: pages proven against an unchanged
		// level root skip re-hashing on repeated scans (misses — including
		// any tampered page — are re-hashed and judged exactly as cold).
		Cache: c.leafCache,
	}, m)
	if errors.Is(err, scan.ErrStale) {
		err = ErrStale
	}
	if err == nil && c.cfg.Session {
		// Session consistency (Section V-D alternative): the snapshot
		// must not regress behind what this session already observed.
		if res.Epoch < c.sessEpoch || (res.Epoch == c.sessEpoch && res.L0End < c.sessL0End) {
			err = ErrRegression
		}
	}
	if err == ErrStale || err == ErrRegression {
		staleErr := err
		c.m.staleRejected.Inc()
		if op.retries >= c.cfg.MaxRetries {
			c.settle(op, staleErr)
			return nil
		}
		op.retries++
		c.m.retries.Inc()
		req := &wire.ScanRequest{Start: op.ScanStart, End: op.ScanEnd, Limit: uint32(op.ScanLimit), ReqID: op.ReqID}
		return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: req}}
	}
	if err != nil {
		// Structural defect in an edge-signed completeness proof: settle
		// the operation and accuse the edge with the proof itself.
		c.m.verifyFailures.Inc()
		c.m.liesDetected.Inc()
		out := c.fileScanDispute(op, 0)
		c.settle(op, fmt.Errorf("%w: %v", ErrBadResponse, err))
		return out
	}
	if c.cfg.Session {
		if res.Epoch > c.sessEpoch {
			c.sessEpoch, c.sessL0End = res.Epoch, res.L0End
		} else if res.L0End > c.sessL0End {
			c.sessL0End = res.L0End
		}
	}

	kvs := res.KVs
	if op.ScanLimit > 0 && len(kvs) > op.ScanLimit {
		kvs = kvs[:op.ScanLimit]
	}
	op.ScanKVs = kvs
	op.pendingBIDs = res.Uncertified
	if len(res.Uncertified) == 0 {
		c.phaseI(now, op, 0, nil)
		c.phaseII(now, op)
		return nil
	}
	// Phase I scan: register for every uncertified block's proof; the
	// derived result stands once each certified digest matches the pinned
	// one.
	op.Phase = core.PhaseI
	op.PhaseIAt = now
	if c.OnPhaseI != nil {
		c.OnPhaseI(op)
	}
	for bid := range res.Uncertified {
		c.addByBID(bid, op)
	}
	return nil
}

// VerifyScanResponse runs the full client-side verification of a scan
// response (signature, echoed range, completeness proof) without mutating
// operation state — the scan counterpart of VerifyGetResponse, used by
// benchmarks that measure verification cost directly.
func (c *Core) VerifyScanResponse(now int64, start, end []byte, m *wire.ScanResponse) error {
	if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
		return err
	}
	if !sameBound(m.Start, start) || !sameBound(m.End, end) {
		return fmt.Errorf("response covers a different range than requested")
	}
	_, err := scan.Verify(scan.Params{
		Reg:             c.reg,
		Edge:            c.cfg.Chain,
		Cloud:           c.cfg.Cloud,
		Now:             now,
		FreshnessWindow: c.cfg.FreshnessWindow,
		Cache:           c.leafCache,
	}, m)
	return err
}

// fileScanDispute accuses the edge with the signed scan response as
// evidence — for a structural proof defect (any bid) or a certified-digest
// contradiction on one L0 block (that bid).
func (c *Core) fileScanDispute(op *Op, bid uint64) []wire.Envelope {
	if op.disputed || op.scanEv == nil {
		return nil
	}
	return c.accuse(op, bid, core.BuildScanLieDispute(c.key, op.Edge, bid, op.scanEv))
}
