package client

import (
	"errors"
	"testing"

	"wedgechain/internal/merkle"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// sessionFixture builds a session-enabled client plus two validly signed
// get responses representing snapshots at epoch 1 and epoch 2.
type sessionFixture struct {
	*fixture
	respOld *wire.GetResponse // epoch 1
	respNew *wire.GetResponse // epoch 2
}

func newSessionFixture(t *testing.T) *sessionFixture {
	t.Helper()
	f := newFixture(t)
	f.c = New(Config{
		ID: "c1", Edge: "edge-1", Cloud: "cloud",
		ProofTimeout: 1000,
		Session:      true,
	}, f.keys["c1"], f.reg)

	mkResp := func(epoch uint64, ver uint64) *wire.GetResponse {
		pages := mlsm.Merge([]wire.KV{{Key: []byte("k"), Value: []byte("v"), Ver: ver}}, nil, 1, 4, epoch*10, int64(epoch))
		tree := mlsm.LevelTree(pages)
		roots := [][]byte{tree.Root(), merkle.New(nil).Root()}
		global := wire.SignedRoot{Edge: "edge-1", Epoch: epoch, Root: mlsm.GlobalRoot(roots), Ts: int64(epoch)}
		global.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &global)
		path, _ := tree.Proof(0)
		resp := &wire.GetResponse{
			ReqID: 1, Key: []byte("k"), Found: true, Value: []byte("v"), Ver: ver,
			Proof: wire.GetProof{
				Levels: []wire.LevelProof{{Level: 1, Page: pages[0], Index: 0, Width: 1, Path: path}},
				Roots:  roots,
				Global: global,
			},
		}
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
		return resp
	}
	return &sessionFixture{fixture: f, respOld: mkResp(1, 1), respNew: mkResp(2, 2)}
}

func TestSessionAcceptsMonotonicSnapshots(t *testing.T) {
	f := newSessionFixture(t)
	if err := f.c.VerifyGetResponse(10, []byte("k"), f.respOld); err != nil {
		t.Fatalf("epoch-1 response rejected: %v", err)
	}
	if err := f.c.VerifyGetResponse(20, []byte("k"), f.respNew); err != nil {
		t.Fatalf("epoch-2 response rejected: %v", err)
	}
	// Re-serving the same newest snapshot is fine (monotonic, not strict).
	if err := f.c.VerifyGetResponse(30, []byte("k"), f.respNew); err != nil {
		t.Fatalf("re-served epoch-2 rejected: %v", err)
	}
}

func TestSessionRejectsEpochRegression(t *testing.T) {
	f := newSessionFixture(t)
	if err := f.c.VerifyGetResponse(10, []byte("k"), f.respNew); err != nil {
		t.Fatal(err)
	}
	// The edge rolls back to the older (validly signed) snapshot.
	err := f.c.VerifyGetResponse(20, []byte("k"), f.respOld)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("regressed snapshot: err = %v, want ErrRegression", err)
	}
}

func TestSessionRegressionTriggersRetryThenFailure(t *testing.T) {
	f := newSessionFixture(t)
	if err := f.c.VerifyGetResponse(10, []byte("k"), f.respNew); err != nil {
		t.Fatal(err)
	}
	op, _ := f.c.Get(20, []byte("k"))
	serve := func() []wire.Envelope {
		resp := *f.respOld
		resp.ReqID = op.ReqID
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], &resp)
		return f.c.Receive(30, wire.Envelope{From: "edge-1", To: "c1", Msg: &resp})
	}
	// First regressed serve: the client retries.
	out := serve()
	if len(out) != 1 {
		t.Fatalf("outputs = %d, want retry", len(out))
	}
	if _, ok := out[0].Msg.(*wire.GetRequest); !ok {
		t.Fatalf("output = %T", out[0].Msg)
	}
	// Exhaust retries: the op settles with ErrRegression.
	for i := 0; i < 5 && !op.Done; i++ {
		serve()
	}
	if !errors.Is(op.Err, ErrRegression) {
		t.Fatalf("op err = %v, want ErrRegression", op.Err)
	}
}

func TestSessionL0FrontierMonotonic(t *testing.T) {
	f := newSessionFixture(t)
	mkL0 := func(ids ...uint64) *wire.GetResponse {
		var blocks []wire.Block
		var certs []wire.BlockProof
		for _, id := range ids {
			b := wire.Block{Edge: "edge-1", ID: id, StartPos: id}
			p := wire.BlockProof{Edge: "edge-1", BID: id, Digest: wcrypto.BlockDigest(&b)}
			p.CloudSig = wcrypto.SignMsg(f.keys["cloud"], &p)
			blocks = append(blocks, b)
			certs = append(certs, p)
		}
		resp := &wire.GetResponse{ReqID: 1, Key: []byte("k"), Proof: wire.GetProof{L0Blocks: blocks, L0Certs: certs}}
		resp.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], resp)
		return resp
	}
	if err := f.c.VerifyGetResponse(10, []byte("k"), mkL0(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Same epoch (0, no merges) but fewer blocks: hidden tail.
	err := f.c.VerifyGetResponse(20, []byte("k"), mkL0(0, 1))
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("L0 regression: err = %v, want ErrRegression", err)
	}
}

func TestSessionDisabledAcceptsRegression(t *testing.T) {
	f := newSessionFixture(t)
	f.c = New(Config{ID: "c1", Edge: "edge-1", Cloud: "cloud"}, f.keys["c1"], f.reg)
	if err := f.c.VerifyGetResponse(10, []byte("k"), f.respNew); err != nil {
		t.Fatal(err)
	}
	if err := f.c.VerifyGetResponse(20, []byte("k"), f.respOld); err != nil {
		t.Fatalf("session off must accept: %v", err)
	}
}
