package client

import (
	"bytes"
	"fmt"
	"sort"

	"wedgechain/internal/core"
	"wedgechain/internal/shard"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Sharded implements core.Handler so all transports can drive it.
var _ core.Handler = (*Sharded)(nil)

// Sharded multiplexes one client session across every shard of a
// partitioned keyspace. It owns one Core per edge in the shard map; each
// Core runs its own lazy-verify pipeline (Phase I/II tracking, dispute
// filing, gossip, session watermarks) against its edge, fully independent
// of its siblings — a backlog or conviction on one shard never blocks
// operations on another.
//
// Key-value operations (Put, PutBatch, Get) route by key through the
// stable partitioner. Log operations (Add, AddAt, Reserve, Read) are
// position-based and therefore bind to the session's home shard — the
// shard the client's own identity hashes to — so reservations, appends
// and block reads always address one coherent log.
//
// Like Core, Sharded is not safe for concurrent use: drive it from a
// single goroutine (the transport's node goroutine).
type Sharded struct {
	ring    *shard.Map
	cores   []*Core               // shard order
	byEdge  map[wire.NodeID]*Core // by serving node, grows as leaders change
	byChain map[wire.NodeID]*Core // by chain identity, immutable
	home    int
}

// NewSharded constructs a sharded client session over the edges in ring.
// cfg.Edge is ignored; every other Config field applies to each per-shard
// Core. The ring's edges at construction time are the per-shard chain
// identities; leadership transfers may later rebind a core to a promoted
// replica without changing its chain.
func NewSharded(cfg Config, ring *shard.Map, key wcrypto.KeyPair, reg *wcrypto.Registry) *Sharded {
	s := &Sharded{
		ring:    ring,
		cores:   make([]*Core, ring.Shards()),
		byEdge:  make(map[wire.NodeID]*Core, ring.Shards()),
		byChain: make(map[wire.NodeID]*Core, ring.Shards()),
		home:    shard.Of([]byte(cfg.ID), ring.Shards()),
	}
	for i, edge := range ring.Edges() {
		c := cfg // copy
		c.Edge = edge
		c.Chain = edge
		cc := New(c, key, reg)
		s.cores[i] = cc
		s.byEdge[edge] = cc
		s.byChain[edge] = cc
	}
	return s
}

// ID returns the client identity (shared by every per-shard core).
func (s *Sharded) ID() wire.NodeID { return s.cores[0].ID() }

// Map returns the routing table.
func (s *Sharded) Map() *shard.Map { return s.ring }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.cores) }

// Cores returns the per-shard cores in shard order (for wiring callbacks
// and instrumentation). The slice is shared; treat it as read-only.
func (s *Sharded) Cores() []*Core { return s.cores }

// CoreFor returns the core owning key's shard.
func (s *Sharded) CoreFor(key []byte) *Core {
	return s.cores[shard.Of(key, len(s.cores))]
}

// CoreAt returns the core for shard i.
func (s *Sharded) CoreAt(i int) *Core { return s.cores[i] }

// Home returns the core of the session's home shard, which serves the
// position-based log API.
func (s *Sharded) Home() *Core { return s.cores[s.home] }

// EdgeFor returns the edge owning key.
func (s *Sharded) EdgeFor(key []byte) wire.NodeID { return s.ring.EdgeFor(key) }

// Put routes a key-value write to the key's shard.
func (s *Sharded) Put(now int64, key, value []byte) (*Op, []wire.Envelope) {
	return s.CoreFor(key).Put(now, key, value)
}

// Get routes a key-value lookup to the key's shard.
func (s *Sharded) Get(now int64, key []byte) (*Op, []wire.Envelope) {
	return s.CoreFor(key).Get(now, key)
}

// PutBatch splits a batch of key-value writes into one per-shard batch
// each carried in a single request, preserving the input's op order in
// the returned slice.
func (s *Sharded) PutBatch(now int64, keys, values [][]byte) ([]*Op, []wire.Envelope) {
	if len(s.cores) == 1 {
		return s.cores[0].PutBatch(now, keys, values)
	}
	n := len(s.cores)
	idxs := make([][]int, n)
	for i, k := range keys {
		sh := shard.Of(k, n)
		idxs[sh] = append(idxs[sh], i)
	}
	ops := make([]*Op, len(keys))
	var envs []wire.Envelope
	for sh, members := range idxs {
		if len(members) == 0 {
			continue
		}
		ks := make([][]byte, len(members))
		vs := make([][]byte, len(members))
		for j, i := range members {
			ks[j] = keys[i]
			vs[j] = values[i]
		}
		shOps, shEnvs := s.cores[sh].PutBatch(now, ks, vs)
		for j, i := range members {
			ops[i] = shOps[j]
		}
		envs = append(envs, shEnvs...)
	}
	return ops, envs
}

// Scan scatter-gathers a verified range scan across every shard: keys
// hash-route to shards, so a key range is spread over all of them and
// each shard's edge must prove completeness for its own slice. One op is
// returned per shard, in shard order; when all have settled,
// MergeScanResults folds their verified results into one globally ordered
// slice. Each per-shard op carries the full limit (a single shard could
// in principle own the limit's worth of smallest keys), and the gather
// side truncates again after the merge.
func (s *Sharded) Scan(now int64, start, end []byte, limit int) ([]*Op, []wire.Envelope) {
	ops := make([]*Op, len(s.cores))
	var envs []wire.Envelope
	for i, cc := range s.cores {
		op, e := cc.Scan(now, start, end, limit)
		ops[i] = op
		envs = append(envs, e...)
	}
	return ops, envs
}

// MergeScanResults merges settled per-shard scan results into one
// globally key-ordered slice, truncated to limit when limit > 0.
func MergeScanResults(ops []*Op, limit int) []wire.KV {
	slices := make([][]wire.KV, len(ops))
	for i, op := range ops {
		slices[i] = op.ScanKVs
	}
	return MergeScanKVs(slices, limit)
}

// MergeScanKVs merges per-shard verified KV slices into one globally
// key-ordered slice, truncated to limit when limit > 0. Shards partition
// the keyspace by hash, so the slices are disjoint and a plain sort is a
// correct k-way merge — the one place that invariant is encoded.
func MergeScanKVs(slices [][]wire.KV, limit int) []wire.KV {
	var all []wire.KV
	for _, s := range slices {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// Add appends a payload to the home shard's log.
func (s *Sharded) Add(now int64, payload []byte) (*Op, []wire.Envelope) {
	return s.Home().Add(now, payload)
}

// AddAt appends a payload at a reserved home-shard log position.
func (s *Sharded) AddAt(now int64, payload []byte, pos uint64) (*Op, []wire.Envelope) {
	return s.Home().AddAt(now, payload, pos)
}

// Reserve requests reserved positions on the home shard's log.
func (s *Sharded) Reserve(now int64, count uint32) []wire.Envelope {
	return s.Home().Reserve(now, count)
}

// SetReserveHandler registers the reservation callback on the home shard.
func (s *Sharded) SetReserveHandler(f Reservations) { s.Home().SetReserveHandler(f) }

// Read fetches block bid from the home shard's log.
func (s *Sharded) Read(now int64, bid uint64) (*Op, []wire.Envelope) {
	return s.Home().Read(now, bid)
}

// ReadFrom fetches block bid from a specific shard's log.
func (s *Sharded) ReadFrom(now int64, edge wire.NodeID, bid uint64) (*Op, []wire.Envelope, error) {
	c, ok := s.byEdge[edge]
	if !ok {
		return nil, nil, fmt.Errorf("client: edge %q is not in the shard map", edge)
	}
	op, envs := c.Read(now, bid)
	return op, envs, nil
}

// Pending reports the number of unsettled operations per shard edge —
// the backlog surface a monitoring layer watches to see one slow or
// convicted shard without conflating it with its siblings.
func (s *Sharded) Pending() map[wire.NodeID]int {
	out := make(map[wire.NodeID]int, len(s.cores))
	for i, c := range s.cores {
		out[s.ring.EdgeAt(i)] = c.Pending()
	}
	return out
}

// StatsByEdge returns each shard core's counters keyed by edge.
func (s *Sharded) StatsByEdge() map[wire.NodeID]Stats {
	out := make(map[wire.NodeID]Stats, len(s.cores))
	for i, c := range s.cores {
		out[s.ring.EdgeAt(i)] = c.Stats()
	}
	return out
}

// Receive demultiplexes a delivery to the core owning the shard it
// concerns. Edge responses route by sender; cloud proofs and gossip
// carry the chain they concern; leadership transfers route by chain and
// re-key the sender index to the promoted node. Verdicts are node-scoped
// — the node may be a demoted leader no index remembers — so they fan
// out, as does anything else, with each core filtering by its own state.
func (s *Sharded) Receive(now int64, env wire.Envelope) []wire.Envelope {
	if c, ok := s.byEdge[env.From]; ok {
		return c.Receive(now, env)
	}
	var concerns wire.NodeID
	switch m := env.Msg.(type) {
	case *wire.BlockProof:
		concerns = m.Edge
	case *wire.Gossip:
		concerns = m.Edge
	case *wire.LeadershipTransfer:
		c, ok := s.byChain[m.Chain]
		if !ok {
			return nil
		}
		out := c.Receive(now, env)
		s.byEdge[c.Edge()] = c // responses now arrive from the new leader
		return out
	default:
		var out []wire.Envelope
		for _, c := range s.cores {
			out = append(out, c.Receive(now, env)...)
		}
		return out
	}
	if c, ok := s.byChain[concerns]; ok {
		return c.Receive(now, env)
	}
	return nil
}

// Tick drives every shard core's timers (dispute timeouts).
func (s *Sharded) Tick(now int64) []wire.Envelope {
	var out []wire.Envelope
	for _, c := range s.cores {
		out = append(out, c.Tick(now)...)
	}
	return out
}
