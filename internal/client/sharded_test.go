package client

import (
	"fmt"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/shard"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

type shardedFixture struct {
	s    *Sharded
	keys map[wire.NodeID]wcrypto.KeyPair
	reg  *wcrypto.Registry
}

func newShardedFixture(t *testing.T, shards int) *shardedFixture {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	ids := []wire.NodeID{"cloud", "c1"}
	var edges []wire.NodeID
	for i := 1; i <= shards; i++ {
		edges = append(edges, wire.NodeID(fmt.Sprintf("edge-%d", i)))
	}
	ids = append(ids, edges...)
	for _, id := range ids {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	ring, err := shard.New(edges)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(Config{
		ID: "c1", Cloud: "cloud", ProofTimeout: 1000,
	}, ring, keys["c1"], reg)
	return &shardedFixture{s: s, keys: keys, reg: reg}
}

func (f *shardedFixture) signedPutResponse(edge wire.NodeID, blk wire.Block) *wire.PutResponse {
	resp := &wire.PutResponse{BID: blk.ID, Block: blk}
	resp.EdgeSig = wcrypto.SignMsg(f.keys[edge], resp)
	return resp
}

func (f *shardedFixture) edgeSignedProof(edge wire.NodeID, blk *wire.Block) *wire.BlockProof {
	p := &wire.BlockProof{Edge: edge, BID: blk.ID, Digest: wcrypto.BlockDigest(blk)}
	p.CloudSig = wcrypto.SignMsg(f.keys["cloud"], p)
	return p
}

func TestShardedRoutesPutsByKey(t *testing.T) {
	f := newShardedFixture(t, 4)
	perEdge := map[wire.NodeID]int{}
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		want := f.s.EdgeFor(key)
		op, envs := f.s.Put(10, key, []byte("v"))
		if op.Edge != want {
			t.Fatalf("op.Edge = %q, want %q", op.Edge, want)
		}
		if len(envs) != 1 || envs[0].To != want {
			t.Fatalf("put %d routed to %q, want %q", i, envs[0].To, want)
		}
		perEdge[envs[0].To]++
	}
	if len(perEdge) != 4 {
		t.Fatalf("64 puts reached only %d of 4 shards: %v", len(perEdge), perEdge)
	}
}

func TestShardedPutBatchSplitsPerShard(t *testing.T) {
	f := newShardedFixture(t, 4)
	const n = 32
	keys := make([][]byte, n)
	values := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		values[i] = []byte(fmt.Sprintf("val-%d", i))
	}
	ops, envs := f.s.PutBatch(5, keys, values)
	if len(ops) != n {
		t.Fatalf("ops = %d", len(ops))
	}
	for i, op := range ops {
		if op == nil || string(op.Key) != string(keys[i]) {
			t.Fatalf("op %d out of order: %+v", i, op)
		}
		if op.Edge != f.s.EdgeFor(keys[i]) {
			t.Fatalf("op %d misrouted to %q", i, op.Edge)
		}
	}
	// One batch envelope per shard that owns at least one key.
	owners := map[wire.NodeID]bool{}
	for _, k := range keys {
		owners[f.s.EdgeFor(k)] = true
	}
	if len(envs) != len(owners) {
		t.Fatalf("envelopes = %d, want one per owning shard (%d)", len(envs), len(owners))
	}
	total := 0
	for _, env := range envs {
		pb, ok := env.Msg.(*wire.PutBatch)
		if !ok {
			t.Fatalf("unexpected message %T", env.Msg)
		}
		for _, e := range pb.Entries {
			if f.s.EdgeFor(e.Key) != env.To {
				t.Fatalf("entry %q shipped to %q", e.Key, env.To)
			}
		}
		total += len(pb.Entries)
	}
	if total != n {
		t.Fatalf("batch entries = %d, want %d", total, n)
	}
}

func TestShardedPhaseIsolationAndDemux(t *testing.T) {
	f := newShardedFixture(t, 2)
	// Two keys owned by different shards.
	var keyA, keyB []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		switch f.s.EdgeFor(k) {
		case "edge-1":
			if keyA == nil {
				keyA = k
			}
		case "edge-2":
			if keyB == nil {
				keyB = k
			}
		}
		if keyA != nil && keyB != nil {
			break
		}
	}
	opA, envsA := f.s.Put(10, keyA, []byte("va"))
	opB, envsB := f.s.Put(10, keyB, []byte("vb"))

	entryA := envsA[0].Msg.(*wire.PutRequest).Entry
	blkA := wire.Block{Edge: "edge-1", ID: 0, Entries: []wire.Entry{entryA}}
	f.s.Receive(20, wire.Envelope{From: "edge-1", To: "c1", Msg: f.signedPutResponse("edge-1", blkA)})
	if opA.Phase != core.PhaseI {
		t.Fatalf("opA phase = %v", opA.Phase)
	}
	if opB.Phase != core.PhaseNone {
		t.Fatalf("opB advanced by sibling shard's response: %v", opB.Phase)
	}

	// The cloud's proof for shard A routes by the proof's Edge field and
	// upgrades only shard A's op.
	f.s.Receive(30, wire.Envelope{From: "cloud", To: "c1", Msg: f.edgeSignedProof("edge-1", &blkA)})
	if opA.Phase != core.PhaseII || !opA.Done {
		t.Fatalf("opA after proof: %+v", opA)
	}
	if opB.Phase != core.PhaseNone || opB.Done {
		t.Fatalf("opB touched by shard A proof: %+v", opB)
	}

	pending := f.s.Pending()
	if pending["edge-1"] != 0 || pending["edge-2"] != 1 {
		t.Fatalf("pending = %v, want edge-1:0 edge-2:1", pending)
	}

	entryB := envsB[0].Msg.(*wire.PutRequest).Entry
	blkB := wire.Block{Edge: "edge-2", ID: 0, Entries: []wire.Entry{entryB}}
	f.s.Receive(40, wire.Envelope{From: "edge-2", To: "c1", Msg: f.signedPutResponse("edge-2", blkB)})
	f.s.Receive(50, wire.Envelope{From: "cloud", To: "c1", Msg: f.edgeSignedProof("edge-2", &blkB)})
	if opB.Phase != core.PhaseII {
		t.Fatalf("opB after its own proof: %+v", opB)
	}
	if n := f.s.Pending()["edge-2"]; n != 0 {
		t.Fatalf("edge-2 pending = %d after settle", n)
	}
}

func TestShardedLogOpsUseHomeShard(t *testing.T) {
	f := newShardedFixture(t, 4)
	home := f.s.Home().Edge()
	if f.s.Map().ShardOf(home) != shard.Of([]byte("c1"), 4) {
		t.Fatalf("home shard %q does not match client identity hash", home)
	}
	_, envs := f.s.Add(10, []byte("payload"))
	if len(envs) != 1 || envs[0].To != home {
		t.Fatalf("add routed to %q, want home %q", envs[0].To, home)
	}
	_, envs = f.s.Read(20, 0)
	if len(envs) != 1 || envs[0].To != home {
		t.Fatalf("read routed to %q, want home %q", envs[0].To, home)
	}
	envs = f.s.Reserve(30, 2)
	if len(envs) != 1 || envs[0].To != home {
		t.Fatalf("reserve routed to %q, want home %q", envs[0].To, home)
	}
	if _, _, err := f.s.ReadFrom(40, "edge-2", 0); err != nil {
		t.Fatalf("ReadFrom known edge: %v", err)
	}
	if _, _, err := f.s.ReadFrom(40, "edge-99", 0); err == nil {
		t.Fatal("ReadFrom accepted an edge outside the shard map")
	}
}

func TestShardedVerdictRoutesToConcernedShard(t *testing.T) {
	f := newShardedFixture(t, 2)
	v := &wire.Verdict{Edge: "edge-2", BID: 3, Kind: wire.DisputeAddLie, Guilty: true, Reason: "test"}
	v.CloudSig = wcrypto.SignMsg(f.keys["cloud"], v)
	// Must not panic and must not leak to shard 1; nothing is accused, so
	// no output either.
	if out := f.s.Receive(10, wire.Envelope{From: "cloud", To: "c1", Msg: v}); len(out) != 0 {
		t.Fatalf("unexpected output %v", out)
	}
	// A verdict for an edge outside the map is dropped.
	v2 := &wire.Verdict{Edge: "edge-9", BID: 3, Kind: wire.DisputeAddLie, Guilty: true, Reason: "test"}
	v2.CloudSig = wcrypto.SignMsg(f.keys["cloud"], v2)
	if out := f.s.Receive(10, wire.Envelope{From: "cloud", To: "c1", Msg: v2}); out != nil {
		t.Fatalf("unexpected output %v", out)
	}
}
