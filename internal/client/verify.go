package client

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/merkle"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// errL0Window marks get-verification failures rooted in the served L0
// window — a non-contiguous window, a broken cert/digest binding, or a
// pruned reference whose summary does not exclude the key. These defects
// are cloud-provable (the response echoes the signed key, so the Judge
// re-runs the same checks), which is what upgrades them from mere
// rejection to a dispute.
var errL0Window = errors.New("L0 window evidence defect")

// handleReadResponse processes the three read cases of Section IV-D:
// denial, Phase II read, Phase I read.
func (c *Core) handleReadResponse(now int64, from wire.NodeID, m *wire.ReadResponse, verified bool) []wire.Envelope {
	if from != c.cfg.Edge {
		return nil
	}
	op, ok := c.byReq.get(m.ReqID)
	if !ok || op.Done || op.Kind != KindRead {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	if op.Phase >= core.PhaseI && op.readEv != nil {
		// Re-serve of a read that already holds Phase I evidence (the
		// failover rebind path): the original promise stays binding —
		// only the embedded certificate is harvested, and handleProof
		// judges it against the pinned digest exactly like a forwarded
		// proof. The promise and the certificate may name different
		// nodes (old leader promised, new leader serves), which is why
		// the evidence is never overwritten here.
		if m.OK && m.HasProof {
			p := m.Proof
			return c.handleProof(now, from, &p, false)
		}
		return nil
	}
	op.readEv = m
	op.Edge = from // the node whose signature backs the evidence
	if !m.OK {
		return c.handleDenial(now, op, m)
	}
	if m.Block.ID != m.BID || m.Block.Edge != c.cfg.Chain {
		c.m.verifyFailures.Inc()
		c.settle(op, ErrBadResponse)
		return nil
	}
	op.Block = &m.Block
	digest := wcrypto.RecomputedBlockDigest(&m.Block)
	if m.HasProof {
		// Phase II read: proof must be cloud-signed and match.
		p := m.Proof
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, &p, p.CloudSig); err != nil ||
			p.Edge != c.cfg.Chain || p.BID != m.BID || !bytes.Equal(p.Digest, digest) {
			c.m.verifyFailures.Inc()
			c.settle(op, ErrBadResponse)
			return nil
		}
		c.phaseI(now, op, m.BID, digest)
		c.phaseII(now, op)
		return nil
	}
	// Phase I read: hold evidence, await the forwarded proof.
	c.phaseI(now, op, m.BID, digest)
	return nil
}

// handleDenial evaluates a signed not-available response against cloud
// gossip: a denial of a gossip-covered block filed at or after the gossip
// timestamp is a provable omission; a denial predating the gossip triggers
// a retry (the edge may honestly not have had the block yet).
func (c *Core) handleDenial(now int64, op *Op, m *wire.ReadResponse) []wire.Envelope {
	g := c.gossip
	if g == nil || m.BID >= g.Blocks {
		// No evidence the block exists; accept unavailability.
		c.settle(op, ErrUnavailable)
		return nil
	}
	if m.Ts >= g.Ts {
		// Provable omission.
		c.m.liesDetected.Inc()
		if op.disputed {
			return nil
		}
		op.disputed = true
		c.accused = append(c.accused, op)
		c.m.disputes.Inc()
		d := core.BuildOmissionDispute(c.key, op.Edge, m, g)
		return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Cloud, Msg: d}}
	}
	// Denial predates the gossip: retry the read.
	if op.retries >= c.cfg.MaxRetries {
		c.settle(op, ErrUnavailable)
		return nil
	}
	op.retries++
	c.m.retries.Inc()
	return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: &wire.ReadRequest{BID: op.BID, ReqID: op.ReqID}}}
}

// handleGetResponse performs the full LSMerkle proof verification of
// Section V-B and the freshness check of Section V-D.
func (c *Core) handleGetResponse(now int64, from wire.NodeID, m *wire.GetResponse, verified bool) []wire.Envelope {
	if from != c.cfg.Edge {
		return nil
	}
	op, ok := c.byReq.get(m.ReqID)
	if !ok || op.Done || op.Kind != KindGet {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
			c.m.verifyFailures.Inc()
			return nil
		}
	}
	op.getEv = m
	op.Edge = from // the node whose signature backs the evidence
	if !bytes.Equal(m.Key, op.Key) {
		// A valid proof about a different key than requested is worthless
		// — but not cloud-provable, since requests are unsigned and the
		// cloud cannot know what was asked. Reject without a dispute.
		c.m.verifyFailures.Inc()
		c.settle(op, fmt.Errorf("%w: response answers a different key than requested", ErrBadResponse))
		return nil
	}
	if c.cfg.Light && c.gossip != nil && !c.sampleHit(m.ReqID) {
		// Light-client fast path: the edge's signature on the response has
		// been checked (inline or by the verify pool) and a cloud-signed
		// gossiped frontier vouches that certification is chasing this
		// edge's log, so the structural proof verification — the dominant
		// client CPU cost — is skipped for all but a seeded sample of
		// responses. The edge cannot tell which request will be audited,
		// so any lie it serves is caught with probability 1/SampleEvery
		// per response and convicts exactly as a full client's would: the
		// expected-conviction guarantee of lazy trust is unchanged, only
		// amortized. Session watermarks do not advance here — only fully
		// verified responses may move them.
		var t0 time.Time
		if c.m.enabled {
			t0 = time.Now()
		}
		c.m.sampledSkips.Inc()
		op.Found = m.Found
		op.GotValue = m.Value
		op.GotVer = m.Ver
		c.phaseI(now, op, 0, nil)
		c.phaseII(now, op)
		if c.m.enabled {
			c.m.verifyLight.Observe(time.Since(t0).Seconds())
		}
		return nil
	}
	verifyStart := time.Now()
	res, err := c.verifyGet(now, op.Key, m)
	verifyDur := time.Since(verifyStart)
	c.m.fullVerifies.Inc()
	c.m.verifyNanos.Add(uint64(verifyDur))
	if c.m.enabled {
		c.m.verifyFull.Observe(verifyDur.Seconds())
	}
	if err == ErrStale || err == ErrRegression {
		staleErr := err
		c.m.staleRejected.Inc()
		if op.retries >= c.cfg.MaxRetries {
			c.settle(op, staleErr)
			return nil
		}
		op.retries++
		c.m.retries.Inc()
		return []wire.Envelope{{From: c.cfg.ID, To: c.cfg.Edge, Msg: &wire.GetRequest{Key: op.Key, ReqID: op.ReqID}}}
	}
	if err != nil {
		c.m.verifyFailures.Inc()
		if errors.Is(err, errL0Window) {
			// Defective L0 window in an edge-signed response — a false or
			// tampered exclusion summary, a broken digest binding, a
			// non-contiguous window. The response echoes the signed key,
			// so the cloud can re-run these exact checks: settle the
			// operation and accuse the edge with the proof itself.
			c.m.liesDetected.Inc()
			out := c.fileGetDispute(op, 0)
			c.settle(op, fmt.Errorf("%w: %v", ErrBadResponse, err))
			return out
		}
		c.settle(op, fmt.Errorf("%w: %v", ErrBadResponse, err))
		return nil
	}
	op.Found = m.Found
	op.GotValue = m.Value
	op.GotVer = m.Ver
	op.pendingBIDs = res.uncertified
	if len(res.uncertified) == 0 {
		c.phaseI(now, op, 0, nil)
		c.phaseII(now, op)
		return nil
	}
	// Phase I get: register for every uncertified block's proof.
	op.Phase = core.PhaseI
	op.PhaseIAt = now
	if c.OnPhaseI != nil {
		c.OnPhaseI(op)
	}
	for bid := range res.uncertified {
		c.addByBID(bid, op)
	}
	return nil
}

// sampleHit decides whether a light-mode response is audited: a
// splitmix64 hash of (seed, request id) picks 1 in SampleEvery requests —
// deterministic per seed, so runs reproduce, yet unpredictable to the
// edge, which never learns the seed. SampleEvery <= 1 audits everything
// (how conviction tests force the sample to hit).
func (c *Core) sampleHit(reqID uint64) bool {
	if c.cfg.SampleEvery <= 1 {
		return true
	}
	return retryJitter(c.cfg.SampleSeed^reqID, 0x5bf03635, int64(c.cfg.SampleEvery)) == 0
}

// VerifyGetResponse runs the full client-side verification of a get
// response (signature + proofs) without mutating operation state — the
// client half of the best-case read path that Figure 5(d) measures with
// real crypto.
func (c *Core) VerifyGetResponse(now int64, key []byte, m *wire.GetResponse) error {
	if err := wcrypto.VerifyMsg(c.reg, c.cfg.Edge, m, m.EdgeSig); err != nil {
		return err
	}
	if !bytes.Equal(m.Key, key) {
		return fmt.Errorf("response answers a different key than requested")
	}
	_, err := c.verifyGet(now, key, m)
	return err
}

// getCheck is the result of structural get verification.
type getCheck struct {
	uncertified map[uint64][]byte // bid -> locally computed digest
}

// verifyGet re-derives every claim in a get response:
//
//  1. The L0 window — full blocks and pruned exclusion references merged
//     by id — is one consecutive run from the signed compaction frontier;
//     full blocks belong to this edge and match their cloud-signed
//     certificates; pruned references rebind to certified (or pinned)
//     digests and their summaries exclude the key (mlsm.VerifyL0Window,
//     the same checks the cloud's Judge re-runs on dispute evidence).
//  2. The freshest L0 version of the key, if any, must be the returned
//     value (deeper levels are older by construction).
//  3. Otherwise the level roots must fold to the signed global root, the
//     global root must be inside the freshness window, every non-empty
//     level up to the winning level must present its intersecting page
//     with a valid Merkle path, pages must contain the key's range, and
//     levels above the winner must not contain the key.
func (c *Core) verifyGet(now int64, key []byte, m *wire.GetResponse) (getCheck, error) {
	res := getCheck{uncertified: make(map[uint64][]byte)}
	p := &m.Proof

	var bestVer uint64
	var bestVal []byte
	win, err := mlsm.VerifyL0Window(mlsm.L0WindowParams{
		Reg:   c.reg,
		Edge:  c.cfg.Chain, // blocks and certificates carry the chain identity
		Cloud: c.cfg.Cloud,
		Excludes: func(s *wire.BlockSummary) bool {
			return s.ExcludesKey(key)
		},
		OnBlock: func(blk *wire.Block) {
			for j := range blk.Entries {
				e := &blk.Entries[j]
				if len(e.Key) == 0 || !bytes.Equal(e.Key, key) {
					continue
				}
				ver := blk.StartPos + uint64(j) + 1
				if ver > bestVer {
					bestVer, bestVal = ver, e.Value
				}
			}
		},
	}, p.L0Blocks, p.L0Certs, p.L0Pruned, p.L0PrunedCerts)
	if err != nil {
		return res, fmt.Errorf("%w: %v", errL0Window, err)
	}
	res.uncertified = win.Uncertified
	l0End := win.L0End

	// Session consistency (Section V-D alternative): the snapshot must
	// not regress behind what this session has already observed, ordered
	// lexicographically by (index epoch, L0 frontier).
	if c.cfg.Session {
		epoch := p.Global.Epoch
		if epoch < c.sessEpoch || (epoch == c.sessEpoch && l0End < c.sessL0End) {
			return res, ErrRegression
		}
	}
	advance := func() {
		if !c.cfg.Session {
			return
		}
		if p.Global.Epoch > c.sessEpoch {
			c.sessEpoch = p.Global.Epoch
			c.sessL0End = l0End
		} else if l0End > c.sessL0End {
			c.sessL0End = l0End
		}
	}

	if bestVer > 0 {
		// Winner must come from L0.
		if !m.Found || m.Ver != bestVer || !bytes.Equal(m.Value, bestVal) {
			return res, fmt.Errorf("returned value contradicts L0 contents")
		}
		advance()
		return res, nil
	}

	// No L0 hit: level evidence decides.
	if len(p.Roots) == 0 && len(p.Levels) == 0 && len(p.Global.CloudSig) == 0 {
		// No merged state exists yet, so nothing has ever been compacted:
		// the L0 window must be the log itself, from block 0 — otherwise
		// a dropped leading block could hide the key's only version.
		if win.Slots > 0 && win.FirstID != 0 {
			return res, fmt.Errorf("%w: no signed index state, yet L0 window starts at block %d", errL0Window, win.FirstID)
		}
		// Absence is then the only valid answer.
		if m.Found {
			return res, fmt.Errorf("found claimed without any level evidence")
		}
		advance()
		return res, nil
	}
	if len(p.Global.CloudSig) == 0 {
		return res, fmt.Errorf("level evidence without signed global root")
	}
	if err := wcrypto.VerifyMsg(c.reg, c.cfg.Cloud, &p.Global, p.Global.CloudSig); err != nil {
		return res, fmt.Errorf("global root: %v", err)
	}
	if p.Global.Edge != c.cfg.Chain {
		return res, fmt.Errorf("global root for wrong chain")
	}
	if !bytes.Equal(mlsm.GlobalRoot(p.Roots), p.Global.Root) {
		return res, fmt.Errorf("level roots do not fold to global root")
	}
	// The signed compaction frontier (SignedRoot.L0From) pins where the
	// served L0 window must start, so the edge cannot drop its oldest
	// uncompacted blocks — which could hold the key's freshest version —
	// and still claim completeness.
	if win.Slots > 0 && win.FirstID != p.Global.L0From {
		return res, fmt.Errorf("%w: L0 window starts at block %d, signed compaction frontier is %d",
			errL0Window, win.FirstID, p.Global.L0From)
	}
	if c.cfg.FreshnessWindow > 0 && now-p.Global.Ts > c.cfg.FreshnessWindow {
		return res, ErrStale
	}

	proofs := make(map[int]*wire.LevelProof)
	for i := range p.Levels {
		lp := &p.Levels[i]
		proofs[int(lp.Level)] = lp
	}
	empty := merkle.EmptyRoot()

	checkLevel := func(lvl int) (*wire.LevelProof, error) {
		root := p.Roots[lvl-1]
		if bytes.Equal(root, empty) {
			if proofs[lvl] != nil {
				return nil, fmt.Errorf("level %d: proof against empty level", lvl)
			}
			return nil, nil
		}
		lp := proofs[lvl]
		if lp == nil {
			return nil, fmt.Errorf("level %d: missing proof", lvl)
		}
		if int(lp.Page.Level) != lvl {
			return nil, fmt.Errorf("level %d: page from level %d", lvl, lp.Page.Level)
		}
		leaf := mlsm.PageLeaf(&lp.Page)
		if err := merkle.Verify(root, leaf, int(lp.Index), int(lp.Width), lp.Path); err != nil {
			return nil, fmt.Errorf("level %d: %v", lvl, err)
		}
		if !lp.Page.Contains(key) {
			return nil, fmt.Errorf("level %d: page does not cover key", lvl)
		}
		return lp, nil
	}

	findInPage := func(lp *wire.LevelProof) (wire.KV, bool) {
		for i := range lp.Page.KVs {
			if bytes.Equal(lp.Page.KVs[i].Key, key) {
				return lp.Page.KVs[i], true
			}
		}
		return wire.KV{}, false
	}

	if m.Found {
		// Locate the winning level: the shallowest level whose verified
		// page holds the key; all shallower levels must lack it.
		winner := 0
		for lvl := 1; lvl <= len(p.Roots); lvl++ {
			lp, err := checkLevel(lvl)
			if err != nil {
				return res, err
			}
			if lp == nil {
				continue
			}
			if kv, ok := findInPage(lp); ok {
				if !bytes.Equal(kv.Value, m.Value) || kv.Ver != m.Ver {
					return res, fmt.Errorf("level %d value contradicts response", lvl)
				}
				winner = lvl
				break
			}
		}
		if winner == 0 {
			return res, fmt.Errorf("found claimed but no level contains the key")
		}
		advance()
		return res, nil
	}

	// Not found: every level must prove absence.
	for lvl := 1; lvl <= len(p.Roots); lvl++ {
		lp, err := checkLevel(lvl)
		if err != nil {
			return res, err
		}
		if lp == nil {
			continue
		}
		if _, ok := findInPage(lp); ok {
			return res, fmt.Errorf("level %d contains key claimed absent", lvl)
		}
	}
	advance()
	return res, nil
}
