package cloud

import (
	"bytes"
	"sync"
	"time"

	"wedgechain/internal/merkle"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/obs"
	"wedgechain/internal/wire"
)

// The anti-entropy auditor re-derives what the cloud has already signed:
// after each merge the node snapshots the leaf tables and the global
// root it signed, and a paced background goroutine rebuilds the Merkle
// trees from the leaves and compares. A mismatch means the cloud signed
// a root its own recorded state cannot reproduce — bit rot, a torn
// in-memory update, or a merge bug — and is surfaced on
// wedge_audit_mismatches_total and the log, never by blocking
// certification: the auditor shares no locks with the node goroutine
// and works exclusively on snapshot copies.
//
// Limitations (by design): the auditor audits the cloud's own
// bookkeeping, not the edges' — a lying edge is caught by certification
// conflict or dispute, not here. It samples merge checkpoints (bounded
// queue, oldest dropped), so it detects corruption, it does not
// enumerate every historical epoch.

// auditCheckpoint snapshots one signed merge result: the per-level leaf
// tables (outer slices copied; leaf hashes are immutable by
// convention) and the global root the cloud signed for that epoch.
type auditCheckpoint struct {
	edge   wire.NodeID
	epoch  uint64
	leaves [][][]byte
	root   []byte
}

// auditQueueCap bounds retained checkpoints; when full the oldest is
// dropped (auditing the newest state first is the point).
const auditQueueCap = 64

// auditor recomputes Merkle roots over certified state on its own
// goroutine, paced by AuditEvery.
type auditor struct {
	mu    sync.Mutex
	queue []auditCheckpoint

	rounds     *obs.Counter
	mismatches *obs.Counter
	logf       func(msg string, args ...any)

	stop chan struct{}
	done chan struct{}
}

func newAuditor(rounds, mismatches *obs.Counter, logf func(string, ...any)) *auditor {
	return &auditor{rounds: rounds, mismatches: mismatches, logf: logf}
}

// offer enqueues a checkpoint for the next sweep. Called on the node
// goroutine; the caller must pass snapshot copies.
func (a *auditor) offer(cp auditCheckpoint) {
	a.mu.Lock()
	if len(a.queue) >= auditQueueCap {
		a.queue = a.queue[1:]
	}
	a.queue = append(a.queue, cp)
	a.mu.Unlock()
}

// sweep audits every queued checkpoint and reports mismatches.
func (a *auditor) sweep() (mismatches int) {
	a.mu.Lock()
	batch := a.queue
	a.queue = nil
	a.mu.Unlock()
	for _, cp := range batch {
		roots := make([][]byte, len(cp.leaves))
		for i, leaves := range cp.leaves {
			roots[i] = merkle.New(leaves).Root()
		}
		if !bytes.Equal(mlsm.GlobalRoot(roots), cp.root) {
			mismatches++
			a.mismatches.Inc()
			a.logf("audit mismatch: recomputed global root contradicts signed checkpoint",
				"edge", cp.edge, "epoch", cp.epoch)
		}
	}
	a.rounds.Inc()
	return mismatches
}

// start runs the paced sweep loop until stopAuditor.
func (a *auditor) start(every time.Duration) {
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				a.sweep()
			case <-a.stop:
				return
			}
		}
	}()
}

func (a *auditor) stopAuditor() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop = nil
}

// AuditNow runs one synchronous audit sweep over the queued checkpoints
// and returns the number of mismatches found (tests, operators). Safe
// from any goroutine.
func (n *Node) AuditNow() int {
	if n.aud == nil {
		return 0
	}
	return n.aud.sweep()
}
