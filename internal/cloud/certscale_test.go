package cloud

import (
	"bytes"
	"testing"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/merkle"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/obs"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Certification-at-scale tests: batched certificates, the precheck
// pipeline, the verdict cache, and the anti-entropy auditor.

// TestCertifyHistogramObservesBothPaths pins the satellite fix: the
// certify-latency histogram must record a sample whether or not the
// envelope arrived pre-verified (the old fast path returned before
// Observe).
func TestCertifyHistogramObservesBothPaths(t *testing.T) {
	f := newFixture(t, Config{}) // Metrics nil: private-registry fallback
	m := &wire.BlockCertify{Edge: "edge-1", BID: 0, Digest: wcrypto.Digest([]byte("b0"))}
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	f.node.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: m, Verified: true})
	if got := f.node.m.certify.Count(); got != 1 {
		t.Fatalf("certify histogram count after pre-verified path = %d, want 1", got)
	}
	m2 := &wire.BlockCertify{Edge: "edge-1", BID: 1, Digest: wcrypto.Digest([]byte("b1"))}
	m2.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m2)
	f.node.Receive(2, wire.Envelope{From: "edge-1", To: "cloud", Msg: m2})
	if got := f.node.m.certify.Count(); got != 2 {
		t.Fatalf("certify histogram count after inline-verify path = %d, want 2", got)
	}
}

func (f *fixture) dispute(t *testing.T, d *wire.Dispute) []wire.Envelope {
	t.Helper()
	return f.node.Receive(9, wire.Envelope{From: "c1", To: "cloud", Msg: d})
}

// lyingDispute builds a well-formed accusation whose evidence contradicts
// the certified digest for bid 0 — a distinct lie per tamper value.
func (f *fixture) lyingDispute(honest wire.Block, tamper string) *wire.Dispute {
	lied := honest
	lied.Entries = append([]wire.Entry(nil), honest.Entries...)
	lied.Entries[0].Value = []byte(tamper)
	ev := &wire.AddResponse{BID: honest.ID, Block: lied}
	ev.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], ev)
	return core.BuildAddLieDispute(f.keys["c1"], "edge-1", ev)
}

// TestDisputeFloodHitsVerdictCache: N re-filings of the same lie cost one
// Judge decode and replay a byte-identical signed verdict; M distinct
// lies cost exactly M decodes. Conviction semantics are unchanged — the
// edge is banned once, by the first guilty adjudication.
func TestDisputeFloodHitsVerdictCache(t *testing.T) {
	f := newFixture(t, Config{})
	honest := f.buildCertifiedBlock(t, 0, "a")

	const dups, distinct = 7, 3
	var first []byte
	for i := 0; i < dups+1; i++ {
		out := f.dispute(t, f.lyingDispute(honest, "same-lie"))
		v, ok := out[0].Msg.(*wire.Verdict)
		if !ok || !v.Guilty {
			t.Fatalf("flood round %d: verdict = %+v", i, out[0].Msg)
		}
		if first == nil {
			first = v.CloudSig
		} else if !bytes.Equal(first, v.CloudSig) {
			t.Fatalf("flood round %d: replayed verdict re-signed", i)
		}
	}
	for i := 1; i < distinct; i++ {
		f.dispute(t, f.lyingDispute(honest, "lie-"+string(rune('a'+i))))
	}
	s := f.node.Stats()
	if s.JudgeDecodes != distinct {
		t.Fatalf("JudgeDecodes = %d, want %d (one per distinct lie)", s.JudgeDecodes, distinct)
	}
	if s.VerdictCacheHits != dups {
		t.Fatalf("VerdictCacheHits = %d, want %d", s.VerdictCacheHits, dups)
	}
	if s.GuiltyEdges != 1 {
		t.Fatalf("GuiltyEdges = %d, want 1", s.GuiltyEdges)
	}
	if _, banned := f.node.Flagged("edge-1"); !banned {
		t.Fatal("lying edge not banned")
	}
}

// TestVerdictCacheDisabled: VerdictCache < 0 restores the decode-per-
// dispute behavior.
func TestVerdictCacheDisabled(t *testing.T) {
	f := newFixture(t, Config{VerdictCache: -1})
	honest := f.buildCertifiedBlock(t, 0, "a")
	for i := 0; i < 3; i++ {
		f.dispute(t, f.lyingDispute(honest, "same-lie"))
	}
	s := f.node.Stats()
	if s.JudgeDecodes != 3 || s.VerdictCacheHits != 0 {
		t.Fatalf("JudgeDecodes = %d, VerdictCacheHits = %d; want 3, 0", s.JudgeDecodes, s.VerdictCacheHits)
	}
}

// TestForgedDisputeCannotTouchCache: a bad claimant signature is rejected
// before any cache access and never seeds a verdict.
func TestForgedDisputeCannotTouchCache(t *testing.T) {
	f := newFixture(t, Config{})
	honest := f.buildCertifiedBlock(t, 0, "a")
	d := f.lyingDispute(honest, "lie")
	d.ClientSig = wcrypto.SignMsg(f.keys["edge-1"], d) // wrong signer
	out := f.dispute(t, d)
	if v := out[0].Msg.(*wire.Verdict); v.Guilty {
		t.Fatalf("forged dispute convicted: %+v", v)
	}
	s := f.node.Stats()
	if s.JudgeDecodes != 0 || s.VerdictCacheHits != 0 {
		t.Fatalf("forged dispute reached judge/cache: decodes=%d hits=%d", s.JudgeDecodes, s.VerdictCacheHits)
	}
}

func batchOf(out []wire.Envelope) *wire.BlockCertBatch {
	for _, env := range out {
		if b, ok := env.Msg.(*wire.BlockCertBatch); ok {
			return b
		}
	}
	return nil
}

// TestBatchedCertifyFlushesAtCertBatch: CertBatch accepted certifications
// are covered by one signed BlockCertBatch, and no per-block proofs are
// signed along the way.
func TestBatchedCertifyFlushesAtCertBatch(t *testing.T) {
	f := newFixture(t, Config{CertBatch: 4})
	digests := make([][]byte, 4)
	var out []wire.Envelope
	for i := range digests {
		digests[i] = wcrypto.Digest([]byte{byte(i)})
		out = f.certify(t, uint64(i), digests[i])
	}
	b := batchOf(out)
	if b == nil {
		t.Fatalf("no batch after %d certifies: %v", len(digests), out)
	}
	if b.Edge != "edge-1" || b.Start != 0 || len(b.Digests) != 4 {
		t.Fatalf("batch = %+v", b)
	}
	for i, d := range b.Digests {
		if !bytes.Equal(d, digests[i]) {
			t.Fatalf("batch digest %d mismatch", i)
		}
	}
	if err := wcrypto.VerifyMsg(f.reg, "cloud", b, b.CloudSig); err != nil {
		t.Fatalf("batch signature: %v", err)
	}
	s := f.node.Stats()
	if s.Certifies != 4 || s.ProofSigns != 0 {
		t.Fatalf("Certifies = %d, ProofSigns = %d; want 4, 0", s.Certifies, s.ProofSigns)
	}
}

// TestBatchedCertifyTickFlushesPartial: a partial run rides the next Tick
// instead of waiting for the batch to fill.
func TestBatchedCertifyTickFlushesPartial(t *testing.T) {
	f := newFixture(t, Config{CertBatch: 8})
	f.certify(t, 0, wcrypto.Digest([]byte("b0")))
	out := f.certify(t, 1, wcrypto.Digest([]byte("b1")))
	if batchOf(out) != nil {
		t.Fatal("partial run flushed early")
	}
	b := batchOf(f.node.Tick(2))
	if b == nil || b.Start != 0 || len(b.Digests) != 2 {
		t.Fatalf("tick flush batch = %+v", b)
	}
}

// TestBatchedCertifyDuplicateFallsBackToProof: a duplicate certify in
// batched mode is answered with an individually signed proof — the
// single-cert shape every verifier still accepts.
func TestBatchedCertifyDuplicateFallsBackToProof(t *testing.T) {
	f := newFixture(t, Config{CertBatch: 2})
	d := wcrypto.Digest([]byte("b0"))
	f.certify(t, 0, d)
	out := f.certify(t, 0, d)
	if len(out) != 1 {
		t.Fatalf("duplicate outputs = %d", len(out))
	}
	p, ok := out[0].Msg.(*wire.BlockProof)
	if !ok {
		t.Fatalf("duplicate answered with %T", out[0].Msg)
	}
	if err := wcrypto.VerifyMsg(f.reg, "cloud", p, p.CloudSig); err != nil {
		t.Fatalf("lazily signed proof: %v", err)
	}
	if s := f.node.Stats(); s.ProofSigns != 1 {
		t.Fatalf("ProofSigns = %d, want 1 (lazy sign on duplicate)", s.ProofSigns)
	}
}

// TestCertifyBatchIngress: an inbound BlockCertifyBatch certifies every
// covered block under one edge signature, and equivocation inside a
// batch still convicts.
func TestCertifyBatchIngress(t *testing.T) {
	f := newFixture(t, Config{CertBatch: 4})
	m := &wire.BlockCertifyBatch{Edge: "edge-1", Start: 0}
	for i := 0; i < 4; i++ {
		m.Digests = append(m.Digests, wcrypto.Digest([]byte{byte(i)}))
	}
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	out := f.node.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: m})
	b := batchOf(out)
	if b == nil || len(b.Digests) != 4 {
		t.Fatalf("ingress batch output = %v", out)
	}
	if s := f.node.Stats(); s.Certifies != 4 {
		t.Fatalf("Certifies = %d, want 4", s.Certifies)
	}

	// A conflicting digest for a covered bid is equivocation, same as
	// with single certifies.
	out = f.certify(t, 2, wcrypto.Digest([]byte("other")))
	v, ok := out[0].Msg.(*wire.Verdict)
	if !ok || !v.Guilty {
		t.Fatalf("conflict inside batched run: %+v", out[0].Msg)
	}
}

// TestCertifyBatchBadSignatureRejected: a forged batch certifies nothing.
func TestCertifyBatchBadSignatureRejected(t *testing.T) {
	f := newFixture(t, Config{CertBatch: 4})
	m := &wire.BlockCertifyBatch{Edge: "edge-1", Start: 0, Digests: [][]byte{wcrypto.Digest([]byte("x"))}}
	m.EdgeSig = wcrypto.SignMsg(f.keys["c1"], m) // wrong signer
	if out := f.node.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: m}); out != nil {
		t.Fatalf("forged batch produced output: %v", out)
	}
	if s := f.node.Stats(); s.Certifies != 0 {
		t.Fatalf("forged batch certified %d blocks", s.Certifies)
	}
}

// TestCertWorkersPipelineDrains: with a worker pool the prechecks run off
// the node goroutine; Receive+Tick eventually apply every certification
// in bid order, and defaults stay byte-compatible (per-block proofs).
func TestCertWorkersPipelineDrains(t *testing.T) {
	f := newFixture(t, Config{CertWorkers: 2})
	defer f.node.Close()
	const blocks = 16
	for i := 0; i < blocks; i++ {
		f.certify(t, uint64(i), wcrypto.Digest([]byte{byte(i)}))
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.node.Stats().Certifies < blocks {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline drained %d/%d certifies", f.node.Stats().Certifies, blocks)
		}
		f.node.Tick(2)
		time.Sleep(time.Millisecond)
	}
	if s := f.node.Stats(); s.ProofSigns != blocks {
		t.Fatalf("ProofSigns = %d, want %d (CertBatch default keeps per-block proofs)", s.ProofSigns, blocks)
	}
}

// TestAuditorDetectsMismatch unit-tests the sweep: a checkpoint whose
// signed root matches its leaves passes; a corrupted one is flagged.
func TestAuditorDetectsMismatch(t *testing.T) {
	reg := obs.NewRegistry()
	rounds := reg.CounterVec("wedge_audit_rounds_total", "t", "node").With("cloud")
	mismatches := reg.CounterVec("wedge_audit_mismatches_total", "t", "node").With("cloud")
	a := newAuditor(rounds, mismatches, func(string, ...any) {})

	leaves := [][][]byte{{wcrypto.Digest([]byte("l0"))}, {wcrypto.Digest([]byte("l1"))}}
	roots := make([][]byte, len(leaves))
	for i, lv := range leaves {
		roots[i] = merkle.New(lv).Root()
	}
	good := auditCheckpoint{edge: "edge-1", epoch: 1, leaves: leaves, root: mlsm.GlobalRoot(roots)}
	a.offer(good)
	if got := a.sweep(); got != 0 {
		t.Fatalf("clean checkpoint flagged: %d mismatches", got)
	}
	bad := good
	bad.root = wcrypto.Digest([]byte("corrupted"))
	a.offer(bad)
	if got := a.sweep(); got != 1 {
		t.Fatalf("corrupt checkpoint mismatches = %d, want 1", got)
	}
	if rounds.Value() != 2 || mismatches.Value() != 1 {
		t.Fatalf("rounds = %d, mismatches = %d", rounds.Value(), mismatches.Value())
	}
}

// TestAuditNowAfterMerge drives the real checkpoint path: a merge offers
// a snapshot, AuditNow recomputes it, and the signed root reproduces.
func TestAuditNowAfterMerge(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2, AuditEvery: int64(time.Hour)})
	defer f.node.Close()
	b0 := f.buildCertifiedBlock(t, 0, "a", "b")
	b1 := f.buildCertifiedBlock(t, 1, "c", "d")
	f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{b0, b1}})
	if got := f.node.AuditNow(); got != 0 {
		t.Fatalf("merge checkpoint failed audit: %d mismatches", got)
	}
	s := f.node.Stats()
	if s.AuditRounds != 1 || s.AuditMismatches != 0 {
		t.Fatalf("AuditRounds = %d, AuditMismatches = %d", s.AuditRounds, s.AuditMismatches)
	}
}
