// Package cloud implements WedgeChain's trusted cloud node: the
// certification authority of lazy certification (Section IV), the merge
// service of LSMerkle (Section V), the gossip source for omission
// detection, and the adjudicator of disputes.
//
// The cloud never holds block payloads for certification — only digests
// (data-free coordination). For merges it receives page data transiently,
// verifies it against its own leaf tables, merges, signs the new roots and
// discards the data, retaining hashes only.
package cloud

import (
	"bytes"
	"fmt"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/merkle"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/obs"
	"wedgechain/internal/obs/olog"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Config parameterizes the cloud node.
type Config struct {
	ID wire.NodeID
	// Levels is the number of LSMerkle levels (excluding L0) per edge.
	Levels int
	// PageCap is the records-per-page target for merged pages.
	PageCap int
	// GossipEvery emits signed log-size gossip at this period (ns);
	// 0 disables gossip.
	GossipEvery int64
	// GossipTo lists gossip recipients (clients, typically).
	GossipTo []wire.NodeID
	// LeaseTimeout is how long a replica-group leader may go without a
	// heartbeat before the cloud declares it dead and signs a leadership
	// transfer. Only chains registered via RegisterGroup are tracked.
	LeaseTimeout int64
	// CertTimeout bounds how long followers may mirror blocks the chain
	// never certifies before the cloud treats the leader as stalled
	// (crashed after replication, or deliberately starving Phase II) and
	// fails over.
	CertTimeout int64
	// CertWorkers sizes the certification precheck pipeline: signature
	// checks and full-data decodes run on this many worker goroutines,
	// per-chain FIFO, while certs.Certify stays on the node goroutine.
	// 0 (the default) keeps the fully inline, deterministic path; a
	// node with workers must be Close()d.
	CertWorkers int
	// CertBatch caps the contiguous run of accepted certifications one
	// cloud signature covers (wire.BlockCertBatch). <= 1 (the default)
	// signs every proof individually — the pre-batching behaviour,
	// byte for byte.
	CertBatch int
	// AuditEvery paces the background anti-entropy auditor (ns): each
	// period it recomputes Merkle roots over the latest merge
	// checkpoints and compares them with the roots the cloud signed.
	// 0 disables the auditor (the default).
	AuditEvery int64
	// VerdictCache caps the adjudication cache (entries): disputes with
	// byte-identical evidence replay the cached signed verdict instead
	// of re-decoding and re-judging. 0 selects the default (1024);
	// negative disables the cache.
	VerdictCache int
	// Logger receives operational events; nil disables logging.
	Logger *olog.Logger
	// Metrics, when non-nil, is the registry this node's series live in.
	// Counters and histograms back Stats() and observe either way; a
	// nil registry just keeps them private.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Levels <= 0 {
		c.Levels = 3
	}
	if c.PageCap <= 0 {
		c.PageCap = 100
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = int64(1e9)
	}
	if c.CertTimeout <= 0 {
		c.CertTimeout = int64(3e9)
	}
	if c.CertWorkers < 0 {
		c.CertWorkers = 0
	}
	if c.CertBatch < 1 {
		c.CertBatch = 1
	}
	if c.VerdictCache == 0 {
		c.VerdictCache = 1024
	}
}

// Validate rejects configurations that would silently misbehave at
// runtime. Called by the façade before construction; direct users of the
// package may call it too. fill() still papers over zero values with
// defaults — Validate only flags combinations no default can repair.
func (c *Config) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("cloud: config requires an ID")
	}
	if c.GossipEvery < 0 || c.LeaseTimeout < 0 || c.CertTimeout < 0 {
		return fmt.Errorf("cloud: negative interval (GossipEvery %d, LeaseTimeout %d, CertTimeout %d)",
			c.GossipEvery, c.LeaseTimeout, c.CertTimeout)
	}
	if c.AuditEvery < 0 {
		return fmt.Errorf("cloud: negative AuditEvery %d", c.AuditEvery)
	}
	return nil
}

// edgeState is the cloud's bookkeeping for one edge node: certified
// digests (held in the shared CertTable), block proofs for re-delivery,
// and per-level Merkle leaf tables mirroring the edge's index structure
// without its data.
type edgeState struct {
	proofs     map[uint64]*wire.BlockProof
	l0Consumed uint64     // next uncompacted block id
	leaves     [][][]byte // per level (0-based = level 1): ordered page leaf hashes
	trees      []*merkle.Tree
	epoch      uint64
	pageSeq    uint64
}

// Node is the cloud node state machine. Not safe for concurrent use.
type Node struct {
	cfg    Config
	key    wcrypto.KeyPair
	reg    *wcrypto.Registry
	certs  *core.CertTable
	punish *core.Punishments
	edges  map[wire.NodeID]*edgeState

	// Replica-group failover state: chains maps a chain identity to its
	// current leadership view; nodeChain maps every group member (leader
	// and followers) back to its chain. Ungrouped chains appear in
	// neither — for them node and chain coincide and no liveness is
	// tracked (the legacy single-node shard).
	chains    map[wire.NodeID]*chainState
	nodeChain map[wire.NodeID]wire.NodeID
	shardMap  *wire.ShardMap // current signed routing map, re-signed on transfer
	mapChains []wire.NodeID  // per-shard chain identity (the map's original Edges)

	lastGossip int64
	m          *metrics

	// Certification scale-out (pipeline.go, auditor.go). pipe is nil
	// with CertWorkers 0; pendingRuns holds each chain's outbound
	// certificate batch under construction; vcache is nil when the
	// verdict cache is disabled; aud is nil unless AuditEvery > 0.
	pipe        *certPipeline
	pendingRuns map[wire.NodeID]*certRun
	vcache      *verdictCache
	aud         *auditor
}

// Stats is a point-in-time snapshot of the node's operational
// counters, read atomically from the metrics registry — safe to call
// from any goroutine while the node runs.
type Stats struct {
	Certifies uint64
	// ProofSigns counts Ed25519 signatures spent on block proofs. The
	// cloud signs each (edge, bid) proof exactly once: duplicate certify
	// attempts and dispute re-delivery reuse the cached signed proof, so
	// ProofSigns == Certifies is an invariant tests pin.
	ProofSigns    uint64
	Conflicts     uint64
	Merges        uint64
	MergeRejects  uint64
	Disputes      uint64
	GuiltyEdges   uint64
	GossipsSent   uint64
	BytesFromEdge uint64
	Heartbeats    uint64
	Transfers     uint64
	// Rejoins counts ex-members re-admitted to their replica group after
	// a restart or demotion (certified catch-up brings them current).
	Rejoins uint64
	// VerdictCacheHits counts disputes answered from the adjudication
	// cache; JudgeDecodes counts full Judge runs (one evidence decode
	// each) — under a dispute flood hits grow with the flood while
	// decodes grow with the number of distinct lies.
	VerdictCacheHits uint64
	JudgeDecodes     uint64
	// AuditRounds and AuditMismatches mirror the anti-entropy auditor:
	// sweeps completed, and checkpoints whose recomputed Merkle root
	// contradicted the root the cloud signed (always 0 in a healthy
	// deployment).
	AuditRounds     uint64
	AuditMismatches uint64
}

// New constructs a cloud node. Nodes with CertWorkers > 0 or
// AuditEvery > 0 own goroutines and must be Close()d.
func New(cfg Config, key wcrypto.KeyPair, reg *wcrypto.Registry) *Node {
	cfg.fill()
	n := &Node{
		cfg:         cfg,
		key:         key,
		reg:         reg,
		certs:       core.NewCertTable(),
		punish:      core.NewPunishments(),
		edges:       make(map[wire.NodeID]*edgeState),
		chains:      make(map[wire.NodeID]*chainState),
		nodeChain:   make(map[wire.NodeID]wire.NodeID),
		pendingRuns: make(map[wire.NodeID]*certRun),
		m:           newMetrics(cfg.Metrics, string(cfg.ID)),
	}
	if cfg.VerdictCache > 0 {
		n.vcache = newVerdictCache(cfg.VerdictCache)
	}
	if cfg.CertWorkers > 0 {
		n.pipe = newCertPipeline(reg, cfg.CertWorkers)
	}
	if cfg.AuditEvery > 0 {
		n.aud = newAuditor(n.m.auditRounds, n.m.auditMismatches, n.logf)
		n.aud.start(time.Duration(cfg.AuditEvery))
	}
	return n
}

// Close stops the certification pipeline workers and the anti-entropy
// auditor. Idempotent; a node built without either is a no-op.
func (n *Node) Close() {
	if n.pipe != nil {
		n.pipe.close()
		n.pipe = nil
	}
	if n.aud != nil {
		n.aud.stopAuditor()
	}
}

// ID implements core.Handler.
func (n *Node) ID() wire.NodeID { return n.cfg.ID }

// Certs exposes the certification table (tests, baselines).
func (n *Node) Certs() *core.CertTable { return n.certs }

// Punishments exposes the punishment registry.
func (n *Node) Punishments() *core.Punishments { return n.punish }

// Stats returns a snapshot of the node's counters. Each field is an
// atomic load, so polling mid-run from another goroutine is race-free.
func (n *Node) Stats() Stats {
	return Stats{
		Certifies:     n.m.certifies.Value(),
		ProofSigns:    n.m.proofSigns.Value(),
		Conflicts:     n.m.conflicts.Value(),
		Merges:        n.m.merges.Value(),
		MergeRejects:  n.m.mergeRejects.Value(),
		Disputes:      n.m.disputesGuilty.Value() + n.m.disputesNotGuilty.Value(),
		GuiltyEdges:   n.m.guiltyEdges.Value(),
		GossipsSent:   n.m.gossipsSent.Value(),
		BytesFromEdge: n.m.bytesFromEdge.Value(),
		Heartbeats:    n.m.heartbeats.Value(),
		Transfers:     n.m.transfers.Value(),
		Rejoins:       n.m.rejoins.Value(),

		VerdictCacheHits: n.m.verdictCacheHits.Value(),
		JudgeDecodes:     n.m.judgeDecodes.Value(),
		AuditRounds:      n.m.auditRounds.Value(),
		AuditMismatches:  n.m.auditMismatches.Value(),
	}
}

// Flagged reports whether edge has been convicted, with the first reason.
func (n *Node) Flagged(edge wire.NodeID) (string, bool) {
	return n.punish.Banned(edge)
}

// AddGossipTarget subscribes id to gossip. Must be called on the node's
// transport goroutine (e.g. via the transport's Do hook).
func (n *Node) AddGossipTarget(id wire.NodeID) {
	for _, t := range n.cfg.GossipTo {
		if t == id {
			return
		}
	}
	n.cfg.GossipTo = append(n.cfg.GossipTo, id)
}

func (n *Node) logf(msg string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Info(msg, args...)
	}
}

func (n *Node) edge(id wire.NodeID) *edgeState {
	s := n.edges[id]
	if s == nil {
		s = &edgeState{
			proofs: make(map[uint64]*wire.BlockProof),
			leaves: make([][][]byte, n.cfg.Levels),
			trees:  make([]*merkle.Tree, n.cfg.Levels),
		}
		for i := range s.trees {
			s.trees[i] = merkle.New(nil)
		}
		n.edges[id] = s
	}
	return s
}

// Receive implements core.Handler. env.Verified marks signatures already
// checked by a trusted wcrypto.VerifyPool stage in front of this node;
// handlers then skip only the signature re-check.
func (n *Node) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.BlockCertify:
		// Both branches of the old enabled-gate observed here skipped
		// the histogram on the fast path; the histogram is now always
		// allocated, so every certify observes.
		t0 := time.Now()
		out := n.certifyIngress(now, env.From, &certJob{from: env.From, single: m, verified: env.Verified})
		n.m.certify.Observe(time.Since(t0).Seconds())
		return out
	case *wire.BlockCertifyBatch:
		t0 := time.Now()
		out := n.certifyIngress(now, env.From, &certJob{from: env.From, batch: m, verified: env.Verified})
		n.m.certify.Observe(time.Since(t0).Seconds())
		return out
	case *wire.MergeRequest:
		n.m.bytesFromEdge.Add(uint64(wire.EncodedSize(env)))
		return n.handleMerge(now, env.From, m, env.Verified)
	case *wire.Dispute:
		return n.handleDispute(now, env.From, m)
	case *wire.ReplicaHeartbeat:
		return n.handleHeartbeat(now, env.From, m, env.Verified)
	case *wire.FrontierRequest:
		return n.handleFrontier(now, env.From, m)
	case *wire.Ping:
		return []wire.Envelope{{From: n.cfg.ID, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	default:
		return nil
	}
}

// Tick implements core.Handler: periodic gossip emission. Convicted
// edges are excluded — their chains are frozen at conviction, and
// continuing to gossip them would invite clients to keep trusting a
// banned shard — while sibling shards' gossip continues undisturbed.
func (n *Node) Tick(now int64) []wire.Envelope {
	out := n.tickFailover(now)
	if n.pipe != nil {
		// Drain prechecked certifications: a lull in traffic must not
		// strand completed jobs in the pipeline.
		out = append(out, n.drainPipe(now)...)
	}
	// Flush partial certificate batches: a pending run waits at most
	// one tick for more accepts before its signature is spent.
	out = append(out, n.flushRuns()...)
	if n.cfg.GossipEvery <= 0 || now-n.lastGossip < n.cfg.GossipEvery {
		return out
	}
	n.lastGossip = now
	for edgeID := range n.edges {
		// Skip chains whose CURRENT leader is banned: either the chain is
		// dead (no promotable follower) or a transfer is about to land —
		// but a chain that failed over to an honest node keeps gossiping,
		// because verdicts are node-scoped while gossip is chain-scoped.
		if _, banned := n.punish.Banned(n.leaderOf(edgeID)); banned {
			continue
		}
		g := &wire.Gossip{
			Edge:    edgeID,
			Ts:      now,
			LogSize: n.certs.Entries(edgeID),
			Blocks:  n.certs.Blocks(edgeID),
		}
		g.CloudSig = wcrypto.SignMsg(n.key, g)
		for _, to := range n.cfg.GossipTo {
			out = append(out, wire.Envelope{From: n.cfg.ID, To: to, Msg: g})
			n.m.gossipsSent.Inc()
		}
	}
	return out
}

// certifyIngress is the certification front door. With CertWorkers 0
// the precheck (signature, full-data decode) runs inline and the job
// applies immediately — the legacy serial path. With workers the job
// enters the pipeline and whatever prechecked jobs are ready apply now;
// the rest surface on later Receives or the next Tick.
func (n *Node) certifyIngress(now int64, from wire.NodeID, j *certJob) []wire.Envelope {
	if n.pipe == nil {
		j.precheck(n.reg)
		return n.applyCert(now, j)
	}
	n.pipe.enqueue(j)
	return n.drainPipe(now)
}

// drainPipe applies every prechecked job whose chain lane has it at the
// head. Node goroutine only.
func (n *Node) drainPipe(now int64) []wire.Envelope {
	var out []wire.Envelope
	for _, j := range n.pipe.ready() {
		out = append(out, n.applyCert(now, j)...)
	}
	return out
}

func (n *Node) applyCert(now int64, j *certJob) []wire.Envelope {
	if j.single != nil {
		return n.applyCertify(now, j.from, j.single, j.sigOK, j.bodyOK)
	}
	return n.applyCertifyBatch(now, j.from, j.batch, j.sigOK)
}

// applyCertify implements the cloud algorithm of Section IV-D: sign the
// first digest reported for (edge, bid); flag the edge on any conflicting
// report. Certification is data-free — this handler never sees the block.
// sigOK and bodyOK carry the precheck results (inline or pipelined); all
// state-dependent checks happen here, on the node goroutine.
func (n *Node) applyCertify(now int64, from wire.NodeID, m *wire.BlockCertify, sigOK, bodyOK bool) []wire.Envelope {
	// m.Edge names the chain; only the chain's current leader may certify
	// under it. For ungrouped chains leaderOf is the identity map, so the
	// legacy from == m.Edge check is preserved exactly.
	if from != n.leaderOf(m.Edge) {
		return nil
	}
	if _, banned := n.punish.Banned(from); banned {
		return nil
	}
	if !sigOK {
		n.logf("dropping certify with bad signature", "edge", from)
		return nil
	}
	if !bodyOK {
		// Full-data mode: the shipped body must decode to a block whose
		// recomputed digest (which commits the derived key summary and
		// entries hash) is the claimed one; a mismatch is an immediately
		// provable lie.
		v := wire.Verdict{
			Edge: from, BID: m.BID, Kind: wire.DisputeAddLie, Guilty: true,
			Reason: "certify body does not hash to claimed digest",
		}
		v.CloudSig = wcrypto.SignMsg(n.key, &v)
		n.convict(v)
		return n.broadcastVerdict(v)
	}
	return n.certifyOne(now, m.Edge, from, m.BID, m.Digest)
}

// applyCertifyBatch certifies each triple of an amortized request in
// bid order. One edge signature covered the whole run; each triple then
// passes through exactly the per-block certification logic, so a
// conflicting digest inside a batch convicts just as a single certify
// would — and freezes the rest of the run, since the edge is banned the
// moment the verdict lands.
func (n *Node) applyCertifyBatch(now int64, from wire.NodeID, m *wire.BlockCertifyBatch, sigOK bool) []wire.Envelope {
	if from != n.leaderOf(m.Edge) {
		return nil
	}
	if !sigOK {
		n.logf("dropping certify batch with bad signature", "edge", from)
		return nil
	}
	var out []wire.Envelope
	for i, d := range m.Digests {
		if _, banned := n.punish.Banned(from); banned {
			break
		}
		out = append(out, n.certifyOne(now, m.Edge, from, m.Start+uint64(i), d)...)
	}
	return out
}

// certifyOne records one (chain, bid, digest) certification and routes
// its proof: individually signed (CertBatch <= 1, duplicates) or
// accumulated into the chain's pending batch run.
func (n *Node) certifyOne(now int64, chain, from wire.NodeID, bid uint64, digest []byte) []wire.Envelope {
	st := n.edge(chain)
	// Data-free certification cannot know the entry count; edges report
	// batch-sized blocks, so gossip uses block counts plus the certify
	// message's implicit batch. We conservatively count entries at merge
	// time; gossip LogSize uses certified entries recorded there. For
	// block-level omission detection the Blocks counter suffices.
	switch n.certs.Certify(chain, bid, digest, 0) {
	case core.CertAccepted:
		n.m.certifies.Inc()
		if n.cfg.CertBatch > 1 {
			return n.appendCert(chain, from, bid, digest)
		}
		proof := n.signedProof(st, chain, bid, digest)
		return n.proofFanout(chain, from, proof)
	case core.CertDuplicate:
		// Re-delivery: the digest matched the certified one, so the
		// cached proof is returned — lazily signed on first re-request
		// when the original certificate went out in a batch — without
		// spending a signature per re-delivery.
		n.m.proofCacheHits.Inc()
		proof := n.signedProof(st, chain, bid, digest)
		return n.proofFanout(chain, from, proof)
	default: // CertConflict: equivocation caught red-handed.
		n.m.conflicts.Inc()
		v := wire.Verdict{
			Edge:   from,
			BID:    bid,
			Kind:   wire.DisputeAddLie,
			Guilty: true,
			Reason: fmt.Sprintf("conflicting digest certify for block %d", bid),
		}
		v.CloudSig = wcrypto.SignMsg(n.key, &v)
		n.convict(v)
		return append(n.broadcastVerdict(v), wire.Envelope{From: n.cfg.ID, To: from, Msg: &v})
	}
}

// proofFanout delivers a signed block proof to the certifying node and,
// for replica groups, to every other group member — followers audit their
// mirrored digests against it, and a broadcast straight from the cloud
// stays robust when the leader dies right after certifying.
func (n *Node) proofFanout(chain, from wire.NodeID, proof *wire.BlockProof) []wire.Envelope {
	out := []wire.Envelope{{From: n.cfg.ID, To: from, Msg: proof}}
	if st, ok := n.chains[chain]; ok {
		if st.leader != from {
			out = append(out, wire.Envelope{From: n.cfg.ID, To: st.leader, Msg: proof})
		}
		for _, f := range st.followers {
			if f != from {
				out = append(out, wire.Envelope{From: n.cfg.ID, To: f, Msg: proof})
			}
		}
	}
	return out
}

// fullDataBodyMatches decodes a full-data certify body (the block's
// canonical encoding) and checks that the block's recomputed digest is
// the one the request claims. The digest is derived (summary + entries
// hash), not a flat hash of the body bytes, so the check must go through
// the block fields.
func fullDataBodyMatches(m *wire.BlockCertify) bool {
	var blk wire.Block
	d := wire.NewDecoder(m.Body)
	blk.DecodeFrom(d)
	if d.Finish() != nil {
		return false
	}
	return bytes.Equal(wcrypto.RecomputedBlockDigest(&blk), m.Digest)
}

// signedProof returns the cached signed proof for (edge, bid), signing it
// on first use only. Every path that hands out a proof — first certify,
// duplicate certify, dispute attachment — goes through here, which is what
// makes the one-signature-per-proof invariant (Stats.ProofSigns) hold.
func (n *Node) signedProof(st *edgeState, edge wire.NodeID, bid uint64, digest []byte) *wire.BlockProof {
	if p, ok := st.proofs[bid]; ok {
		return p
	}
	p := &wire.BlockProof{Edge: edge, BID: bid, Digest: digest}
	p.CloudSig = wcrypto.SignMsg(n.key, p)
	n.m.proofSigns.Inc()
	st.proofs[bid] = p
	return p
}

func (n *Node) convict(v wire.Verdict) {
	if _, already := n.punish.Banned(v.Edge); !already {
		n.m.guiltyEdges.Inc()
	}
	n.punish.Punish(v)
	n.logf("edge punished", "edge", v.Edge, "reason", v.Reason)
}

// broadcastVerdict pushes a signed guilty verdict to every gossip target
// except those in skip (parties already served directly). In a sharded
// cluster this is how clients of a convicted shard learn of the
// conviction even when they were not party to the dispute; clients of
// sibling shards discard the verdict by its Edge field, so one shard's
// punishment never perturbs another's pipeline.
func (n *Node) broadcastVerdict(v wire.Verdict, skip ...wire.NodeID) []wire.Envelope {
	var out []wire.Envelope
	for _, to := range n.cfg.GossipTo {
		skipped := false
		for _, s := range skip {
			if to == s {
				skipped = true
				break
			}
		}
		if !skipped {
			out = append(out, wire.Envelope{From: n.cfg.ID, To: to, Msg: &v})
		}
	}
	return out
}

// VerdictsFor returns the guilty verdicts recorded against one edge.
func (n *Node) VerdictsFor(edge wire.NodeID) []wire.Verdict {
	return n.punish.VerdictsFor(edge)
}

// handleDispute adjudicates client evidence (Section IV-E "Disputes").
// The verdict is returned to the client; when a certificate exists for the
// disputed block it is attached, so an honest edge's slow certification
// still lets the client finish Phase II.
//
// With the verdict cache on, adjudications are memoized by evidence
// digest: a flood of byte-identical accusations costs one Judge decode
// for the first and a cache hit for every replay, from any claimant
// whose signature verifies. Conviction side effects (punishment,
// broadcast) ran when the verdict was first issued; a replay only
// re-delivers the same signed ruling.
func (n *Node) handleDispute(now int64, from wire.NodeID, d *wire.Dispute) []wire.Envelope {
	// The accused is a node; certificates, scan artifacts and gossip are
	// keyed by its chain. For ungrouped edges the two coincide and
	// JudgeForChain degenerates to the legacy Judge.
	chain := n.chainOf(d.Edge)
	var key string
	if n.vcache != nil {
		// Claimant gate before any cache access: only well-signed
		// disputes may read or seed memoized verdicts, so a forged
		// accusation can neither poison the cache nor probe it.
		if err := wcrypto.VerifyMsg(n.reg, from, d, d.ClientSig); err != nil {
			v := wire.Verdict{Edge: d.Edge, BID: d.BID, Kind: d.Kind,
				Reason: "dispute rejected: bad client signature"}
			n.m.disputesNotGuilty.Inc()
			v.CloudSig = wcrypto.SignMsg(n.key, &v)
			out := []wire.Envelope{{From: n.cfg.ID, To: from, Msg: &v}}
			return append(out, n.attachProof(chain, d.BID, from)...)
		}
		key = verdictKey(d)
		if cv, ok := n.vcache.get(key); ok {
			n.m.verdictCacheHits.Inc()
			if cv.verdict.Guilty {
				n.m.disputesGuilty.Inc()
			} else {
				n.m.disputesNotGuilty.Inc()
			}
			v := cv.verdict
			out := []wire.Envelope{{From: n.cfg.ID, To: from, Msg: &v}}
			return append(out, n.attachProof(chain, d.BID, from)...)
		}
	}
	n.m.judgeDecodes.Inc()
	v := core.JudgeForChain(n.reg, n.certs, n.cfg.ID, from, d, chain)
	if v.Guilty {
		n.m.disputesGuilty.Inc()
	} else {
		n.m.disputesNotGuilty.Inc()
	}
	v.CloudSig = wcrypto.SignMsg(n.key, &v)
	if n.vcache != nil {
		n.vcache.put(key, &cachedVerdict{verdict: v})
	}
	out := []wire.Envelope{{From: n.cfg.ID, To: from, Msg: &v}}
	if v.Guilty {
		n.convict(v)
		out = append(out, n.broadcastVerdict(v, from)...)
	}
	return append(out, n.attachProof(chain, d.BID, from)...)
}

// attachProof re-delivers the certificate for a disputed block when one
// exists. In batched mode the individual proof may never have been
// signed — the certificate went out inside a BlockCertBatch — so it is
// lazily signed here from the certified digest: dispute re-delivery
// always yields the single-cert shape, whatever shape certification
// used. In unbatched mode every certified bid already carries a cached
// signed proof, so this spends no extra signatures.
func (n *Node) attachProof(chain wire.NodeID, bid uint64, to wire.NodeID) []wire.Envelope {
	digest, ok := n.certs.Lookup(chain, bid)
	if !ok {
		return nil
	}
	proof := n.signedProof(n.edge(chain), chain, bid, digest)
	return []wire.Envelope{{From: n.cfg.ID, To: to, Msg: proof}}
}

// handleMerge implements the merge protocol of Section V-B: verify the
// shipped pages against certified digests and leaf tables, perform the LSM
// merge, rebuild the level Merkle tree, and sign the new roots and global
// root with a freshness timestamp.
func (n *Node) handleMerge(now int64, from wire.NodeID, m *wire.MergeRequest, verified bool) []wire.Envelope {
	reject := func(reason string) []wire.Envelope {
		n.m.mergeRejects.Inc()
		resp := &wire.MergeResponse{Edge: m.Edge, ReqID: m.ReqID, OK: false, Reason: reason, FromLevel: m.FromLevel}
		resp.CloudSig = wcrypto.SignMsg(n.key, resp)
		n.logf("merge rejected", "edge", from, "reason", reason)
		return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
	}
	if from != n.leaderOf(m.Edge) {
		return nil
	}
	if _, banned := n.punish.Banned(from); banned {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, from, m, m.EdgeSig); err != nil {
			return reject("bad edge signature")
		}
	}
	st := n.edge(m.Edge)
	lvl := int(m.FromLevel)
	if lvl < 0 || lvl >= n.cfg.Levels {
		return reject("source level out of range")
	}

	var srcKVs []wire.KV
	var consumedTo uint64
	if lvl == 0 {
		if len(m.L0Blocks) == 0 {
			return reject("empty L0 merge")
		}
		// Blocks must be the contiguous certified prefix starting at the
		// cloud's consumption cursor, each matching its certified digest.
		want := st.l0Consumed
		var entries uint64
		for i := range m.L0Blocks {
			blk := &m.L0Blocks[i]
			if blk.Edge != m.Edge || blk.ID != want {
				return reject(fmt.Sprintf("L0 block %d out of order (want %d)", blk.ID, want))
			}
			certified, ok := n.certs.Lookup(m.Edge, blk.ID)
			if !ok {
				return reject(fmt.Sprintf("L0 block %d not certified", blk.ID))
			}
			if !bytes.Equal(wcrypto.RecomputedBlockDigest(blk), certified) {
				// The edge shipped content contradicting its own
				// certified digest: caught lying.
				v := wire.Verdict{
					Edge: from, BID: blk.ID, Kind: wire.DisputeAddLie, Guilty: true,
					Reason: fmt.Sprintf("merge shipped block %d contradicting certified digest", blk.ID),
				}
				v.CloudSig = wcrypto.SignMsg(n.key, &v)
				n.convict(v)
				return append(n.broadcastVerdict(v), reject("block contradicts certified digest")...)
			}
			entries += uint64(len(blk.Entries))
			srcKVs = append(srcKVs, mlsm.BlockKVs(blk)...)
			want++
		}
		consumedTo = want - 1
		n.certs.AddEntries(m.Edge, entries)
	} else {
		if err := n.verifyLevel(st, lvl, m.SrcPages); err != nil {
			return reject(err.Error())
		}
		srcKVs = mlsm.PagesKVs(m.SrcPages)
	}
	if err := n.verifyLevel(st, lvl+1, m.DstPages); err != nil {
		return reject(err.Error())
	}

	newPages := mlsm.Merge(srcKVs, m.DstPages, uint32(lvl+1), n.cfg.PageCap, st.pageSeq, now)
	st.pageSeq += uint64(len(newPages))

	// Refresh leaf tables: target level gets the merged pages; a source
	// level > 0 becomes empty.
	target := lvl // 0-based slot for level lvl+1
	leaves := make([][]byte, len(newPages))
	for i := range newPages {
		leaves[i] = mlsm.PageLeaf(&newPages[i])
	}
	st.leaves[target] = leaves
	st.trees[target] = merkle.New(leaves)
	if lvl > 0 {
		st.leaves[lvl-1] = nil
		st.trees[lvl-1] = merkle.New(nil)
	}
	if lvl == 0 {
		st.l0Consumed = consumedTo + 1
	}

	roots := make([][]byte, n.cfg.Levels)
	for i := range roots {
		roots[i] = st.trees[i].Root()
	}
	st.epoch++
	global := wire.SignedRoot{
		Edge:   m.Edge,
		Epoch:  st.epoch,
		Root:   mlsm.GlobalRoot(roots),
		Ts:     now,
		L0From: st.l0Consumed, // signed compaction frontier: pins where served L0 windows must start
	}
	global.CloudSig = wcrypto.SignMsg(n.key, &global)

	if n.aud != nil {
		// Snapshot the leaf tables for the background auditor. Outer
		// slices are copied; the leaf hashes themselves are immutable
		// (every merge replaces a level's slice wholesale).
		snap := make([][][]byte, len(st.leaves))
		for i, lv := range st.leaves {
			snap[i] = append([][]byte(nil), lv...)
		}
		n.aud.offer(auditCheckpoint{edge: m.Edge, epoch: st.epoch, leaves: snap, root: global.Root})
	}

	n.m.merges.Inc()
	resp := &wire.MergeResponse{
		Edge:       m.Edge,
		ReqID:      m.ReqID,
		OK:         true,
		FromLevel:  m.FromLevel,
		NewPages:   newPages,
		Roots:      roots,
		Global:     global,
		ConsumedTo: consumedTo,
	}
	resp.CloudSig = wcrypto.SignMsg(n.key, resp)
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
}

// verifyLevel checks that the pages the edge shipped for level lvl
// (1-based) are exactly the pages the cloud's leaf table remembers: same
// count, same hashes, same order. An empty table expects no pages.
func (n *Node) verifyLevel(st *edgeState, lvl int, pages []wire.Page) error {
	if lvl < 1 || lvl > n.cfg.Levels {
		return fmt.Errorf("level %d out of range", lvl)
	}
	want := st.leaves[lvl-1]
	if len(pages) != len(want) {
		return fmt.Errorf("level %d: %d pages shipped, %d on record", lvl, len(pages), len(want))
	}
	for i := range pages {
		if !bytes.Equal(mlsm.PageLeaf(&pages[i]), want[i]) {
			return fmt.Errorf("level %d: page %d does not match recorded hash", lvl, i)
		}
	}
	return nil
}
