package cloud

import (
	"bytes"
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

type fixture struct {
	node *Node
	keys map[wire.NodeID]wcrypto.KeyPair
	reg  *wcrypto.Registry
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	cfg.ID = "cloud"
	return &fixture{node: New(cfg, keys["cloud"], reg), keys: keys, reg: reg}
}

func (f *fixture) certify(t *testing.T, bid uint64, digest []byte) []wire.Envelope {
	t.Helper()
	m := &wire.BlockCertify{Edge: "edge-1", BID: bid, Digest: digest}
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	return f.node.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: m})
}

func TestCertifyIssuesSignedProof(t *testing.T) {
	f := newFixture(t, Config{})
	d := wcrypto.Digest([]byte("block-0"))
	out := f.certify(t, 0, d)
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	proof, ok := out[0].Msg.(*wire.BlockProof)
	if !ok {
		t.Fatalf("output = %T", out[0].Msg)
	}
	if proof.BID != 0 || !bytes.Equal(proof.Digest, d) {
		t.Fatalf("proof = %+v", proof)
	}
	if err := wcrypto.VerifyMsg(f.reg, "cloud", proof, proof.CloudSig); err != nil {
		t.Fatalf("proof signature: %v", err)
	}
}

func TestCertifyDuplicateResendsProof(t *testing.T) {
	f := newFixture(t, Config{})
	d := wcrypto.Digest([]byte("block-0"))
	first := f.certify(t, 0, d)
	second := f.certify(t, 0, d)
	p1 := first[0].Msg.(*wire.BlockProof)
	p2 := second[0].Msg.(*wire.BlockProof)
	if !bytes.Equal(p1.CloudSig, p2.CloudSig) {
		t.Fatal("duplicate certify produced a different proof")
	}
	if f.node.Stats().Certifies != 1 {
		t.Fatalf("certify counted twice: %d", f.node.Stats().Certifies)
	}
}

func TestCertifyConflictConvicts(t *testing.T) {
	f := newFixture(t, Config{})
	f.certify(t, 0, wcrypto.Digest([]byte("honest")))
	out := f.certify(t, 0, wcrypto.Digest([]byte("equivocated")))
	v, ok := out[0].Msg.(*wire.Verdict)
	if !ok || !v.Guilty {
		t.Fatalf("conflict output = %+v", out[0].Msg)
	}
	if _, banned := f.node.Flagged("edge-1"); !banned {
		t.Fatal("equivocating edge not banned")
	}
	// A banned edge gets no further service.
	if out := f.certify(t, 1, wcrypto.Digest([]byte("later"))); out != nil {
		t.Fatal("banned edge still served")
	}
}

func TestCertifyRejectsBadSignature(t *testing.T) {
	f := newFixture(t, Config{})
	m := &wire.BlockCertify{Edge: "edge-1", BID: 0, Digest: wcrypto.Digest([]byte("x"))}
	m.EdgeSig = wcrypto.SignMsg(f.keys["c1"], m) // wrong signer
	out := f.node.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: m})
	if out != nil {
		t.Fatal("forged certify accepted")
	}
}

func TestCertifySpoofedFromIgnored(t *testing.T) {
	f := newFixture(t, Config{})
	m := &wire.BlockCertify{Edge: "edge-1", BID: 0, Digest: wcrypto.Digest([]byte("x"))}
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	if out := f.node.Receive(1, wire.Envelope{From: "c1", To: "cloud", Msg: m}); out != nil {
		t.Fatal("certify with mismatched From accepted")
	}
}

func TestFullDataCertifyBodyMismatchConvicts(t *testing.T) {
	f := newFixture(t, Config{})
	m := &wire.BlockCertify{
		Edge: "edge-1", BID: 0,
		Digest: wcrypto.Digest([]byte("claimed")),
		Body:   []byte("actual-different-content"),
	}
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	f.node.Receive(1, wire.Envelope{From: "edge-1", To: "cloud", Msg: m})
	if _, banned := f.node.Flagged("edge-1"); !banned {
		t.Fatal("digest/body mismatch not convicted")
	}
}

// buildBlock makes a signed-entry block and certifies it.
func (f *fixture) buildCertifiedBlock(t *testing.T, bid uint64, keys ...string) wire.Block {
	t.Helper()
	blk := wire.Block{Edge: "edge-1", ID: bid, StartPos: bid * 2}
	for i, k := range keys {
		e := wire.Entry{Client: "c1", Seq: bid*100 + uint64(i), Key: []byte(k), Value: []byte("v-" + k)}
		e.Sig = wcrypto.SignMsg(f.keys["c1"], &e)
		blk.Entries = append(blk.Entries, e)
	}
	f.certify(t, bid, wcrypto.BlockDigest(&blk))
	return blk
}

func (f *fixture) merge(t *testing.T, m *wire.MergeRequest) *wire.MergeResponse {
	t.Helper()
	m.Edge = "edge-1"
	m.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], m)
	out := f.node.Receive(5, wire.Envelope{From: "edge-1", To: "cloud", Msg: m})
	if len(out) != 1 {
		t.Fatalf("merge outputs = %d", len(out))
	}
	resp, ok := out[0].Msg.(*wire.MergeResponse)
	if !ok {
		t.Fatalf("merge output = %T", out[0].Msg)
	}
	return resp
}

func TestMergeL0ProducesSignedRoots(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2})
	b0 := f.buildCertifiedBlock(t, 0, "a", "b")
	b1 := f.buildCertifiedBlock(t, 1, "c", "a")

	resp := f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{b0, b1}})
	if !resp.OK {
		t.Fatalf("merge rejected: %s", resp.Reason)
	}
	if resp.ConsumedTo != 1 {
		t.Fatalf("ConsumedTo = %d", resp.ConsumedTo)
	}
	if err := mlsm.CheckLevel(resp.NewPages); err != nil {
		t.Fatalf("merged pages invalid: %v", err)
	}
	if err := wcrypto.VerifyMsg(f.reg, "cloud", &resp.Global, resp.Global.CloudSig); err != nil {
		t.Fatalf("global root signature: %v", err)
	}
	if !bytes.Equal(mlsm.GlobalRoot(resp.Roots), resp.Global.Root) {
		t.Fatal("roots do not fold to global")
	}
	// Latest version of "a" must have won (position-based versions).
	for _, kv := range mlsm.PagesKVs(resp.NewPages) {
		if string(kv.Key) == "a" && !bytes.Equal(kv.Value, []byte("v-a")) {
			t.Fatalf("unexpected value for a: %q", kv.Value)
		}
	}
}

func TestMergeRejectsUncertifiedBlock(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2})
	blk := wire.Block{Edge: "edge-1", ID: 0}
	resp := f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{blk}})
	if resp.OK {
		t.Fatal("uncertified block merged")
	}
}

func TestMergeConvictsTamperedBlock(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2})
	b0 := f.buildCertifiedBlock(t, 0, "a")
	tampered := b0
	tampered.Entries = append([]wire.Entry(nil), b0.Entries...)
	tampered.Entries[0].Value = []byte("rewritten-history")
	resp := f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{tampered}})
	if resp.OK {
		t.Fatal("tampered block merged")
	}
	if _, banned := f.node.Flagged("edge-1"); !banned {
		t.Fatal("history rewrite not convicted")
	}
}

func TestMergeRejectsOutOfOrderBlocks(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2})
	f.buildCertifiedBlock(t, 0, "a")
	b1 := f.buildCertifiedBlock(t, 1, "b")
	resp := f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{b1}})
	if resp.OK {
		t.Fatal("merge skipped block 0")
	}
}

func TestMergeRejectsForgedLevelPages(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2})
	b0 := f.buildCertifiedBlock(t, 0, "a", "b")
	resp := f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{b0}})
	if !resp.OK {
		t.Fatalf("setup merge rejected: %s", resp.Reason)
	}
	// Now forge level-1 pages for the next merge.
	forged := append([]wire.Page(nil), resp.NewPages...)
	forged[0].KVs = append([]wire.KV(nil), forged[0].KVs...)
	forged[0].KVs[0].Value = []byte("forged")
	b1 := f.buildCertifiedBlock(t, 1, "c")
	resp2 := f.merge(t, &wire.MergeRequest{ReqID: 2, FromLevel: 0, L0Blocks: []wire.Block{b1}, DstPages: forged})
	if resp2.OK {
		t.Fatal("forged destination pages accepted")
	}
}

func TestGossipTickCoversCertifiedBlocks(t *testing.T) {
	f := newFixture(t, Config{GossipEvery: 100, GossipTo: []wire.NodeID{"c1"}})
	f.certify(t, 0, wcrypto.Digest([]byte("b0")))
	out := f.node.Tick(200)
	if len(out) != 1 {
		t.Fatalf("gossip outputs = %d", len(out))
	}
	g := out[0].Msg.(*wire.Gossip)
	if g.Blocks != 1 || g.Edge != "edge-1" {
		t.Fatalf("gossip = %+v", g)
	}
	if err := wcrypto.VerifyMsg(f.reg, "cloud", g, g.CloudSig); err != nil {
		t.Fatalf("gossip signature: %v", err)
	}
	// Not again before the period elapses.
	if out := f.node.Tick(250); out != nil {
		t.Fatal("gossip emitted early")
	}
}

func TestDisputeVerdictAndProofAttachment(t *testing.T) {
	f := newFixture(t, Config{})
	blk := f.buildCertifiedBlock(t, 0, "a")

	// Honest evidence: not guilty, proof attached so the client can
	// finish Phase II.
	ev := &wire.AddResponse{BID: 0, Block: blk}
	ev.EdgeSig = wcrypto.SignMsg(f.keys["edge-1"], ev)
	d := core.BuildAddLieDispute(f.keys["c1"], "edge-1", ev)
	out := f.node.Receive(9, wire.Envelope{From: "c1", To: "cloud", Msg: d})
	if len(out) != 2 {
		t.Fatalf("dispute outputs = %d, want verdict+proof", len(out))
	}
	v := out[0].Msg.(*wire.Verdict)
	if v.Guilty {
		t.Fatalf("honest edge convicted: %+v", v)
	}
	if _, ok := out[1].Msg.(*wire.BlockProof); !ok {
		t.Fatalf("second output = %T, want BlockProof", out[1].Msg)
	}
}

func TestAddGossipTargetIdempotent(t *testing.T) {
	f := newFixture(t, Config{GossipEvery: 100})
	f.node.AddGossipTarget("c1")
	f.node.AddGossipTarget("c1")
	f.certify(t, 0, wcrypto.Digest([]byte("b")))
	out := f.node.Tick(200)
	if len(out) != 1 {
		t.Fatalf("duplicate gossip target: %d messages", len(out))
	}
}

// TestCertifyTwiceSignsOnce pins the proof-cache contract: the cloud
// spends exactly one Ed25519 signature per (edge, bid) proof. A duplicate
// certify and a dispute attachment both reuse the cached signed proof
// byte-for-byte instead of re-signing.
func TestCertifyTwiceSignsOnce(t *testing.T) {
	f := newFixture(t, Config{})
	d := wcrypto.Digest([]byte("block-0"))
	out1 := f.certify(t, 0, d)
	out2 := f.certify(t, 0, d)
	if got := f.node.Stats().ProofSigns; got != 1 {
		t.Fatalf("ProofSigns = %d, want 1 (duplicate certify must reuse the cached proof)", got)
	}
	p1 := out1[0].Msg.(*wire.BlockProof)
	p2 := out2[0].Msg.(*wire.BlockProof)
	if !bytes.Equal(p1.CloudSig, p2.CloudSig) {
		t.Fatal("duplicate certify produced a different signature")
	}
	if f.node.Stats().Certifies != 1 {
		t.Fatalf("Certifies = %d, want 1", f.node.Stats().Certifies)
	}
}

// TestMergeConvictsCachePoisonedBlock is the cloud leg of digest-signing
// adversarial parity: an edge ships a block whose frozen cache still holds
// the certified (honest) digest while its fields were tampered. The cloud
// recomputes the digest from the fields, so the poisoned cache proves
// nothing and the edge is convicted.
func TestMergeConvictsCachePoisonedBlock(t *testing.T) {
	f := newFixture(t, Config{Levels: 2, PageCap: 2})
	b0 := f.buildCertifiedBlock(t, 0, "a")
	b0.Freeze() // cache now matches the certified digest
	poisoned := b0
	poisoned.Entries = append([]wire.Entry(nil), b0.Entries...)
	poisoned.Entries[0].Value = []byte("rewritten-history") // cache NOT invalidated
	if !bytes.Equal(wcrypto.BlockDigest(&poisoned), wcrypto.BlockDigest(&b0)) {
		t.Fatal("test setup: cache should still serve the honest digest")
	}
	resp := f.merge(t, &wire.MergeRequest{ReqID: 1, FromLevel: 0, L0Blocks: []wire.Block{poisoned}})
	if resp.OK {
		t.Fatal("cache-poisoned block merged")
	}
	if _, banned := f.node.Flagged("edge-1"); !banned {
		t.Fatal("cache poisoning not convicted")
	}
}
