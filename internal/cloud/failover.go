package cloud

import (
	"fmt"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Cloud-arbitrated failover (the replica-group extension): each shard's
// chain may be served by a small group — one leader, N followers — whose
// liveness and replication progress the cloud tracks through signed
// heartbeats. When the leader's lease expires, certification stalls, or
// the leader is convicted, the cloud signs a LeadershipTransfer promoting
// the follower with the longest certified log prefix and re-signs the
// shard map under a bumped epoch. The cloud arbitrates but never serves:
// the promoted node is as untrusted as its predecessor, policed by the
// same lazy certification.

// memberState is the cloud's liveness view of one replica-group member.
type memberState struct {
	lastHB    int64
	blocks    uint64 // log frontier the member last reported
	certified uint64 // contiguous certified prefix the member last reported
	lastJoin  int64  // last GroupJoin sent for this member (re-send rate limit)
}

// chainState is the cloud's leadership view of one replicated chain.
type chainState struct {
	leader    wire.NodeID
	followers []wire.NodeID
	epoch     uint64
	members   map[wire.NodeID]*memberState
	shardIdx  int   // index in the installed shard map; -1 = unmapped
	leaseBase int64 // fallback lease start while a node has never heartbeated
	staleNow  int64 // first observation of an uncertified replicated backlog; 0 = none
	dead      bool  // no promotable follower remained
}

// RegisterGroup declares chain's replica group: its initial leader and
// followers. Must run on the node's transport goroutine (or before the
// transport starts). Ungrouped chains need no registration.
func (n *Node) RegisterGroup(chain, leader wire.NodeID, followers []wire.NodeID) {
	st := &chainState{
		leader:    leader,
		followers: append([]wire.NodeID(nil), followers...),
		members:   make(map[wire.NodeID]*memberState),
		shardIdx:  -1,
	}
	n.chains[chain] = st
	n.nodeChain[leader] = chain
	for _, f := range followers {
		n.nodeChain[f] = chain
	}
	if n.shardMap != nil {
		for i, c := range n.mapChains {
			if c == chain {
				st.shardIdx = i
			}
		}
	}
}

// InstallShardMap hands the cloud the signed routing map so it can
// re-sign it under a bumped epoch on every leadership transfer. The map's
// Edges at install time are the per-shard chain identities. Must run on
// the node's transport goroutine (or before the transport starts).
func (n *Node) InstallShardMap(sm *wire.ShardMap) {
	cp := *sm
	cp.Edges = append([]wire.NodeID(nil), sm.Edges...)
	cp.Followers = make([][]wire.NodeID, len(cp.Edges))
	for i := range sm.Followers {
		if i < len(cp.Followers) {
			cp.Followers[i] = append([]wire.NodeID(nil), sm.Followers[i]...)
		}
	}
	n.shardMap = &cp
	n.mapChains = append([]wire.NodeID(nil), sm.Edges...)
	for chain, st := range n.chains {
		for i, c := range n.mapChains {
			if c == chain {
				st.shardIdx = i
			}
		}
	}
}

// chainOf maps a node to the chain it serves; ungrouped nodes are their
// own chain.
func (n *Node) chainOf(node wire.NodeID) wire.NodeID {
	if c, ok := n.nodeChain[node]; ok {
		return c
	}
	return node
}

// leaderOf returns the chain's current leader; an ungrouped chain leads
// itself.
func (n *Node) leaderOf(chain wire.NodeID) wire.NodeID {
	if st, ok := n.chains[chain]; ok {
		return st.leader
	}
	return chain
}

// ChainLeader exposes the current leader of a chain (tests, façade).
func (n *Node) ChainLeader(chain wire.NodeID) wire.NodeID { return n.leaderOf(chain) }

// ChainEpoch exposes the chain's current leadership epoch.
func (n *Node) ChainEpoch(chain wire.NodeID) uint64 {
	if st, ok := n.chains[chain]; ok {
		return st.epoch
	}
	return 0
}

// handleHeartbeat records a replica's liveness and replication progress.
// The certification-stall detector compares the followers' mirrored
// frontier against the chain's certified block count: a backlog that
// persists past CertTimeout means the leader replicates but does not
// certify — crashed mid-protocol or starving Phase II on purpose.
func (n *Node) handleHeartbeat(now int64, from wire.NodeID, m *wire.ReplicaHeartbeat, verified bool) []wire.Envelope {
	if m.Node != from || n.nodeChain[from] != m.Chain {
		return nil
	}
	st, ok := n.chains[m.Chain]
	if !ok {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, from, m, m.Sig); err != nil {
			n.logf("dropping heartbeat with bad signature", "node", from, "err", err)
			return nil
		}
	}
	n.m.heartbeats.Inc()
	mem := st.members[from]
	if mem == nil {
		mem = &memberState{}
		st.members[from] = mem
	}
	mem.lastHB = now
	mem.blocks = m.Blocks
	mem.certified = m.Certified
	if from != st.leader {
		if m.Blocks > n.certs.Blocks(m.Chain) {
			if st.staleNow == 0 {
				st.staleNow = now
			}
		} else {
			st.staleNow = 0
		}
	}
	return n.maybeRejoin(now, from, m.Chain, st, mem, m)
}

// maybeRejoin re-admits a heartbeating ex-member (a restarted node, or a
// demoted ex-leader that was dropped from the follower set at transfer)
// and nudges restarted in-group followers that lost their in-memory view.
// The cloud signs a GroupJoin naming the current leader and epoch and
// sends it to BOTH sides: the node learns whom to mirror, the leader adds
// it back to the replication fan-out. While the member's reported frontier
// trails the chain's certified prefix the join is re-sent (rate-limited by
// the lease), healing lost admissions under chaos.
func (n *Node) maybeRejoin(now int64, from wire.NodeID, chain wire.NodeID, st *chainState, mem *memberState, m *wire.ReplicaHeartbeat) []wire.Envelope {
	if st.dead || from == st.leader {
		return nil
	}
	if _, banned := n.punish.Banned(from); banned {
		return nil
	}
	inGroup := false
	for _, f := range st.followers {
		if f == from {
			inGroup = true
			break
		}
	}
	var out []wire.Envelope
	if !inGroup {
		st.followers = append(st.followers, from)
		n.m.rejoins.Inc()
		n.logf("re-admitting ex-member as follower", "chain", chain, "node", from, "epoch", st.epoch)
		out = append(out, n.resignShardMap(st)...)
	} else if m.Blocks >= n.certs.Blocks(chain) || now-mem.lastJoin < n.cfg.LeaseTimeout {
		// In the group and current (or recently nudged): nothing to heal.
		return nil
	}
	mem.lastJoin = now
	join := &wire.GroupJoin{Chain: chain, Node: from, Leader: st.leader, Epoch: st.epoch, Ts: now}
	join.CloudSig = wcrypto.SignMsg(n.key, join)
	out = append(out,
		wire.Envelope{From: n.cfg.ID, To: from, Msg: join},
		wire.Envelope{From: n.cfg.ID, To: st.leader, Msg: join})
	return out
}

// handleFrontier answers a single-chain frontier query with the same
// signed Gossip statement periodic gossip emits. A rejoining node asks it
// to learn how far certified history extends before (and while) mirroring
// the chain back through certified catch-up.
func (n *Node) handleFrontier(now int64, from wire.NodeID, m *wire.FrontierRequest) []wire.Envelope {
	if _, banned := n.punish.Banned(n.leaderOf(m.Chain)); banned {
		return nil
	}
	g := &wire.Gossip{
		Edge:    m.Chain,
		Ts:      now,
		LogSize: n.certs.Entries(m.Chain),
		Blocks:  n.certs.Blocks(m.Chain),
	}
	g.CloudSig = wcrypto.SignMsg(n.key, g)
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: g}}
}

// tickFailover runs the per-chain failure detectors: conviction of the
// current leader, lease expiry, and certification stall. At most one
// transfer per chain per tick.
func (n *Node) tickFailover(now int64) []wire.Envelope {
	var out []wire.Envelope
	for chain, st := range n.chains {
		if st.dead {
			continue
		}
		if st.leaseBase == 0 {
			st.leaseBase = now // grace period starts at first observation
		}
		if _, banned := n.punish.Banned(st.leader); banned {
			out = append(out, n.transfer(now, chain, st, fmt.Sprintf("leader %s convicted", st.leader))...)
			continue
		}
		last := st.leaseBase
		if mem := st.members[st.leader]; mem != nil && mem.lastHB > last {
			last = mem.lastHB
		}
		if now-last > n.cfg.LeaseTimeout {
			out = append(out, n.transfer(now, chain, st, fmt.Sprintf("leader %s lease expired", st.leader))...)
			continue
		}
		if st.staleNow > 0 && now-st.staleNow > n.cfg.CertTimeout {
			out = append(out, n.transfer(now, chain, st, fmt.Sprintf("certification stalled under %s", st.leader))...)
		}
	}
	return out
}

// transfer signs and broadcasts a leadership transfer for chain: the
// promotable follower with the longest certified prefix (ties broken by
// the longer mirrored log) becomes leader under a bumped epoch, and the
// shard map is re-signed to match. With no candidate left the chain is
// declared dead — clients keep their verdicts and the shard stays frozen,
// which is the correct failure mode for a fully compromised group.
func (n *Node) transfer(now int64, chain wire.NodeID, st *chainState, reason string) []wire.Envelope {
	var cand wire.NodeID
	var best *memberState
	for _, f := range st.followers {
		if _, banned := n.punish.Banned(f); banned {
			continue
		}
		mem := st.members[f]
		if mem == nil {
			mem = &memberState{}
		}
		if cand == "" || mem.certified > best.certified ||
			(mem.certified == best.certified && mem.blocks > best.blocks) {
			cand, best = f, mem
		}
	}
	if cand == "" {
		st.dead = true
		n.logf("chain has no promotable follower; marking dead", "chain", chain, "reason", reason)
		return nil
	}
	remaining := make([]wire.NodeID, 0, len(st.followers))
	for _, f := range st.followers {
		if f == cand {
			continue
		}
		if _, banned := n.punish.Banned(f); banned {
			continue
		}
		remaining = append(remaining, f)
	}
	st.epoch++
	prev := st.leader
	st.leader = cand
	st.followers = remaining
	st.leaseBase = now
	st.staleNow = 0
	n.m.transfers.Inc()
	n.logf("leadership transfer", "chain", chain, "epoch", st.epoch, "prev", prev, "new", cand, "reason", reason)

	t := &wire.LeadershipTransfer{
		Chain:     chain,
		Epoch:     st.epoch,
		Prev:      prev,
		NewLeader: cand,
		Followers: append([]wire.NodeID(nil), remaining...),
		Reason:    reason,
		Ts:        now,
	}
	t.CloudSig = wcrypto.SignMsg(n.key, t)

	out := []wire.Envelope{{From: n.cfg.ID, To: cand, Msg: t}}
	for _, f := range remaining {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: f, Msg: t})
	}
	// The demoted leader (if merely slow, not dead) learns of its demotion
	// too, so it stops serving under a stale epoch.
	if _, banned := n.punish.Banned(prev); !banned {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: prev, Msg: t})
	}
	for _, to := range n.cfg.GossipTo {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: to, Msg: t})
	}
	out = append(out, n.resignShardMap(st)...)
	return out
}

// resignShardMap updates the installed routing map for a transferred
// chain — the shard's slot now names the new leader and the surviving
// followers — bumps the map epoch, re-signs, and broadcasts it to the
// gossip targets.
func (n *Node) resignShardMap(st *chainState) []wire.Envelope {
	if n.shardMap == nil || st.shardIdx < 0 {
		return nil
	}
	n.shardMap.Edges[st.shardIdx] = st.leader
	n.shardMap.Followers[st.shardIdx] = append([]wire.NodeID(nil), st.followers...)
	n.shardMap.Epoch++
	n.shardMap.CloudSig = wcrypto.SignMsg(n.key, n.shardMap)
	var out []wire.Envelope
	for _, to := range n.cfg.GossipTo {
		cp := *n.shardMap
		out = append(out, wire.Envelope{From: n.cfg.ID, To: to, Msg: &cp})
	}
	return out
}
