package cloud

import (
	"wedgechain/internal/obs"
)

// metrics is the cloud node's registry-backed instrumentation. As on
// the edge, counters and histograms are always live (counters are the
// atomic storage behind Stats(), making mid-run polling race-free) and
// fall back to a private registry when Config.Metrics is nil — the
// certification-latency histogram included, so both the pre-verified
// fast path and the inline-verify path observe unconditionally.
type metrics struct {
	certifies         *obs.Counter
	proofSigns        *obs.Counter
	proofCacheHits    *obs.Counter
	conflicts         *obs.Counter
	merges            *obs.Counter
	mergeRejects      *obs.Counter
	disputesGuilty    *obs.Counter
	disputesNotGuilty *obs.Counter
	guiltyEdges       *obs.Counter
	gossipsSent       *obs.Counter
	bytesFromEdge     *obs.Counter
	heartbeats        *obs.Counter
	transfers         *obs.Counter
	rejoins           *obs.Counter
	verdictCacheHits  *obs.Counter
	judgeDecodes      *obs.Counter
	auditRounds       *obs.Counter
	auditMismatches   *obs.Counter

	certify      *obs.Histogram // wall-clock handleCertify latency
	batchEntries *obs.Histogram // triples per signed certificate batch
}

// batchBuckets bounds the wedge_cert_batch_entries histogram: batch
// sizes are small powers of two (CertBatch caps the run).
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

func newMetrics(reg *obs.Registry, node string) *metrics {
	m := &metrics{}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := func(name, help string) *obs.Counter {
		return reg.CounterVec(name, help, "node").With(node)
	}
	m.certifies = c("wedge_certifies_total", "block digests certified (first accept)")
	m.proofSigns = c("wedge_cloud_proof_signs_total", "signatures spent on block proofs (== certifies when batching is off)")
	m.proofCacheHits = c("wedge_cloud_proof_cache_hits_total", "duplicate certifies answered from the signed-proof cache")
	m.conflicts = c("wedge_cloud_conflicts_total", "conflicting digest certifies (equivocation convictions)")
	m.merges = c("wedge_cloud_merges_total", "LSMerkle merges performed")
	m.mergeRejects = c("wedge_cloud_merge_rejects_total", "merge requests rejected")
	// One series per adjudication outcome; both are touched at
	// registration so a scrape shows the pair at 0 before any dispute.
	dv := reg.CounterVec("wedge_disputes_total", "dispute adjudications by verdict", "node", "verdict")
	m.disputesGuilty = dv.With(node, "guilty")
	m.disputesNotGuilty = dv.With(node, "not_guilty")
	m.guiltyEdges = c("wedge_cloud_guilty_edges_total", "distinct edges convicted")
	m.gossipsSent = c("wedge_cloud_gossips_total", "gossip messages sent")
	m.bytesFromEdge = c("wedge_cloud_edge_bytes_total", "bytes received on the edge-cloud coordination channel")
	m.heartbeats = c("wedge_cloud_heartbeats_total", "replica heartbeats processed")
	m.transfers = c("wedge_cloud_transfers_total", "signed leadership transfers issued")
	m.rejoins = c("wedge_cloud_rejoins_total", "ex-members re-admitted to their replica group")
	m.verdictCacheHits = c("wedge_verdict_cache_hits_total", "disputes answered from the verdict cache (no Judge decode)")
	m.judgeDecodes = c("wedge_cloud_judge_decodes_total", "full Judge adjudications (evidence decoded and re-verified)")
	m.auditRounds = c("wedge_audit_rounds_total", "anti-entropy audit sweeps completed")
	m.auditMismatches = c("wedge_audit_mismatches_total", "audited checkpoints whose recomputed root mismatched")
	m.certify = reg.HistogramVec("wedge_certify_seconds",
		"wall-clock certification latency at the cloud", obs.LatencyBuckets, "node").With(node)
	m.batchEntries = reg.HistogramVec("wedge_cert_batch_entries",
		"certified triples covered per signed certificate batch", batchBuckets, "node").With(node)
	return m
}
