package cloud

import (
	"sync"
	"sync/atomic"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// This file holds the cloud's certification scale-out machinery:
//
//   - certPipeline: a worker pool that runs the stateless half of
//     certification (signature checks, full-data decode + digest
//     recompute) off the node goroutine, per-chain FIFO, so independent
//     chains precheck concurrently and one chain's full-data decode
//     never stalls another. The stateful half — certs.Certify in bid
//     order, conviction, proof issue — stays on the single-threaded
//     node, which drains completed jobs in Receive and Tick.
//
//   - certRun: the outbound batching state. Accepted certifications
//     accumulate into one contiguous per-chain run; a flush signs a
//     single wire.BlockCertBatch covering the whole run (the amortized
//     block-ack trick applied to proofs).
//
//   - verdictCache: adjudications keyed by evidence digest, so a
//     dispute flood costs one Judge decode per distinct accusation.

// certJob is one certification request travelling through the pipeline.
// Exactly one of single/batch is set. Workers fill sigOK/bodyOK and
// flip done; the node goroutine applies jobs in submission order per
// chain once their head-of-line is done.
type certJob struct {
	from     wire.NodeID
	single   *wire.BlockCertify
	batch    *wire.BlockCertifyBatch
	verified bool

	sigOK  bool
	bodyOK bool
	done   atomic.Bool
}

// chain returns the chain identity the job certifies under.
func (j *certJob) chain() wire.NodeID {
	if j.single != nil {
		return j.single.Edge
	}
	return j.batch.Edge
}

// precheck runs the stateless verification work: the sender's signature
// (unless a trusted VerifyPool already checked it) and, for full-data
// certifies, the body-decodes-to-claimed-digest check. No node state is
// touched, so workers run it concurrently with the node goroutine.
func (j *certJob) precheck(reg *wcrypto.Registry) {
	if j.single != nil {
		j.sigOK = j.verified || wcrypto.VerifyMsg(reg, j.from, j.single, j.single.EdgeSig) == nil
		j.bodyOK = len(j.single.Body) == 0 || fullDataBodyMatches(j.single)
	} else {
		j.sigOK = j.verified || wcrypto.VerifyMsg(reg, j.from, j.batch, j.batch.EdgeSig) == nil
		j.bodyOK = true
	}
	j.done.Store(true)
}

// certPipeline fans certification prechecks out to workers while
// preserving per-chain submission order for the apply stage. Lanes are
// keyed by chain, so a slow job (a large full-data decode) only delays
// its own chain's applies; other chains drain past it.
type certPipeline struct {
	reg *wcrypto.Registry

	mu      sync.Mutex
	cond    *sync.Cond
	work    []*certJob // shared worker queue (completed prefix trimmed)
	stopped bool
	wg      sync.WaitGroup

	// lanes preserve per-chain FIFO for the apply stage. Only the node
	// goroutine appends (enqueue) and trims (drain), so lane access
	// needs no lock beyond the job's done flag.
	lanes map[wire.NodeID][]*certJob
}

func newCertPipeline(reg *wcrypto.Registry, workers int) *certPipeline {
	p := &certPipeline{reg: reg, lanes: make(map[wire.NodeID][]*certJob)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *certPipeline) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for len(p.work) == 0 && !p.stopped {
			p.cond.Wait()
		}
		if len(p.work) == 0 {
			p.mu.Unlock()
			return
		}
		j := p.work[0]
		p.work = p.work[1:]
		p.mu.Unlock()
		j.precheck(p.reg)
		p.mu.Lock()
	}
}

// enqueue submits a job for precheck. Node goroutine only.
func (p *certPipeline) enqueue(j *certJob) {
	chain := j.chain()
	p.lanes[chain] = append(p.lanes[chain], j)
	p.mu.Lock()
	p.work = append(p.work, j)
	p.mu.Unlock()
	p.cond.Signal()
}

// ready pops every lane's completed prefix, in lane order. Node
// goroutine only. Jobs whose precheck is still running stay queued —
// and block the jobs behind them in the same lane, preserving the
// per-chain apply order the cert table's conflict detection assumes.
func (p *certPipeline) ready() []*certJob {
	var out []*certJob
	for chain, lane := range p.lanes {
		i := 0
		for i < len(lane) && lane[i].done.Load() {
			out = append(out, lane[i])
			i++
		}
		if i == 0 {
			continue
		}
		if i == len(lane) {
			delete(p.lanes, chain)
		} else {
			p.lanes[chain] = lane[i:]
		}
	}
	return out
}

// close stops the workers after the queued prechecks finish. Jobs still
// in lanes are abandoned — close is shutdown, not drain.
func (p *certPipeline) close() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// certRun is one chain's pending outbound certificate batch: the
// contiguous run [start, start+len(digests)) of accepted certifications
// not yet covered by a signed batch.
type certRun struct {
	from    wire.NodeID // certifying sender (fanout target)
	start   uint64
	digests [][]byte
}

// appendCert adds an accepted certification to the chain's pending run,
// flushing first when the run would lose contiguity or change its
// certifying sender. Returns any envelopes a forced flush produced.
func (n *Node) appendCert(chain, from wire.NodeID, bid uint64, digest []byte) []wire.Envelope {
	var out []wire.Envelope
	run := n.pendingRuns[chain]
	if run != nil && (run.from != from || bid != run.start+uint64(len(run.digests))) {
		out = n.flushRun(chain)
		run = nil
	}
	if run == nil {
		run = &certRun{from: from, start: bid}
		n.pendingRuns[chain] = run
	}
	run.digests = append(run.digests, digest)
	if len(run.digests) >= n.cfg.CertBatch {
		out = append(out, n.flushRun(chain)...)
	}
	return out
}

// flushRun signs and fans out the chain's pending run as one
// BlockCertBatch. One signature covers every triple in the run.
func (n *Node) flushRun(chain wire.NodeID) []wire.Envelope {
	run := n.pendingRuns[chain]
	if run == nil || len(run.digests) == 0 {
		return nil
	}
	delete(n.pendingRuns, chain)
	b := &wire.BlockCertBatch{Edge: chain, Start: run.start, Digests: run.digests}
	b.CloudSig = wcrypto.SignMsg(n.key, b)
	n.m.batchEntries.Observe(float64(len(run.digests)))
	out := []wire.Envelope{{From: n.cfg.ID, To: run.from, Msg: b}}
	if st, ok := n.chains[chain]; ok {
		if st.leader != run.from {
			out = append(out, wire.Envelope{From: n.cfg.ID, To: st.leader, Msg: b})
		}
		for _, f := range st.followers {
			if f != run.from {
				out = append(out, wire.Envelope{From: n.cfg.ID, To: f, Msg: b})
			}
		}
	}
	return out
}

// flushRuns flushes every chain's pending run (Tick pacing: a partial
// run waits at most one tick).
func (n *Node) flushRuns() []wire.Envelope {
	var out []wire.Envelope
	for chain := range n.pendingRuns {
		out = append(out, n.flushRun(chain)...)
	}
	return out
}

// cachedVerdict is one adjudication retained for replay: the signed
// verdict exactly as first issued.
type cachedVerdict struct {
	verdict wire.Verdict
}

// verdictCache memoizes adjudications by evidence digest (the dispute's
// signable body: kind, accused, bid, evidence — not the claimant's
// signature, so the same lie re-filed by any client replays the same
// verdict). Entries are evicted FIFO at cap; the cache is consulted
// only after the claimant's signature verifies, so a forged accusation
// can neither poison it nor read it.
type verdictCache struct {
	cap     int
	entries map[string]*cachedVerdict
	order   []string
}

func newVerdictCache(cap int) *verdictCache {
	return &verdictCache{cap: cap, entries: make(map[string]*cachedVerdict)}
}

func verdictKey(d *wire.Dispute) string {
	return string(wcrypto.Digest(d.SignableBytes()))
}

func (c *verdictCache) get(key string) (*cachedVerdict, bool) {
	v, ok := c.entries[key]
	return v, ok
}

func (c *verdictCache) put(key string, v *cachedVerdict) {
	if _, ok := c.entries[key]; ok {
		return
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = v
	c.order = append(c.order, key)
}
