// Package core implements WedgeChain's primary contribution: lazy
// (asynchronous) certification with data-free coordination (Sections III
// and IV of the paper).
//
// The protocol distinguishes two commitments. Phase I commit happens at the
// untrusted edge alone: the edge's signed response is a promise the client
// can later use as evidence. Phase II commit happens when the trusted cloud
// certifies the block's digest. The cloud accepts exactly one digest per
// (edge, block id) — first writer wins — so two Phase II committed views of
// the same block can never disagree (agreement), and any Phase I promise
// that contradicts the certified digest convicts the edge (detect and
// punish, rather than prevent).
//
// This package holds the pieces shared by the edge, cloud and client state
// machines: the commit-phase vocabulary, the cloud's certification table
// with equivocation detection, dispute evidence construction and
// adjudication, and the punishment registry.
package core

import (
	"bytes"
	"fmt"

	"wedgechain/internal/mlsm"
	"wedgechain/internal/scan"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Phase is the commitment status of an operation.
type Phase uint8

// Commitment phases.
const (
	PhaseNone Phase = iota
	// PhaseI: committed at the untrusted edge; the client holds signed
	// evidence that convicts the edge if it lied (Definition 1).
	PhaseI
	// PhaseII: certified by the trusted cloud; no two clients can
	// disagree on the content (Definition 2).
	PhaseII
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseI:
		return "phase-I"
	case PhaseII:
		return "phase-II"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Handler is a protocol node: a deterministic, single-threaded state
// machine driven by message delivery and time ticks. The discrete-event
// simulator, the in-process transport and the TCP transport all drive the
// same Handler implementations, so measured behaviour and deployed
// behaviour come from identical protocol code.
type Handler interface {
	// ID returns the node's identity.
	ID() wire.NodeID
	// Receive processes one message at virtual time now (nanoseconds)
	// and returns the messages to send.
	Receive(now int64, env wire.Envelope) []wire.Envelope
	// Tick fires periodically, driving timeouts and background work.
	Tick(now int64) []wire.Envelope
}

// CertTable is the cloud's record of certified digests: at most one digest
// per (edge, block id). It detects certify-time equivocation — an edge
// submitting a second, different digest for an already-certified block.
type CertTable struct {
	digests map[wire.NodeID]map[uint64][]byte
	entries map[wire.NodeID]uint64 // certified entry count per edge
	blocks  map[wire.NodeID]uint64 // certified block count per edge
}

// NewCertTable returns an empty certification table.
func NewCertTable() *CertTable {
	return &CertTable{
		digests: make(map[wire.NodeID]map[uint64][]byte),
		entries: make(map[wire.NodeID]uint64),
		blocks:  make(map[wire.NodeID]uint64),
	}
}

// CertResult is the outcome of a certification attempt.
type CertResult uint8

// Certification outcomes.
const (
	// CertAccepted: first digest for this block id; certified.
	CertAccepted CertResult = iota
	// CertDuplicate: identical digest already certified; idempotent.
	CertDuplicate
	// CertConflict: a different digest is already certified — the edge
	// equivocated and must be punished.
	CertConflict
)

// Certify records digest for (edge, bid), applying first-writer-wins.
// entryCount is the number of entries in the block (for gossip log sizes).
func (t *CertTable) Certify(edge wire.NodeID, bid uint64, digest []byte, entryCount uint64) CertResult {
	m := t.digests[edge]
	if m == nil {
		m = make(map[uint64][]byte)
		t.digests[edge] = m
	}
	if prev, ok := m[bid]; ok {
		if bytes.Equal(prev, digest) {
			return CertDuplicate
		}
		return CertConflict
	}
	m[bid] = append([]byte(nil), digest...)
	t.entries[edge] += entryCount
	t.blocks[edge]++
	return CertAccepted
}

// Lookup returns the certified digest for (edge, bid).
func (t *CertTable) Lookup(edge wire.NodeID, bid uint64) ([]byte, bool) {
	d, ok := t.digests[edge][bid]
	return d, ok
}

// Entries returns the certified entry count for edge (gossiped LogSize).
func (t *CertTable) Entries(edge wire.NodeID) uint64 { return t.entries[edge] }

// AddEntries credits entry counts learned after certification.
// Certification is data-free — the cloud cannot see entry counts in a
// digest — so it learns them when blocks later ship for compaction.
func (t *CertTable) AddEntries(edge wire.NodeID, n uint64) { t.entries[edge] += n }

// Blocks returns the certified block count for edge.
func (t *CertTable) Blocks(edge wire.NodeID) uint64 { return t.blocks[edge] }

// Punishments records guilty verdicts. Punished edges are banned: the
// cloud stops serving them and clients stop trusting them. Per the paper's
// security model (Section II-D), identities are real-world bound, so a
// banned edge cannot re-enter under a new name.
type Punishments struct {
	banned map[wire.NodeID]string // edge -> reason
	log    []wire.Verdict
}

// NewPunishments returns an empty punishment registry.
func NewPunishments() *Punishments {
	return &Punishments{banned: make(map[wire.NodeID]string)}
}

// Punish records a guilty verdict for edge.
func (p *Punishments) Punish(v wire.Verdict) {
	if !v.Guilty {
		return
	}
	if _, ok := p.banned[v.Edge]; !ok {
		p.banned[v.Edge] = v.Reason
	}
	p.log = append(p.log, v)
}

// Banned reports whether edge has been punished, with the first reason.
func (p *Punishments) Banned(edge wire.NodeID) (string, bool) {
	r, ok := p.banned[edge]
	return r, ok
}

// Verdicts returns all recorded guilty verdicts in order.
func (p *Punishments) Verdicts() []wire.Verdict { return p.log }

// VerdictsFor returns the recorded guilty verdicts against one edge, in
// order. In a sharded deployment this scopes a conviction to the shard it
// concerns without mixing in sibling shards' histories.
func (p *Punishments) VerdictsFor(edge wire.NodeID) []wire.Verdict {
	var out []wire.Verdict
	for _, v := range p.log {
		if v.Edge == edge {
			out = append(out, v)
		}
	}
	return out
}

// BuildAddLieDispute packages a signed AddResponse whose block never
// matched the certified digest as dispute evidence.
func BuildAddLieDispute(key wcrypto.KeyPair, edge wire.NodeID, resp *wire.AddResponse) *wire.Dispute {
	d := &wire.Dispute{
		Kind:     wire.DisputeAddLie,
		Edge:     edge,
		BID:      resp.BID,
		Evidence: wire.EncodeMessage(resp),
	}
	d.ClientSig = wcrypto.SignMsg(key, d)
	return d
}

// BuildReadLieDispute packages a signed ReadResponse whose block content
// contradicts the certified digest.
func BuildReadLieDispute(key wcrypto.KeyPair, edge wire.NodeID, resp *wire.ReadResponse) *wire.Dispute {
	d := &wire.Dispute{
		Kind:     wire.DisputeReadLie,
		Edge:     edge,
		BID:      resp.BID,
		Evidence: wire.EncodeMessage(resp),
	}
	d.ClientSig = wcrypto.SignMsg(key, d)
	return d
}

// BuildGetLieDispute packages a signed GetResponse whose L0 block bid
// contradicts the certified digest.
func BuildGetLieDispute(key wcrypto.KeyPair, edge wire.NodeID, bid uint64, resp *wire.GetResponse) *wire.Dispute {
	d := &wire.Dispute{
		Kind:     wire.DisputeGetLie,
		Edge:     edge,
		BID:      bid,
		Evidence: wire.EncodeMessage(resp),
	}
	d.ClientSig = wcrypto.SignMsg(key, d)
	return d
}

// BuildScanLieDispute packages a signed ScanResponse as dispute evidence.
// Two lies travel under this kind: a structurally defective completeness
// proof (the cloud re-verifies the whole proof; any defect in a signed
// proof is the edge's own), and an L0 block bid whose content contradicts
// the certified digest.
func BuildScanLieDispute(key wcrypto.KeyPair, edge wire.NodeID, bid uint64, resp *wire.ScanResponse) *wire.Dispute {
	d := &wire.Dispute{
		Kind:     wire.DisputeScanLie,
		Edge:     edge,
		BID:      bid,
		Evidence: wire.EncodeMessage(resp),
	}
	d.ClientSig = wcrypto.SignMsg(key, d)
	return d
}

// BuildOmissionDispute packages a signed not-available denial together
// with cloud gossip proving the denied block exists.
func BuildOmissionDispute(key wcrypto.KeyPair, edge wire.NodeID, denial *wire.ReadResponse, gossip *wire.Gossip) *wire.Dispute {
	d := &wire.Dispute{
		Kind:      wire.DisputeOmission,
		Edge:      edge,
		BID:       denial.BID,
		Evidence:  wire.EncodeMessage(denial),
		Evidence2: wire.EncodeMessage(gossip),
	}
	d.ClientSig = wcrypto.SignMsg(key, d)
	return d
}

// Judge adjudicates a dispute against the certification table on behalf of
// the cloud node self — inner cloud signatures inside evidence
// (certificates, signed roots) are verified against the adjudicator's own
// identity, never a guessed one. It verifies the client's signature on the
// accusation and the edge's signature on the evidence — the evidence is
// self-authenticating, so a client cannot frame an edge, and an edge cannot
// repudiate its promises.
//
// Conviction rules:
//   - add-lie / read-lie: guilty when the evidence block's digest differs
//     from the certified digest, or when no digest was ever certified for
//     that block id (the edge promised a block it never reported; disputes
//     arrive only after the client's generous proof timeout).
//   - omission: guilty when the edge's signed denial is timestamped at or
//     after cloud gossip covering the denied block.
func Judge(reg *wcrypto.Registry, certs *CertTable, self, from wire.NodeID, d *wire.Dispute) wire.Verdict {
	return JudgeForChain(reg, certs, self, from, d, d.Edge)
}

// JudgeForChain adjudicates like Judge, but resolves certified state under
// the given chain identity while the accused node d.Edge remains the
// evidence signer. In a replica-group deployment blocks, certificates,
// roots and gossip are keyed by the chain (the shard's stable identity),
// yet the promise under judgment was signed by whichever node served it —
// leader today, a promoted follower tomorrow. Legacy single-node shards
// pass chain == d.Edge and behave exactly as before.
func JudgeForChain(reg *wcrypto.Registry, certs *CertTable, self, from wire.NodeID, d *wire.Dispute, chain wire.NodeID) wire.Verdict {
	verdict := wire.Verdict{Edge: d.Edge, BID: d.BID, Kind: d.Kind}
	if err := wcrypto.VerifyMsg(reg, from, d, d.ClientSig); err != nil {
		verdict.Reason = "dispute rejected: bad client signature"
		return verdict
	}
	ev, err := wire.DecodeMessage(d.Evidence)
	if err != nil {
		verdict.Reason = "dispute rejected: undecodable evidence"
		return verdict
	}
	switch d.Kind {
	case wire.DisputeAddLie:
		resp, ok := ev.(*wire.AddResponse)
		if !ok {
			verdict.Reason = "dispute rejected: evidence is not an add-response"
			return verdict
		}
		if err := wcrypto.VerifyMsg(reg, d.Edge, resp, resp.EdgeSig); err != nil {
			verdict.Reason = "dispute rejected: evidence not signed by edge"
			return verdict
		}
		if resp.BID != d.BID {
			verdict.Reason = "dispute rejected: evidence bid mismatch"
			return verdict
		}
		return judgeDigest(certs, chain, verdict, &resp.Block)
	case wire.DisputeReadLie:
		resp, ok := ev.(*wire.ReadResponse)
		if !ok || !resp.OK {
			verdict.Reason = "dispute rejected: evidence is not a served read"
			return verdict
		}
		if err := wcrypto.VerifyMsg(reg, d.Edge, resp, resp.EdgeSig); err != nil {
			verdict.Reason = "dispute rejected: evidence not signed by edge"
			return verdict
		}
		if resp.BID != d.BID {
			verdict.Reason = "dispute rejected: evidence bid mismatch"
			return verdict
		}
		return judgeDigest(certs, chain, verdict, &resp.Block)
	case wire.DisputeGetLie:
		resp, ok := ev.(*wire.GetResponse)
		if !ok {
			verdict.Reason = "dispute rejected: evidence is not a get-response"
			return verdict
		}
		if err := wcrypto.VerifyMsg(reg, d.Edge, resp, resp.EdgeSig); err != nil {
			verdict.Reason = "dispute rejected: evidence not signed by edge"
			return verdict
		}
		// Structural re-verification of the served L0 window with the
		// same shared checks the client ran (mlsm.VerifyL0Window): union
		// contiguity, cert/digest binding of full and pruned blocks, and
		// exclusion soundness of every pruned reference against the key
		// the response echoes under the edge's signature. Omission via a
		// false or tampered exclusion summary is therefore the edge's own
		// provable lie, exactly like a bad Merkle page on the scan path.
		if err := judgeGetWindow(reg, self, chain, resp); err != nil {
			verdict.Guilty = true
			verdict.Reason = fmt.Sprintf("get L0 window does not verify: %v", err)
			return verdict
		}
		// The window holds up structurally; the accusation must then name
		// a block whose promised content (or claimed pruned digest) the
		// certified digest refutes.
		for i := range resp.Proof.L0Blocks {
			if resp.Proof.L0Blocks[i].ID == d.BID {
				return judgeDigest(certs, chain, verdict, &resp.Proof.L0Blocks[i])
			}
		}
		for i := range resp.Proof.L0Pruned {
			if resp.Proof.L0Pruned[i].ID == d.BID {
				return judgeClaimedDigest(certs, chain, verdict, resp.Proof.L0Pruned[i].Digest())
			}
		}
		verdict.Reason = "dispute rejected: disputed block not in evidence"
		return verdict
	case wire.DisputeScanLie:
		resp, ok := ev.(*wire.ScanResponse)
		if !ok {
			verdict.Reason = "dispute rejected: evidence is not a scan-response"
			return verdict
		}
		if err := wcrypto.VerifyMsg(reg, d.Edge, resp, resp.EdgeSig); err != nil {
			verdict.Reason = "dispute rejected: evidence not signed by edge"
			return verdict
		}
		// Structural re-verification with the same code the client ran.
		// The response is edge-signed and self-contained (it echoes the
		// scanned range), so any structural defect — omission, injection,
		// boundary truncation, bad Merkle fold — is the edge's own lie.
		// Freshness is exempt: staleness is time-relative, not provable
		// after the fact (FreshnessWindow 0 disables the check).
		if _, err := scan.Verify(scan.Params{Reg: reg, Edge: chain, Cloud: self}, resp); err != nil {
			verdict.Guilty = true
			verdict.Reason = fmt.Sprintf("scan proof does not verify: %v", err)
			return verdict
		}
		// The proof holds up structurally; the accusation must then name
		// an L0 block whose promised content (or claimed pruned digest)
		// the certified digest refutes.
		for i := range resp.Proof.L0Blocks {
			if resp.Proof.L0Blocks[i].ID == d.BID {
				return judgeDigest(certs, chain, verdict, &resp.Proof.L0Blocks[i])
			}
		}
		for i := range resp.Proof.L0Pruned {
			if resp.Proof.L0Pruned[i].ID == d.BID {
				return judgeClaimedDigest(certs, chain, verdict, resp.Proof.L0Pruned[i].Digest())
			}
		}
		verdict.Reason = "not guilty: scan proof verifies and disputed block not in evidence"
		return verdict
	case wire.DisputeOmission:
		denial, ok := ev.(*wire.ReadResponse)
		if !ok || denial.OK {
			verdict.Reason = "dispute rejected: evidence is not a denial"
			return verdict
		}
		if err := wcrypto.VerifyMsg(reg, d.Edge, denial, denial.EdgeSig); err != nil {
			verdict.Reason = "dispute rejected: evidence not signed by edge"
			return verdict
		}
		ev2, err := wire.DecodeMessage(d.Evidence2)
		if err != nil {
			verdict.Reason = "dispute rejected: undecodable gossip evidence"
			return verdict
		}
		gossip, ok := ev2.(*wire.Gossip)
		if !ok {
			verdict.Reason = "dispute rejected: second evidence is not gossip"
			return verdict
		}
		// Gossip must carry a valid cloud signature; the registry knows
		// the cloud's identity from the gossip itself.
		if err := wcrypto.VerifyMsg(reg, gossipSigner(reg, gossip), gossip, gossip.CloudSig); err != nil {
			verdict.Reason = "dispute rejected: gossip not signed by cloud"
			return verdict
		}
		if gossip.Edge != chain {
			verdict.Reason = "dispute rejected: gossip is for another edge"
			return verdict
		}
		if denial.BID >= gossip.Blocks {
			verdict.Reason = "not guilty: denied block not covered by gossip"
			return verdict
		}
		if denial.Ts < gossip.Ts {
			verdict.Reason = "not guilty: denial predates gossip"
			return verdict
		}
		verdict.Guilty = true
		verdict.Reason = fmt.Sprintf("omission: denied block %d after gossip certified %d blocks", denial.BID, gossip.Blocks)
		return verdict
	default:
		verdict.Reason = "dispute rejected: unknown kind"
		return verdict
	}
}

// gossipSigner finds the identity whose key verifies the gossip. The cloud
// is the only signer of gossip in a deployment; we locate it by trying the
// registry's known cloud identity convention ("cloud"), falling back to a
// scan. Kept simple: deployments name the cloud node "cloud".
func gossipSigner(reg *wcrypto.Registry, g *wire.Gossip) wire.NodeID {
	if reg.Known("cloud") {
		return "cloud"
	}
	for _, id := range reg.IDs() {
		if err := wcrypto.VerifyMsg(reg, id, g, g.CloudSig); err == nil {
			return id
		}
	}
	return "cloud"
}

// judgeGetWindow re-runs the L0-window checks of a get response on behalf
// of the Judge: window contiguity, cert/digest binding (inner cloud
// signatures verified against the adjudicating cloud's own identity), the
// compaction-frontier pinning, and exclusion soundness of every pruned
// reference against the echoed key. Freshness and the value derivation
// are exempt — the former is time-relative, the latter is covered by the
// digest-contradiction path.
func judgeGetWindow(reg *wcrypto.Registry, self, edge wire.NodeID, resp *wire.GetResponse) error {
	p := &resp.Proof
	win, err := mlsm.VerifyL0Window(mlsm.L0WindowParams{
		Reg:   reg,
		Edge:  edge,
		Cloud: self,
		Excludes: func(s *wire.BlockSummary) bool {
			return s.ExcludesKey(resp.Key)
		},
	}, p.L0Blocks, p.L0Certs, p.L0Pruned, p.L0PrunedCerts)
	if err != nil {
		return err
	}
	if len(p.Global.CloudSig) > 0 {
		if err := wcrypto.VerifyMsg(reg, self, &p.Global, p.Global.CloudSig); err != nil {
			return fmt.Errorf("global root: %v", err)
		}
		if win.Slots > 0 && win.FirstID != p.Global.L0From {
			return fmt.Errorf("L0 window starts at block %d, signed compaction frontier is %d",
				win.FirstID, p.Global.L0From)
		}
	} else if len(p.Roots) == 0 && len(p.Levels) == 0 && win.Slots > 0 && win.FirstID != 0 {
		return fmt.Errorf("no signed index state, yet L0 window starts at block %d", win.FirstID)
	}
	return nil
}

// judgeDigest compares evidence block content against the certified digest.
func judgeDigest(certs *CertTable, chain wire.NodeID, verdict wire.Verdict, blk *wire.Block) wire.Verdict {
	return judgeClaimedDigest(certs, chain, verdict, wcrypto.RecomputedBlockDigest(blk))
}

// judgeClaimedDigest compares a digest recomputed from evidence — a full
// block's content or a pruned reference's claimed fields — against the
// certified digest for (chain, bid).
func judgeClaimedDigest(certs *CertTable, chain wire.NodeID, verdict wire.Verdict, got []byte) wire.Verdict {
	certified, ok := certs.Lookup(chain, verdict.BID)
	if !ok {
		verdict.Guilty = true
		verdict.Reason = fmt.Sprintf("block %d promised but never certified", verdict.BID)
		return verdict
	}
	if !bytes.Equal(got, certified) {
		verdict.Guilty = true
		verdict.Reason = fmt.Sprintf("block %d content contradicts certified digest", verdict.BID)
		return verdict
	}
	verdict.Reason = "not guilty: evidence matches certified digest"
	return verdict
}
