package core

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

func testKeys(t *testing.T) (map[wire.NodeID]wcrypto.KeyPair, *wcrypto.Registry) {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1", "evil"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	return keys, reg
}

func TestCertTableFirstWriterWins(t *testing.T) {
	ct := NewCertTable()
	d1 := wcrypto.Digest([]byte("block-0-honest"))
	d2 := wcrypto.Digest([]byte("block-0-forged"))

	if got := ct.Certify("edge-1", 0, d1, 10); got != CertAccepted {
		t.Fatalf("first certify = %v", got)
	}
	if got := ct.Certify("edge-1", 0, d1, 10); got != CertDuplicate {
		t.Fatalf("duplicate certify = %v", got)
	}
	if got := ct.Certify("edge-1", 0, d2, 10); got != CertConflict {
		t.Fatalf("conflicting certify = %v", got)
	}
	// The original digest must survive the conflict attempt.
	stored, ok := ct.Lookup("edge-1", 0)
	if !ok || string(stored) != string(d1) {
		t.Fatal("certified digest changed after conflict")
	}
	// Same bid on another edge is independent.
	if got := ct.Certify("edge-2", 0, d2, 5); got != CertAccepted {
		t.Fatalf("other edge certify = %v", got)
	}
}

func TestCertTableCounters(t *testing.T) {
	ct := NewCertTable()
	ct.Certify("e", 0, wcrypto.Digest([]byte("a")), 0)
	ct.Certify("e", 1, wcrypto.Digest([]byte("b")), 0)
	if ct.Blocks("e") != 2 {
		t.Fatalf("Blocks = %d", ct.Blocks("e"))
	}
	ct.AddEntries("e", 200)
	if ct.Entries("e") != 200 {
		t.Fatalf("Entries = %d", ct.Entries("e"))
	}
}

func TestPunishmentsBanOnce(t *testing.T) {
	p := NewPunishments()
	p.Punish(wire.Verdict{Edge: "e", Guilty: false, Reason: "innocent"})
	if _, banned := p.Banned("e"); banned {
		t.Fatal("not-guilty verdict banned the edge")
	}
	p.Punish(wire.Verdict{Edge: "e", Guilty: true, Reason: "first"})
	p.Punish(wire.Verdict{Edge: "e", Guilty: true, Reason: "second"})
	reason, banned := p.Banned("e")
	if !banned || reason != "first" {
		t.Fatalf("Banned = %q,%v", reason, banned)
	}
	if len(p.Verdicts()) != 2 {
		t.Fatalf("verdict log = %d", len(p.Verdicts()))
	}
}

// buildEvidence creates a signed AddResponse for a block.
func buildEvidence(keys map[wire.NodeID]wcrypto.KeyPair, blk wire.Block) *wire.AddResponse {
	resp := &wire.AddResponse{BID: blk.ID, Block: blk}
	resp.EdgeSig = wcrypto.SignMsg(keys["edge-1"], resp)
	return resp
}

func testBlock() wire.Block {
	return wire.Block{
		Edge: "edge-1", ID: 0,
		Entries: []wire.Entry{{Client: "c1", Seq: 1, Value: []byte("data")}},
	}
}

func TestJudgeConvictsDigestMismatch(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	honest := testBlock()
	ct.Certify("edge-1", 0, wcrypto.BlockDigest(&honest), 1)

	// The edge promised the client a different block.
	lied := honest
	lied.Entries = append([]wire.Entry(nil), honest.Entries...)
	lied.Entries[0].Value = []byte("tampered")
	d := BuildAddLieDispute(keys["c1"], "edge-1", buildEvidence(keys, lied))
	v := Judge(reg, ct, "cloud", "c1", d)
	if !v.Guilty {
		t.Fatalf("verdict = %+v, want guilty", v)
	}
}

func TestJudgeAcquitsMatchingDigest(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	honest := testBlock()
	ct.Certify("edge-1", 0, wcrypto.BlockDigest(&honest), 1)

	d := BuildAddLieDispute(keys["c1"], "edge-1", buildEvidence(keys, honest))
	v := Judge(reg, ct, "cloud", "c1", d)
	if v.Guilty {
		t.Fatalf("verdict = %+v, want not guilty", v)
	}
}

func TestJudgeConvictsNeverCertified(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	d := BuildAddLieDispute(keys["c1"], "edge-1", buildEvidence(keys, testBlock()))
	v := Judge(reg, ct, "cloud", "c1", d)
	if !v.Guilty {
		t.Fatalf("verdict = %+v, want guilty (promised but never certified)", v)
	}
}

func TestJudgeRejectsForgedEvidence(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	// A client cannot frame the edge: evidence signed by someone else.
	resp := &wire.AddResponse{BID: 0, Block: testBlock()}
	resp.EdgeSig = wcrypto.SignMsg(keys["evil"], resp)
	d := BuildAddLieDispute(keys["c1"], "edge-1", resp)
	v := Judge(reg, ct, "cloud", "c1", d)
	if v.Guilty {
		t.Fatal("forged evidence convicted the edge")
	}
}

func TestJudgeRejectsBadClientSignature(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	d := BuildAddLieDispute(keys["c1"], "edge-1", buildEvidence(keys, testBlock()))
	d.ClientSig[0] ^= 1
	v := Judge(reg, ct, "cloud", "c1", d)
	if v.Guilty {
		t.Fatal("tampered dispute convicted the edge")
	}
}

func TestJudgeReadLie(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	honest := testBlock()
	ct.Certify("edge-1", 0, wcrypto.BlockDigest(&honest), 1)

	lied := honest
	lied.Entries = append([]wire.Entry(nil), honest.Entries...)
	lied.Entries[0].Value = []byte("served-garbage")
	resp := &wire.ReadResponse{ReqID: 1, BID: 0, OK: true, Block: lied}
	resp.EdgeSig = wcrypto.SignMsg(keys["edge-1"], resp)

	d := BuildReadLieDispute(keys["c1"], "edge-1", resp)
	v := Judge(reg, ct, "cloud", "c1", d)
	if !v.Guilty || v.Kind != wire.DisputeReadLie {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestJudgeGetLie(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	honest := testBlock()
	ct.Certify("edge-1", 0, wcrypto.BlockDigest(&honest), 1)

	lied := honest
	lied.Entries = append([]wire.Entry(nil), honest.Entries...)
	lied.Entries[0].Value = []byte("stale")
	resp := &wire.GetResponse{
		ReqID: 1,
		Proof: wire.GetProof{L0Blocks: []wire.Block{lied}, L0Certs: []wire.BlockProof{{}}},
	}
	resp.EdgeSig = wcrypto.SignMsg(keys["edge-1"], resp)

	d := BuildGetLieDispute(keys["c1"], "edge-1", 0, resp)
	v := Judge(reg, ct, "cloud", "c1", d)
	if !v.Guilty || v.Kind != wire.DisputeGetLie {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestJudgeOmission(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	honest := testBlock()
	ct.Certify("edge-1", 0, wcrypto.BlockDigest(&honest), 1)

	gossip := &wire.Gossip{Edge: "edge-1", Ts: 100, LogSize: 1, Blocks: 1}
	gossip.CloudSig = wcrypto.SignMsg(keys["cloud"], gossip)

	denial := &wire.ReadResponse{ReqID: 1, BID: 0, OK: false, Ts: 150}
	denial.EdgeSig = wcrypto.SignMsg(keys["edge-1"], denial)

	d := BuildOmissionDispute(keys["c1"], "edge-1", denial, gossip)
	v := Judge(reg, ct, "cloud", "c1", d)
	if !v.Guilty || v.Kind != wire.DisputeOmission {
		t.Fatalf("verdict = %+v", v)
	}

	// A denial that predates the gossip is not provable.
	early := &wire.ReadResponse{ReqID: 2, BID: 0, OK: false, Ts: 50}
	early.EdgeSig = wcrypto.SignMsg(keys["edge-1"], early)
	d2 := BuildOmissionDispute(keys["c1"], "edge-1", early, gossip)
	if v := Judge(reg, ct, "cloud", "c1", d2); v.Guilty {
		t.Fatal("pre-gossip denial convicted")
	}

	// A denial of a block gossip does not cover is not provable.
	far := &wire.ReadResponse{ReqID: 3, BID: 9, OK: false, Ts: 150}
	far.EdgeSig = wcrypto.SignMsg(keys["edge-1"], far)
	d3 := BuildOmissionDispute(keys["c1"], "edge-1", far, gossip)
	if v := Judge(reg, ct, "cloud", "c1", d3); v.Guilty {
		t.Fatal("uncovered denial convicted")
	}
}

func TestJudgeRejectsUndecodableEvidence(t *testing.T) {
	keys, reg := testKeys(t)
	ct := NewCertTable()
	d := &wire.Dispute{Kind: wire.DisputeAddLie, Edge: "edge-1", BID: 0, Evidence: []byte{1, 2, 3}}
	d.ClientSig = wcrypto.SignMsg(keys["c1"], d)
	if v := Judge(reg, ct, "cloud", "c1", d); v.Guilty {
		t.Fatal("garbage evidence convicted")
	}
}

func TestPhaseStrings(t *testing.T) {
	if PhaseNone.String() != "none" || PhaseI.String() != "phase-I" || PhaseII.String() != "phase-II" {
		t.Fatal("phase names changed")
	}
}
