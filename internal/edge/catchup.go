package edge

import (
	"bytes"

	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
	"wedgechain/internal/wlog"
)

// Certified catch-up: how a node that missed history rejoins the group
// without trusting whoever serves it. A restarted follower (blank log) or
// a demoted ex-leader (uncertified tail truncated) asks the current leader
// for the blocks it is missing. Every shipped block carries the serving
// leader's transfer signature over the block-ack body — the same 44-byte
// promise client acknowledgements and the replication stream carry — and
// certified blocks additionally carry their cloud certificate. The
// receiver verifies each block against the certificate before installing
// it, so a lying sync peer does not poison the mirror: shipped content
// that contradicts a certificate is itself convicting evidence, filed
// through the standard add-lie dispute with zero new adjudication code.

// catchUpRun bounds how many blocks one CatchUpBlocks message carries.
// The receiver re-requests while still behind Through, so a long gap
// drains as a sequence of bounded messages instead of one giant frame.
const catchUpRun = 16

// requestCatchUp builds the signed request for every block from `from` up
// — usually the local block frontier, or the first uncertified block when
// the run is healing missing certificates over a complete mirror. Callers
// own rate limiting via lastCatchUp.
func (n *Node) requestCatchUp(now int64, from uint64) wire.Envelope {
	n.lastCatchUp = now
	n.m.catchUps.Inc()
	req := &wire.CatchUpRequest{
		Chain: n.cfg.Chain,
		Node:  n.cfg.ID,
		From:  from,
		Ts:    now,
	}
	req.Sig = wcrypto.SignMsg(n.key, req)
	return wire.Envelope{From: n.cfg.ID, To: n.leader, Msg: req}
}

// handleCatchUpRequest serves a bounded run of blocks to a node that is
// behind. Only the current leader serves; blocks are public (any client
// can read them), so the only gate is a valid requester signature on the
// same chain. Each item is signed over the digest of exactly the bytes
// shipped, and certified blocks carry their proof so the receiver can
// advance its certified prefix without per-block cloud round-trips.
func (n *Node) handleCatchUpRequest(now int64, from wire.NodeID, m *wire.CatchUpRequest, verified bool) []wire.Envelope {
	if n.follower || m.Chain != n.cfg.Chain || m.Node != from {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, m.Node, m, m.Sig); err != nil {
			n.logf("dropping catch-up request with bad signature", "from", from, "err", err)
			return nil
		}
	}
	through := n.log.NumBlocks()
	if m.From >= through {
		return nil
	}
	resp := &wire.CatchUpBlocks{
		Chain:   n.cfg.Chain,
		Leader:  n.cfg.ID,
		From:    m.From,
		Through: through,
	}
	end := m.From + catchUpRun
	if end > through {
		end = through
	}
	for bid := m.From; bid < end; bid++ {
		blk, err := n.log.Block(bid)
		if err != nil {
			return nil
		}
		digest, err := n.log.Digest(bid)
		if err != nil {
			return nil
		}
		item := wire.CatchUpItem{Block: *blk}
		if f := n.cfg.Fault; f != nil && f.TamperCatchUp {
			// Lying sync peer: alter the content and sign the tampered
			// digest, so the transfer signature verifies and the cloud
			// certificate is what refutes it.
			item.Block = tamperBlock(*blk, "")
			digest = wcrypto.BlockDigest(&item.Block)
		}
		item.ServerSig = wcrypto.SignBlockAck(n.key, bid, digest)
		// Only individually signed certificates can ride catch-up — the
		// receiver verifies each item's CloudSig. A batch-covered cert
		// (certbatch.go) is omitted; the follower heals it from the
		// cloud's gossip-driven path instead.
		if cert, ok := n.log.Cert(bid); ok && len(cert.CloudSig) > 0 {
			item.HasCert = true
			item.Cert = cert
		}
		resp.Items = append(resp.Items, item)
	}
	env := wire.Envelope{From: n.cfg.ID, To: from, Msg: resp}
	return []wire.Envelope{env}
}

// verifyCatchUpCert checks a certificate riding a catch-up item: right
// chain, right block, valid cloud signature. Items arrive without pool
// pre-verification (the signatures are per-item), so everything is checked
// here.
func (n *Node) verifyCatchUpCert(it *wire.CatchUpItem, bid uint64) bool {
	c := &it.Cert
	if c.Edge != n.cfg.Chain || c.BID != bid {
		return false
	}
	if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, c, c.CloudSig); err != nil {
		n.logf("dropping catch-up certificate with bad cloud signature", "bid", bid, "err", err)
		return false
	}
	return true
}

// handleCatchUpBlocks installs a served run into the mirrored log. Every
// block is verified against its transfer signature, and — when certified —
// against the cloud's certificate, BEFORE installation: a shipped block
// that contradicts its own certificate convicts the serving peer and stops
// the run. Gaps or verification failures simply stop; the follower's
// gap-driven timer re-requests.
func (n *Node) handleCatchUpBlocks(now int64, from wire.NodeID, m *wire.CatchUpBlocks) []wire.Envelope {
	if !n.follower || m.Chain != n.cfg.Chain || from != n.leader || m.Leader != from {
		return nil
	}
	var out []wire.Envelope
	for i := range m.Items {
		it := &m.Items[i]
		bid := it.Block.ID
		if it.Block.Edge != n.cfg.Chain {
			break
		}
		if bid < n.log.NumBlocks() {
			// Already mirrored; at most heal a certificate we are missing.
			if it.HasCert && n.verifyCatchUpCert(it, bid) {
				if _, ok := n.log.Cert(bid); !ok {
					out = append(out, n.followerApplyCert(it.Cert)...)
				}
			}
			continue
		}
		if bid > n.log.NumBlocks() {
			break // gap inside the run; the re-request fills it
		}
		digest := wcrypto.BlockDigest(&it.Block)
		if err := wcrypto.VerifyBlockAck(n.reg, m.Leader, bid, digest, it.ServerSig); err != nil {
			n.logf("dropping catch-up block with bad transfer signature", "bid", bid, "err", err)
			break
		}
		if it.HasCert {
			if !n.verifyCatchUpCert(it, bid) {
				break
			}
			if !bytes.Equal(it.Cert.Digest, digest) {
				// The peer shipped content contradicting the cloud's
				// certificate; its own transfer signature is the evidence.
				out = append(out, n.convictLeader(bid, it.Block, it.ServerSig,
					"catch-up block contradicts certificate; convicting sync peer")...)
				break
			}
		}
		repl := &wire.ReplicateBlock{Chain: m.Chain, Leader: m.Leader, Block: it.Block, LeaderSig: it.ServerSig}
		out = append(out, n.installReplicated(repl)...)
		if it.HasCert {
			if _, ok := n.log.Cert(bid); !ok {
				out = append(out, n.followerApplyCert(it.Cert)...)
			}
		}
	}
	// Live replication stashed while the gap existed may now be contiguous.
	for cur := n.pendingRepl[n.log.NumBlocks()]; cur != nil; cur = n.pendingRepl[n.log.NumBlocks()] {
		delete(n.pendingRepl, cur.Block.ID)
		out = append(out, n.installReplicated(cur)...)
	}
	if n.log.NumBlocks() < m.Through {
		out = append(out, n.requestCatchUp(now, n.log.NumBlocks()))
	}
	return out
}

// handleGossip is the follower's view of the cloud's signed frontier
// statement (the reply to a FrontierRequest): when the certified chain is
// longer than the local mirror — missing blocks, or missing certificates
// over a complete mirror (the cert frame was lost and nothing retransmits
// certs) — start catching up. A cert-only gap requests from the first
// uncertified block, so the served run rides the missing certificates over
// blocks the mirror already holds. Clients consume the same message for
// freshness; an edge only acts on it as a follower.
func (n *Node) handleGossip(now int64, from wire.NodeID, m *wire.Gossip, verified bool) []wire.Envelope {
	if !n.follower || from != n.cfg.Cloud || m.Edge != n.cfg.Chain ||
		n.leader == "" || n.cfg.CatchUpEvery <= 0 {
		return nil
	}
	if (m.Blocks <= n.log.NumBlocks() && m.Blocks <= n.log.CertifiedBlocks()) ||
		now-n.lastCatchUp < n.cfg.CatchUpEvery {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, m, m.CloudSig); err != nil {
			return nil
		}
	}
	catchFrom := n.log.NumBlocks()
	if m.Blocks > n.log.CertifiedBlocks() {
		if ct, ok := n.log.CertifiedThrough(); ok {
			if ct+1 < catchFrom {
				catchFrom = ct + 1
			}
		} else {
			catchFrom = 0
		}
	}
	n.logf("mirror behind certified frontier; catching up",
		"have", n.log.NumBlocks(), "haveCerts", n.log.CertifiedBlocks(),
		"certified", m.Blocks, "from", catchFrom)
	return []wire.Envelope{n.requestCatchUp(now, catchFrom)}
}

// handleGroupJoin adopts a cloud-signed rejoin admission. The cloud sends
// it to both sides: the rejoining node learns the current leader and epoch
// and starts catching up; the leader adds the node back to its replication
// fan-out. Stale admissions (older epoch) are ignored so a delayed join
// can never demote a newer view.
func (n *Node) handleGroupJoin(now int64, from wire.NodeID, m *wire.GroupJoin, verified bool) []wire.Envelope {
	if m.Chain != n.cfg.Chain || from != n.cfg.Cloud {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, m, m.CloudSig); err != nil {
			n.logf("dropping group join with bad cloud signature", "err", err)
			return nil
		}
	}
	if m.Epoch < n.epoch {
		return nil
	}
	n.epoch = m.Epoch
	if m.Node == n.cfg.ID {
		if m.Leader == n.cfg.ID {
			return nil
		}
		n.logf("rejoining replica group", "chain", n.cfg.Chain, "epoch", m.Epoch, "leader", m.Leader)
		return n.demote(now, m.Leader)
	}
	if !n.follower && m.Leader == n.cfg.ID {
		for _, f := range n.cfg.Followers {
			if f == m.Node {
				return nil
			}
		}
		n.cfg.Followers = append(n.cfg.Followers, m.Node)
		n.logf("follower rejoined; resuming replication", "chain", n.cfg.Chain, "follower", m.Node)
	}
	return nil
}

// demote re-points the node at leader as a mirroring follower and discards
// everything the cloud never pinned. The uncertified tail may diverge from
// the history the new leader replicates (blocks this node cut, or mirrored
// from a dead leader, that were never certified), so it is truncated — in
// memory and in the durable segment — and refetched through certified
// catch-up. The certified prefix is identical everywhere by construction
// and stays. Role state from the old life (withheld group-commit acks,
// request rings, an in-flight merge claim) is dropped with it.
func (n *Node) demote(now int64, leader wire.NodeID) []wire.Envelope {
	n.follower = true
	n.leader = leader
	n.cfg.Followers = nil
	if n.pendingRepl == nil {
		n.pendingCerts = make(map[uint64]wire.BlockProof)
		n.replSigs = make(map[uint64][]byte)
		n.poisoned = make(map[uint64]bool)
	}
	n.pendingRepl = make(map[uint64]*wire.ReplicateBlock)
	if removed := n.log.TruncateUncertified(); removed > 0 {
		n.m.truncated.Add(uint64(removed))
		n.logf("truncated uncertified tail on demotion",
			"removed", removed, "keep", n.log.NumBlocks())
		if n.store != nil {
			if err := n.store.ResetTo(n.log); err != nil {
				n.logf("rewriting durable segment after truncation failed", "err", err)
			}
		}
	}
	// Replication signatures above the kept prefix vouch for truncated
	// content; the new leader re-signs what catch-up ships.
	for bid := range n.replSigs {
		if bid >= n.log.NumBlocks() {
			delete(n.replSigs, bid)
		}
	}
	n.pendingAcks = nil
	n.mergeBusy = false
	n.reqs = reqRing{}
	n.reqs.advance(n.log.NextPos())
	n.blockClients = bidRing[reqInfo]{}
	n.readWaiters = bidRing[wire.NodeID]{}
	if ct, ok := n.log.CertifiedThrough(); ok {
		n.blockClients.advanceTo(ct + 1)
		n.readWaiters.advanceTo(ct + 1)
	}
	out := []wire.Envelope{{From: n.cfg.ID, To: n.cfg.Cloud, Msg: &wire.FrontierRequest{Chain: n.cfg.Chain}}}
	out = append(out, n.requestCatchUp(now, n.log.NumBlocks()))
	return out
}

// Restart revives a killed node as a blank follower, modelling a process
// that lost its in-memory state (the durable store, when present, is reset
// with the empty log — the diskless-restart case; a process restart with
// an intact store goes through NewPersistent instead). The node knows its
// chain but not who leads it: it heartbeats, the cloud notices a known
// member reporting from scratch and sends a GroupJoin naming the current
// leader, and certified catch-up rebuilds the mirror.
func (n *Node) Restart(now int64) {
	n.killed = false
	n.log = wlog.New(n.cfg.Chain, n.cfg.BatchSize)
	n.idx = mlsm.NewIndex(n.cfg.LevelThresholds)
	if n.store != nil {
		if err := n.store.ResetTo(n.log); err != nil {
			n.logf("resetting durable segment on restart failed", "err", err)
		}
	}
	n.reqs = reqRing{}
	n.blockClients = bidRing[reqInfo]{}
	n.readWaiters = bidRing[wire.NodeID]{}
	n.l0From = 0
	n.mergeBusy = false
	n.pendingAcks = nil
	n.pendingSince = 0
	n.lastArrival = 0
	n.follower = true
	n.leader = ""
	n.epoch = 0
	n.lastHB = 0
	n.pendingRepl = make(map[uint64]*wire.ReplicateBlock)
	n.pendingCerts = make(map[uint64]wire.BlockProof)
	n.replSigs = make(map[uint64][]byte)
	n.poisoned = make(map[uint64]bool)
	n.accused = make(map[uint64]bool)
	n.lastCertFrontier = 0
	n.certStallSince = now
	n.lastCatchUp = now
	n.logf("restarted as blank follower", "chain", n.cfg.Chain)
}
