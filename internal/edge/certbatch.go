package edge

import (
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Batched certification, edge side. With Config.CertBatch > 1 the edge
// amortizes the certification round trip in both directions:
//
//   - Outbound: up to CertBatch contiguous cut blocks accumulate into one
//     pending run and ship to the cloud as a single signed
//     wire.BlockCertifyBatch — one Ed25519 signature (and one cloud-side
//     verification) covering the whole run instead of one per block.
//     Partial runs flush on the next Tick, so batching adds at most one
//     tick of certification latency.
//
//   - Inbound: the cloud's wire.BlockCertBatch certifies a contiguous run
//     under one cloud signature. The covered blocks are marked certified
//     in the log with a synthesized per-block proof that carries no
//     individual CloudSig; the batch itself is retained (per covered bid,
//     bounded) as the verifiable artifact, and is what gets forwarded to
//     clients and served alongside Phase I reads.
//
// Because batch-covered log certificates are not individually
// verifiable, they are excluded from every path that re-checks a
// certificate signature later: the durable segment (recovery verifies
// CloudSig), catch-up serving (followers verify per-item), and the
// embedded proof of a read response. After a restart the batch-covered
// suffix simply re-certifies; the cloud answers the duplicates with
// individually signed proofs.

// certBatching reports whether outbound certify batching is active.
// Incompatible modes fall back to per-block certifies: full-data
// certification (bodies are per-block), fault injection (the byzantine
// knobs target single certifies), and group commit (certifies must not
// reach the cloud before the shared fsync, and the batch flush runs on
// Tick, outside the pendingAcks gate).
func (n *Node) certBatching() bool {
	return n.cfg.CertBatch > 1 && !n.cfg.FullDataCert && n.cfg.Fault == nil &&
		!(n.store != nil && n.cfg.SyncEvery > 0)
}

// queueCertify adds a freshly cut block to the pending certify run,
// flushing first if the run would lose contiguity and again when it
// reaches CertBatch.
func (n *Node) queueCertify(bid uint64, digest []byte) []wire.Envelope {
	var out []wire.Envelope
	if len(n.certPendDigests) > 0 && bid != n.certPendStart+uint64(len(n.certPendDigests)) {
		out = n.flushCertifyRun()
	}
	if len(n.certPendDigests) == 0 {
		n.certPendStart = bid
	}
	n.certPendDigests = append(n.certPendDigests, digest)
	if len(n.certPendDigests) >= n.cfg.CertBatch {
		out = append(out, n.flushCertifyRun()...)
	}
	return out
}

// flushCertifyRun signs and ships the pending run as one
// BlockCertifyBatch. One edge signature covers every block in the run.
func (n *Node) flushCertifyRun() []wire.Envelope {
	if len(n.certPendDigests) == 0 {
		return nil
	}
	m := &wire.BlockCertifyBatch{Edge: n.cfg.Chain, Start: n.certPendStart, Digests: n.certPendDigests}
	n.certPendDigests = nil
	m.EdgeSig = wcrypto.SignMsg(n.key, m)
	env := wire.Envelope{From: n.cfg.ID, To: n.cfg.Cloud, Msg: m}
	n.m.bytesToCloud.Add(uint64(wire.EncodedSize(env)))
	return []wire.Envelope{env}
}

// certBatchRetain bounds how many covered bids keep a pointer to their
// covering certificate batch. Retention only serves the read path — a
// Phase I read of a batch-certified block ships the covering batch as
// the proof — so once the read window has moved past a bid, its entry
// is dead weight; the oldest are evicted first. An evicted bid's reads
// degrade to Phase I with proof forwarding on the next certificate.
const certBatchRetain = 4096

// retainCertBatch indexes a verified inbound batch by every bid it
// covers, evicting the oldest entries past certBatchRetain.
func (n *Node) retainCertBatch(b *wire.BlockCertBatch) {
	if n.certBatches == nil {
		n.certBatches = make(map[uint64]*wire.BlockCertBatch)
	}
	for i := range b.Digests {
		bid := b.Start + uint64(i)
		if _, ok := n.certBatches[bid]; !ok {
			n.certBatchOrder = append(n.certBatchOrder, bid)
		}
		n.certBatches[bid] = b
	}
	for len(n.certBatchOrder) > certBatchRetain {
		delete(n.certBatches, n.certBatchOrder[0])
		n.certBatchOrder = n.certBatchOrder[1:]
	}
}

// handleCertBatch installs a batched cloud certificate: one cloud
// signature vouching for a contiguous run of (bid, digest) pairs. The
// leader applies each pair exactly as it would an individual proof —
// log upgrade, waiter forwarding, merge trigger — and a follower audits
// its mirror per pair, so a single contradicting digest inside an
// otherwise honest batch still convicts the leader for that block.
func (n *Node) handleCertBatch(now int64, from wire.NodeID, b *wire.BlockCertBatch, verified bool) []wire.Envelope {
	if from != n.cfg.Cloud || b.Edge != n.cfg.Chain || len(b.Digests) == 0 {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, b, b.CloudSig); err != nil {
			n.logf("dropping certificate batch with bad cloud signature", "err", err)
			return nil
		}
	}
	var out []wire.Envelope
	if n.follower {
		for i, d := range b.Digests {
			out = append(out, n.followerApplyCert(wire.BlockProof{Edge: b.Edge, BID: b.Start + uint64(i), Digest: d})...)
		}
		return out
	}
	n.retainCertBatch(b)
	// Distinct clients touched by any covered bid get the batch once,
	// however many of their blocks it certifies.
	var notify []wire.NodeID
	seen := make(map[wire.NodeID]bool)
	note := func(c wire.NodeID) {
		if !seen[c] {
			seen[c] = true
			notify = append(notify, c)
		}
	}
	for i, d := range b.Digests {
		bid := b.Start + uint64(i)
		if _, ok := n.log.Cert(bid); ok {
			continue // already certified (an individually signed proof won)
		}
		if err := n.log.SetCert(wire.BlockProof{Edge: b.Edge, BID: bid, Digest: d}); err != nil {
			n.logf("certificate batch entry does not match local block", "bid", bid, "err", err)
			continue
		}
		n.m.certified.Inc()
		n.m.markCertified(bid, now)
		for _, r := range n.blockClients.take(bid) {
			note(r.client)
		}
		for _, c := range n.readWaiters.take(bid) {
			note(c)
		}
	}
	for _, c := range notify {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: c, Msg: b})
	}
	if ct, ok := n.log.CertifiedThrough(); ok {
		n.blockClients.advanceTo(ct + 1)
		n.readWaiters.advanceTo(ct + 1)
	}
	out = append(out, n.maybeStartMerge(now)...)
	return out
}
