package edge

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// signedBatch builds a cloud-signed certificate batch over the given
// digests starting at bid start.
func signedBatch(keys map[wire.NodeID]wcrypto.KeyPair, start uint64, digests [][]byte) *wire.BlockCertBatch {
	b := &wire.BlockCertBatch{Edge: "edge-1", Start: start, Digests: digests}
	b.CloudSig = wcrypto.SignMsg(keys["cloud"], b)
	return b
}

// TestEdgeBatchesCertifies: with CertBatch > 1 the leader ships one
// signed BlockCertifyBatch per CertBatch contiguous cut blocks instead
// of per-block certifies.
func TestEdgeBatchesCertifies(t *testing.T) {
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"edge-1", "cloud", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	n := New(Config{ID: "edge-1", Cloud: "cloud", BatchSize: 1, CertBatch: 2}, keys["edge-1"], reg)

	var batches []*wire.BlockCertifyBatch
	write := func(seq uint64) {
		e := wire.Entry{Client: "c1", Seq: seq, Value: []byte{byte(seq)}}
		e.Sig = wcrypto.SignMsg(keys["c1"], &e)
		out := n.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
		for _, env := range out {
			if m, ok := env.Msg.(*wire.BlockCertify); ok {
				t.Fatalf("batching edge sent a single certify: %+v", m)
			}
			if m, ok := env.Msg.(*wire.BlockCertifyBatch); ok {
				batches = append(batches, m)
			}
		}
	}
	write(1)
	if len(batches) != 0 {
		t.Fatal("partial run flushed before CertBatch")
	}
	write(2)
	if len(batches) != 1 {
		t.Fatalf("batches after 2 blocks = %d, want 1", len(batches))
	}
	b := batches[0]
	if b.Start != 0 || len(b.Digests) != 2 {
		t.Fatalf("batch = %+v", b)
	}
	if err := wcrypto.VerifyMsg(reg, "edge-1", b, b.EdgeSig); err != nil {
		t.Fatalf("batch signature: %v", err)
	}

	// A lone block rides the next Tick instead of waiting for a sibling.
	write(3)
	var tickBatch *wire.BlockCertifyBatch
	for _, env := range n.Tick(2) {
		if m, ok := env.Msg.(*wire.BlockCertifyBatch); ok {
			tickBatch = m
		}
	}
	if tickBatch == nil || tickBatch.Start != 2 || len(tickBatch.Digests) != 1 {
		t.Fatalf("tick flush batch = %+v", tickBatch)
	}

	// Applying the cloud's batched certificate upgrades every covered
	// block and forwards the batch (not synthesized proofs) to the
	// waiting client.
	digests := append(append([][]byte(nil), b.Digests...), tickBatch.Digests...)
	out := n.Receive(3, wire.Envelope{From: "cloud", To: "edge-1", Msg: signedBatch(keys, 0, digests)})
	if got := n.log.CertifiedBlocks(); got != 3 {
		t.Fatalf("certified blocks = %d, want 3", got)
	}
	var forwarded *wire.BlockCertBatch
	for _, env := range out {
		if m, ok := env.Msg.(*wire.BlockCertBatch); ok && env.To == "c1" {
			if forwarded != nil {
				t.Fatal("client notified more than once for one batch")
			}
			forwarded = m
		}
	}
	if forwarded == nil {
		t.Fatal("covering batch not forwarded to the contributing client")
	}
}

// TestEdgeReadServesRetainedBatch: a read of a batch-certified block
// cannot embed a proof (the log cert has no individual cloud signature);
// the covering batch rides as its own envelope instead.
func TestEdgeReadServesRetainedBatch(t *testing.T) {
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"edge-1", "cloud", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	n := New(Config{ID: "edge-1", Cloud: "cloud", BatchSize: 1, CertBatch: 2}, keys["edge-1"], reg)
	e := wire.Entry{Client: "c1", Seq: 1, Value: []byte("v")}
	e.Sig = wcrypto.SignMsg(keys["c1"], &e)
	n.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
	d, err := n.log.Digest(0)
	if err != nil {
		t.Fatal(err)
	}
	n.Receive(2, wire.Envelope{From: "cloud", To: "edge-1", Msg: signedBatch(keys, 0, [][]byte{d})})

	out := n.Receive(3, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.ReadRequest{ReqID: 1, BID: 0}})
	if len(out) != 2 {
		t.Fatalf("read outputs = %d, want response + batch", len(out))
	}
	resp := out[0].Msg.(*wire.ReadResponse)
	if resp.HasProof {
		t.Fatal("batch-covered cert embedded as an unverifiable proof")
	}
	if _, ok := out[1].Msg.(*wire.BlockCertBatch); !ok {
		t.Fatalf("second read output = %T, want BlockCertBatch", out[1].Msg)
	}
}

// TestFollowerConvictsTamperedBatchEntry is the adversarial batch-cert
// case: one contradicting digest inside an otherwise honest batch
// convicts the leader for that block, while the honest entries still
// certify the mirror.
func TestFollowerConvictsTamperedBatchEntry(t *testing.T) {
	p := newReplicaPair(t)
	p.deliver(p.cutBlock(t, 1, 1))
	p.deliver(p.cutBlock(t, 2, 10))

	d0, err := p.follower.log.Digest(0)
	if err != nil {
		t.Fatal(err)
	}
	tampered := wcrypto.Digest([]byte("not-what-was-replicated"))
	b := signedBatch(p.keys, 0, [][]byte{d0, tampered})
	out := p.follower.Receive(3, wire.Envelope{From: "cloud", To: "edge-1.r1", Msg: b})

	var disputes int
	for _, env := range out {
		if env.Msg.MsgKind() == wire.KindDispute && env.To == "cloud" {
			disputes++
		}
	}
	if disputes != 1 {
		t.Fatalf("disputes filed = %d, want 1 (the tampered entry)", disputes)
	}
	if got := p.follower.log.CertifiedBlocks(); got != 1 {
		t.Fatalf("certified blocks = %d, want 1 (the honest entry)", got)
	}

	// A forged batch touches nothing.
	forged := &wire.BlockCertBatch{Edge: "edge-1", Start: 0, Digests: [][]byte{d0}}
	forged.CloudSig = wcrypto.SignMsg(p.keys["c1"], forged)
	if out := p.follower.Receive(4, wire.Envelope{From: "cloud", To: "edge-1.r1", Msg: forged}); out != nil {
		t.Fatalf("forged batch produced output: %v", out)
	}
}
