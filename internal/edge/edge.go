// Package edge implements the WedgeChain edge node: the untrusted,
// potentially byzantine server that ingests client writes, cuts log blocks,
// answers reads and key-value gets with proofs, and coordinates lazily with
// the trusted cloud (Sections IV and V of the paper).
//
// The node is a deterministic state machine (core.Handler): all I/O happens
// through Receive and Tick, so the same code runs under the discrete-event
// simulator, the in-process transport and TCP.
//
// Byzantine behaviour is injected through the Fault hooks — the honest code
// path never lies, but tests and examples use faults to demonstrate that
// every lie the paper considers is eventually detected and punished.
package edge

import (
	"errors"
	"fmt"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/obs"
	"wedgechain/internal/obs/olog"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
	"wedgechain/internal/wlog"
)

// Node implements core.Handler so all transports can drive it.
var _ core.Handler = (*Node)(nil)

// Config parameterizes an edge node.
type Config struct {
	// ID is this node's identity; Cloud the trusted cloud's.
	ID    wire.NodeID
	Cloud wire.NodeID
	// Chain is the shard's stable chain identity — the NodeID that blocks,
	// certificates, gossip and signed roots are keyed by, surviving
	// leadership transfers. Defaults to ID (the legacy single-node shard,
	// where node and chain coincide). In a replica group every member
	// shares the chain while keeping its own node identity and key.
	Chain wire.NodeID
	// Followers lists the replica nodes mirroring this node's log while it
	// leads the chain: every cut block is replicated to them and every
	// cloud merge response is forwarded.
	Followers []wire.NodeID
	// Follower starts the node as a mirroring follower of Leader: it
	// installs replicated blocks, audits their digests against cloud
	// certificates, heartbeats the cloud, and serves no client traffic
	// until a signed LeadershipTransfer promotes it.
	Follower bool
	// Leader is the chain's current leader, meaningful only in follower
	// mode; defaults to Chain (the initial leader's node id IS the chain).
	Leader wire.NodeID
	// HeartbeatEvery is the replica-liveness heartbeat period in
	// nanoseconds. Defaults to 200ms when the node is part of a replica
	// group (Follower set or Followers non-empty); 0 disables heartbeats
	// (legacy ungrouped shards).
	HeartbeatEvery int64
	// CertRetryEvery re-submits certification for the uncertified backlog
	// when the certified frontier has not advanced for this many
	// nanoseconds — lost BlockCertify or BlockProof frames heal instead
	// of wedging Phase II (the cloud answers duplicates with the cached
	// proof, so retries are idempotent). Defaults to 1s for replica-group
	// members; 0 keeps the default, negative disables.
	CertRetryEvery int64
	// CatchUpEvery is how often a follower with a detected replication
	// gap (stashed out-of-order blocks or early certificates) asks its
	// leader for the missing run. Defaults to 500ms for replica-group
	// members; 0 keeps the default, negative disables.
	CatchUpEvery int64
	// MaxUncertified sheds client writes while more than this many cut
	// blocks await certification — explicit backpressure instead of an
	// unbounded uncertified backlog when the cloud link degrades. 0
	// disables shedding.
	MaxUncertified int
	// BatchSize is the entries per block (the paper's batch size B).
	BatchSize int
	// FlushEvery force-cuts a partial block after this many idle
	// nanoseconds; 0 disables flushing.
	FlushEvery int64
	// L0Threshold is the number of certified, uncompacted blocks that
	// triggers an L0 -> L1 merge (the paper's level-0 page threshold).
	L0Threshold int
	// LevelThresholds are the page budgets of levels 1..n.
	LevelThresholds []int
	// PageCap is the records-per-page target for merged pages.
	PageCap int
	// ReserveTTL bounds how long a reserved log position stays open.
	ReserveTTL int64
	// FullDataCert ships full block bodies with certification requests
	// instead of digests only — the ablation disabling the paper's
	// data-free coordination (used to quantify its savings).
	FullDataCert bool
	// SyncEvery batches block durability (group commit): blocks persisted
	// within this window share one fsync, and their Phase I
	// acknowledgements and certification requests are withheld until the
	// shared sync completes — so nothing is ever acknowledged before it
	// is durable. 0 fsyncs inline per block.
	SyncEvery int64
	// CertBatch, when > 1, batches certification requests: up to CertBatch
	// contiguous cut blocks ship to the cloud as one signed
	// BlockCertifyBatch instead of individual BlockCertify messages,
	// amortizing the signature (and the cloud's verification) across the
	// run. Partial runs flush on the next Tick. Ignored — per-block
	// certifies are kept — under FullDataCert, group commit, or fault
	// injection (see certBatching). 0 or 1 disables.
	CertBatch int
	// SerialCrypto reproduces the pre-pipeline hot path — one signature
	// per (client, kind) responder instead of one shared block-ack
	// signature. Only the P1 before/after benchmark sets it.
	SerialCrypto bool
	// NoL0Prune disables exclusion-summary pruning of read evidence:
	// every get and scan re-ships the whole uncompacted L0 window in
	// full, as before PR 5. Only the E1 before/after benchmark sets it.
	NoL0Prune bool
	// Fault, when non-nil, makes the node byzantine. See Fault.
	Fault *Fault
	// Logger receives operational events; nil disables logging.
	Logger *olog.Logger
	// Metrics, when non-nil, is the registry this node's series live in
	// (shared by a process or a sim world). Setting it also enables the
	// timing histograms — serve latency, trust lag, block sizes — that
	// the counters-only default skips. Counters back Stats() either way.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Chain == "" {
		c.Chain = c.ID
	}
	if c.Follower && c.Leader == "" {
		c.Leader = c.Chain
	}
	if c.HeartbeatEvery <= 0 && (c.Follower || len(c.Followers) > 0) {
		c.HeartbeatEvery = int64(2e8)
	}
	grouped := c.Follower || len(c.Followers) > 0
	if c.CertRetryEvery == 0 && grouped {
		c.CertRetryEvery = int64(1e9)
	}
	if c.CertRetryEvery < 0 {
		c.CertRetryEvery = 0
	}
	if c.CatchUpEvery == 0 && grouped {
		c.CatchUpEvery = int64(5e8)
	}
	if c.CatchUpEvery < 0 {
		c.CatchUpEvery = 0
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.L0Threshold <= 0 {
		c.L0Threshold = 10
	}
	if len(c.LevelThresholds) == 0 {
		c.LevelThresholds = []int{10, 100, 1000}
	}
	if c.PageCap <= 0 {
		c.PageCap = c.BatchSize
	}
	if c.ReserveTTL <= 0 {
		c.ReserveTTL = int64(5e9)
	}
}

// Validate rejects configurations that would misbehave silently at
// runtime. It checks the raw (pre-fill) values, so explicit nonsense
// fails loudly while zero values keep their documented defaults.
func (c *Config) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("edge: config: ID must be set")
	}
	if c.Follower && c.ID == c.Chain && c.Chain != "" {
		return fmt.Errorf("edge: config: follower %q cannot follow its own chain identity", c.ID)
	}
	for _, f := range c.Followers {
		if f == c.ID {
			return fmt.Errorf("edge: config: node %q lists itself as a follower", c.ID)
		}
	}
	if c.Follower && len(c.Followers) > 0 {
		return fmt.Errorf("edge: config: a follower cannot have followers of its own")
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("edge: config: BatchSize must be >= 0, got %d", c.BatchSize)
	}
	if c.FlushEvery < 0 {
		return fmt.Errorf("edge: config: FlushEvery must be >= 0, got %d", c.FlushEvery)
	}
	if c.HeartbeatEvery < 0 {
		return fmt.Errorf("edge: config: HeartbeatEvery must be >= 0, got %d", c.HeartbeatEvery)
	}
	if c.MaxUncertified < 0 {
		return fmt.Errorf("edge: config: MaxUncertified must be >= 0, got %d", c.MaxUncertified)
	}
	if c.CertBatch < 0 {
		return fmt.Errorf("edge: config: CertBatch must be >= 0, got %d", c.CertBatch)
	}
	return nil
}

// reqInfo remembers which client submitted the entry at a log position and
// through which interface, so block cut can route the right response kind.
type reqInfo struct {
	client wire.NodeID
	isPut  bool
}

// Node is an edge node state machine. Not safe for concurrent use; the
// transport serializes calls.
type Node struct {
	cfg Config
	key wcrypto.KeyPair
	reg *wcrypto.Registry
	log *wlog.Log
	idx *mlsm.Index

	reqs         reqRing              // log position -> submitter (flat ring, no map)
	blockClients bidRing[reqInfo]     // bid -> distinct (client, kind) to notify
	readWaiters  bidRing[wire.NodeID] // bid -> clients awaiting a forwarded proof
	l0From       uint64               // first uncompacted block id
	mergeBusy    bool
	nextReq      uint64
	lastArrival  int64
	store        *wlog.Store // nil = in-memory only

	// Group commit (SyncEvery > 0): outputs of persisted-but-unsynced
	// blocks, withheld until the shared fsync.
	pendingAcks  []wire.Envelope
	pendingSince int64

	// Replica-group state. follower and leader track the node's current
	// role under the chain's latest leadership epoch; killed simulates a
	// crashed process (the node answers nothing).
	follower bool
	leader   wire.NodeID
	epoch    uint64
	killed   bool
	lastHB   int64
	// Follower-side mirroring: out-of-order replicated blocks and early
	// certificates waiting for their block, plus the leader's replication
	// signature per installed block — the convicting evidence if the
	// mirrored digest ever contradicts the cloud's certificate.
	pendingRepl  map[uint64]*wire.ReplicateBlock
	pendingCerts map[uint64]wire.BlockProof
	replSigs     map[uint64][]byte
	// poisoned marks mirrored blocks whose digest a cloud certificate
	// contradicted (the leader equivocated on the replication stream).
	// Their honest content is unrecoverable here, so a promoted successor
	// must never re-certify or vouch for them.
	poisoned map[uint64]bool

	// accused tracks block ids this follower has already filed a
	// conviction dispute for. Certificates and replicated duplicates can
	// be redelivered indefinitely (gossip, leader retries); re-filing on
	// each redelivery would flood the cloud with identical evidence.
	accused map[uint64]bool

	// Self-healing timers. certStallSince tracks how long the certified
	// frontier (lastCertFrontier) has been stuck with an uncertified
	// backlog — the leader's stall-gated cert retry trigger. lastCatchUp
	// rate-limits a follower's gap-driven catch-up requests.
	lastCertFrontier uint64
	certStallSince   int64
	lastCatchUp      int64
	lastShedLog      int64

	// Certification batching (certbatch.go): the contiguous run of cut
	// blocks awaiting one batched certify request, plus recently received
	// cloud certificate batches retained per covered bid — batch-covered
	// log certificates carry no individual CloudSig, so the batch itself
	// is the verifiable proof the read path hands to clients.
	certPendStart   uint64
	certPendDigests [][]byte
	certBatches     map[uint64]*wire.BlockCertBatch
	certBatchOrder  []uint64

	// lastOverload rate-limits the signed Overloaded shed signal per
	// client: a shed batch triggers one signature, not one per entry.
	// Keyed by registered client identity, so growth is bounded by the
	// registry; cleared wholesale if it ever exceeds overloadMapCap.
	lastOverload map[wire.NodeID]int64

	// m holds the registry-backed counters and histograms; Stats() is a
	// snapshot of its counters.
	m *metrics
}

// Stats is a point-in-time snapshot of the node's operational
// counters, read atomically from the metrics registry — safe to call
// from any goroutine while the node runs.
type Stats struct {
	Writes       uint64
	BlocksCut    uint64
	Certified    uint64
	Reads        uint64
	Gets         uint64
	Scans        uint64
	Merges       uint64
	BytesToCloud uint64
	// Robustness counters: writes shed by the MaxUncertified
	// backpressure cap, stall-gated certification retries, and catch-up
	// requests issued while recovering a replication gap.
	Shed        uint64
	CertRetries uint64
	CatchUps    uint64
	// ShedSignals counts signed Overloaded messages sent to clients —
	// at most one per client per retry-after window, however many
	// entries were shed behind it.
	ShedSignals uint64
	// Truncated counts blocks discarded from the uncertified tail on
	// demotion — divergent or abandoned history replaced by catch-up.
	Truncated uint64
}

// New constructs an in-memory edge node with the given key and registry.
func New(cfg Config, key wcrypto.KeyPair, reg *wcrypto.Registry) *Node {
	cfg.fill()
	n := &Node{
		cfg:      cfg,
		key:      key,
		reg:      reg,
		log:      wlog.New(cfg.Chain, cfg.BatchSize),
		idx:      mlsm.NewIndex(cfg.LevelThresholds),
		follower: cfg.Follower,
		leader:   cfg.ID,
		m:        newMetrics(cfg.Metrics, string(cfg.ID)),
	}
	if cfg.Follower {
		n.leader = cfg.Leader
		n.pendingRepl = make(map[uint64]*wire.ReplicateBlock)
		n.pendingCerts = make(map[uint64]wire.BlockProof)
		n.replSigs = make(map[uint64][]byte)
		n.poisoned = make(map[uint64]bool)
	}
	return n
}

// NewPersistent constructs an edge node whose log is durably stored under
// dataDir, recovering any previously committed blocks and certificates.
// Recovered state is verified (digests recomputed, certificate signatures
// checked), so a tampered store fails loudly instead of serving divergent
// history. The LSMerkle levels are not persisted: they are rederivable
// from the log via the cloud's merge service, matching the paper's model
// where the cloud is the index's authority.
func NewPersistent(cfg Config, key wcrypto.KeyPair, reg *wcrypto.Registry, dataDir string, durable bool) (*Node, int, error) {
	n := New(cfg, key, reg)
	log, store, blocks, _, err := wlog.Recover(dataDir, n.cfg.Chain, n.cfg.BatchSize, reg, n.cfg.Cloud)
	if err != nil {
		return nil, 0, err
	}
	n.log = log
	n.store = store
	// Recovered blocks were acknowledged in a previous life; start the
	// request ring at the log's frontier so it never spans cut history,
	// and the bid rings at the certified frontier — blocks behind it can
	// never register waiters.
	n.reqs.advance(log.NextPos())
	if ct, ok := log.CertifiedThrough(); ok {
		n.blockClients.advanceTo(ct + 1)
		n.readWaiters.advanceTo(ct + 1)
	}
	return n, blocks, nil
}

// CloseStore flushes and closes the persistent store, if any. A final
// group-commit sync covers records still inside the flush window.
func (n *Node) CloseStore() error {
	if n.store == nil {
		return nil
	}
	if err := n.store.Sync(); err != nil {
		n.store.Close()
		return err
	}
	return n.store.Close()
}

// ID implements core.Handler.
func (n *Node) ID() wire.NodeID { return n.cfg.ID }

// StoreSyncs reports the fsyncs issued by the persistent store (0 for
// in-memory nodes) — the denominator of group-commit amortization.
func (n *Node) StoreSyncs() uint64 {
	if n.store == nil {
		return 0
	}
	return n.store.Syncs()
}

// Log exposes the underlying log for tests and local measurement.
func (n *Node) Log() *wlog.Log { return n.log }

// Index exposes the LSMerkle index for tests and local measurement.
func (n *Node) Index() *mlsm.Index { return n.idx }

// Stats returns a consistent-enough snapshot of the node's counters.
// Each field is an atomic load, so polling mid-run from another
// goroutine (benches, scrapers) is race-free.
func (n *Node) Stats() Stats {
	return Stats{
		Writes:       n.m.writes.Value(),
		BlocksCut:    n.m.blocksCut.Value(),
		Certified:    n.m.certified.Value(),
		Reads:        n.m.reads.Value(),
		Gets:         n.m.gets.Value(),
		Scans:        n.m.scans.Value(),
		Merges:       n.m.merges.Value(),
		BytesToCloud: n.m.bytesToCloud.Value(),
		Shed:         n.m.shed.Value(),
		CertRetries:  n.m.certRetries.Value(),
		CatchUps:     n.m.catchUps.Value(),
		ShedSignals:  n.m.shedSignals.Value(),
		Truncated:    n.m.truncated.Value(),
	}
}

// L0From returns the first uncompacted block id.
func (n *Node) L0From() uint64 { return n.l0From }

// SetL0Threshold changes the L0 merge trigger at runtime — a bench/test
// hook (the E1 evidence experiment compacts a preload with a normal
// threshold, then raises it so a controlled uncompacted window can
// accumulate). Must be called on the node's transport goroutine.
func (n *Node) SetL0Threshold(v int) {
	if v > 0 {
		n.cfg.L0Threshold = v
	}
}

func (n *Node) logf(msg string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Info(msg, args...)
	}
}

// Receive implements core.Handler. env.Verified marks signatures already
// checked by a trusted verification stage (wcrypto.VerifyPool) in front of
// this node; handlers then skip only the signature re-check — every
// structural check still runs here.
func (n *Node) Receive(now int64, env wire.Envelope) []wire.Envelope {
	if n.killed {
		return nil
	}
	switch m := env.Msg.(type) {
	case *wire.AddRequest:
		return n.handleWrite(now, env.From, m.Entry, false, env.Verified)
	case *wire.PutRequest:
		return n.handleWrite(now, env.From, m.Entry, true, env.Verified)
	case *wire.PutBatch:
		verified := env.Verified
		if len(m.BatchSig) > 0 {
			// Session-signed batch: the signer must BE the sender.
			// Entries are accepted on the batch signature alone, so
			// binding m.Client to the envelope sender (plus the
			// per-entry e.Client == from check below) is what stops a
			// registered client from forging writes attributed to
			// another identity. This structural check runs even for
			// pool-verified envelopes — the pool only checks signatures.
			if m.Client != env.From {
				n.logf("rejecting batch signed by a different identity", "from", env.From, "signer", m.Client)
				return nil
			}
			if !verified {
				if err := wcrypto.VerifyMsg(n.reg, m.Client, m, m.BatchSig); err != nil {
					n.logf("rejecting batch with bad session signature", "client", env.From, "err", err)
					return nil
				}
				verified = true
			}
		}
		var out []wire.Envelope
		for i := range m.Entries {
			isPut := len(m.Entries[i].Key) > 0
			out = append(out, n.handleWrite(now, env.From, m.Entries[i], isPut, verified)...)
		}
		return out
	case *wire.ReadRequest:
		if !n.m.enabled {
			return n.handleRead(now, env.From, m)
		}
		t0 := time.Now()
		out := n.handleRead(now, env.From, m)
		n.m.serveRead.Observe(time.Since(t0).Seconds())
		return out
	case *wire.GetRequest:
		if !n.m.enabled {
			return n.handleGet(now, env.From, m)
		}
		t0 := time.Now()
		out := n.handleGet(now, env.From, m)
		n.m.serveGet.Observe(time.Since(t0).Seconds())
		return out
	case *wire.ScanRequest:
		if !n.m.enabled {
			return n.handleScan(now, env.From, m)
		}
		t0 := time.Now()
		out := n.handleScan(now, env.From, m)
		n.m.serveScan.Observe(time.Since(t0).Seconds())
		return out
	case *wire.ReserveRequest:
		return n.handleReserve(now, env.From, m, env.Verified)
	case *wire.BlockProof:
		return n.handleProof(now, env.From, m, env.Verified)
	case *wire.BlockCertBatch:
		return n.handleCertBatch(now, env.From, m, env.Verified)
	case *wire.MergeResponse:
		return n.handleMergeResponse(now, env.From, m, env.Verified)
	case *wire.ReplicateBlock:
		return n.handleReplicate(now, env.From, m, env.Verified)
	case *wire.LeadershipTransfer:
		return n.handleTransfer(now, env.From, m, env.Verified)
	case *wire.CatchUpRequest:
		return n.handleCatchUpRequest(now, env.From, m, env.Verified)
	case *wire.CatchUpBlocks:
		return n.handleCatchUpBlocks(now, env.From, m)
	case *wire.GroupJoin:
		return n.handleGroupJoin(now, env.From, m, env.Verified)
	case *wire.Gossip:
		// Client-facing freshness gossip; a follower additionally reads
		// it as a trusted statement of the chain's certified frontier and
		// starts catching up when its mirror has fallen behind.
		return n.handleGossip(now, env.From, m, env.Verified)
	case *wire.Ping:
		return []wire.Envelope{{From: n.cfg.ID, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	default:
		return nil
	}
}

// Tick implements core.Handler: release group-commit acknowledgements
// whose sync window elapsed, and flush partial blocks that have waited
// past FlushEvery.
func (n *Node) Tick(now int64) []wire.Envelope {
	if n.killed {
		return nil
	}
	var out []wire.Envelope
	if len(n.pendingAcks) > 0 && now-n.pendingSince >= n.cfg.SyncEvery {
		out = append(out, n.flushPending()...)
	}
	if n.cfg.FlushEvery > 0 && n.log.BufferLen() > 0 && now-n.lastArrival >= n.cfg.FlushEvery {
		if blk := n.log.TryCut(now, true); blk != nil {
			out = append(out, n.emitBlock(now, blk)...)
		}
	}
	if n.cfg.HeartbeatEvery > 0 && now-n.lastHB >= n.cfg.HeartbeatEvery {
		n.lastHB = now
		out = append(out, n.heartbeat(now))
	}
	out = append(out, n.tickHealing(now)...)
	// A partial certify run waits at most one tick.
	out = append(out, n.flushCertifyRun()...)
	return out
}

// tickHealing runs the self-healing timers: the leader's stall-gated
// certification retry and the follower's gap-driven catch-up.
func (n *Node) tickHealing(now int64) []wire.Envelope {
	var out []wire.Envelope
	if !n.follower && n.cfg.CertRetryEvery > 0 &&
		(n.cfg.Fault == nil || !n.cfg.Fault.DropCertify) {
		var frontier uint64
		if ct, ok := n.log.CertifiedThrough(); ok {
			frontier = ct + 1
		}
		if frontier >= n.log.NumBlocks() || frontier != n.lastCertFrontier {
			// No backlog, or the frontier moved: (re)arm the stall timer.
			n.lastCertFrontier = frontier
			n.certStallSince = now
		} else if now-n.certStallSince >= n.cfg.CertRetryEvery {
			// The backlog is stuck: the certify request or its proof was
			// lost. Re-submit the whole uncertified tail — the cloud
			// answers already-certified digests with the cached proof, so
			// duplicates heal lost proofs instead of causing conflicts.
			n.certStallSince = now
			if retry := n.certifyTail(now); len(retry) > 0 {
				n.m.certRetries.Inc()
				n.logf("certification stalled; retrying uncertified tail",
					"frontier", frontier, "blocks", n.log.NumBlocks())
				out = append(out, retry...)
			}
		}
	}
	if n.follower && n.leader != "" && n.cfg.CatchUpEvery > 0 &&
		(len(n.pendingRepl) > 0 || len(n.pendingCerts) > 0) &&
		now-n.lastCatchUp >= n.cfg.CatchUpEvery {
		out = append(out, n.requestCatchUp(now, n.log.NumBlocks()))
	}
	return out
}

// handleWrite processes add() and put(). The entry must be signed by a
// known client; invalid or replayed entries are dropped (the client's
// timeout machinery owns retries, mirroring the paper's idempotence
// discussion).
func (n *Node) handleWrite(now int64, from wire.NodeID, e wire.Entry, isPut, verified bool) []wire.Envelope {
	if n.follower || e.Client != from {
		return nil
	}
	if n.cfg.MaxUncertified > 0 {
		var frontier uint64
		if ct, ok := n.log.CertifiedThrough(); ok {
			frontier = ct + 1
		}
		if n.log.NumBlocks()-frontier >= uint64(n.cfg.MaxUncertified) {
			// Backpressure: the uncertified backlog says the cloud link is
			// degraded. Shedding (not buffering) keeps the Phase I promise
			// honest — nothing is acknowledged that certification cannot
			// chase — and the client's retry/ErrUnavailable machinery turns
			// the silence into a typed, bounded failure.
			n.m.shed.Inc()
			if now-n.lastShedLog >= int64(1e9) {
				n.lastShedLog = now
				n.logf("shedding writes: uncertified backlog at cap",
					"backlog", n.log.NumBlocks()-frontier, "cap", n.cfg.MaxUncertified, "shed", n.m.shed.Value())
			}
			return n.shedSignal(now, from, e.Seq, n.log.NumBlocks()-frontier)
		}
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, e.Client, &e, e.Sig); err != nil {
			n.logf("rejecting write with bad signature", "client", from, "err", err)
			return nil
		}
	}
	pos, err := n.log.Append(e, now)
	if err != nil {
		if errors.Is(err, wlog.ErrDuplicateEntry) {
			// Post-failover resend (or a plain client retry): the entry is
			// already in the log — committed by this node or inherited from
			// the previous leader — so re-acknowledge from the block that
			// holds it instead of leaving the client to time out.
			return n.reackDuplicate(from, e, isPut)
		}
		n.logf("rejecting write", "client", from, "err", err)
		return nil
	}
	n.m.writes.Inc()
	n.lastArrival = now
	n.reqs.set(pos, reqInfo{client: e.Client, isPut: isPut})
	blk := n.log.TryCut(now, false)
	if blk == nil {
		return nil
	}
	return n.emitBlock(now, blk)
}

// overloadMapCap bounds the per-client shed rate-limit map; exceeding it
// clears the map wholesale (the cost is one extra signal per client).
const overloadMapCap = 4096

// shedSignal turns a silent write drop into an explicit, signed admission
// signal: the client learns which operation was shed (Seq echo), how deep
// the uncertified backlog is, and when certification progress should
// reopen admission, and paces its retries by the hint instead of probing
// blind. At most one signal is signed per client per retry-after window —
// a shed 1000-entry batch costs one signature — and the client applies the
// backoff to every write it has in flight here, so per-entry signals would
// be redundant.
func (n *Node) shedSignal(now int64, client wire.NodeID, seq, backlog uint64) []wire.Envelope {
	hint := n.cfg.CertRetryEvery
	if hint <= 0 {
		hint = int64(1e8)
	}
	if n.lastOverload == nil {
		n.lastOverload = make(map[wire.NodeID]int64)
	} else if len(n.lastOverload) > overloadMapCap {
		n.lastOverload = make(map[wire.NodeID]int64)
	}
	if last, ok := n.lastOverload[client]; ok && now-last < hint {
		return nil
	}
	n.lastOverload[client] = now
	n.m.shedSignals.Inc()
	m := &wire.Overloaded{Seq: seq, RetryAfter: hint, Backlog: backlog}
	m.EdgeSig = wcrypto.SignMsg(n.key, m)
	return []wire.Envelope{{From: n.cfg.ID, To: client, Msg: m}}
}

// emitBlock persists a freshly cut block and produces its Phase I
// responses plus the data-free certification request. Under group commit
// (SyncEvery > 0) the outputs are withheld until the shared fsync covers
// the block, so nothing reaches a client or the cloud before durability.
func (n *Node) emitBlock(now int64, blk *wire.Block) []wire.Envelope {
	n.m.blocksCut.Inc()
	n.m.markCut(blk.ID, now, len(blk.Entries))
	if f := n.cfg.Fault; f != nil && f.KillMidBatch && blk.ID >= f.KillAtBID {
		// Crash fault: the block was cut but the node dies before
		// persisting, acknowledging, replicating or certifying it.
		n.killed = true
		return nil
	}
	if n.store == nil || n.cfg.SyncEvery <= 0 {
		if n.store != nil {
			if err := n.store.AppendBlock(blk); err != nil {
				// Durability failed: acknowledge nothing. Clients' timeout
				// machinery owns retries; an unacknowledged block is safe.
				n.logf("persist failed; withholding acknowledgements", "bid", blk.ID, "err", err)
				return nil
			}
		}
		return n.blockOutputs(now, blk)
	}
	// Group commit: buffer the record and withhold outputs for the window.
	if err := n.store.AppendBlockBuffered(blk); err != nil {
		n.logf("persist failed; withholding acknowledgements", "bid", blk.ID, "err", err)
		return nil
	}
	if len(n.pendingAcks) == 0 {
		n.pendingSince = now
	}
	n.pendingAcks = append(n.pendingAcks, n.blockOutputs(now, blk)...)
	if now-n.pendingSince >= n.cfg.SyncEvery {
		return n.flushPending()
	}
	return nil
}

// flushPending issues the shared group-commit fsync and releases every
// acknowledgement it covers. On sync failure the acknowledgements are
// dropped — exactly the per-block failure semantics, batched.
func (n *Node) flushPending() []wire.Envelope {
	if len(n.pendingAcks) == 0 {
		return nil
	}
	if err := n.store.Sync(); err != nil {
		n.logf("group-commit sync failed; withholding acknowledgements", "err", err)
		n.pendingAcks = nil
		return nil
	}
	out := n.pendingAcks
	n.pendingAcks = nil
	return out
}

// blockOutputs builds the Phase I responses and certification request for
// a cut (and persisted) block.
func (n *Node) blockOutputs(now int64, blk *wire.Block) []wire.Envelope {
	// Group responders: one response per (client, kind) pair. Distinct
	// pairs are few (bounded by active clients), so a linear scan over
	// the responders slice dedups without the former per-flush map.
	responders := make([]reqInfo, 0, 8)
	for i := range blk.Entries {
		info, ok := n.reqs.take(blk.StartPos + uint64(i))
		if !ok {
			continue // reservation no-op
		}
		dup := false
		for _, r := range responders {
			if r == info {
				dup = true
				break
			}
		}
		if !dup {
			responders = append(responders, info)
		}
	}
	n.reqs.advance(blk.StartPos + uint64(len(blk.Entries)))
	n.blockClients.set(blk.ID, responders)

	digest, err := n.log.Digest(blk.ID)
	if err != nil {
		panic(fmt.Sprintf("edge: freshly cut block has no digest: %v", err))
	}

	// Amortized, size-independent signing: AddResponse and PutResponse
	// share a byte-identical signable body (BID + block digest), so the
	// honest path signs the 44-byte acknowledgement body once — over the
	// digest already cached at block cut — and every responder carries
	// the same signature regardless of block size. Faulty nodes tamper
	// per victim and therefore sign per responder (the generic path
	// recomputes the tampered digest); the SerialCrypto A/B baseline
	// reproduces the legacy per-responder full-body signature.
	var sharedSig []byte
	if n.cfg.Fault == nil && !n.cfg.SerialCrypto && len(responders) > 0 {
		sharedSig = wcrypto.SignBlockAck(n.key, blk.ID, digest)
	}

	var out []wire.Envelope
	for _, r := range responders {
		sendBlk := *blk
		if n.cfg.Fault != nil {
			sendBlk = n.cfg.Fault.maybeTamperAdd(r.client, sendBlk)
		}
		sig := sharedSig
		if sig == nil && n.cfg.SerialCrypto {
			sig = wcrypto.SignLegacyBlockAck(n.key, blk.ID, &sendBlk)
		}
		if r.isPut {
			resp := &wire.PutResponse{BID: blk.ID, Block: sendBlk, EdgeSig: sig}
			if sig == nil {
				resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
			}
			out = append(out, wire.Envelope{From: n.cfg.ID, To: r.client, Msg: resp})
		} else {
			resp := &wire.AddResponse{BID: blk.ID, Block: sendBlk, EdgeSig: sig}
			if sig == nil {
				resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
			}
			out = append(out, wire.Envelope{From: n.cfg.ID, To: r.client, Msg: resp})
		}
	}

	// Replica-group mirroring: every cut block streams to the followers,
	// signed with the same size-independent block-ack body the client
	// acknowledgements carry — so the stream doubles as convicting
	// evidence if this leader ever equivocates.
	out = append(out, n.replicate(blk, digest, sharedSig)...)

	// Data-free certification: only the digest travels to the cloud.
	if n.certBatching() {
		return append(out, n.queueCertify(blk.ID, digest)...)
	}
	if n.cfg.Fault == nil || !n.cfg.Fault.DropCertify {
		cert := &wire.BlockCertify{Edge: n.cfg.Chain, BID: blk.ID, Digest: digest}
		if n.cfg.FullDataCert {
			cert.Body = blk.Canonical()
		}
		cert.EdgeSig = wcrypto.SignMsg(n.key, cert)
		env := wire.Envelope{From: n.cfg.ID, To: n.cfg.Cloud, Msg: cert}
		n.m.bytesToCloud.Add(uint64(wire.EncodedSize(env)))
		out = append(out, env)
		if n.cfg.Fault != nil && n.cfg.Fault.DoubleCertify {
			// Equivocation at certify time: a second, conflicting digest.
			forged := &wire.BlockCertify{Edge: n.cfg.Chain, BID: blk.ID, Digest: wcrypto.Digest(digest)}
			forged.EdgeSig = wcrypto.SignMsg(n.key, forged)
			out = append(out, wire.Envelope{From: n.cfg.ID, To: n.cfg.Cloud, Msg: forged})
		}
	}
	return out
}

// handleProof installs the cloud's block-proof (Phase II) and forwards it
// to every client that contributed to or read the block.
func (n *Node) handleProof(now int64, from wire.NodeID, p *wire.BlockProof, verified bool) []wire.Envelope {
	if from != n.cfg.Cloud {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, p, p.CloudSig); err != nil {
			n.logf("dropping block-proof with bad cloud signature", "err", err)
			return nil
		}
	}
	if n.follower {
		// Follower path: the certificate audits the mirrored log instead of
		// upgrading acknowledged blocks — a digest mismatch convicts the
		// leader with its own replication stream.
		return n.followerApplyCert(*p)
	}
	if err := n.log.SetCert(*p); err != nil {
		n.logf("block-proof does not match local block", "bid", p.BID, "err", err)
		return nil
	}
	if n.store != nil {
		// Certificates are re-obtainable from the cloud, so under group
		// commit they ride the next shared sync instead of forcing one.
		var err error
		if n.cfg.SyncEvery > 0 {
			err = n.store.AppendCertBuffered(p)
		} else {
			err = n.store.AppendCert(p)
		}
		if err != nil {
			n.logf("persisting certificate failed", "bid", p.BID, "err", err)
		}
	}
	n.m.certified.Inc()
	n.m.markCertified(p.BID, now)
	var out []wire.Envelope
	fwd := func(to wire.NodeID) {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: to, Msg: cloneProof(p)})
	}
	for _, r := range n.blockClients.take(p.BID) {
		fwd(r.client)
	}
	for _, c := range n.readWaiters.take(p.BID) {
		fwd(c)
	}
	// Certified blocks can never register new waiters, so both rings'
	// bases chase the certified frontier — the live window stays as small
	// as the uncertified suffix.
	if ct, ok := n.log.CertifiedThrough(); ok {
		n.blockClients.advanceTo(ct + 1)
		n.readWaiters.advanceTo(ct + 1)
	}
	out = append(out, n.maybeStartMerge(now)...)
	return out
}

// handleRead serves read(bid) with the paper's three cases: not available
// (signed denial), Phase II read (block + proof), Phase I read (block, no
// proof yet; the proof is forwarded when it arrives).
func (n *Node) handleRead(now int64, from wire.NodeID, m *wire.ReadRequest) []wire.Envelope {
	if n.follower {
		return nil
	}
	n.m.reads.Inc()
	resp := &wire.ReadResponse{ReqID: m.ReqID, BID: m.BID, Ts: now}
	var batch *wire.BlockCertBatch
	blk, err := n.log.Block(m.BID)
	omit := n.cfg.Fault != nil && n.cfg.Fault.OmitBlocks[m.BID]
	if err != nil || omit {
		resp.OK = false
	} else {
		resp.OK = true
		resp.Block = *blk
		if n.cfg.Fault != nil {
			resp.Block = n.cfg.Fault.maybeTamperRead(from, resp.Block)
		}
		// An embedded proof must be individually verifiable by the client,
		// so a batch-covered certificate (empty CloudSig) cannot ride the
		// response — the covering batch ships as its own envelope instead.
		if cert, ok := n.log.Cert(m.BID); ok && len(cert.CloudSig) > 0 && !tampered(n.cfg.Fault, from) {
			resp.HasProof = true
			resp.Proof = cert
		} else if b, ok := n.certBatches[m.BID]; ok && !tampered(n.cfg.Fault, from) {
			batch = b
		} else {
			// Phase I read: remember the reader for proof forwarding.
			n.readWaiters.add(m.BID, from)
		}
	}
	if resp.OK && !tampered(n.cfg.Fault, from) {
		// Honest serve: sign with the digest cached at block cut instead
		// of re-hashing the block per read (same O(1) signing the write
		// acks use). Tampered and denial responses go through the
		// generic path so the signature matches what actually ships.
		digest, derr := n.log.Digest(m.BID)
		if derr != nil {
			panic(fmt.Sprintf("edge: served block has no digest: %v", derr))
		}
		resp.EdgeSig = wcrypto.SignReadResponse(n.key, resp, digest)
	} else {
		resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	}
	out := []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
	if batch != nil {
		// The Phase I response lands first, then the batch upgrades it —
		// the same order a forwarded proof would arrive in.
		out = append(out, wire.Envelope{From: n.cfg.ID, To: from, Msg: batch})
	}
	return out
}

// handleReserve grants log positions for the idempotence extension.
func (n *Node) handleReserve(now int64, from wire.NodeID, m *wire.ReserveRequest, verified bool) []wire.Envelope {
	if n.follower || m.Client != from {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, m.Client, m, m.ClientSig); err != nil {
			return nil
		}
	}
	start := n.log.Reserve(m.Client, int(m.Count), now+n.cfg.ReserveTTL)
	resp := &wire.ReserveResponse{ReqID: m.ReqID, Start: start, Count: m.Count}
	resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
}

// maybeStartMerge initiates at most one compaction: L0 into L1 when enough
// certified blocks accumulated, else the shallowest over-threshold level
// into its successor. The merge runs asynchronously at the cloud and does
// not block reads or writes (Section V-B).
func (n *Node) maybeStartMerge(now int64) []wire.Envelope {
	if n.mergeBusy || n.follower {
		return nil
	}
	if n.cfg.Fault != nil && n.cfg.Fault.FreezeIndex {
		return nil
	}
	// L0 -> L1.
	certThrough, ok := n.log.CertifiedThrough()
	if ok && certThrough+1 >= n.l0From+uint64(n.cfg.L0Threshold) {
		req := &wire.MergeRequest{
			Edge:      n.cfg.Chain,
			ReqID:     n.nextReqID(),
			FromLevel: 0,
			DstPages:  n.idx.Pages(1),
		}
		for bid := n.l0From; bid <= certThrough; bid++ {
			blk, err := n.log.Block(bid)
			if err != nil {
				panic(fmt.Sprintf("edge: certified block missing: %v", err))
			}
			req.L0Blocks = append(req.L0Blocks, *blk)
		}
		return n.sendMerge(req)
	}
	// Level i -> i+1.
	for lvl := 1; lvl < n.idx.Levels(); lvl++ {
		if !n.idx.OverThreshold(lvl) {
			continue
		}
		req := &wire.MergeRequest{
			Edge:      n.cfg.Chain,
			ReqID:     n.nextReqID(),
			FromLevel: uint32(lvl),
			SrcPages:  n.idx.Pages(lvl),
			DstPages:  n.idx.Pages(lvl + 1),
		}
		return n.sendMerge(req)
	}
	return nil
}

func (n *Node) sendMerge(req *wire.MergeRequest) []wire.Envelope {
	req.EdgeSig = wcrypto.SignMsg(n.key, req)
	n.mergeBusy = true
	n.m.merges.Inc()
	env := wire.Envelope{From: n.cfg.ID, To: n.cfg.Cloud, Msg: req}
	n.m.bytesToCloud.Add(uint64(wire.EncodedSize(env)))
	return []wire.Envelope{env}
}

func (n *Node) nextReqID() uint64 {
	n.nextReq++
	return n.nextReq
}

// handleMergeResponse installs the cloud's merged pages and roots, then
// cascades to the next over-threshold level if any.
func (n *Node) handleMergeResponse(now int64, from wire.NodeID, m *wire.MergeResponse, verified bool) []wire.Envelope {
	// Followers accept merge responses forwarded by their leader; the
	// cloud's signature (always re-verified on the forwarded hop, since
	// the pool checks it against the wrong sender) keeps the leader from
	// forging an install.
	if from != n.cfg.Cloud && !(n.follower && from == n.leader) {
		return nil
	}
	if !verified || from != n.cfg.Cloud {
		if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, m, m.CloudSig); err != nil {
			n.logf("dropping merge response with bad signature", "err", err)
			return nil
		}
	}
	n.mergeBusy = false
	if !m.OK {
		n.logf("cloud rejected merge", "reason", m.Reason)
		return nil
	}
	if n.cfg.Fault != nil && n.cfg.Fault.FreezeIndex {
		return nil // stale-snapshot attack: refuse to advance
	}
	target := int(m.FromLevel) + 1
	if err := n.idx.InstallLevel(target, m.NewPages, m.Roots, m.Global); err != nil {
		n.logf("merge install failed", "err", err)
		return nil
	}
	if m.FromLevel == 0 {
		n.l0From = m.ConsumedTo + 1
	} else if err := n.idx.ClearLevel(int(m.FromLevel)); err != nil {
		n.logf("clearing merged level failed", "err", err)
		return nil
	}
	var out []wire.Envelope
	if !n.follower {
		// Mirror the install: followers run the same path off the same
		// cloud-signed response, so a promoted follower starts with the
		// chain's current LSMerkle instead of an empty index.
		for _, f := range n.cfg.Followers {
			out = append(out, wire.Envelope{From: n.cfg.ID, To: f, Msg: m})
		}
	}
	return append(out, n.maybeStartMerge(now)...)
}

// cloneProof copies a proof for independent delivery.
func cloneProof(p *wire.BlockProof) *wire.BlockProof {
	cp := *p
	cp.Digest = append([]byte(nil), p.Digest...)
	cp.CloudSig = append([]byte(nil), p.CloudSig...)
	return &cp
}

func tampered(f *Fault, client wire.NodeID) bool {
	return f != nil && f.TamperReadVictim == client
}
