package edge

import (
	"bytes"
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

type fixture struct {
	node *Node
	keys map[wire.NodeID]wcrypto.KeyPair
	reg  *wcrypto.Registry
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"edge-1", "cloud", "c1", "c2"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	cfg.ID = "edge-1"
	cfg.Cloud = "cloud"
	return &fixture{node: New(cfg, keys["edge-1"], reg), keys: keys, reg: reg}
}

func (f *fixture) entry(client wire.NodeID, seq uint64, key, value string) wire.Entry {
	e := wire.Entry{Client: client, Seq: seq, Value: []byte(value)}
	if key != "" {
		e.Key = []byte(key)
	}
	e.Sig = wcrypto.SignMsg(f.keys[client], &e)
	return e
}

func (f *fixture) add(t *testing.T, now int64, client wire.NodeID, seq uint64, value string) []wire.Envelope {
	t.Helper()
	return f.node.Receive(now, wire.Envelope{
		From: client, To: "edge-1",
		Msg: &wire.AddRequest{Entry: f.entry(client, seq, "", value)},
	})
}

func kindsOf(envs []wire.Envelope) map[wire.Kind]int {
	out := map[wire.Kind]int{}
	for _, e := range envs {
		out[e.Msg.MsgKind()]++
	}
	return out
}

func TestWriteBuffersUntilBatch(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 3})
	if out := f.add(t, 1, "c1", 1, "a"); out != nil {
		t.Fatalf("first write produced output: %v", kindsOf(out))
	}
	if out := f.add(t, 2, "c1", 2, "b"); out != nil {
		t.Fatalf("second write produced output: %v", kindsOf(out))
	}
	out := f.add(t, 3, "c2", 1, "c")
	k := kindsOf(out)
	if k[wire.KindAddResponse] != 2 {
		t.Fatalf("want 2 add responses (one per client), got %v", k)
	}
	if k[wire.KindBlockCertify] != 1 {
		t.Fatalf("want 1 certify, got %v", k)
	}
}

func TestWriteRejectsBadSignature(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	e := f.entry("c1", 1, "", "data")
	e.Sig[0] ^= 1
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
	if out != nil {
		t.Fatal("forged entry accepted")
	}
	if f.node.Log().BufferLen() != 0 {
		t.Fatal("forged entry buffered")
	}
}

func TestWriteRejectsSpoofedSender(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	e := f.entry("c1", 1, "", "data")
	out := f.node.Receive(1, wire.Envelope{From: "c2", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
	if out != nil || f.node.Log().BufferLen() != 0 {
		t.Fatal("spoofed sender accepted")
	}
}

func TestCertifyIsDataFree(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	out := f.add(t, 1, "c1", 1, "payload-of-some-size-xxxxxxxxxxxxxxxxxxxxxx")
	var certify *wire.BlockCertify
	var resp *wire.AddResponse
	for _, env := range out {
		switch m := env.Msg.(type) {
		case *wire.BlockCertify:
			certify = m
		case *wire.AddResponse:
			resp = m
		}
	}
	if certify == nil || resp == nil {
		t.Fatalf("missing outputs: %v", kindsOf(out))
	}
	if len(certify.Body) != 0 {
		t.Fatal("data-free certify carried a body")
	}
	if !bytes.Equal(certify.Digest, wcrypto.BlockDigest(&resp.Block)) {
		t.Fatal("certify digest does not match the response block")
	}
	if err := wcrypto.VerifyMsg(f.reg, "edge-1", certify, certify.EdgeSig); err != nil {
		t.Fatalf("certify signature: %v", err)
	}
}

func TestFullDataCertCarriesBody(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1, FullDataCert: true})
	out := f.add(t, 1, "c1", 1, "data")
	for _, env := range out {
		if m, ok := env.Msg.(*wire.BlockCertify); ok {
			if len(m.Body) == 0 {
				t.Fatal("full-data certify has no body")
			}
			var blk wire.Block
			d := wire.NewDecoder(m.Body)
			blk.DecodeFrom(d)
			if err := d.Finish(); err != nil {
				t.Fatalf("body does not decode: %v", err)
			}
			if !bytes.Equal(wcrypto.RecomputedBlockDigest(&blk), m.Digest) {
				t.Fatal("body does not recompute to digest")
			}
			return
		}
	}
	t.Fatal("no certify emitted")
}

func (f *fixture) certifyBlock(t *testing.T, bid uint64) *wire.BlockProof {
	t.Helper()
	digest, err := f.node.Log().Digest(bid)
	if err != nil {
		t.Fatal(err)
	}
	p := &wire.BlockProof{Edge: "edge-1", BID: bid, Digest: digest}
	p.CloudSig = wcrypto.SignMsg(f.keys["cloud"], p)
	return p
}

func TestProofForwardedToBlockClients(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 2, L0Threshold: 100})
	f.add(t, 1, "c1", 1, "a")
	f.add(t, 2, "c2", 1, "b")
	out := f.node.Receive(3, wire.Envelope{From: "cloud", To: "edge-1", Msg: f.certifyBlock(t, 0)})
	k := kindsOf(out)
	if k[wire.KindBlockProof] != 2 {
		t.Fatalf("proof forwarded to %d clients, want 2 (%v)", k[wire.KindBlockProof], k)
	}
	if _, ok := f.node.Log().Cert(0); !ok {
		t.Fatal("cert not installed")
	}
}

func TestProofFromNonCloudIgnored(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	f.add(t, 1, "c1", 1, "a")
	p := f.certifyBlock(t, 0)
	out := f.node.Receive(2, wire.Envelope{From: "c2", To: "edge-1", Msg: p})
	if out != nil {
		t.Fatal("proof from non-cloud processed")
	}
}

func TestReadThreeCases(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	f.add(t, 1, "c1", 1, "a")

	// Case: Phase I read (no proof yet).
	out := f.node.Receive(2, wire.Envelope{From: "c2", To: "edge-1", Msg: &wire.ReadRequest{BID: 0, ReqID: 1}})
	resp := out[0].Msg.(*wire.ReadResponse)
	if !resp.OK || resp.HasProof {
		t.Fatalf("phase-I read = %+v", resp)
	}

	// Certify; the waiting reader receives the forwarded proof.
	out = f.node.Receive(3, wire.Envelope{From: "cloud", To: "edge-1", Msg: f.certifyBlock(t, 0)})
	forwarded := 0
	for _, env := range out {
		if env.Msg.MsgKind() == wire.KindBlockProof && env.To == "c2" {
			forwarded++
		}
	}
	if forwarded != 1 {
		t.Fatalf("proof not forwarded to phase-I reader (outputs %v)", kindsOf(out))
	}

	// Case: Phase II read.
	out = f.node.Receive(4, wire.Envelope{From: "c2", To: "edge-1", Msg: &wire.ReadRequest{BID: 0, ReqID: 2}})
	resp = out[0].Msg.(*wire.ReadResponse)
	if !resp.OK || !resp.HasProof {
		t.Fatalf("phase-II read = %+v", resp)
	}

	// Case: not available (signed denial).
	out = f.node.Receive(5, wire.Envelope{From: "c2", To: "edge-1", Msg: &wire.ReadRequest{BID: 99, ReqID: 3}})
	resp = out[0].Msg.(*wire.ReadResponse)
	if resp.OK {
		t.Fatal("missing block served")
	}
	if err := wcrypto.VerifyMsg(f.reg, "edge-1", resp, resp.EdgeSig); err != nil {
		t.Fatalf("denial not signed: %v", err)
	}
}

func TestL0MergeStartsAfterThreshold(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1, L0Threshold: 2, LevelThresholds: []int{2, 4}})
	f.add(t, 1, "c1", 1, "a")
	out := f.node.Receive(2, wire.Envelope{From: "cloud", To: "edge-1", Msg: f.certifyBlock(t, 0)})
	if kindsOf(out)[wire.KindMergeRequest] != 0 {
		t.Fatal("merge started below threshold")
	}
	f.add(t, 3, "c1", 2, "b")
	out = f.node.Receive(4, wire.Envelope{From: "cloud", To: "edge-1", Msg: f.certifyBlock(t, 1)})
	var merge *wire.MergeRequest
	for _, env := range out {
		if m, ok := env.Msg.(*wire.MergeRequest); ok {
			merge = m
		}
	}
	if merge == nil {
		t.Fatalf("no merge at threshold: %v", kindsOf(out))
	}
	if merge.FromLevel != 0 || len(merge.L0Blocks) != 2 {
		t.Fatalf("merge = from %d with %d blocks", merge.FromLevel, len(merge.L0Blocks))
	}
	// No second merge while one is in flight.
	f.add(t, 5, "c1", 3, "c")
	out = f.node.Receive(6, wire.Envelope{From: "cloud", To: "edge-1", Msg: f.certifyBlock(t, 2)})
	if kindsOf(out)[wire.KindMergeRequest] != 0 {
		t.Fatal("second merge while busy")
	}
}

func TestTamperBlockKeepsVictimEntry(t *testing.T) {
	blk := wire.Block{
		Edge: "edge-1", ID: 0,
		Entries: []wire.Entry{
			{Client: "victim", Seq: 1, Value: []byte("mine")},
			{Client: "other", Seq: 1, Value: []byte("theirs")},
		},
	}
	out := tamperBlock(blk, "victim")
	if !bytes.Equal(out.Entries[0].Value, []byte("mine")) {
		t.Fatal("victim entry altered — the lie would be detected immediately")
	}
	if bytes.Equal(out.Entries[1].Value, []byte("theirs")) {
		t.Fatal("nothing altered — not a lie")
	}
	if bytes.Equal(wcrypto.BlockDigest(&blk), wcrypto.BlockDigest(&out)) {
		t.Fatal("digest unchanged")
	}
	// Original must be untouched.
	if !bytes.Equal(blk.Entries[1].Value, []byte("theirs")) {
		t.Fatal("tamperBlock mutated the input")
	}
}

func TestTamperBlockAllVictimEntriesAppends(t *testing.T) {
	blk := wire.Block{
		Edge: "edge-1", ID: 0,
		Entries: []wire.Entry{{Client: "victim", Seq: 1, Value: []byte("mine")}},
	}
	out := tamperBlock(blk, "victim")
	if len(out.Entries) != 2 {
		t.Fatalf("entries = %d, want forged appendix", len(out.Entries))
	}
}

func TestReserveGrantsPositions(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 4})
	req := &wire.ReserveRequest{Client: "c1", Count: 2, ReqID: 7}
	req.ClientSig = wcrypto.SignMsg(f.keys["c1"], req)
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: req})
	resp := out[0].Msg.(*wire.ReserveResponse)
	if resp.Start != 0 || resp.Count != 2 || resp.ReqID != 7 {
		t.Fatalf("grant = %+v", resp)
	}
	if err := wcrypto.VerifyMsg(f.reg, "edge-1", resp, resp.EdgeSig); err != nil {
		t.Fatalf("grant unsigned: %v", err)
	}
}

func TestFlushTickCutsPartialBlock(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 10, FlushEvery: 100})
	f.add(t, 1000, "c1", 1, "only")
	if out := f.node.Tick(1050); out != nil {
		t.Fatal("flushed before interval")
	}
	out := f.node.Tick(1200)
	if kindsOf(out)[wire.KindAddResponse] != 1 {
		t.Fatalf("flush outputs = %v", kindsOf(out))
	}
}

func TestPutBatchCutsAlignedBlock(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 3})
	batch := &wire.PutBatch{}
	for i := uint64(1); i <= 3; i++ {
		batch.Entries = append(batch.Entries, f.entry("c1", i, "k", "v"))
	}
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: batch})
	k := kindsOf(out)
	if k[wire.KindPutResponse] != 1 || k[wire.KindBlockCertify] != 1 {
		t.Fatalf("batch outputs = %v", k)
	}
	if f.node.Log().NumBlocks() != 1 {
		t.Fatalf("blocks = %d", f.node.Log().NumBlocks())
	}
}

func TestShedEmitsSignedOverloadSignal(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1, MaxUncertified: 1})
	// One write cuts one block; with nothing certified the backlog sits
	// at the cap and the next write must be shed.
	f.add(t, 1, "c1", 1, "a")

	out := f.add(t, 2, "c1", 2, "b")
	if kindsOf(out)[wire.KindOverloaded] != 1 {
		t.Fatalf("shed write answered with %v, want one Overloaded", kindsOf(out))
	}
	m := out[0].Msg.(*wire.Overloaded)
	if m.Seq != 2 || m.Backlog != 1 || m.RetryAfter <= 0 {
		t.Fatalf("signal = %+v", m)
	}
	if err := wcrypto.VerifyMsg(f.reg, "edge-1", m, m.EdgeSig); err != nil {
		t.Fatalf("overload signal unsigned: %v", err)
	}

	// Within the retry-after window the same client is rate-limited: a
	// shed burst costs one signature, not one per entry.
	if out := f.add(t, 3, "c1", 3, "c"); out != nil {
		t.Fatalf("second shed in window produced %v, want silence", kindsOf(out))
	}
	// A different client gets its own signal.
	if out := f.add(t, 4, "c2", 1, "d"); kindsOf(out)[wire.KindOverloaded] != 1 {
		t.Fatalf("second client got %v, want its own Overloaded", kindsOf(out))
	}
	// After the window elapses the first client is signalled again.
	if out := f.add(t, 2+m.RetryAfter, "c1", 4, "e"); kindsOf(out)[wire.KindOverloaded] != 1 {
		t.Fatalf("post-window shed got %v, want a fresh Overloaded", kindsOf(out))
	}
	if got := f.node.Stats().ShedSignals; got != 3 {
		t.Fatalf("ShedSignals = %d, want 3", got)
	}
}
