package edge

import (
	"bytes"

	"wedgechain/internal/mlsm"
	"wedgechain/internal/wire"
)

// Fault makes an edge node byzantine. Each hook models one of the
// malicious behaviours the paper's threat analysis considers (Section
// IV-E); the honest code path consults the hooks and lies accordingly.
// Every lie is constructed so the victim's immediate verification passes —
// the dishonesty is only detectable through lazy certification, which is
// exactly the property the tests demonstrate.
type Fault struct {
	// TamperAddVictim: add/put responses to this client carry a block
	// whose other entries were altered. The victim's own entry is kept
	// intact so Phase I verification succeeds; the lie surfaces when the
	// certified digest does not match (add-response dispute).
	TamperAddVictim wire.NodeID
	// TamperReadVictim: reads served to this client return altered block
	// content with no proof (a Phase I read lie).
	TamperReadVictim wire.NodeID
	// OmitBlocks: read requests for these block ids are denied even
	// though the blocks exist (omission attack).
	OmitBlocks map[uint64]bool
	// DoubleCertify: every block is certified twice with conflicting
	// digests (certify-time equivocation, caught directly by the cloud).
	DoubleCertify bool
	// DropCertify: blocks are never certified, starving Phase II and
	// triggering client dispute timeouts.
	DropCertify bool
	// HideL0 and HideL0From: gets are served from a stale snapshot that
	// pretends blocks with id >= HideL0From do not exist (stale-read
	// attack bounded by the freshness window).
	HideL0     bool
	HideL0From uint64
	// FreezeIndex: the edge stops installing merge results and stops
	// initiating merges, freezing its LSMerkle at an old (but validly
	// signed) snapshot. Clients detect it through the freshness window
	// on the global root's timestamp (Section V-D).
	FreezeIndex bool
	// ScanOmitKey: scan responses omit this key from the level page that
	// holds it (omission attack on range completeness). The tampered page
	// no longer hashes to its certified leaf, so the client's Merkle
	// range check fails and the signed response is convicting evidence.
	ScanOmitKey []byte
	// ScanInjectKey/ScanInjectValue: scan responses carry this forged
	// record appended to an uncertified L0 block. Structural verification
	// passes (nothing pins uncertified content yet); the later block
	// proof contradicts the pinned digest and convicts the edge.
	ScanInjectKey   []byte
	ScanInjectValue []byte
	// ScanTruncate: scan responses drop the last overlapping page of
	// every level range, presenting an honestly recomputed (Merkle-valid)
	// narrower proof. The boundary-coverage check catches the hidden
	// tail.
	ScanTruncate bool
	// SummaryFalseExclude: get and scan responses prune every L0 block
	// containing this key — omission via pruning — while shipping the
	// honest, digest-bound summaries. The response then serves the stale
	// (deeper-level or absent) answer. The summaries rebind to the
	// certified digests, but they visibly cover the key, so the client's
	// exclusion-soundness check refutes the prune inline and the signed
	// response convicts through DisputeGetLie/DisputeScanLie.
	SummaryFalseExclude []byte
	// KillMidBatch / KillAtBID: the node dies the instant it cuts block
	// KillAtBID — the block exists in its log but is never persisted,
	// acknowledged, replicated or certified, and the node answers nothing
	// from then on. This is the crash-fault arm of the failover tests: a
	// leader dying mid-batch with client writes in flight.
	KillMidBatch bool
	KillAtBID    uint64
	// EquivocateReplication: the leader replicates tampered blocks to its
	// followers while acknowledging and certifying the honest ones. Each
	// tampered block still carries the leader's valid replication
	// signature, so the follower's digest audit against the cloud
	// certificate turns the replication stream itself into convicting
	// evidence (the signed block contradicts the certified digest).
	EquivocateReplication bool
	// PromoteStale / PromoteStaleFrom: on promotion the new leader serves
	// as if its mirrored log ended just before block PromoteStaleFrom —
	// denying reads of the hidden tail and hiding it from the get/scan L0
	// window. Chain-keyed gossip still advertises the certified frontier,
	// so clients convict the promoted node through the standard omission
	// and freshness machinery.
	PromoteStale     bool
	PromoteStaleFrom uint64
	// SummaryTamperKey: like SummaryFalseExclude, but the pruned
	// summaries are doctored (recomputed without the victim entries) so
	// the key genuinely appears excluded. The claimed digest recomputed
	// from the tampered summary then matches nothing the cloud certified:
	// for certified blocks the shipped certificate contradicts it inline;
	// for uncertified ones the pinned digest is refuted by the later
	// block proof. Either way the signed response convicts.
	SummaryTamperKey []byte
	// TamperCatchUp: catch-up responses ship altered block content,
	// signed over the tampered digest so the per-item transfer signature
	// verifies — the lying-sync-peer attack. For certified blocks the
	// certificate riding in the same item contradicts the content and the
	// receiver convicts on the spot; for uncertified ones the eventual
	// cloud certificate refutes the installed mirror and convicts then.
	TamperCatchUp bool
}

// summaryFaultKey returns the key targeted by the summary-pruning faults
// and whether the pruned summaries should be tampered.
func (f *Fault) summaryFaultKey() (key []byte, tamper, on bool) {
	if f == nil {
		return nil, false, false
	}
	if len(f.SummaryFalseExclude) > 0 {
		return f.SummaryFalseExclude, false, true
	}
	if len(f.SummaryTamperKey) > 0 {
		return f.SummaryTamperKey, true, true
	}
	return nil, false, false
}

// maybeTamperAdd returns the block to embed in an add/put response for
// client, altered when client is the tamper victim.
func (f *Fault) maybeTamperAdd(client wire.NodeID, blk wire.Block) wire.Block {
	if f == nil || f.TamperAddVictim != client {
		return blk
	}
	return tamperBlock(blk, client)
}

// maybeTamperRead returns the block to serve for a read, altered when
// client is the read-tamper victim.
func (f *Fault) maybeTamperRead(client wire.NodeID, blk wire.Block) wire.Block {
	if f == nil || f.TamperReadVictim != client {
		return blk
	}
	return tamperBlock(blk, client)
}

// splitSummaryVictims partitions an L0 source into the blocks containing
// key (the victims the summary faults hide) and the rest, preserving
// order and digest alignment.
func splitSummaryVictims(src mlsm.L0Source, key []byte) (rest mlsm.L0Source, victims mlsm.L0Source) {
	for i := range src.Blocks {
		blk := &src.Blocks[i]
		has := false
		for j := range blk.Entries {
			if bytes.Equal(blk.Entries[j].Key, key) && len(key) > 0 {
				has = true
				break
			}
		}
		dst := &rest
		if has {
			dst = &victims
		}
		dst.Blocks = append(dst.Blocks, *blk)
		dst.Certs = append(dst.Certs, src.Certs[i])
		if src.Digests != nil {
			dst.Digests = append(dst.Digests, src.Digests[i])
		}
	}
	return rest, victims
}

// prunedVictims converts the victim blocks into pruned references: honest
// (digest-bound, visibly covering the key) for the false-exclusion fault,
// or doctored to exclude the key (and hence bound to no certified digest)
// for the tamper fault.
func prunedVictims(victims mlsm.L0Source, key []byte, tamper bool) ([]wire.PrunedBlock, []wire.BlockProof) {
	var pruned []wire.PrunedBlock
	for i := range victims.Blocks {
		blk := &victims.Blocks[i]
		pb := wire.PruneBlock(blk)
		if tamper {
			kept := make([]wire.Entry, 0, len(blk.Entries))
			for j := range blk.Entries {
				if !bytes.Equal(blk.Entries[j].Key, key) {
					kept = append(kept, blk.Entries[j])
				}
			}
			pb.Summary = wire.ComputeBlockSummary(kept)
		}
		pruned = append(pruned, pb)
	}
	return pruned, victims.Certs
}

// mergePruned splices extra pruned references (and their aligned certs)
// into a proof's pruned window, keeping both slices id-ordered so the
// union contiguity walk sees one consecutive run.
func mergePruned(pruned *[]wire.PrunedBlock, certs *[]wire.BlockProof, extra []wire.PrunedBlock, extraCerts []wire.BlockProof) {
	for i := range extra {
		pos := len(*pruned)
		for pos > 0 && (*pruned)[pos-1].ID > extra[i].ID {
			pos--
		}
		*pruned = append(*pruned, wire.PrunedBlock{})
		copy((*pruned)[pos+1:], (*pruned)[pos:])
		(*pruned)[pos] = extra[i]
		*certs = append(*certs, wire.BlockProof{})
		copy((*certs)[pos+1:], (*certs)[pos:])
		(*certs)[pos] = extraCerts[i]
	}
}

// tamperBlock deep-copies blk and alters an entry that does not belong to
// victim (so the victim's immediate checks pass). When every entry belongs
// to the victim, a forged foreign entry is appended instead.
func tamperBlock(blk wire.Block, victim wire.NodeID) wire.Block {
	out := blk
	// The copy shares the original's cached canonical encoding; drop it
	// before altering entries or the lie would ship the honest bytes.
	out.Invalidate()
	out.Entries = make([]wire.Entry, len(blk.Entries))
	copy(out.Entries, blk.Entries)
	for i := range out.Entries {
		if out.Entries[i].Client == victim {
			continue
		}
		e := out.Entries[i]
		e.Value = append(append([]byte(nil), e.Value...), 0xFF)
		out.Entries[i] = e
		return out
	}
	out.Entries = append(out.Entries, wire.Entry{
		Client: "forged-client",
		Value:  []byte("injected"),
	})
	return out
}
