package edge

import "wedgechain/internal/wire"

// Fault makes an edge node byzantine. Each hook models one of the
// malicious behaviours the paper's threat analysis considers (Section
// IV-E); the honest code path consults the hooks and lies accordingly.
// Every lie is constructed so the victim's immediate verification passes —
// the dishonesty is only detectable through lazy certification, which is
// exactly the property the tests demonstrate.
type Fault struct {
	// TamperAddVictim: add/put responses to this client carry a block
	// whose other entries were altered. The victim's own entry is kept
	// intact so Phase I verification succeeds; the lie surfaces when the
	// certified digest does not match (add-response dispute).
	TamperAddVictim wire.NodeID
	// TamperReadVictim: reads served to this client return altered block
	// content with no proof (a Phase I read lie).
	TamperReadVictim wire.NodeID
	// OmitBlocks: read requests for these block ids are denied even
	// though the blocks exist (omission attack).
	OmitBlocks map[uint64]bool
	// DoubleCertify: every block is certified twice with conflicting
	// digests (certify-time equivocation, caught directly by the cloud).
	DoubleCertify bool
	// DropCertify: blocks are never certified, starving Phase II and
	// triggering client dispute timeouts.
	DropCertify bool
	// HideL0 and HideL0From: gets are served from a stale snapshot that
	// pretends blocks with id >= HideL0From do not exist (stale-read
	// attack bounded by the freshness window).
	HideL0     bool
	HideL0From uint64
	// FreezeIndex: the edge stops installing merge results and stops
	// initiating merges, freezing its LSMerkle at an old (but validly
	// signed) snapshot. Clients detect it through the freshness window
	// on the global root's timestamp (Section V-D).
	FreezeIndex bool
	// ScanOmitKey: scan responses omit this key from the level page that
	// holds it (omission attack on range completeness). The tampered page
	// no longer hashes to its certified leaf, so the client's Merkle
	// range check fails and the signed response is convicting evidence.
	ScanOmitKey []byte
	// ScanInjectKey/ScanInjectValue: scan responses carry this forged
	// record appended to an uncertified L0 block. Structural verification
	// passes (nothing pins uncertified content yet); the later block
	// proof contradicts the pinned digest and convicts the edge.
	ScanInjectKey   []byte
	ScanInjectValue []byte
	// ScanTruncate: scan responses drop the last overlapping page of
	// every level range, presenting an honestly recomputed (Merkle-valid)
	// narrower proof. The boundary-coverage check catches the hidden
	// tail.
	ScanTruncate bool
}

// maybeTamperAdd returns the block to embed in an add/put response for
// client, altered when client is the tamper victim.
func (f *Fault) maybeTamperAdd(client wire.NodeID, blk wire.Block) wire.Block {
	if f == nil || f.TamperAddVictim != client {
		return blk
	}
	return tamperBlock(blk, client)
}

// maybeTamperRead returns the block to serve for a read, altered when
// client is the read-tamper victim.
func (f *Fault) maybeTamperRead(client wire.NodeID, blk wire.Block) wire.Block {
	if f == nil || f.TamperReadVictim != client {
		return blk
	}
	return tamperBlock(blk, client)
}

// tamperBlock deep-copies blk and alters an entry that does not belong to
// victim (so the victim's immediate checks pass). When every entry belongs
// to the victim, a forged foreign entry is appended instead.
func tamperBlock(blk wire.Block, victim wire.NodeID) wire.Block {
	out := blk
	// The copy shares the original's cached canonical encoding; drop it
	// before altering entries or the lie would ship the honest bytes.
	out.Invalidate()
	out.Entries = make([]wire.Entry, len(blk.Entries))
	copy(out.Entries, blk.Entries)
	for i := range out.Entries {
		if out.Entries[i].Client == victim {
			continue
		}
		e := out.Entries[i]
		e.Value = append(append([]byte(nil), e.Value...), 0xFF)
		out.Entries[i] = e
		return out
	}
	out.Entries = append(out.Entries, wire.Entry{
		Client: "forged-client",
		Value:  []byte("injected"),
	})
	return out
}
