package edge

import (
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// handleGet serves the LSMerkle key-value read protocol (Section V-B,
// "Reading"). The response always carries every uncompacted L0 page
// (block) with available certificates, because any of them might hold a
// newer version of the key. When the winning version lives in a deeper
// level — or the key does not exist — the response additionally carries
// the single intersecting page of each level with its Merkle audit path,
// all level roots, and the signed global root, letting the client verify
// both the value and its recency.
func (n *Node) handleGet(now int64, from wire.NodeID, m *wire.GetRequest) []wire.Envelope {
	n.stats.Gets++
	resp, digests := n.buildGet(m)
	// Phase I gets: register the caller for proof forwarding on every
	// uncertified block it relied on.
	for i := range resp.Proof.L0Blocks {
		if len(resp.Proof.L0Certs[i].CloudSig) == 0 {
			n.readWaiters.add(resp.Proof.L0Blocks[i].ID, from)
		}
	}
	// Size-independent signing: the signable body represents each L0
	// block by the digest cached at block cut, so the signature costs the
	// same whether the uncompacted window holds one block or fifty.
	resp.EdgeSig = wcrypto.SignGetResponse(n.key, resp, digests)
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
}

// AssembleGet builds and signs a get response locally, outside any
// transport — the edge half of the best-case read path that Figure 5(d)
// measures with real crypto.
func (n *Node) AssembleGet(key []byte, reqID uint64) *wire.GetResponse {
	resp, digests := n.buildGet(&wire.GetRequest{Key: key, ReqID: reqID})
	resp.EdgeSig = wcrypto.SignGetResponse(n.key, resp, digests)
	return resp
}

// buildGet assembles the unsigned get response plus the cut-time digests
// of its L0 blocks (aligned with Proof.L0Blocks), which the signer embeds
// in the signable body instead of re-hashing every served block. Split
// from handleGet so the Figure 5(d) microbenchmark can measure pure
// assembly cost.
func (n *Node) buildGet(m *wire.GetRequest) (*wire.GetResponse, [][]byte) {
	src, digests := n.l0Window()
	return mlsm.AssembleGet(m.Key, m.ReqID, src, n.idx), digests
}

// l0Window snapshots the uncompacted L0 suffix — blocks, certificates
// where available, and cut-time digests — honouring the stale-snapshot
// fault. The digests slice stays aligned with the blocks slice.
func (n *Node) l0Window() (mlsm.L0Source, [][]byte) {
	lo, hi := n.l0From, n.log.NumBlocks()
	if n.cfg.Fault != nil && n.cfg.Fault.HideL0 && n.cfg.Fault.HideL0From < hi {
		// Stale-snapshot attack: pretend recent blocks do not exist.
		hi = n.cfg.Fault.HideL0From
		if hi < lo {
			hi = lo
		}
	}
	var src mlsm.L0Source
	var digests [][]byte
	for bid := lo; bid < hi; bid++ {
		blk, err := n.log.Block(bid)
		if err != nil {
			continue
		}
		digest, err := n.log.Digest(bid)
		if err != nil {
			continue
		}
		src.Blocks = append(src.Blocks, *blk)
		digests = append(digests, digest)
		cert, ok := n.log.Cert(bid)
		if !ok {
			cert = wire.BlockProof{} // uncertified: Phase I evidence only
		}
		src.Certs = append(src.Certs, cert)
	}
	return src, digests
}
