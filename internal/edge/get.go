package edge

import (
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// handleGet serves the LSMerkle key-value read protocol (Section V-B,
// "Reading"). The response always carries every uncompacted L0 page
// (block) with available certificates, because any of them might hold a
// newer version of the key. When the winning version lives in a deeper
// level — or the key does not exist — the response additionally carries
// the single intersecting page of each level with its Merkle audit path,
// all level roots, and the signed global root, letting the client verify
// both the value and its recency.
func (n *Node) handleGet(now int64, from wire.NodeID, m *wire.GetRequest) []wire.Envelope {
	n.stats.Gets++
	resp := n.buildGet(m)
	// Phase I gets: register the caller for proof forwarding on every
	// uncertified block it relied on.
	for i := range resp.Proof.L0Blocks {
		if len(resp.Proof.L0Certs[i].CloudSig) == 0 {
			bid := resp.Proof.L0Blocks[i].ID
			n.readWaiters[bid] = append(n.readWaiters[bid], from)
		}
	}
	resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
}

// AssembleGet builds and signs a get response locally, outside any
// transport — the edge half of the best-case read path that Figure 5(d)
// measures with real crypto.
func (n *Node) AssembleGet(key []byte, reqID uint64) *wire.GetResponse {
	resp := n.buildGet(&wire.GetRequest{Key: key, ReqID: reqID})
	resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	return resp
}

// buildGet assembles the unsigned get response. Split from handleGet so
// the Figure 5(d) microbenchmark can measure pure assembly cost.
func (n *Node) buildGet(m *wire.GetRequest) *wire.GetResponse {
	lo, hi := n.l0From, n.log.NumBlocks()
	if n.cfg.Fault != nil && n.cfg.Fault.HideL0 && n.cfg.Fault.HideL0From < hi {
		// Stale-snapshot attack: pretend recent blocks do not exist.
		hi = n.cfg.Fault.HideL0From
		if hi < lo {
			hi = lo
		}
	}
	var src mlsm.L0Source
	for bid := lo; bid < hi; bid++ {
		blk, err := n.log.Block(bid)
		if err != nil {
			continue
		}
		src.Blocks = append(src.Blocks, *blk)
		cert, ok := n.log.Cert(bid)
		if !ok {
			cert = wire.BlockProof{} // uncertified: Phase I evidence only
		}
		src.Certs = append(src.Certs, cert)
	}
	return mlsm.AssembleGet(m.Key, m.ReqID, src, n.idx)
}
