package edge

import (
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// handleGet serves the LSMerkle key-value read protocol (Section V-B,
// "Reading"). The response accounts for every uncompacted L0 page (block):
// blocks whose digest-committed key summary excludes the key ship as
// pruned references (summary + entries hash, no entries), the rest in
// full. When the winning version lives in a deeper level — or the key
// does not exist — the response additionally carries the single
// intersecting page of each level with its Merkle audit path, all level
// roots, and the signed global root, letting the client verify both the
// value and its recency.
func (n *Node) handleGet(now int64, from wire.NodeID, m *wire.GetRequest) []wire.Envelope {
	if n.follower {
		return nil
	}
	n.m.gets.Inc()
	resp, digests, tampered := n.buildGet(m)
	// Phase I gets: register the caller for proof forwarding on every
	// uncertified block it relied on — full blocks and pruned references
	// alike (the client pins a digest for both and waits for the proof).
	for i := range resp.Proof.L0Blocks {
		if len(resp.Proof.L0Certs[i].CloudSig) == 0 {
			n.readWaiters.add(resp.Proof.L0Blocks[i].ID, from)
		}
	}
	for i := range resp.Proof.L0Pruned {
		if len(resp.Proof.L0PrunedCerts[i].CloudSig) == 0 {
			n.readWaiters.add(resp.Proof.L0Pruned[i].ID, from)
		}
	}
	if tampered {
		// The lie must verify at face value: recompute digests over the
		// tampered content so the signature matches what ships.
		resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	} else {
		// Size-independent signing: the signable body represents each
		// full L0 block by the digest cached at block cut (pruned
		// references recompute theirs from a few dozen preimage bytes),
		// so the signature costs the same whether the uncompacted window
		// holds one block or fifty.
		resp.EdgeSig = wcrypto.SignGetResponse(n.key, resp, digests)
	}
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
}

// AssembleGet builds and signs a get response locally, outside any
// transport — the edge half of the best-case read path that Figure 5(d)
// measures with real crypto.
func (n *Node) AssembleGet(key []byte, reqID uint64) *wire.GetResponse {
	resp, digests, tampered := n.buildGet(&wire.GetRequest{Key: key, ReqID: reqID})
	if tampered {
		resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	} else {
		resp.EdgeSig = wcrypto.SignGetResponse(n.key, resp, digests)
	}
	return resp
}

// buildGet assembles the unsigned get response, the cut-time digests of
// the L0 blocks it kept in full (aligned with Proof.L0Blocks), and
// whether a byzantine fault altered the evidence (in which case the
// cached digests no longer bind and the caller must sign generically).
// Split from handleGet so the Figure 5(d) microbenchmark can measure pure
// assembly cost.
func (n *Node) buildGet(m *wire.GetRequest) (*wire.GetResponse, [][]byte, bool) {
	src := n.l0Window()
	if key, tamper, on := n.cfg.Fault.summaryFaultKey(); on {
		// Summary-pruning attack: assemble the answer as if the blocks
		// holding key did not exist (the stale answer the lie is for),
		// then splice those blocks back in as pruned references so the
		// window still looks contiguous and accounted for.
		rest, victims := splitSummaryVictims(src, key)
		resp, _ := mlsm.AssembleGet(m.Key, m.ReqID, rest, n.idx, !n.cfg.NoL0Prune)
		pv, pvCerts := prunedVictims(victims, key, tamper)
		mergePruned(&resp.Proof.L0Pruned, &resp.Proof.L0PrunedCerts, pv, pvCerts)
		return resp, nil, true
	}
	resp, digests := mlsm.AssembleGet(m.Key, m.ReqID, src, n.idx, !n.cfg.NoL0Prune)
	return resp, digests, false
}

// l0Window snapshots the uncompacted L0 suffix — blocks, certificates
// where available, and cut-time digests — honouring the stale-snapshot
// fault. The digests slice stays aligned with the blocks slice.
func (n *Node) l0Window() mlsm.L0Source {
	lo, hi := n.l0From, n.log.NumBlocks()
	if n.cfg.Fault != nil && n.cfg.Fault.HideL0 && n.cfg.Fault.HideL0From < hi {
		// Stale-snapshot attack: pretend recent blocks do not exist.
		hi = n.cfg.Fault.HideL0From
		if hi < lo {
			hi = lo
		}
	}
	var src mlsm.L0Source
	for bid := lo; bid < hi; bid++ {
		blk, err := n.log.Block(bid)
		if err != nil {
			continue
		}
		digest, err := n.log.Digest(bid)
		if err != nil {
			continue
		}
		src.Blocks = append(src.Blocks, *blk)
		src.Digests = append(src.Digests, digest)
		cert, ok := n.log.Cert(bid)
		if !ok {
			cert = wire.BlockProof{} // uncertified: Phase I evidence only
		}
		src.Certs = append(src.Certs, cert)
	}
	return src
}
