package edge

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// TestGroupCommitWithholdsAcksUntilSharedSync drives an edge configured
// with a group-commit window: blocks cut inside the window produce no
// acknowledgements, the window-expiry flush releases every withheld
// acknowledgement after one shared fsync, and a restart recovers every
// acknowledged block — the durability contract group commit must keep.
func TestGroupCommitWithholdsAcksUntilSharedSync(t *testing.T) {
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"edge-1", "cloud", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	dir := t.TempDir()
	cfg := Config{
		ID: "edge-1", Cloud: "cloud",
		BatchSize: 1, L0Threshold: 100,
		SyncEvery: 100, // ns of virtual time
	}
	n1, _, err := NewPersistent(cfg, keys["edge-1"], reg, dir, true)
	if err != nil {
		t.Fatal(err)
	}

	write := func(now int64, seq uint64) []wire.Envelope {
		e := wire.Entry{Client: "c1", Seq: seq, Value: []byte{byte(seq)}}
		e.Sig = wcrypto.SignMsg(keys["c1"], &e)
		return n1.Receive(now, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
	}

	// Three blocks cut inside the window: acknowledgements withheld.
	for seq := uint64(1); seq <= 3; seq++ {
		if out := write(int64(seq), seq); out != nil {
			t.Fatalf("write %d acknowledged before group-commit sync: %v", seq, kindsOf(out))
		}
	}
	if got := n1.Stats().BlocksCut; got != 3 {
		t.Fatalf("blocks cut = %d, want 3", got)
	}
	syncsBefore := n1.store.Syncs()

	// Window expires: one Tick releases every withheld output.
	out := n1.Tick(500)
	k := kindsOf(out)
	if k[wire.KindAddResponse] != 3 || k[wire.KindBlockCertify] != 3 {
		t.Fatalf("flush released %v, want 3 add responses + 3 certifies", k)
	}
	if got := n1.store.Syncs() - syncsBefore; got != 1 {
		t.Fatalf("flush issued %d fsyncs, want 1 shared", got)
	}

	// A fourth block opens a fresh window: withheld on arrival, released
	// by the next window-expiry flush.
	if out := write(1000, 4); out != nil {
		t.Fatalf("write 4 acknowledged before its window closed: %v", kindsOf(out))
	}
	if k := kindsOf(n1.Tick(1200)); k[wire.KindAddResponse] != 1 {
		t.Fatalf("second flush released %v, want 1 add response", k)
	}

	if err := n1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Restart: every acknowledged block must be recovered.
	n2, recovered, err := NewPersistent(cfg, keys["edge-1"], reg, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.CloseStore()
	if recovered != 4 {
		t.Fatalf("recovered %d blocks, want every acknowledged block (4)", recovered)
	}
}
