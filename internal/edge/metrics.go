package edge

import (
	"wedgechain/internal/obs"
)

// metrics is the edge node's registry-backed instrumentation. Counters
// are ALWAYS live — they are the atomic storage behind Stats(), which
// fixes the old racy plain-struct snapshot — but when no registry was
// configured they live on a private throwaway registry and nothing
// else pays for them. Timing histograms (serve latency, trust lag,
// block sizes) exist only when Config.Metrics names a real registry:
// their handles stay nil otherwise, so the disabled hot path costs one
// nil check instead of a clock read.
type metrics struct {
	// enabled reports that Config.Metrics was set: histograms are live
	// and the handlers may spend clock reads on them.
	enabled bool

	writes       *obs.Counter
	blocksCut    *obs.Counter
	certified    *obs.Counter
	reads        *obs.Counter
	gets         *obs.Counter
	scans        *obs.Counter
	merges       *obs.Counter
	bytesToCloud *obs.Counter
	shed         *obs.Counter
	certRetries  *obs.Counter
	catchUps     *obs.Counter
	shedSignals  *obs.Counter
	truncated    *obs.Counter
	replicated   *obs.Counter

	serveGet     *obs.Histogram // wall-clock per-op serve latency
	serveScan    *obs.Histogram
	serveRead    *obs.Histogram
	blockEntries *obs.Histogram // entries per cut block
	trustLag     *obs.Histogram // block cut -> certificate installed

	// cutAt stamps each cut block's handler time for the trust-lag
	// histogram. Only populated when enabled; bounded by the
	// uncertified backlog plus cutAtCap as a backstop.
	cutAt map[uint64]int64
}

// cutAtCap bounds the cut-timestamp map; blocks whose certificates
// never arrive (conviction, demotion) would otherwise pin entries
// forever. Exceeding it clears the map — the cost is a few unmeasured
// lag samples, never unbounded memory.
const cutAtCap = 1 << 16

func newMetrics(reg *obs.Registry, node string) *metrics {
	m := &metrics{enabled: reg != nil}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := func(name, help string) *obs.Counter {
		return reg.CounterVec(name, help, "node").With(node)
	}
	m.writes = c("wedge_edge_writes_total", "entries appended to the edge log")
	m.blocksCut = c("wedge_edge_blocks_cut_total", "blocks cut from the write buffer")
	m.certified = c("wedge_edge_certified_blocks_total", "block certificates installed")
	m.reads = c("wedge_edge_reads_total", "read(bid) requests served")
	m.gets = c("wedge_edge_gets_total", "get(key) requests served")
	m.scans = c("wedge_edge_scans_total", "scan requests served")
	m.merges = c("wedge_edge_merges_total", "compaction merges requested")
	m.bytesToCloud = c("wedge_edge_cloud_bytes_total", "bytes sent on the edge-cloud coordination channel")
	m.shed = c("wedge_edge_shed_writes_total", "writes shed by the MaxUncertified backpressure cap")
	m.certRetries = c("wedge_edge_cert_retries_total", "stall-gated certification retries")
	m.catchUps = c("wedge_edge_catchups_total", "catch-up requests issued while recovering a gap")
	m.shedSignals = c("wedge_edge_shed_signals_total", "signed Overloaded signals sent to clients")
	m.truncated = c("wedge_edge_truncated_blocks_total", "uncertified blocks discarded on demotion")
	m.replicated = c("wedge_edge_replicated_blocks_total", "block copies streamed to followers (fan-out)")
	if !m.enabled {
		return m
	}
	h := func(name, help string, buckets []float64) *obs.Histogram {
		return reg.HistogramVec(name, help, buckets, "node").With(node)
	}
	m.serveGet = h("wedge_edge_serve_get_seconds", "wall-clock get(key) serve latency", obs.LatencyBuckets)
	m.serveScan = h("wedge_edge_serve_scan_seconds", "wall-clock scan serve latency", obs.LatencyBuckets)
	m.serveRead = h("wedge_edge_serve_read_seconds", "wall-clock read(bid) serve latency", obs.LatencyBuckets)
	m.blockEntries = h("wedge_edge_block_entries", "entries per cut block", obs.SizeBuckets)
	m.trustLag = reg.HistogramVec("wedge_trust_lag_seconds",
		"time an acked write spent uncertified (stage=edge: block cut to certificate; stage=client: Phase I ack to Phase II proof)",
		obs.LatencyBuckets, "node", "stage").With(node, "edge")
	m.cutAt = make(map[uint64]int64)
	return m
}

// markCut records a freshly cut block: size histogram plus the
// trust-lag start stamp. now is handler time — virtual nanoseconds
// under the sim, wall nanoseconds under Local/TCP transports — so the
// lag histogram is meaningful in both worlds.
func (m *metrics) markCut(bid uint64, now int64, entries int) {
	if !m.enabled {
		return
	}
	m.blockEntries.Observe(float64(entries))
	if len(m.cutAt) >= cutAtCap {
		m.cutAt = make(map[uint64]int64)
	}
	m.cutAt[bid] = now
}

// markCertified closes the trust-lag interval opened by markCut.
func (m *metrics) markCertified(bid uint64, now int64) {
	if !m.enabled {
		return
	}
	if t0, ok := m.cutAt[bid]; ok {
		m.trustLag.Observe(float64(now-t0) / 1e9)
		delete(m.cutAt, bid)
	}
}
