package edge

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// TestEdgeRestartRecoversLog simulates an edge crash/restart: blocks and
// certificates committed before the crash must survive, reads must serve
// them with proofs, and the replay defence must persist.
func TestEdgeRestartRecoversLog(t *testing.T) {
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"edge-1", "cloud", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	dir := t.TempDir()
	cfg := Config{ID: "edge-1", Cloud: "cloud", BatchSize: 1, L0Threshold: 100}

	n1, recovered, err := NewPersistent(cfg, keys["edge-1"], reg, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("fresh store recovered %d blocks", recovered)
	}
	// Commit two blocks, certify the first.
	write := func(n *Node, seq uint64, val string) {
		e := wire.Entry{Client: "c1", Seq: seq, Value: []byte(val)}
		e.Sig = wcrypto.SignMsg(keys["c1"], &e)
		outs := n.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
		if len(outs) == 0 {
			t.Fatalf("write %d produced no outputs", seq)
		}
	}
	write(n1, 1, "first")
	write(n1, 2, "second")
	digest, _ := n1.Log().Digest(0)
	proof := &wire.BlockProof{Edge: "edge-1", BID: 0, Digest: digest}
	proof.CloudSig = wcrypto.SignMsg(keys["cloud"], proof)
	n1.Receive(2, wire.Envelope{From: "cloud", To: "edge-1", Msg: proof})
	if err := n1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh node over the same directory.
	n2, recovered, err := NewPersistent(cfg, keys["edge-1"], reg, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.CloseStore()
	if recovered != 2 {
		t.Fatalf("recovered %d blocks, want 2", recovered)
	}
	// The certified block serves a Phase II read.
	outs := n2.Receive(3, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.ReadRequest{BID: 0, ReqID: 1}})
	resp := outs[0].Msg.(*wire.ReadResponse)
	if !resp.OK || !resp.HasProof {
		t.Fatalf("post-restart read = ok=%v proof=%v", resp.OK, resp.HasProof)
	}
	if string(resp.Block.Entries[0].Value) != "first" {
		t.Fatalf("post-restart content = %q", resp.Block.Entries[0].Value)
	}
	// Replays of pre-crash entries are not re-appended: they get a
	// re-acknowledgement built from the block that already holds them.
	write2 := func(seq uint64, val string) []wire.Envelope {
		e := wire.Entry{Client: "c1", Seq: seq, Value: []byte(val)}
		e.Sig = wcrypto.SignMsg(keys["c1"], &e)
		return n2.Receive(4, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e}})
	}
	reack := write2(1, "first")
	if len(reack) == 0 {
		t.Fatal("pre-crash replay got no re-acknowledgement")
	}
	if ack, ok := reack[0].Msg.(*wire.AddResponse); !ok || ack.BID != 0 {
		t.Fatalf("replay re-ack = %T, want AddResponse for block 0", reack[0].Msg)
	}
	if n2.Log().NumBlocks() != 2 {
		t.Fatalf("replay appended a block: %d blocks", n2.Log().NumBlocks())
	}
	// A reused seq carrying different content is a replay-defence
	// violation, not a resend: rejected outright.
	if outs := write2(1, "forged"); len(outs) != 0 {
		t.Fatalf("different-content replay was answered: %v", outs)
	}
	if n2.Log().NumBlocks() != 2 {
		t.Fatalf("different-content replay appended a block: %d blocks", n2.Log().NumBlocks())
	}
	// New writes continue with the right ids.
	if outs := write2(3, "post-restart"); len(outs) == 0 {
		t.Fatal("post-restart write failed")
	}
	if n2.Log().NumBlocks() != 3 {
		t.Fatalf("blocks after restart write = %d", n2.Log().NumBlocks())
	}
}
