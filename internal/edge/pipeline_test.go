package edge

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// feedThroughPool runs the same envelopes through a concurrent verify
// pool fronting the node, preserving submission order, and returns every
// output the node emitted.
func feedThroughPool(t *testing.T, n *Node, reg *wcrypto.Registry, envs []wire.Envelope) []wire.Envelope {
	t.Helper()
	var outs []wire.Envelope
	pool := wcrypto.NewVerifyPool(reg, 4, 8, func(env wire.Envelope) {
		outs = append(outs, n.Receive(1, env)...)
	})
	for _, env := range envs {
		pool.Submit(env)
	}
	pool.Close()
	return outs
}

// TestPoolFedEdgeMatchesSerial feeds an identical stream — including a
// forged signature — to a serially driven edge and a pool-fronted edge,
// and asserts byte-identical observable behaviour: same accepted writes,
// same emitted responses, and identical rejection of the bad signature.
func TestPoolFedEdgeMatchesSerial(t *testing.T) {
	build := func() (*fixture, []wire.Envelope) {
		f := newFixture(t, Config{BatchSize: 2})
		envs := []wire.Envelope{
			{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: f.entry("c1", 1, "", "a")}},
			{From: "c2", To: "edge-1", Msg: &wire.AddRequest{Entry: f.entry("c2", 1, "", "b")}},
		}
		forged := f.entry("c1", 2, "", "evil")
		forged.Sig[0] ^= 1
		envs = append(envs,
			wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: forged}},
			wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: f.entry("c1", 3, "", "c")}},
			wire.Envelope{From: "c2", To: "edge-1", Msg: &wire.AddRequest{Entry: f.entry("c2", 2, "", "d")}},
		)
		return f, envs
	}

	serial, serialEnvs := build()
	var serialOuts []wire.Envelope
	for _, env := range serialEnvs {
		serialOuts = append(serialOuts, serial.node.Receive(1, env)...)
	}

	pooled, pooledEnvs := build()
	pooledOuts := feedThroughPool(t, pooled.node, pooled.reg, pooledEnvs)

	if s, p := serial.node.Stats(), pooled.node.Stats(); s.Writes != p.Writes || s.BlocksCut != p.BlocksCut {
		t.Fatalf("stats diverged: serial %+v pooled %+v", s, p)
	}
	if serial.node.Stats().Writes != 4 {
		t.Fatalf("forged entry accepted: %d writes", serial.node.Stats().Writes)
	}
	if len(serialOuts) != len(pooledOuts) {
		t.Fatalf("output count diverged: serial %d pooled %d", len(serialOuts), len(pooledOuts))
	}
	for i := range serialOuts {
		if serialOuts[i].To != pooledOuts[i].To || serialOuts[i].Msg.MsgKind() != pooledOuts[i].Msg.MsgKind() {
			t.Fatalf("output %d diverged: serial %v->%s pooled %v->%s",
				i, serialOuts[i].Msg.MsgKind(), serialOuts[i].To, pooledOuts[i].Msg.MsgKind(), pooledOuts[i].To)
		}
	}
}

// sessionBatch builds a session-signed batch of puts for client c.
func sessionBatch(f *fixture, c wire.NodeID, seqs []uint64) *wire.PutBatch {
	b := &wire.PutBatch{Client: c}
	for _, s := range seqs {
		b.Entries = append(b.Entries, wire.Entry{Client: c, Seq: s, Key: []byte("k"), Value: []byte("v")})
	}
	b.BatchSig = wcrypto.SignMsg(f.keys[c], b)
	return b
}

func TestSessionBatchAccepted(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 3})
	b := sessionBatch(f, "c1", []uint64{1, 2, 3})
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: b})
	k := kindsOf(out)
	if k[wire.KindPutResponse] != 1 || k[wire.KindBlockCertify] != 1 {
		t.Fatalf("session batch not committed: %v", k)
	}
	if f.node.Stats().Writes != 3 {
		t.Fatalf("writes = %d, want 3", f.node.Stats().Writes)
	}
}

func TestSessionBatchRejectsTampering(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 3})
	b := sessionBatch(f, "c1", []uint64{1, 2, 3})
	b.Entries[1].Value = []byte("evil") // after signing
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: b})
	if out != nil || f.node.Stats().Writes != 0 {
		t.Fatalf("tampered session batch accepted: %d writes", f.node.Stats().Writes)
	}
}

// TestSessionBatchEntryCannotBeSpliced lifts an entry out of a signed
// batch and replays it as a standalone put: without an individual
// signature it must be rejected.
func TestSessionBatchEntryCannotBeSpliced(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	b := sessionBatch(f, "c1", []uint64{1, 2})
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: &wire.PutRequest{Entry: b.Entries[0]}})
	if out != nil || f.node.Stats().Writes != 0 {
		t.Fatal("spliced entry without individual signature accepted")
	}
}

// TestSessionBatchSignerMustBeSender closes the cross-identity forgery
// hole: client c2 signs a batch whose entries are attributed to c1 and
// ships it with From=c1. The batch signature is valid (it is c2's), but
// the signer is not the sender, so the whole batch must be rejected —
// otherwise a registered client could forge writes under any identity.
func TestSessionBatchSignerMustBeSender(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 1})
	b := &wire.PutBatch{Client: "c2", Entries: []wire.Entry{
		{Client: "c1", Seq: 1, Key: []byte("k"), Value: []byte("forged")},
	}}
	b.BatchSig = wcrypto.SignMsg(f.keys["c2"], b)
	// Spoofed envelope sender matching the entries, not the signer.
	out := f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: b})
	if out != nil || f.node.Stats().Writes != 0 {
		t.Fatal("batch signed by c2 accepted as writes from c1")
	}
	// The same spoof with a pool-verified envelope must also fail: the
	// structural signer==sender check is independent of Verified.
	env := wire.Envelope{From: "c1", To: "edge-1", Msg: b, Verified: true}
	if out := f.node.Receive(1, env); out != nil || f.node.Stats().Writes != 0 {
		t.Fatal("pool-verified spoofed batch accepted")
	}
}

// TestSessionBatchForeignEntriesDropped asserts a signed batch cannot
// smuggle entries attributed to another client: the batch signature
// authenticates the sender, and each entry must belong to it.
func TestSessionBatchForeignEntriesDropped(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 2})
	b := &wire.PutBatch{Client: "c1", Entries: []wire.Entry{
		{Client: "c1", Seq: 1, Key: []byte("k"), Value: []byte("v")},
		{Client: "c2", Seq: 1, Key: []byte("k"), Value: []byte("v")}, // forged attribution
	}}
	b.BatchSig = wcrypto.SignMsg(f.keys["c1"], b)
	f.node.Receive(1, wire.Envelope{From: "c1", To: "edge-1", Msg: b})
	if w := f.node.Stats().Writes; w != 1 {
		t.Fatalf("writes = %d, want 1 (own entry only)", w)
	}
}

// TestForgedProofDigestRejectedSerialAndPooled is the edge leg of
// digest-signing adversarial parity: a validly cloud-signed block proof
// whose digest does not match the edge's own block must be rejected — and
// rejected identically whether the envelope is verified inline or
// pre-verified by a concurrent pool (the digest cross-check is structural
// and independent of Envelope.Verified).
func TestForgedProofDigestRejectedSerialAndPooled(t *testing.T) {
	run := func(pooled bool) Stats {
		f := newFixture(t, Config{BatchSize: 1})
		f.add(t, 1, "c1", 1, "a") // cuts block 0
		forged := &wire.BlockProof{
			Edge: "edge-1", BID: 0,
			Digest: wcrypto.Digest([]byte("not-the-block")),
		}
		forged.CloudSig = wcrypto.SignMsg(f.keys["cloud"], forged)
		env := wire.Envelope{From: "cloud", To: "edge-1", Msg: forged}
		if pooled {
			feedThroughPool(t, f.node, f.reg, []wire.Envelope{env})
		} else {
			f.node.Receive(2, env)
		}
		return f.node.Stats()
	}
	serial, pooled := run(false), run(true)
	if serial.Certified != 0 || pooled.Certified != 0 {
		t.Fatalf("forged-digest proof certified: serial %d pooled %d", serial.Certified, pooled.Certified)
	}
	if serial != pooled {
		t.Fatalf("stats diverged: serial %+v pooled %+v", serial, pooled)
	}
}
