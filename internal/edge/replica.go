package edge

import (
	"bytes"

	"wedgechain/internal/core"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Replica groups: a shard's chain is served by one leader and mirrored by
// followers. The leader streams every cut block to the followers signed
// with the block-ack body (the same 44-byte promise the client
// acknowledgements carry), the followers audit the stream against the
// cloud's certificates, and the cloud's signed LeadershipTransfer promotes
// the follower with the longest certified prefix when the leader crashes,
// stalls certification, or is convicted. Nothing here adds trust: a
// follower is just another untrusted edge node, kept honest by the same
// lazy certification that polices the leader.

// Kill simulates a process crash: the node stops answering anything.
// Intended for failover tests and benchmarks; call on the node's
// transport goroutine.
func (n *Node) Kill() { n.killed = true }

// Killed reports whether the node has been killed.
func (n *Node) Killed() bool { return n.killed }

// IsFollower reports whether the node is currently mirroring rather than
// serving.
func (n *Node) IsFollower() bool { return n.follower }

// Leader returns the chain leader this node currently recognizes (itself,
// when leading).
func (n *Node) Leader() wire.NodeID { return n.leader }

// Epoch returns the highest leadership epoch the node has adopted.
func (n *Node) Epoch() uint64 { return n.epoch }

// Chain returns the shard chain identity this node serves.
func (n *Node) Chain() wire.NodeID { return n.cfg.Chain }

// LogBlocks reports the node's local block frontier — served blocks on a
// leader, mirrored blocks on a follower (tests and harnesses).
func (n *Node) LogBlocks() uint64 { return n.log.NumBlocks() }

// CertifiedBlocks reports the length of the contiguous certified prefix.
func (n *Node) CertifiedBlocks() uint64 {
	if ct, ok := n.log.CertifiedThrough(); ok {
		return ct + 1
	}
	return 0
}

// replicate builds the follower-bound mirror stream for a freshly cut
// block. The signature binds the leader to the exact bytes it shipped:
// honest leaders reuse the shared block-ack signature already computed for
// the client acknowledgements, while the equivocation fault tampers the
// block per follower and signs the tampered digest — still a valid
// signature, which is the point: the stream itself becomes convicting
// evidence once the cloud certificate contradicts it.
func (n *Node) replicate(blk *wire.Block, digest, sharedSig []byte) []wire.Envelope {
	if len(n.cfg.Followers) == 0 {
		return nil
	}
	sendBlk := *blk
	sig := sharedSig
	if f := n.cfg.Fault; f != nil && f.EquivocateReplication {
		sendBlk = tamperBlock(*blk, "")
		digest = wcrypto.BlockDigest(&sendBlk)
		sig = nil
	}
	if sig == nil {
		sig = wcrypto.SignBlockAck(n.key, blk.ID, digest)
	}
	var out []wire.Envelope
	n.m.replicated.Add(uint64(len(n.cfg.Followers)))
	for _, f := range n.cfg.Followers {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: f, Msg: &wire.ReplicateBlock{
			Chain:     n.cfg.Chain,
			Leader:    n.cfg.ID,
			Block:     sendBlk,
			LeaderSig: sig,
		}})
	}
	return out
}

// heartbeat reports liveness and replication progress to the cloud:
// Blocks is the local log frontier, Certified the length of the
// contiguous certified prefix — the quantity the cloud maximizes when it
// picks a promotion candidate.
func (n *Node) heartbeat(now int64) wire.Envelope {
	hb := &wire.ReplicaHeartbeat{
		Node:   n.cfg.ID,
		Chain:  n.cfg.Chain,
		Blocks: n.log.NumBlocks(),
		Ts:     now,
	}
	if ct, ok := n.log.CertifiedThrough(); ok {
		hb.Certified = ct + 1
	}
	hb.Sig = wcrypto.SignMsg(n.key, hb)
	return wire.Envelope{From: n.cfg.ID, To: n.cfg.Cloud, Msg: hb}
}

// handleReplicate installs a leader-replicated block into the mirrored
// log. Blocks may arrive out of order (stashed until their predecessor
// lands); duplicates are compared by digest, and a divergent duplicate
// that contradicts an existing cloud certificate convicts the leader on
// the spot.
func (n *Node) handleReplicate(now int64, from wire.NodeID, m *wire.ReplicateBlock, verified bool) []wire.Envelope {
	if !n.follower || m.Chain != n.cfg.Chain || from != n.leader || m.Leader != from {
		return nil
	}
	if m.Block.Edge != n.cfg.Chain {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, m.Leader, m, m.LeaderSig); err != nil {
			n.logf("dropping replicated block with bad leader signature", "bid", m.Block.ID, "err", err)
			return nil
		}
	}
	bid := m.Block.ID
	next := n.log.NumBlocks()
	if bid < next {
		// Duplicate. Same digest: idempotent redelivery. Divergent digest
		// with a certificate on file: the leader signed two different
		// blocks under one id — equivocation, convicted with the copy that
		// contradicts the certificate.
		got := wcrypto.BlockDigest(&m.Block)
		have, err := n.log.Digest(bid)
		if err == nil && !bytes.Equal(got, have) {
			if _, certified := n.log.Cert(bid); certified {
				return n.convictLeader(bid, m.Block, m.LeaderSig,
					"replicated duplicate contradicts certificate; convicting leader")
			}
			n.logf("divergent uncertified duplicate from leader", "bid", bid)
		}
		return nil
	}
	if bid > next {
		if bid >= next+pendingWindow {
			// Beyond the stash window: drop it. The gap itself (or the
			// cloud's gossiped frontier) drives certified catch-up, which
			// refetches the run verified — stashing arbitrarily far ahead
			// would just let a fast or hostile leader grow the map without
			// bound.
			return nil
		}
		n.evictStash()
		cp := *m
		n.pendingRepl[bid] = &cp
		return nil
	}
	var out []wire.Envelope
	for cur := m; cur != nil; {
		out = append(out, n.installReplicated(cur)...)
		cur = n.pendingRepl[n.log.NumBlocks()]
		if cur != nil {
			delete(n.pendingRepl, cur.Block.ID)
		}
	}
	return out
}

// installReplicated mirrors one in-order replicated block, persists it
// when the follower runs a durable store, and applies any certificate
// that raced ahead of it.
func (n *Node) installReplicated(m *wire.ReplicateBlock) []wire.Envelope {
	bid := m.Block.ID
	digest := wcrypto.BlockDigest(&m.Block)
	if err := n.log.InstallBlock(&m.Block, digest); err != nil {
		n.logf("mirror install failed", "bid", bid, "err", err)
		return nil
	}
	n.replSigs[bid] = append([]byte(nil), m.LeaderSig...)
	if n.store != nil {
		blk, err := n.log.Block(bid)
		if err == nil {
			if perr := n.store.AppendBlock(blk); perr != nil {
				n.logf("persisting mirrored block failed", "bid", bid, "err", perr)
			}
		}
	}
	if p, ok := n.pendingCerts[bid]; ok {
		delete(n.pendingCerts, bid)
		return n.followerApplyCert(p)
	}
	return nil
}

// followerApplyCert applies a cloud certificate to the mirrored log. A
// certificate for a block not yet mirrored waits; a certificate whose
// digest contradicts the mirrored block convicts the leader — the
// replication stream the leader signed IS the lie.
func (n *Node) followerApplyCert(p wire.BlockProof) []wire.Envelope {
	if p.BID >= n.log.NumBlocks() {
		if p.BID >= n.log.NumBlocks()+pendingWindow {
			return nil // beyond the stash window; catch-up rides the certs in
		}
		n.evictStash()
		n.pendingCerts[p.BID] = p
		return nil
	}
	if err := n.log.SetCert(p); err != nil {
		blk, berr := n.log.Block(p.BID)
		sig := n.replSigs[p.BID]
		if berr != nil || sig == nil {
			n.logf("certificate contradicts mirror but evidence is missing", "bid", p.BID, "err", err)
			return nil
		}
		if n.poisoned == nil {
			n.poisoned = make(map[uint64]bool)
		}
		n.poisoned[p.BID] = true
		return n.convictLeader(p.BID, *blk, sig,
			"certificate contradicts replicated block; convicting leader")
	}
	n.m.certified.Inc()
	// The replication signature's evidentiary job is done: the cert
	// matched the mirrored digest, and a future divergent duplicate
	// carries its own convicting signature. Dropping it keeps replSigs
	// bounded by the uncertified tail instead of growing per block
	// forever.
	delete(n.replSigs, p.BID)
	// Batch-derived certificates (certbatch.go) carry no individual cloud
	// signature and recovery verifies one per durable record, so only
	// individually signed certificates persist.
	if n.store != nil && len(p.CloudSig) > 0 {
		if err := n.store.AppendCert(&p); err != nil {
			n.logf("persisting mirrored certificate failed", "bid", p.BID, "err", err)
		}
	}
	return nil
}

// pendingWindow bounds how far above the mirrored tip a follower stashes
// out-of-order replicated blocks and early certificates. Anything further
// ahead is dropped and refetched through certified catch-up — the same
// base-chasing discipline the bidRing applies to blockClients/readWaiters,
// so a fast (or hostile) leader can never grow the stash maps without
// bound.
const pendingWindow = 1024

// evictStash drops stash entries the mirrored log has outgrown: a bid
// below the tip was installed (live or via catch-up) and its stashed copy
// or certificate can never be needed again.
func (n *Node) evictStash() {
	next := n.log.NumBlocks()
	for bid := range n.pendingRepl {
		if bid < next {
			delete(n.pendingRepl, bid)
		}
	}
	for bid := range n.pendingCerts {
		if bid < next {
			delete(n.pendingCerts, bid)
		}
	}
}

// convictLeader packages a leader-signed replicated block that contradicts
// the cloud's certificate as a standard add-response lie: the replication
// signature covers exactly the block-ack body an AddResponse carries, so
// the existing Judge convicts with zero new adjudication code. At most one
// dispute is filed per block id — certificates and duplicates can be
// redelivered indefinitely, and repeats carry no new evidence.
func (n *Node) convictLeader(bid uint64, blk wire.Block, sig []byte, why string) []wire.Envelope {
	if n.accused[bid] {
		return nil
	}
	if n.accused == nil {
		n.accused = make(map[uint64]bool)
	}
	n.accused[bid] = true
	n.logf(why, "bid", bid)
	resp := &wire.AddResponse{BID: bid, Block: blk, EdgeSig: sig}
	d := core.BuildAddLieDispute(n.key, n.leader, resp)
	return []wire.Envelope{{From: n.cfg.ID, To: n.cfg.Cloud, Msg: d}}
}

// handleTransfer adopts a cloud-signed leadership transfer. The promoted
// node flips to serving mode, inherits the chain's mirrored log and
// LSMerkle, re-certifies any uncertified tail, and (if faulty) starts
// hiding the tail it was told to serve. Demoted or bystander replicas
// re-point their mirror at the new leader.
func (n *Node) handleTransfer(now int64, from wire.NodeID, m *wire.LeadershipTransfer, verified bool) []wire.Envelope {
	if m.Chain != n.cfg.Chain || from != n.cfg.Cloud {
		return nil
	}
	if !verified {
		if err := wcrypto.VerifyMsg(n.reg, n.cfg.Cloud, m, m.CloudSig); err != nil {
			n.logf("dropping transfer with bad cloud signature", "err", err)
			return nil
		}
	}
	if m.Epoch <= n.epoch {
		return nil
	}
	n.epoch = m.Epoch
	if m.NewLeader != n.cfg.ID {
		n.logf("demoted to follower", "chain", n.cfg.Chain, "epoch", m.Epoch, "leader", m.NewLeader)
		return n.demote(now, m.NewLeader)
	}

	n.follower = false
	n.leader = n.cfg.ID
	n.cfg.Followers = nil
	for _, f := range m.Followers {
		if f != n.cfg.ID {
			n.cfg.Followers = append(n.cfg.Followers, f)
		}
	}
	// The mirrored history was acknowledged (and partly certified) under
	// the previous leader: start the request ring at the log frontier and
	// the waiter rings at the certified frontier, exactly like recovery.
	n.reqs.advance(n.log.NextPos())
	if ct, ok := n.log.CertifiedThrough(); ok {
		n.blockClients.advanceTo(ct + 1)
		n.readWaiters.advanceTo(ct + 1)
	}
	if f := n.cfg.Fault; f != nil && f.PromoteStale {
		// Stale-serve fault: pretend the mirrored log ends just before
		// PromoteStaleFrom. Reads of the tail are denied and the get/scan
		// window hides it; chain-keyed gossip still advertises the real
		// frontier, so clients convict through omission disputes.
		if f.OmitBlocks == nil {
			f.OmitBlocks = make(map[uint64]bool)
		}
		for bid := f.PromoteStaleFrom; bid < n.log.NumBlocks(); bid++ {
			f.OmitBlocks[bid] = true
		}
		f.HideL0 = true
		f.HideL0From = f.PromoteStaleFrom
	}
	n.logf("promoted to leader", "chain", n.cfg.Chain, "epoch", m.Epoch, "followers", len(n.cfg.Followers))
	return n.certifyTail(now)
}

// certifyTail re-submits certification for every mirrored-but-uncertified
// block — the cert-timeout failover case, where the dead leader cut and
// replicated blocks it never (successfully) certified. First-writer-wins
// at the cloud makes re-submission idempotent.
func (n *Node) certifyTail(now int64) []wire.Envelope {
	var out []wire.Envelope
	start := uint64(0)
	if ct, ok := n.log.CertifiedThrough(); ok {
		start = ct + 1
	}
	for bid := start; bid < n.log.NumBlocks(); bid++ {
		if _, ok := n.log.Cert(bid); ok {
			continue
		}
		if n.poisoned[bid] {
			// The cloud certified a digest this mirror contradicts; the
			// honest content is lost to this node. Re-certifying would read
			// as equivocation and convict the successor.
			continue
		}
		if f := n.cfg.Fault; f != nil && f.PromoteStale && bid >= f.PromoteStaleFrom {
			continue // a stale server does not certify what it hides
		}
		digest, err := n.log.Digest(bid)
		if err != nil {
			continue
		}
		cert := &wire.BlockCertify{Edge: n.cfg.Chain, BID: bid, Digest: digest}
		cert.EdgeSig = wcrypto.SignMsg(n.key, cert)
		env := wire.Envelope{From: n.cfg.ID, To: n.cfg.Cloud, Msg: cert}
		n.m.bytesToCloud.Add(uint64(wire.EncodedSize(env)))
		out = append(out, env)
	}
	return out
}

// reackDuplicate answers a write whose entry is already in the log — a
// client retry, or a post-failover resend of an entry the new leader
// inherited from the previous one. The acknowledgement is rebuilt from
// the containing block; if the block is certified the proof rides along,
// otherwise the client is registered for proof forwarding.
func (n *Node) reackDuplicate(from wire.NodeID, e wire.Entry, isPut bool) []wire.Envelope {
	pos, ok := n.log.SeenPos(e.Client, e.Seq)
	if !ok {
		return nil
	}
	// Replay defence: only a byte-identical resend earns a re-ack. The
	// same (client, seq) carrying different content is a replayed
	// sequence number — e.g. a fresh session reusing an identity — and
	// is rejected exactly as Append rejected it before replica groups.
	if stored, ok := n.log.EntryAt(pos); !ok ||
		!bytes.Equal(stored.Key, e.Key) || !bytes.Equal(stored.Value, e.Value) {
		n.logf("rejecting replayed (client, seq) with different content",
			"client", e.Client, "seq", e.Seq)
		return nil
	}
	blk, ok := n.log.BlockByPos(pos)
	if !ok {
		// Still buffered: re-register the responder so the eventual block
		// cut acknowledges this retry.
		n.reqs.set(pos, reqInfo{client: e.Client, isPut: isPut})
		return nil
	}
	digest, err := n.log.Digest(blk.ID)
	if err != nil {
		return nil
	}
	sig := wcrypto.SignBlockAck(n.key, blk.ID, digest)
	var msg wire.Message
	if isPut {
		msg = &wire.PutResponse{BID: blk.ID, Block: *blk, EdgeSig: sig}
	} else {
		msg = &wire.AddResponse{BID: blk.ID, Block: *blk, EdgeSig: sig}
	}
	out := []wire.Envelope{{From: n.cfg.ID, To: from, Msg: msg}}
	if cert, ok := n.log.Cert(blk.ID); ok {
		out = append(out, wire.Envelope{From: n.cfg.ID, To: from, Msg: cloneProof(&cert)})
	} else {
		n.readWaiters.add(blk.ID, from)
	}
	return out
}
