package edge

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Follower mirror path under a misbehaving network: the replication
// stream can be duplicated and reordered by the transport (and the chaos
// layer injects exactly that), so the mirror must install every block
// exactly once, in order, without ever mistaking a benign byte-identical
// redelivery for leader equivocation. The divergent-duplicate case (a
// real equivocation) is covered by the integration failover tests; these
// cover the honest-network-misbehavior cases.

// replicaPair wires a leader (with one registered follower) and that
// follower as directly-driven nodes, capturing the leader's replication
// stream so tests can deliver it duplicated or out of order.
type replicaPair struct {
	leader   *Node
	follower *Node
	keys     map[wire.NodeID]wcrypto.KeyPair
	reg      *wcrypto.Registry
}

func newReplicaPair(t *testing.T) *replicaPair {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"edge-1", "edge-1.r1", "cloud", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	p := &replicaPair{keys: keys, reg: reg}
	p.leader = New(Config{
		ID:        "edge-1",
		Cloud:     "cloud",
		BatchSize: 2,
		Followers: []wire.NodeID{"edge-1.r1"},
	}, keys["edge-1"], reg)
	p.follower = New(Config{
		ID:        "edge-1.r1",
		Chain:     "edge-1",
		Cloud:     "cloud",
		BatchSize: 2,
		Follower:  true,
	}, keys["edge-1.r1"], reg)
	return p
}

// cutBlock writes one full batch through the leader and returns the
// ReplicateBlock frame it emitted for the follower.
func (p *replicaPair) cutBlock(t *testing.T, now int64, seq uint64) *wire.ReplicateBlock {
	t.Helper()
	var repl *wire.ReplicateBlock
	for i := uint64(0); i < 2; i++ {
		e := wire.Entry{Client: "c1", Seq: seq + i, Value: []byte{byte(seq), byte(i)}}
		e.Sig = wcrypto.SignMsg(p.keys["c1"], &e)
		out := p.leader.Receive(now, wire.Envelope{
			From: "c1", To: "edge-1", Msg: &wire.AddRequest{Entry: e},
		})
		for _, env := range out {
			if m, ok := env.Msg.(*wire.ReplicateBlock); ok {
				repl = m
			}
		}
	}
	if repl == nil {
		t.Fatal("leader cut no replication frame")
	}
	return repl
}

// deliver hands one replication frame to the follower, unverified (the
// follower checks the leader signature inline, as over a real transport
// without pool pre-verification).
func (p *replicaPair) deliver(m *wire.ReplicateBlock) []wire.Envelope {
	cp := *m
	return p.follower.Receive(1, wire.Envelope{From: "edge-1", To: "edge-1.r1", Msg: &cp})
}

func assertNoDispute(t *testing.T, envs []wire.Envelope) {
	t.Helper()
	for _, env := range envs {
		if env.Msg.MsgKind() == wire.KindDispute {
			t.Fatalf("benign redelivery produced a dispute: %v", env.Msg)
		}
	}
}

func TestReplicateDuplicateFrameIdempotent(t *testing.T) {
	p := newReplicaPair(t)
	r0 := p.cutBlock(t, 1, 1)

	p.deliver(r0)
	if got := p.follower.LogBlocks(); got != 1 {
		t.Fatalf("blocks after first delivery = %d, want 1", got)
	}
	// Byte-identical redelivery: installed once, no conviction.
	assertNoDispute(t, p.deliver(r0))
	if got := p.follower.LogBlocks(); got != 1 {
		t.Fatalf("blocks after duplicate = %d, want 1", got)
	}

	// Redelivery after the block certifies must stay benign too — the
	// equivocation check compares digests only for *divergent* content.
	d, err := p.follower.log.Digest(0)
	if err != nil {
		t.Fatal(err)
	}
	proof := wire.BlockProof{Edge: "edge-1", BID: 0, Digest: d}
	proof.CloudSig = wcrypto.SignMsg(p.keys["cloud"], &proof)
	p.follower.Receive(1, wire.Envelope{From: "cloud", To: "edge-1.r1", Msg: &proof})
	if got := p.follower.CertifiedBlocks(); got != 1 {
		t.Fatalf("certified = %d, want 1", got)
	}
	assertNoDispute(t, p.deliver(r0))
	if got := p.follower.LogBlocks(); got != 1 {
		t.Fatalf("blocks after post-cert duplicate = %d, want 1", got)
	}
}

func TestReplicateReorderedFramesInstallInOrder(t *testing.T) {
	p := newReplicaPair(t)
	r0 := p.cutBlock(t, 1, 1)
	r1 := p.cutBlock(t, 2, 10)
	r2 := p.cutBlock(t, 3, 20)

	// Deliver 2, 1 (each twice — duplication and reordering together,
	// exactly what a Dup rule on the chaos net produces), then 0: nothing
	// installs until the gap at 0 fills, then the whole stash drains in
	// id order in one step.
	for _, m := range []*wire.ReplicateBlock{r2, r1, r2, r1} {
		assertNoDispute(t, p.deliver(m))
		if got := p.follower.LogBlocks(); got != 0 {
			t.Fatalf("gap not respected: %d blocks installed", got)
		}
	}
	assertNoDispute(t, p.deliver(r0))
	if got := p.follower.LogBlocks(); got != 3 {
		t.Fatalf("blocks after gap fill = %d, want 3", got)
	}
	for bid, want := range []*wire.ReplicateBlock{r0, r1, r2} {
		got, err := p.follower.log.Digest(uint64(bid))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(wcrypto.BlockDigest(&want.Block)) {
			t.Fatalf("block %d mirrored out of order", bid)
		}
	}

	// Late duplicates of now-installed blocks are still benign.
	assertNoDispute(t, p.deliver(r1))
	if got := p.follower.LogBlocks(); got != 3 {
		t.Fatalf("blocks after late duplicate = %d, want 3", got)
	}
}
