package edge

// reqRing maps absolute log positions to the (client, kind) that submitted
// the entry there, replacing the former reqs map on the put hot path. Log
// positions are assigned monotonically and consumed as a contiguous prefix
// at block cut, so a power-of-two ring indexed by (pos - base) serves every
// lookup without hashing or per-entry allocation: set on append, take on
// cut, advance past each cut block.
type reqRing struct {
	base  uint64 // absolute log position of slots[head]
	head  int    // ring index of base
	slots []reqSlot
}

type reqSlot struct {
	info reqInfo
	used bool
}

const reqRingMinCap = 64

// set records the submitter of the entry at absolute position pos.
// Positions below base (already cut) are ignored; the log rejects such
// appends before they reach the ring.
func (r *reqRing) set(pos uint64, info reqInfo) {
	if pos < r.base {
		return
	}
	off := pos - r.base
	if off >= uint64(len(r.slots)) {
		r.grow(off + 1)
	}
	s := &r.slots[(r.head+int(off))&(len(r.slots)-1)]
	s.info = info
	s.used = true
}

// take returns and clears the submitter recorded at pos.
func (r *reqRing) take(pos uint64) (reqInfo, bool) {
	if pos < r.base {
		return reqInfo{}, false
	}
	off := pos - r.base
	if off >= uint64(len(r.slots)) {
		return reqInfo{}, false
	}
	s := &r.slots[(r.head+int(off))&(len(r.slots)-1)]
	if !s.used {
		return reqInfo{}, false
	}
	info := s.info
	*s = reqSlot{}
	return info, true
}

// advance moves the ring's base to absolute position to, clearing any
// slots left behind — positions whose acknowledgements were dropped (e.g.
// a block whose persist failed) must not leak into later blocks.
func (r *reqRing) advance(to uint64) {
	if to <= r.base {
		return
	}
	if len(r.slots) == 0 || to-r.base >= uint64(len(r.slots)) {
		// Everything representable is behind to; reset in one step.
		for i := range r.slots {
			r.slots[i] = reqSlot{}
		}
		r.head = 0
		r.base = to
		return
	}
	for r.base < to {
		r.slots[r.head] = reqSlot{}
		r.head = (r.head + 1) & (len(r.slots) - 1)
		r.base++
	}
}

// grow resizes the ring to hold at least need positions, unwrapping the
// live window to the front of the new slice.
func (r *reqRing) grow(need uint64) {
	newCap := reqRingMinCap
	for uint64(newCap) < need {
		newCap <<= 1
	}
	slots := make([]reqSlot, newCap)
	for i := range r.slots {
		slots[i] = r.slots[(r.head+i)&(len(r.slots)-1)]
	}
	r.slots = slots
	r.head = 0
}

// bidRing maps recent block ids to small per-bid slices, replacing the
// former blockClients/readWaiters maps with the same flat treatment the
// reqRing gave log positions. Block ids are monotonic and interest in a
// block ends once its certificate arrives, so a power-of-two ring whose
// base tracks the certified frontier serves every lookup without hashing;
// slots behind the base are dead by construction (certified blocks never
// register new waiters).
type bidRing[T any] struct {
	base  uint64 // block id of slots[head]
	head  int    // ring index of base
	slots [][]T
}

func (r *bidRing[T]) slot(off uint64) *[]T {
	return &r.slots[(r.head+int(off))&(len(r.slots)-1)]
}

// add appends v to bid's slot. Bids behind the base are ignored — the
// base only advances past certified blocks, which register no waiters.
func (r *bidRing[T]) add(bid uint64, v T) {
	if bid < r.base {
		return
	}
	off := bid - r.base
	if off >= uint64(len(r.slots)) {
		r.grow(off + 1)
	}
	s := r.slot(off)
	*s = append(*s, v)
}

// set replaces bid's slot with vs.
func (r *bidRing[T]) set(bid uint64, vs []T) {
	if bid < r.base {
		return
	}
	off := bid - r.base
	if off >= uint64(len(r.slots)) {
		r.grow(off + 1)
	}
	*r.slot(off) = vs
}

// take returns and clears bid's slot.
func (r *bidRing[T]) take(bid uint64) []T {
	if bid < r.base {
		return nil
	}
	off := bid - r.base
	if off >= uint64(len(r.slots)) {
		return nil
	}
	s := r.slot(off)
	vs := *s
	*s = nil
	return vs
}

// advanceTo moves the ring's base to block id to, clearing the slots it
// passes. Called with one past the certified frontier: everything behind
// it has been consumed (or can never be consumed) by construction.
func (r *bidRing[T]) advanceTo(to uint64) {
	if to <= r.base {
		return
	}
	if len(r.slots) == 0 || to-r.base >= uint64(len(r.slots)) {
		for i := range r.slots {
			r.slots[i] = nil
		}
		r.head = 0
		r.base = to
		return
	}
	for r.base < to {
		r.slots[r.head] = nil
		r.head = (r.head + 1) & (len(r.slots) - 1)
		r.base++
	}
}

func (r *bidRing[T]) grow(need uint64) {
	newCap := reqRingMinCap
	for uint64(newCap) < need {
		newCap <<= 1
	}
	slots := make([][]T, newCap)
	for i := range r.slots {
		slots[i] = r.slots[(r.head+i)&(len(r.slots)-1)]
	}
	r.slots = slots
	r.head = 0
}
