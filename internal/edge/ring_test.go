package edge

import (
	"fmt"
	"testing"

	"wedgechain/internal/wire"
)

func TestReqRingSetTakeAdvance(t *testing.T) {
	var r reqRing
	r.set(0, reqInfo{client: "c1"})
	r.set(1, reqInfo{client: "c2", isPut: true})
	if info, ok := r.take(0); !ok || info.client != "c1" || info.isPut {
		t.Fatalf("take(0) = %+v %v", info, ok)
	}
	if _, ok := r.take(0); ok {
		t.Fatal("take(0) succeeded twice")
	}
	if info, ok := r.take(1); !ok || info.client != "c2" || !info.isPut {
		t.Fatalf("take(1) = %+v %v", info, ok)
	}
	r.advance(2)
	if _, ok := r.take(1); ok {
		t.Fatal("take below base succeeded")
	}
	// Positions keep working across the advanced base.
	r.set(2, reqInfo{client: "c3"})
	if info, ok := r.take(2); !ok || info.client != "c3" {
		t.Fatalf("take(2) after advance = %+v %v", info, ok)
	}
}

// TestReqRingGrowsAndWraps drives the ring past several growth and wrap
// cycles, with reservation holes, checking every recorded position comes
// back exactly once with the right submitter.
func TestReqRingGrowsAndWraps(t *testing.T) {
	var r reqRing
	const blocks, batch = 64, 37 // non-power-of-two batch forces wrap offsets
	pos := uint64(0)
	for b := 0; b < blocks; b++ {
		start := pos
		set := map[uint64]wire.NodeID{}
		for i := 0; i < batch; i++ {
			if i%5 == 4 {
				pos++ // hole: expired reservation, never set
				continue
			}
			id := wire.NodeID(fmt.Sprintf("c%d", pos%7))
			r.set(pos, reqInfo{client: id})
			set[pos] = id
			pos++
		}
		for p := start; p < pos; p++ {
			info, ok := r.take(p)
			want, wasSet := set[p]
			if ok != wasSet {
				t.Fatalf("pos %d: take ok=%v, want %v", p, ok, wasSet)
			}
			if ok && info.client != want {
				t.Fatalf("pos %d: client %q, want %q", p, info.client, want)
			}
		}
		r.advance(pos)
	}
	if r.base != pos {
		t.Fatalf("base = %d, want %d", r.base, pos)
	}
}

// TestReqRingAdvanceClearsDroppedSlots models a block whose persist failed:
// its positions were set but never taken; advancing past them must clear
// the slots so later positions mapping to the same ring index start clean.
func TestReqRingAdvanceClearsDroppedSlots(t *testing.T) {
	var r reqRing
	for p := uint64(0); p < reqRingMinCap; p++ {
		r.set(p, reqInfo{client: "stale"})
	}
	r.advance(reqRingMinCap) // drop them all without take
	for p := uint64(reqRingMinCap); p < 2*reqRingMinCap; p++ {
		if info, ok := r.take(p); ok {
			t.Fatalf("pos %d: stale slot leaked: %+v", p, info)
		}
	}
	// Far-forward advance (beyond the window) resets wholesale.
	r.set(2*reqRingMinCap, reqInfo{client: "x"})
	r.advance(10 * reqRingMinCap)
	if _, ok := r.take(2 * reqRingMinCap); ok {
		t.Fatal("slot behind a wholesale advance leaked")
	}
	r.set(10*reqRingMinCap+1, reqInfo{client: "y"})
	if info, ok := r.take(10*reqRingMinCap + 1); !ok || info.client != "y" {
		t.Fatalf("post-reset take = %+v %v", info, ok)
	}
}

func TestBidRingBasics(t *testing.T) {
	var r bidRing[wire.NodeID]
	r.add(3, "a")
	r.add(3, "b")
	r.add(5, "c")
	if got := r.take(3); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("take(3) = %v", got)
	}
	if got := r.take(3); got != nil {
		t.Fatalf("second take(3) = %v", got)
	}
	if got := r.take(4); got != nil {
		t.Fatalf("take of never-set bid = %v", got)
	}
	if got := r.take(5); len(got) != 1 || got[0] != "c" {
		t.Fatalf("take(5) = %v", got)
	}
}

func TestBidRingSetAndGrow(t *testing.T) {
	var r bidRing[reqInfo]
	// Force several growth steps with a widening window.
	for bid := uint64(0); bid < 5*reqRingMinCap; bid++ {
		r.set(bid, []reqInfo{{client: wire.NodeID(fmt.Sprintf("c%d", bid))}})
	}
	for bid := uint64(0); bid < 5*reqRingMinCap; bid++ {
		got := r.take(bid)
		if len(got) != 1 || got[0].client != wire.NodeID(fmt.Sprintf("c%d", bid)) {
			t.Fatalf("bid %d: take = %v", bid, got)
		}
	}
}

func TestBidRingAdvance(t *testing.T) {
	var r bidRing[wire.NodeID]
	for bid := uint64(0); bid < 10; bid++ {
		r.add(bid, "w")
	}
	r.advanceTo(7)
	for bid := uint64(0); bid < 7; bid++ {
		if got := r.take(bid); got != nil {
			t.Fatalf("bid %d behind base leaked: %v", bid, got)
		}
	}
	// Additions behind the base are ignored (certified blocks never
	// register waiters; a racing registration must not resurrect a slot).
	r.add(3, "stale")
	if got := r.take(3); got != nil {
		t.Fatalf("add behind base leaked: %v", got)
	}
	if got := r.take(8); len(got) != 1 {
		t.Fatalf("live slot lost across advance: %v", got)
	}
	// Wholesale advance far past the window.
	r.advanceTo(1000)
	if got := r.take(9); got != nil {
		t.Fatalf("slot behind wholesale advance leaked: %v", got)
	}
	r.add(1001, "fresh")
	if got := r.take(1001); len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("post-advance add = %v", got)
	}
}
