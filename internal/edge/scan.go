package edge

import (
	"bytes"

	"wedgechain/internal/scan"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// handleScan serves verified range scans: every uncompacted L0 block plus
// one Merkle page-range proof per non-empty level, covering all pages
// that overlap [Start, End) including the boundary pages whose committed
// bounds prove completeness at both ends. The client derives the result
// from this evidence (package scan), so the response carries no separate
// result list to lie about.
func (n *Node) handleScan(now int64, from wire.NodeID, m *wire.ScanRequest) []wire.Envelope {
	if n.follower {
		return nil
	}
	n.m.scans.Inc()
	if m.Start != nil && m.End != nil && bytes.Compare(m.Start, m.End) >= 0 {
		// Nothing to prove about an empty range; honest clients never send
		// one (the client core rejects it before signing anything).
		return nil
	}
	resp, digests, tampered := n.buildScan(m)
	// Phase I scans: register the caller for proof forwarding on every
	// uncertified block it relied on — full blocks and pruned references
	// alike (the client pins a digest for both and waits for the proof).
	for i := range resp.Proof.L0Blocks {
		if len(resp.Proof.L0Certs[i].CloudSig) == 0 {
			n.readWaiters.add(resp.Proof.L0Blocks[i].ID, from)
		}
	}
	for i := range resp.Proof.L0Pruned {
		if len(resp.Proof.L0PrunedCerts[i].CloudSig) == 0 {
			n.readWaiters.add(resp.Proof.L0Pruned[i].ID, from)
		}
	}
	if tampered {
		// The lie must verify at face value: recompute digests over the
		// tampered content so the signature matches what ships.
		resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	} else {
		// Honest serve: sign with the digests cached at block cut —
		// size-independent in both block size and L0 window depth.
		resp.EdgeSig = wcrypto.SignScanResponse(n.key, resp, digests)
	}
	return []wire.Envelope{{From: n.cfg.ID, To: from, Msg: resp}}
}

// AssembleScan builds and signs a scan response locally, outside any
// transport — the edge half of the scan read path, for benchmarks and
// direct measurement.
func (n *Node) AssembleScan(start, end []byte, reqID uint64) *wire.ScanResponse {
	resp, digests, tampered := n.buildScan(&wire.ScanRequest{Start: start, End: end, ReqID: reqID})
	if tampered {
		resp.EdgeSig = wcrypto.SignMsg(n.key, resp)
	} else {
		resp.EdgeSig = wcrypto.SignScanResponse(n.key, resp, digests)
	}
	return resp
}

// buildScan assembles the unsigned scan response, the cut-time digests of
// the L0 blocks it kept in full, and whether a byzantine fault altered
// the evidence (in which case the cached digests no longer bind and the
// caller must sign generically).
func (n *Node) buildScan(m *wire.ScanRequest) (*wire.ScanResponse, [][]byte, bool) {
	src := n.l0Window()
	if key, tamper, on := n.cfg.Fault.summaryFaultKey(); on {
		// Summary-pruning attack on the scan path: hide the blocks
		// holding key behind pruned references (see buildGet).
		rest, victims := splitSummaryVictims(src, key)
		resp, _ := scan.Assemble(m.Start, m.End, m.ReqID, rest, n.idx, !n.cfg.NoL0Prune)
		pv, pvCerts := prunedVictims(victims, key, tamper)
		mergePruned(&resp.Proof.L0Pruned, &resp.Proof.L0PrunedCerts, pv, pvCerts)
		return resp, nil, true
	}
	resp, digests := scan.Assemble(m.Start, m.End, m.ReqID, src, n.idx, !n.cfg.NoL0Prune)
	tampered := n.applyScanFault(resp)
	return resp, digests, tampered
}

// applyScanFault injects the configured scan lies into an assembled
// response, reporting whether anything was altered. Every lie is built so
// the victim's signature check passes — detection happens through the
// completeness proof (omission, truncation) or through lazy certification
// (injection into an uncertified block).
func (n *Node) applyScanFault(resp *wire.ScanResponse) bool {
	f := n.cfg.Fault
	if f == nil {
		return false
	}
	tampered := false
	if len(f.ScanOmitKey) > 0 {
		// Omission attack: drop the record from whichever level page
		// holds it. The page's leaf hash no longer matches the certified
		// tree, so the client's Merkle range check fails.
		for li := range resp.Proof.Levels {
			pages := resp.Proof.Levels[li].Pages
			for pi := range pages {
				p := &pages[pi]
				for ki := range p.KVs {
					if bytes.Equal(p.KVs[ki].Key, f.ScanOmitKey) {
						kvs := make([]wire.KV, 0, len(p.KVs)-1)
						kvs = append(kvs, p.KVs[:ki]...)
						kvs = append(kvs, p.KVs[ki+1:]...)
						p.KVs = kvs
						tampered = true
						break
					}
				}
			}
		}
	}
	if len(f.ScanInjectKey) > 0 {
		// Injection attack: forge an entry inside an uncertified L0 block
		// — the one place a lie passes structural verification, because
		// no certificate pins the content yet. Lazy certification catches
		// it: the cloud's proof carries the honest digest, contradicting
		// the digest the client pinned from this response.
		for i := len(resp.Proof.L0Blocks) - 1; i >= 0; i-- {
			if len(resp.Proof.L0Certs[i].CloudSig) > 0 {
				continue
			}
			blk := &resp.Proof.L0Blocks[i]
			blk.Invalidate() // the copy must not ship the honest cached bytes
			entries := make([]wire.Entry, 0, len(blk.Entries)+1)
			entries = append(entries, blk.Entries...)
			entries = append(entries, wire.Entry{Client: "forged-client", Key: f.ScanInjectKey, Value: f.ScanInjectValue})
			blk.Entries = entries
			tampered = true
			break
		}
	}
	if f.ScanTruncate {
		// Boundary-truncation attack: present an honestly recomputed —
		// and therefore Merkle-valid — proof for one page fewer, hiding
		// the tail of the range. The last page's committed Hi now falls
		// short of the scan's end, which the boundary check convicts.
		for li := range resp.Proof.Levels {
			lp := &resp.Proof.Levels[li]
			if len(lp.Pages) < 2 {
				continue
			}
			narrow, err := n.idx.LevelRangeProof(int(lp.Level), int(lp.First), int(lp.First)+len(lp.Pages)-1)
			if err != nil {
				continue
			}
			resp.Proof.Levels[li] = narrow
			tampered = true
		}
	}
	return tampered
}
