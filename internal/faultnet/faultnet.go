// Package faultnet is a deterministic fault-injection layer for the
// wedgechain transports. A Net sits at a transport's egress choke point
// (sim.send, transport.Local.route, transport.TCP.send) and decides, per
// frame, whether the frame is dropped, delayed, duplicated or delivered
// cleanly. Decisions come from seeded per-link PRNG streams, so a chaos
// run with a fixed seed replays the exact same fault schedule regardless
// of cross-link interleaving — failures found by the soak harness are
// reproducible by seed alone.
//
// Faults are described by Rules: each rule names a directed link (with
// "" as a wildcard endpoint), an optional active time window, and the
// fault mix on that link (drop probability, duplicate probability, delay
// range). Partition is a convenience for a bidirectional drop-all rule
// pair. Rules are consulted in order; the first match wins.
package faultnet

import (
	"fmt"
	"sync"

	"wedgechain/internal/obs"
	"wedgechain/internal/wire"
)

// LinkFaults is the fault mix applied to frames on one matched link.
type LinkFaults struct {
	// Drop is the probability in [0,1] that a frame is silently lost.
	Drop float64
	// Dup is the probability in [0,1] that a surviving frame is
	// delivered twice. The duplicate gets its own random delay, so
	// duplication also produces reordering.
	Dup float64
	// DelayMin and DelayMax bound the extra latency, in nanoseconds,
	// added to each delivery. A non-zero range yields a uniform random
	// delay per delivery — and therefore reordering between frames.
	DelayMin, DelayMax int64
}

// Rule matches a directed link over an optional time window and names
// the faults injected there.
type Rule struct {
	// From and To select the link; empty string matches any node.
	From, To wire.NodeID
	// FromT and ToT bound the active window in transport time
	// (nanoseconds). A zero window (both 0) means always active.
	FromT, ToT int64
	// Faults is the fault mix while the rule is active.
	Faults LinkFaults
}

func (r *Rule) matches(now int64, from, to wire.NodeID) bool {
	if r.From != "" && r.From != from {
		return false
	}
	if r.To != "" && r.To != to {
		return false
	}
	if r.FromT == 0 && r.ToT == 0 {
		return true
	}
	return now >= r.FromT && now < r.ToT
}

// Action is the verdict for one frame. Drop means the frame vanishes.
// Otherwise Delays holds one entry per delivery — normally [0] for a
// single undelayed delivery; duplication appends entries and delay
// ranges perturb the values.
type Action struct {
	Drop   bool
	Delays []int64
}

// Stats counts injected faults, for harness logs.
type Stats struct {
	Frames uint64 // frames consulted
	Drops  uint64 // frames dropped
	Dups   uint64 // extra deliveries injected
	Slowed uint64 // deliveries given a non-zero extra delay
}

// Net is a deterministic fault injector shared by one transport. Safe
// for concurrent use.
type Net struct {
	mu    sync.Mutex
	seed  uint64
	rules []Rule
	links map[linkKey]*splitmix
	stats Stats

	// Registry mirrors of the counters (see AttachMetrics); nil-safe
	// no-ops until attached.
	mFrames *obs.Counter
	mDrops  *obs.Counter
	mDups   *obs.Counter
	mSlowed *obs.Counter
}

type linkKey struct{ from, to wire.NodeID }

// New creates a fault injector. All randomness derives from seed and
// the (from, to) link identity, never from map order or goroutine
// interleaving.
func New(seed int64) *Net {
	return &Net{seed: uint64(seed), links: make(map[linkKey]*splitmix)}
}

// Add appends a rule. Rules are consulted in order; first match wins.
func (n *Net) Add(r Rule) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = append(n.rules, r)
}

// Partition drops every frame between a and b, both directions, over
// [fromT, toT) (always, if both are 0). Heal or Clear lifts it. The rule
// pair is PREPENDED: a partition severs the link outright, so it takes
// precedence over any wildcard noise rule already installed — harnesses
// can cut a link mid-run without reasoning about rule order.
func (n *Net) Partition(a, b wire.NodeID, fromT, toT int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = append([]Rule{
		{From: a, To: b, FromT: fromT, ToT: toT, Faults: LinkFaults{Drop: 1}},
		{From: b, To: a, FromT: fromT, ToT: toT, Faults: LinkFaults{Drop: 1}},
	}, n.rules...)
}

// Heal removes every rule touching node id (as a concrete endpoint).
func (n *Net) Heal(id wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.rules[:0]
	for _, r := range n.rules {
		if r.From == id || r.To == id {
			continue
		}
		kept = append(kept, r)
	}
	n.rules = kept
}

// Clear removes all rules. Link PRNG streams keep their positions, so
// a later rule continues the deterministic schedule.
func (n *Net) Clear() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = nil
}

// AttachMetrics mirrors the fault counters into reg as
// wedge_faultnet_*_total series labeled {node} — node names the
// endpoint whose egress this Net shapes. Counts injected before the
// attach are not replayed; attach before traffic for exact totals.
func (n *Net) AttachMetrics(reg *obs.Registry, node string) {
	if n == nil || reg == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mFrames = reg.CounterVec("wedge_faultnet_frames_total", "frames consulted by the fault injector", "node").With(node)
	n.mDrops = reg.CounterVec("wedge_faultnet_drops_total", "frames dropped by injected faults", "node").With(node)
	n.mDups = reg.CounterVec("wedge_faultnet_dups_total", "extra deliveries injected", "node").With(node)
	n.mSlowed = reg.CounterVec("wedge_faultnet_slowed_total", "deliveries given a non-zero extra delay", "node").With(node)
}

// Snapshot returns a copy of the fault counters.
func (n *Net) Snapshot() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// String summarizes the counters for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("frames=%d drops=%d dups=%d slowed=%d", s.Frames, s.Drops, s.Dups, s.Slowed)
}

// Apply decides the fate of one frame on link from→to at transport time
// now. The caller delivers the frame once per entry in Delays (each
// entry is extra nanoseconds on top of the transport's own latency), or
// not at all when Drop is set.
func (n *Net) Apply(now int64, from, to wire.NodeID) Action {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Frames++
	n.mFrames.Inc()
	var rule *Rule
	for i := range n.rules {
		if n.rules[i].matches(now, from, to) {
			rule = &n.rules[i]
			break
		}
	}
	if rule == nil {
		return Action{Delays: []int64{0}}
	}
	rng := n.rng(from, to)
	f := rule.Faults
	if f.Drop > 0 && rng.float() < f.Drop {
		n.stats.Drops++
		n.mDrops.Inc()
		return Action{Drop: true}
	}
	act := Action{Delays: []int64{n.delay(rng, f)}}
	if f.Dup > 0 && rng.float() < f.Dup {
		n.stats.Dups++
		n.mDups.Inc()
		act.Delays = append(act.Delays, n.delay(rng, f))
	}
	return act
}

func (n *Net) delay(rng *splitmix, f LinkFaults) int64 {
	if f.DelayMax <= f.DelayMin {
		if f.DelayMin > 0 {
			n.stats.Slowed++
			n.mSlowed.Inc()
		}
		return f.DelayMin
	}
	d := f.DelayMin + int64(rng.next()%uint64(f.DelayMax-f.DelayMin))
	if d > 0 {
		n.stats.Slowed++
		n.mSlowed.Inc()
	}
	return d
}

// rng returns the per-link PRNG stream, creating it on first use. The
// stream is sub-seeded by hashing the net seed with the link endpoints
// (FNV-1a), so each link's schedule is a deterministic function of
// (seed, from, to) alone.
func (n *Net) rng(from, to wire.NodeID) *splitmix {
	k := linkKey{from, to}
	if r, ok := n.links[k]; ok {
		return r
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	mix(string(from))
	mix(string(to))
	r := &splitmix{state: n.seed ^ h}
	n.links[k] = r
	return r
}

// splitmix is splitmix64 — tiny, fast, and good enough for fault
// scheduling. Not safe for concurrent use; callers hold Net.mu.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
