package faultnet

import (
	"testing"
)

func TestNoRulesPassesThrough(t *testing.T) {
	n := New(1)
	for i := 0; i < 100; i++ {
		act := n.Apply(int64(i), "a", "b")
		if act.Drop || len(act.Delays) != 1 || act.Delays[0] != 0 {
			t.Fatalf("clean link perturbed: %+v", act)
		}
	}
}

func TestDropProbability(t *testing.T) {
	n := New(42)
	n.Add(Rule{Faults: LinkFaults{Drop: 0.3}})
	drops := 0
	const N = 10000
	for i := 0; i < N; i++ {
		if n.Apply(0, "a", "b").Drop {
			drops++
		}
	}
	if drops < N*25/100 || drops > N*35/100 {
		t.Fatalf("drop rate %d/%d far from 0.3", drops, N)
	}
	if s := n.Snapshot(); s.Drops != uint64(drops) || s.Frames != N {
		t.Fatalf("stats mismatch: %+v vs drops=%d", s, drops)
	}
}

func TestDeterminismPerLink(t *testing.T) {
	// The same seed must yield the same per-link schedule even when the
	// interleaving across links differs.
	run := func(interleave bool) []Action {
		n := New(7)
		n.Add(Rule{Faults: LinkFaults{Drop: 0.2, Dup: 0.2, DelayMin: 1, DelayMax: 1000}})
		var out []Action
		for i := 0; i < 200; i++ {
			if interleave {
				n.Apply(int64(i), "x", "y") // foreign link traffic
			}
			out = append(out, n.Apply(int64(i), "a", "b"))
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i].Drop != b[i].Drop || len(a[i].Delays) != len(b[i].Delays) {
			t.Fatalf("frame %d: schedule diverged %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Delays {
			if a[i].Delays[j] != b[i].Delays[j] {
				t.Fatalf("frame %d delay %d: %d vs %d", i, j, a[i].Delays[j], b[i].Delays[j])
			}
		}
	}
}

func TestWildcardAndWindowMatching(t *testing.T) {
	n := New(1)
	n.Add(Rule{From: "a", FromT: 100, ToT: 200, Faults: LinkFaults{Drop: 1}})
	if !n.Apply(150, "a", "b").Drop {
		t.Fatal("in-window frame from a not dropped")
	}
	if !n.Apply(150, "a", "c").Drop {
		t.Fatal("wildcard To did not match")
	}
	if n.Apply(99, "a", "b").Drop {
		t.Fatal("pre-window frame dropped")
	}
	if n.Apply(200, "a", "b").Drop {
		t.Fatal("post-window frame dropped (window is half-open)")
	}
	if n.Apply(150, "b", "a").Drop {
		t.Fatal("reverse direction dropped")
	}
}

func TestDupAddsDelivery(t *testing.T) {
	n := New(3)
	n.Add(Rule{Faults: LinkFaults{Dup: 1}})
	act := n.Apply(0, "a", "b")
	if act.Drop || len(act.Delays) != 2 {
		t.Fatalf("dup=1 should deliver twice: %+v", act)
	}
}

func TestDelayRange(t *testing.T) {
	n := New(5)
	n.Add(Rule{Faults: LinkFaults{DelayMin: 10, DelayMax: 20}})
	varied := false
	for i := 0; i < 100; i++ {
		act := n.Apply(0, "a", "b")
		d := act.Delays[0]
		if d < 10 || d >= 20 {
			t.Fatalf("delay %d outside [10,20)", d)
		}
		if d != 10 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("delays never varied")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(9)
	n.Partition("a", "b", 0, 0)
	if !n.Apply(0, "a", "b").Drop || !n.Apply(0, "b", "a").Drop {
		t.Fatal("partition not bidirectional")
	}
	if n.Apply(0, "a", "c").Drop {
		t.Fatal("partition leaked to third node")
	}
	n.Heal("a")
	if n.Apply(0, "a", "b").Drop || n.Apply(0, "b", "a").Drop {
		t.Fatal("heal did not lift partition")
	}
}

func TestFirstMatchWins(t *testing.T) {
	n := New(11)
	n.Add(Rule{From: "a", To: "b", Faults: LinkFaults{}}) // explicit clean link
	n.Add(Rule{Faults: LinkFaults{Drop: 1}})              // drop everything else
	if n.Apply(0, "a", "b").Drop {
		t.Fatal("specific clean rule shadowed by later drop-all")
	}
	if !n.Apply(0, "a", "c").Drop {
		t.Fatal("drop-all rule not applied to unmatched link")
	}
}

func TestClear(t *testing.T) {
	n := New(13)
	n.Add(Rule{Faults: LinkFaults{Drop: 1}})
	n.Clear()
	if n.Apply(0, "a", "b").Drop {
		t.Fatal("cleared rule still active")
	}
}
