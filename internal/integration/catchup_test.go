package integration

import (
	"testing"

	"wedgechain/internal/core"
	"wedgechain/internal/edge"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/wire"
)

// Certified catch-up, end to end: nodes that fell off the chain — a
// crashed-and-restarted follower, a demoted ex-leader that served through
// a partition — ask the cloud for the certified frontier, fetch the
// missing frozen blocks from the current leader, verify every block
// against its cloud certificate, and rejoin as promotable followers. The
// cluster heals instead of wedging.

// A follower that crashes, loses its in-memory mirror, and restarts blank
// catches the chain back up through certified catch-up — and is then a
// first-class promotion candidate when the leader dies.
func TestCatchUpRestartedFollower(t *testing.T) {
	w := newRWorld(t, rworldOpts{})

	// Block 0 commits, certifies, and is mirrored by both followers.
	op0 := w.add(w.c1, "m0")
	op1 := w.add(w.c2, "m1")
	w.settle(t, 1*s)
	if op0.Phase != core.PhaseII || op1.Phase != core.PhaseII {
		t.Fatalf("warmup phases = %v / %v (err=%v / %v)", op0.Phase, op1.Phase, op0.Err, op1.Err)
	}

	// r1 crashes; block 1 commits without it.
	w.r1.Kill()
	w.add(w.c1, "m2")
	w.add(w.c2, "m3")
	w.settle(t, 1*s)
	if got := w.leader.LogBlocks(); got != 2 {
		t.Fatalf("leader blocks = %d, want 2", got)
	}

	// r1 restarts blank: no log, no leader, epoch zero. Its heartbeats
	// advertise the empty frontier; the cloud nudges it back with a signed
	// GroupJoin and certified catch-up refills the mirror.
	w.r1.Restart(w.sim.Now())
	if got := w.r1.LogBlocks(); got != 0 {
		t.Fatalf("restarted follower blocks = %d, want 0", got)
	}
	w.settle(t, 2*s)

	if got := w.r1.Leader(); got != "edge-1" {
		t.Fatalf("restarted follower leader = %q, want edge-1", got)
	}
	if got := w.r1.LogBlocks(); got != 2 {
		t.Fatalf("caught-up follower blocks = %d, want 2", got)
	}
	if got := w.r1.CertifiedBlocks(); got != 2 {
		t.Fatalf("caught-up follower certified = %d, want 2", got)
	}
	if got := w.r1.Stats().CatchUps; got == 0 {
		t.Fatal("restarted follower never requested catch-up")
	}
	if _, banned := w.cloud.Flagged("edge-1"); banned {
		t.Fatal("honest leader convicted during catch-up")
	}
	if _, banned := w.cloud.Flagged("edge-1.r1"); banned {
		t.Fatal("restarted follower convicted during catch-up")
	}

	// The rejoined follower is promotable: kill the leader and the cloud
	// picks r1 (full certified prefix, first in order) as the new leader.
	w.leader.Kill()
	w.settle(t, 2*s)
	if got := w.cloud.ChainLeader("edge-1"); got != "edge-1.r1" {
		t.Fatalf("chain leader = %q, want edge-1.r1", got)
	}
	if w.r1.IsFollower() {
		t.Fatal("promoted restarted follower still in follower mode")
	}

	// …and serves: a fresh write certifies, the pre-crash history reads
	// back Phase II.
	op4 := w.add(w.c1, "m4")
	op5 := w.add(w.c2, "m5")
	r := w.read(w.c2, 1)
	w.settle(t, 2*s)
	if op4.Phase != core.PhaseII || op5.Phase != core.PhaseII {
		t.Fatalf("post-promotion phases = %v / %v (err=%v / %v)", op4.Phase, op5.Phase, op4.Err, op5.Err)
	}
	if r.Phase != core.PhaseII || r.Err != nil {
		t.Fatalf("catch-up-history read phase = %v err = %v", r.Phase, r.Err)
	}
	if r.Block == nil || len(r.Block.Entries) != 2 {
		t.Fatalf("catch-up-history block = %+v", r.Block)
	}
}

// A leader partitioned from the cloud keeps acking Phase I but cannot
// certify; the lease expires and a follower is promoted. When the
// partition heals, the ex-leader must not wedge: it learns of its
// demotion, truncates its divergent uncertified tail, catches up through
// certified blocks, and rejoins as a promotable follower.
func TestCatchUpDemotedExLeader(t *testing.T) {
	fn := faultnet.New(7)
	w := newRWorld(t, rworldOpts{
		fault:      fn,
		retryEvery: 150 * ms,
	})

	// Block 0 certifies under the original leader.
	op0 := w.add(w.c1, "m0")
	op1 := w.add(w.c2, "m1")
	w.settle(t, 1*s)
	if op0.Phase != core.PhaseII || op1.Phase != core.PhaseII {
		t.Fatalf("warmup phases = %v / %v (err=%v / %v)", op0.Phase, op1.Phase, op0.Err, op1.Err)
	}

	// Partition the leader from the cloud (followers and clients still
	// reach it). Writes stick at Phase I; heartbeats stop arriving; the
	// lease expires and r1 is promoted.
	fn.Partition("edge-1", "cloud", 0, 0)
	op2 := w.add(w.c1, "m2")
	op3 := w.add(w.c2, "m3")
	w.settle(t, 2*s)

	if got := w.cloud.ChainLeader("edge-1"); got != "edge-1.r1" {
		t.Fatalf("chain leader = %q, want edge-1.r1", got)
	}
	// The clients rebound and re-sent; the promoted replica completed the
	// stuck writes and Phase II resumed.
	if op2.Phase != core.PhaseII || op3.Phase != core.PhaseII {
		t.Fatalf("partition-window phases = %v / %v (err=%v / %v)", op2.Phase, op3.Phase, op2.Err, op3.Err)
	}

	// More history accrues under the new leader while the ex-leader is
	// still cut off.
	op4 := w.add(w.c1, "m4")
	op5 := w.add(w.c2, "m5")
	w.settle(t, 1*s)
	if op4.Phase != core.PhaseII || op5.Phase != core.PhaseII {
		t.Fatalf("new-leader phases = %v / %v (err=%v / %v)", op4.Phase, op5.Phase, op4.Err, op5.Err)
	}

	// Heal. The ex-leader's heartbeats reach the cloud again; it is
	// re-admitted, told of the transfer, truncates whatever uncertified
	// tail it still holds, and mirrors the chain back to the frontier.
	fn.Heal("edge-1")
	w.settle(t, 3*s)

	if !w.leader.IsFollower() {
		t.Fatal("healed ex-leader did not demote")
	}
	if got := w.leader.Leader(); got != "edge-1.r1" {
		t.Fatalf("ex-leader recognizes leader %q, want edge-1.r1", got)
	}
	want := w.r1.LogBlocks()
	if got := w.leader.LogBlocks(); got != want {
		t.Fatalf("ex-leader blocks = %d, want %d", got, want)
	}
	if got := w.leader.CertifiedBlocks(); got != want {
		t.Fatalf("ex-leader certified = %d, want %d", got, want)
	}
	if got := w.cloud.Stats().Rejoins; got == 0 {
		t.Fatal("cloud never re-admitted the ex-leader")
	}
	for _, id := range []wire.NodeID{"edge-1", "edge-1.r1", "edge-1.r2"} {
		if _, banned := w.cloud.Flagged(id); banned {
			t.Fatalf("honest node %s convicted during rejoin", id)
		}
	}

	// The rejoined ex-leader is promotable again: kill both surviving
	// replicas and leadership walks back to it (possibly via a transfer to
	// the dead r2 that a second lease expiry corrects).
	w.r2.Kill()
	w.r1.Kill()
	w.settle(t, 3*s)
	if got := w.cloud.ChainLeader("edge-1"); got != "edge-1" {
		t.Fatalf("chain leader = %q, want edge-1 (re-promoted)", got)
	}
	if w.leader.IsFollower() {
		t.Fatal("re-promoted ex-leader still in follower mode")
	}

	op6 := w.add(w.c1, "m6")
	r := w.read(w.c1, 1)
	w.settle(t, 3*s)
	if op6.Phase != core.PhaseII || op6.Err != nil {
		t.Fatalf("re-promoted write phase = %v err = %v", op6.Phase, op6.Err)
	}
	if r.Phase != core.PhaseII || r.Err != nil {
		t.Fatalf("re-promoted history read phase = %v err = %v", r.Phase, r.Err)
	}
}

// A lying sync peer convicts like any edge: the leader serves catch-up
// blocks whose content contradicts the cloud certificates riding in the
// same response. The rejoining follower verifies before installing,
// files the leader's own transfer signature as evidence, and the cloud
// bans the liar and transfers leadership — after which catch-up resumes
// against the honest successor and the cluster still heals.
func TestCatchUpLyingSyncPeerConvicted(t *testing.T) {
	w := newRWorld(t, rworldOpts{
		leaderFault: &edge.Fault{TamperCatchUp: true},
		retryEvery:  150 * ms,
	})

	// The fault only bites the catch-up serving path, so normal
	// replication certifies two blocks cleanly first.
	op0 := w.add(w.c1, "m0")
	op1 := w.add(w.c2, "m1")
	w.settle(t, 1*s)
	if op0.Phase != core.PhaseII || op1.Phase != core.PhaseII {
		t.Fatalf("warmup phases = %v / %v (err=%v / %v)", op0.Phase, op1.Phase, op0.Err, op1.Err)
	}

	// r1 crashes, misses a block, restarts blank, and asks the leader for
	// history. Every shipped block is tampered; the certificate shipped
	// alongside block 0 contradicts the content, so r1 convicts the
	// serving peer instead of poisoning its mirror.
	w.r1.Kill()
	w.add(w.c1, "m2")
	w.add(w.c2, "m3")
	w.settle(t, 1*s)
	w.r1.Restart(w.sim.Now())
	w.settle(t, 3*s)

	if _, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("lying sync peer was not convicted")
	}
	for _, id := range []wire.NodeID{"edge-1.r1", "edge-1.r2"} {
		if _, b := w.cloud.Flagged(id); b {
			t.Fatalf("honest node %s convicted", id)
		}
	}
	// Conviction forces a transfer to the honest follower with the longest
	// certified prefix (r2 mirrored everything; r1 restarted blank).
	if got := w.cloud.ChainLeader("edge-1"); got != "edge-1.r2" {
		t.Fatalf("chain leader = %q, want edge-1.r2", got)
	}
	// r1 finishes catch-up against the honest successor and the tampered
	// blocks never took: its mirror matches the new leader's.
	if got, want := w.r1.LogBlocks(), w.r2.LogBlocks(); got != want {
		t.Fatalf("r1 blocks = %d, want %d", got, want)
	}
	if got, want := w.r1.CertifiedBlocks(), w.r2.CertifiedBlocks(); got != want {
		t.Fatalf("r1 certified = %d, want %d", got, want)
	}

	// The healed group still serves: a fresh write certifies end to end.
	op4 := w.add(w.c1, "m4")
	w.settle(t, 2*s)
	if op4.Phase != core.PhaseII {
		t.Fatalf("post-conviction write phase = %v (err=%v)", op4.Phase, op4.Err)
	}
}
