package integration

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"wedgechain/internal/client"
	"wedgechain/internal/core"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/wire"
)

// Chaos soak: the replicated cluster runs under a seeded fault schedule —
// background drop/duplicate/delay on every link plus scheduled partitions
// that force leadership transfers and rejoins — while clients keep
// writing. Two invariants must hold at the end, with the faults cleared
// and the dust settled:
//
//  1. No acked-then-certified write is lost: every operation the client
//     saw reach Phase II reads back as a certified block containing its
//     payload.
//  2. No honest node is convicted: drops, delays, duplicates and
//     partitions are indistinguishable from a slow network, and the
//     dispute machinery must never turn slowness into a guilty verdict.
//
// The schedule is a pure function of the seed, so a failure reproduces
// from the seed alone.

// chaosWrite pairs a write op with the payload it carried.
type chaosWrite struct {
	op      *client.Op
	payload []byte
}

// chaosRun drives rounds of paired writes (BatchSize 2 — one block per
// round) through the fault schedule seeded by seed, then verifies the
// two invariants.
func chaosRun(t *testing.T, seed int64, rounds int) {
	t.Helper()
	fn := faultnet.New(seed)
	// Partitions always precede the background noise rule (Partition
	// prepends; first match wins). The first window cuts the initial
	// leader off the cloud mid-run (lease expiry, transfer, later
	// rejoin); the second cuts whoever "edge-1.r1" is by then — usually
	// the promoted leader, forcing a second transfer and a second rejoin.
	fn.Partition("edge-1", "cloud", 1*s, 2200*ms)
	if rounds > 12 {
		fn.Partition("edge-1.r1", "cloud", 6*s, 7*s)
	}
	fn.Add(faultnet.Rule{Faults: faultnet.LinkFaults{
		Drop:     0.05,
		Dup:      0.08,
		DelayMax: 20 * ms,
	}})

	w := newRWorld(t, rworldOpts{
		fault:      fn,
		retryEvery: 150 * ms,
		gossip:     200 * ms,
	})

	// Warm the chain so block 0 certifies before the first partition.
	var writes []chaosWrite
	add := func(c *client.Core, payload string) {
		writes = append(writes, chaosWrite{op: w.add(c, payload), payload: []byte(payload)})
	}
	add(w.c1, "warm-0")
	add(w.c2, "warm-1")
	w.settle(t, 500*ms)

	for i := 0; i < rounds; i++ {
		add(w.c1, fmt.Sprintf("chaos-%d-a", i))
		add(w.c2, fmt.Sprintf("chaos-%d-b", i))
		w.settle(t, 400*ms)
	}

	// Lift the faults and drain: retries flush, the proof timeout settles
	// stragglers, rejoined nodes finish catch-up.
	fn.Clear()
	w.settle(t, 5*s)

	// The schedule must actually have bitten, or the run proves nothing.
	if st := fn.Snapshot(); st.Drops == 0 || st.Dups == 0 {
		t.Fatalf("fault schedule injected nothing: %v", st)
	}
	if got := w.cloud.Stats().Transfers; got == 0 {
		t.Fatal("chaos never forced a leadership transfer")
	}
	if got := w.cloud.Stats().Rejoins; got == 0 {
		t.Fatal("no node ever rejoined after the partitions")
	}

	// Invariant 2: no honest conviction — the group is all honest nodes.
	for _, id := range []wire.NodeID{"edge-1", "edge-1.r1", "edge-1.r2"} {
		if _, banned := w.cloud.Flagged(id); banned {
			t.Fatalf("honest node %s convicted under chaos", id)
		}
	}
	for i, rec := range writes {
		if rec.op.Verdict != nil && rec.op.Verdict.Guilty {
			t.Fatalf("write %d drew a guilty verdict against %s under chaos", i, rec.op.Verdict.Edge)
		}
	}

	// Invariant 1: every certified write reads back. Issue all the reads,
	// drain once, then check block contents.
	type check struct {
		rec  chaosWrite
		read *client.Op
	}
	var checks []check
	certified := 0
	for _, rec := range writes {
		if rec.op.Phase != core.PhaseII {
			continue // never certified from this client's view — see below
		}
		certified++
		checks = append(checks, check{rec: rec, read: w.read(w.c1, rec.op.BID)})
	}
	w.settle(t, 5*s)
	if certified == 0 {
		t.Fatal("no write certified — chaos run exercised nothing")
	}
	for _, c := range checks {
		if c.read.Err != nil || c.read.Phase != core.PhaseII || c.read.Block == nil {
			t.Fatalf("certified write %q lost: read bid=%d phase=%v err=%v",
				c.rec.payload, c.rec.op.BID, c.read.Phase, c.read.Err)
		}
		found := false
		for _, e := range c.read.Block.Entries {
			if bytes.Equal(e.Value, c.rec.payload) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("certified write %q missing from its block %d", c.rec.payload, c.rec.op.BID)
		}
	}
	t.Logf("chaos seed=%d rounds=%d: %d/%d writes certified, %v, transfers=%d rejoins=%d",
		seed, rounds, certified, len(writes), fn.Snapshot(),
		w.cloud.Stats().Transfers, w.cloud.Stats().Rejoins)
}

// TestChaosSmoke is the CI arm: one fixed seed, a short schedule, both
// invariants. Deterministic — a failure reproduces with `go test -run
// ChaosSmoke ./internal/integration/`.
func TestChaosSmoke(t *testing.T) {
	chaosRun(t, 42, 8)
}

// TestChaosSoak is the long arm: several seeds, longer schedules, double
// partition windows. Gated behind WEDGE_CHAOS_SOAK=1 (see `make chaos`).
func TestChaosSoak(t *testing.T) {
	if os.Getenv("WEDGE_CHAOS_SOAK") == "" {
		t.Skip("set WEDGE_CHAOS_SOAK=1 (or run `make chaos`) for the long soak")
	}
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			chaosRun(t, seed, 40)
		})
	}
}
