package integration

import (
	"testing"

	"wedgechain/internal/client"
	"wedgechain/internal/cloud"
	"wedgechain/internal/core"
	"wedgechain/internal/edge"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/sim"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// rworld is a replicated-shard cluster: one cloud, a three-member replica
// group for chain "edge-1" (leader edge-1, followers edge-1.r1 and
// edge-1.r2), and two clients.
type rworld struct {
	sim    *sim.Sim
	cloud  *cloud.Node
	leader *edge.Node
	r1, r2 *edge.Node
	c1, c2 *client.Core
}

type rworldOpts struct {
	leaderFault *edge.Fault
	r1Fault     *edge.Fault
	gossip      int64
	proofTO     int64
	lease       int64
	certTO      int64
	fault       *faultnet.Net // chaos schedules applied to every sim frame
	retryEvery  int64         // client transport-retry period (0 = off)
}

func newRWorld(t *testing.T, o rworldOpts) *rworld {
	t.Helper()
	if o.proofTO == 0 {
		o.proofTO = 2 * s
	}
	if o.lease == 0 {
		o.lease = 300 * ms
	}
	if o.certTO == 0 {
		o.certTO = 1 * s
	}
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "edge-1.r1", "edge-1.r2", "c1", "c2"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	cl := cloud.New(cloud.Config{
		ID:           "cloud",
		Levels:       3,
		PageCap:      4,
		GossipEvery:  o.gossip,
		GossipTo:     []wire.NodeID{"c1", "c2"},
		LeaseTimeout: o.lease,
		CertTimeout:  o.certTO,
	}, keys["cloud"], reg)
	cl.RegisterGroup("edge-1", "edge-1", []wire.NodeID{"edge-1.r1", "edge-1.r2"})
	mkEdge := func(id wire.NodeID, follower bool, fault *edge.Fault) *edge.Node {
		cfg := edge.Config{
			ID:              id,
			Chain:           "edge-1",
			Cloud:           "cloud",
			BatchSize:       2,
			FlushEvery:      100 * ms,
			L0Threshold:     100,
			LevelThresholds: []int{2, 4, 8},
			PageCap:         4,
			HeartbeatEvery:  50 * ms,
			Fault:           fault,
		}
		if follower {
			cfg.Follower = true
		} else {
			cfg.Followers = []wire.NodeID{"edge-1.r1", "edge-1.r2"}
		}
		return edge.New(cfg, keys[id], reg)
	}
	w := &rworld{
		cloud:  cl,
		leader: mkEdge("edge-1", false, o.leaderFault),
		r1:     mkEdge("edge-1.r1", true, o.r1Fault),
		r2:     mkEdge("edge-1.r2", true, nil),
	}
	mkClient := func(id wire.NodeID) *client.Core {
		return client.New(client.Config{
			ID:           id,
			Edge:         "edge-1",
			Cloud:        "cloud",
			ProofTimeout: o.proofTO,
			RetryEvery:   o.retryEvery,
		}, keys[id], reg)
	}
	w.c1, w.c2 = mkClient("c1"), mkClient("c2")
	w.sim = sim.New(sim.Config{
		TickEvery:   5 * ms,
		DefaultLink: sim.Link{Latency: 1 * ms},
		Fault:       o.fault,
	})
	w.sim.Add(cl)
	w.sim.Add(w.leader)
	w.sim.Add(w.r1)
	w.sim.Add(w.r2)
	w.sim.Add(w.c1)
	w.sim.Add(w.c2)
	return w
}

func (w *rworld) add(c *client.Core, payload string) *client.Op {
	op, envs := c.Add(w.sim.Now(), []byte(payload))
	w.sim.Inject(envs)
	return op
}

func (w *rworld) read(c *client.Core, bid uint64) *client.Op {
	op, envs := c.Read(w.sim.Now(), bid)
	w.sim.Inject(envs)
	return op
}

// settle advances virtual time unconditionally (unlike world.settle's
// Drain, which stops at the first quiet period — too early for failover,
// whose triggers are timeouts that fire into silence).
func (w *rworld) settle(t *testing.T, limit int64) {
	t.Helper()
	w.sim.RunUntil(w.sim.Now() + limit)
}

// promoted returns the replica that currently leads the chain.
func (w *rworld) promoted(t *testing.T) *edge.Node {
	t.Helper()
	switch w.cloud.ChainLeader("edge-1") {
	case "edge-1":
		return w.leader
	case "edge-1.r1":
		return w.r1
	case "edge-1.r2":
		return w.r2
	}
	t.Fatalf("unknown chain leader %q", w.cloud.ChainLeader("edge-1"))
	return nil
}

// A leader that dies the instant it cuts a block — before acknowledging,
// replicating or certifying it — must not strand the writers: the cloud's
// lease expires, a follower with the full certified history is promoted,
// and the clients' rebound resends complete both stuck writes on the new
// leader.
func TestFailoverKillLeaderMidBatch(t *testing.T) {
	w := newRWorld(t, rworldOpts{
		leaderFault: &edge.Fault{KillMidBatch: true, KillAtBID: 1},
	})

	// Block 0 commits and certifies normally, and is mirrored.
	op0 := w.add(w.c1, "m0")
	op1 := w.add(w.c2, "m1")
	w.settle(t, 1*s)
	if op0.Phase != core.PhaseII || op1.Phase != core.PhaseII {
		t.Fatalf("warmup phases = %v / %v (err=%v / %v)", op0.Phase, op1.Phase, op0.Err, op1.Err)
	}

	// Block 1's cut kills the leader: neither writer is acknowledged.
	op2 := w.add(w.c1, "m2")
	op3 := w.add(w.c2, "m3")
	w.settle(t, 4*s)

	if !w.leader.Killed() {
		t.Fatal("leader should have crashed cutting block 1")
	}
	if got := w.cloud.Stats().Transfers; got != 1 {
		t.Fatalf("transfers = %d, want 1", got)
	}
	newLeader := w.cloud.ChainLeader("edge-1")
	if newLeader == "edge-1" {
		t.Fatal("chain leader did not change")
	}
	if w.promoted(t).IsFollower() {
		t.Fatal("promoted replica still in follower mode")
	}
	for i, op := range []*client.Op{op2, op3} {
		if op.Err != nil {
			t.Fatalf("post-kill op%d err = %v", i, op.Err)
		}
		if op.Phase != core.PhaseII {
			t.Fatalf("post-kill op%d phase = %v, want phase-II", i, op.Phase)
		}
	}
	for i, c := range []*client.Core{w.c1, w.c2} {
		if c.Edge() != newLeader {
			t.Fatalf("client %d bound to %q, want %q", i, c.Edge(), newLeader)
		}
		if c.Chain() != "edge-1" {
			t.Fatalf("client %d chain = %q, want edge-1", i, c.Chain())
		}
		if got := c.Stats().Failovers; got != 1 {
			t.Fatalf("client %d failovers = %d, want 1", i, got)
		}
	}

	// The mirrored history serves: block 0 reads back Phase II from the
	// promoted replica.
	r := w.read(w.c2, 0)
	w.settle(t, 2*s)
	if r.Phase != core.PhaseII || r.Err != nil {
		t.Fatalf("mirrored read phase = %v err = %v", r.Phase, r.Err)
	}
	if r.Block == nil || len(r.Block.Entries) != 2 {
		t.Fatalf("mirrored block = %+v", r.Block)
	}
}

// A leader that equivocates on the replication stream — clients and cloud
// see one block, followers another — is convicted by its own followers the
// moment the cloud certificate contradicts the mirror, and the conviction
// triggers a leadership transfer. The chain keeps accepting writes under
// the promoted replica.
func TestFailoverEquivocatingLeaderConvicted(t *testing.T) {
	w := newRWorld(t, rworldOpts{
		leaderFault: &edge.Fault{EquivocateReplication: true},
	})

	op0 := w.add(w.c1, "m0")
	op1 := w.add(w.c2, "m1")
	w.settle(t, 3*s)

	// The honest block certified, so the writers are unharmed…
	if op0.Phase != core.PhaseII || op1.Phase != core.PhaseII {
		t.Fatalf("writer phases = %v / %v (err=%v / %v)", op0.Phase, op1.Phase, op0.Err, op1.Err)
	}
	// …while the followers convicted the leader with the tampered stream.
	if _, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("equivocating leader not convicted")
	}
	if got := w.cloud.Stats().Transfers; got == 0 {
		t.Fatal("conviction did not trigger a transfer")
	}
	newLeader := w.cloud.ChainLeader("edge-1")
	if newLeader == "edge-1" {
		t.Fatal("chain leader did not change")
	}

	// The promoted replica's mirror of block 0 is poisoned (it holds the
	// tampered copy), but the chain accepts and certifies fresh writes.
	op2 := w.add(w.c1, "m2")
	op3 := w.add(w.c2, "m3")
	w.settle(t, 2*s)
	for i, op := range []*client.Op{op2, op3} {
		if op.Err != nil || op.Phase != core.PhaseII {
			t.Fatalf("post-transfer op%d phase = %v err = %v", i, op.Phase, op.Err)
		}
	}
	// The successor must not have been convicted for the poison it inherited.
	if _, banned := w.cloud.Flagged(newLeader); banned {
		t.Fatalf("innocent successor %q convicted", newLeader)
	}
}

// A promoted follower that serves a stale view — hiding the certified tail
// it mirrored — is convicted through the standard omission machinery
// (cloud gossip contradicts its signed denial), and the cloud fails over
// again to the remaining honest replica.
func TestFailoverStaleFollowerConvicted(t *testing.T) {
	w := newRWorld(t, rworldOpts{
		leaderFault: &edge.Fault{KillMidBatch: true, KillAtBID: 2},
		r1Fault:     &edge.Fault{PromoteStale: true, PromoteStaleFrom: 1},
		gossip:      100 * ms,
	})

	// Blocks 0 and 1 commit, certify, and are mirrored by both followers.
	for _, m := range []string{"m0", "m1", "m2", "m3"} {
		w.add(w.c1, m)
	}
	w.settle(t, 1*s)

	// Block 2's cut kills the leader; the lease expires and r1 — equal
	// certified prefix, listed first — is promoted, and starts serving a
	// stale view that pretends block 1 never happened.
	w.add(w.c1, "m4")
	w.add(w.c2, "m5")
	w.settle(t, 2*s)
	if w.cloud.ChainLeader("edge-1") != "edge-1.r1" {
		t.Fatalf("expected r1 promoted first, leader = %q", w.cloud.ChainLeader("edge-1"))
	}

	// A read of the hidden, gossip-covered block 1 yields a signed denial
	// — a provable omission that convicts r1 and triggers the second
	// transfer.
	r := w.read(w.c2, 1)
	w.settle(t, 4*s)

	if _, banned := w.cloud.Flagged("edge-1.r1"); !banned {
		t.Fatal("stale-serving promoted follower not convicted")
	}
	if r.Verdict == nil || !r.Verdict.Guilty || r.Verdict.Edge != "edge-1.r1" {
		t.Fatalf("read verdict = %+v, want guilty edge-1.r1", r.Verdict)
	}
	if got := w.cloud.ChainLeader("edge-1"); got != "edge-1.r2" {
		t.Fatalf("chain leader = %q, want edge-1.r2", got)
	}
	if got := w.cloud.Stats().Transfers; got != 2 {
		t.Fatalf("transfers = %d, want 2", got)
	}

	// The surviving honest replica serves the full history.
	r2 := w.read(w.c2, 1)
	w.settle(t, 2*s)
	if r2.Phase != core.PhaseII || r2.Err != nil {
		t.Fatalf("post-recovery read phase = %v err = %v", r2.Phase, r2.Err)
	}
	if got := w.c2.Epoch(); got != 2 {
		t.Fatalf("client epoch = %d, want 2", got)
	}
}
