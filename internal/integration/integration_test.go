// Package integration exercises the full WedgeChain protocol — client,
// edge, cloud — over the discrete-event simulator, including every
// byzantine behaviour the paper's threat model considers.
package integration

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"wedgechain/internal/client"
	"wedgechain/internal/cloud"
	"wedgechain/internal/core"
	"wedgechain/internal/edge"
	"wedgechain/internal/sim"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

const (
	ms = int64(1e6)
	s  = int64(1e9)
)

// world is a ready-to-run cluster: one cloud, one edge, two clients.
type world struct {
	sim   *sim.Sim
	cloud *cloud.Node
	edge  *edge.Node
	c1    *client.Core
	c2    *client.Core
}

type worldOpts struct {
	batch     int
	l0Thresh  int
	fault     *edge.Fault
	gossip    int64
	freshness int64
	proofTO   int64
	noPrune   bool // disable read-evidence pruning (E1 before/after shape)
}

func newWorld(t *testing.T, o worldOpts) *world {
	t.Helper()
	if o.batch == 0 {
		o.batch = 2
	}
	if o.l0Thresh == 0 {
		o.l0Thresh = 2
	}
	if o.proofTO == 0 {
		o.proofTO = 200 * ms
	}
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1", "c2"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	cl := cloud.New(cloud.Config{
		ID:          "cloud",
		Levels:      3,
		PageCap:     4,
		GossipEvery: o.gossip,
		GossipTo:    []wire.NodeID{"c1", "c2"},
	}, keys["cloud"], reg)
	ed := edge.New(edge.Config{
		ID:              "edge-1",
		Cloud:           "cloud",
		BatchSize:       o.batch,
		L0Threshold:     o.l0Thresh,
		LevelThresholds: []int{2, 4, 8},
		PageCap:         4,
		NoL0Prune:       o.noPrune,
		Fault:           o.fault,
	}, keys["edge-1"], reg)
	mkClient := func(id wire.NodeID) *client.Core {
		return client.New(client.Config{
			ID:              id,
			Edge:            "edge-1",
			Cloud:           "cloud",
			ProofTimeout:    o.proofTO,
			FreshnessWindow: o.freshness,
		}, keys[id], reg)
	}
	c1, c2 := mkClient("c1"), mkClient("c2")

	sm := sim.New(sim.Config{
		TickEvery:   5 * ms,
		DefaultLink: sim.Link{Latency: 1 * ms},
	})
	sm.Add(cl)
	sm.Add(ed)
	sm.Add(c1)
	sm.Add(c2)
	return &world{sim: sm, cloud: cl, edge: ed, c1: c1, c2: c2}
}

func (w *world) add(c *client.Core, payload string) *client.Op {
	op, envs := c.Add(w.sim.Now(), []byte(payload))
	w.sim.Inject(envs)
	return op
}

func (w *world) put(c *client.Core, key, value string) *client.Op {
	op, envs := c.Put(w.sim.Now(), []byte(key), []byte(value))
	w.sim.Inject(envs)
	return op
}

func (w *world) read(c *client.Core, bid uint64) *client.Op {
	op, envs := c.Read(w.sim.Now(), bid)
	w.sim.Inject(envs)
	return op
}

func (w *world) get(c *client.Core, key string) *client.Op {
	op, envs := c.Get(w.sim.Now(), []byte(key))
	w.sim.Inject(envs)
	return op
}

func (w *world) settle(t *testing.T, limit int64) {
	t.Helper()
	w.sim.Drain(w.sim.Now() + limit)
}

func TestHonestAddReachesBothPhases(t *testing.T) {
	w := newWorld(t, worldOpts{})
	op1 := w.add(w.c1, "m0")
	op2 := w.add(w.c2, "m1")
	w.settle(t, 2*s)

	for i, op := range []*client.Op{op1, op2} {
		if op.Phase != core.PhaseII {
			t.Fatalf("op%d phase = %v, want phase-II (err=%v)", i+1, op.Phase, op.Err)
		}
		if op.Err != nil {
			t.Fatalf("op%d err = %v", i+1, op.Err)
		}
		if op.BID != 0 {
			t.Fatalf("op%d bid = %d, want 0", i+1, op.BID)
		}
		if op.PhaseIAt >= op.PhaseIIAt {
			t.Fatalf("op%d: Phase I at %d not before Phase II at %d", i+1, op.PhaseIAt, op.PhaseIIAt)
		}
	}
	if got := w.edge.Log().CertifiedBlocks(); got != 1 {
		t.Fatalf("certified blocks = %d", got)
	}
}

func TestAgreementTwoReadersSameBlock(t *testing.T) {
	w := newWorld(t, worldOpts{})
	w.add(w.c1, "m0")
	w.add(w.c1, "m1")
	w.settle(t, 2*s)

	r1 := w.read(w.c1, 0)
	r2 := w.read(w.c2, 0)
	w.settle(t, 2*s)

	if r1.Phase != core.PhaseII || r2.Phase != core.PhaseII {
		t.Fatalf("read phases = %v / %v", r1.Phase, r2.Phase)
	}
	if r1.Block == nil || r2.Block == nil {
		t.Fatal("missing blocks")
	}
	if !bytes.Equal(r1.Block.Canonical(), r2.Block.Canonical()) {
		t.Fatal("agreement violated: two Phase II readers saw different blocks")
	}
}

func TestPhaseIReadGetsForwardedProof(t *testing.T) {
	// Slow the edge-cloud link so a read lands between Phase I and
	// Phase II of the block.
	w := newWorld(t, worldOpts{})
	reg := wcrypto.NewRegistry()
	_ = reg
	sm := w.sim
	_ = sm
	// Reconfigure: rebuild world with a slow cloud link.
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	r2 := wcrypto.NewRegistry()
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1", "c2"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		r2.Register(id, k.Pub)
	}
	cl := cloud.New(cloud.Config{ID: "cloud", Levels: 3, PageCap: 4}, keys["cloud"], r2)
	ed := edge.New(edge.Config{ID: "edge-1", Cloud: "cloud", BatchSize: 2, L0Threshold: 100, LevelThresholds: []int{2, 4, 8}}, keys["edge-1"], r2)
	c1 := client.New(client.Config{ID: "c1", Edge: "edge-1", Cloud: "cloud", ProofTimeout: 10 * s}, keys["c1"], r2)
	c2 := client.New(client.Config{ID: "c2", Edge: "edge-1", Cloud: "cloud", ProofTimeout: 10 * s}, keys["c2"], r2)
	slow := sim.New(sim.Config{
		TickEvery:   5 * ms,
		DefaultLink: sim.Link{Latency: 1 * ms},
		Links: map[[2]wire.NodeID]sim.Link{
			{"edge-1", "cloud"}: {Latency: 100 * ms},
			{"cloud", "edge-1"}: {Latency: 100 * ms},
		},
	})
	slow.Add(cl)
	slow.Add(ed)
	slow.Add(c1)
	slow.Add(c2)

	op1, envs := c1.Add(slow.Now(), []byte("m0"))
	slow.Inject(envs)
	op2, envs2 := c1.Add(slow.Now(), []byte("m1"))
	slow.Inject(envs2)
	// Run just past Phase I but before the certify round trip completes.
	slow.RunUntil(slow.Now() + 50*ms)
	if op1.Phase != core.PhaseI {
		t.Fatalf("op1 phase = %v, want phase-I", op1.Phase)
	}
	rop, envs3 := c2.Read(slow.Now(), 0)
	slow.Inject(envs3)
	slow.RunUntil(slow.Now() + 50*ms)
	if rop.Phase != core.PhaseI {
		t.Fatalf("read phase = %v, want phase-I (Phase I read before certification)", rop.Phase)
	}
	// Let certification finish; the edge forwards the proof to the reader.
	slow.RunUntil(slow.Now() + 500*ms)
	if rop.Phase != core.PhaseII {
		t.Fatalf("read phase = %v, want phase-II after proof forwarding (err=%v)", rop.Phase, rop.Err)
	}
	if op1.Phase != core.PhaseII || op2.Phase != core.PhaseII {
		t.Fatalf("writer phases = %v/%v", op1.Phase, op2.Phase)
	}
}

func TestPutsMergesAndVerifiedGets(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 2})
	model := map[string]string{}
	// 24 puts -> 12 blocks -> several L0 merges and at least one cascade.
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("k%02d", i%8)
		val := fmt.Sprintf("v%02d", i)
		model[key] = val
		c := w.c1
		if i%2 == 1 {
			c = w.c2
		}
		op := w.put(c, key, val)
		w.settle(t, 2*s)
		if op.Err != nil {
			t.Fatalf("put %d: %v", i, op.Err)
		}
	}
	w.settle(t, 5*s)
	if w.edge.Stats().Merges == 0 {
		t.Fatal("no merges happened; test parameters wrong")
	}
	for key, want := range model {
		op := w.get(w.c2, key)
		w.settle(t, 2*s)
		if op.Err != nil {
			t.Fatalf("get %s: %v", key, op.Err)
		}
		if !op.Found || string(op.GotValue) != want {
			t.Fatalf("get %s = %q (found=%v), want %q", key, op.GotValue, op.Found, want)
		}
		if op.Phase != core.PhaseII {
			t.Fatalf("get %s phase = %v", key, op.Phase)
		}
	}
	// Verified non-existence.
	op := w.get(w.c1, "missing-key")
	w.settle(t, 2*s)
	if op.Err != nil {
		t.Fatalf("get missing: %v", op.Err)
	}
	if op.Found {
		t.Fatal("missing key reported found")
	}
}

func TestGetBeforeAnyMerge(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100})
	w.put(w.c1, "a", "1")
	w.put(w.c2, "b", "2")
	w.settle(t, 2*s)
	op := w.get(w.c1, "a")
	w.settle(t, 2*s)
	if op.Err != nil || !op.Found || string(op.GotValue) != "1" {
		t.Fatalf("get a = %q found=%v err=%v", op.GotValue, op.Found, op.Err)
	}
	op = w.get(w.c1, "zz")
	w.settle(t, 2*s)
	if op.Err != nil || op.Found {
		t.Fatalf("get zz found=%v err=%v", op.Found, op.Err)
	}
}

func TestTamperedAddIsDetectedAndPunished(t *testing.T) {
	fault := &edge.Fault{TamperAddVictim: "c1"}
	w := newWorld(t, worldOpts{fault: fault})
	op1 := w.add(w.c1, "victim-entry")
	w.add(w.c2, "other-entry")
	w.settle(t, 5*s)

	if !errors.Is(op1.Err, client.ErrEdgeLied) {
		t.Fatalf("victim op err = %v, want ErrEdgeLied (phase=%v)", op1.Err, op1.Phase)
	}
	if op1.Verdict == nil || !op1.Verdict.Guilty {
		t.Fatalf("verdict = %+v, want guilty", op1.Verdict)
	}
	if _, flagged := w.cloud.Flagged("edge-1"); !flagged {
		t.Fatal("cloud did not punish the edge")
	}
	if w.c1.Stats().LiesDetected == 0 {
		t.Fatal("client did not count the lie")
	}
}

func TestTamperedReadIsDetectedAndPunished(t *testing.T) {
	fault := &edge.Fault{}
	w := newWorld(t, worldOpts{fault: fault})
	w.add(w.c1, "m0")
	w.add(w.c1, "m1")
	w.settle(t, 2*s)

	fault.TamperReadVictim = "c2"
	rop := w.read(w.c2, 0)
	// Use RunUntil: the lie only surfaces through the client's proof
	// timeout, which Drain's quiet-period heuristic would skip past.
	w.sim.RunUntil(w.sim.Now() + 5*s)

	if !errors.Is(rop.Err, client.ErrEdgeLied) {
		t.Fatalf("read err = %v, want ErrEdgeLied (phase=%v)", rop.Err, rop.Phase)
	}
	if _, flagged := w.cloud.Flagged("edge-1"); !flagged {
		t.Fatal("cloud did not punish the edge")
	}
}

func TestDoubleCertifyFlaggedByCloud(t *testing.T) {
	fault := &edge.Fault{DoubleCertify: true}
	w := newWorld(t, worldOpts{fault: fault})
	w.add(w.c1, "m0")
	w.add(w.c2, "m1")
	w.settle(t, 2*s)

	if _, flagged := w.cloud.Flagged("edge-1"); !flagged {
		t.Fatal("certify-time equivocation not flagged")
	}
	if w.cloud.Stats().Conflicts == 0 {
		t.Fatal("no conflict recorded")
	}
}

func TestOmissionDetectedViaGossip(t *testing.T) {
	fault := &edge.Fault{OmitBlocks: map[uint64]bool{0: true}}
	w := newWorld(t, worldOpts{fault: fault, gossip: 20 * ms})
	w.add(w.c1, "m0")
	w.add(w.c1, "m1")
	w.settle(t, 2*s)
	// Wait for gossip to reach c2.
	w.sim.RunUntil(w.sim.Now() + 100*ms)
	if w.c2.Gossip() == nil {
		t.Fatal("no gossip received")
	}

	rop := w.read(w.c2, 0)
	w.sim.RunUntil(w.sim.Now() + 2*s)

	if !errors.Is(rop.Err, client.ErrEdgeLied) {
		t.Fatalf("read err = %v, want ErrEdgeLied", rop.Err)
	}
	if rop.Verdict == nil || !rop.Verdict.Guilty || rop.Verdict.Kind != wire.DisputeOmission {
		t.Fatalf("verdict = %+v", rop.Verdict)
	}
	if _, flagged := w.cloud.Flagged("edge-1"); !flagged {
		t.Fatal("cloud did not punish the omission")
	}
}

func TestDroppedCertifyConvictedOnTimeout(t *testing.T) {
	fault := &edge.Fault{DropCertify: true}
	w := newWorld(t, worldOpts{fault: fault, proofTO: 100 * ms})
	op := w.add(w.c1, "m0")
	w.add(w.c2, "m1")
	w.sim.RunUntil(w.sim.Now() + 3*s)

	if op.Phase != core.PhaseI && !op.Done {
		t.Fatalf("op should have reached Phase I; got %v", op.Phase)
	}
	if !errors.Is(op.Err, client.ErrEdgeLied) {
		t.Fatalf("op err = %v, want ErrEdgeLied after proof timeout", op.Err)
	}
	if op.Verdict == nil || !op.Verdict.Guilty {
		t.Fatalf("verdict = %+v", op.Verdict)
	}
}

func TestFreshnessWindowRejectsFrozenIndex(t *testing.T) {
	fault := &edge.Fault{}
	w := newWorld(t, worldOpts{fault: fault, freshness: 500 * ms})
	// Build some merged state honestly.
	for i := 0; i < 12; i++ {
		w.put(w.c1, fmt.Sprintf("k%d", i), "v")
		w.settle(t, 2*s)
	}
	w.settle(t, 5*s)
	if w.edge.Stats().Merges == 0 {
		t.Fatal("no merges; cannot test freshness")
	}
	// Freeze the index and let virtual time pass the freshness window.
	fault.FreezeIndex = true
	w.sim.RunUntil(w.sim.Now() + 2*s)

	op := w.get(w.c2, "nonexistent")
	w.sim.RunUntil(w.sim.Now() + 2*s)
	if !errors.Is(op.Err, client.ErrStale) {
		t.Fatalf("get err = %v, want ErrStale", op.Err)
	}
	if w.c2.Stats().StaleRejected == 0 {
		t.Fatal("stale responses not counted")
	}
}

func TestReservationMakesAddsIdempotent(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2})
	var start uint64
	var granted bool
	w.c1.SetReserveHandler(func(s uint64, n uint32) { start, granted = s, true })
	w.sim.Inject(w.c1.Reserve(w.sim.Now(), 1))
	w.settle(t, 1*s)
	if !granted {
		t.Fatal("reservation not granted")
	}
	op, envs := w.c1.AddAt(w.sim.Now(), []byte("reserved-entry"), start)
	w.sim.Inject(envs)
	w.add(w.c2, "filler") // completes the batch
	w.settle(t, 2*s)
	if op.Phase != core.PhaseII {
		t.Fatalf("reserved add phase = %v (err=%v)", op.Phase, op.Err)
	}
	// The committed block must hold the entry at the reserved position.
	blk, err := w.edge.Log().Block(op.BID)
	if err != nil {
		t.Fatal(err)
	}
	idx := int(start - blk.StartPos)
	if string(blk.Entries[idx].Value) != "reserved-entry" {
		t.Fatalf("entry at reserved position = %q", blk.Entries[idx].Value)
	}
	// A replayed entry for the same position must not commit again.
	before := w.edge.Log().NumBlocks()
	op2, envs2 := w.c1.AddAt(w.sim.Now(), []byte("replayed"), start)
	w.sim.Inject(envs2)
	w.settle(t, 1*s)
	if op2.Phase != core.PhaseNone {
		t.Fatalf("replayed add advanced to %v", op2.Phase)
	}
	if w.edge.Log().NumBlocks() != before {
		t.Fatal("replay created new blocks")
	}
}

func TestValidityOnlyClientEntriesCommit(t *testing.T) {
	w := newWorld(t, worldOpts{})
	w.add(w.c1, "m0")
	w.add(w.c2, "m1")
	w.settle(t, 2*s)
	blk, err := w.edge.Log().Block(0)
	if err != nil {
		t.Fatal(err)
	}
	reg := wcrypto.NewRegistry()
	for _, id := range []wire.NodeID{"c1", "c2"} {
		k := wcrypto.DeterministicKey(id)
		reg.Register(id, k.Pub)
	}
	for i := range blk.Entries {
		e := &blk.Entries[i]
		if err := wcrypto.VerifyMsg(reg, e.Client, e, e.Sig); err != nil {
			t.Fatalf("committed entry %d fails validity: %v", i, err)
		}
	}
}

func TestGossipCountsCertifiedBlocks(t *testing.T) {
	w := newWorld(t, worldOpts{gossip: 20 * ms})
	for i := 0; i < 6; i++ {
		w.add(w.c1, fmt.Sprintf("m%d", i))
		w.settle(t, 1*s)
	}
	w.sim.RunUntil(w.sim.Now() + 200*ms)
	g := w.c1.Gossip()
	if g == nil {
		t.Fatal("no gossip")
	}
	if g.Blocks != 3 {
		t.Fatalf("gossip blocks = %d, want 3", g.Blocks)
	}
}
