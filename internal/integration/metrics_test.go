package integration

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	wedge "wedgechain"
	"wedgechain/internal/obs"
)

// TestMetricsScrapeEndToEnd drives a live façade cluster, scrapes its
// registry over HTTP, and asserts the headline series are present: the
// trust-lag histogram has samples after certified puts, the cloud
// certification counter moved, both dispute verdict series exist (at
// zero), and /healthz and /debug/pprof/ respond.
func TestMetricsScrapeEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	cluster, err := wedge.NewCluster(wedge.Config{
		Edges:      1,
		BatchSize:  2,
		FlushEvery: 5 * time.Millisecond,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Metrics() != reg {
		t.Fatal("Cluster.Metrics() did not return the configured registry")
	}

	srv, err := obs.StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := cluster.NewClient("metrics-client", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		rc, err := c.Put([]byte("mk"), []byte("mv"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if err := rc.WaitPhaseII(10 * time.Second); err != nil {
			t.Fatalf("put %d phase II: %v", i, err)
		}
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE wedge_trust_lag_seconds histogram",
		`wedge_trust_lag_seconds_count{node="edge-1",stage="edge"}`,
		`wedge_trust_lag_seconds_count{node="metrics-client",stage="client"}`,
		"wedge_certifies_total",
		`wedge_disputes_total{node="cloud",verdict="guilty"} 0`,
		`wedge_disputes_total{node="cloud",verdict="not_guilty"} 0`,
		"wedge_edge_writes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The certified puts must have produced trust-lag samples on both
	// stages — the scrape is the SLO's delivery path.
	for _, stage := range []string{"edge", "client"} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "wedge_trust_lag_seconds_count{") &&
				strings.Contains(line, `stage="`+stage+`"`) &&
				!strings.HasSuffix(line, " 0") {
				found = true
			}
		}
		if !found {
			t.Errorf("no trust-lag samples for stage=%q after certified puts", stage)
		}
	}
	if reg.CounterValue("wedge_certifies_total") == 0 {
		t.Error("wedge_certifies_total did not move")
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: status %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", code)
	}
}
