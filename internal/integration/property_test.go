package integration

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wedgechain/internal/client"
	"wedgechain/internal/core"
	"wedgechain/internal/edge"
)

// TestPropertyGetsMatchModelMap drives random interleavings of puts and
// gets from two clients through the full protocol (edge + cloud + merges)
// and checks every verified get against a model map — the end-to-end
// version of the paper's correctness claim: reads observe
// latest-write-wins state with valid proofs, across compactions.
func TestPropertyGetsMatchModelMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, worldOpts{batch: 2, l0Thresh: 2})
		model := map[string]string{}
		ver := 0
		for step := 0; step < 30; step++ {
			c := w.c1
			if rng.Intn(2) == 1 {
				c = w.c2
			}
			key := fmt.Sprintf("k%d", rng.Intn(6))
			if rng.Intn(3) > 0 { // two thirds writes
				// Write in pairs (batch size 2) so the block always
				// cuts: buffered entries are invisible to gets until
				// the block forms, by design.
				ver++
				val := fmt.Sprintf("v%d", ver)
				op := w.put(c, key, val)
				key2 := fmt.Sprintf("k%d", rng.Intn(6))
				ver++
				val2 := fmt.Sprintf("v%d", ver)
				op2 := w.put(w.c2, key2, val2)
				w.settle(t, 2*s)
				if op.Err != nil || op2.Err != nil {
					t.Logf("seed %d: put failed: %v / %v", seed, op.Err, op2.Err)
					return false
				}
				// The pair lands in one block; position order decides
				// which write wins when key == key2.
				model[key] = val
				model[key2] = val2
			} else {
				op := w.get(c, key)
				w.settle(t, 2*s)
				if op.Err != nil {
					t.Logf("seed %d: get failed: %v", seed, op.Err)
					return false
				}
				want, exists := model[key]
				if op.Found != exists {
					t.Logf("seed %d: get %s found=%v want %v", seed, key, op.Found, exists)
					return false
				}
				if exists && string(op.GotValue) != want {
					t.Logf("seed %d: get %s = %q want %q", seed, key, op.GotValue, want)
					return false
				}
			}
		}
		// Final sweep: everything verified Phase II.
		w.settle(t, 5*s)
		for key, want := range model {
			op := w.get(w.c1, key)
			w.settle(t, 2*s)
			if op.Err != nil || !op.Found || string(op.GotValue) != want {
				t.Logf("seed %d: final get %s = %q,%v,%v want %q", seed, key, op.GotValue, op.Found, op.Err, want)
				return false
			}
			if op.Phase != core.PhaseII {
				t.Logf("seed %d: final get %s phase %v", seed, key, op.Phase)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEveryLieConvicted randomizes which lie the edge tells and
// checks the paper's core guarantee: whatever the lie, the victim ends
// with a guilty verdict and the cloud bans the edge.
func TestPropertyEveryLieConvicted(t *testing.T) {
	lies := []string{"tamper-add", "tamper-read", "double-certify", "drop-certify"}
	for _, lie := range lies {
		lie := lie
		t.Run(lie, func(t *testing.T) {
			opts := worldOpts{proofTO: 100 * ms}
			fault := &edgeFault{}
			switch lie {
			case "tamper-add":
				fault.f.TamperAddVictim = "c1"
			case "tamper-read":
				// applied after commit, below
			case "double-certify":
				fault.f.DoubleCertify = true
			case "drop-certify":
				fault.f.DropCertify = true
			}
			opts.fault = &fault.f
			w := newWorld(t, opts)

			var victim *client.Op
			op1 := w.add(w.c1, "data-1")
			w.add(w.c2, "data-2")
			victim = op1
			if lie == "tamper-read" {
				w.settle(t, 2*s)
				fault.f.TamperReadVictim = "c2"
				victim = w.read(w.c2, 0)
			}
			w.sim.RunUntil(w.sim.Now() + 5*s)

			if _, banned := w.cloud.Flagged("edge-1"); !banned {
				t.Fatalf("%s: edge not banned", lie)
			}
			switch lie {
			case "tamper-add", "tamper-read", "drop-certify":
				if victim.Verdict == nil || !victim.Verdict.Guilty {
					t.Fatalf("%s: victim verdict = %+v", lie, victim.Verdict)
				}
			}
		})
	}
}

// edgeFault wraps the fault struct so subtests can mutate it mid-run.
type edgeFault struct{ f edge.Fault }
