package integration

import (
	"errors"
	"testing"

	"wedgechain/internal/client"
	"wedgechain/internal/core"
	"wedgechain/internal/edge"
	"wedgechain/internal/wire"
)

// TestGetServesPrunedWindow drives the honest pruned read end to end in
// the simulator: a deep uncompacted L0 window, gets and scans that only
// touch a few of its blocks, answers still correct and Phase II — and the
// edge demonstrably shipping pruned references instead of full blocks.
func TestGetServesPrunedWindow(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100}) // window never compacts
	model := w.preloadKeys(t, 12)                        // k00..k11 all stay in L0

	// Every key still resolves correctly through the pruned window.
	for k, v := range model {
		op := w.get(w.c1, k)
		w.settle(t, 2*s)
		if op.Err != nil || !op.Found || string(op.GotValue) != v {
			t.Fatalf("get %s through pruned window: %+v err=%v", k, op, op.Err)
		}
		if op.Phase != core.PhaseII {
			t.Fatalf("get %s phase = %v", k, op.Phase)
		}
	}
	// Absent key: verified absence through a fully pruned window.
	op := w.get(w.c2, "zz-missing")
	w.settle(t, 2*s)
	if op.Err != nil || op.Found {
		t.Fatalf("absent key: %+v err=%v", op, op.Err)
	}

	// The serve path actually prunes: a point get ships at most a couple
	// of blocks in full out of the six-block window.
	resp := w.edge.AssembleGet([]byte("k03"), 999)
	if len(resp.Proof.L0Blocks)+len(resp.Proof.L0Pruned) < 6 {
		t.Fatalf("window not fully accounted: %d full + %d pruned",
			len(resp.Proof.L0Blocks), len(resp.Proof.L0Pruned))
	}
	if len(resp.Proof.L0Pruned) == 0 {
		t.Fatal("no blocks pruned from a point get over a deep window")
	}
	if len(resp.Proof.L0Blocks) > 2 {
		t.Fatalf("%d blocks shipped in full for a point get", len(resp.Proof.L0Blocks))
	}

	// Scans over a sub-range prune the disjoint blocks too.
	sresp := w.edge.AssembleScan([]byte("k00"), []byte("k02"), 998)
	if len(sresp.Proof.L0Pruned) == 0 {
		t.Fatal("no blocks pruned from a narrow scan over a deep window")
	}
	sop := w.scan(w.c1, "k00", "k02", 0)
	w.settle(t, 2*s)
	if sop.Err != nil || len(sop.ScanKVs) != 2 {
		t.Fatalf("narrow scan over pruned window: kvs=%v err=%v", sop.ScanKVs, sop.Err)
	}
}

// convictGet runs one byzantine get scenario through the full simulator
// loop and asserts detection and punishment.
func convictGet(t *testing.T, fault *edge.Fault, key string, wantErr error) *client.Op {
	t.Helper()
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, fault: fault})
	w.preloadKeys(t, 6)
	op := w.get(w.c1, key)
	w.settle(t, 3*s)
	if op.Err == nil || !errors.Is(op.Err, wantErr) {
		t.Fatalf("byzantine get settled with %v, want %v", op.Err, wantErr)
	}
	if reason, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	} else {
		t.Logf("convicted: %s", reason)
	}
	if w.c1.Stats().LiesDetected == 0 {
		t.Fatal("lie not counted")
	}
	return op
}

// TestGetFalseExclusionConvicts: the edge hides the freshest version of
// the key behind an honest summary that visibly covers it. The client's
// exclusion-soundness check refutes the prune and the signed response
// convicts at the cloud.
func TestGetFalseExclusionConvicts(t *testing.T) {
	op := convictGet(t, &edge.Fault{SummaryFalseExclude: []byte("k03")}, "k03", client.ErrBadResponse)
	if op.Verdict == nil || !op.Verdict.Guilty {
		t.Fatalf("verdict not attached to the disputing client's op: %+v", op.Verdict)
	}
}

// TestGetTamperedSummaryConvicts: the edge doctors the pruned summary so
// the key looks excluded; the claimed digest contradicts the certificate
// shipped beside it.
func TestGetTamperedSummaryConvicts(t *testing.T) {
	convictGet(t, &edge.Fault{SummaryTamperKey: []byte("k03")}, "k03", client.ErrBadResponse)
}

// TestScanFalseExclusionConvicts / TestScanTamperedSummaryConvicts: the
// same two lies on the scan path, over a range covering the hidden key.
func TestScanFalseExclusionConvicts(t *testing.T) {
	fault := &edge.Fault{SummaryFalseExclude: []byte("k03")}
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, fault: fault})
	w.preloadKeys(t, 6)
	op := w.scan(w.c1, "k01", "k05", 0)
	w.settle(t, 3*s)
	if op.Err == nil || !errors.Is(op.Err, client.ErrBadResponse) {
		t.Fatalf("scan over false exclusion settled with %v", op.Err)
	}
	if _, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	}
}

func TestScanTamperedSummaryConvicts(t *testing.T) {
	fault := &edge.Fault{SummaryTamperKey: []byte("k03")}
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, fault: fault})
	w.preloadKeys(t, 6)
	op := w.scan(w.c1, "k01", "k05", 0)
	w.settle(t, 3*s)
	if op.Err == nil || !errors.Is(op.Err, client.ErrBadResponse) {
		t.Fatalf("scan over tampered summary settled with %v", op.Err)
	}
	if _, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	}
}

// TestGetTamperedUncertifiedSummaryConvictsLazily: the tampered summary
// hides inside a not-yet-certified window position, so structural checks
// pass and the get parks in Phase I with the claimed digest pinned; the
// cloud's certificate then contradicts the pin and the dispute convicts
// — lazy certification extended to pruned evidence.
func TestGetTamperedUncertifiedSummaryConvictsLazily(t *testing.T) {
	fault := &edge.Fault{SummaryTamperKey: []byte("k01")}
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, fault: fault})
	// Two puts cut one block; the get is injected in the same breath so
	// it reaches the edge before the certificate returns from the cloud.
	w.put(w.c1, "k01", "v01")
	w.put(w.c2, "k02", "v02")
	op := w.get(w.c1, "k01")
	w.settle(t, 3*s)
	if op.Err == nil || !errors.Is(op.Err, client.ErrEdgeLied) {
		t.Fatalf("lazily caught summary lie settled with %v, want ErrEdgeLied", op.Err)
	}
	if _, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	}
	if op.Verdict == nil || !op.Verdict.Guilty {
		t.Fatalf("verdict not delivered: %+v", op.Verdict)
	}
}

// TestPrunedWindowPhaseI: an honest pruned reference to an uncertified
// block parks the read in Phase I and completes Phase II when the proof
// arrives — pruning must not skip the lazy-certification dependency.
func TestPrunedWindowPhaseI(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100})
	w.put(w.c1, "k01", "v01")
	w.put(w.c2, "k02", "v02")
	// The get races the certificate; the key "zz" is excluded by the
	// fresh block's summary, so the window ships it pruned.
	op := w.get(w.c1, "zz")
	w.settle(t, 3*s)
	if op.Err != nil || op.Found {
		t.Fatalf("absent-key get over uncertified pruned window: %+v err=%v", op, op.Err)
	}
	if op.Phase != core.PhaseII {
		t.Fatalf("pruned Phase I dependency never resolved: phase=%v", op.Phase)
	}
}

// TestPrunedGetFullWindowAccounting cross-checks the evidence shrink the
// E1 experiment measures: with a deep window, the pruned get response is
// materially smaller than the unpruned one for an L0-miss key.
func TestPrunedGetFullWindowAccounting(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100})
	w.preloadKeys(t, 12)
	pruned := w.edge.AssembleGet([]byte("zz-miss"), 1)
	prunedBytes := wire.EncodedSize(wire.Envelope{From: "edge-1", To: "c1", Msg: pruned})

	w2 := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, noPrune: true})
	w2.preloadKeys(t, 12)
	full := w2.edge.AssembleGet([]byte("zz-miss"), 1)
	fullBytes := wire.EncodedSize(wire.Envelope{From: "edge-1", To: "c1", Msg: full})

	if len(full.Proof.L0Pruned) != 0 {
		t.Fatal("NoL0Prune edge still pruned")
	}
	if len(pruned.Proof.L0Blocks) != 0 {
		t.Fatalf("L0-miss get still ships %d full blocks", len(pruned.Proof.L0Blocks))
	}
	if prunedBytes >= fullBytes {
		t.Fatalf("pruned evidence (%d B) not smaller than full (%d B)", prunedBytes, fullBytes)
	}
	t.Logf("evidence bytes: pruned=%d full=%d (%.1fx)", prunedBytes, fullBytes, float64(fullBytes)/float64(prunedBytes))
}
