package integration

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"wedgechain/internal/client"
	"wedgechain/internal/core"
	"wedgechain/internal/edge"
)

func (w *world) scan(c *client.Core, start, end string, limit int) *client.Op {
	var s, e []byte
	if start != "" {
		s = []byte(start)
	}
	if end != "" {
		e = []byte(end)
	}
	op, envs := c.Scan(w.sim.Now(), s, e, limit)
	w.sim.Inject(envs)
	return op
}

// preloadKeys writes n distinct keys (k00..) through alternating clients,
// settling each put, and returns the final model.
func (w *world) preloadKeys(t *testing.T, n int) map[string]string {
	t.Helper()
	model := map[string]string{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%02d", i)
		val := fmt.Sprintf("v%02d", i)
		model[key] = val
		c := w.c1
		if i%2 == 1 {
			c = w.c2
		}
		if op := w.put(c, key, val); op == nil {
			t.Fatal("put failed to launch")
		}
		w.settle(t, 2*s)
	}
	w.settle(t, 5*s)
	return model
}

// TestScanAcrossMergesAndL0 drives the honest path end to end: writes
// spread over merged levels and the uncompacted L0 window, scans of
// several shapes, results checked against the model for completeness,
// order, newest-wins and limit truncation.
func TestScanAcrossMergesAndL0(t *testing.T) {
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 2})
	model := w.preloadKeys(t, 12) // k00..k11, several merges
	if w.edge.Stats().Merges == 0 {
		t.Fatal("no merges happened; test parameters wrong")
	}
	// Overwrite two merged keys and add two new keys; an even count so
	// batch-2 blocks cut cleanly. They stay in the uncompacted L0 window.
	for _, kv := range [][2]string{{"k03", "v03-new"}, {"k07", "v07-new"}, {"k98", "tail-a"}, {"k99", "tail-b"}} {
		op := w.put(w.c1, kv[0], kv[1])
		model[kv[0]] = kv[1]
		w.settle(t, 2*s)
		if op.Err != nil {
			t.Fatalf("overwrite %s: %v", kv[0], op.Err)
		}
	}
	w.settle(t, 3*s)

	expect := func(start, end string, limit int) []string {
		var keys []string
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("k%02d", i)
			if _, ok := model[k]; !ok {
				continue
			}
			if start != "" && k < start {
				continue
			}
			if end != "" && k >= end {
				continue
			}
			keys = append(keys, k)
		}
		if limit > 0 && len(keys) > limit {
			keys = keys[:limit]
		}
		return keys
	}
	cases := []struct {
		start, end string
		limit      int
	}{
		{"k02", "k09", 0}, // interior, spans merged pages
		{"", "", 0},       // full scan including the L0 tail key
		{"k05", "", 0},    // open right
		{"", "k04", 0},    // open left
		{"k00", "k99", 4}, // limit truncation
	}
	for _, c := range cases {
		op := w.scan(w.c1, c.start, c.end, c.limit)
		w.settle(t, 3*s)
		if op.Err != nil {
			t.Fatalf("scan [%q,%q): %v", c.start, c.end, op.Err)
		}
		if op.Phase != core.PhaseII {
			t.Fatalf("scan [%q,%q) phase = %v", c.start, c.end, op.Phase)
		}
		want := expect(c.start, c.end, c.limit)
		if len(op.ScanKVs) != len(want) {
			t.Fatalf("scan [%q,%q) limit %d: %d results, want %d (%v)",
				c.start, c.end, c.limit, len(op.ScanKVs), len(want), op.ScanKVs)
		}
		for i, kv := range op.ScanKVs {
			if string(kv.Key) != want[i] {
				t.Fatalf("scan [%q,%q) result %d = %q, want %q", c.start, c.end, i, kv.Key, want[i])
			}
			if string(kv.Value) != model[want[i]] {
				t.Fatalf("scan key %q = %q, want %q (newest-wins violated)", kv.Key, kv.Value, model[want[i]])
			}
			if i > 0 && bytes.Compare(op.ScanKVs[i-1].Key, kv.Key) >= 0 {
				t.Fatalf("scan results not strictly ordered at %d", i)
			}
		}
	}
	// Degenerate range settles empty without touching the network.
	op := w.scan(w.c2, "k05", "k05", 0)
	if !op.Done || op.Err != nil || len(op.ScanKVs) != 0 {
		t.Fatalf("degenerate scan: %+v", op)
	}
}

// convictScan runs one byzantine scan scenario through the full loop and
// asserts detection (verification failure at the client) and punishment
// (guilty verdict at the cloud).
func convictScan(t *testing.T, fault *edge.Fault, preload int, start, end string, wantErr error) (*world, *client.Op) {
	t.Helper()
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 2, fault: fault})
	w.preloadKeys(t, preload)
	if w.edge.Stats().Merges == 0 {
		t.Fatal("no merges happened; test parameters wrong")
	}
	op := w.scan(w.c1, start, end, 0)
	w.settle(t, 3*s)
	if op.Err == nil || !errors.Is(op.Err, wantErr) {
		t.Fatalf("byzantine scan settled with %v, want %v", op.Err, wantErr)
	}
	if reason, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	} else {
		t.Logf("convicted: %s", reason)
	}
	if w.c1.Stats().LiesDetected == 0 {
		t.Fatal("lie not counted")
	}
	return w, op
}

// TestScanOmissionConvicts: the edge drops one record from a merged page
// mid-range. The page no longer hashes to its certified leaf, the Merkle
// range check fails, and the signed response convicts the edge.
func TestScanOmissionConvicts(t *testing.T) {
	fault := &edge.Fault{ScanOmitKey: []byte("k05")}
	convictScan(t, fault, 12, "k02", "k09", client.ErrBadResponse)
}

// TestScanTruncationConvicts: the edge hides the tail of the range behind
// an honestly recomputed — Merkle-valid — narrower page-range proof. The
// boundary-coverage check catches the committed Hi falling short.
func TestScanTruncationConvicts(t *testing.T) {
	fault := &edge.Fault{ScanTruncate: true}
	convictScan(t, fault, 12, "k01", "k11", client.ErrBadResponse)
}

// TestScanInjectionConvicts: the edge forges a record inside an
// uncertified L0 block. Structural verification passes — nothing pins
// uncertified content yet — so the scan parks in Phase I with the
// tampered digest pinned; the cloud's certificate then contradicts it and
// the dispute convicts the edge (lazy certification at work).
func TestScanInjectionConvicts(t *testing.T) {
	fault := &edge.Fault{ScanInjectKey: []byte("k50"), ScanInjectValue: []byte("forged")}
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, fault: fault})
	// Two puts cut one block; the scan is injected in the same breath so
	// it reaches the edge before the certificate returns from the cloud.
	w.put(w.c1, "k01", "v01")
	w.put(w.c2, "k02", "v02")
	op := w.scan(w.c1, "", "", 0)
	w.settle(t, 3*s)
	if op.Err == nil || !errors.Is(op.Err, client.ErrEdgeLied) {
		t.Fatalf("injected scan settled with %v, want ErrEdgeLied", op.Err)
	}
	if _, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	}
	if op.Verdict == nil || !op.Verdict.Guilty {
		t.Fatalf("verdict not delivered to the scanning client: %+v", op.Verdict)
	}
}

// TestScanDroppedCertifyConvicts: the edge serves a scan over blocks it
// never certifies. The proof timeout files the scan evidence; the cloud
// finds a structurally valid proof promising a block it never saw, and
// convicts.
func TestScanDroppedCertifyConvicts(t *testing.T) {
	fault := &edge.Fault{DropCertify: true}
	w := newWorld(t, worldOpts{batch: 2, l0Thresh: 100, fault: fault, proofTO: 200 * ms})
	w.put(w.c1, "k01", "v01")
	w.put(w.c2, "k02", "v02")
	op := w.scan(w.c1, "", "", 0)
	w.sim.RunUntil(w.sim.Now() + 2*s)
	if op.Err == nil || !errors.Is(op.Err, client.ErrEdgeLied) {
		t.Fatalf("uncertified scan settled with %v, want ErrEdgeLied", op.Err)
	}
	if reason, banned := w.cloud.Flagged("edge-1"); !banned {
		t.Fatal("edge not convicted")
	} else if reason == "" {
		t.Fatal("empty conviction reason")
	}
}
