package merkle

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for Merkle tree construction, proof generation and
// verification at a typical level width.

func benchLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("page-%06d", i)))
	}
	return leaves
}

func BenchmarkBuild1000(b *testing.B) {
	leaves := benchLeaves(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(leaves)
	}
}

func BenchmarkProof1000(b *testing.B) {
	t := New(benchLeaves(1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Proof(i % 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify1000(b *testing.B) {
	leaves := benchLeaves(1000)
	t := New(leaves)
	root := t.Root()
	path, err := t.Proof(371)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(root, leaves[371], 371, 1000, path); err != nil {
			b.Fatal(err)
		}
	}
}
