// Package merkle implements the binary Merkle hash tree used by LSMerkle
// levels. A trusted signer (the cloud node) signs the root; an untrusted
// server (the edge node) then proves any leaf's membership to clients with
// an audit path.
//
// Domain separation: leaf hashes and interior hashes use distinct prefixes
// so an interior node can never be confused for a leaf (second-preimage
// hardening). When a level has an odd number of nodes the last node is
// promoted unchanged, so no leaf is ever duplicated.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the byte length of every tree node.
const HashSize = sha256.Size

var (
	leafPrefix     = []byte{0x00}
	interiorPrefix = []byte{0x01}
)

// ErrBadProof reports that an audit path failed to reproduce the root.
var ErrBadProof = errors.New("merkle: proof does not verify")

// LeafHash hashes raw leaf content into a leaf node.
func LeafHash(content []byte) []byte {
	h := sha256.New()
	h.Write(leafPrefix)
	h.Write(content)
	return h.Sum(nil)
}

// interiorHash combines two child nodes.
func interiorHash(left, right []byte) []byte {
	h := sha256.New()
	h.Write(interiorPrefix)
	h.Write(left)
	h.Write(right)
	return h.Sum(nil)
}

// Tree is an immutable Merkle tree over a sequence of leaf hashes.
// Construct with New; the zero value is an empty tree whose root is
// EmptyRoot.
type Tree struct {
	// levels[0] is the leaf row; levels[len-1] is the single root.
	levels [][][]byte
}

// EmptyRoot is the canonical root of a tree with no leaves.
func EmptyRoot() []byte { return LeafHash(nil) }

// New builds a tree over the given leaf hashes (as produced by LeafHash).
// The input slice is not retained.
func New(leaves [][]byte) *Tree {
	t := &Tree{}
	if len(leaves) == 0 {
		return t
	}
	row := make([][]byte, len(leaves))
	copy(row, leaves)
	t.levels = append(t.levels, row)
	for len(row) > 1 {
		next := make([][]byte, 0, (len(row)+1)/2)
		for i := 0; i < len(row); i += 2 {
			if i+1 < len(row) {
				next = append(next, interiorHash(row[i], row[i+1]))
			} else {
				// Odd node promoted unchanged.
				next = append(next, row[i])
			}
		}
		t.levels = append(t.levels, next)
		row = next
	}
	return t
}

// Len returns the number of leaves.
func (t *Tree) Len() int {
	if len(t.levels) == 0 {
		return 0
	}
	return len(t.levels[0])
}

// Root returns the tree root (EmptyRoot for an empty tree). The result
// must not be modified.
func (t *Tree) Root() []byte {
	if len(t.levels) == 0 {
		return EmptyRoot()
	}
	return t.levels[len(t.levels)-1][0]
}

// Proof returns the audit path for leaf i: the sibling hashes from the
// leaf row upward. A missing sibling (odd promotion) contributes no path
// element, mirroring the promotion rule in New.
func (t *Tree) Proof(i int) ([][]byte, error) {
	if i < 0 || i >= t.Len() {
		return nil, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", i, t.Len())
	}
	var path [][]byte
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		row := t.levels[lvl]
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < len(row) {
			path = append(path, row[sib])
		}
		idx /= 2
	}
	return path, nil
}

// Verify checks that the leaf hash at index i, folded with the audit path,
// reproduces root, for a tree of n leaves. It reimplements the promotion
// rule independently of Tree so clients need no tree state.
func Verify(root, leaf []byte, i, n int, path [][]byte) error {
	if i < 0 || i >= n || n <= 0 {
		return fmt.Errorf("merkle: leaf index %d out of range [0,%d)", i, n)
	}
	cur := leaf
	idx, width := i, n
	pi := 0
	for width > 1 {
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < width {
			if pi >= len(path) {
				return ErrBadProof
			}
			if len(path[pi]) != HashSize {
				return ErrBadProof
			}
			if idx%2 == 0 {
				cur = interiorHash(cur, path[pi])
			} else {
				cur = interiorHash(path[pi], cur)
			}
			pi++
		}
		// else: odd promotion, cur carries upward unchanged.
		idx /= 2
		width = (width + 1) / 2
	}
	if pi != len(path) {
		return ErrBadProof
	}
	if !bytes.Equal(cur, root) {
		return ErrBadProof
	}
	return nil
}

// RootOf is a convenience that builds a tree over leaves and returns its
// root.
func RootOf(leaves [][]byte) []byte { return New(leaves).Root() }
