package merkle

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = LeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !bytes.Equal(tr.Root(), EmptyRoot()) {
		t.Fatal("empty root mismatch")
	}
}

func TestSingleLeaf(t *testing.T) {
	ls := leaves(1)
	tr := New(ls)
	if !bytes.Equal(tr.Root(), ls[0]) {
		t.Fatal("single-leaf root should be the leaf")
	}
	p, err := tr.Proof(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 0 {
		t.Fatalf("single-leaf proof should be empty, got %d elems", len(p))
	}
	if err := Verify(tr.Root(), ls[0], 0, 1, p); err != nil {
		t.Fatal(err)
	}
}

// TestAllProofsVerify exercises every leaf of trees of size 1..33,
// covering both the power-of-two and odd-promotion shapes.
func TestAllProofsVerify(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tr := New(ls)
		for i := 0; i < n; i++ {
			p, err := tr.Proof(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: Proof: %v", n, i, err)
			}
			if err := Verify(tr.Root(), ls[i], i, n, p); err != nil {
				t.Fatalf("n=%d i=%d: Verify: %v", n, i, err)
			}
		}
	}
}

func TestProofIndexOutOfRange(t *testing.T) {
	tr := New(leaves(4))
	if _, err := tr.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tr.Proof(4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	n := 8
	ls := leaves(n)
	tr := New(ls)
	p, _ := tr.Proof(3)
	wrong := LeafHash([]byte("forged"))
	if err := Verify(tr.Root(), wrong, 3, n, p); err == nil {
		t.Fatal("forged leaf accepted")
	}
}

func TestVerifyRejectsWrongIndex(t *testing.T) {
	n := 8
	ls := leaves(n)
	tr := New(ls)
	p, _ := tr.Proof(3)
	if err := Verify(tr.Root(), ls[3], 5, n, p); err == nil {
		t.Fatal("wrong index accepted")
	}
}

func TestVerifyRejectsTamperedPath(t *testing.T) {
	n := 16
	ls := leaves(n)
	tr := New(ls)
	for i := 0; i < n; i++ {
		p, _ := tr.Proof(i)
		for j := range p {
			mut := make([][]byte, len(p))
			for k := range p {
				mut[k] = append([]byte{}, p[k]...)
			}
			mut[j][0] ^= 1
			if err := Verify(tr.Root(), ls[i], i, n, mut); err == nil {
				t.Fatalf("i=%d: tampered path element %d accepted", i, j)
			}
		}
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	ls := leaves(7)
	tr := New(ls)
	p, _ := tr.Proof(2)
	other := New(leaves(6)).Root()
	if err := Verify(other, ls[2], 2, 7, p); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestVerifyRejectsPathLengthGames(t *testing.T) {
	ls := leaves(9)
	tr := New(ls)
	p, _ := tr.Proof(4)
	if err := Verify(tr.Root(), ls[4], 4, 9, p[:len(p)-1]); err == nil {
		t.Fatal("short path accepted")
	}
	long := append(append([][]byte{}, p...), LeafHash([]byte("extra")))
	if err := Verify(tr.Root(), ls[4], 4, 9, long); err == nil {
		t.Fatal("long path accepted")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A two-leaf tree's root must differ from the leaf hash of the
	// concatenation — the prefix bytes must matter.
	a, b := LeafHash([]byte("a")), LeafHash([]byte("b"))
	root := New([][]byte{a, b}).Root()
	concat := append(append([]byte{}, a...), b...)
	if bytes.Equal(root, LeafHash(concat)) {
		t.Fatal("no domain separation between leaf and interior hashes")
	}
}

func TestRootSensitiveToLeafOrder(t *testing.T) {
	ls := leaves(6)
	r1 := RootOf(ls)
	swapped := append([][]byte{}, ls...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	r2 := RootOf(swapped)
	if bytes.Equal(r1, r2) {
		t.Fatal("root insensitive to leaf order")
	}
}

// TestProofPropertyRandom drives random tree sizes and random tampering via
// testing/quick: honest proofs verify; any single-bit corruption of leaf or
// root fails.
func TestProofPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		ls := make([][]byte, n)
		for i := range ls {
			buf := make([]byte, 16)
			r.Read(buf)
			ls[i] = LeafHash(buf)
		}
		tr := New(ls)
		i := r.Intn(n)
		p, err := tr.Proof(i)
		if err != nil {
			return false
		}
		if Verify(tr.Root(), ls[i], i, n, p) != nil {
			return false
		}
		// Corrupt the leaf: must fail.
		bad := append([]byte{}, ls[i]...)
		bad[r.Intn(len(bad))] ^= 1 << uint(r.Intn(8))
		if Verify(tr.Root(), bad, i, n, p) == nil {
			return false
		}
		// Corrupt the root: must fail.
		badRoot := append([]byte{}, tr.Root()...)
		badRoot[r.Intn(len(badRoot))] ^= 1 << uint(r.Intn(8))
		return Verify(badRoot, ls[i], i, n, p) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDoesNotAliasInput(t *testing.T) {
	ls := leaves(4)
	tr := New(ls)
	root := append([]byte{}, tr.Root()...)
	ls[0][0] ^= 1 // mutate caller's slice contents
	_ = ls
	// The tree's levels reference the same leaf hash slices; Root was
	// computed before mutation so it must be stable.
	if !bytes.Equal(tr.Root(), root) {
		t.Fatal("root changed after input mutation")
	}
}
