package merkle

import (
	"bytes"
	"fmt"
)

// RangeProof returns the audit material for the contiguous leaf range
// [begin, end): the sibling hashes flanking the range on the left and on
// the right, each ordered bottom-up. One range proof replaces end-begin
// single-leaf proofs — interior siblings are recomputable from the leaves
// themselves, so only the two flanks travel.
//
// The proof commits to the *positions* of the leaves, not just their
// membership: VerifyRange folds the leaves at exactly [begin, end) of a
// width-n tree, so a prover cannot present a subsequence of leaves as if
// it were contiguous.
func (t *Tree) RangeProof(begin, end int) (left, right [][]byte, err error) {
	if begin < 0 || end > t.Len() || begin >= end {
		return nil, nil, fmt.Errorf("merkle: leaf range [%d,%d) invalid for %d leaves", begin, end, t.Len())
	}
	lo, hi := begin, end
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		row := t.levels[lvl]
		if lo%2 == 1 {
			left = append(left, row[lo-1])
			lo--
		}
		if hi%2 == 1 && hi < len(row) {
			right = append(right, row[hi])
			hi++
		}
		// hi odd with hi == len(row): the range's last node is the odd
		// promotion — it carries upward with no sibling.
		lo /= 2
		hi = (hi + 1) / 2
	}
	return left, right, nil
}

// VerifyRange checks that the given leaf hashes, placed at positions
// [begin, begin+len(leaves)) of an n-leaf tree and folded with the left
// and right flank paths, reproduce root. Like Verify, it reimplements the
// odd-promotion rule independently of Tree so clients need no tree state.
func VerifyRange(root []byte, leaves [][]byte, begin, n int, left, right [][]byte) error {
	if n <= 0 || begin < 0 || len(leaves) == 0 || begin+len(leaves) > n {
		return fmt.Errorf("merkle: leaf range [%d,%d) invalid for %d leaves", begin, begin+len(leaves), n)
	}
	row := make([][]byte, 0, len(leaves)+2)
	for _, l := range leaves {
		if len(l) != HashSize {
			return ErrBadProof
		}
		row = append(row, l)
	}
	lo, hi, width := begin, begin+len(leaves), n
	li, ri := 0, 0
	for width > 1 {
		if lo%2 == 1 {
			if li >= len(left) || len(left[li]) != HashSize {
				return ErrBadProof
			}
			row = append(row, nil)
			copy(row[1:], row)
			row[0] = left[li]
			li++
			lo--
		}
		if hi%2 == 1 && hi < width {
			if ri >= len(right) || len(right[ri]) != HashSize {
				return ErrBadProof
			}
			row = append(row, right[ri])
			ri++
			hi++
		}
		// Invariant: lo is even, and hi is even unless hi == width (then
		// the trailing node is the odd promotion).
		next := row[:0]
		for i := 0; i < len(row); i += 2 {
			if i+1 < len(row) {
				next = append(next, interiorHash(row[i], row[i+1]))
			} else {
				next = append(next, row[i])
			}
		}
		row = next
		lo /= 2
		hi = (hi + 1) / 2
		width = (width + 1) / 2
	}
	if li != len(left) || ri != len(right) {
		return ErrBadProof
	}
	if len(row) != 1 || !bytes.Equal(row[0], root) {
		return ErrBadProof
	}
	return nil
}
