package merkle

import (
	"fmt"
	"testing"
)

func rangeLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return leaves
}

// TestRangeProofExhaustive checks every (n, begin, end) combination up to
// a tree of 33 leaves — covering perfect trees, odd promotions at several
// depths, full-range, single-leaf and boundary ranges.
func TestRangeProofExhaustive(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := rangeLeaves(n)
		tr := New(leaves)
		root := tr.Root()
		for begin := 0; begin < n; begin++ {
			for end := begin + 1; end <= n; end++ {
				left, right, err := tr.RangeProof(begin, end)
				if err != nil {
					t.Fatalf("n=%d [%d,%d): prove: %v", n, begin, end, err)
				}
				if err := VerifyRange(root, leaves[begin:end], begin, n, left, right); err != nil {
					t.Fatalf("n=%d [%d,%d): verify: %v", n, begin, end, err)
				}
			}
		}
	}
}

// TestRangeProofMatchesSingleLeafProof pins the equivalence with the
// existing single-leaf machinery: a width-1 range proof must accept
// exactly the leaves the single-leaf path accepts.
func TestRangeProofMatchesSingleLeafProof(t *testing.T) {
	const n = 19
	leaves := rangeLeaves(n)
	tr := New(leaves)
	for i := 0; i < n; i++ {
		left, right, err := tr.RangeProof(i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRange(tr.Root(), leaves[i:i+1], i, n, left, right); err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		path, err := tr.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(left)+len(right) != len(path) {
			t.Fatalf("leaf %d: range proof has %d+%d siblings, single proof %d",
				i, len(left), len(right), len(path))
		}
	}
}

// TestVerifyRangeRejects drives the adversarial cases: a dropped leaf, an
// injected leaf, a shifted position, tampered content, truncated flanks
// and trailing proof garbage must all fail.
func TestVerifyRangeRejects(t *testing.T) {
	const n = 21
	leaves := rangeLeaves(n)
	tr := New(leaves)
	root := tr.Root()
	begin, end := 3, 11
	left, right, err := tr.RangeProof(begin, end)
	if err != nil {
		t.Fatal(err)
	}
	window := func() [][]byte { return append([][]byte(nil), leaves[begin:end]...) }

	t.Run("omitted leaf", func(t *testing.T) {
		w := window()
		w = append(w[:4], w[5:]...)
		if VerifyRange(root, w, begin, n, left, right) == nil {
			t.Fatal("accepted a range with a leaf omitted")
		}
	})
	t.Run("injected leaf", func(t *testing.T) {
		w := window()
		w = append(w[:4], append([][]byte{LeafHash([]byte("forged"))}, w[4:]...)...)
		if VerifyRange(root, w, begin, n, left, right) == nil {
			t.Fatal("accepted a range with an injected leaf")
		}
	})
	t.Run("shifted position", func(t *testing.T) {
		if VerifyRange(root, window(), begin+1, n, left, right) == nil {
			t.Fatal("accepted leaves at the wrong position")
		}
	})
	t.Run("tampered leaf", func(t *testing.T) {
		w := window()
		w[2] = LeafHash([]byte("tampered"))
		if VerifyRange(root, w, begin, n, left, right) == nil {
			t.Fatal("accepted a tampered leaf")
		}
	})
	t.Run("truncated right flank", func(t *testing.T) {
		if len(right) == 0 {
			t.Skip("range has no right flank")
		}
		if VerifyRange(root, window(), begin, n, left, right[:len(right)-1]) == nil {
			t.Fatal("accepted a truncated flank path")
		}
	})
	t.Run("extra flank element", func(t *testing.T) {
		extra := append(append([][]byte(nil), left...), LeafHash([]byte("junk")))
		if VerifyRange(root, window(), begin, n, extra, right) == nil {
			t.Fatal("accepted trailing proof garbage")
		}
	})
	t.Run("wrong width", func(t *testing.T) {
		// Width is a fold-shape parameter (as in the single-leaf Verify):
		// a lie about it is caught whenever it changes the shape. A range
		// ending at the promoted tail does: claiming one more leaf demands
		// a right sibling that cannot exist.
		l, r, err := tr.RangeProof(13, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRange(root, leaves[13:n], 13, n, l, r); err != nil {
			t.Fatal(err)
		}
		if VerifyRange(root, leaves[13:n], 13, n+1, l, r) == nil {
			t.Fatal("accepted a claimed width hiding leaves past the range")
		}
	})
	t.Run("empty range rejected", func(t *testing.T) {
		if _, _, err := tr.RangeProof(5, 5); err == nil {
			t.Fatal("prover accepted an empty range")
		}
		if VerifyRange(root, nil, 5, n, nil, nil) == nil {
			t.Fatal("verifier accepted an empty range")
		}
	})
}
