package mlsm

import (
	"bytes"
	"fmt"

	"wedgechain/internal/wire"
)

// InstallAll replaces every level at once from a flat page list (pages
// carry their Level field), validating each non-empty level's invariants
// and checking every rebuilt tree against roots. Levels with no pages in
// the list become empty. Used by the Edge-baseline edge, whose cloud
// pushes whole index snapshots, and by recovery paths.
func (x *Index) InstallAll(pages []wire.Page, roots [][]byte, global wire.SignedRoot) error {
	if len(roots) != len(x.levels) {
		return fmt.Errorf("%w: %d roots for %d levels", ErrBadPages, len(roots), len(x.levels))
	}
	byLevel := make([][]wire.Page, len(x.levels))
	for _, p := range pages {
		lvl := int(p.Level)
		if lvl < 1 || lvl > len(x.levels) {
			return fmt.Errorf("%w: page for level %d", ErrLevelRange, lvl)
		}
		byLevel[lvl-1] = append(byLevel[lvl-1], p)
	}
	// Validate everything before mutating.
	for i, lp := range byLevel {
		if len(lp) == 0 {
			continue
		}
		if err := CheckLevel(lp); err != nil {
			return fmt.Errorf("level %d: %w", i+1, err)
		}
	}
	for i, lp := range byLevel {
		x.levels[i] = lp
		x.trees[i] = LevelTree(lp)
		if !bytes.Equal(x.trees[i].Root(), roots[i]) {
			return fmt.Errorf("%w: level %d root mismatch", ErrBadPages, i+1)
		}
	}
	x.roots = make([][]byte, len(roots))
	for i := range roots {
		x.roots[i] = append([]byte(nil), roots[i]...)
	}
	x.global = global
	return nil
}

// L0Source supplies the uncompacted level-0 pages (log blocks), their
// certificates, and optionally their cut-time digests for read assembly.
// Certificates with an empty CloudSig mark Phase I (uncertified) blocks.
// Digests, when non-nil, is aligned with Blocks; assembly returns the
// digests of the blocks it kept in full so the edge can sign without
// re-hashing.
type L0Source struct {
	Blocks  []wire.Block
	Certs   []wire.BlockProof
	Digests [][]byte
}

// AppendL0 places one source block into a proof's L0 window: pruned to
// its digest-committed key summary when prune is set and the summary
// excludes the request, shipped in full otherwise. Returns whether the
// block was kept in full.
func AppendL0(blocks *[]wire.Block, certs *[]wire.BlockProof,
	pruned *[]wire.PrunedBlock, prunedCerts *[]wire.BlockProof,
	blk *wire.Block, cert wire.BlockProof, prune bool, excludes func(*wire.BlockSummary) bool) bool {
	if prune {
		pb := wire.PruneBlock(blk)
		if excludes(&pb.Summary) {
			*pruned = append(*pruned, pb)
			*prunedCerts = append(*prunedCerts, cert)
			return false
		}
	}
	*blocks = append(*blocks, *blk)
	*certs = append(*certs, cert)
	return true
}

// AssembleGet builds the unsigned get response for key against the given
// L0 snapshot and merged index — the proof-construction algorithm of
// Section V-B shared by the WedgeChain edge and the Edge-baseline edge.
// With prune set, window blocks whose key summary excludes key ship as
// pruned references instead of full blocks. The returned digests are the
// cut-time digests (from l0.Digests) of the blocks kept in full, in
// L0Blocks order — what the edge's size-independent signing needs; nil
// when l0.Digests was nil.
func AssembleGet(key []byte, reqID uint64, l0 L0Source, idx *Index, prune bool) (*wire.GetResponse, [][]byte) {
	resp := &wire.GetResponse{ReqID: reqID, Key: key}
	excludes := func(s *wire.BlockSummary) bool { return s.ExcludesKey(key) }

	var fullDigests [][]byte
	var bestVer uint64
	var bestVal []byte
	for bi := range l0.Blocks {
		blk := &l0.Blocks[bi]
		var cert wire.BlockProof
		if bi < len(l0.Certs) {
			cert = l0.Certs[bi]
		}
		full := AppendL0(&resp.Proof.L0Blocks, &resp.Proof.L0Certs,
			&resp.Proof.L0Pruned, &resp.Proof.L0PrunedCerts, blk, cert, prune, excludes)
		if full && l0.Digests != nil {
			fullDigests = append(fullDigests, l0.Digests[bi])
		}
		if !full {
			continue // an excluded block cannot hold the key
		}
		for i := range blk.Entries {
			e := &blk.Entries[i]
			if len(e.Key) == 0 || !bytes.Equal(e.Key, key) {
				continue
			}
			ver := blk.StartPos + uint64(i) + 1
			if ver > bestVer {
				bestVer, bestVal = ver, e.Value
			}
		}
	}
	if bestVer > 0 {
		// Freshest version is in L0: deeper levels are older by
		// construction, so no level evidence is required.
		resp.Found = true
		resp.Value = bestVal
		resp.Ver = bestVer
		return resp, fullDigests
	}

	hitLevel, pageIdx, kv, found := idx.Lookup(key)
	last := idx.Levels()
	if found {
		last = hitLevel
	}
	for lvl := 1; lvl <= last; lvl++ {
		pi := pageIdx
		if lvl != hitLevel || !found {
			pi = idx.FindPage(lvl, key)
		}
		if pi < 0 {
			continue // empty level: root is EmptyRoot, checked client-side
		}
		lp, err := idx.LevelProof(lvl, pi)
		if err != nil {
			continue
		}
		lp.Width = uint32(idx.LevelLen(lvl))
		resp.Proof.Levels = append(resp.Proof.Levels, lp)
	}
	if g := idx.Global(); len(g.CloudSig) > 0 {
		resp.Proof.Roots = idx.Roots()
		resp.Proof.Global = g
	}
	if found {
		resp.Found = true
		resp.Value = kv.Value
		resp.Ver = kv.Ver
	}
	return resp, fullDigests
}
