package mlsm

import (
	"bytes"
	"fmt"

	"wedgechain/internal/wire"
)

// InstallAll replaces every level at once from a flat page list (pages
// carry their Level field), validating each non-empty level's invariants
// and checking every rebuilt tree against roots. Levels with no pages in
// the list become empty. Used by the Edge-baseline edge, whose cloud
// pushes whole index snapshots, and by recovery paths.
func (x *Index) InstallAll(pages []wire.Page, roots [][]byte, global wire.SignedRoot) error {
	if len(roots) != len(x.levels) {
		return fmt.Errorf("%w: %d roots for %d levels", ErrBadPages, len(roots), len(x.levels))
	}
	byLevel := make([][]wire.Page, len(x.levels))
	for _, p := range pages {
		lvl := int(p.Level)
		if lvl < 1 || lvl > len(x.levels) {
			return fmt.Errorf("%w: page for level %d", ErrLevelRange, lvl)
		}
		byLevel[lvl-1] = append(byLevel[lvl-1], p)
	}
	// Validate everything before mutating.
	for i, lp := range byLevel {
		if len(lp) == 0 {
			continue
		}
		if err := CheckLevel(lp); err != nil {
			return fmt.Errorf("level %d: %w", i+1, err)
		}
	}
	for i, lp := range byLevel {
		x.levels[i] = lp
		x.trees[i] = LevelTree(lp)
		if !bytes.Equal(x.trees[i].Root(), roots[i]) {
			return fmt.Errorf("%w: level %d root mismatch", ErrBadPages, i+1)
		}
	}
	x.roots = make([][]byte, len(roots))
	for i := range roots {
		x.roots[i] = append([]byte(nil), roots[i]...)
	}
	x.global = global
	return nil
}

// L0Source supplies the uncompacted level-0 pages (log blocks) and their
// certificates for get assembly. Certificates with an empty CloudSig mark
// Phase I (uncertified) blocks.
type L0Source struct {
	Blocks []wire.Block
	Certs  []wire.BlockProof
}

// AssembleGet builds the unsigned get response for key against the given
// L0 snapshot and merged index — the proof-construction algorithm of
// Section V-B shared by the WedgeChain edge and the Edge-baseline edge.
func AssembleGet(key []byte, reqID uint64, l0 L0Source, idx *Index) *wire.GetResponse {
	resp := &wire.GetResponse{ReqID: reqID}

	var bestVer uint64
	var bestVal []byte
	for bi := range l0.Blocks {
		blk := &l0.Blocks[bi]
		resp.Proof.L0Blocks = append(resp.Proof.L0Blocks, *blk)
		var cert wire.BlockProof
		if bi < len(l0.Certs) {
			cert = l0.Certs[bi]
		}
		resp.Proof.L0Certs = append(resp.Proof.L0Certs, cert)
		for i := range blk.Entries {
			e := &blk.Entries[i]
			if len(e.Key) == 0 || !bytes.Equal(e.Key, key) {
				continue
			}
			ver := blk.StartPos + uint64(i) + 1
			if ver > bestVer {
				bestVer, bestVal = ver, e.Value
			}
		}
	}
	if bestVer > 0 {
		// Freshest version is in L0: deeper levels are older by
		// construction, so no level evidence is required.
		resp.Found = true
		resp.Value = bestVal
		resp.Ver = bestVer
		return resp
	}

	hitLevel, pageIdx, kv, found := idx.Lookup(key)
	last := idx.Levels()
	if found {
		last = hitLevel
	}
	for lvl := 1; lvl <= last; lvl++ {
		pi := pageIdx
		if lvl != hitLevel || !found {
			pi = idx.FindPage(lvl, key)
		}
		if pi < 0 {
			continue // empty level: root is EmptyRoot, checked client-side
		}
		lp, err := idx.LevelProof(lvl, pi)
		if err != nil {
			continue
		}
		lp.Width = uint32(idx.LevelLen(lvl))
		resp.Proof.Levels = append(resp.Proof.Levels, lp)
	}
	if g := idx.Global(); len(g.CloudSig) > 0 {
		resp.Proof.Roots = idx.Roots()
		resp.Proof.Global = g
	}
	if found {
		resp.Found = true
		resp.Value = kv.Value
		resp.Ver = kv.Ver
	}
	return resp
}
