package mlsm

import (
	"bytes"
	"fmt"
	"testing"

	"wedgechain/internal/merkle"
	"wedgechain/internal/wire"
)

func installedIndex(t *testing.T, kvs []wire.KV) *Index {
	t.Helper()
	x := NewIndex([]int{4, 8})
	pages := Merge(kvs, nil, 1, 2, 0, 1)
	roots := [][]byte{LevelTree(pages).Root(), merkle.New(nil).Root()}
	global := wire.SignedRoot{Edge: "e", Epoch: 1, Root: GlobalRoot(roots), Ts: 9, CloudSig: []byte("sig")}
	if err := x.InstallLevel(1, pages, roots, global); err != nil {
		t.Fatal(err)
	}
	return x
}

func TestAssembleGetPrefersL0OverLevels(t *testing.T) {
	x := installedIndex(t, []wire.KV{kv("k", 5)})
	blk := wire.Block{
		Edge: "e", ID: 3, StartPos: 100,
		Entries: []wire.Entry{{Client: "c", Key: []byte("k"), Value: []byte("newer")}},
	}
	src := L0Source{Blocks: []wire.Block{blk}, Certs: []wire.BlockProof{{}}}
	resp, _ := AssembleGet([]byte("k"), 1, src, x, true)
	if !resp.Found || !bytes.Equal(resp.Value, []byte("newer")) {
		t.Fatalf("resp = found=%v %q", resp.Found, resp.Value)
	}
	if len(resp.Proof.Levels) != 0 {
		t.Fatal("L0 hit must not carry level proofs (levels are older)")
	}
	if resp.Ver != 101 {
		t.Fatalf("ver = %d, want position-based 101", resp.Ver)
	}
}

func TestAssembleGetNewestL0VersionWins(t *testing.T) {
	x := NewIndex([]int{4})
	mk := func(id uint64, pos uint64, val string) wire.Block {
		return wire.Block{Edge: "e", ID: id, StartPos: pos,
			Entries: []wire.Entry{{Client: "c", Key: []byte("k"), Value: []byte(val)}}}
	}
	src := L0Source{
		Blocks: []wire.Block{mk(0, 0, "v0"), mk(1, 1, "v1"), mk(2, 2, "v2")},
		Certs:  make([]wire.BlockProof, 3),
	}
	resp, _ := AssembleGet([]byte("k"), 1, src, x, true)
	if !resp.Found || string(resp.Value) != "v2" {
		t.Fatalf("resp = %q, want v2", resp.Value)
	}
}

func TestAssembleGetLevelHitCarriesProofChain(t *testing.T) {
	x := installedIndex(t, []wire.KV{kv("a", 1), kv("k", 5), kv("z", 2)})
	resp, _ := AssembleGet([]byte("k"), 1, L0Source{}, x, true)
	if !resp.Found || resp.Ver != 5 {
		t.Fatalf("resp = found=%v ver=%d", resp.Found, resp.Ver)
	}
	if len(resp.Proof.Levels) == 0 || len(resp.Proof.Roots) != 2 {
		t.Fatalf("proof shape: %d levels, %d roots", len(resp.Proof.Levels), len(resp.Proof.Roots))
	}
	lp := resp.Proof.Levels[0]
	if !lp.Page.Contains([]byte("k")) {
		t.Fatal("proof page does not cover key")
	}
	if err := merkle.Verify(resp.Proof.Roots[0], PageLeaf(&lp.Page), int(lp.Index), int(lp.Width), lp.Path); err != nil {
		t.Fatalf("level proof: %v", err)
	}
	if len(resp.Proof.Global.CloudSig) == 0 {
		t.Fatal("signed global root missing")
	}
}

func TestAssembleGetAbsenceProof(t *testing.T) {
	x := installedIndex(t, []wire.KV{kv("a", 1), kv("z", 2)})
	resp, _ := AssembleGet([]byte("mmm"), 1, L0Source{}, x, true)
	if resp.Found {
		t.Fatal("missing key found")
	}
	if len(resp.Proof.Levels) == 0 {
		t.Fatal("absence must present the intersecting page")
	}
	lp := resp.Proof.Levels[0]
	if !lp.Page.Contains([]byte("mmm")) {
		t.Fatal("intersecting page does not cover the key range")
	}
	for _, rec := range lp.Page.KVs {
		if bytes.Equal(rec.Key, []byte("mmm")) {
			t.Fatal("page claims to contain the 'absent' key")
		}
	}
}

func TestAssembleGetEmptyEverything(t *testing.T) {
	x := NewIndex([]int{4})
	resp, _ := AssembleGet([]byte("k"), 7, L0Source{}, x, true)
	if resp.Found || resp.ReqID != 7 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Proof.Roots) != 0 || len(resp.Proof.Global.CloudSig) != 0 {
		t.Fatal("empty index must not claim level state")
	}
}

func TestInstallAllReplacesLevels(t *testing.T) {
	x := NewIndex([]int{2, 4})
	l1 := Merge([]wire.KV{kv("a", 1), kv("b", 2)}, nil, 1, 2, 0, 1)
	l2 := Merge([]wire.KV{kv("c", 3), kv("d", 4), kv("e", 5)}, nil, 2, 2, 10, 1)
	var pages []wire.Page
	pages = append(pages, l1...)
	pages = append(pages, l2...)
	roots := [][]byte{LevelTree(l1).Root(), LevelTree(l2).Root()}
	global := wire.SignedRoot{Root: GlobalRoot(roots)}
	if err := x.InstallAll(pages, roots, global); err != nil {
		t.Fatal(err)
	}
	if _, _, rec, ok := x.Lookup([]byte("d")); !ok || rec.Ver != 4 {
		t.Fatalf("Lookup(d) = %+v,%v", rec, ok)
	}
	// Replacing with only level 2 empties level 1.
	roots2 := [][]byte{merkle.New(nil).Root(), LevelTree(l2).Root()}
	if err := x.InstallAll(l2, roots2, wire.SignedRoot{Root: GlobalRoot(roots2)}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := x.Lookup([]byte("a")); ok {
		t.Fatal("emptied level still serving")
	}
	if _, _, _, ok := x.Lookup([]byte("e")); !ok {
		t.Fatal("surviving level lost")
	}
}

func TestInstallAllRejectsRootMismatch(t *testing.T) {
	x := NewIndex([]int{2})
	l1 := Merge([]wire.KV{kv("a", 1)}, nil, 1, 2, 0, 1)
	wrong := [][]byte{merkle.LeafHash([]byte("forged"))}
	if err := x.InstallAll(l1, wrong, wire.SignedRoot{}); err == nil {
		t.Fatal("forged roots accepted")
	}
}

func TestInstallAllRejectsBadLevelNumber(t *testing.T) {
	x := NewIndex([]int{2})
	bad := Merge([]wire.KV{kv("a", 1)}, nil, 7, 2, 0, 1) // level 7 of 1
	roots := [][]byte{merkle.New(nil).Root()}
	if err := x.InstallAll(bad, roots, wire.SignedRoot{}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestInstallAllRejectsInvalidLevel(t *testing.T) {
	x := NewIndex([]int{2})
	l1 := Merge([]wire.KV{kv("a", 1), kv("b", 2), kv("c", 3)}, nil, 1, 1, 0, 1)
	l1[1].Lo = []byte("zzz") // break contiguity
	roots := [][]byte{LevelTree(l1).Root()}
	if err := x.InstallAll(l1, roots, wire.SignedRoot{}); err == nil {
		t.Fatal("invariant-violating level accepted")
	}
}

func TestAssembleGetManyKeysSweep(t *testing.T) {
	var kvs []wire.KV
	for i := 0; i < 50; i++ {
		kvs = append(kvs, kv(fmt.Sprintf("key-%03d", i), uint64(i+1)))
	}
	x := installedIndex(t, kvs)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		resp, _ := AssembleGet(key, uint64(i), L0Source{}, x, true)
		if !resp.Found || resp.Ver != uint64(i+1) {
			t.Fatalf("key %s: found=%v ver=%d", key, resp.Found, resp.Ver)
		}
	}
}
