package mlsm

import (
	"bytes"
	"fmt"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// This file implements the shared verification of a served L0 window —
// the uncompacted block suffix a read response must account for. Since
// evidence pruning, a window position is either a full block or a pruned
// reference whose digest-committed key summary proves the block cannot
// hold the requested key or range. The client (get and scan verification)
// and the cloud's dispute Judge all run this one implementation, so an
// exclusion the client would reject is exactly an exclusion the Judge
// convicts.

// L0WindowParams configures a window verification: whose evidence is
// judged against which registry, and the exclusion predicate pruned
// references must satisfy (ExcludesKey for gets, ExcludesRange for
// scans).
type L0WindowParams struct {
	Reg   *wcrypto.Registry
	Edge  wire.NodeID
	Cloud wire.NodeID
	// Excludes reports whether a key summary rules the requested key or
	// range out of a block. Every pruned reference must satisfy it — a
	// pruned block whose summary does not exclude the request is an
	// unsound prune, provable from the signed response alone.
	Excludes func(*wire.BlockSummary) bool
	// OnBlock, when set, is called for every full block in window order
	// (verifiers collect candidate versions here).
	OnBlock func(*wire.Block)
}

// L0WindowCheck is the outcome of a successful window verification.
type L0WindowCheck struct {
	// Uncertified maps each window block id lacking a certificate — full
	// or pruned — to the locally recomputed (or claimed) digest the
	// later-arriving block proof must match.
	Uncertified map[uint64][]byte
	// FirstID is the id of the window's first position; meaningless when
	// Slots == 0.
	FirstID uint64
	// L0End is one past the highest window block id (0 for an empty
	// window) — the session-consistency watermark.
	L0End uint64
	// Slots counts window positions, full and pruned together.
	Slots int
}

// VerifyL0Window re-derives every claim a served L0 window makes:
//
//   - full blocks and pruned references, merged by block id, form one
//     strictly consecutive run (no window position can be silently
//     dropped between representations);
//   - every full block belongs to the expected edge and matches its
//     cloud-signed certificate (or has its recomputed digest pinned for
//     the later proof);
//   - every pruned reference rebinds to a digest: the claimed digest is
//     recomputed from the shipped fields and checked against the
//     certificate (or pinned), so a summary tampered on the wire fails
//     exactly like a tampered block body;
//   - every pruned reference's summary actually excludes the requested
//     key or range (exclusion soundness).
//
// Any defect is an error naming the offending block — in an edge-signed
// response, the edge's own lie.
func VerifyL0Window(p L0WindowParams, blocks []wire.Block, certs []wire.BlockProof,
	pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) (L0WindowCheck, error) {
	res := L0WindowCheck{Uncertified: make(map[uint64][]byte)}
	if len(certs) != len(blocks) {
		return res, fmt.Errorf("cert/block count mismatch")
	}
	if len(prunedCerts) != len(pruned) {
		return res, fmt.Errorf("cert/pruned-block count mismatch")
	}

	checkCert := func(bid uint64, digest []byte, cert *wire.BlockProof) error {
		if len(cert.CloudSig) > 0 {
			if err := wcrypto.VerifyMsg(p.Reg, p.Cloud, cert, cert.CloudSig); err != nil {
				return fmt.Errorf("L0 cert %d: %v", bid, err)
			}
			if cert.Edge != p.Edge || cert.BID != bid || !bytes.Equal(cert.Digest, digest) {
				return fmt.Errorf("L0 cert %d does not match block", bid)
			}
			return nil
		}
		res.Uncertified[bid] = digest
		return nil
	}

	// Merge-walk the full and pruned runs by id: the union must be one
	// strictly consecutive sequence. Ties (the same id in both runs) fail
	// the consecutiveness check on the second occurrence.
	bi, pi := 0, 0
	for bi < len(blocks) || pi < len(pruned) {
		takeBlock := bi < len(blocks) &&
			(pi >= len(pruned) || blocks[bi].ID <= pruned[pi].ID)
		var id uint64
		if takeBlock {
			id = blocks[bi].ID
		} else {
			id = pruned[pi].ID
		}
		if res.Slots == 0 {
			res.FirstID = id
		} else if id != res.FirstID+uint64(res.Slots) {
			return res, fmt.Errorf("L0 window ids not consecutive at block %d", id)
		}
		res.Slots++
		if id+1 > res.L0End {
			res.L0End = id + 1
		}
		if takeBlock {
			blk := &blocks[bi]
			if blk.Edge != p.Edge {
				return res, fmt.Errorf("L0 block %d from wrong edge", blk.ID)
			}
			digest := wcrypto.RecomputedBlockDigest(blk)
			if err := checkCert(blk.ID, digest, &certs[bi]); err != nil {
				return res, err
			}
			if p.OnBlock != nil {
				p.OnBlock(blk)
			}
			bi++
		} else {
			pb := &pruned[pi]
			if pb.Edge != p.Edge {
				return res, fmt.Errorf("pruned L0 block %d from wrong edge", pb.ID)
			}
			digest := pb.Digest()
			if err := checkCert(pb.ID, digest, &prunedCerts[pi]); err != nil {
				return res, err
			}
			if p.Excludes != nil && !p.Excludes(&pb.Summary) {
				return res, fmt.Errorf("pruned L0 block %d: summary does not exclude the requested key/range", pb.ID)
			}
			pi++
		}
	}
	return res, nil
}
