package mlsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// windowFixture builds a three-block certified window: block 0 writes
// "apple", block 1 writes "mango", block 2 is uncertified and writes
// "zebra".
type windowFixture struct {
	reg      *wcrypto.Registry
	cloudKey wcrypto.KeyPair
	blocks   []wire.Block
	certs    []wire.BlockProof
}

func newWindowFixture(t *testing.T) *windowFixture {
	t.Helper()
	f := &windowFixture{reg: wcrypto.NewRegistry(), cloudKey: wcrypto.DeterministicKey("cloud")}
	f.reg.Register("cloud", f.cloudKey.Pub)
	keys := []string{"apple", "mango", "zebra"}
	for i, k := range keys {
		blk := wire.Block{Edge: "edge-1", ID: uint64(i), StartPos: uint64(i), Ts: int64(i), Entries: []wire.Entry{
			{Client: "c1", Seq: uint64(i + 1), Key: []byte(k), Value: []byte("v")},
		}}
		blk.Freeze()
		cert := wire.BlockProof{}
		if i < 2 {
			cert = wire.BlockProof{Edge: "edge-1", BID: blk.ID, Digest: wcrypto.BlockDigest(&blk)}
			cert.CloudSig = wcrypto.SignMsg(f.cloudKey, &cert)
		}
		f.blocks = append(f.blocks, blk)
		f.certs = append(f.certs, cert)
	}
	return f
}

func (f *windowFixture) params(key string) L0WindowParams {
	return L0WindowParams{
		Reg:   f.reg,
		Edge:  "edge-1",
		Cloud: "cloud",
		Excludes: func(s *wire.BlockSummary) bool {
			return s.ExcludesKey([]byte(key))
		},
	}
}

// split prunes the given block indexes and keeps the rest full.
func (f *windowFixture) split(prune ...int) (blocks []wire.Block, certs, prunedCerts []wire.BlockProof, pruned []wire.PrunedBlock) {
	isPruned := map[int]bool{}
	for _, i := range prune {
		isPruned[i] = true
	}
	for i := range f.blocks {
		if isPruned[i] {
			pruned = append(pruned, wire.PruneBlock(&f.blocks[i]))
			prunedCerts = append(prunedCerts, f.certs[i])
		} else {
			blocks = append(blocks, f.blocks[i])
			certs = append(certs, f.certs[i])
		}
	}
	return
}

func TestVerifyL0WindowHonestPruning(t *testing.T) {
	f := newWindowFixture(t)
	// Get for "mango": blocks 0 (apple, certified) and 2 (zebra,
	// uncertified) are legitimately pruned; block 1 ships in full.
	blocks, certs, prunedCerts, pruned := f.split(0, 2)
	var seen []uint64
	p := f.params("mango")
	p.OnBlock = func(b *wire.Block) { seen = append(seen, b.ID) }
	win, err := VerifyL0Window(p, blocks, certs, pruned, prunedCerts)
	if err != nil {
		t.Fatalf("honest pruned window rejected: %v", err)
	}
	if win.Slots != 3 || win.FirstID != 0 || win.L0End != 3 {
		t.Fatalf("window shape: %+v", win)
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("OnBlock saw %v", seen)
	}
	// The uncertified pruned block's claimed digest is pinned.
	if len(win.Uncertified) != 1 || !bytes.Equal(win.Uncertified[2], wcrypto.BlockDigest(&f.blocks[2])) {
		t.Fatalf("uncertified pins = %v", win.Uncertified)
	}
}

func TestVerifyL0WindowDefects(t *testing.T) {
	f := newWindowFixture(t)
	cases := []struct {
		name    string
		mutate  func(blocks []wire.Block, pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) ([]wire.Block, []wire.PrunedBlock, []wire.BlockProof)
		errPart string
	}{
		{"false exclusion", func(blocks []wire.Block, pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) ([]wire.Block, []wire.PrunedBlock, []wire.BlockProof) {
			// Prune the block that HOLDS the key: summary is honest, so it
			// visibly covers "mango" — an unsound prune.
			pruned[0] = wire.PruneBlock(&f.blocks[1])
			prunedCerts[0] = f.certs[1]
			return blocks[:0], pruned[:1], prunedCerts[:1]
		}, "does not exclude"},
		{"tampered summary", func(blocks []wire.Block, pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) ([]wire.Block, []wire.PrunedBlock, []wire.BlockProof) {
			// Doctor the certified pruned block's summary so the exclusion
			// looks sound; the claimed digest then contradicts the cert.
			pruned[0].Summary = wire.BlockSummary{} // "no keys at all"
			return blocks, pruned, prunedCerts
		}, "does not match"},
		{"window gap", func(blocks []wire.Block, pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) ([]wire.Block, []wire.PrunedBlock, []wire.BlockProof) {
			// Drop the pruned reference for block 0: ids 1,2 remain but the
			// walk starts at 1 — contiguity itself is intact, so instead
			// drop the middle: keep pruned {0,2}, full {} — gap at 1.
			return blocks[1:], pruned, prunedCerts
		}, "not consecutive"},
		{"duplicate id", func(blocks []wire.Block, pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) ([]wire.Block, []wire.PrunedBlock, []wire.BlockProof) {
			// Block 0 appears both in full and as a pruned reference.
			return append([]wire.Block{f.blocks[0]}, blocks...), pruned, prunedCerts
		}, "not consecutive"},
		{"foreign pruned edge", func(blocks []wire.Block, pruned []wire.PrunedBlock, prunedCerts []wire.BlockProof) ([]wire.Block, []wire.PrunedBlock, []wire.BlockProof) {
			pruned[0].Edge = "edge-other"
			return blocks, pruned, prunedCerts
		}, "wrong edge"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Base: get for "mango", blocks 0 and 2 pruned, block 1 full.
			blocks, certs, prunedCerts, pruned := f.split(0, 2)
			blocks, pruned, prunedCerts = c.mutate(blocks, pruned, prunedCerts)
			if len(blocks) < len(certs) {
				certs = certs[:len(blocks)]
			} else if len(blocks) > len(certs) {
				for len(certs) < len(blocks) {
					certs = append([]wire.BlockProof{f.certs[0]}, certs...)
				}
			}
			_, err := VerifyL0Window(f.params("mango"), blocks, certs, pruned, prunedCerts)
			if err == nil {
				t.Fatal("defective window accepted")
			}
			if !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("error %q does not mention %q", err, c.errPart)
			}
		})
	}
}

// TestVerifyL0WindowTamperedUncertifiedSummaryPins: a tampered summary on
// an UNCERTIFIED pruned block passes structural checks (nothing binds it
// yet) but pins the claimed digest, which the honest block proof later
// contradicts — the same lazy catch as injected uncertified content.
func TestVerifyL0WindowTamperedUncertifiedSummaryPins(t *testing.T) {
	f := newWindowFixture(t)
	blocks, certs, prunedCerts, pruned := f.split(2) // uncertified block pruned
	// Doctor the summary so the key "zebra" appears excluded.
	idx := len(pruned) - 1
	pruned[idx].Summary = wire.BlockSummary{}
	win, err := VerifyL0Window(f.params("zebra"), blocks, certs, pruned, prunedCerts)
	if err != nil {
		t.Fatalf("uncertified tampered summary should defer to Phase II: %v", err)
	}
	honest := wcrypto.BlockDigest(&f.blocks[2])
	if bytes.Equal(win.Uncertified[2], honest) {
		t.Fatal("pinned digest does not reflect the tampered summary")
	}
}

// TestVerifyL0WindowScanExclusion covers the range predicate: an
// interval-disjoint block may be pruned for a scan, an overlapping one
// may not.
func TestVerifyL0WindowScanExclusion(t *testing.T) {
	f := newWindowFixture(t)
	rangeParams := func(start, end string) L0WindowParams {
		p := f.params("")
		p.Excludes = func(s *wire.BlockSummary) bool {
			return s.ExcludesRange([]byte(start), []byte(end))
		}
		return p
	}
	// Scan [m, n): apple (block 0) and zebra (block 2) are disjoint.
	blocks, certs, prunedCerts, pruned := f.split(0, 2)
	if _, err := VerifyL0Window(rangeParams("m", "n"), blocks, certs, pruned, prunedCerts); err != nil {
		t.Fatalf("disjoint blocks not prunable for scan: %v", err)
	}
	// Scan [a, n): apple overlaps — pruning block 0 is unsound.
	if _, err := VerifyL0Window(rangeParams("a", "n"), blocks, certs, pruned, prunedCerts); err == nil {
		t.Fatal("overlapping block pruned without complaint")
	}
}

// TestVerifyL0WindowLargeRun exercises a longer mixed run for the merge
// walk bookkeeping.
func TestVerifyL0WindowLargeRun(t *testing.T) {
	reg := wcrypto.NewRegistry()
	ck := wcrypto.DeterministicKey("cloud")
	reg.Register("cloud", ck.Pub)
	var blocks []wire.Block
	var certs []wire.BlockProof
	var pruned []wire.PrunedBlock
	var prunedCerts []wire.BlockProof
	for i := 0; i < 40; i++ {
		blk := wire.Block{Edge: "e", ID: uint64(i), StartPos: uint64(i), Entries: []wire.Entry{
			{Client: "c1", Seq: uint64(i + 1), Key: []byte(fmt.Sprintf("k%04d", i)), Value: []byte("v")},
		}}
		blk.Freeze()
		cert := wire.BlockProof{Edge: "e", BID: blk.ID, Digest: wcrypto.BlockDigest(&blk)}
		cert.CloudSig = wcrypto.SignMsg(ck, &cert)
		if i%3 == 0 {
			blocks = append(blocks, blk)
			certs = append(certs, cert)
		} else {
			pruned = append(pruned, wire.PruneBlock(&blk))
			prunedCerts = append(prunedCerts, cert)
		}
	}
	p := L0WindowParams{Reg: reg, Edge: "e", Cloud: "cloud",
		Excludes: func(s *wire.BlockSummary) bool { return s.ExcludesKey([]byte("k0000")) }}
	// k0000 is in block 0, which ships full; every pruned block excludes it.
	win, err := VerifyL0Window(p, blocks, certs, pruned, prunedCerts)
	if err != nil {
		t.Fatal(err)
	}
	if win.Slots != 40 || win.FirstID != 0 || win.L0End != 40 || len(win.Uncertified) != 0 {
		t.Fatalf("window shape: %+v", win)
	}
}
