// Package mlsm implements the LSMerkle data structure (Section V of the
// paper): an mLSM-style index combining LSM-tree fast ingestion with
// Merkle-tree trusted access, adapted to WedgeChain's edge-cloud split.
//
// Level 0 is the WedgeChain log (package wlog): blocks double as L0 pages
// and are certified individually through block-certify/block-proof. Levels
// 1..n hold key-sorted pages that partition the keyspace into contiguous
// half-open ranges; each level has a Merkle tree over its pages, and a
// global root (the hash of all level roots) is signed by the cloud with a
// timestamp for freshness checks.
//
// The merge (compaction) computation lives here as pure functions so that
// the trusted cloud performs it and the untrusted edge merely installs the
// results; both sides share one implementation.
package mlsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"wedgechain/internal/merkle"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Errors returned by index maintenance.
var (
	ErrLevelRange = errors.New("mlsm: level out of range")
	ErrBadPages   = errors.New("mlsm: pages violate level invariants")
)

// PageLeaf returns the Merkle leaf hash committing a page: the hash of its
// range bounds and content hash. Committing the bounds inside the leaf is
// what lets clients verify non-existence from a single intersecting page.
func PageLeaf(p *wire.Page) []byte {
	var e wire.Encoder
	e.OptBlob(p.Lo)
	e.OptBlob(p.Hi)
	e.Blob(wcrypto.PageHash(p))
	return merkle.LeafHash(e.Bytes())
}

// LevelTree builds the Merkle tree over a level's pages in order.
func LevelTree(pages []wire.Page) *merkle.Tree {
	leaves := make([][]byte, len(pages))
	for i := range pages {
		leaves[i] = PageLeaf(&pages[i])
	}
	return merkle.New(leaves)
}

// GlobalRoot folds the per-level roots (levels 1..n, in order) into the
// single global root the cloud signs.
func GlobalRoot(roots [][]byte) []byte {
	var e wire.Encoder
	for _, r := range roots {
		e.Blob(r)
	}
	return wcrypto.Digest(e.Bytes())
}

// BlockKVs extracts the key-value writes from a log block. Versions are
// absolute log positions + 1, which are unique and monotonic, so "highest
// version wins" is exactly "latest write wins". Entries without a key
// (pure log records and reservation no-ops) carry no KV.
func BlockKVs(b *wire.Block) []wire.KV {
	kvs := make([]wire.KV, 0, len(b.Entries))
	for i := range b.Entries {
		en := &b.Entries[i]
		if len(en.Key) == 0 {
			continue
		}
		kvs = append(kvs, wire.KV{
			Key:   en.Key,
			Value: en.Value,
			Ver:   b.StartPos + uint64(i) + 1,
		})
	}
	return kvs
}

// dedupeSorted keeps the highest version per key in a key-sorted slice.
func dedupeSorted(kvs []wire.KV) []wire.KV {
	out := kvs[:0]
	for _, kv := range kvs {
		if len(out) > 0 && bytes.Equal(out[len(out)-1].Key, kv.Key) {
			if kv.Ver > out[len(out)-1].Ver {
				out[len(out)-1] = kv
			}
			continue
		}
		out = append(out, kv)
	}
	return out
}

// sortKVs sorts by key, then by descending version for stable dedupe.
func sortKVs(kvs []wire.KV) {
	sort.SliceStable(kvs, func(i, j int) bool {
		c := bytes.Compare(kvs[i].Key, kvs[j].Key)
		if c != 0 {
			return c < 0
		}
		return kvs[i].Ver > kvs[j].Ver
	})
}

// mergeRuns merges two key-sorted deduped runs, preferring the higher
// version on key collisions.
func mergeRuns(a, b []wire.KV) []wire.KV {
	out := make([]wire.KV, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := bytes.Compare(a[i].Key, b[j].Key); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			if a[i].Ver >= b[j].Ver {
				out = append(out, a[i])
			} else {
				out = append(out, b[j])
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// PagesKVs concatenates the records of consecutive pages of one level.
// Pages are key-sorted and ranges contiguous, so the result is sorted.
func PagesKVs(pages []wire.Page) []wire.KV {
	var out []wire.KV
	for i := range pages {
		out = append(out, pages[i].KVs...)
	}
	return out
}

// Merge is the compaction computation (performed by the cloud): merge the
// source records (newer) into the destination level's pages (older),
// producing the replacement pages for the destination level. Page ranges
// partition the keyspace: the first page's Lo and last page's Hi are nil
// (±infinity) and interior boundaries are shared, the contiguity invariant
// clients rely on.
//
// srcKVs may be unsorted and contain duplicates (it is typically the
// concatenation of L0 block KVs); dst pages must obey level invariants.
// seqStart numbers the new pages; ts stamps them.
func Merge(srcKVs []wire.KV, dst []wire.Page, level uint32, pageCap int, seqStart uint64, ts int64) []wire.Page {
	if pageCap <= 0 {
		pageCap = 1
	}
	src := append([]wire.KV(nil), srcKVs...)
	sortKVs(src)
	src = dedupeSorted(src)
	merged := mergeRuns(src, PagesKVs(dst))

	// Split into pages of at most pageCap records.
	var pages []wire.Page
	for start := 0; start < len(merged); start += pageCap {
		end := start + pageCap
		if end > len(merged) {
			end = len(merged)
		}
		pages = append(pages, wire.Page{
			Level: level,
			Seq:   seqStart + uint64(len(pages)),
			Ts:    ts,
			KVs:   append([]wire.KV(nil), merged[start:end]...),
		})
	}
	if len(pages) == 0 {
		// A level with zero records still needs one full-range page so
		// non-existence proofs have an intersecting page to present.
		pages = append(pages, wire.Page{Level: level, Seq: seqStart, Ts: ts})
	}
	// Assign contiguous half-open ranges.
	for i := range pages {
		if i == 0 {
			pages[i].Lo = nil
		} else {
			pages[i].Lo = pages[i].KVs[0].Key
			pages[i-1].Hi = pages[i].KVs[0].Key
		}
	}
	pages[len(pages)-1].Hi = nil
	return pages
}

// CheckLevel validates a level's invariants: key-sorted records inside
// pages, records inside their page range, ranges contiguous from -inf to
// +inf, and no duplicate keys across the level.
func CheckLevel(pages []wire.Page) error {
	if len(pages) == 0 {
		return fmt.Errorf("%w: empty level", ErrBadPages)
	}
	if pages[0].Lo != nil {
		return fmt.Errorf("%w: first page Lo != -inf", ErrBadPages)
	}
	if pages[len(pages)-1].Hi != nil {
		return fmt.Errorf("%w: last page Hi != +inf", ErrBadPages)
	}
	var prevKey []byte
	havePrev := false
	for i := range pages {
		p := &pages[i]
		if i > 0 && !bytes.Equal(pages[i-1].Hi, p.Lo) {
			return fmt.Errorf("%w: gap between pages %d and %d", ErrBadPages, i-1, i)
		}
		for j := range p.KVs {
			k := p.KVs[j].Key
			if !p.Contains(k) {
				return fmt.Errorf("%w: key outside page %d range", ErrBadPages, i)
			}
			if havePrev && bytes.Compare(prevKey, k) >= 0 {
				return fmt.Errorf("%w: keys not strictly increasing at page %d", ErrBadPages, i)
			}
			prevKey, havePrev = k, true
		}
	}
	return nil
}

// Index is the edge-resident state for LSMerkle levels 1..n: the pages,
// their Merkle trees, the level roots and the cloud-signed global root.
// L0 state lives in the edge node itself (the uncompacted suffix of the
// wlog). Index is not safe for concurrent use.
type Index struct {
	thresholds []int // max pages per level, for levels 1..n
	levels     [][]wire.Page
	trees      []*merkle.Tree
	roots      [][]byte
	global     wire.SignedRoot
}

// NewIndex creates an empty index with the given per-level page thresholds
// for levels 1..n.
func NewIndex(thresholds []int) *Index {
	n := len(thresholds)
	x := &Index{
		thresholds: append([]int(nil), thresholds...),
		levels:     make([][]wire.Page, n),
		trees:      make([]*merkle.Tree, n),
		roots:      make([][]byte, n),
	}
	for i := 0; i < n; i++ {
		x.trees[i] = merkle.New(nil)
		x.roots[i] = x.trees[i].Root()
	}
	return x
}

// Levels returns the number of levels (excluding L0).
func (x *Index) Levels() int { return len(x.levels) }

// Threshold returns the page threshold of level (1-based).
func (x *Index) Threshold(level int) int { return x.thresholds[level-1] }

// Pages returns the pages of level (1-based). Callers must not modify.
func (x *Index) Pages(level int) []wire.Page { return x.levels[level-1] }

// PageCount returns the number of pages in level (1-based).
func (x *Index) PageCount(level int) int { return len(x.levels[level-1]) }

// Roots returns the level roots in order. Callers must not modify.
func (x *Index) Roots() [][]byte { return x.roots }

// Global returns the current signed global root (zero before any merge).
func (x *Index) Global() wire.SignedRoot { return x.global }

// OverThreshold reports whether level (1-based) exceeds its page budget
// and should be merged into level+1.
func (x *Index) OverThreshold(level int) bool {
	return len(x.levels[level-1]) > x.thresholds[level-1]
}

// InstallLevel replaces level (1-based) with the merged pages returned by
// the cloud, updates the Merkle tree, and adopts the new roots and signed
// global root. When the merge consumed a source level > 0, the caller then
// clears it with ClearLevel.
func (x *Index) InstallLevel(level int, pages []wire.Page, roots [][]byte, global wire.SignedRoot) error {
	if level < 1 || level > len(x.levels) {
		return fmt.Errorf("%w: %d", ErrLevelRange, level)
	}
	if err := CheckLevel(pages); err != nil {
		return err
	}
	if len(roots) != len(x.roots) {
		return fmt.Errorf("%w: %d roots for %d levels", ErrBadPages, len(roots), len(x.roots))
	}
	x.levels[level-1] = append([]wire.Page(nil), pages...)
	x.trees[level-1] = LevelTree(x.levels[level-1])
	if !bytes.Equal(x.trees[level-1].Root(), roots[level-1]) {
		return fmt.Errorf("%w: cloud level root does not match installed pages", ErrBadPages)
	}
	x.roots = make([][]byte, len(roots))
	for i := range roots {
		x.roots[i] = append([]byte(nil), roots[i]...)
	}
	x.global = global
	return nil
}

// ClearLevel empties level (1-based) after its pages were merged downward.
// The level roots were already adopted via InstallLevel; this only drops
// the page data and rebuilds the (empty) tree, which must match the
// adopted root.
func (x *Index) ClearLevel(level int) error {
	if level < 1 || level > len(x.levels) {
		return fmt.Errorf("%w: %d", ErrLevelRange, level)
	}
	x.levels[level-1] = nil
	x.trees[level-1] = merkle.New(nil)
	if !bytes.Equal(x.trees[level-1].Root(), x.roots[level-1]) {
		return fmt.Errorf("%w: cleared level root mismatch", ErrBadPages)
	}
	return nil
}

// FindPage returns the index of the page of level (1-based) whose range
// contains key, or -1 when the level is empty.
func (x *Index) FindPage(level int, key []byte) int {
	pages := x.levels[level-1]
	if len(pages) == 0 {
		return -1
	}
	// Binary search on Lo: rightmost page with Lo <= key (nil Lo = -inf).
	i := sort.Search(len(pages), func(i int) bool {
		return pages[i].Lo != nil && bytes.Compare(pages[i].Lo, key) > 0
	}) - 1
	if i < 0 {
		i = 0
	}
	if !pages[i].Contains(key) {
		return -1
	}
	return i
}

// PageRange returns the half-open page index range [a, b) of level
// (1-based) whose pages overlap the key range [start, end), where nil
// start means -infinity and nil end means +infinity. It returns (-1, -1)
// when the level holds no pages. For start < end the result is never
// empty: level ranges partition the keyspace, so the page containing
// start always precedes the first page at or beyond end.
func (x *Index) PageRange(level int, start, end []byte) (int, int) {
	pages := x.levels[level-1]
	if len(pages) == 0 {
		return -1, -1
	}
	a := 0
	if start != nil {
		// First page with Hi > start — the page containing start.
		a = sort.Search(len(pages), func(i int) bool {
			return pages[i].Hi == nil || bytes.Compare(pages[i].Hi, start) > 0
		})
	}
	b := len(pages)
	if end != nil {
		// First page with Lo >= end — the first page past the scan.
		b = sort.Search(len(pages), func(i int) bool {
			return pages[i].Lo != nil && bytes.Compare(pages[i].Lo, end) >= 0
		})
	}
	return a, b
}

// LevelRangeProof assembles the multi-page Merkle range proof for pages
// [a, b) of level (1-based): the pages themselves plus the two flank
// paths (merkle.RangeProof).
func (x *Index) LevelRangeProof(level, a, b int) (wire.LevelRangeProof, error) {
	if level < 1 || level > len(x.levels) {
		return wire.LevelRangeProof{}, fmt.Errorf("%w: %d", ErrLevelRange, level)
	}
	pages := x.levels[level-1]
	if a < 0 || b > len(pages) || a >= b {
		return wire.LevelRangeProof{}, fmt.Errorf("mlsm: page range [%d,%d) out of range in level %d", a, b, level)
	}
	left, right, err := x.trees[level-1].RangeProof(a, b)
	if err != nil {
		return wire.LevelRangeProof{}, err
	}
	return wire.LevelRangeProof{
		Level: uint32(level),
		First: uint32(a),
		Width: uint32(x.trees[level-1].Len()),
		Pages: append([]wire.Page(nil), pages[a:b]...),
		Left:  left,
		Right: right,
	}, nil
}

// MergeNewest sorts candidate records by key and keeps the highest
// version per key — the newest-wins rule shared by compaction and by
// client-side scan result derivation. The input slice is not retained.
func MergeNewest(kvs []wire.KV) []wire.KV {
	out := append([]wire.KV(nil), kvs...)
	sortKVs(out)
	return dedupeSorted(out)
}

// Lookup searches levels 1..n for key, returning the containing level
// (1-based), the page index, and the record. Levels are searched top-down
// so the newest surviving version wins.
func (x *Index) Lookup(key []byte) (level, pageIdx int, kv wire.KV, found bool) {
	for lvl := 1; lvl <= len(x.levels); lvl++ {
		pi := x.FindPage(lvl, key)
		if pi < 0 {
			continue
		}
		p := &x.levels[lvl-1][pi]
		j := sort.Search(len(p.KVs), func(i int) bool {
			return bytes.Compare(p.KVs[i].Key, key) >= 0
		})
		if j < len(p.KVs) && bytes.Equal(p.KVs[j].Key, key) {
			return lvl, pi, p.KVs[j], true
		}
	}
	return 0, 0, wire.KV{}, false
}

// LevelProof assembles the Merkle membership proof for page pageIdx of
// level (1-based).
func (x *Index) LevelProof(level, pageIdx int) (wire.LevelProof, error) {
	if level < 1 || level > len(x.levels) {
		return wire.LevelProof{}, fmt.Errorf("%w: %d", ErrLevelRange, level)
	}
	pages := x.levels[level-1]
	if pageIdx < 0 || pageIdx >= len(pages) {
		return wire.LevelProof{}, fmt.Errorf("mlsm: page %d out of range in level %d", pageIdx, level)
	}
	path, err := x.trees[level-1].Proof(pageIdx)
	if err != nil {
		return wire.LevelProof{}, err
	}
	return wire.LevelProof{
		Level: uint32(level),
		Page:  pages[pageIdx],
		Index: uint32(pageIdx),
		Path:  path,
	}, nil
}

// LevelLen returns the number of leaves in level's tree (1-based level).
func (x *Index) LevelLen(level int) int { return x.trees[level-1].Len() }

// TotalRecords counts records across levels 1..n (for tests and stats).
func (x *Index) TotalRecords() int {
	n := 0
	for _, lvl := range x.levels {
		for i := range lvl {
			n += len(lvl[i].KVs)
		}
	}
	return n
}
