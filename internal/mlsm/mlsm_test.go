package mlsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wedgechain/internal/merkle"
	"wedgechain/internal/wire"
)

func kv(key string, ver uint64) wire.KV {
	return wire.KV{Key: []byte(key), Value: []byte(fmt.Sprintf("%s@%d", key, ver)), Ver: ver}
}

func TestBlockKVsAssignsPositionVersions(t *testing.T) {
	b := &wire.Block{
		Edge: "e", ID: 3, StartPos: 100,
		Entries: []wire.Entry{
			{Client: "c", Key: []byte("a"), Value: []byte("1")},
			{Client: "c", Value: []byte("log-only")}, // no key: skipped
			{Client: "c", Key: []byte("b"), Value: []byte("2")},
		},
	}
	kvs := BlockKVs(b)
	if len(kvs) != 2 {
		t.Fatalf("len = %d", len(kvs))
	}
	if kvs[0].Ver != 101 || kvs[1].Ver != 103 {
		t.Fatalf("versions = %d,%d want 101,103", kvs[0].Ver, kvs[1].Ver)
	}
}

func TestMergeBasicsAndInvariants(t *testing.T) {
	src := []wire.KV{kv("d", 10), kv("b", 11), kv("b", 12), kv("a", 13)}
	dst := Merge([]wire.KV{kv("a", 1), kv("c", 2)}, nil, 1, 2, 0, 5)
	if err := CheckLevel(dst); err != nil {
		t.Fatalf("initial level invalid: %v", err)
	}
	out := Merge(src, dst, 1, 2, 10, 6)
	if err := CheckLevel(out); err != nil {
		t.Fatalf("merged level invalid: %v", err)
	}
	all := PagesKVs(out)
	want := map[string]uint64{"a": 13, "b": 12, "c": 2, "d": 10}
	if len(all) != len(want) {
		t.Fatalf("records = %d, want %d (%v)", len(all), len(want), all)
	}
	for _, r := range all {
		if want[string(r.Key)] != r.Ver {
			t.Errorf("key %s: ver %d, want %d", r.Key, r.Ver, want[string(r.Key)])
		}
	}
}

func TestMergeEmptyProducesFullRangePage(t *testing.T) {
	out := Merge(nil, nil, 2, 4, 0, 1)
	if len(out) != 1 {
		t.Fatalf("pages = %d", len(out))
	}
	if out[0].Lo != nil || out[0].Hi != nil || len(out[0].KVs) != 0 {
		t.Fatalf("placeholder page = %+v", out[0])
	}
	if err := CheckLevel(out); err != nil {
		t.Fatal(err)
	}
}

func TestMergePageCapRespected(t *testing.T) {
	var src []wire.KV
	for i := 0; i < 25; i++ {
		src = append(src, kv(fmt.Sprintf("k%03d", i), uint64(i+1)))
	}
	out := Merge(src, nil, 1, 10, 0, 1)
	if len(out) != 3 {
		t.Fatalf("pages = %d, want 3", len(out))
	}
	for i, p := range out {
		if len(p.KVs) > 10 {
			t.Fatalf("page %d has %d records", i, len(p.KVs))
		}
	}
	if err := CheckLevel(out); err != nil {
		t.Fatal(err)
	}
}

// TestMergeMatchesModelMap drives random put sequences through repeated
// merges and checks the level content against a model map — the paper's
// correctness claim that reads always observe latest-write-wins state.
func TestMergeMatchesModelMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		model := map[string]uint64{}
		var level []wire.Page
		ver := uint64(1)
		for round := 0; round < 5; round++ {
			var src []wire.KV
			for i := 0; i < 1+r.Intn(20); i++ {
				k := fmt.Sprintf("key-%d", r.Intn(15))
				src = append(src, kv(k, ver))
				model[k] = ver
				ver++
			}
			level = Merge(src, level, 1, 4, uint64(round*100), int64(round))
			if CheckLevel(level) != nil {
				return false
			}
		}
		got := map[string]uint64{}
		for _, r := range PagesKVs(level) {
			got[string(r.Key)] = r.Ver
		}
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLevelRejectsViolations(t *testing.T) {
	good := Merge([]wire.KV{kv("a", 1), kv("b", 2), kv("c", 3), kv("d", 4)}, nil, 1, 2, 0, 1)
	if err := CheckLevel(good); err != nil {
		t.Fatal(err)
	}
	// Gap between pages.
	gap := append([]wire.Page(nil), good...)
	gap[0].Hi = []byte("bb")
	if err := CheckLevel(gap); err == nil {
		t.Fatal("gap accepted")
	}
	// First page not -inf.
	lo := append([]wire.Page(nil), good...)
	lo[0].Lo = []byte("a")
	if err := CheckLevel(lo); err == nil {
		t.Fatal("bounded first page accepted")
	}
	// Key outside range.
	out := append([]wire.Page(nil), good...)
	out[0].KVs = append([]wire.KV(nil), out[0].KVs...)
	out[0].KVs[0].Key = []byte("zzz")
	if err := CheckLevel(out); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	// Duplicate keys across the level.
	dup := Merge([]wire.KV{kv("a", 1), kv("b", 2)}, nil, 1, 1, 0, 1)
	dup[1].KVs[0].Key = []byte("a")
	dup[1].KVs[0].Ver = 9
	if err := CheckLevel(dup); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestPageLeafBindsRangeAndContent(t *testing.T) {
	p := wire.Page{Level: 1, Seq: 1, Lo: []byte("a"), Hi: []byte("m"), KVs: []wire.KV{kv("b", 1)}}
	l1 := PageLeaf(&p)
	p2 := p
	p2.Hi = []byte("z") // widen the claimed range
	if bytes.Equal(l1, PageLeaf(&p2)) {
		t.Fatal("leaf ignores range bounds")
	}
	p3 := p
	p3.KVs = []wire.KV{kv("b", 2)}
	if bytes.Equal(l1, PageLeaf(&p3)) {
		t.Fatal("leaf ignores content")
	}
}

func TestGlobalRootOrderSensitive(t *testing.T) {
	r1 := wire.Encoder{}
	_ = r1
	a := merkle.LeafHash([]byte("a"))
	b := merkle.LeafHash([]byte("b"))
	if bytes.Equal(GlobalRoot([][]byte{a, b}), GlobalRoot([][]byte{b, a})) {
		t.Fatal("global root insensitive to level order")
	}
}

func newTestIndex(t *testing.T) *Index {
	t.Helper()
	return NewIndex([]int{2, 4})
}

func TestIndexInstallAndLookup(t *testing.T) {
	x := newTestIndex(t)
	pages := Merge([]wire.KV{kv("a", 1), kv("b", 2), kv("c", 3)}, nil, 1, 2, 0, 1)
	roots := [][]byte{LevelTree(pages).Root(), merkle.New(nil).Root()}
	global := wire.SignedRoot{Edge: "e", Epoch: 1, Root: GlobalRoot(roots), Ts: 1}
	if err := x.InstallLevel(1, pages, roots, global); err != nil {
		t.Fatal(err)
	}
	lvl, pi, rec, found := x.Lookup([]byte("b"))
	if !found || lvl != 1 || rec.Ver != 2 {
		t.Fatalf("Lookup(b) = %d,%d,%+v,%v", lvl, pi, rec, found)
	}
	if _, _, _, found := x.Lookup([]byte("zz")); found {
		t.Fatal("found a missing key")
	}
}

func TestIndexLookupPrefersLowerLevel(t *testing.T) {
	x := newTestIndex(t)
	// L2 holds an old version of "k"; L1 holds a newer one.
	l2 := Merge([]wire.KV{kv("k", 1), kv("z", 2)}, nil, 2, 4, 0, 1)
	r2 := LevelTree(l2).Root()
	roots := [][]byte{merkle.New(nil).Root(), r2}
	if err := x.InstallLevel(2, l2, roots, wire.SignedRoot{Root: GlobalRoot(roots)}); err != nil {
		t.Fatal(err)
	}
	l1 := Merge([]wire.KV{kv("k", 9)}, nil, 1, 4, 10, 2)
	roots2 := [][]byte{LevelTree(l1).Root(), r2}
	if err := x.InstallLevel(1, l1, roots2, wire.SignedRoot{Root: GlobalRoot(roots2)}); err != nil {
		t.Fatal(err)
	}
	_, _, rec, found := x.Lookup([]byte("k"))
	if !found || rec.Ver != 9 {
		t.Fatalf("Lookup(k) = %+v,%v want ver 9", rec, found)
	}
	_, _, rec, found = x.Lookup([]byte("z"))
	if !found || rec.Ver != 2 {
		t.Fatalf("Lookup(z) = %+v,%v want ver 2", rec, found)
	}
}

func TestIndexInstallRejectsRootMismatch(t *testing.T) {
	x := newTestIndex(t)
	pages := Merge([]wire.KV{kv("a", 1)}, nil, 1, 2, 0, 1)
	wrong := [][]byte{merkle.LeafHash([]byte("forged")), merkle.New(nil).Root()}
	if err := x.InstallLevel(1, pages, wrong, wire.SignedRoot{}); err == nil {
		t.Fatal("mismatched root accepted")
	}
}

func TestIndexOverThresholdAndClear(t *testing.T) {
	x := newTestIndex(t) // L1 threshold 2
	var src []wire.KV
	for i := 0; i < 7; i++ {
		src = append(src, kv(fmt.Sprintf("k%d", i), uint64(i+1)))
	}
	pages := Merge(src, nil, 1, 2, 0, 1) // 4 pages of cap 2
	roots := [][]byte{LevelTree(pages).Root(), merkle.New(nil).Root()}
	if err := x.InstallLevel(1, pages, roots, wire.SignedRoot{Root: GlobalRoot(roots)}); err != nil {
		t.Fatal(err)
	}
	if !x.OverThreshold(1) {
		t.Fatal("4 pages with threshold 2 not over")
	}
	// Merge L1 into L2, then clear L1.
	l2 := Merge(PagesKVs(pages), nil, 2, 4, 100, 2)
	roots2 := [][]byte{merkle.New(nil).Root(), LevelTree(l2).Root()}
	if err := x.InstallLevel(2, l2, roots2, wire.SignedRoot{Root: GlobalRoot(roots2)}); err != nil {
		t.Fatal(err)
	}
	if err := x.ClearLevel(1); err != nil {
		t.Fatal(err)
	}
	if x.OverThreshold(1) {
		t.Fatal("cleared level still over threshold")
	}
	if _, _, rec, found := x.Lookup([]byte("k3")); !found || rec.Ver != 4 {
		t.Fatalf("post-compaction Lookup(k3) = %+v,%v", rec, found)
	}
}

func TestLevelProofVerifies(t *testing.T) {
	x := newTestIndex(t)
	var src []wire.KV
	for i := 0; i < 9; i++ {
		src = append(src, kv(fmt.Sprintf("k%d", i), uint64(i+1)))
	}
	pages := Merge(src, nil, 1, 2, 0, 1)
	roots := [][]byte{LevelTree(pages).Root(), merkle.New(nil).Root()}
	if err := x.InstallLevel(1, pages, roots, wire.SignedRoot{Root: GlobalRoot(roots)}); err != nil {
		t.Fatal(err)
	}
	for pi := range pages {
		lp, err := x.LevelProof(1, pi)
		if err != nil {
			t.Fatal(err)
		}
		leaf := PageLeaf(&lp.Page)
		if err := merkle.Verify(roots[0], leaf, int(lp.Index), x.LevelLen(1), lp.Path); err != nil {
			t.Fatalf("page %d proof: %v", pi, err)
		}
	}
}

func TestFindPageBoundaries(t *testing.T) {
	x := newTestIndex(t)
	src := []wire.KV{kv("b", 1), kv("d", 2), kv("f", 3), kv("h", 4)}
	pages := Merge(src, nil, 1, 2, 0, 1) // ranges: (-inf,"f") ["f",+inf)
	roots := [][]byte{LevelTree(pages).Root(), merkle.New(nil).Root()}
	if err := x.InstallLevel(1, pages, roots, wire.SignedRoot{Root: GlobalRoot(roots)}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  string
		want int
	}{
		{"a", 0}, {"b", 0}, {"e", 0}, {"f", 1}, {"g", 1}, {"zzz", 1},
	}
	for _, c := range cases {
		if got := x.FindPage(1, []byte(c.key)); got != c.want {
			t.Errorf("FindPage(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	if got := x.FindPage(2, []byte("a")); got != -1 {
		t.Errorf("FindPage on empty level = %d", got)
	}
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	src := []wire.KV{kv("b", 2), kv("a", 1)}
	srcCopy := append([]wire.KV(nil), src...)
	dst := Merge([]wire.KV{kv("c", 1)}, nil, 1, 10, 0, 1)
	dstHash := LevelTree(dst).Root()
	_ = Merge(src, dst, 1, 10, 5, 2)
	for i := range src {
		if !bytes.Equal(src[i].Key, srcCopy[i].Key) || src[i].Ver != srcCopy[i].Ver {
			t.Fatal("Merge reordered caller's src slice")
		}
	}
	if !bytes.Equal(LevelTree(dst).Root(), dstHash) {
		t.Fatal("Merge mutated dst pages")
	}
}
