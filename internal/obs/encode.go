package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm encodes every family in the registry in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers,
// families in name order, children in label-value order, histograms as
// cumulative _bucket{le=...} series plus _sum and _count. Output is
// deterministic for a fixed set of values. Nil-safe: a nil registry
// encodes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range f.sortedChildren() {
			base := labelString(f.labelNames, ch.values, "")
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, base, ch.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, base, fmtFloat(ch.g.Value()))
			case kindHistogram:
				cs, count, sum := ch.h.snapshot()
				var cum uint64
				for i, bound := range f.buckets {
					cum += cs[i]
					le := labelString(f.labelNames, ch.values, fmtFloat(bound))
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, le, cum)
				}
				inf := labelString(f.labelNames, ch.values, "+Inf")
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, inf, count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, base, fmtFloat(sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, base, count)
			}
		}
	}
	return bw.Flush()
}

// Sample is one flattened series value from a registry snapshot.
// Histograms flatten to quantile pseudo-series (_p50/_p99), _sum and
// _count rather than raw buckets — the shape bench artifacts want.
type Sample struct {
	Name   string // series name including any quantile suffix
	Labels string // rendered {k="v",...} or ""
	Value  float64
}

// Samples returns a deterministic flat snapshot of every series,
// ordered by (name, labels). Counters and gauges yield one sample;
// histograms yield name_p50, name_p99, name_sum and name_count.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.sortedFamilies() {
		for _, ch := range f.sortedChildren() {
			ls := labelString(f.labelNames, ch.values, "")
			switch f.kind {
			case kindCounter:
				out = append(out, Sample{f.name, ls, float64(ch.c.Value())})
			case kindGauge:
				out = append(out, Sample{f.name, ls, ch.g.Value()})
			case kindHistogram:
				out = append(out,
					Sample{f.name + "_p50", ls, ch.h.Quantile(0.50)},
					Sample{f.name + "_p99", ls, ch.h.Quantile(0.99)},
					Sample{f.name + "_sum", ls, ch.h.Sum()},
					Sample{f.name + "_count", ls, float64(ch.h.Count())})
			}
		}
	}
	return out
}

// Quantile estimates the q-quantile of a histogram family, merging the
// bucket counts of every child (all children share the family's bucket
// bounds). Returns 0 when the family is unknown, not a histogram, or
// empty. The cross-node trust-lag p99 is Quantile("wedge_trust_lag_seconds", 0.99).
func (r *Registry) Quantile(name string, q float64) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != kindHistogram {
		return 0
	}
	merged := make([]uint64, len(f.buckets)+1)
	var total uint64
	for _, ch := range f.sortedChildren() {
		cs, count, _ := ch.h.snapshot()
		for i, c := range cs {
			merged[i] += c
		}
		total += count
	}
	return bucketQuantile(f.buckets, merged, total, q)
}

// CounterValue sums the named counter family across all children.
// Returns 0 for unknown names — callers snapshotting optional series
// need not care whether the layer registered them.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != kindCounter {
		return 0
	}
	var total uint64
	for _, ch := range f.sortedChildren() {
		total += ch.c.Value()
	}
	return total
}

// fmtFloat renders floats the way Prometheus clients do: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label. Returns "" with no labels at all.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
