package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics        Prometheus text exposition
//	/healthz        200 "ok" liveness probe
//	/debug/pprof/*  the standard runtime profiles
//
// pprof handlers are mounted explicitly on a private mux — importing
// net/http/pprof for its side effect would silently pollute
// http.DefaultServeMux for every binary linking this package.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics listener started by StartServer.
type Server struct {
	// Addr is the bound address — useful when the requested address
	// used port 0.
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartServer binds addr (host:port; port 0 picks a free port) and
// serves Handler(r) until Close. Binaries call this when -metrics-addr
// is set; the listener is opt-in and failure to bind is returned, not
// fatal, so the caller decides severity.
func StartServer(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Close shuts the listener down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
