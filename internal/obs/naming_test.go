package obs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestMetricNamingConvention is the go-vet-style check required by the
// observability PR: every obs registration call in the repo whose name
// is a string literal must satisfy the documented wedge_* convention
// (wedge_ prefix, lowercase, counters end _total, histograms end in a
// unit). It parses the whole module, so a misnamed metric fails CI at
// `go test` time instead of surfacing as an unscrapable series.
func TestMetricNamingConvention(t *testing.T) {
	root := moduleRoot(t)
	kinds := map[string]kind{
		"Counter": kindCounter, "CounterVec": kindCounter,
		"Gauge": kindGauge, "GaugeVec": kindGauge,
		"Histogram": kindHistogram, "HistogramVec": kindHistogram,
	}
	fset := token.NewFileSet()
	checked := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		// Test files may register deliberately bad names to assert the
		// validator panics; the convention governs production series.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %v", path, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(name, "wedge_") {
				// Not one of ours — the convention only governs wedge_
				// series.
				return true
			}
			// Registration sites are either direct obs calls (kind known
			// from the method name) or per-file helper closures wrapping
			// one (kind unknown statically — runtime validateName still
			// enforces it; here the name must carry one of the documented
			// suffixes, which every counter and histogram does).
			k, direct := kind(0), false
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				k, direct = kinds[sel.Sel.Name]
			}
			checked++
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Errorf("%s: metric %q violates naming convention: %v",
							fset.Position(lit.Pos()), name, rec)
					}
				}()
				if direct {
					validateName(k, name)
					return
				}
				validateName(kindGauge, name) // prefix + charset
				switch {
				case strings.HasSuffix(name, "_total"),
					strings.HasSuffix(name, "_seconds"),
					strings.HasSuffix(name, "_bytes"),
					strings.HasSuffix(name, "_entries"):
				default:
					panic("name must end in _total, _seconds, _bytes or _entries")
				}
			}()
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The threshold guards the scanner itself: if a refactor breaks the
	// AST match, the count collapsing is the tell.
	if checked < 20 {
		t.Fatalf("only %d wedge_* registration literals found — scanner broken?", checked)
	}
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}
