// Package obs is WedgeChain's dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms with a lock-free hot path,
// labeled metric families, and per-process or per-world registries with a
// Prometheus-text-format encoder (encode.go) and an opt-in HTTP exposition
// server (http.go, /metrics + /healthz + /debug/pprof).
//
// Design rules:
//
//   - Zero dependencies, zero allocation on the observation hot path.
//     Counter.Add and Histogram.Observe are a handful of atomic ops.
//   - Every handle is nil-safe: methods on a nil *Counter, *Gauge or
//     *Histogram are no-ops, so a layer can leave its expensive metrics
//     (timing histograms) nil when no registry was configured and pay one
//     predictable branch instead of a time.Now call.
//   - Metric names are validated at registration against the wedge_*
//     convention (see validateName); a bad name is a programming error
//     and panics immediately rather than producing an unscrapable series.
//
// The headline series is wedge_trust_lag_seconds: the time each
// Phase-I-acked write spent uncertified — the lazy-trust SLO.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is NOT
// usable; obtain handles from a Registry. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (queue depths, frontier
// positions, config knobs). Safe for concurrent use; no-op when nil.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by v (CAS loop; v may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative-style buckets
// (upper bounds, strictly increasing; an implicit +Inf bucket catches
// the tail). Observe is lock-free and allocation-free: a binary search
// over the bounds plus three atomic ops. No-op when nil — layers leave
// timing histograms nil when metrics are disabled.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; counts has len(bounds)+1
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d (%g <= %g)",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// SearchFloat64s returns the first i with bounds[i] >= v — exactly
	// the le-bucket index; v greater than every bound lands in the +Inf
	// bucket at len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns (bucket counts incl. +Inf, total, sum) read once.
// The per-bucket loads are not atomic as a group; scrapes tolerate the
// usual Prometheus-style slight skew between buckets and count.
func (h *Histogram) snapshot() ([]uint64, uint64, float64) {
	cs := make([]uint64, len(h.counts))
	for i := range h.counts {
		cs[i] = h.counts[i].Load()
	}
	return cs, h.count.Load(), h.Sum()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the owning bucket, Prometheus histogram_quantile
// style. Returns 0 with no observations; the highest finite bound for
// samples in the +Inf bucket. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cs, total, _ := h.snapshot()
	return bucketQuantile(h.bounds, cs, total, q)
}

// bucketQuantile interpolates a quantile from cumulative-style bucket
// counts (cs[i] = observations <= bounds[i]; cs[len(bounds)] = +Inf).
func bucketQuantile(bounds []float64, cs []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range cs {
		cum += c
		if float64(cum) >= rank {
			if i == len(bounds) {
				// Tail bucket: no finite upper bound to interpolate
				// toward; report the largest finite bound.
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return bounds[len(bounds)-1]
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ExpBuckets returns n exponential bucket upper bounds starting at
// start, each factor times the previous — the standard latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bucket upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// LatencyBuckets is the default seconds ladder for WedgeChain latency
// histograms: 50 µs to ~400 s in powers of two. Wide enough for both
// the sim's virtual clock and wall-clock TCP deployments.
var LatencyBuckets = ExpBuckets(50e-6, 2, 24)

// SizeBuckets is the default ladder for byte/entry-count histograms:
// 1 to ~1 M in powers of four.
var SizeBuckets = ExpBuckets(1, 4, 11)
