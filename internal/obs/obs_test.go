package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wedge_widgets_total", "widgets")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name returns the same handle.
	if c2 := r.Counter("wedge_widgets_total", "widgets"); c2 != c {
		t.Fatalf("re-registration returned a different handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("wedge_queue_depth", "depth")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %g, want 6.5", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound counts in that bound's bucket, one ulp above spills
// to the next, and anything beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wedge_test_seconds", "t", []float64{1, 2, 4})
	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // bucket le=1 (boundary is inclusive)
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2
	h.Observe(4)   // bucket le=4
	h.Observe(4.1) // +Inf
	h.Observe(100) // +Inf
	cs, count, sum := h.snapshot()
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if cs[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, cs[i], w, cs)
		}
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if wantSum := 0.5 + 1 + 1.5 + 2 + 4 + 4.1 + 100; math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wedge_q_seconds", "t", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in (1,2]
	}
	p50 := h.Quantile(0.5)
	if p50 <= 1 || p50 > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", p50)
	}
	// Tail samples report the largest finite bound.
	h2 := r.Histogram("wedge_q2_seconds", "t", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow p99 = %g, want 2 (largest finite bound)", got)
	}
}

// TestHistogramConcurrentObserve exercises the lock-free hot path under
// -race and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wedge_conc_seconds", "t", ExpBuckets(1e-6, 2, 20))
	c := r.Counter("wedge_conc_total", "t")
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*per)
	}
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	cs, _, _ := h.snapshot()
	var total uint64
	for _, v := range cs {
		total += v
	}
	if total != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", total, goroutines*per)
	}
}

// TestWritePromGolden pins the exact exposition bytes for a small
// registry — the contract scrapers parse.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("wedge_acks_total", "edge acks").Add(3)
	v := r.CounterVec("wedge_disputes_total", "disputes by verdict", "verdict")
	v.With("guilty").Add(2)
	v.With("not_guilty") // zero-valued series still encodes
	r.Gauge("wedge_frontier", "certified frontier").Set(7)
	h := r.Histogram("wedge_lag_seconds", "trust lag", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(9)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP wedge_acks_total edge acks
# TYPE wedge_acks_total counter
wedge_acks_total 3
# HELP wedge_disputes_total disputes by verdict
# TYPE wedge_disputes_total counter
wedge_disputes_total{verdict="guilty"} 2
wedge_disputes_total{verdict="not_guilty"} 0
# HELP wedge_frontier certified frontier
# TYPE wedge_frontier gauge
wedge_frontier 7
# HELP wedge_lag_seconds trust lag
# TYPE wedge_lag_seconds histogram
wedge_lag_seconds_bucket{le="0.5"} 1
wedge_lag_seconds_bucket{le="2"} 2
wedge_lag_seconds_bucket{le="+Inf"} 3
wedge_lag_seconds_sum 10.25
wedge_lag_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("encoding mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestSamplesDeterministic: two snapshots of the same registry are
// byte-identical, and ordering does not depend on registration order.
func TestSamplesDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n, "c")
		}
		r.HistogramVec("wedge_lag_seconds", "h", []float64{1, 2}, "node").
			With("edge-1").Observe(1.5)
		return r
	}
	a := build([]string{"wedge_a_total", "wedge_b_total"})
	b := build([]string{"wedge_b_total", "wedge_a_total"})
	fa, fb := fmt.Sprint(a.Samples()), fmt.Sprint(b.Samples())
	if fa != fb {
		t.Fatalf("snapshot depends on registration order:\n%s\n%s", fa, fb)
	}
	if fa2 := fmt.Sprint(a.Samples()); fa2 != fa {
		t.Fatalf("snapshot not stable across calls:\n%s\n%s", fa, fa2)
	}
}

func TestRegistryQuantileMergesChildren(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("wedge_lag_seconds", "h", []float64{1, 2, 4}, "node")
	for i := 0; i < 99; i++ {
		v.With("edge-1").Observe(0.5)
	}
	v.With("edge-2").Observe(3)
	p99 := r.Quantile("wedge_lag_seconds", 0.999)
	if p99 <= 2 || p99 > 4 {
		t.Fatalf("merged p99.9 = %g, want within (2,4]", p99)
	}
	if got := r.Quantile("wedge_nope_seconds", 0.5); got != 0 {
		t.Fatalf("unknown family quantile = %g, want 0", got)
	}
}

func TestCounterValueSumsChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("wedge_drops_total", "d", "node")
	v.With("a").Add(2)
	v.With("b").Add(3)
	if got := r.CounterValue("wedge_drops_total"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("wedge_absent_total"); got != 0 {
		t.Fatalf("absent CounterValue = %d, want 0", got)
	}
}

// TestNilSafety: a nil registry and nil handles must be silently inert
// — that is the disabled-metrics mode every layer relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("wedge_x_total", "x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter retained a value")
	}
	g := r.Gauge("wedge_g", "g")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("wedge_h_seconds", "h", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram retained samples")
	}
	cv := r.CounterVec("wedge_cv_total", "cv", "l")
	cv.With("a").Inc()
	hv := r.HistogramVec("wedge_hv_seconds", "hv", nil, "l")
	hv.With("a").Observe(1)
	if err := r.WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Samples() != nil || r.Quantile("wedge_h_seconds", 0.5) != 0 {
		t.Fatal("nil registry produced samples")
	}
}

func TestNameValidation(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		fn   func()
		want string
	}{
		{func() { r.Counter("acks_total", "x") }, "prefixed wedge_"},
		{func() { r.Counter("wedge_acks", "x") }, "_total"},
		{func() { r.Histogram("wedge_lag", "x", nil) }, "unit"},
		{func() { r.Counter("wedge_Acks_total", "x") }, "invalid character"},
		{func() { r.Counter("wedge_ok_total", "x"); r.Gauge("wedge_ok_total", "x") }, "re-registered"},
		{func() {
			r.CounterVec("wedge_lab_total", "x", "a")
			r.CounterVec("wedge_lab_total", "x", "b")
		}, "labels"},
		{func() { r.CounterVec("wedge_arity_total", "x", "a").With("v1", "v2") }, "label values"},
	}
	for i, tc := range cases {
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatalf("case %d: expected panic", i)
				}
				if !strings.Contains(fmt.Sprint(rec), tc.want) {
					t.Fatalf("case %d: panic %q does not mention %q", i, rec, tc.want)
				}
			}()
			tc.fn()
		}()
	}
}

// TestHTTPHandler covers /metrics, /healthz and the pprof index via a
// real listener (the full end-to-end scrape against a live wedge-edge
// lives in internal/integration).
func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("wedge_acks_total", "acks").Add(9)
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "wedge_acks_total 9") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// BenchmarkHistogramObserve guards the zero-allocation hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("wedge_bench_seconds", "b", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(1e-3) }); n != 0 {
		b.Fatalf("Observe allocates %v times per call", n)
	}
}

// BenchmarkCounterInc guards the counter hot path.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("wedge_bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
