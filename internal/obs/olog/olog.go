// Package olog is a tiny leveled key=value logger for WedgeChain's
// runtime log lines (transport drop warnings, failover and catch-up
// events). It exists so RUNBOOK log walkthroughs have one stable,
// grep-friendly format — level=warn msg="..." k=v ... — without
// pulling a logging dependency, and so tests stay quiet by default: a
// nil *Logger is valid and silent, which is what every library-level
// default uses.
package olog

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// The levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Logger writes leveled key=value lines. Safe for concurrent use. A
// nil *Logger is valid: every method no-ops, so library code logs
// unconditionally through whatever handle it was configured with and
// tests (which configure none) stay quiet.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	stamp bool
}

// New returns a logger writing lines at or above lv to w. Binaries
// pass os.Stderr; tests that want output pass a buffer.
func New(w io.Writer, lv Level) *Logger {
	l := &Logger{w: w, stamp: true}
	l.level.Store(int32(lv))
	return l
}

// NewUnstamped is New without the time= field — deterministic output
// for golden tests.
func NewUnstamped(w io.Writer, lv Level) *Logger {
	l := New(w, lv)
	l.stamp = false
	return l
}

// SetLevel changes the minimum emitted level at runtime.
func (l *Logger) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(lv))
}

// Enabled reports whether lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.level.Load()
}

// Debug logs at debug level. kv alternates key, value, key, value —
// the slog calling convention, so call sites migrate unchanged.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	if l.stamp {
		b.WriteString("time=")
		b.WriteString(time.Now().UTC().Format(time.RFC3339Nano))
		b.WriteByte(' ')
	}
	b.WriteString("level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quote(fmt.Sprint(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !BADKEY=")
		b.WriteString(quote(fmt.Sprint(kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String()) //nolint:errcheck // best-effort log line
}

// quote wraps values containing spaces, quotes or '=' in double
// quotes; plain tokens pass through bare for grep-ability.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
