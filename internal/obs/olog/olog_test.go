package olog

import (
	"strings"
	"testing"
)

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	// Must not panic, must not emit — libraries log unconditionally
	// through a possibly-nil handle.
	l.Debug("a")
	l.Info("b", "k", 1)
	l.Warn("c")
	l.Error("d")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestFormatAndLevels(t *testing.T) {
	var b strings.Builder
	l := NewUnstamped(&b, LevelInfo)
	l.Debug("hidden", "k", "v")
	l.Info("plain")
	l.Warn("transport: lane full", "peer", "edge-1", "dropped", 3)
	l.Error("failover", "chain", "edge 1") // value with a space quotes
	got := b.String()
	want := `level=info msg=plain
level=warn msg="transport: lane full" peer=edge-1 dropped=3
level=error msg=failover chain="edge 1"
`
	if got != want {
		t.Fatalf("log output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSetLevel(t *testing.T) {
	var b strings.Builder
	l := NewUnstamped(&b, LevelError)
	l.Warn("quiet")
	l.SetLevel(LevelDebug)
	l.Debug("loud")
	if got := b.String(); got != "level=debug msg=loud\n" {
		t.Fatalf("got %q", got)
	}
}

func TestOddKeyValues(t *testing.T) {
	var b strings.Builder
	l := NewUnstamped(&b, LevelInfo)
	l.Info("m", "k1", 1, "dangling")
	if got := b.String(); got != "level=info msg=m k1=1 !BADKEY=dangling\n" {
		t.Fatalf("got %q", got)
	}
}
