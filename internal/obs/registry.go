package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// kind distinguishes the three family types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema and one child
// per distinct label-value tuple.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]*child // key: label values joined with \xff
}

// child is one (family, label values) series.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families. A process normally uses Default();
// sim worlds and benches create private registries so concurrent
// experiments don't pollute each other. All methods are safe for
// concurrent use and nil-safe: every getter on a nil *Registry returns
// a nil handle, whose methods no-op — a nil registry is a fully
// disabled metrics pipeline costing one branch per observation.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the binaries.
func Default() *Registry { return defaultRegistry }

// Counter returns the (unlabeled) counter name, creating it on first
// use. Panics if name violates the wedge_* convention or was already
// registered with a different kind or label schema.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(kindCounter, name, help, nil, nil).get().c
}

// Gauge returns the (unlabeled) gauge name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(kindGauge, name, help, nil, nil).get().g
}

// Histogram returns the (unlabeled) histogram name, creating it on
// first use. Buckets are upper bounds, strictly increasing; they are
// fixed on first registration and must match on later calls.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(kindHistogram, name, help, nil, buckets).get().h
}

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.family(kindCounter, name, help, labels, nil)}
}

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.family(kindGauge, name, help, labels, nil)}
}

// HistogramVec returns the labeled histogram family name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r.family(kindHistogram, name, help, labels, buckets)}
}

// CounterVec hands out per-label-tuple counter children. With caches
// children, so layers resolve their handles once at init and the hot
// path touches only the returned *Counter.
type CounterVec struct{ f *family }

// With returns the child for the given label values (one per label
// name, in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).c
}

// GaugeVec hands out per-label-tuple gauge children.
type GaugeVec struct{ f *family }

// With returns the child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).g
}

// HistogramVec hands out per-label-tuple histogram children.
type HistogramVec struct{ f *family }

// With returns the child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).h
}

// family returns the named family, creating it on first registration
// and validating name, kind, label schema and buckets against any
// existing registration.
func (r *Registry) family(k kind, name, help string, labels []string, buckets []float64) *family {
	validateName(k, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, k, f.kind))
		}
		if strings.Join(f.labelNames, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: %s re-registered with labels %v (was %v)", name, labels, f.labelNames))
		}
		if k == kindHistogram && !equalBounds(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: %s re-registered with different buckets", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labelNames: append([]string(nil), labels...),
		children:   make(map[string]*child),
	}
	if k == kindHistogram {
		if len(buckets) == 0 {
			buckets = LatencyBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	r.families[name] = f
	return f
}

func equalBounds(a, b []float64) bool {
	if len(b) == 0 {
		return true // later call defers to the registered buckets
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the single unlabeled child.
func (f *family) get() *child { return f.child(nil) }

// child returns (creating if needed) the series for the label values.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok = f.children[key]; ok {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = newHistogram(f.buckets)
	}
	f.children[key] = ch
	return ch
}

// sortedFamilies returns families in name order (deterministic
// encoding and snapshots).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fs := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fs = append(fs, f)
	}
	r.mu.RUnlock()
	sort.Slice(fs, func(i, j int) bool { return fs[i].name < fs[j].name })
	return fs
}

// sortedChildren returns a family's children in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	cs := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		cs = append(cs, c)
	}
	f.mu.RUnlock()
	sort.Slice(cs, func(i, j int) bool {
		return strings.Join(cs[i].values, "\xff") < strings.Join(cs[j].values, "\xff")
	})
	return cs
}

// validateName enforces the documented wedge_* convention (see
// ARCHITECTURE.md "Observability"): names are lowercase
// [a-z0-9_], prefixed wedge_; counters end in _total; histograms end
// in a base unit (_seconds, _bytes, _entries). Violations are
// programming errors and panic at registration.
func validateName(k kind, name string) {
	if !strings.HasPrefix(name, "wedge_") {
		panic(fmt.Sprintf("obs: metric %q must be prefixed wedge_", name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		panic(fmt.Sprintf("obs: metric %q has invalid character %q (want [a-z0-9_])", name, c))
	}
	switch k {
	case kindCounter:
		if !strings.HasSuffix(name, "_total") {
			panic(fmt.Sprintf("obs: counter %q must end in _total", name))
		}
	case kindHistogram:
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") &&
			!strings.HasSuffix(name, "_entries") {
			panic(fmt.Sprintf("obs: histogram %q must end in a unit (_seconds, _bytes or _entries)", name))
		}
	}
}
