package scan

import (
	"bytes"

	"wedgechain/internal/wire"
)

// leafCacheMaxPages bounds the cached pages per level; beyond it the
// level's map is reset rather than evicted piecemeal (scans over indexes
// this wide re-warm quickly, and the bound is about memory, not hit rate).
const leafCacheMaxPages = 4096

// LeafCache memoizes proven page leaves per level, keyed by (level root,
// page seq), so repeated scans over a stable index skip re-hashing pages
// that have not changed. A cache hit requires the shipped page to be
// byte-equal to the page previously proven against the same root — the
// equality check is what keeps cached verification sound: a page tampered
// since it was proven compares unequal, misses, and is re-hashed into a
// leaf the Merkle fold rejects, exactly as it would be without a cache.
// A level's entries are invalidated wholesale whenever its root changes
// (every merge that touches the level), so stale proofs can never be
// served against a newer root.
//
// Not safe for concurrent use; each client core owns one.
type LeafCache struct {
	levels map[int]*leafCacheLevel
}

type leafCacheLevel struct {
	root  []byte
	pages map[uint64]leafCacheEntry // by page Seq
}

type leafCacheEntry struct {
	page wire.Page // verified copy, compared against shipped pages
	leaf []byte
}

// NewLeafCache returns an empty cache.
func NewLeafCache() *LeafCache {
	return &LeafCache{levels: make(map[int]*leafCacheLevel)}
}

// level returns lvl's entry map valid for root, resetting it when the
// root changed since the entries were proven. Only insert — which runs
// after a successful Merkle fold against root — calls it: re-keying on
// lookup would let a garbage response carrying a bogus root wipe a
// legitimately warm level before verification ever judged it.
func (c *LeafCache) level(lvl int, root []byte) *leafCacheLevel {
	lc := c.levels[lvl]
	if lc == nil {
		lc = &leafCacheLevel{pages: make(map[uint64]leafCacheEntry)}
		c.levels[lvl] = lc
	}
	if !bytes.Equal(lc.root, root) {
		lc.root = append(lc.root[:0], root...)
		lc.pages = make(map[uint64]leafCacheEntry)
	}
	return lc
}

// lookup returns the memoized leaf for a shipped page, provided a
// byte-equal page was previously proven against the same level root. A
// root mismatch is a plain miss — it never mutates the cache.
func (c *LeafCache) lookup(lvl int, root []byte, p *wire.Page) ([]byte, bool) {
	lc := c.levels[lvl]
	if lc == nil || !bytes.Equal(lc.root, root) {
		return nil, false
	}
	ent, ok := lc.pages[p.Seq]
	if !ok || !pagesEqual(&ent.page, p) {
		return nil, false
	}
	return ent.leaf, true
}

// insert memoizes a page's leaf after the page was proven against root.
// The page is deep-copied: cached content must not alias buffers the
// transport or a later fault path may mutate.
func (c *LeafCache) insert(lvl int, root []byte, p *wire.Page, leaf []byte) {
	lc := c.level(lvl, root)
	if len(lc.pages) >= leafCacheMaxPages {
		lc.pages = make(map[uint64]leafCacheEntry)
	}
	lc.pages[p.Seq] = leafCacheEntry{page: copyPage(p), leaf: append([]byte(nil), leaf...)}
}

func copyPage(p *wire.Page) wire.Page {
	cp := *p
	cp.Lo = append([]byte(nil), p.Lo...)
	cp.Hi = append([]byte(nil), p.Hi...)
	cp.KVs = make([]wire.KV, len(p.KVs))
	for i := range p.KVs {
		cp.KVs[i] = wire.KV{
			Key:   append([]byte(nil), p.KVs[i].Key...),
			Value: append([]byte(nil), p.KVs[i].Value...),
			Ver:   p.KVs[i].Ver,
		}
	}
	return cp
}

// pagesEqual compares two pages field by field, preserving the nil/empty
// bound distinction (nil means ±infinity).
func pagesEqual(a, b *wire.Page) bool {
	if a.Level != b.Level || a.Seq != b.Seq || a.Ts != b.Ts || len(a.KVs) != len(b.KVs) {
		return false
	}
	if (a.Lo == nil) != (b.Lo == nil) || !bytes.Equal(a.Lo, b.Lo) {
		return false
	}
	if (a.Hi == nil) != (b.Hi == nil) || !bytes.Equal(a.Hi, b.Hi) {
		return false
	}
	for i := range a.KVs {
		if a.KVs[i].Ver != b.KVs[i].Ver ||
			!bytes.Equal(a.KVs[i].Key, b.KVs[i].Key) ||
			!bytes.Equal(a.KVs[i].Value, b.KVs[i].Value) {
			return false
		}
	}
	return true
}
