package scan

import (
	"testing"

	"wedgechain/internal/wire"
)

// cachedParams returns verification params sharing one leaf cache.
func (f *fixture) cachedParams(c *LeafCache) Params {
	p := f.params()
	p.Cache = c
	return p
}

// TestLeafCacheRepeatedScansAgree: repeated scans over a stable index
// verify identically with a warm cache, and the cache actually gets hits
// (pages proven once are served from memo).
func TestLeafCacheRepeatedScansAgree(t *testing.T) {
	f := newFixture(t)
	cache := NewLeafCache()
	var cold Result
	for i := 0; i < 3; i++ {
		resp := f.assemble(key(5), key(30))
		res, err := Verify(f.cachedParams(cache), resp)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if i == 0 {
			cold = res
			continue
		}
		if !sameKVs(res.KVs, cold.KVs) {
			t.Fatalf("round %d diverged from cold verification", i)
		}
	}
	// A different range over the same root reuses overlapping pages.
	if _, err := Verify(f.cachedParams(cache), f.assemble(key(10), key(40))); err != nil {
		t.Fatalf("overlapping warm scan: %v", err)
	}
}

// TestLeafCachePoisoningParity is the cache-poisoning parity test: every
// adversarial mutation that cold verification rejects must be rejected
// identically by a verifier whose cache was warmed by an honest scan of
// the same range. A tampered page compares unequal to the proven copy,
// misses the cache, is re-hashed, and fails the Merkle fold — the cache
// can only ever skip work, never a check.
func TestLeafCachePoisoningParity(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(resp *wire.ScanResponse)
	}{
		{"omit record from proven page", func(resp *wire.ScanResponse) {
			p := &resp.Proof.Levels[0].Pages[1]
			p.KVs = append([]wire.KV(nil), p.KVs[:1]...)
		}},
		{"tamper value in proven page", func(resp *wire.ScanResponse) {
			p := &resp.Proof.Levels[0].Pages[0]
			p.KVs = append([]wire.KV(nil), p.KVs...)
			p.KVs[0].Value = []byte("evil")
		}},
		{"inject record into proven page", func(resp *wire.ScanResponse) {
			p := &resp.Proof.Levels[0].Pages[1]
			p.KVs = append(append([]wire.KV(nil), p.KVs...), wire.KV{Key: []byte("kxxxx"), Value: []byte("x"), Ver: 999})
		}},
		{"shift proven page bounds", func(resp *wire.ScanResponse) {
			p := &resp.Proof.Levels[0].Pages[1]
			p.Lo = append([]byte(nil), p.Lo...)
			p.Lo[len(p.Lo)-1]++
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			f := newFixture(t)
			cache := NewLeafCache()
			// Warm the cache with the honest proof.
			if _, err := Verify(f.cachedParams(cache), f.assemble(key(5), key(30))); err != nil {
				t.Fatalf("warm-up failed: %v", err)
			}
			resp := f.assemble(key(5), key(30))
			m.mutate(resp)
			_, warmErr := Verify(f.cachedParams(cache), resp)
			_, coldErr := Verify(f.params(), resp)
			if coldErr == nil {
				t.Fatal("cold verification accepted the mutation; test is vacuous")
			}
			if warmErr == nil {
				t.Fatal("warm cache accepted a response cold verification rejects")
			}
		})
	}
}

// TestLeafCacheNotWarmedByFailure: a response that fails verification
// must not leave its pages in the cache (else a later honest-looking
// response could skip re-proving them against a root they never matched).
func TestLeafCacheNotWarmedByFailure(t *testing.T) {
	f := newFixture(t)
	cache := NewLeafCache()
	bad := f.assemble(key(5), key(30))
	// Corrupt the fold: Merkle never verifies, so nothing was proven.
	bad.Proof.Levels[0].First++
	if _, err := Verify(f.cachedParams(cache), bad); err == nil {
		t.Fatal("corrupt proof accepted")
	}
	for lvl, lc := range cache.levels {
		if len(lc.pages) != 0 {
			t.Fatalf("level %d cache warmed by a failed verification: %d pages", lvl, len(lc.pages))
		}
	}
}

// TestLeafCacheInvalidatesOnRootChange: entries proven against one level
// root must not satisfy lookups against another.
func TestLeafCacheInvalidatesOnRootChange(t *testing.T) {
	f := newFixture(t)
	cache := NewLeafCache()
	if _, err := Verify(f.cachedParams(cache), f.assemble(key(5), key(30))); err != nil {
		t.Fatal(err)
	}
	page := f.idx.Pages(1)[1]
	if _, ok := cache.lookup(1, f.idx.Roots()[0], &page); !ok {
		t.Fatal("proven page not cached under its root")
	}
	otherRoot := append([]byte(nil), f.idx.Roots()[0]...)
	otherRoot[0] ^= 1
	if _, ok := cache.lookup(1, otherRoot, &page); ok {
		t.Fatal("cache served a leaf against a different root")
	}
}
