// Package scan implements verified range scans over the LSMerkle index:
// multi-key reads whose responses prove not only that every returned
// record is authentic but that no certified record in the requested range
// was omitted.
//
// The completeness argument stacks three facts. Every page leaf commits
// the page's [Lo, Hi) bounds (mlsm.PageLeaf), a level's pages partition
// the keyspace contiguously (mlsm.CheckLevel, enforced by the trusted
// cloud at merge time before it signs the level roots), and a Merkle
// range proof (merkle.VerifyRange) pins a presented page run to
// consecutive leaf positions. A verified run whose first page contains
// the scan's start and whose last page covers its end therefore contains
// every certified record of the range at that level; adding every
// uncompacted L0 block (whose certificates — or later-arriving proofs —
// pin their content) covers the unmerged suffix. The client derives the
// result from this evidence rather than trusting a result list, so the
// edge's only possible lie is a defective proof, and a defective signed
// proof is self-incriminating: the cloud re-runs this same Verify during
// adjudication.
//
// Both the WedgeChain edge (assembly) and the client and cloud
// (verification) use this one implementation, mirroring how package mlsm
// shares the merge computation.
package scan

import (
	"bytes"
	"errors"
	"fmt"

	"wedgechain/internal/merkle"
	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// ErrStale reports a scan served from a snapshot whose global root
// timestamp fell outside the verifier's freshness window. It is a
// retryable condition, not a provable lie — wall clocks are involved —
// so it is distinguished from verification failures.
var ErrStale = errors.New("scan: snapshot outside freshness window")

// Assemble builds the unsigned scan response for [start, end) against the
// given L0 snapshot and merged index — the proof-construction half of the
// protocol, run by the edge. For each non-empty level it includes every
// page overlapping the range (the boundary pages included, since their
// committed bounds prove completeness at both ends) under one Merkle
// range proof. With prune set, window blocks whose digest-committed key
// interval is disjoint from the range ship as pruned references instead
// of full blocks. The returned digests are the cut-time digests (from
// l0.Digests) of the blocks kept in full, in L0Blocks order; nil when
// l0.Digests was nil.
func Assemble(start, end []byte, reqID uint64, l0 mlsm.L0Source, idx *mlsm.Index, prune bool) (*wire.ScanResponse, [][]byte) {
	resp := &wire.ScanResponse{ReqID: reqID, Start: start, End: end}
	excludes := func(s *wire.BlockSummary) bool { return s.ExcludesRange(start, end) }
	var fullDigests [][]byte
	for bi := range l0.Blocks {
		blk := &l0.Blocks[bi]
		var cert wire.BlockProof
		if bi < len(l0.Certs) {
			cert = l0.Certs[bi]
		}
		full := mlsm.AppendL0(&resp.Proof.L0Blocks, &resp.Proof.L0Certs,
			&resp.Proof.L0Pruned, &resp.Proof.L0PrunedCerts, blk, cert, prune, excludes)
		if full && l0.Digests != nil {
			fullDigests = append(fullDigests, l0.Digests[bi])
		}
	}
	for lvl := 1; lvl <= idx.Levels(); lvl++ {
		a, b := idx.PageRange(lvl, start, end)
		if a < 0 {
			continue // empty level: its root is EmptyRoot, checked by verifiers
		}
		lp, err := idx.LevelRangeProof(lvl, a, b)
		if err != nil {
			continue
		}
		resp.Proof.Levels = append(resp.Proof.Levels, lp)
	}
	if g := idx.Global(); len(g.CloudSig) > 0 {
		resp.Proof.Roots = idx.Roots()
		resp.Proof.Global = g
	}
	return resp, fullDigests
}

// Params configures verification: whose evidence is being judged, against
// which registry, and under what freshness bound. A zero FreshnessWindow
// disables the staleness check — the cloud adjudicating a dispute sets it
// to zero, since staleness is time-relative and not provable after the
// fact, while structural defects are.
type Params struct {
	Reg             *wcrypto.Registry
	Edge            wire.NodeID
	Cloud           wire.NodeID
	Now             int64
	FreshnessWindow int64
	// Cache, when non-nil, memoizes proven page leaves so repeated scans
	// over a stable index skip re-hashing unchanged pages. Clients own
	// one per session; the adjudicating cloud verifies cold.
	Cache *LeafCache
}

// Result is the outcome of a successful verification.
type Result struct {
	// KVs is the derived scan result: every certified (or Phase I
	// promised) record in [start, end), newest version per key, ordered
	// by key. No limit is applied — truncation is the caller's choice.
	KVs []wire.KV
	// Uncertified maps each L0 block id lacking a certificate to the
	// locally recomputed digest the later-arriving proof must match.
	Uncertified map[uint64][]byte
	// Epoch is the index epoch of the snapshot (0 when no merged state
	// existed yet) and L0End one past the highest served L0 block id —
	// the session-consistency watermark pair.
	Epoch uint64
	L0End uint64
}

// Verify re-derives every claim in a scan response: L0 block chain
// integrity and certificates, the signed global root, per-level Merkle
// range proofs, page-run contiguity, boundary coverage at both ends, and
// finally the result itself. It returns ErrStale for an out-of-window
// snapshot and a descriptive error for every structural defect.
func Verify(p Params, m *wire.ScanResponse) (Result, error) {
	res := Result{Uncertified: make(map[uint64][]byte)}
	start, end := m.Start, m.End
	if start != nil && end != nil && bytes.Compare(start, end) >= 0 {
		return res, fmt.Errorf("empty key range")
	}
	pr := &m.Proof
	inRange := func(k []byte) bool {
		if start != nil && bytes.Compare(k, start) < 0 {
			return false
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false
		}
		return true
	}

	// The L0 window: full blocks and pruned exclusion references, one
	// consecutive run. Pruned references must rebind to a certified (or
	// pinned) digest and their summaries must exclude the whole range —
	// the shared window checks the cloud's Judge re-runs verbatim.
	var cand []wire.KV
	win, err := mlsm.VerifyL0Window(mlsm.L0WindowParams{
		Reg:   p.Reg,
		Edge:  p.Edge,
		Cloud: p.Cloud,
		Excludes: func(s *wire.BlockSummary) bool {
			return s.ExcludesRange(start, end)
		},
		OnBlock: func(blk *wire.Block) {
			for j := range blk.Entries {
				e := &blk.Entries[j]
				if len(e.Key) == 0 || !inRange(e.Key) {
					continue
				}
				cand = append(cand, wire.KV{Key: e.Key, Value: e.Value, Ver: blk.StartPos + uint64(j) + 1})
			}
		},
	}, pr.L0Blocks, pr.L0Certs, pr.L0Pruned, pr.L0PrunedCerts)
	if err != nil {
		return res, err
	}
	res.Uncertified = win.Uncertified
	res.L0End = win.L0End

	if len(pr.Roots) == 0 && len(pr.Levels) == 0 && len(pr.Global.CloudSig) == 0 {
		// No merged state exists yet, so nothing has ever been compacted:
		// the L0 window must be the log itself, from block 0. This also
		// defuses a rollback attack — an edge with merged state that
		// presents the no-merged-state shape must replay its full
		// certified history (consecutiveness plus per-block certificates
		// pin it), which contains every compacted record anyway.
		if win.Slots > 0 && win.FirstID != 0 {
			return res, fmt.Errorf("no signed index state, yet L0 window starts at block %d", win.FirstID)
		}
		res.KVs = mlsm.MergeNewest(cand)
		return res, nil
	}
	if len(pr.Global.CloudSig) == 0 {
		return res, fmt.Errorf("level evidence without signed global root")
	}
	if err := wcrypto.VerifyMsg(p.Reg, p.Cloud, &pr.Global, pr.Global.CloudSig); err != nil {
		return res, fmt.Errorf("global root: %v", err)
	}
	if pr.Global.Edge != p.Edge {
		return res, fmt.Errorf("global root for wrong edge")
	}
	if !bytes.Equal(mlsm.GlobalRoot(pr.Roots), pr.Global.Root) {
		return res, fmt.Errorf("level roots do not fold to global root")
	}
	// The signed compaction frontier pins where the served L0 window must
	// start: an edge cannot drop its oldest certified-but-uncompacted
	// blocks without the mismatch showing here. (An entirely empty window
	// can still hide the newest blocks — that is the stale-snapshot
	// attack, bounded by the freshness window and session watermarks.)
	if win.Slots > 0 && win.FirstID != pr.Global.L0From {
		return res, fmt.Errorf("L0 window starts at block %d, signed compaction frontier is %d",
			win.FirstID, pr.Global.L0From)
	}
	res.Epoch = pr.Global.Epoch
	if p.FreshnessWindow > 0 && p.Now-pr.Global.Ts > p.FreshnessWindow {
		return res, ErrStale
	}

	proofs := make(map[int]*wire.LevelRangeProof, len(pr.Levels))
	for i := range pr.Levels {
		lp := &pr.Levels[i]
		if proofs[int(lp.Level)] != nil {
			return res, fmt.Errorf("level %d: duplicate proof", lp.Level)
		}
		proofs[int(lp.Level)] = lp
	}
	empty := merkle.EmptyRoot()
	for lvl := 1; lvl <= len(pr.Roots); lvl++ {
		lp := proofs[lvl]
		delete(proofs, lvl)
		if bytes.Equal(pr.Roots[lvl-1], empty) {
			if lp != nil {
				return res, fmt.Errorf("level %d: proof against empty level", lvl)
			}
			continue
		}
		if lp == nil {
			return res, fmt.Errorf("level %d: missing proof", lvl)
		}
		kvs, err := verifyLevelRange(lvl, pr.Roots[lvl-1], lp, start, end, inRange, p.Cache)
		if err != nil {
			return res, err
		}
		cand = append(cand, kvs...)
	}
	if len(proofs) != 0 {
		return res, fmt.Errorf("proof for nonexistent level")
	}
	res.KVs = mlsm.MergeNewest(cand)
	return res, nil
}

// verifyLevelRange checks one level's page-range proof — Merkle fold,
// page-run contiguity, boundary coverage — and collects its in-range
// records. Page-internal invariants (sorted, in-bounds records) need no
// re-check: the leaf hash commits the page bytes, and the trusted cloud
// validated the invariants before signing the level root.
//
// With a cache, a shipped page that is byte-equal to a page previously
// proven against the same level root reuses its memoized leaf instead of
// re-hashing (equality is a memcmp, an order of magnitude cheaper than
// SHA-256 over the page). A page that differs in any way — including the
// tampered pages of omission attacks — misses the cache and is re-hashed,
// so cached and cold verification accept and convict identically.
func verifyLevelRange(lvl int, root []byte, lp *wire.LevelRangeProof, start, end []byte, inRange func([]byte) bool, cache *LeafCache) ([]wire.KV, error) {
	if len(lp.Pages) == 0 {
		return nil, fmt.Errorf("level %d: proof without pages", lvl)
	}
	leaves := make([][]byte, len(lp.Pages))
	fresh := make([]bool, len(lp.Pages))
	for i := range lp.Pages {
		if int(lp.Pages[i].Level) != lvl {
			return nil, fmt.Errorf("level %d: page from level %d", lvl, lp.Pages[i].Level)
		}
		if cache != nil {
			if leaf, ok := cache.lookup(lvl, root, &lp.Pages[i]); ok {
				leaves[i] = leaf
				continue
			}
			fresh[i] = true
		}
		leaves[i] = mlsm.PageLeaf(&lp.Pages[i])
	}
	if err := merkle.VerifyRange(root, leaves, int(lp.First), int(lp.Width), lp.Left, lp.Right); err != nil {
		return nil, fmt.Errorf("level %d: %v", lvl, err)
	}
	if cache != nil {
		// Insert only pages the fold just proved against the root — a
		// response that fails verification must never warm the cache.
		for i := range lp.Pages {
			if fresh[i] {
				cache.insert(lvl, root, &lp.Pages[i], leaves[i])
			}
		}
	}
	for i := 1; i < len(lp.Pages); i++ {
		hi, lo := lp.Pages[i-1].Hi, lp.Pages[i].Lo
		if hi == nil || lo == nil || !bytes.Equal(hi, lo) {
			return nil, fmt.Errorf("level %d: gap between pages %d and %d", lvl, i-1, i)
		}
	}
	first, last := &lp.Pages[0], &lp.Pages[len(lp.Pages)-1]
	if start == nil {
		if first.Lo != nil {
			return nil, fmt.Errorf("level %d: left boundary not covered", lvl)
		}
	} else if !first.Contains(start) {
		return nil, fmt.Errorf("level %d: first page does not contain scan start", lvl)
	}
	if end == nil {
		if last.Hi != nil {
			return nil, fmt.Errorf("level %d: right boundary truncated", lvl)
		}
	} else if last.Hi != nil && bytes.Compare(last.Hi, end) < 0 {
		return nil, fmt.Errorf("level %d: right boundary truncated", lvl)
	}
	var kvs []wire.KV
	for i := range lp.Pages {
		for j := range lp.Pages[i].KVs {
			if kv := &lp.Pages[i].KVs[j]; inRange(kv.Key) {
				kvs = append(kvs, *kv)
			}
		}
	}
	return kvs, nil
}
