package scan

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"wedgechain/internal/mlsm"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

const (
	edgeID  = wire.NodeID("edge-1")
	cloudID = wire.NodeID("cloud")
)

// fixture is a self-contained edge snapshot: a two-level index whose
// level 1 holds 50 merged keys in 5-record pages under a cloud-signed
// global root, plus one certified and one uncertified L0 block.
type fixture struct {
	reg      *wcrypto.Registry
	cloudKey wcrypto.KeyPair
	edgeKey  wcrypto.KeyPair
	idx      *mlsm.Index
	l0       mlsm.L0Source
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		reg:      wcrypto.NewRegistry(),
		cloudKey: wcrypto.DeterministicKey(cloudID),
		edgeKey:  wcrypto.DeterministicKey(edgeID),
	}
	f.reg.Register(cloudID, f.cloudKey.Pub)
	f.reg.Register(edgeID, f.edgeKey.Pub)

	var kvs []wire.KV
	for i := 0; i < 50; i++ {
		kvs = append(kvs, wire.KV{Key: key(i), Value: []byte(fmt.Sprintf("v%d", i)), Ver: uint64(i + 1)})
	}
	pages := mlsm.Merge(kvs, nil, 1, 5, 0, 100)
	f.idx = mlsm.NewIndex([]int{20, 100})
	roots := [][]byte{mlsm.LevelTree(pages).Root(), mlsm.LevelTree(nil).Root()}
	global := wire.SignedRoot{Edge: edgeID, Epoch: 1, Root: mlsm.GlobalRoot(roots), Ts: 100}
	global.CloudSig = wcrypto.SignMsg(f.cloudKey, &global)
	if err := f.idx.InstallLevel(1, pages, roots, global); err != nil {
		t.Fatal(err)
	}

	// L0: block 0 certified (overwrites k0010), block 1 uncertified
	// (adds k9999 and overwrites k0020).
	b0 := wire.Block{Edge: edgeID, ID: 0, StartPos: 1000, Ts: 200, Entries: []wire.Entry{
		{Client: "c1", Seq: 1, Key: key(10), Value: []byte("v10-l0")},
	}}
	b0.Freeze()
	cert := wire.BlockProof{Edge: edgeID, BID: 0, Digest: wcrypto.BlockDigest(&b0)}
	cert.CloudSig = wcrypto.SignMsg(f.cloudKey, &cert)
	b1 := wire.Block{Edge: edgeID, ID: 1, StartPos: 1001, Ts: 300, Entries: []wire.Entry{
		{Client: "c1", Seq: 2, Key: []byte("k9999"), Value: []byte("tail")},
		{Client: "c1", Seq: 3, Key: key(20), Value: []byte("v20-l0")},
	}}
	b1.Freeze()
	f.l0 = mlsm.L0Source{Blocks: []wire.Block{b0, b1}, Certs: []wire.BlockProof{cert, {}}}
	return f
}

func (f *fixture) params() Params {
	return Params{Reg: f.reg, Edge: edgeID, Cloud: cloudID, Now: 150}
}

func (f *fixture) assemble(start, end []byte) *wire.ScanResponse {
	resp, _ := Assemble(start, end, 7, f.l0, f.idx, true)
	return resp
}

// expected computes the reference result by brute force over the fixture's
// ground truth.
func (f *fixture) expected(start, end []byte) []wire.KV {
	var cand []wire.KV
	for lvl := 1; lvl <= f.idx.Levels(); lvl++ {
		for _, p := range f.idx.Pages(lvl) {
			cand = append(cand, p.KVs...)
		}
	}
	for bi := range f.l0.Blocks {
		blk := &f.l0.Blocks[bi]
		for j := range blk.Entries {
			e := &blk.Entries[j]
			cand = append(cand, wire.KV{Key: e.Key, Value: e.Value, Ver: blk.StartPos + uint64(j) + 1})
		}
	}
	merged := mlsm.MergeNewest(cand)
	var out []wire.KV
	for _, kv := range merged {
		if start != nil && bytes.Compare(kv.Key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(kv.Key, end) >= 0 {
			continue
		}
		out = append(out, kv)
	}
	return out
}

func sameKVs(a, b []wire.KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) || a[i].Ver != b[i].Ver {
			return false
		}
	}
	return true
}

func TestScanRoundTrip(t *testing.T) {
	f := newFixture(t)
	cases := []struct{ start, end []byte }{
		{key(7), key(23)},           // interior range spanning page boundaries
		{key(0), key(50)},           // whole merged range
		{nil, nil},                  // full scan, both bounds infinite
		{nil, key(13)},              // open left
		{key(44), nil},              // open right, catches the L0 tail key
		{key(10), key(11)},          // single key, L0-overwritten
		{key(3), append(key(3), 0)}, // single key via tight bound
	}
	for _, c := range cases {
		resp := f.assemble(c.start, c.end)
		res, err := Verify(f.params(), resp)
		if err != nil {
			t.Fatalf("[%q,%q): %v", c.start, c.end, err)
		}
		if want := f.expected(c.start, c.end); !sameKVs(res.KVs, want) {
			t.Fatalf("[%q,%q): got %d kvs, want %d\n got %v\nwant %v",
				c.start, c.end, len(res.KVs), len(want), res.KVs, want)
		}
		if len(res.Uncertified) != 1 {
			t.Fatalf("[%q,%q): want 1 uncertified block, got %v", c.start, c.end, res.Uncertified)
		}
		if res.Epoch != 1 || res.L0End != 2 {
			t.Fatalf("watermarks: epoch=%d l0end=%d", res.Epoch, res.L0End)
		}
	}
}

func TestScanNewestWins(t *testing.T) {
	f := newFixture(t)
	res, err := Verify(f.params(), f.assemble(key(10), key(21)))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]string{}
	for _, kv := range res.KVs {
		byKey[string(kv.Key)] = string(kv.Value)
	}
	if byKey["k0010"] != "v10-l0" {
		t.Fatalf("certified L0 overwrite lost: k0010=%q", byKey["k0010"])
	}
	if byKey["k0020"] != "v20-l0" {
		t.Fatalf("uncertified L0 overwrite lost: k0020=%q", byKey["k0020"])
	}
	if byKey["k0015"] != "v15" {
		t.Fatalf("merged value lost: k0015=%q", byKey["k0015"])
	}
}

func TestScanNoMergedState(t *testing.T) {
	f := newFixture(t)
	empty := mlsm.NewIndex([]int{20, 100})
	resp, _ := Assemble(key(0), key(50), 7, f.l0, empty, true)
	res, err := Verify(f.params(), resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KVs) != 2 { // k0010 and k0020 from L0
		t.Fatalf("L0-only scan: got %v", res.KVs)
	}
}

// TestScanFrontierBinding pins the compaction-frontier rule: the served
// L0 window must start exactly at SignedRoot.L0From — neither dropping
// the oldest uncompacted block nor re-serving already-compacted ones is
// accepted — and with no signed state at all, the window must start at
// block 0 (nothing was ever compacted).
func TestScanFrontierBinding(t *testing.T) {
	f := newFixture(t)

	// Honest frontier advance: a global signed at L0From=1 with a window
	// starting at block 1 verifies; the same window against the fixture's
	// L0From=0 root does not (checked via the adversarial case above).
	var kvs []wire.KV
	for i := 0; i < 10; i++ {
		kvs = append(kvs, wire.KV{Key: key(i), Value: []byte("v"), Ver: uint64(i + 1)})
	}
	pages := mlsm.Merge(kvs, nil, 1, 5, 0, 100)
	idx := mlsm.NewIndex([]int{20, 100})
	roots := [][]byte{mlsm.LevelTree(pages).Root(), mlsm.LevelTree(nil).Root()}
	global := wire.SignedRoot{Edge: edgeID, Epoch: 2, Root: mlsm.GlobalRoot(roots), Ts: 120, L0From: 1}
	global.CloudSig = wcrypto.SignMsg(f.cloudKey, &global)
	if err := idx.InstallLevel(1, pages, roots, global); err != nil {
		t.Fatal(err)
	}
	l0 := mlsm.L0Source{Blocks: f.l0.Blocks[1:], Certs: f.l0.Certs[1:]}
	resp, _ := Assemble(nil, nil, 7, l0, idx, true)
	if _, err := Verify(f.params(), resp); err != nil {
		t.Fatalf("window starting at the signed frontier rejected: %v", err)
	}

	// Re-serving the already-compacted block 0 under the L0From=1 root.
	stale, _ := Assemble(nil, nil, 7, f.l0, idx, true)
	if _, err := Verify(f.params(), stale); err == nil {
		t.Fatal("window starting before the signed frontier accepted")
	}

	// No signed state: the window must start at block 0.
	empty := mlsm.NewIndex([]int{20, 100})
	noState, _ := Assemble(nil, nil, 7, l0, empty, true)
	if _, err := Verify(f.params(), noState); err == nil {
		t.Fatal("no-merged-state window starting past block 0 accepted")
	}
}

func TestScanRejectsEmptyRange(t *testing.T) {
	f := newFixture(t)
	resp := f.assemble(key(5), key(23))
	resp.Start, resp.End = key(9), key(9)
	if _, err := Verify(f.params(), resp); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestScanStale(t *testing.T) {
	f := newFixture(t)
	p := f.params()
	p.FreshnessWindow = 10
	p.Now = 100 + 11 // root Ts is 100
	if _, err := Verify(p, f.assemble(key(0), key(9))); !errors.Is(err, ErrStale) {
		t.Fatalf("want ErrStale, got %v", err)
	}
}

// TestScanAdversarial drives the three lies of the threat model — omission
// mid-range, injection, boundary truncation — plus structural variants.
// Every mutation must fail verification with a descriptive error.
func TestScanAdversarial(t *testing.T) {
	start, end := key(7), key(33)
	cases := []struct {
		name   string
		mutate func(t *testing.T, f *fixture, resp *wire.ScanResponse)
	}{
		{"omit entry mid-range", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			lp := &resp.Proof.Levels[0]
			p := &lp.Pages[1]
			p.KVs = append(append([]wire.KV(nil), p.KVs[:2]...), p.KVs[3:]...)
		}},
		{"inject fake record", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			lp := &resp.Proof.Levels[0]
			p := &lp.Pages[1]
			p.KVs = append(append([]wire.KV(nil), p.KVs...), wire.KV{Key: []byte("k0012x"), Value: []byte("fake"), Ver: 9999})
		}},
		{"tamper value", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			resp.Proof.Levels[0].Pages[0].KVs[0].Value = []byte("evil")
		}},
		{"truncate right boundary page", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			// The edge recomputes an honest narrower proof — Merkle-valid,
			// but the last page's committed Hi now falls short of end.
			lp := &resp.Proof.Levels[0]
			narrow, err := f.idx.LevelRangeProof(1, int(lp.First), int(lp.First)+len(lp.Pages)-1)
			if err != nil {
				t.Fatal(err)
			}
			resp.Proof.Levels[0] = narrow
		}},
		{"truncate left boundary page", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			lp := &resp.Proof.Levels[0]
			narrow, err := f.idx.LevelRangeProof(1, int(lp.First)+1, int(lp.First)+len(lp.Pages))
			if err != nil {
				t.Fatal(err)
			}
			resp.Proof.Levels[0] = narrow
		}},
		{"drop level proof", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			resp.Proof.Levels = nil
		}},
		{"proof against empty level", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			forged := resp.Proof.Levels[0]
			forged.Level = 2
			for i := range forged.Pages {
				forged.Pages[i].Level = 2
			}
			resp.Proof.Levels = append(resp.Proof.Levels, forged)
		}},
		{"shift page positions", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			resp.Proof.Levels[0].First++
		}},
		{"forged global root", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			resp.Proof.Global.Ts += 1 // invalidates the cloud signature
		}},
		{"drop leading certified L0 block", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			// The remaining window is consecutive and fully certified,
			// but no longer starts at the signed compaction frontier.
			resp.Proof.L0Blocks = resp.Proof.L0Blocks[1:]
			resp.Proof.L0Certs = resp.Proof.L0Certs[1:]
		}},
		{"tampered uncertified L0 entry is pinned", func(t *testing.T, f *fixture, resp *wire.ScanResponse) {
			// Not a structural failure: verification passes but must pin
			// the tampered digest so the later proof convicts. Checked
			// separately below.
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := newFixture(t)
			resp := f.assemble(start, end)
			if _, err := Verify(f.params(), resp); err != nil {
				t.Fatalf("honest baseline failed: %v", err)
			}
			c.mutate(t, f, resp)
			if c.name == "tampered uncertified L0 entry is pinned" {
				blk := &resp.Proof.L0Blocks[1]
				blk.Invalidate()
				blk.Entries = append([]wire.Entry(nil), blk.Entries...)
				blk.Entries[1].Value = []byte("forged")
				res, err := Verify(f.params(), resp)
				if err != nil {
					t.Fatalf("uncertified tampering should defer to Phase II: %v", err)
				}
				honest := wcrypto.RecomputedBlockDigest(&f.l0.Blocks[1])
				if bytes.Equal(res.Uncertified[1], honest) {
					t.Fatal("pinned digest does not reflect the tampered content")
				}
				return
			}
			if _, err := Verify(f.params(), resp); err == nil {
				t.Fatal("tampered scan response accepted")
			}
		})
	}
}
