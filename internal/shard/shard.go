// Package shard partitions the WedgeChain keyspace across edge nodes.
//
// WedgeChain keeps the cloud off the write critical path, so aggregate
// throughput scales by adding edge nodes — provided clients spread their
// keys across them. This package supplies the routing layer: a stable
// hash partitioner mapping every key to one of N shards, and a Map that
// binds shard indexes to edge identities. Each edge still owns an
// independent log, LSMerkle index, and lazy-certification pipeline; the
// cloud tracks each shard's chain separately, so a convicted shard never
// disturbs its siblings.
package shard

import (
	"fmt"

	"wedgechain/internal/wire"
)

// Of returns the shard index for key under n shards using 64-bit FNV-1a.
// The function is pure and stable across processes and releases: the
// shard map can be serialized (wire.ShardMap), signed, and re-derived by
// any party without coordination. n must be positive; n == 1 always
// yields shard 0. A nil key is valid and hashes like an empty key.
func Of(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}

// Map binds shard indexes to edge identities: shard i is owned by
// Edges[i]. A Map with a single edge degenerates to the paper's
// one-partition deployment. The zero Map is invalid; build one with New.
type Map struct {
	edges []wire.NodeID
	index map[wire.NodeID]int
}

// New builds a shard map over the given edges, in shard order. Every edge
// must be distinct and non-empty.
func New(edges []wire.NodeID) (*Map, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("shard: map needs at least one edge")
	}
	m := &Map{
		edges: append([]wire.NodeID(nil), edges...),
		index: make(map[wire.NodeID]int, len(edges)),
	}
	for i, e := range edges {
		if e == "" {
			return nil, fmt.Errorf("shard: empty edge id at shard %d", i)
		}
		if _, dup := m.index[e]; dup {
			return nil, fmt.Errorf("shard: duplicate edge %q", e)
		}
		m.index[e] = i
	}
	return m, nil
}

// FromWire validates a wire-level shard map (signature verification is
// the caller's job) and builds the routing Map.
func FromWire(w *wire.ShardMap) (*Map, error) {
	if w == nil {
		return nil, fmt.Errorf("shard: nil wire map")
	}
	return New(w.Edges)
}

// Shards returns the shard count.
func (m *Map) Shards() int { return len(m.edges) }

// Edges returns the edges in shard order. The slice is shared; treat it
// as read-only.
func (m *Map) Edges() []wire.NodeID { return m.edges }

// EdgeAt returns the edge owning shard i.
func (m *Map) EdgeAt(i int) wire.NodeID { return m.edges[i] }

// EdgeFor returns the edge owning key.
func (m *Map) EdgeFor(key []byte) wire.NodeID {
	return m.edges[Of(key, len(m.edges))]
}

// ShardOf returns the shard index that edge owns, or -1 when the edge is
// not part of the map.
func (m *Map) ShardOf(edge wire.NodeID) int {
	i, ok := m.index[edge]
	if !ok {
		return -1
	}
	return i
}

// Contains reports whether edge owns a shard in this map.
func (m *Map) Contains(edge wire.NodeID) bool {
	_, ok := m.index[edge]
	return ok
}

// Wire serializes the map for signing and distribution.
func (m *Map) Wire(version uint64) *wire.ShardMap {
	return &wire.ShardMap{
		Version: version,
		Edges:   append([]wire.NodeID(nil), m.edges...),
	}
}
