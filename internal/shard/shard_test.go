package shard

import (
	"fmt"
	"testing"

	"wedgechain/internal/wire"
)

func TestOfStableAndInRange(t *testing.T) {
	// Golden values pin the hash: the shard map is part of the protocol,
	// so a silent change to the partitioner would misroute every key.
	golden := map[string]int{
		"":                5,
		"a":               4,
		"key-0":           1,
		"key-1":           6,
		"user/42/profile": 7,
	}
	for k, want := range golden {
		if got := Of([]byte(k), 8); got != want {
			t.Errorf("Of(%q, 8) = %d, want %d", k, got, want)
		}
	}
	for n := 1; n <= 16; n++ {
		for i := 0; i < 1000; i++ {
			s := Of([]byte(fmt.Sprintf("key-%d", i)), n)
			if s < 0 || s >= n {
				t.Fatalf("Of out of range: %d for n=%d", s, n)
			}
		}
	}
	if Of([]byte("x"), 0) != 0 || Of(nil, -3) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
	if Of(nil, 8) != Of([]byte{}, 8) {
		t.Fatal("nil and empty keys must hash identically")
	}
}

func TestOfSpreadsKeys(t *testing.T) {
	const n, keys = 8, 8000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[Of([]byte(fmt.Sprintf("key-%d", i)), n)]++
	}
	for s, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Errorf("shard %d holds %d of %d keys; partitioner badly skewed", s, c, keys)
		}
	}
}

func TestMapRouting(t *testing.T) {
	edges := []wire.NodeID{"edge-1", "edge-2", "edge-3", "edge-4"}
	m, err := New(edges)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	for i, e := range edges {
		if m.EdgeAt(i) != e {
			t.Fatalf("EdgeAt(%d) = %q", i, m.EdgeAt(i))
		}
		if m.ShardOf(e) != i {
			t.Fatalf("ShardOf(%q) = %d", e, m.ShardOf(e))
		}
		if !m.Contains(e) {
			t.Fatalf("Contains(%q) = false", e)
		}
	}
	if m.Contains("edge-9") || m.ShardOf("edge-9") != -1 {
		t.Fatal("unknown edge reported as member")
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if m.EdgeFor(key) != edges[Of(key, 4)] {
			t.Fatalf("EdgeFor(%q) disagrees with Of", key)
		}
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty map accepted")
	}
	if _, err := New([]wire.NodeID{"edge-1", ""}); err == nil {
		t.Fatal("empty edge id accepted")
	}
	if _, err := New([]wire.NodeID{"edge-1", "edge-1"}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := FromWire(nil); err == nil {
		t.Fatal("nil wire map accepted")
	}
}

func TestMapWireRoundTrip(t *testing.T) {
	m, err := New([]wire.NodeID{"edge-1", "edge-2"})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Wire(7)
	if w.Version != 7 || len(w.Edges) != 2 {
		t.Fatalf("wire map = %+v", w)
	}
	back, err := FromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards() != 2 || back.EdgeAt(1) != "edge-2" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
