// Package sim is a deterministic discrete-event network simulator: the
// substrate that replaces the paper's geo-distributed AWS testbed
// (Section VI) with a reproducible, virtual-time environment.
//
// The simulator models exactly the mechanisms the paper's evaluation
// exercises:
//
//   - per-link one-way latency (the Table I RTT matrix, halved);
//   - per-link bandwidth with FIFO serialization delay, which produces the
//     batch-size sensitivity of Edge-baseline in Figure 4;
//   - per-node FIFO service queues with a pluggable compute-cost model,
//     which produce the saturation behaviour of Figure 5.
//
// Nodes are core.Handler state machines — the identical protocol code that
// runs over TCP in the cmd/ binaries. Virtual time decouples measured
// latency from host noise and lets multi-minute experiments (Figure 6's
// 4000-batch runs) complete in milliseconds of wall time.
package sim

import (
	"container/heap"
	"fmt"

	"wedgechain/internal/core"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/wire"
)

// Link describes one directional network path.
type Link struct {
	// Latency is the one-way propagation delay in nanoseconds.
	Latency int64
	// Bandwidth is bytes per second; 0 means infinite.
	Bandwidth float64
}

// CostFn models compute: the service time (ns) a node spends processing
// one envelope. outs are the messages the handler emitted, letting the
// model charge batch-commit work on the request that triggered the block
// cut (identifiable by its outputs). The benchmark harness supplies the
// calibrated model; tests default to zero cost.
type CostFn func(node wire.NodeID, env wire.Envelope, outs []wire.Envelope) int64

// Config parameterizes a simulation.
type Config struct {
	// TickEvery drives Handler.Tick at this virtual period (ns);
	// 0 defaults to 1ms.
	TickEvery int64
	// DefaultLink applies when Links has no entry for a pair.
	DefaultLink Link
	// Links maps [from, to] to the path description.
	Links map[[2]wire.NodeID]Link
	// Cost is the compute model; nil means zero service time.
	Cost CostFn
	// MaxEvents aborts runaway simulations; 0 defaults to 200M events.
	MaxEvents uint64
	// Fault injects deterministic link faults (drop/delay/duplicate/
	// partition) between distinct nodes; nil disables. Self-sends are
	// never perturbed.
	Fault *faultnet.Net
}

type eventKind uint8

const (
	evDeliver eventKind = iota
	evTick
)

type event struct {
	at   int64
	seq  uint64 // insertion order tiebreaker for determinism
	kind eventKind
	node wire.NodeID
	env  wire.Envelope
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type nodeState struct {
	h         core.Handler
	busyUntil int64
}

type linkState struct {
	nextFree int64
}

// Stats aggregates simulator-level counters.
type Stats struct {
	Events    uint64
	Messages  uint64
	Bytes     uint64
	LinkBytes map[[2]wire.NodeID]uint64
}

// Sim is a single-threaded discrete-event simulation. Not safe for
// concurrent use.
type Sim struct {
	cfg   Config
	now   int64
	seq   uint64
	heap  eventHeap
	nodes map[wire.NodeID]*nodeState
	links map[[2]wire.NodeID]*linkState
	stats Stats
}

// New creates an empty simulation.
func New(cfg Config) *Sim {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = int64(1e6)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 200e6
	}
	return &Sim{
		cfg:   cfg,
		nodes: make(map[wire.NodeID]*nodeState),
		links: make(map[[2]wire.NodeID]*linkState),
		stats: Stats{LinkBytes: make(map[[2]wire.NodeID]uint64)},
	}
}

// Add registers a node and schedules its tick stream.
func (s *Sim) Add(h core.Handler) {
	id := h.ID()
	if _, dup := s.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %q", id))
	}
	s.nodes[id] = &nodeState{h: h}
	s.push(&event{at: s.now + s.cfg.TickEvery, kind: evTick, node: id})
}

// Node returns a registered handler (for direct inspection in tests).
func (s *Sim) Node(id wire.NodeID) core.Handler {
	st, ok := s.nodes[id]
	if !ok {
		return nil
	}
	return st.h
}

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.now }

// Stats returns a copy of the simulator counters (LinkBytes is shared).
func (s *Sim) Stats() Stats { return s.stats }

func (s *Sim) push(e *event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.heap, e)
}

func (s *Sim) link(from, to wire.NodeID) (Link, *linkState) {
	key := [2]wire.NodeID{from, to}
	cfg, ok := s.cfg.Links[key]
	if !ok {
		cfg = s.cfg.DefaultLink
	}
	st := s.links[key]
	if st == nil {
		st = &linkState{}
		s.links[key] = st
	}
	return cfg, st
}

// Send routes an envelope emitted by a node at virtual time t: FIFO
// bandwidth serialization on the (from, to) link, then propagation delay,
// then delivery. Messages a node sends to itself are delivered after its
// own service time only.
func (s *Sim) send(t int64, env wire.Envelope) {
	size := wire.EncodedSize(env)
	s.stats.Messages++
	s.stats.Bytes += uint64(size)
	key := [2]wire.NodeID{env.From, env.To}
	s.stats.LinkBytes[key] += uint64(size)
	if env.From == env.To {
		s.push(&event{at: t, kind: evDeliver, node: env.To, env: env})
		return
	}
	cfg, st := s.link(env.From, env.To)
	start := t
	if st.nextFree > start {
		start = st.nextFree
	}
	var tx int64
	if cfg.Bandwidth > 0 {
		tx = int64(float64(size) / cfg.Bandwidth * 1e9)
	}
	st.nextFree = start + tx
	arrive := start + tx + cfg.Latency
	if s.cfg.Fault != nil {
		// The frame already paid its bandwidth share; the injector only
		// decides existence and extra latency per delivery.
		act := s.cfg.Fault.Apply(t, env.From, env.To)
		if act.Drop {
			return
		}
		for _, d := range act.Delays {
			s.push(&event{at: arrive + d, kind: evDeliver, node: env.To, env: env})
		}
		return
	}
	s.push(&event{at: arrive, kind: evDeliver, node: env.To, env: env})
}

// Inject sends envelopes into the network as if their From nodes emitted
// them at the current virtual time. Used by tests and workload drivers to
// start operations.
func (s *Sim) Inject(envs []wire.Envelope) {
	for _, e := range envs {
		s.send(s.now, e)
	}
}

// step processes one event; reports false when the heap is empty.
func (s *Sim) step() bool {
	if s.heap.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.heap).(*event)
	s.now = e.at
	s.stats.Events++
	st, ok := s.nodes[e.node]
	if !ok {
		return true // message to an unknown node: dropped
	}
	switch e.kind {
	case evTick:
		outs := st.h.Tick(s.now)
		for _, env := range outs {
			s.send(s.now, env)
		}
		s.push(&event{at: s.now + s.cfg.TickEvery, kind: evTick, node: e.node})
	case evDeliver:
		// FIFO service queue: the node starts work when free, spends the
		// modeled cost, and its outputs leave at completion time.
		start := s.now
		if st.busyUntil > start {
			start = st.busyUntil
		}
		outs := st.h.Receive(start, e.env)
		var cost int64
		if s.cfg.Cost != nil {
			cost = s.cfg.Cost(e.node, e.env, outs)
		}
		fin := start + cost
		st.busyUntil = fin
		for _, env := range outs {
			s.send(fin, env)
		}
	}
	return true
}

// RunUntil advances virtual time to t (processing every event at or before
// t). Ticks keep the heap non-empty, so this is the normal way to run.
func (s *Sim) RunUntil(t int64) {
	for s.heap.Len() > 0 && s.heap[0].at <= t {
		if s.stats.Events >= s.cfg.MaxEvents {
			panic("sim: event budget exhausted")
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunWhile advances the simulation while cond holds, up to limit. Returns
// true when cond became false (done), false on hitting the time limit.
func (s *Sim) RunWhile(cond func() bool, limit int64) bool {
	for cond() {
		if s.heap.Len() == 0 || s.heap[0].at > limit {
			return false
		}
		if s.stats.Events >= s.cfg.MaxEvents {
			panic("sim: event budget exhausted")
		}
		s.step()
	}
	return true
}

// Drain processes events until only tick events remain in the next quiet
// period — i.e. until all in-flight protocol messages settle — bounded by
// limit. Useful for integration tests.
func (s *Sim) Drain(limit int64) {
	for s.heap.Len() > 0 && s.heap[0].at <= limit {
		// Stop when the only remaining work is ticking with no deliveries.
		if s.onlyTicksPending() {
			quiet := s.now + 2*s.cfg.TickEvery
			if quiet > limit {
				return
			}
			s.RunUntil(quiet)
			if s.onlyTicksPending() {
				return
			}
			continue
		}
		s.step()
	}
}

func (s *Sim) onlyTicksPending() bool {
	for _, e := range s.heap {
		if e.kind != evTick {
			return false
		}
	}
	return true
}
