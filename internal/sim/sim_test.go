package sim

import (
	"testing"

	"wedgechain/internal/wire"
)

// recorder logs arrival times of pings and optionally echoes.
type recorder struct {
	id       wire.NodeID
	arrivals []int64
	echo     bool
}

func (r *recorder) ID() wire.NodeID { return r.id }
func (r *recorder) Receive(now int64, env wire.Envelope) []wire.Envelope {
	if _, ok := env.Msg.(*wire.Ping); ok {
		r.arrivals = append(r.arrivals, now)
		if r.echo {
			return []wire.Envelope{{From: r.id, To: env.From, Msg: &wire.Pong{}}}
		}
	}
	return nil
}
func (r *recorder) Tick(now int64) []wire.Envelope { return nil }

func ping(from, to wire.NodeID) wire.Envelope {
	return wire.Envelope{From: from, To: to, Msg: &wire.Ping{}}
}

func TestLatencyApplied(t *testing.T) {
	dst := &recorder{id: "b"}
	s := New(Config{
		Links: map[[2]wire.NodeID]Link{{"a", "b"}: {Latency: 1e6}},
	})
	s.Add(&recorder{id: "a"})
	s.Add(dst)
	s.Inject([]wire.Envelope{ping("a", "b")})
	s.RunUntil(10e6)
	if len(dst.arrivals) != 1 || dst.arrivals[0] != 1e6 {
		t.Fatalf("arrivals = %v, want [1000000]", dst.arrivals)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// Two messages share a 1 KB/s link: the second waits for the first's
	// transmission to finish.
	dst := &recorder{id: "b"}
	s := New(Config{
		Links: map[[2]wire.NodeID]Link{{"a", "b"}: {Latency: 0, Bandwidth: 1000}},
	})
	s.Add(&recorder{id: "a"})
	s.Add(dst)
	size := int64(wire.Size(ping("a", "b")))
	txNs := size * 1e9 / 1000
	s.Inject([]wire.Envelope{ping("a", "b"), ping("a", "b")})
	s.RunUntil(10e9)
	if len(dst.arrivals) != 2 {
		t.Fatalf("arrivals = %v", dst.arrivals)
	}
	if dst.arrivals[0] != txNs {
		t.Fatalf("first arrival %d, want %d", dst.arrivals[0], txNs)
	}
	if dst.arrivals[1] != 2*txNs {
		t.Fatalf("second arrival %d, want %d (serialized)", dst.arrivals[1], 2*txNs)
	}
}

func TestServiceCostQueues(t *testing.T) {
	// Node b takes 5ms per message; two simultaneous arrivals must be
	// served FIFO, the second's outputs leaving at 10ms.
	done := &recorder{id: "c"}
	s := New(Config{
		Cost: func(node wire.NodeID, in wire.Envelope, outs []wire.Envelope) int64 {
			if node == "b" {
				return 5e6
			}
			return 0
		},
	})
	relay := &relayNode{id: "b", to: "c"}
	s.Add(relay)
	s.Add(done)
	s.Add(&recorder{id: "a"})
	s.Inject([]wire.Envelope{ping("a", "b"), ping("a", "b")})
	s.RunUntil(1e9)
	if len(done.arrivals) != 2 {
		t.Fatalf("arrivals = %v", done.arrivals)
	}
	if done.arrivals[0] != 5e6 || done.arrivals[1] != 10e6 {
		t.Fatalf("arrivals = %v, want [5ms 10ms]", done.arrivals)
	}
}

type relayNode struct {
	id, to wire.NodeID
}

func (r *relayNode) ID() wire.NodeID { return r.id }
func (r *relayNode) Receive(now int64, env wire.Envelope) []wire.Envelope {
	return []wire.Envelope{{From: r.id, To: r.to, Msg: env.Msg}}
}
func (r *relayNode) Tick(now int64) []wire.Envelope { return nil }

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		dst := &recorder{id: "b"}
		s := New(Config{
			DefaultLink: Link{Latency: 3e6, Bandwidth: 1e6},
		})
		s.Add(&recorder{id: "a"})
		s.Add(dst)
		for i := 0; i < 50; i++ {
			s.Inject([]wire.Envelope{ping("a", "b")})
			s.RunUntil(s.Now() + 1e5)
		}
		s.RunUntil(1e9)
		return dst.arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTickStream(t *testing.T) {
	tk := &tickCounter{id: "a"}
	s := New(Config{TickEvery: 1e6})
	s.Add(tk)
	s.RunUntil(10e6)
	if tk.count < 9 || tk.count > 11 {
		t.Fatalf("ticks = %d, want ~10", tk.count)
	}
}

type tickCounter struct {
	id    wire.NodeID
	count int
}

func (c *tickCounter) ID() wire.NodeID { return c.id }
func (c *tickCounter) Receive(now int64, env wire.Envelope) []wire.Envelope {
	return nil
}
func (c *tickCounter) Tick(now int64) []wire.Envelope {
	c.count++
	return nil
}

func TestRunWhile(t *testing.T) {
	dst := &recorder{id: "b", echo: true}
	src := &recorder{id: "a"}
	s := New(Config{DefaultLink: Link{Latency: 2e6}})
	s.Add(src)
	s.Add(dst)
	s.Inject([]wire.Envelope{ping("a", "b")})
	ok := s.RunWhile(func() bool { return len(dst.arrivals) == 0 }, 1e9)
	if !ok {
		t.Fatal("RunWhile hit limit")
	}
	if s.Now() != 2e6 {
		t.Fatalf("Now = %d, want 2ms", s.Now())
	}
	// Condition never satisfied -> limit.
	if ok := s.RunWhile(func() bool { return true }, 5e6); ok {
		t.Fatal("RunWhile claimed success at limit")
	}
}

func TestMessageToUnknownNodeDropped(t *testing.T) {
	s := New(Config{})
	s.Add(&recorder{id: "a"})
	s.Inject([]wire.Envelope{ping("a", "ghost")})
	s.RunUntil(1e7) // must not panic
}

func TestStatsAccounting(t *testing.T) {
	dst := &recorder{id: "b"}
	s := New(Config{})
	s.Add(&recorder{id: "a"})
	s.Add(dst)
	s.Inject([]wire.Envelope{ping("a", "b"), ping("a", "b")})
	s.RunUntil(1e7)
	st := s.Stats()
	if st.Messages != 2 {
		t.Fatalf("Messages = %d", st.Messages)
	}
	if st.LinkBytes[[2]wire.NodeID{"a", "b"}] == 0 {
		t.Fatal("link bytes not recorded")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	s := New(Config{})
	s.Add(&recorder{id: "a"})
	s.Add(&recorder{id: "a"})
}
