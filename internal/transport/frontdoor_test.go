package transport

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"wedgechain/internal/wire"
)

// orderEcho records the arrival order of pings per sender and echoes a
// pong to each — the observer for frame-interleaving assertions.
type orderEcho struct {
	id      wire.NodeID
	mu      sync.Mutex
	perFrom map[wire.NodeID][]uint64
	pongs   map[wire.NodeID]int
}

func newOrderEcho(id wire.NodeID) *orderEcho {
	return &orderEcho{id: id, perFrom: make(map[wire.NodeID][]uint64), pongs: make(map[wire.NodeID]int)}
}

func (e *orderEcho) ID() wire.NodeID { return e.id }
func (e *orderEcho) Receive(now int64, env wire.Envelope) []wire.Envelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch m := env.Msg.(type) {
	case *wire.Ping:
		e.perFrom[env.From] = append(e.perFrom[env.From], m.Seq)
		return []wire.Envelope{{From: e.id, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	case *wire.Pong:
		e.pongs[env.From]++
	}
	return nil
}
func (e *orderEcho) Tick(now int64) []wire.Envelope { return nil }

// TestSessionMuxInterleavingFIFO hosts three client sessions on one TCP
// endpoint — one socket, one writer-lane pool — and has each stream
// ordered pings at the server concurrently. Responses must route back to
// the correct session by envelope address, and each session's frames must
// arrive in send order: lane hashing is by address, so all three sessions'
// frames serialize FIFO through one lane even under -race scheduling.
func TestSessionMuxInterleavingFIFO(t *testing.T) {
	server := newOrderEcho("server")
	st := NewTCP(server, TCPConfig{Listen: "127.0.0.1:0"})
	if err := st.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Serve(ctx)

	primary := newOrderEcho("c.s0")
	ct := NewTCP(primary, TCPConfig{
		Listen: "127.0.0.1:0",
		Peers:  map[wire.NodeID]string{"server": st.Addr().String()},
	})
	if err := ct.Listen(); err != nil {
		t.Fatal(err)
	}
	go ct.Serve(ctx)

	sessions := []*orderEcho{primary, newOrderEcho("c.s1"), newOrderEcho("c.s2")}
	for _, s := range sessions[1:] {
		ct.AddSession(s)
	}
	// Every session identity dials back to the same address: the server's
	// scheduler shares one connection across all three.
	for _, s := range sessions {
		st.SetPeer(s.id, ct.Addr().String())
	}

	const n = 100
	var wg sync.WaitGroup
	for _, s := range sessions {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				seq := uint64(i)
				ct.DoSession(s.id, func(now int64) []wire.Envelope {
					return []wire.Envelope{{From: s.id, To: "server", Msg: &wire.Ping{Seq: seq, Ts: now}}}
				})
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		done := 0
		for _, s := range sessions {
			s.mu.Lock()
			if s.pongs["server"] >= n {
				done++
			}
			s.mu.Unlock()
		}
		if done == len(sessions) {
			break
		}
		if time.Now().After(deadline) {
			for _, s := range sessions {
				s.mu.Lock()
				t.Logf("%s: %d/%d pongs", s.id, s.pongs["server"], n)
				s.mu.Unlock()
			}
			t.Fatal("not every session's pongs arrived over the shared connection")
		}
		time.Sleep(5 * time.Millisecond)
	}

	server.mu.Lock()
	defer server.mu.Unlock()
	for _, s := range sessions {
		seqs := server.perFrom[s.id]
		if len(seqs) != n {
			t.Fatalf("server saw %d pings from %s, want %d", len(seqs), s.id, n)
		}
		for i, seq := range seqs {
			if seq != uint64(i) {
				t.Fatalf("session %s frames reordered: position %d holds seq %d", s.id, i, seq)
			}
		}
	}
}

// TestWriterLaneDropAccounting pins the admission behavior of a full lane:
// with the drain goroutines held off, a depth-1 lane accepts exactly one
// frame and sheds the rest into Stats.LaneDrops — never blocking the
// caller. Unknown peers are shed separately into NoAddrDrops.
func TestWriterLaneDropAccounting(t *testing.T) {
	h := newOrderEcho("a")
	tr := NewTCP(h, TCPConfig{
		Listen:    "127.0.0.1:0",
		Peers:     map[wire.NodeID]string{"b": "127.0.0.1:1"},
		Lanes:     1,
		LaneDepth: 1,
	})
	// Hold the lane workers off so the queue never drains: the drop path
	// is then deterministic.
	tr.laneOnce.Do(func() {})

	for i := 0; i < 3; i++ {
		tr.send(wire.Envelope{From: "a", To: "b", Msg: &wire.Ping{Seq: uint64(i)}})
	}
	tr.send(wire.Envelope{From: "a", To: "nobody", Msg: &wire.Ping{Seq: 9}})

	st := tr.Stats()
	if st.LaneDrops != 2 {
		t.Fatalf("LaneDrops = %d, want 2 (depth-1 lane, 3 frames)", st.LaneDrops)
	}
	if st.NoAddrDrops != 1 {
		t.Fatalf("NoAddrDrops = %d, want 1", st.NoAddrDrops)
	}
	if st.FramesSent != 0 {
		t.Fatalf("FramesSent = %d, want 0 (lanes never ran)", st.FramesSent)
	}
}

// TestLaneOfStability pins the scheduler's routing invariant: a peer
// address always hashes to the same lane (per-peer FIFO), and identities
// sharing an address share the lane (and therefore its one connection).
func TestLaneOfStability(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, addr := range []string{"10.0.0.1:9002", "edge.example:9002", ""} {
			a, b := laneOf(addr, n), laneOf(addr, n)
			if a != b {
				t.Fatalf("laneOf(%q, %d) unstable: %d vs %d", addr, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("laneOf(%q, %d) = %d out of range", addr, n, a)
			}
		}
	}
}

// TestHubRoutesSessions drives K sessions behind one Hub on the local
// transport: envelopes reach the right session by address, and Do on a
// session identity runs on the hub's goroutine through the alias.
func TestHubRoutesSessions(t *testing.T) {
	l := NewLocal(LocalConfig{TickEvery: time.Millisecond})
	defer l.Close()
	driver := newOrderEcho("driver")
	l.Add(driver)
	hub := NewHub("hub-1")
	l.Add(hub)

	const k = 5
	sessions := make([]*orderEcho, k)
	for i := range sessions {
		sessions[i] = newOrderEcho(wire.NodeID(fmt.Sprintf("s%d", i)))
		if !l.AddSession("hub-1", sessions[i]) {
			t.Fatalf("AddSession refused session %d", i)
		}
	}
	if hub.Len() != k {
		t.Fatalf("hub holds %d sessions, want %d", hub.Len(), k)
	}
	if l.AddSession("driver", newOrderEcho("sx")) {
		t.Fatal("AddSession accepted a non-hub host")
	}

	for i, s := range sessions {
		l.Send([]wire.Envelope{{From: "driver", To: s.id, Msg: &wire.Ping{Seq: uint64(i)}}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		driver.mu.Lock()
		pongs := 0
		for _, n := range driver.pongs {
			pongs += n
		}
		driver.mu.Unlock()
		if pongs >= k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d sessions answered through the hub", pongs, k)
		}
		time.Sleep(time.Millisecond)
	}
	for i, s := range sessions {
		s.mu.Lock()
		got := s.perFrom["driver"]
		s.mu.Unlock()
		if len(got) != 1 || got[0] != uint64(i) {
			t.Fatalf("session %s received %v, want [%d]", s.id, got, i)
		}
	}

	ran := make(chan struct{})
	if !l.Do(sessions[2].id, func(now int64) []wire.Envelope {
		close(ran)
		return nil
	}) {
		t.Fatal("Do refused a hub-hosted session identity")
	}
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("Do thunk never ran on the hub goroutine")
	}
}

// TestTransportGoroutineHygiene is the leak check CI runs by name: it
// counts goroutines, runs a full TCP exchange (listener, reader, tick
// loop, writer lanes, connection monitors — everything the endpoint
// spawns), shuts both endpoints down, and requires the count to settle
// back to its starting point. A leaked lane or monitor goroutine fails
// the budget.
func TestTransportGoroutineHygiene(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	server := newOrderEcho("server")
	st := NewTCP(server, TCPConfig{Listen: "127.0.0.1:0"})
	if err := st.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{}, 2)
	go func() { st.Serve(ctx); served <- struct{}{} }()

	client := newOrderEcho("client")
	ct := NewTCP(client, TCPConfig{
		Listen: "127.0.0.1:0",
		Peers:  map[wire.NodeID]string{"server": st.Addr().String()},
	})
	if err := ct.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() { ct.Serve(ctx); served <- struct{}{} }()
	extra := newOrderEcho("client.s2")
	ct.AddSession(extra)
	st.SetPeer("client", ct.Addr().String())
	st.SetPeer("client.s2", ct.Addr().String())

	const n = 50
	for _, from := range []wire.NodeID{"client", "client.s2"} {
		from := from
		for i := 0; i < n; i++ {
			seq := uint64(i)
			ct.DoSession(from, func(now int64) []wire.Envelope {
				return []wire.Envelope{{From: from, To: "server", Msg: &wire.Ping{Seq: seq, Ts: now}}}
			})
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		client.mu.Lock()
		cp := client.pongs["server"]
		client.mu.Unlock()
		extra.mu.Lock()
		ep := extra.pongs["server"]
		extra.mu.Unlock()
		if cp >= n && ep >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traffic never completed: %d+%d/%d pongs", cp, ep, 2*n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	<-served
	<-served

	// Lanes, monitors, readers and tick loops unwind asynchronously after
	// Serve returns; poll until the goroutine count settles.
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
