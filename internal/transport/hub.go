package transport

import (
	"sync"

	"wedgechain/internal/core"
	"wedgechain/internal/wire"
)

// Hub multiplexes many handlers onto one transport node: it is itself a
// core.Handler whose Receive routes each envelope to the attached session
// with the matching identity and whose Tick drives every session. Added
// to a Local (with the member identities aliased via AddSession) it gives
// K client sessions one node goroutine instead of K — the in-process
// analogue of TCP's session multiplexing, and what lets the front-door
// experiment hold tens of thousands of sessions at a flat goroutine
// count.
type Hub struct {
	id wire.NodeID

	mu       sync.RWMutex
	sessions map[wire.NodeID]core.Handler
	order    []core.Handler
}

// NewHub creates an empty hub with its own node identity.
func NewHub(id wire.NodeID) *Hub {
	return &Hub{id: id, sessions: make(map[wire.NodeID]core.Handler)}
}

// Attach adds a session. Safe while the hub is live: routing state is
// lock-protected, and the session's handler is only ever entered from the
// hub's single goroutine afterwards.
func (h *Hub) Attach(s core.Handler) {
	h.mu.Lock()
	if _, dup := h.sessions[s.ID()]; !dup {
		h.order = append(h.order, s)
	}
	h.sessions[s.ID()] = s
	h.mu.Unlock()
}

// Len returns the number of attached sessions.
func (h *Hub) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.order)
}

// ID implements core.Handler.
func (h *Hub) ID() wire.NodeID { return h.id }

// Receive implements core.Handler: route to the addressed session.
func (h *Hub) Receive(now int64, env wire.Envelope) []wire.Envelope {
	h.mu.RLock()
	s := h.sessions[env.To]
	h.mu.RUnlock()
	if s == nil {
		return nil
	}
	return s.Receive(now, env)
}

// Tick implements core.Handler: drive every session.
func (h *Hub) Tick(now int64) []wire.Envelope {
	h.mu.RLock()
	sess := h.order
	h.mu.RUnlock()
	var out []wire.Envelope
	for _, s := range sess {
		out = append(out, s.Tick(now)...)
	}
	return out
}
