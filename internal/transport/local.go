// Package transport runs the protocol state machines over real I/O: an
// in-process channel transport with injectable latency (examples, façade)
// and a TCP transport with length-prefixed framing (the cmd/ binaries).
// Both drive the identical core.Handler implementations the simulator
// drives, so deployed behaviour and measured behaviour share one codebase.
package transport

import (
	"sync"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// LocalConfig parameterizes an in-process network.
type LocalConfig struct {
	// TickEvery drives Handler.Tick; 0 defaults to 10ms.
	TickEvery time.Duration
	// Latency returns the one-way delay between two nodes; nil = none.
	Latency func(from, to wire.NodeID) time.Duration
	// Buffer is the per-node inbox depth; 0 defaults to 4096.
	Buffer int
	// Registry and VerifyWorkers enable a parallel signature
	// verification stage shared by every node on the network: inbound
	// envelopes are pre-verified by VerifyWorkers goroutines and
	// delivered in arrival order with Envelope.Verified set, so the
	// single-threaded handlers skip the per-message signature cost.
	// Failed or unknown messages are delivered unverified and the
	// handler rejects them exactly as it would without the stage. Zero
	// workers or a nil registry disables the stage; negative workers
	// means GOMAXPROCS.
	Registry      *wcrypto.Registry
	VerifyWorkers int
	// Fault injects deterministic link faults (drop/delay/duplicate/
	// partition) between distinct nodes; nil disables. Self-sends are
	// never perturbed. Fault time is wall-clock nanoseconds.
	Fault *faultnet.Net
}

type localMsg struct {
	env wire.Envelope
	fn  func(now int64) []wire.Envelope
}

type localNode struct {
	h     core.Handler
	inbox chan localMsg
}

// Local is an in-process message bus connecting handlers, each running on
// its own goroutine so per-node single-threading is preserved.
type Local struct {
	cfg    LocalConfig
	mu     sync.RWMutex
	nodes  map[wire.NodeID]*localNode
	stop   chan struct{}
	wg     sync.WaitGroup
	verify *wcrypto.VerifyPool // nil = no pre-verification stage

	timers sync.WaitGroup
}

// NewLocal creates an empty in-process network.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 4096
	}
	l := &Local{
		cfg:   cfg,
		nodes: make(map[wire.NodeID]*localNode),
		stop:  make(chan struct{}),
	}
	if cfg.Registry != nil && cfg.VerifyWorkers != 0 {
		// One pool serves the whole network: global delivery order is a
		// superset of every node's arrival order, and worker count stays
		// bounded by the host instead of by the node count. The sink
		// must never block the shared dispatcher, so a node whose inbox
		// is full sheds load (drop) instead of stalling its siblings —
		// the lossy-network behaviour the protocol already tolerates.
		l.verify = wcrypto.NewVerifyPool(cfg.Registry, cfg.VerifyWorkers, cfg.Buffer,
			func(env wire.Envelope) { l.enqueueNonblock(env) })
	}
	return l
}

// Add registers a handler and starts its node goroutine.
func (l *Local) Add(h core.Handler) {
	n := &localNode{h: h, inbox: make(chan localMsg, l.cfg.Buffer)}
	l.mu.Lock()
	l.nodes[h.ID()] = n
	l.mu.Unlock()
	l.wg.Add(1)
	go l.run(n)
}

// AddSession attaches a handler to an already-Added Hub node and aliases
// the handler's identity onto the hub's inbox: envelopes addressed to it
// are delivered to the hub (which routes them), and Do(h.ID(), fn) runs
// fn on the hub's goroutine. Many sessions thereby share one goroutine
// instead of one each. Returns false if hub does not name a Hub node.
func (l *Local) AddSession(hub wire.NodeID, h core.Handler) bool {
	l.mu.Lock()
	n := l.nodes[hub]
	if n == nil {
		l.mu.Unlock()
		return false
	}
	hb, ok := n.h.(*Hub)
	if !ok {
		l.mu.Unlock()
		return false
	}
	l.nodes[h.ID()] = n
	l.mu.Unlock()
	hb.Attach(h)
	return true
}

func (l *Local) run(n *localNode) {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case m := <-n.inbox:
			now := time.Now().UnixNano()
			if m.fn != nil {
				l.route(m.fn(now))
				continue
			}
			l.route(n.h.Receive(now, m.env))
		case <-ticker.C:
			l.route(n.h.Tick(time.Now().UnixNano()))
		}
	}
}

// route delivers envelopes, applying the configured latency and any
// injected link faults.
func (l *Local) route(envs []wire.Envelope) {
	for _, env := range envs {
		env := env
		var delay time.Duration
		if l.cfg.Latency != nil {
			delay = l.cfg.Latency(env.From, env.To)
		}
		if l.cfg.Fault != nil && env.From != env.To {
			act := l.cfg.Fault.Apply(time.Now().UnixNano(), env.From, env.To)
			if act.Drop {
				continue
			}
			for _, extra := range act.Delays {
				l.deliverAfter(env, delay+time.Duration(extra))
			}
			continue
		}
		l.deliverAfter(env, delay)
	}
}

func (l *Local) deliverAfter(env wire.Envelope, delay time.Duration) {
	if delay <= 0 {
		l.deliver(env)
		return
	}
	l.timers.Add(1)
	time.AfterFunc(delay, func() {
		defer l.timers.Done()
		l.deliver(env)
	})
}

func (l *Local) deliver(env wire.Envelope) {
	if l.verify != nil {
		l.verify.Submit(env)
		return
	}
	l.enqueueTo(env)
}

func (l *Local) enqueueTo(env wire.Envelope) {
	l.mu.RLock()
	n := l.nodes[env.To]
	l.mu.RUnlock()
	if n == nil {
		return
	}
	select {
	case n.inbox <- localMsg{env: env}:
	case <-l.stop:
	}
}

// enqueueNonblock delivers without ever blocking the caller: a full inbox
// drops the message. The verify pool's dispatcher uses it so one
// backlogged node cannot head-of-line-block delivery to every other node.
func (l *Local) enqueueNonblock(env wire.Envelope) {
	l.mu.RLock()
	n := l.nodes[env.To]
	l.mu.RUnlock()
	if n == nil {
		return
	}
	select {
	case n.inbox <- localMsg{env: env}:
	default:
	}
}

// Send injects envelopes into the network as if their From nodes emitted
// them now.
func (l *Local) Send(envs []wire.Envelope) { l.route(envs) }

// Do runs fn on node id's goroutine — the only safe way to call into a
// handler's non-Handler API (e.g. starting a client operation) while the
// transport is live. The returned envelopes are routed.
func (l *Local) Do(id wire.NodeID, fn func(now int64) []wire.Envelope) bool {
	l.mu.RLock()
	n := l.nodes[id]
	l.mu.RUnlock()
	if n == nil {
		return false
	}
	select {
	case n.inbox <- localMsg{fn: fn}:
		return true
	case <-l.stop:
		return false
	}
}

// Close stops all node goroutines. Pending delayed deliveries are allowed
// to fire into the void.
func (l *Local) Close() {
	close(l.stop)
	l.wg.Wait()
	if l.verify != nil {
		l.verify.Close()
	}
}
