package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// maxFrame bounds a single TCP frame (64 MiB) against hostile peers.
const maxFrame = 64 << 20

// TCPConfig parameterizes a TCP endpoint.
type TCPConfig struct {
	// Listen is the local address to accept peer connections on.
	Listen string
	// Peers maps node identities to dialable addresses.
	Peers map[wire.NodeID]string
	// TickEvery drives Handler.Tick; 0 defaults to 50ms.
	TickEvery time.Duration
	// DialTimeout bounds outbound connection setup; 0 defaults to 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write to a peer; 0 defaults to 10s.
	// A peer that stops reading fails its writes and is redialed on the
	// next message instead of wedging the sender.
	WriteTimeout time.Duration
	// Registry and VerifyWorkers enable a parallel signature
	// verification stage between the socket readers and the handler:
	// frames from any number of connections are pre-verified in
	// parallel and delivered in submission order with Envelope.Verified
	// set, taking the per-message signature cost off the handler mutex.
	// Zero workers or a nil registry disables the stage; negative
	// workers means GOMAXPROCS.
	Registry      *wcrypto.Registry
	VerifyWorkers int
	// Fault injects deterministic link faults (drop/delay/duplicate/
	// partition) on this endpoint's outbound frames; nil disables.
	// Fault time is wall-clock nanoseconds.
	Fault *faultnet.Net
}

// TCP serves one handler over real sockets: inbound frames are decoded and
// delivered under a per-node mutex (preserving single-threaded handler
// semantics); outputs are handed to one writer goroutine per peer, so a
// slow or dead peer can only ever stall (and eventually drop) its own
// traffic — never the handler, the verify pool, or other peers.
type TCP struct {
	cfg    TCPConfig
	h      core.Handler
	verify *wcrypto.VerifyPool // nil = verify inline in the handler
	stopc  chan struct{}       // closed when Serve exits; stops writers
	stop1  sync.Once

	mu sync.Mutex // serializes handler access

	connMu  sync.Mutex
	writers map[wire.NodeID]*peerWriter
	peers   map[wire.NodeID]string

	lisMu sync.Mutex
	lis   net.Listener

	// accepted tracks inbound connections so Serve's exit closes them —
	// the same teardown a process death produces, which peers rely on to
	// notice this endpoint restarted.
	acceptMu sync.Mutex
	accepted map[net.Conn]struct{}
}

// peerWriter is one peer's outbound lane: a bounded queue drained by a
// dedicated goroutine. A full queue drops the message — the protocol's
// timeout and dispute machinery owns recovery, mirroring the paper's
// asynchronous network assumption.
type peerWriter struct {
	out chan wire.Envelope
}

// peerConn is one outbound connection plus a liveness flag maintained by a
// read-side monitor. Outbound connections are write-only in this protocol
// (responses travel over the peer's own dial), so a returning Read means
// the peer closed or reset the connection — most importantly, that the
// peer's process died or restarted. The writer consults the flag before
// each frame: writing into a socket the kernel already knows is dead
// "succeeds" locally and loses the frame without ever surfacing an error.
type peerConn struct {
	net.Conn
	dead chan struct{}
	once sync.Once
}

func newPeerConn(c net.Conn) *peerConn {
	pc := &peerConn{Conn: c, dead: make(chan struct{})}
	go pc.monitor()
	return pc
}

func (c *peerConn) monitor() {
	var buf [64]byte
	for {
		if _, err := c.Conn.Read(buf[:]); err != nil {
			c.markDead()
			return
		}
		// Peers never send application data on our outbound connection;
		// anything read is discarded and the watch continues.
	}
}

func (c *peerConn) markDead() { c.once.Do(func() { close(c.dead) }) }

func (c *peerConn) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// NewTCP wraps a handler for TCP service.
func NewTCP(h core.Handler, cfg TCPConfig) *TCP {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 50 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	peers := make(map[wire.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[id] = addr
	}
	t := &TCP{
		cfg: cfg, h: h,
		stopc:    make(chan struct{}),
		writers:  make(map[wire.NodeID]*peerWriter),
		peers:    peers,
		accepted: make(map[net.Conn]struct{}),
	}
	if cfg.Registry != nil && cfg.VerifyWorkers != 0 {
		t.verify = wcrypto.NewVerifyPool(cfg.Registry, cfg.VerifyWorkers, 0, t.deliverVerified)
	}
	return t
}

// Addr returns the bound listen address, or nil before Listen succeeded.
func (t *TCP) Addr() net.Addr {
	t.lisMu.Lock()
	defer t.lisMu.Unlock()
	if t.lis == nil {
		return nil
	}
	return t.lis.Addr()
}

// SetPeer binds or replaces a peer's dialable address at runtime. An
// existing writer picks the new address up on its next dial.
func (t *TCP) SetPeer(id wire.NodeID, addr string) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	t.peers[id] = addr
}

// Listen binds the listener; idempotent. Serve calls it automatically,
// but callers that need the bound address before serving may call it
// first.
func (t *TCP) Listen() error {
	t.lisMu.Lock()
	defer t.lisMu.Unlock()
	if t.lis != nil {
		return nil
	}
	lis, err := net.Listen("tcp", t.cfg.Listen)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", t.cfg.Listen, err)
	}
	t.lis = lis
	return nil
}

// Serve listens and processes frames until ctx is done. On exit the
// verification pool (if any) is drained and stopped and the per-peer
// writer goroutines are released; frames still in flight are dropped,
// which shutdown makes moot.
func (t *TCP) Serve(ctx context.Context) error {
	defer t.stop1.Do(func() { close(t.stopc) })
	defer func() {
		t.acceptMu.Lock()
		for c := range t.accepted {
			c.Close()
		}
		t.acceptMu.Unlock()
	}()
	if t.verify != nil {
		defer t.verify.Close()
	}
	if err := t.Listen(); err != nil {
		return err
	}
	t.lisMu.Lock()
	lis := t.lis
	t.lisMu.Unlock()
	go func() {
		<-ctx.Done()
		lis.Close()
	}()

	ticker := time.NewTicker(t.cfg.TickEvery)
	defer ticker.Stop()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				t.mu.Lock()
				outs := t.h.Tick(time.Now().UnixNano())
				t.mu.Unlock()
				t.sendAll(outs)
			}
		}
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		t.acceptMu.Lock()
		t.accepted[conn] = struct{}{}
		t.acceptMu.Unlock()
		go t.read(ctx, conn)
	}
}

// Deliver processes one envelope as if it arrived from the network,
// routing it through the verification stage when one is configured.
func (t *TCP) Deliver(env wire.Envelope) {
	if t.verify != nil {
		t.verify.Submit(env)
		return
	}
	t.deliverVerified(env)
}

func (t *TCP) deliverVerified(env wire.Envelope) {
	t.mu.Lock()
	outs := t.h.Receive(time.Now().UnixNano(), env)
	t.mu.Unlock()
	t.sendAll(outs)
}

// Do runs fn under the handler mutex and routes its outputs — the hook
// synchronous clients use to start operations.
func (t *TCP) Do(fn func(now int64) []wire.Envelope) {
	t.mu.Lock()
	outs := fn(time.Now().UnixNano())
	t.mu.Unlock()
	t.sendAll(outs)
}

func (t *TCP) read(ctx context.Context, conn net.Conn) {
	defer func() {
		conn.Close()
		t.acceptMu.Lock()
		delete(t.accepted, conn)
		t.acceptMu.Unlock()
	}()
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if env.To != t.h.ID() {
			continue // misrouted
		}
		t.Deliver(env)
		if ctx.Err() != nil {
			return
		}
	}
}

func (t *TCP) sendAll(envs []wire.Envelope) {
	for _, env := range envs {
		t.send(env)
	}
}

// send hands the envelope to env.To's writer lane without ever blocking
// the caller: a full lane drops the message (the protocol's timeout and
// dispute machinery owns recovery, mirroring the paper's asynchronous
// network assumption).
func (t *TCP) send(env wire.Envelope) {
	if t.cfg.Fault != nil && env.From != env.To {
		act := t.cfg.Fault.Apply(time.Now().UnixNano(), env.From, env.To)
		if act.Drop {
			return
		}
		for _, extra := range act.Delays {
			if extra <= 0 {
				t.enqueue(env)
				continue
			}
			env := env
			time.AfterFunc(time.Duration(extra), func() { t.enqueue(env) })
		}
		return
	}
	t.enqueue(env)
}

// enqueue hands the envelope to env.To's writer lane, creating the lane
// on first use.
func (t *TCP) enqueue(env wire.Envelope) {
	t.connMu.Lock()
	w := t.writers[env.To]
	if w == nil {
		if _, known := t.peers[env.To]; !known {
			t.connMu.Unlock()
			return // no address for this peer
		}
		w = &peerWriter{out: make(chan wire.Envelope, 1024)}
		t.writers[env.To] = w
		go t.writeLoop(env.To, w)
	}
	t.connMu.Unlock()
	select {
	case w.out <- env:
	default: // lane full: peer is slow or dead; drop
	}
}

// writeLoop owns the single outbound connection to one peer: it dials on
// demand (re-reading the peer address, so SetPeer takes effect), writes
// each frame under WriteTimeout, and drops frames while the peer is
// unreachable.
//
// Two mechanisms keep a peer restart (same identity, same address) from
// losing the first frame addressed to the new incarnation:
//
//   - the read-side monitor (peerConn) marks the cached connection dead
//     as soon as the old incarnation's close reaches us, so the writer
//     redials BEFORE writing — a write into a kernel-dead socket would
//     "succeed" locally and lose the frame without any error;
//   - a write that does fail (detection raced the write) is retried
//     exactly once on a fresh dial, resending the same frame.
//
// One retry is enough: a second failure means the peer is down, and the
// protocol's timeout and dispute machinery owns recovery from there.
func (t *TCP) writeLoop(to wire.NodeID, w *peerWriter) {
	var conn *peerConn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var env wire.Envelope
		select {
		case <-t.stopc:
			return
		case env = <-w.out:
		}
		for attempt := 0; attempt < 2; attempt++ {
			if conn != nil && conn.isDead() {
				conn.Close()
				conn = nil
			}
			if conn == nil {
				t.connMu.Lock()
				addr := t.peers[to]
				t.connMu.Unlock()
				c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
				if err != nil {
					break // unreachable: drop this frame
				}
				conn = newPeerConn(c)
			}
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			if err := WriteFrame(conn, env); err == nil {
				break
			}
			// The connection died under us; redial once and resend.
			conn.Close()
			conn = nil
		}
	}
}

// WriteFrame writes one length-prefixed envelope. The frame is assembled
// in a pooled buffer (header and payload leave in a single Write) and the
// buffer is returned to the pool afterwards — steady-state framing
// allocates nothing.
func WriteFrame(w io.Writer, env wire.Envelope) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	var hdr [4]byte
	e.Raw(hdr[:]) // length placeholder, patched below
	wire.AppendEnvelope(e, env)
	frame := e.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed envelope. The frame buffer's
// ownership transfers to the decoded message (zero-copy decode): each
// frame is read into a fresh buffer and never reused.
func ReadFrame(r io.Reader) (wire.Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wire.Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wire.Envelope{}, errors.New("transport: frame exceeds limit")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return wire.Envelope{}, err
	}
	return wire.DecodeEnvelopeOwned(buf)
}
