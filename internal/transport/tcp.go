package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/wire"
)

// maxFrame bounds a single TCP frame (64 MiB) against hostile peers.
const maxFrame = 64 << 20

// TCPConfig parameterizes a TCP endpoint.
type TCPConfig struct {
	// Listen is the local address to accept peer connections on.
	Listen string
	// Peers maps node identities to dialable addresses.
	Peers map[wire.NodeID]string
	// TickEvery drives Handler.Tick; 0 defaults to 50ms.
	TickEvery time.Duration
	// DialTimeout bounds outbound connection setup; 0 defaults to 5s.
	DialTimeout time.Duration
}

// TCP serves one handler over real sockets: inbound frames are decoded and
// delivered under a per-node mutex (preserving single-threaded handler
// semantics); outputs are framed and written to per-peer pooled
// connections.
type TCP struct {
	cfg TCPConfig
	h   core.Handler

	mu sync.Mutex // serializes handler access

	connMu sync.Mutex
	conns  map[wire.NodeID]net.Conn
	peers  map[wire.NodeID]string

	lisMu sync.Mutex
	lis   net.Listener
}

// NewTCP wraps a handler for TCP service.
func NewTCP(h core.Handler, cfg TCPConfig) *TCP {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 50 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	peers := make(map[wire.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[id] = addr
	}
	return &TCP{cfg: cfg, h: h, conns: make(map[wire.NodeID]net.Conn), peers: peers}
}

// Addr returns the bound listen address, or nil before Listen succeeded.
func (t *TCP) Addr() net.Addr {
	t.lisMu.Lock()
	defer t.lisMu.Unlock()
	if t.lis == nil {
		return nil
	}
	return t.lis.Addr()
}

// SetPeer binds or replaces a peer's dialable address at runtime.
func (t *TCP) SetPeer(id wire.NodeID, addr string) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	t.peers[id] = addr
}

// Listen binds the listener; idempotent. Serve calls it automatically,
// but callers that need the bound address before serving may call it
// first.
func (t *TCP) Listen() error {
	t.lisMu.Lock()
	defer t.lisMu.Unlock()
	if t.lis != nil {
		return nil
	}
	lis, err := net.Listen("tcp", t.cfg.Listen)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", t.cfg.Listen, err)
	}
	t.lis = lis
	return nil
}

// Serve listens and processes frames until ctx is done.
func (t *TCP) Serve(ctx context.Context) error {
	if err := t.Listen(); err != nil {
		return err
	}
	t.lisMu.Lock()
	lis := t.lis
	t.lisMu.Unlock()
	go func() {
		<-ctx.Done()
		lis.Close()
	}()

	ticker := time.NewTicker(t.cfg.TickEvery)
	defer ticker.Stop()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				t.mu.Lock()
				outs := t.h.Tick(time.Now().UnixNano())
				t.mu.Unlock()
				t.sendAll(outs)
			}
		}
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		go t.read(ctx, conn)
	}
}

// Deliver processes one envelope as if it arrived from the network.
func (t *TCP) Deliver(env wire.Envelope) {
	t.mu.Lock()
	outs := t.h.Receive(time.Now().UnixNano(), env)
	t.mu.Unlock()
	t.sendAll(outs)
}

// Do runs fn under the handler mutex and routes its outputs — the hook
// synchronous clients use to start operations.
func (t *TCP) Do(fn func(now int64) []wire.Envelope) {
	t.mu.Lock()
	outs := fn(time.Now().UnixNano())
	t.mu.Unlock()
	t.sendAll(outs)
}

func (t *TCP) read(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if env.To != t.h.ID() {
			continue // misrouted
		}
		t.Deliver(env)
		if ctx.Err() != nil {
			return
		}
	}
}

func (t *TCP) sendAll(envs []wire.Envelope) {
	for _, env := range envs {
		if err := t.send(env); err != nil {
			// Connection-level failures drop the message; the protocol's
			// timeout and dispute machinery owns recovery, mirroring the
			// paper's asynchronous network assumption.
			continue
		}
	}
}

func (t *TCP) send(env wire.Envelope) error {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	addr, ok := t.peers[env.To]
	if !ok {
		return fmt.Errorf("transport: no address for %q", env.To)
	}
	conn := t.conns[env.To]
	if conn == nil {
		c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
		if err != nil {
			return err
		}
		conn = c
		t.conns[env.To] = conn
	}
	if err := WriteFrame(conn, env); err != nil {
		conn.Close()
		delete(t.conns, env.To)
		return err
	}
	return nil
}

// WriteFrame writes one length-prefixed envelope.
func WriteFrame(w io.Writer, env wire.Envelope) error {
	payload := wire.EncodeEnvelope(env)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed envelope.
func ReadFrame(r io.Reader) (wire.Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wire.Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wire.Envelope{}, errors.New("transport: frame exceeds limit")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return wire.Envelope{}, err
	}
	return wire.DecodeEnvelope(buf)
}
