package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/obs"
	"wedgechain/internal/obs/olog"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// maxFrame bounds a single TCP frame (64 MiB) against hostile peers.
const maxFrame = 64 << 20

// TCPConfig parameterizes a TCP endpoint.
type TCPConfig struct {
	// Listen is the local address to accept peer connections on.
	Listen string
	// Peers maps node identities to dialable addresses. Multiple
	// identities may share one address (a multiplexed endpoint hosting
	// many sessions); their frames share one outbound connection.
	Peers map[wire.NodeID]string
	// TickEvery drives Handler.Tick; 0 defaults to 50ms.
	TickEvery time.Duration
	// DialTimeout bounds outbound connection setup; 0 defaults to 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write to a peer; 0 defaults to 10s.
	// A peer that stops reading fails its writes and is redialed on the
	// next message instead of wedging the sender.
	WriteTimeout time.Duration
	// Lanes is the number of shared writer goroutines draining outbound
	// frames; 0 defaults to 4. Peers hash to a lane by address, so one
	// peer's frames stay FIFO and peers sharing an address share a
	// connection. More lanes reduce cross-peer head-of-line blocking
	// (a stalled dial or write delays only its own lane).
	Lanes int
	// LaneDepth is each lane's frame queue capacity; 0 defaults to 4096.
	// A full lane drops the frame (counted in Stats.LaneDrops).
	LaneDepth int
	// Registry and VerifyWorkers enable a parallel signature
	// verification stage between the socket readers and the handler:
	// frames from any number of connections are pre-verified in
	// parallel and delivered in submission order with Envelope.Verified
	// set, taking the per-message signature cost off the handler mutex.
	// Zero workers or a nil registry disables the stage; negative
	// workers means GOMAXPROCS.
	Registry      *wcrypto.Registry
	VerifyWorkers int
	// Fault injects deterministic link faults (drop/delay/duplicate/
	// partition) on this endpoint's outbound frames; nil disables.
	// Fault time is wall-clock nanoseconds.
	Fault *faultnet.Net
	// Obs, when set, is the metrics registry the endpoint's frame
	// counters (wedge_transport_*) register into, labeled with the
	// primary handler's identity. Stats() is backed by the same counters
	// either way; nil only keeps them off the shared registry.
	Obs *obs.Registry
	// Log receives the endpoint's structured warnings (lane-full drops).
	// nil is silent — the default, keeping tests quiet.
	Log *olog.Logger
}

// Stats counts an endpoint's frame-level events. All counters are
// cumulative since creation.
type Stats struct {
	// FramesSent counts frames successfully written to a peer socket.
	FramesSent uint64
	// LaneDrops counts frames dropped because their writer lane's queue
	// was full (a slow or dead peer backing up its lane).
	LaneDrops uint64
	// NoAddrDrops counts frames dropped for lack of a peer address.
	NoAddrDrops uint64
	// Redials counts outbound connection (re)establishments.
	Redials uint64
}

// TCP serves one or more handlers ("sessions") over real sockets. Inbound
// frames are routed by Envelope.To to the session with that identity and
// delivered under a per-session mutex (preserving single-threaded handler
// semantics). Outbound frames are drained by a small fixed pool of writer
// lanes — not one goroutine per peer — so the goroutine count stays flat
// no matter how many peers or sessions the endpoint serves. Peers hash to
// lanes by address: one peer's frames stay FIFO, and a slow or dead peer
// can stall only its own lane (bounded by DialTimeout/WriteTimeout), never
// the handlers, the verify pool, or other lanes.
type TCP struct {
	cfg    TCPConfig
	verify *wcrypto.VerifyPool // nil = verify inline in the handler
	stopc  chan struct{}       // closed when Serve exits; stops lanes
	stop1  sync.Once

	// sessions routes inbound frames by destination identity. primary is
	// the handler NewTCP was created with (the Do target).
	sessMu   sync.RWMutex
	sessions map[wire.NodeID]*tcpSession
	primary  *tcpSession

	connMu     sync.Mutex
	peers      map[wire.NodeID]string
	dropLogged map[wire.NodeID]struct{} // peers whose lane drop was logged

	lanes    []*writeLane
	laneOnce sync.Once // lanes start on first outbound frame

	// Frame counters: registry-backed so /metrics and Stats() read the
	// same atomics (see TCPConfig.Obs).
	stFramesSent *obs.Counter
	stLaneDrops  *obs.Counter
	stNoAddr     *obs.Counter
	stRedials    *obs.Counter

	lisMu sync.Mutex
	lis   net.Listener

	// accepted tracks inbound connections so Serve's exit closes them —
	// the same teardown a process death produces, which peers rely on to
	// notice this endpoint restarted.
	acceptMu sync.Mutex
	accepted map[net.Conn]struct{}
}

// tcpSession is one handler hosted on the endpoint, with the mutex that
// serializes its Receive/Tick access.
type tcpSession struct {
	mu sync.Mutex
	h  core.Handler
}

// writeLane is one shared outbound worker: a bounded queue of addressed
// frames drained by a dedicated goroutine that owns the connections to
// every peer hashed onto it. A full queue drops the frame — the
// protocol's timeout and dispute machinery owns recovery, mirroring the
// paper's asynchronous network assumption.
type writeLane struct {
	ch chan laneItem
}

type laneItem struct {
	to  wire.NodeID
	env wire.Envelope
}

// peerConn is one outbound connection plus a liveness flag maintained by a
// read-side monitor. Outbound connections are write-only in this protocol
// (responses travel over the peer's own dial), so a returning Read means
// the peer closed or reset the connection — most importantly, that the
// peer's process died or restarted. The lane consults the flag before
// each frame: writing into a socket the kernel already knows is dead
// "succeeds" locally and loses the frame without ever surfacing an error.
type peerConn struct {
	net.Conn
	dead chan struct{}
	once sync.Once
}

func newPeerConn(c net.Conn) *peerConn {
	pc := &peerConn{Conn: c, dead: make(chan struct{})}
	go pc.monitor()
	return pc
}

func (c *peerConn) monitor() {
	var buf [64]byte
	for {
		if _, err := c.Conn.Read(buf[:]); err != nil {
			c.markDead()
			return
		}
		// Peers never send application data on our outbound connection;
		// anything read is discarded and the watch continues.
	}
}

func (c *peerConn) markDead() { c.once.Do(func() { close(c.dead) }) }

func (c *peerConn) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// NewTCP wraps a handler for TCP service.
func NewTCP(h core.Handler, cfg TCPConfig) *TCP {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 50 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 4
	}
	if cfg.LaneDepth <= 0 {
		cfg.LaneDepth = 4096
	}
	peers := make(map[wire.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[id] = addr
	}
	prim := &tcpSession{h: h}
	t := &TCP{
		cfg:        cfg,
		stopc:      make(chan struct{}),
		sessions:   map[wire.NodeID]*tcpSession{h.ID(): prim},
		primary:    prim,
		peers:      peers,
		dropLogged: make(map[wire.NodeID]struct{}),
		lanes:      make([]*writeLane, cfg.Lanes),
		accepted:   make(map[net.Conn]struct{}),
	}
	for i := range t.lanes {
		t.lanes[i] = &writeLane{ch: make(chan laneItem, cfg.LaneDepth)}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	node := string(h.ID())
	t.stFramesSent = reg.CounterVec("wedge_transport_frames_sent_total",
		"frames successfully written to a peer socket", "node").With(node)
	t.stLaneDrops = reg.CounterVec("wedge_transport_lane_drops_total",
		"frames dropped because their writer lane's queue was full", "node").With(node)
	t.stNoAddr = reg.CounterVec("wedge_transport_no_addr_drops_total",
		"frames dropped for lack of a peer address", "node").With(node)
	t.stRedials = reg.CounterVec("wedge_transport_redials_total",
		"outbound connection (re)establishments", "node").With(node)
	if cfg.Registry != nil && cfg.VerifyWorkers != 0 {
		t.verify = wcrypto.NewVerifyPool(cfg.Registry, cfg.VerifyWorkers, 0, t.deliverVerified)
	}
	return t
}

// AddSession hosts another handler on this endpoint. Inbound frames are
// routed by Envelope.To, so any number of client sessions share one
// listener, one verify pool, and the fixed writer-lane pool instead of a
// transport (and its goroutines) each. Sessions must be added before
// traffic for their identity arrives; frames for unknown identities are
// dropped as misrouted.
func (t *TCP) AddSession(h core.Handler) {
	t.sessMu.Lock()
	t.sessions[h.ID()] = &tcpSession{h: h}
	t.sessMu.Unlock()
}

func (t *TCP) session(id wire.NodeID) *tcpSession {
	t.sessMu.RLock()
	s := t.sessions[id]
	t.sessMu.RUnlock()
	return s
}

// Stats returns a snapshot of the endpoint's frame counters.
func (t *TCP) Stats() Stats {
	return Stats{
		FramesSent:  t.stFramesSent.Value(),
		LaneDrops:   t.stLaneDrops.Value(),
		NoAddrDrops: t.stNoAddr.Value(),
		Redials:     t.stRedials.Value(),
	}
}

// Addr returns the bound listen address, or nil before Listen succeeded.
func (t *TCP) Addr() net.Addr {
	t.lisMu.Lock()
	defer t.lisMu.Unlock()
	if t.lis == nil {
		return nil
	}
	return t.lis.Addr()
}

// SetPeer binds or replaces a peer's dialable address at runtime. Lanes
// resolve the address on every dial, so an existing peer picks the new
// address up on its next (re)connect.
func (t *TCP) SetPeer(id wire.NodeID, addr string) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	t.peers[id] = addr
}

// Listen binds the listener; idempotent. Serve calls it automatically,
// but callers that need the bound address before serving may call it
// first.
func (t *TCP) Listen() error {
	t.lisMu.Lock()
	defer t.lisMu.Unlock()
	if t.lis != nil {
		return nil
	}
	lis, err := net.Listen("tcp", t.cfg.Listen)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", t.cfg.Listen, err)
	}
	t.lis = lis
	return nil
}

// Serve listens and processes frames until ctx is done. On exit the
// verification pool (if any) is drained and stopped and the writer lanes
// are released; frames still in flight are dropped, which shutdown makes
// moot.
func (t *TCP) Serve(ctx context.Context) error {
	defer t.stop1.Do(func() { close(t.stopc) })
	defer func() {
		t.acceptMu.Lock()
		for c := range t.accepted {
			c.Close()
		}
		t.acceptMu.Unlock()
	}()
	if t.verify != nil {
		defer t.verify.Close()
	}
	if err := t.Listen(); err != nil {
		return err
	}
	t.lisMu.Lock()
	lis := t.lis
	t.lisMu.Unlock()
	go func() {
		<-ctx.Done()
		lis.Close()
	}()

	ticker := time.NewTicker(t.cfg.TickEvery)
	defer ticker.Stop()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				now := time.Now().UnixNano()
				t.sessMu.RLock()
				sess := make([]*tcpSession, 0, len(t.sessions))
				for _, s := range t.sessions {
					sess = append(sess, s)
				}
				t.sessMu.RUnlock()
				for _, s := range sess {
					s.mu.Lock()
					outs := s.h.Tick(now)
					s.mu.Unlock()
					t.sendAll(outs)
				}
			}
		}
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		t.acceptMu.Lock()
		t.accepted[conn] = struct{}{}
		t.acceptMu.Unlock()
		go t.read(ctx, conn)
	}
}

// Deliver processes one envelope as if it arrived from the network,
// routing it through the verification stage when one is configured.
func (t *TCP) Deliver(env wire.Envelope) {
	if t.verify != nil {
		t.verify.Submit(env)
		return
	}
	t.deliverVerified(env)
}

func (t *TCP) deliverVerified(env wire.Envelope) {
	s := t.session(env.To)
	if s == nil {
		return
	}
	s.mu.Lock()
	outs := s.h.Receive(time.Now().UnixNano(), env)
	s.mu.Unlock()
	t.sendAll(outs)
}

// Do runs fn under the primary session's mutex and routes its outputs —
// the hook synchronous clients use to start operations.
func (t *TCP) Do(fn func(now int64) []wire.Envelope) {
	t.doOn(t.primary, fn)
}

// DoSession runs fn under the named session's mutex and routes its
// outputs; it reports whether the session exists.
func (t *TCP) DoSession(id wire.NodeID, fn func(now int64) []wire.Envelope) bool {
	s := t.session(id)
	if s == nil {
		return false
	}
	t.doOn(s, fn)
	return true
}

func (t *TCP) doOn(s *tcpSession, fn func(now int64) []wire.Envelope) {
	s.mu.Lock()
	outs := fn(time.Now().UnixNano())
	s.mu.Unlock()
	t.sendAll(outs)
}

func (t *TCP) read(ctx context.Context, conn net.Conn) {
	defer func() {
		conn.Close()
		t.acceptMu.Lock()
		delete(t.accepted, conn)
		t.acceptMu.Unlock()
	}()
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if t.session(env.To) == nil {
			continue // misrouted
		}
		t.Deliver(env)
		if ctx.Err() != nil {
			return
		}
	}
}

func (t *TCP) sendAll(envs []wire.Envelope) {
	for _, env := range envs {
		t.send(env)
	}
}

// send hands the envelope to its writer lane without ever blocking the
// caller: a full lane drops the message (the protocol's timeout and
// dispute machinery owns recovery, mirroring the paper's asynchronous
// network assumption).
func (t *TCP) send(env wire.Envelope) {
	if t.cfg.Fault != nil && env.From != env.To {
		act := t.cfg.Fault.Apply(time.Now().UnixNano(), env.From, env.To)
		if act.Drop {
			return
		}
		for _, extra := range act.Delays {
			if extra <= 0 {
				t.enqueue(env)
				continue
			}
			env := env
			time.AfterFunc(time.Duration(extra), func() { t.enqueue(env) })
		}
		return
	}
	t.enqueue(env)
}

// enqueue routes the envelope to the lane owning its peer's address. The
// lane is chosen by address, not identity, so every frame for one peer
// stays FIFO through one lane, and multiplexed identities sharing an
// address share the lane's single connection to it.
func (t *TCP) enqueue(env wire.Envelope) {
	t.connMu.Lock()
	addr, known := t.peers[env.To]
	t.connMu.Unlock()
	if !known {
		t.stNoAddr.Add(1)
		return // no address for this peer
	}
	t.laneOnce.Do(t.startLanes)
	ln := t.lanes[laneOf(addr, len(t.lanes))]
	select {
	case ln.ch <- laneItem{to: env.To, env: env}:
	default: // lane full: peer is slow or dead; drop
		t.stLaneDrops.Add(1)
		t.connMu.Lock()
		if _, logged := t.dropLogged[env.To]; !logged {
			t.dropLogged[env.To] = struct{}{}
			t.cfg.Log.Warn("writer lane full; dropping frames",
				"peer", string(env.To),
				"note", "further drops to this peer counted, not logged")
		}
		t.connMu.Unlock()
	}
}

func (t *TCP) startLanes() {
	for _, ln := range t.lanes {
		go t.laneLoop(ln)
	}
}

// laneOf hashes a peer address onto a lane (FNV-1a).
func laneOf(addr string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(addr); i++ {
		h = (h ^ uint32(addr[i])) * 16777619
	}
	return int(h % uint32(n))
}

// laneLoop drains one lane's queue, owning the outbound connections (one
// per distinct address) of every peer hashed onto the lane. It dials on
// demand (re-resolving the peer address, so SetPeer takes effect), writes
// each frame under WriteTimeout, and drops frames while a peer is
// unreachable.
//
// Two mechanisms keep a peer restart (same identity, same address) from
// losing the first frame addressed to the new incarnation:
//
//   - the read-side monitor (peerConn) marks the cached connection dead
//     as soon as the old incarnation's close reaches us, so the lane
//     redials BEFORE writing — a write into a kernel-dead socket would
//     "succeed" locally and lose the frame without any error;
//   - a write that does fail (detection raced the write) is retried
//     exactly once on a fresh dial, resending the same frame.
//
// One retry is enough: a second failure means the peer is down, and the
// protocol's timeout and dispute machinery owns recovery from there.
func (t *TCP) laneLoop(ln *writeLane) {
	conns := make(map[string]*peerConn) // by dialed address
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for {
		var it laneItem
		select {
		case <-t.stopc:
			return
		case it = <-ln.ch:
		}
		for attempt := 0; attempt < 2; attempt++ {
			t.connMu.Lock()
			addr := t.peers[it.to]
			t.connMu.Unlock()
			conn := conns[addr]
			if conn != nil && conn.isDead() {
				conn.Close()
				delete(conns, addr)
				conn = nil
			}
			if conn == nil {
				c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
				if err != nil {
					break // unreachable: drop this frame
				}
				conn = newPeerConn(c)
				conns[addr] = conn
				t.stRedials.Add(1)
			}
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			if err := WriteFrame(conn, it.env); err == nil {
				t.stFramesSent.Add(1)
				break
			}
			// The connection died under us; redial once and resend.
			conn.Close()
			delete(conns, addr)
		}
	}
}

// WriteFrame writes one length-prefixed envelope. The frame is assembled
// in a pooled buffer (header and payload leave in a single Write) and the
// buffer is returned to the pool afterwards — steady-state framing
// allocates nothing.
func WriteFrame(w io.Writer, env wire.Envelope) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	var hdr [4]byte
	e.Raw(hdr[:]) // length placeholder, patched below
	wire.AppendEnvelope(e, env)
	frame := e.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed envelope. The frame buffer's
// ownership transfers to the decoded message (zero-copy decode): each
// frame is read into a fresh buffer and never reused.
func ReadFrame(r io.Reader) (wire.Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wire.Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wire.Envelope{}, errors.New("transport: frame exceeds limit")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return wire.Envelope{}, err
	}
	return wire.DecodeEnvelopeOwned(buf)
}
