package transport

import (
	"bytes"
	"context"

	"sync"
	"testing"
	"time"

	"wedgechain/internal/wire"
)

// echoHandler counts deliveries and echoes pings.
type echoHandler struct {
	id    wire.NodeID
	mu    sync.Mutex
	seen  map[uint64]int
	pongs int
}

func newEcho(id wire.NodeID) *echoHandler {
	return &echoHandler{id: id, seen: make(map[uint64]int)}
}

func (e *echoHandler) ID() wire.NodeID { return e.id }
func (e *echoHandler) Receive(now int64, env wire.Envelope) []wire.Envelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch m := env.Msg.(type) {
	case *wire.Ping:
		e.seen[m.Seq]++
		return []wire.Envelope{{From: e.id, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	case *wire.Pong:
		e.pongs++
	}
	return nil
}
func (e *echoHandler) Tick(now int64) []wire.Envelope { return nil }

func (e *echoHandler) counts() (dups, total, pongs int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, n := range e.seen {
		total++
		if n > 1 {
			dups++
		}
	}
	return dups, total, e.pongs
}

func TestTCPDeliversExactlyOnce(t *testing.T) {
	server := newEcho("server")
	client := newEcho("client")

	st := NewTCP(server, TCPConfig{Listen: "127.0.0.1:0"})
	if err := st.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Serve(ctx)

	ct := NewTCP(client, TCPConfig{
		Listen: "127.0.0.1:0",
		Peers:  map[wire.NodeID]string{"server": st.Addr().String()},
	})
	if err := ct.Listen(); err != nil {
		t.Fatal(err)
	}
	go ct.Serve(ctx)
	// Server replies over a fresh dial back to the client.
	st.SetPeer("client", ct.Addr().String())

	const n = 200
	for i := 0; i < n; i++ {
		ct.Do(func(now int64) []wire.Envelope {
			return []wire.Envelope{{From: "client", To: "server", Msg: &wire.Ping{Seq: uint64(i), Ts: now}}}
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, total, pongs := server.counts()
		_ = total
		if pongs == 0 { // server doesn't receive pongs
		}
		_, _, clientPongs := client.counts()
		if clientPongs >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d pongs arrived", clientPongs, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	dups, total, _ := server.counts()
	if total != n {
		t.Fatalf("server saw %d distinct pings, want %d", total, n)
	}
	if dups != 0 {
		t.Fatalf("%d pings delivered more than once", dups)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	env := wire.Envelope{From: "a", To: "b", Msg: &wire.Ping{Seq: 7, Ts: 9}}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.To != "b" {
		t.Fatalf("routing lost: %+v", got)
	}
	if p, ok := got.Msg.(*wire.Ping); !ok || p.Seq != 7 {
		t.Fatalf("payload lost: %+v", got.Msg)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestLocalTransportDelivery(t *testing.T) {
	l := NewLocal(LocalConfig{TickEvery: 5 * time.Millisecond})
	defer l.Close()
	a, b := newEcho("a"), newEcho("b")
	l.Add(a)
	l.Add(b)

	const n = 100
	for i := 0; i < n; i++ {
		l.Send([]wire.Envelope{{From: "a", To: "b", Msg: &wire.Ping{Seq: uint64(i)}}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, pongs := a.counts()
		if pongs >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d pongs", pongs, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	dups, total, _ := b.counts()
	if total != n || dups != 0 {
		t.Fatalf("b saw %d distinct (%d dups), want %d distinct", total, dups, n)
	}
}

func TestLocalLatencyInjection(t *testing.T) {
	l := NewLocal(LocalConfig{
		TickEvery: time.Millisecond,
		Latency: func(from, to wire.NodeID) time.Duration {
			return 50 * time.Millisecond
		},
	})
	defer l.Close()
	a, b := newEcho("a"), newEcho("b")
	l.Add(a)
	l.Add(b)

	start := time.Now()
	l.Send([]wire.Envelope{{From: "a", To: "b", Msg: &wire.Ping{Seq: 1}}})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, pongs := a.counts()
		if pongs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pong never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if rtt := time.Since(start); rtt < 100*time.Millisecond {
		t.Fatalf("round trip %v, want >= 100ms (2x injected latency)", rtt)
	}
}

func TestLocalDoRunsOnNodeGoroutine(t *testing.T) {
	l := NewLocal(LocalConfig{TickEvery: time.Millisecond})
	defer l.Close()
	a := newEcho("a")
	l.Add(a)
	done := make(chan struct{})
	if !l.Do("a", func(now int64) []wire.Envelope {
		close(done)
		return nil
	}) {
		t.Fatal("Do refused")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Do thunk never ran")
	}
	if l.Do("missing", func(int64) []wire.Envelope { return nil }) {
		t.Fatal("Do accepted unknown node")
	}
}

// TestRedialResendsAfterPeerRestart is the regression test for the
// redial frame-loss bug: when a peer restarts on the same identity and
// address, the sender's cached connection is dead. A write into that
// socket used to "succeed" locally and lose the frame (no error until a
// later write), so the first frame to the restarted peer vanished. The
// fix pairs a read-side dead-connection monitor (redial BEFORE writing
// once the old incarnation's close arrives) with a one-shot
// resend-after-redial for writes that do fail.
//
// The test kills and relaunches the peer, then sends a single ping
// through what was the stale connection and requires its pong — the
// strongest form of the guarantee. Without the fix the ping is lost and
// no response ever arrives.
func TestRedialResendsAfterPeerRestart(t *testing.T) {
	client := newEcho("client")
	ct := NewTCP(client, TCPConfig{Listen: "127.0.0.1:0", DialTimeout: time.Second})
	if err := ct.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ct.Serve(ctx)

	server1 := newEcho("server")
	st1 := NewTCP(server1, TCPConfig{Listen: "127.0.0.1:0"})
	if err := st1.Listen(); err != nil {
		t.Fatal(err)
	}
	addr := st1.Addr().String()
	ctx1, cancel1 := context.WithCancel(context.Background())
	served1 := make(chan struct{})
	go func() { st1.Serve(ctx1); close(served1) }()
	st1.SetPeer("client", ct.Addr().String())
	ct.SetPeer("server", addr)

	ping := func(seq uint64) {
		ct.Do(func(now int64) []wire.Envelope {
			return []wire.Envelope{{From: "client", To: "server", Msg: &wire.Ping{Seq: seq, Ts: now}}}
		})
	}
	waitPongs := func(want int, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, _, pongs := client.counts(); pongs >= want {
				return
			}
			if time.Now().After(deadline) {
				_, _, pongs := client.counts()
				t.Fatalf("%s: %d/%d pongs", what, pongs, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Establish the client's cached connection to the first incarnation.
	ping(1)
	waitPongs(1, "before restart")

	// Kill the first incarnation. Serve's exit closes its accepted
	// connections — the teardown a process death produces.
	cancel1()
	<-served1

	// Restart the peer on the same identity and address.
	server2 := newEcho("server")
	st2 := NewTCP(server2, TCPConfig{Listen: addr})
	var err error
	for deadline := time.Now().Add(2 * time.Second); ; {
		if err = st2.Listen(); err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go st2.Serve(ctx)
	st2.SetPeer("client", ct.Addr().String())

	// Let the old incarnation's close reach the client's monitor, then
	// send a single ping: the writer must notice the dead connection,
	// redial the new incarnation, and deliver this very frame.
	time.Sleep(100 * time.Millisecond)
	ping(2)
	waitPongs(2, "after restart")
}
